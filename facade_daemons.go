package shootdown

import (
	"shootdown/internal/daemons"
	"shootdown/internal/mm"
)

// This file exposes the kernel memory-management daemons (internal/daemons)
// and huge-page operations through the public API, so downstream code can
// reproduce the paper's §2.1 flush sources — memory deduplication,
// huge-page compaction, reclamation and NUMA migration — against its own
// workloads.

// DaemonStats re-exports the daemon action counters.
type DaemonStats = daemons.Stats

// Daemon is a handle to a running kernel daemon.
type Daemon = daemons.Daemon

// MMapHuge creates an anonymous mapping backed by 2 MiB pages. Length
// must be a multiple of 2 MiB.
func (t *Thread) MMapHuge(length uint64, prot Prot) (*mm.VMA, error) {
	as := t.proc.as
	t.ctx.EnterSyscall()
	defer t.ctx.ExitSyscall()
	t.ctx.CPU.DownWrite(t.ctx.P, as.MmapSem)
	defer as.MmapSem.UpWrite(t.ctx.P)
	t.ctx.P.Delay(t.ctx.K.Cost.SyscallWork)
	return as.MMapHuge(length, prot)
}

// StartKhugepaged runs a huge-page compaction daemon over v on cpu: every
// interval cycles it collapses fully-populated 2 MiB regions of small
// anonymous pages, shooting down the stale translations (with early acks
// suppressed, since collapse frees page-table pages).
func (m *Machine) StartKhugepaged(p *Process, v *mm.VMA, cpu CPU, interval uint64, rounds int) *Daemon {
	return daemons.Khugepaged(m.k, cpu, p.as, v, interval, rounds)
}

// StartKsmd runs a memory-deduplication daemon on cpu. candidates
// nominates pairs of equal-content anonymous pages to merge (the
// simulation does not model page contents).
func (m *Machine) StartKsmd(p *Process, candidates func() (va1, va2 uint64, ok bool), cpu CPU, interval uint64, rounds int) *Daemon {
	return daemons.Ksmd(m.k, cpu, p.as, candidates, interval, rounds)
}

// StartKswapd runs a reclaim daemon on cpu, evicting up to batch clean
// page-cache mappings of file per sweep.
func (m *Machine) StartKswapd(p *Process, file *mm.File, cpu CPU, batch int, interval uint64, rounds int) *Daemon {
	return daemons.Kswapd(m.k, cpu, p.as, file, batch, interval, rounds)
}

// StartNumaBalancer runs a NUMA-balancing daemon on cpu over v,
// alternating ProtNone hint rounds (change_prot_numa) with migration
// rounds.
func (m *Machine) StartNumaBalancer(p *Process, v *mm.VMA, cpu CPU, migrate int, interval uint64, rounds int) *Daemon {
	return daemons.NumaBalancer(m.k, cpu, p.as, v, migrate, interval, rounds)
}
