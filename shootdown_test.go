package shootdown

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	m, err := NewMachine(WithMode(Safe), WithConfig(AllGeneral()), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCPUs() != 56 {
		t.Fatalf("NumCPUs = %d", m.NumCPUs())
	}
	proc := m.NewProcess("app")
	stop := false
	proc.Go(2, "responder", func(th *Thread) {
		for !stop {
			th.Compute(2000)
		}
	})
	var madviseCycles uint64
	main := proc.Go(0, "main", func(th *Thread) {
		th.Compute(5000)
		v, err := th.MMap(8*PageSize, ProtRead|ProtWrite, MapAnon, nil, 0)
		if err != nil {
			t.Error(err)
			stop = true
			return
		}
		for i := uint64(0); i < 8; i++ {
			if err := th.Write(v.Start + i*PageSize); err != nil {
				t.Error(err)
			}
		}
		start := th.Now()
		if err := th.Madvise(v.Start, 8*PageSize); err != nil {
			t.Error(err)
		}
		madviseCycles = th.Now() - start
		stop = true
	})
	m.Run()
	if !main.Done() {
		t.Fatal("main thread did not finish")
	}
	if madviseCycles == 0 {
		t.Fatal("no cycles measured")
	}
	if m.Stats().Shootdowns == 0 {
		t.Fatal("no shootdown occurred")
	}
	if m.Interrupted(2) == 0 {
		t.Fatal("responder was never interrupted")
	}
}

func TestMachineOptions(t *testing.T) {
	m, err := NewMachine(WithTopology(1, 4, 2), WithMode(Unsafe))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCPUs() != 8 {
		t.Fatalf("NumCPUs = %d", m.NumCPUs())
	}
}

func TestMismatchedConfigRejected(t *testing.T) {
	// NewMachine wires the SMP layout from the config, so this cannot
	// actually mismatch — verify it constructs for both layouts.
	for _, cfg := range []Config{Baseline(), {CachelineConsolidation: true}} {
		if _, err := NewMachine(WithConfig(cfg)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment(&buf, "nope", true, 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentTable4(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment(&buf, "table4", true, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 4") || !strings.Contains(out, "bare-metal") {
		t.Fatalf("unexpected output: %s", out)
	}
}

func TestExperimentNames(t *testing.T) {
	names := ExperimentNames()
	if len(names) != 15 {
		t.Fatalf("names = %v", names)
	}
	if _, err := Tables(names[0], true, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFileBackedWorkflow(t *testing.T) {
	m, err := NewMachine(WithConfig(AllOptimizations()))
	if err != nil {
		t.Fatal(err)
	}
	file := m.NewFile("data", 16*PageSize)
	proc := m.NewProcess("db")
	task := proc.Go(0, "writer", func(th *Thread) {
		v, err := th.MMap(16*PageSize, ProtRead|ProtWrite, MapFileShared, file, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for i := uint64(0); i < 16; i++ {
			if err := th.Write(v.Start + i*PageSize); err != nil {
				t.Error(err)
			}
		}
		if file.DirtyCount() != 16 {
			t.Errorf("dirty = %d", file.DirtyCount())
		}
		if err := th.Fdatasync(file); err != nil {
			t.Error(err)
		}
		if file.DirtyCount() != 0 {
			t.Errorf("dirty after sync = %d", file.DirtyCount())
		}
		if err := th.Msync(v.Start, 16*PageSize); err != nil {
			t.Error(err)
		}
		if err := th.Mprotect(v.Start, 4*PageSize, ProtRead); err != nil {
			t.Error(err)
		}
		if err := th.Munmap(v.Start, v.Len()); err != nil {
			t.Error(err)
		}
	})
	m.Run()
	if !task.Done() {
		t.Fatal("task incomplete")
	}
}
