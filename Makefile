GO ?= go

.PHONY: all build test race lint vet vetjson xval fabproof sanitize racemodel faultcheck fuzz cover bench check clean

all: build

## build: compile every package and command
build:
	$(GO) build ./...

## test: run the full unit/integration test suite
test:
	$(GO) test ./...

## race: run the suite under the race detector
race:
	$(GO) test -race ./...

## lint: toolchain gates first (gofmt, go vet), then the custom tiers
## (syntactic tlbcheck -lint, typed+ssa tlbvet) — a stock-tool finding
## should fail before any whole-program analysis spins up
lint:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/tlbcheck -lint ./...
	$(GO) run ./cmd/tlbvet

## vet: both type-checked analysis tiers (typedlint + the ssa IR analyzers:
## flush obligations, lock order, ipistate DFA, detflow taint, parallelsafe,
## mhp may-happen-in-parallel, lockset race-discipline proofs, and the
## fabproof numeric obligations over the async fabric)
vet:
	$(GO) run ./cmd/tlbvet

## vetjson: machine-readable vet report (the VET_findings.json CI artifact)
vetjson:
	$(GO) run ./cmd/tlbvet -json > VET_findings.json || { cat VET_findings.json; exit 1; }

## xval: race cross-validation table (the RACE_XVAL.txt CI artifact) —
## every dynamic-race-model field with its static discharge status
xval:
	$(GO) run ./cmd/tlbvet -xval RACE_XVAL.txt
	@cat RACE_XVAL.txt
	@if grep -q 'unproven' RACE_XVAL.txt; then \
		echo "xval gate: a race-instrumented field has no static discharge proof"; exit 1; fi

## fabproof: fabric proof-obligation table (the FABPROOF.txt CI artifact) —
## every numeric invariant of the async shootdown fabric with its status
fabproof:
	$(GO) run ./cmd/tlbvet -only fabproof -fabproof FABPROOF.txt
	@cat FABPROOF.txt
	@if grep -q 'unproven' FABPROOF.txt; then \
		echo "fabproof gate: a fabric obligation has no static proof"; exit 1; fi

## sanitize: run the experiment suite under the shadow-oracle checker
sanitize:
	$(GO) run ./cmd/tlbcheck -quick -v

## racemodel: run the suite under the happens-before race detector
racemodel:
	$(GO) run ./cmd/tlbcheck -race-model -quick -v

## faultcheck: sanitizer + HB race model over the suite under fault injection
faultcheck:
	$(GO) run ./cmd/tlbcheck -quick -faults light -v
	$(GO) run ./cmd/tlbcheck -race-model -quick -faults light -v

## fuzz: randomized coherence fuzzing with the sanitizer attached
fuzz:
	$(GO) run ./cmd/tlbfuzz -runs 50
	$(GO) run ./cmd/tlbfuzz -runs 25 -faults heavy

## cover: coverage summary for the fault plane, the layers it perturbs,
## and the dynamic race model the static lockset tier cross-validates
cover:
	$(GO) test -coverprofile=coverage.out ./internal/fault/ ./internal/smp/ ./internal/apic/ ./internal/mm/ ./internal/race/ ./internal/sanitizer/ssa/ ./internal/mach/ ./internal/sim/
	$(GO) tool cover -func=coverage.out

## bench: parallel-harness wall-clock + event-loop allocs -> BENCH_parallel.json
bench:
	./scripts/bench.sh

## check: everything CI runs (build, tests, race, lint, sanitizer, HB model, faults)
check: build test race lint sanitize racemodel faultcheck

clean:
	$(GO) clean ./...
