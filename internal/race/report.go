package race

import (
	"fmt"
	"strings"
)

// Summary is the final result of one or more race-checked runs.
type Summary struct {
	// Worlds is the number of checked simulations merged in.
	Worlds int
	// Races holds every recorded race, in detection order.
	Races []Race
	// Dropped counts races beyond the per-detector cap.
	Dropped int
	// Stats aggregates instrumentation counters.
	Stats Stats
}

// OK reports whether the run was race-free.
func (s *Summary) OK() bool { return len(s.Races) == 0 && s.Dropped == 0 }

// Merge finalizes every detector and combines the results.
func Merge(detectors []*Detector) *Summary {
	sum := &Summary{}
	for _, d := range detectors {
		sum.Absorb(d.Finish())
	}
	return sum
}

// Absorb folds another summary into s.
func (s *Summary) Absorb(o *Summary) {
	s.Worlds += o.Worlds
	s.Races = append(s.Races, o.Races...)
	s.Dropped += o.Dropped
	s.Stats.Add(o.Stats)
}

// Report renders the summary as a deterministic human-readable report.
func (s *Summary) Report() string {
	var b strings.Builder
	st := s.Stats
	fmt.Fprintf(&b, "tlbcheck: %d simulation(s) race-checked (%d logical threads)\n", s.Worlds, st.Threads)
	fmt.Fprintf(&b, "  sync edges:        %d acquires, %d releases, %d return-to-user ticks\n",
		st.Acquires, st.Releases, st.UserReturns)
	fmt.Fprintf(&b, "  atomic accesses:   %d loads, %d stores, %d rmw (%d variables total)\n",
		st.AtomicLoads, st.AtomicStores, st.AtomicRMWs, st.Vars)
	fmt.Fprintf(&b, "  checked accesses:  %d reads, %d writes on plain shared state\n",
		st.Reads, st.Writes)
	if s.OK() {
		b.WriteString("PASS: no data races\n")
		return b.String()
	}
	counts := map[string]int{}
	order := []string{}
	for _, r := range s.Races {
		if counts[r.Kind] == 0 {
			order = append(order, r.Kind)
		}
		counts[r.Kind]++
	}
	fmt.Fprintf(&b, "FAIL: %d data race(s)", len(s.Races)+s.Dropped)
	parts := make([]string, 0, len(order))
	for _, k := range order {
		parts = append(parts, fmt.Sprintf("%d %s", counts[k], k))
	}
	fmt.Fprintf(&b, " (%s)\n", strings.Join(parts, ", "))
	for i, r := range s.Races {
		fmt.Fprintf(&b, "\n[%d] t=%d %s\n", i+1, r.At, indent(r.Msg))
	}
	if s.Dropped > 0 {
		fmt.Fprintf(&b, "\n(%d further race(s) dropped past the cap)\n", s.Dropped)
	}
	return b.String()
}

func indent(msg string) string {
	return strings.ReplaceAll(msg, "\n", "\n    ")
}
