package race

import (
	"sort"
	"strings"
)

// The registry below is the contract between the dynamic happens-before
// checker and the static lockset tier (internal/sanitizer/ssa): every
// shared location the simulator instruments is declared here once, with
// the synchronization discipline the model relies on. The dynamic side
// checks sampled schedules against the discipline; the static side
// re-proves the same discipline over *all* schedules and fails the build
// when a registered field cannot be discharged (RACE_XVAL.txt).

// Synchronization disciplines a registered field may declare. The static
// lockset analyzer proves exactly the declared discipline; any mismatch
// (a plain access to an atomic field, a non-self receiver on a confined
// field, an unguarded early ack on an ack-ordered field) is a finding.
const (
	// DiscAtomic: every access goes through the detector's Atomic* hooks
	// (C11 atomics / READ_ONCE–WRITE_ONCE in the modeled kernel).
	DiscAtomic = "atomic"
	// DiscConfined: plain accesses, legal because only the owning CPU's
	// run loop (and code it calls synchronously, including its IRQ
	// dispatch) ever touches the field.
	DiscConfined = "cpu-confined"
	// DiscAckOrdered: plain accesses ordered by the shootdown ack edge —
	// the initiator may write only after every responder acked, and a
	// responder may read only before its ack, so the ack join is the
	// happens-before edge. Early acks must be provably suppressed while
	// the guard field is set.
	DiscAckOrdered = "ack-ordered"
	// DiscEpoch: a plain field with exactly one writing function
	// module-wide; readers either poll it as a racy-by-design predicate
	// or order through the accompanying sync hand-off.
	DiscEpoch = "single-writer-epoch"
)

// Field describes one instrumented shared location: how its dynamic
// variable names are formed, which Go field backs it, and the
// synchronization discipline the static tier must discharge.
type Field struct {
	// Key is the stable report identifier ("mm.tlb_gen").
	Key string
	// Var is the dynamic variable-name pattern; %d matches a decimal
	// index (mm ID, CPU number). Empty for fields with no detector
	// variable (discipline proven structurally, e.g. DiscEpoch).
	Var string
	// Owner is the module-relative directory of the owning package.
	Owner string
	// Struct is the owning struct type within Owner.
	Struct string
	// GoField is the backing Go field; empty when the location is
	// virtual (e.g. page-table nodes as a whole).
	GoField string
	// NameField is the struct field caching the precomputed detector
	// name; instrumentation sites pass it to the detector, which is how
	// the static tier maps a call site back to this entry.
	NameField string
	// NameFunc is the method computing the detector name, for per-index
	// names built on demand (smp's csqVar).
	NameFunc string
	// Discipline is one of the Disc* constants.
	Discipline string
	// Guard/GuardStruct name the payload field gating DiscAckOrdered
	// accesses (accesses only happen when the guard is set, so the ack
	// edge must be strict whenever it is).
	Guard, GuardStruct string
	// SeededBy names the config knob of the deliberately broken variant
	// whose violation the static tier must rediscover (as a witness, not
	// a finding) to stay cross-validated with the dynamic catch.
	SeededBy string
	// Doc is the one-line discipline rationale, published in RACE_XVAL.
	Doc string
}

// Registry lists every instrumented shared location. Order is the
// canonical report order (RACE_XVAL.txt rows).
func Registry() []Field {
	return []Field{
		{Key: "cpu.batched", Var: "cpu%d.batched", Owner: "internal/kernel", Struct: "CPU",
			GoField: "batched", NameField: "batchedVar", Discipline: DiscAtomic,
			Doc: "batched-syscall flag, READ_ONCE/WRITE_ONCE"},
		{Key: "cpu.batchq", Var: "cpu%d.batchq", Owner: "internal/kernel", Struct: "CPU",
			GoField: "pendingBatched", NameField: "batchqVar", Discipline: DiscAtomic,
			Doc: "deferred-flush queue, llist-style RMW hand-off"},
		{Key: "cpu.lazy", Var: "cpu%d.lazy", Owner: "internal/kernel", Struct: "CPU",
			GoField: "lazy", NameField: "lazyVar", Discipline: DiscAtomic,
			Doc: "lazy-TLB indication, READ_ONCE/WRITE_ONCE"},
		{Key: "cpu.lazyq", Var: "cpu%d.lazyq", Owner: "internal/kernel", Struct: "CPU",
			GoField: "lazyWork", NameField: "lazyqVar", Discipline: DiscAtomic,
			Doc: "lazy-switch work queue, llist-style RMW hand-off"},
		{Key: "cpu.runq", Var: "cpu%d.runq", Owner: "internal/kernel", Struct: "CPU",
			GoField: "runq", NameField: "runqVar", Discipline: DiscAtomic,
			Doc: "run queue, RMW hand-off plus per-task sync edge"},
		{Key: "cpu.tlbgen", Var: "cpu%d.tlbgen", Owner: "internal/kernel", Struct: "CPU",
			GoField: "localGen", NameField: "genVar", Discipline: DiscConfined,
			Doc: "per-CPU TLB generation, touched only by the owning run loop"},
		{Key: "mm.cpumask", Var: "mm%d.cpumask", Owner: "internal/mm", Struct: "AddressSpace",
			GoField: "activeMask", NameField: "maskVar", Discipline: DiscAtomic,
			Doc: "mm_cpumask, atomic set/clear/scan"},
		{Key: "mm.pt-nodes", Var: "mm%d.pt-nodes", Owner: "internal/core", Struct: "Flusher",
			Discipline: DiscAckOrdered, Guard: "FreedTables", GuardStruct: "FlushInfo",
			SeededBy: "BrokenEarlyAck",
			Doc:      "freed page-table pages (§3.2): responders read pre-ack, the initiator reclaims post-ack; early ack must be off while FreedTables is set"},
		{Key: "mm.pte", Var: "mm%d.pte", Owner: "internal/pagetable", Struct: "Table",
			NameField: "pteVar", Discipline: DiscAtomic,
			Doc: "leaf PTEs, native_set_pte-style atomic stores"},
		{Key: "mm.tlb_gen", Var: "mm%d.tlb_gen", Owner: "internal/mm", Struct: "AddressSpace",
			GoField: "tlbGen", NameField: "genVar", Discipline: DiscAtomic,
			Doc: "mm->context.tlb_gen, atomic_inc/atomic64_read"},
		{Key: "smp.acked", Owner: "internal/smp", Struct: "Request",
			GoField: "acked", Discipline: DiscEpoch,
			Doc: "per-request ack word: single store site, polled racy-by-design with the hand-off ordered via the request sync"},
		{Key: "smp.csq", Var: "csq[%d]", Owner: "internal/smp", Struct: "perCPU",
			GoField: "queue", NameFunc: "csqVar", Discipline: DiscAtomic,
			Doc: "call-single queue, llist_add/llist_del_all RMW hand-off"},
		{Key: "smp.faback", Var: "faback[%d]", Owner: "internal/smp", Struct: "fabricCPU",
			GoField: "fabAckSeq", NameFunc: "fabAckVar", Discipline: DiscAtomic,
			Doc: "async fabric acked sequence: responder stores after the batch drain, watchdog/completion load for the generation-gap check"},
		{Key: "smp.fabfull", Var: "fabfull[%d]", Owner: "internal/smp", Struct: "fabricCPU",
			GoField: "fabFlushAll", NameFunc: "fabFullVar", Discipline: DiscAtomic,
			Doc: "async fabric flush_all collapse flag, RMW on overflow/degrade, cleared by the drain's ring pop"},
		{Key: "smp.fabpost", Var: "fabpost[%d]", Owner: "internal/smp", Struct: "fabricCPU",
			GoField: "fabPostSeq", NameFunc: "fabPostVar", Discipline: DiscAtomic,
			Doc: "async fabric posted sequence, bumped by the initiator's post RMW, loaded by the drain's ack"},
		{Key: "smp.fabring", Var: "fabring[%d]", Owner: "internal/smp", Struct: "fabricCPU",
			GoField: "fabRing", NameFunc: "fabRingVar", Discipline: DiscAtomic,
			Doc: "async fabric invalidation ring, llist-style post RMW / drain del_all hand-off"},
	}
}

// MatchVar reports whether a concrete dynamic variable name matches the
// entry's pattern; each %d in the pattern matches one or more digits.
func (f Field) MatchVar(name string) bool {
	if f.Var == "" {
		return false
	}
	pat, s := f.Var, name
	for {
		i := strings.Index(pat, "%d")
		if i < 0 {
			return pat == s
		}
		if !strings.HasPrefix(s, pat[:i]) {
			return false
		}
		s = s[i:]
		j := 0
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		if j == 0 {
			return false
		}
		pat, s = pat[i+2:], s[j:]
	}
}

// LookupVar resolves a concrete dynamic variable name (or a pattern
// literal such as "mm%d.pt-nodes") to its registry entry.
func LookupVar(name string) (Field, bool) {
	for _, f := range Registry() {
		if f.Var != "" && (f.Var == name || f.MatchVar(name)) {
			return f, true
		}
	}
	return Field{}, false
}

// VarNames returns the names of every variable the detector has seen, in
// creation-independent sorted order; the registry cross-check test walks
// it to assert no instrumentation site escaped the registry.
func (d *Detector) VarNames() []string {
	if d == nil {
		return nil
	}
	out := make([]string, 0, len(d.vars))
	for name := range d.vars {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
