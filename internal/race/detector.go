// Package race implements a FastTrack-style vector-clock happens-before
// checker for the simulator's logical cores.
//
// The simulator executes on one OS thread, so Go's own race detector can
// never see the concurrency bugs the *modeled* kernel might have: two
// simulated CPUs touching a simulated shared structure are perfectly
// ordered host-side even when no modeled synchronization edge orders them.
// This package restores the missing oracle. Every modeled synchronization
// edge — IPI send→receive, ack→observe, rwsem acquire/release, run-queue
// and work-queue hand-offs, context switches, the return-to-user backstop —
// is reported to the detector as a vector-clock join, and every access to a
// race-instrumented shared structure (mm cpumask, mm generation,
// page-table entries, flush batches, early-ack words, freed page-table
// nodes) is checked against the clocks.
//
// Variables come in two flavours, mirroring the Linux code being modeled:
//
//   - atomic variables model fields Linux accesses with atomics or
//     READ_ONCE/WRITE_ONCE (mm->context.tlb_gen, mm_cpumask, the lazy-TLB
//     indication, csd queues, PTEs). They never race; instead each carries
//     its own clock, and loads/stores act as acquire/release edges, exactly
//     like the C11 semantics the kernel relies on.
//   - plain variables model memory the protocol may only touch when some
//     happens-before edge orders the accesses — the canonical example being
//     freed page-table pages, which a responder's speculative page walker
//     may read until its flush completes (§3.2). Unordered accesses to a
//     plain variable are reported as data races.
//
// Every hook is observational: the detector never calls Delay or mutates
// simulated state, so a checked run is cycle-identical to an unchecked one.
// All methods are safe on a nil *Detector (they no-op), which keeps the
// instrumentation sites branch-free.
package race

import (
	"fmt"

	"shootdown/internal/sim"
)

type threadID int32

// vclock is a dense vector clock indexed by threadID.
type vclock []uint64

func (c vclock) get(t threadID) uint64 {
	if int(t) < len(c) {
		return c[t]
	}
	return 0
}

func (c *vclock) set(t threadID, v uint64) {
	for int(t) >= len(*c) {
		*c = append(*c, 0)
	}
	(*c)[t] = v
}

// join folds src into c element-wise (c = c ⊔ src).
func (c *vclock) join(src vclock) {
	for int(len(*c)) < len(src) {
		*c = append(*c, 0)
	}
	for i, v := range src {
		if v > (*c)[i] {
			(*c)[i] = v
		}
	}
}

// epoch is a FastTrack scalar clock sample: "thread t at clock value c".
type epoch struct {
	t threadID
	c uint64
}

// thread is one simulated actor: a CPU run loop, a daemon process, or the
// engine itself (tid 0, for accesses made outside any proc, e.g. during
// end-of-run verification).
type thread struct {
	id   threadID
	name string
	vc   vclock
}

// Sync is a synchronization object: it carries the clock released into it.
// Named syncs (semaphores) live in the detector's registry; anonymous
// syncs (per-IPI-request, per-task) are created with NewSync and live as
// long as their owner.
type Sync struct {
	name string
	l    vclock
}

// variable is one checked location. Atomic variables reuse the Sync clock
// for acquire/release edges; plain variables carry FastTrack state: the
// last write epoch plus a full read vector clock (the simulator's fan-out
// reads — one responder per target CPU — make read-shared the common case,
// so the read-epoch fast path is not worth its complexity here).
type variable struct {
	name   string
	atomic bool
	sync   Sync // atomic only

	w     epoch // last write (c==0: never written)
	wAt   sim.Time
	wBy   string
	r     vclock     // last read clock per thread
	rAt   []sim.Time // parallel to r: time of that thread's last read
	raced bool       // one report per variable
}

// Kind classifies a detected race by the order the conflicting accesses
// were simulated in.
const (
	KindWriteRead  = "write-read"  // racy read after an unordered write
	KindReadWrite  = "read-write"  // racy write after an unordered read
	KindWriteWrite = "write-write" // racy write after an unordered write
)

// Race is one detected happens-before violation.
type Race struct {
	// Var names the shared location (e.g. "mm1.pt-nodes").
	Var string
	// Kind is one of the Kind* constants.
	Kind string
	// At is the simulated time of the second (detecting) access.
	At sim.Time
	// Msg is the full human-readable description.
	Msg string
}

// Stats counts detector activity, for the report and for asserting that a
// checked run actually exercised the instrumentation.
type Stats struct {
	// Threads is the number of distinct simulated actors seen.
	Threads uint64
	// Reads / Writes count plain-variable accesses.
	Reads, Writes uint64
	// AtomicLoads / AtomicStores / AtomicRMWs count atomic accesses.
	AtomicLoads, AtomicStores, AtomicRMWs uint64
	// Acquires / Releases count explicit sync-edge operations (IPI
	// request hand-offs, ack observations, semaphore transfers).
	Acquires, Releases uint64
	// UserReturns counts return-to-user clock ticks.
	UserReturns uint64
	// SyncObjects / Vars size the registries.
	SyncObjects, Vars uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Threads += o.Threads
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.AtomicLoads += o.AtomicLoads
	s.AtomicStores += o.AtomicStores
	s.AtomicRMWs += o.AtomicRMWs
	s.Acquires += o.Acquires
	s.Releases += o.Releases
	s.UserReturns += o.UserReturns
	s.SyncObjects += o.SyncObjects
	s.Vars += o.Vars
}

// maxRaces caps recorded races per detector; one broken edge fires on
// every shootdown, and the first few reports carry all the signal.
const maxRaces = 64

// Detector is the per-machine happens-before checker.
type Detector struct {
	eng *sim.Engine

	byProc  map[*sim.Proc]*thread
	order   []*thread // creation order, deterministic
	names   map[string]int
	syncs   map[string]*Sync
	vars    map[string]*variable
	races   []Race
	dropped int

	liveStats Stats
}

// New builds a detector for one simulated machine. Thread identities are
// assigned lazily, in first-access order, which the deterministic engine
// makes reproducible across runs.
func New(eng *sim.Engine) *Detector {
	return &Detector{
		eng:    eng,
		byProc: make(map[*sim.Proc]*thread),
		names:  make(map[string]int),
		syncs:  make(map[string]*Sync),
		vars:   make(map[string]*variable),
	}
}

func (d *Detector) cur() *thread {
	p := d.eng.Current()
	th, ok := d.byProc[p]
	if !ok {
		name := "engine"
		if p != nil {
			name = p.Name
		}
		if n := d.names[name]; n > 0 {
			name = fmt.Sprintf("%s#%d", name, n+1)
		}
		d.names[name]++
		th = &thread{id: threadID(len(d.byProc)), name: name}
		th.vc.set(th.id, 1)
		d.byProc[p] = th
		d.order = append(d.order, th)
	}
	return th
}

func (d *Detector) now() sim.Time { return d.eng.Now() }

// NewSync creates an anonymous synchronization object (per IPI request,
// per task). The name is diagnostic only; collisions are fine.
func (d *Detector) NewSync(name string) *Sync {
	if d == nil {
		return nil
	}
	return &Sync{name: name}
}

func (d *Detector) namedSync(name string) *Sync {
	s, ok := d.syncs[name]
	if !ok {
		s = &Sync{name: name}
		d.syncs[name] = s
	}
	return s
}

// Acquire joins s's released clock into the current thread (lock acquire,
// message receive, ack observation).
func (d *Detector) Acquire(s *Sync) {
	if d == nil || s == nil {
		return
	}
	th := d.cur()
	th.vc.join(s.l)
	// stats only after cur() so Threads is counted via Finish.
	d.statsAcquire()
}

// Release publishes the current thread's clock into s and advances the
// thread's own epoch (lock release, message send, acknowledgement).
//
// Release always *joins* into s instead of overwriting it: a read-side
// semaphore release must not erase the clocks of concurrent readers, and
// for the hand-off edges modeled here the conservative join never creates
// a happens-before edge that the protocol does not imply.
func (d *Detector) Release(s *Sync) {
	if d == nil || s == nil {
		return
	}
	th := d.cur()
	s.l.join(th.vc)
	th.vc.set(th.id, th.vc.get(th.id)+1)
	d.statsRelease()
}

// AcquireName / ReleaseName operate on a registry sync (semaphores, whose
// lifetime matches the machine).
func (d *Detector) AcquireName(name string) {
	if d == nil {
		return
	}
	d.Acquire(d.namedSync(name))
}

// ReleaseName is the registry-keyed Release.
func (d *Detector) ReleaseName(name string) {
	if d == nil {
		return
	}
	d.Release(d.namedSync(name))
}

func (d *Detector) varOf(name string, atomic bool) *variable {
	v, ok := d.vars[name]
	if !ok {
		v = &variable{name: name, atomic: atomic}
		v.sync.name = name
		d.vars[name] = v
	}
	return v
}

// AtomicLoad models an atomic/READ_ONCE load of name with acquire
// semantics: the loader joins the clock of past releasing stores.
func (d *Detector) AtomicLoad(name string) {
	if d == nil {
		return
	}
	v := d.varOf(name, true)
	th := d.cur()
	th.vc.join(v.sync.l)
	d.stats().AtomicLoads++
}

// AtomicStore models an atomic/WRITE_ONCE store with release semantics.
func (d *Detector) AtomicStore(name string) {
	if d == nil {
		return
	}
	v := d.varOf(name, true)
	th := d.cur()
	v.sync.l.join(th.vc)
	th.vc.set(th.id, th.vc.get(th.id)+1)
	d.stats().AtomicStores++
}

// AtomicRMW models a read-modify-write (atomic_inc, llist_add/del_all,
// cpumask set/clear): acquire then release on the variable's clock, which
// is exactly the hand-off edge a lock-free queue provides.
func (d *Detector) AtomicRMW(name string) {
	if d == nil {
		return
	}
	v := d.varOf(name, true)
	th := d.cur()
	th.vc.join(v.sync.l)
	v.sync.l.join(th.vc)
	th.vc.set(th.id, th.vc.get(th.id)+1)
	d.stats().AtomicRMWs++
}

// ReadVar checks a plain-variable read against the last write.
func (d *Detector) ReadVar(name string) {
	if d == nil {
		return
	}
	v := d.varOf(name, false)
	th := d.cur()
	d.stats().Reads++
	if v.w.c > 0 && v.w.c > th.vc.get(v.w.t) {
		d.report(v, th, KindWriteRead, fmt.Sprintf(
			"read of %s by %s (t=%d) is concurrent with write by %s (t=%d)",
			v.name, th.name, d.now(), v.wBy, v.wAt))
	}
	v.r.set(th.id, th.vc.get(th.id))
	for int(th.id) >= len(v.rAt) {
		v.rAt = append(v.rAt, 0)
	}
	v.rAt[th.id] = d.now()
}

// WriteVar checks a plain-variable write against the last write and every
// unordered read, then installs the new write epoch.
func (d *Detector) WriteVar(name string) {
	if d == nil {
		return
	}
	v := d.varOf(name, false)
	th := d.cur()
	d.stats().Writes++
	if v.w.c > 0 && v.w.c > th.vc.get(v.w.t) {
		d.report(v, th, KindWriteWrite, fmt.Sprintf(
			"write of %s by %s (t=%d) is concurrent with write by %s (t=%d)",
			v.name, th.name, d.now(), v.wBy, v.wAt))
	}
	for i, rc := range v.r {
		if rc > 0 && rc > th.vc.get(threadID(i)) {
			d.report(v, th, KindReadWrite, fmt.Sprintf(
				"write of %s by %s (t=%d) is concurrent with read by %s (t=%d)",
				v.name, th.name, d.now(), d.order[i].name, v.rAt[i]))
			break
		}
	}
	v.w = epoch{t: th.id, c: th.vc.get(th.id)}
	v.wAt = d.now()
	v.wBy = th.name
	for i := range v.r {
		v.r[i] = 0
	}
}

// ReturnToUser records the return-to-user backstop as a clock tick: the
// transition bounds every window the protocol promises to close before
// user code runs again, so later accesses on this core are distinguishable
// from pre-return ones.
func (d *Detector) ReturnToUser() {
	if d == nil {
		return
	}
	th := d.cur()
	th.vc.set(th.id, th.vc.get(th.id)+1)
	d.stats().UserReturns++
}

func (d *Detector) stats() *Stats { return &d.liveStats }
func (d *Detector) statsAcquire() { d.liveStats.Acquires++ }
func (d *Detector) statsRelease() { d.liveStats.Releases++ }

func (d *Detector) report(v *variable, th *thread, kind, msg string) {
	if v.raced {
		return
	}
	v.raced = true
	if len(d.races) >= maxRaces {
		d.dropped++
		return
	}
	full := fmt.Sprintf("data race on %s (%s):\n%s\nno modeled synchronization edge orders the accesses", v.name, kind, msg)
	d.races = append(d.races, Race{Var: v.name, Kind: kind, At: d.now(), Msg: full})
}

// Finish snapshots the detector into a Summary. Safe to call on nil (the
// summary then covers zero worlds).
func (d *Detector) Finish() *Summary {
	if d == nil {
		return &Summary{}
	}
	st := d.liveStats
	st.Threads = uint64(len(d.order))
	st.SyncObjects = uint64(len(d.syncs))
	st.Vars = uint64(len(d.vars))
	return &Summary{
		Worlds:  1,
		Races:   append([]Race(nil), d.races...),
		Dropped: d.dropped,
		Stats:   st,
	}
}
