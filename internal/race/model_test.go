package race_test

import (
	"testing"

	"shootdown/internal/core"
	"shootdown/internal/kernel"
	"shootdown/internal/mach"
	"shootdown/internal/mm"
	"shootdown/internal/pagetable"
	"shootdown/internal/race"
	"shootdown/internal/sim"
	"shootdown/internal/syscalls"
)

const pg = pagetable.PageSize4K

func boot(t *testing.T, pti bool, cfg core.Config, seed uint64, withRace bool) (*sim.Engine, *kernel.Kernel, *core.Flusher, *race.Detector) {
	t.Helper()
	eng := sim.NewEngine(seed)
	kcfg := kernel.DefaultConfig()
	kcfg.PTI = pti
	kcfg.ConsolidatedCachelines = cfg.CachelineConsolidation
	kcfg.HWMessageIPI = cfg.HWMessageIPI
	k := kernel.New(eng, mach.DefaultTopology(), mach.DefaultCosts(), kcfg)
	var d *race.Detector
	if withRace {
		d = race.New(eng)
		k.EnableRace(d)
	}
	f, err := core.NewFlusher(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k.SetFlusher(f)
	k.Start()
	return eng, k, f, d
}

// runMunmapPair runs the canonical §3.2 scenario: one task busily running
// user code on cpu2 (so it is a live IPI responder) while a task on cpu0
// munmaps a region whose page tables are freed.
func runMunmapPair(t *testing.T, cfg core.Config, withRace bool) (*race.Detector, *core.Flusher, sim.Time) {
	t.Helper()
	eng, k, f, d := boot(t, true, cfg, 11, withRace)
	as := k.NewAddressSpace()
	stop := false
	resp := &kernel.Task{Name: "resp", MM: as, Fn: func(ctx *kernel.Ctx) {
		for !stop {
			ctx.UserRun(1000)
		}
	}}
	k.CPU(2).Spawn(resp)
	init := &kernel.Task{Name: "init", MM: as, Fn: func(ctx *kernel.Ctx) {
		ctx.UserRun(5000)
		v, err := syscalls.MMap(ctx, 4*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
		if err != nil {
			t.Error(err)
			stop = true
			return
		}
		if err := ctx.Touch(v.Start, mm.AccessWrite); err != nil {
			t.Error(err)
		}
		if err := syscalls.Munmap(ctx, v.Start, v.Len()); err != nil {
			t.Error(err)
		}
		stop = true
	}}
	k.CPU(0).Spawn(init)
	eng.Run()
	if !init.Done() || !resp.Done() {
		t.Fatal("tasks did not finish")
	}
	return d, f, eng.Now()
}

// TestBrokenEarlyAckReportsExactlyOneRace seeds the §3.2 bug the paper's
// patch guards against — acking before the flush when page tables are
// freed — and asserts the detector reports it exactly once: the
// responder's speculative walk of the freed page-table nodes is unordered
// against the initiator's reclamation.
func TestBrokenEarlyAckReportsExactlyOneRace(t *testing.T) {
	cfg := core.Config{ConcurrentFlush: true, EarlyAck: true, BrokenEarlyAck: true}
	d, _, _ := runMunmapPair(t, cfg, true)
	sum := d.Finish()
	if len(sum.Races) != 1 {
		t.Fatalf("want exactly 1 race, got %d (dropped %d):\n%s",
			len(sum.Races), sum.Dropped, sum.Report())
	}
	r := sum.Races[0]
	if r.Var != "mm1.pt-nodes" {
		t.Fatalf("race on unexpected variable %q: %+v", r.Var, r)
	}
	if r.Kind != race.KindReadWrite && r.Kind != race.KindWriteRead {
		t.Fatalf("unexpected race kind %q: %+v", r.Kind, r)
	}
}

// TestLegalEarlyAckIsRaceFree is the control: with the suppression in
// place (the shipped protocol), the same workload is clean — the late ack
// orders the responder's walk before the initiator frees the tables.
func TestLegalEarlyAckIsRaceFree(t *testing.T) {
	cfg := core.Config{ConcurrentFlush: true, EarlyAck: true}
	d, f, _ := runMunmapPair(t, cfg, true)
	sum := d.Finish()
	if !sum.OK() {
		t.Fatalf("legal protocol reported races:\n%s", sum.Report())
	}
	if f.Stats().EarlyAckSuppressed == 0 {
		t.Fatal("scenario did not exercise the early-ack suppression")
	}
	if sum.Stats.Reads == 0 || sum.Stats.Writes == 0 {
		t.Fatalf("pt-nodes accesses not observed: %+v", sum.Stats)
	}
}

// runStress runs three workers sharing one address space across three
// CPUs, mixing faults, madvise, mprotect and a final table-freeing munmap.
func runStress(t *testing.T, pti bool, cfg core.Config, withRace bool) (*race.Detector, *core.Flusher, sim.Time) {
	t.Helper()
	eng, k, f, d := boot(t, pti, cfg, 7, withRace)
	as := k.NewAddressSpace()
	cpus := []mach.CPU{0, 2, 4}
	ready := 0
	var tasks []*kernel.Task
	for i, cpu := range cpus {
		i := i
		task := &kernel.Task{Name: "worker", MM: as, Fn: func(ctx *kernel.Ctx) {
			v, err := syscalls.MMap(ctx, 16*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
			if err != nil {
				t.Error(err)
				return
			}
			ready++
			for ready < len(cpus) {
				ctx.UserRun(500)
			}
			for round := 0; round < 6; round++ {
				for pgi := uint64(0); pgi < 4; pgi++ {
					if err := ctx.Touch(v.Start+pgi*pg, mm.AccessWrite); err != nil {
						t.Error(err)
						return
					}
				}
				switch (round + i) % 3 {
				case 0:
					if err := syscalls.MadviseDontneed(ctx, v.Start, 4*pg); err != nil {
						t.Error(err)
					}
				case 1:
					if err := syscalls.Mprotect(ctx, v.Start, 2*pg, mm.ProtRead); err != nil {
						t.Error(err)
					}
					if err := syscalls.Mprotect(ctx, v.Start, 2*pg, mm.ProtRead|mm.ProtWrite); err != nil {
						t.Error(err)
					}
				case 2:
					ctx.UserRun(2000)
				}
			}
			if err := syscalls.Munmap(ctx, v.Start, 16*pg); err != nil {
				t.Error(err)
			}
		}}
		tasks = append(tasks, task)
		k.CPU(cpu).Spawn(task)
	}
	eng.Run()
	for _, task := range tasks {
		if !task.Done() {
			t.Fatal("worker did not finish")
		}
	}
	return d, f, eng.Now()
}

// TestCumulativeSuiteRaceFree race-checks the paper's cumulative
// optimization ladder plus the full set and the comparative extensions,
// under both PTI modes. The shipped protocol must be clean everywhere.
func TestCumulativeSuiteRaceFree(t *testing.T) {
	for _, pti := range []bool{true, false} {
		configs := core.CumulativeConfigs(pti)
		all := core.All()
		extras := []core.Config{
			all,
			{SerializedIPIs: true},
			{LazyRemote: true},
			{ConcurrentFlush: true, EarlyAck: true, HWMessageIPI: true},
		}
		configs = append(configs, extras...)
		for _, cfg := range configs {
			d, _, _ := runStress(t, pti, cfg, true)
			sum := d.Finish()
			if !sum.OK() {
				t.Errorf("pti=%v cfg=%s: %d race(s):\n%s", pti, cfg, len(sum.Races), sum.Report())
			}
			if sum.Stats.Acquires == 0 || sum.Stats.AtomicRMWs == 0 {
				t.Errorf("pti=%v cfg=%s: instrumentation not exercised: %+v", pti, cfg, sum.Stats)
			}
		}
	}
}

// TestSuiteVariablesAllRegistered is the dynamic half of the race
// cross-validation contract: every variable a full-optimization checked
// run actually creates must resolve to an entry in the instrumented-field
// registry, so the static lockset tier (which proves the registry) can
// never silently miss a location the dynamic model watches.
func TestSuiteVariablesAllRegistered(t *testing.T) {
	d, _, _ := runStress(t, true, core.All(), true)
	names := d.VarNames()
	if len(names) == 0 {
		t.Fatal("checked run created no variables")
	}
	seen := map[string]bool{}
	for _, name := range names {
		f, ok := race.LookupVar(name)
		if !ok {
			t.Errorf("dynamic variable %q has no registry entry", name)
			continue
		}
		seen[f.Key] = true
	}
	// And the run must exercise the core of the registry (the kernel
	// fields every schedule touches), so the test cannot pass vacuously.
	for _, key := range []string{"cpu.runq", "cpu.tlbgen", "mm.tlb_gen", "mm.cpumask", "smp.csq"} {
		if !seen[key] {
			t.Errorf("registry entry %q never instantiated by the suite", key)
		}
	}
}

// TestCheckedRunCycleIdentical asserts the detector is observational: the
// same workload ends at the same simulated cycle with the same protocol
// stats whether or not a detector is attached.
func TestCheckedRunCycleIdentical(t *testing.T) {
	for _, pti := range []bool{true, false} {
		cfg := core.AllGeneral()
		_, fOff, endOff := runStress(t, pti, cfg, false)
		d, fOn, endOn := runStress(t, pti, cfg, true)
		if endOff != endOn {
			t.Fatalf("pti=%v: checked run ended at t=%d, unchecked at t=%d", pti, endOn, endOff)
		}
		if fOn.Stats() != fOff.Stats() {
			t.Fatalf("pti=%v: protocol stats diverged:\nchecked:   %+v\nunchecked: %+v",
				pti, fOn.Stats(), fOff.Stats())
		}
		if sum := d.Finish(); sum.Stats.Acquires == 0 {
			t.Fatalf("pti=%v: detector saw no sync edges: %+v", pti, sum.Stats)
		}
	}
}
