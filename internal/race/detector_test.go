package race

import (
	"strings"
	"testing"

	"shootdown/internal/sim"
)

func TestSyncEdgeOrdersAccesses(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng)
	s := d.NewSync("hand-off")
	eng.Go("a", func(p *sim.Proc) {
		d.WriteVar("x")
		d.Release(s)
	})
	eng.Go("b", func(p *sim.Proc) {
		p.Delay(10)
		d.Acquire(s)
		d.ReadVar("x")
		d.WriteVar("x")
	})
	eng.Run()
	sum := d.Finish()
	if !sum.OK() {
		t.Fatalf("ordered accesses reported as racy: %+v", sum.Races)
	}
	if sum.Stats.Reads != 1 || sum.Stats.Writes != 2 {
		t.Fatalf("stats miscounted: %+v", sum.Stats)
	}
	if sum.Stats.Threads != 2 {
		t.Fatalf("want 2 threads, got %d", sum.Stats.Threads)
	}
}

func TestNamedSemaphoreEdge(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng)
	eng.Go("a", func(p *sim.Proc) {
		d.AcquireName("sem:mmap")
		d.WriteVar("pt")
		d.ReleaseName("sem:mmap")
	})
	eng.Go("b", func(p *sim.Proc) {
		p.Delay(10)
		d.AcquireName("sem:mmap")
		d.WriteVar("pt")
		d.ReleaseName("sem:mmap")
	})
	eng.Run()
	if sum := d.Finish(); !sum.OK() {
		t.Fatalf("lock-ordered writes reported as racy: %+v", sum.Races)
	}
}

func TestUnorderedWritesRace(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng)
	eng.Go("a", func(p *sim.Proc) {
		d.WriteVar("z")
	})
	eng.Go("b", func(p *sim.Proc) {
		p.Delay(5)
		d.WriteVar("z")
		// The variable already raced: the duplicate must be deduplicated.
		d.WriteVar("z")
	})
	eng.Run()
	sum := d.Finish()
	if len(sum.Races) != 1 {
		t.Fatalf("want exactly 1 race, got %d: %+v", len(sum.Races), sum.Races)
	}
	r := sum.Races[0]
	if r.Var != "z" || r.Kind != KindWriteWrite {
		t.Fatalf("unexpected race: %+v", r)
	}
}

func TestUnorderedReadWriteRace(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng)
	eng.Go("a", func(p *sim.Proc) {
		d.ReadVar("z")
	})
	eng.Go("b", func(p *sim.Proc) {
		p.Delay(5)
		d.WriteVar("z")
	})
	eng.Run()
	sum := d.Finish()
	if len(sum.Races) != 1 || sum.Races[0].Kind != KindReadWrite {
		t.Fatalf("want one read-write race, got %+v", sum.Races)
	}
}

func TestAtomicAccessesNeverRaceAndCarryEdges(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng)
	eng.Go("a", func(p *sim.Proc) {
		d.WriteVar("payload")
		d.AtomicStore("flag") // release
	})
	eng.Go("b", func(p *sim.Proc) {
		p.Delay(10)
		d.AtomicLoad("flag") // acquire: payload write now ordered
		d.ReadVar("payload")
		d.AtomicRMW("queue")
	})
	eng.Run()
	sum := d.Finish()
	if !sum.OK() {
		t.Fatalf("atomic-ordered accesses reported as racy: %+v", sum.Races)
	}
	st := sum.Stats
	if st.AtomicLoads != 1 || st.AtomicStores != 1 || st.AtomicRMWs != 1 {
		t.Fatalf("atomic stats miscounted: %+v", st)
	}
}

func TestNilDetectorIsSafe(t *testing.T) {
	var d *Detector
	d.Acquire(nil)
	d.Release(nil)
	d.AcquireName("x")
	d.ReleaseName("x")
	d.AtomicLoad("x")
	d.AtomicStore("x")
	d.AtomicRMW("x")
	d.ReadVar("x")
	d.WriteVar("x")
	d.ReturnToUser()
	if s := d.NewSync("x"); s != nil {
		t.Fatal("nil detector returned a sync object")
	}
	sum := d.Finish()
	if !sum.OK() || sum.Worlds != 0 {
		t.Fatalf("nil Finish: %+v", sum)
	}
}

func TestReportFormat(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng)
	eng.Go("a", func(p *sim.Proc) { d.WriteVar("z") })
	eng.Go("b", func(p *sim.Proc) { p.Delay(5); d.WriteVar("z") })
	eng.Run()
	rep := Merge([]*Detector{d}).Report()
	for _, want := range []string{
		"1 simulation(s) race-checked",
		"FAIL: 1 data race(s) (1 write-write)",
		"data race on z",
	} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}

	eng2 := sim.NewEngine(1)
	d2 := New(eng2)
	eng2.Go("a", func(p *sim.Proc) { d2.WriteVar("z") })
	eng2.Run()
	if rep := Merge([]*Detector{d2}).Report(); !strings.Contains(rep, "PASS: no data races") {
		t.Fatalf("clean report missing PASS:\n%s", rep)
	}
}

func TestRaceCapDropsButCounts(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng)
	eng.Go("a", func(p *sim.Proc) {
		for i := 0; i < maxRaces+7; i++ {
			d.WriteVar(varName(i))
		}
	})
	eng.Go("b", func(p *sim.Proc) {
		p.Delay(5)
		for i := 0; i < maxRaces+7; i++ {
			d.WriteVar(varName(i))
		}
	})
	eng.Run()
	sum := d.Finish()
	if len(sum.Races) != maxRaces || sum.Dropped != 7 {
		t.Fatalf("cap not enforced: %d races, %d dropped", len(sum.Races), sum.Dropped)
	}
}

func varName(i int) string {
	return "v" + string(rune('A'+i/26)) + string(rune('a'+i%26))
}
