package race

import (
	"strings"
	"testing"

	"shootdown/internal/sim"
)

func TestRegistryWellFormed(t *testing.T) {
	seenKey := map[string]bool{}
	seenVar := map[string]bool{}
	valid := map[string]bool{
		DiscAtomic: true, DiscConfined: true, DiscAckOrdered: true, DiscEpoch: true,
	}
	prev := ""
	for _, f := range Registry() {
		if f.Key == "" || seenKey[f.Key] {
			t.Errorf("missing or duplicate key %q", f.Key)
		}
		seenKey[f.Key] = true
		if f.Key < prev {
			t.Errorf("registry out of order at %q (after %q)", f.Key, prev)
		}
		prev = f.Key
		if f.Var != "" {
			if seenVar[f.Var] {
				t.Errorf("%s: duplicate var pattern %q", f.Key, f.Var)
			}
			seenVar[f.Var] = true
		}
		if !valid[f.Discipline] {
			t.Errorf("%s: unknown discipline %q", f.Key, f.Discipline)
		}
		if f.Owner == "" || f.Struct == "" || f.Doc == "" {
			t.Errorf("%s: incomplete entry %+v", f.Key, f)
		}
		if f.Discipline == DiscAckOrdered && (f.Guard == "" || f.GuardStruct == "") {
			t.Errorf("%s: ack-ordered entry needs a guard field", f.Key)
		}
	}
}

func TestMatchVar(t *testing.T) {
	cases := []struct {
		pat, name string
		want      bool
	}{
		{"mm%d.tlb_gen", "mm12.tlb_gen", true},
		{"mm%d.tlb_gen", "mm.tlb_gen", false},
		{"mm%d.tlb_gen", "mm1.tlb_gen.x", false},
		{"mm%d.tlb_gen", "mm1x.tlb_gen", false},
		{"csq[%d]", "csq[0]", true},
		{"csq[%d]", "csq[31]", true},
		{"csq[%d]", "csq[]", false},
		{"cpu%d.runq", "cpu7.runq", true},
		{"cpu%d.runq", "cpu7.lazy", false},
	}
	for _, c := range cases {
		if got := (Field{Var: c.pat}).MatchVar(c.name); got != c.want {
			t.Errorf("MatchVar(%q, %q) = %v, want %v", c.pat, c.name, got, c.want)
		}
	}
}

func TestLookupVarResolvesUniquely(t *testing.T) {
	// Each pattern instantiated with a concrete index must resolve back
	// to exactly its own entry (no pattern shadows another).
	for _, f := range Registry() {
		if f.Var == "" {
			continue
		}
		name := strings.ReplaceAll(f.Var, "%d", "3")
		got, ok := LookupVar(name)
		if !ok || got.Key != f.Key {
			t.Errorf("LookupVar(%q) = %q, %v; want %q", name, got.Key, ok, f.Key)
		}
		// The pattern literal itself (as it appears in Sprintf call
		// sites) must also resolve, for the static tier.
		got, ok = LookupVar(f.Var)
		if !ok || got.Key != f.Key {
			t.Errorf("LookupVar(%q) = %q, %v; want %q", f.Var, got.Key, ok, f.Key)
		}
	}
	if _, ok := LookupVar("mm1.unheard-of"); ok {
		t.Error("LookupVar matched an unregistered name")
	}
}

func TestVarNamesSortedAndRegistered(t *testing.T) {
	eng := sim.NewEngine(1)
	d := New(eng)
	eng.Go("a", func(p *sim.Proc) {
		d.AtomicRMW("mm1.tlb_gen")
		d.AtomicRMW("csq[2]")
		d.WriteVar("mm1.pt-nodes")
		d.ReadVar("cpu0.tlbgen")
	})
	eng.Run()
	names := d.VarNames()
	want := []string{"cpu0.tlbgen", "csq[2]", "mm1.pt-nodes", "mm1.tlb_gen"}
	if len(names) != len(want) {
		t.Fatalf("VarNames = %v, want %v", names, want)
	}
	for i, n := range names {
		if n != want[i] {
			t.Fatalf("VarNames = %v, want %v", names, want)
		}
		if _, ok := LookupVar(n); !ok {
			t.Errorf("detector variable %q has no registry entry", n)
		}
	}
	if (*Detector)(nil).VarNames() != nil {
		t.Error("nil detector must report no variables")
	}
}

// --- vector-clock / epoch edge cases exposed by the registry export ---

func TestVClockJoinGrowsShorterClock(t *testing.T) {
	var a, b vclock
	b.set(3, 7) // b is longer than a
	a.join(b)
	if a.get(3) != 7 || len(a) != 4 {
		t.Fatalf("join did not widen: %v", a)
	}
	a.set(1, 9)
	b.join(a)
	if b.get(1) != 9 || b.get(3) != 7 {
		t.Fatalf("join lost entries: %v", b)
	}
	// Join never decreases a component.
	var c vclock
	c.set(3, 100)
	c.join(b)
	if c.get(3) != 100 {
		t.Fatalf("join decreased a component: %v", c)
	}
}

func TestReadSharedThenOrderedWrite(t *testing.T) {
	// Two concurrent readers (read-shared state), then a writer that is
	// ordered after BOTH via separate sync edges: no race. FastTrack's
	// read vector must retain both reader epochs for this to hold.
	eng := sim.NewEngine(1)
	d := New(eng)
	s1, s2 := d.NewSync("r1-done"), d.NewSync("r2-done")
	eng.Go("r1", func(p *sim.Proc) { d.ReadVar("x"); d.Release(s1) })
	eng.Go("r2", func(p *sim.Proc) { d.ReadVar("x"); d.Release(s2) })
	eng.Go("w", func(p *sim.Proc) {
		p.Delay(10)
		d.Acquire(s1)
		d.Acquire(s2)
		d.WriteVar("x")
	})
	eng.Run()
	if sum := d.Finish(); !sum.OK() {
		t.Fatalf("ordered read-shared write reported racy: %+v", sum.Races)
	}
}

func TestReadSharedWriteRacesUnjoinedReader(t *testing.T) {
	// Same shape, but the writer joins only one of the two readers: the
	// unjoined reader's epoch must surface as a read-write race.
	eng := sim.NewEngine(1)
	d := New(eng)
	s1 := d.NewSync("r1-done")
	eng.Go("r1", func(p *sim.Proc) { d.ReadVar("x"); d.Release(s1) })
	eng.Go("r2", func(p *sim.Proc) { d.ReadVar("x") })
	eng.Go("w", func(p *sim.Proc) {
		p.Delay(10)
		d.Acquire(s1)
		d.WriteVar("x")
	})
	eng.Run()
	sum := d.Finish()
	if len(sum.Races) != 1 || sum.Races[0].Kind != KindReadWrite {
		t.Fatalf("want exactly one read-write race, got %+v", sum.Races)
	}
	if !strings.Contains(sum.Races[0].Msg, "r2") {
		t.Fatalf("race does not blame the unjoined reader: %s", sum.Races[0].Msg)
	}
}

func TestWriteResetsReadVector(t *testing.T) {
	// After an ordered write, the stale reader epochs must be cleared:
	// a second writer ordered only after the first write must not be
	// blamed for pre-write reads.
	eng := sim.NewEngine(1)
	d := New(eng)
	s1, s2, sw := d.NewSync("r1"), d.NewSync("r2"), d.NewSync("w1")
	eng.Go("r1", func(p *sim.Proc) { d.ReadVar("x"); d.Release(s1) })
	eng.Go("r2", func(p *sim.Proc) { d.ReadVar("x"); d.Release(s2) })
	eng.Go("w1", func(p *sim.Proc) {
		p.Delay(10)
		d.Acquire(s1)
		d.Acquire(s2)
		d.WriteVar("x")
		d.Release(sw)
	})
	eng.Go("w2", func(p *sim.Proc) {
		p.Delay(20)
		d.Acquire(sw) // ordered after w1 only, not after the readers
		d.WriteVar("x")
	})
	eng.Run()
	if sum := d.Finish(); !sum.OK() {
		t.Fatalf("stale read epochs survived a write: %+v", sum.Races)
	}
}

func TestEpochOnePerVariableReporting(t *testing.T) {
	// A variable reports at most once, and the write epoch advances so a
	// later ordered access is judged against the *new* write.
	eng := sim.NewEngine(1)
	d := New(eng)
	s := d.NewSync("h")
	eng.Go("a", func(p *sim.Proc) { d.WriteVar("x"); d.Release(s) })
	eng.Go("b", func(p *sim.Proc) {
		d.WriteVar("x") // racy with a's write
		d.WriteVar("x") // second report suppressed
		p.Delay(10)
		d.Acquire(s)
		d.ReadVar("x")
	})
	eng.Run()
	sum := d.Finish()
	if len(sum.Races) != 1 {
		t.Fatalf("want one capped report per variable, got %+v", sum.Races)
	}
}

func TestAtomicRMWChainsHandOff(t *testing.T) {
	// RMW acquire+release chains a hand-off across three threads: the
	// final plain access is ordered through the atomic's clock alone.
	eng := sim.NewEngine(1)
	d := New(eng)
	eng.Go("a", func(p *sim.Proc) { d.WriteVar("payload"); d.AtomicRMW("q") })
	eng.Go("b", func(p *sim.Proc) { p.Delay(10); d.AtomicRMW("q") })
	eng.Go("c", func(p *sim.Proc) { p.Delay(20); d.AtomicRMW("q"); d.ReadVar("payload") })
	eng.Run()
	if sum := d.Finish(); !sum.OK() {
		t.Fatalf("RMW chain did not order the payload: %+v", sum.Races)
	}
	if st := d.Finish().Stats; st.AtomicRMWs != 3 {
		t.Fatalf("want 3 RMWs, got %+v", st)
	}
}

func TestAtomicLoadAloneDoesNotRelease(t *testing.T) {
	// A load is acquire-only: a reader's load must not publish its own
	// clock, so a later writer that only loads the atomic stays racy
	// with the reader's plain write.
	eng := sim.NewEngine(1)
	d := New(eng)
	eng.Go("a", func(p *sim.Proc) { d.WriteVar("x"); d.AtomicLoad("flag") })
	eng.Go("b", func(p *sim.Proc) { p.Delay(10); d.AtomicLoad("flag"); d.WriteVar("x") })
	eng.Run()
	sum := d.Finish()
	if len(sum.Races) != 1 || sum.Races[0].Kind != KindWriteWrite {
		t.Fatalf("acquire-only load created a spurious edge: %+v", sum.Races)
	}
}
