// Package stats provides the small statistical helpers the experiment
// harness uses: per-run summaries (mean, standard deviation, extrema) and
// speedup computations, mirroring how the paper reports its measurements
// (5 runs, mean and standard deviation).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
}

// Summarize computes a Summary of xs. An empty sample yields zeros.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// SummarizeUint64 converts and summarizes.
func SummarizeUint64(xs []uint64) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// String renders "mean ± std".
func (s Summary) String() string {
	return fmt.Sprintf("%.0f ± %.0f", s.Mean, s.Std)
}

// Percentile returns the p-th percentile (0-100) of xs using
// nearest-rank on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if p <= 0 {
		return ys[0]
	}
	if p >= 100 {
		return ys[len(ys)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(ys)))) - 1
	if rank < 0 {
		rank = 0
	}
	return ys[rank]
}

// Speedup returns baseline/value: >1 means value is faster (smaller).
func Speedup(baseline, value float64) float64 {
	if value == 0 {
		return 0
	}
	return baseline / value
}

// Reduction returns the fractional latency reduction from baseline to
// value: (baseline-value)/baseline. Positive means value is faster.
func Reduction(baseline, value float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - value) / baseline
}
