package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !approx(s.Mean, 5) {
		t.Fatalf("summary = %+v", s)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("extrema = %v..%v", s.Min, s.Max)
	}
	// Sample std of this classic set is sqrt(32/7).
	if !approx(s.Std, math.Sqrt(32.0/7.0)) {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty = %+v", s)
	}
	if s := Summarize([]float64{3}); s.Std != 0 || s.Mean != 3 {
		t.Fatalf("single = %+v", s)
	}
}

func TestSummarizeUint64(t *testing.T) {
	s := SummarizeUint64([]uint64{1, 2, 3})
	if !approx(s.Mean, 2) {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	// The input must not be reordered.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestSpeedupReduction(t *testing.T) {
	if got := Speedup(200, 100); !approx(got, 2) {
		t.Fatalf("speedup = %v", got)
	}
	if got := Reduction(200, 100); !approx(got, 0.5) {
		t.Fatalf("reduction = %v", got)
	}
	if Speedup(1, 0) != 0 || Reduction(0, 1) != 0 {
		t.Fatal("division guards failed")
	}
}

func TestSummaryProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		return s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
