package pagetable

// FrameAlloc hands out physical frame numbers for simulated memory. It is a
// bump allocator with a free list: the simulation never models physical
// memory contents, only identity, so frames are just unique integers.
type FrameAlloc struct {
	next uint64
	free []uint64
	live int
}

// NewFrameAlloc returns an allocator whose first frame is firstFrame
// (frame 0 is conventionally reserved so that a zero Frame is "no frame").
func NewFrameAlloc() *FrameAlloc {
	return &FrameAlloc{next: 1}
}

// Alloc returns a fresh (or recycled) frame number.
func (a *FrameAlloc) Alloc() uint64 {
	a.live++
	if n := len(a.free); n > 0 {
		f := a.free[n-1]
		a.free = a.free[:n-1]
		return f
	}
	f := a.next
	a.next++
	return f
}

// AllocContig returns n consecutive frame numbers (for 2 MiB pages).
func (a *FrameAlloc) AllocContig(n int) uint64 {
	a.live += n
	f := a.next
	a.next += uint64(n)
	return f
}

// Free recycles a frame.
func (a *FrameAlloc) Free(frame uint64) {
	a.live--
	a.free = append(a.free, frame)
}

// FreeContig recycles n consecutive frames starting at base.
func (a *FrameAlloc) FreeContig(base uint64, n int) {
	for i := 0; i < n; i++ {
		a.Free(base + uint64(i))
	}
}

// Live returns the number of currently allocated frames.
func (a *FrameAlloc) Live() int { return a.live }
