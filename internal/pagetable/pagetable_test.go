package pagetable

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestMapWalkUnmap4K(t *testing.T) {
	pt := New()
	if err := pt.Map(0x1000, 42, Size4K, Write|User); err != nil {
		t.Fatal(err)
	}
	tr, err := pt.Walk(0x1234)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Frame != 42 || tr.Size != Size4K || tr.VA != 0x1000 {
		t.Fatalf("translation = %+v", tr)
	}
	if !tr.Flags.Has(Present | Write | User) {
		t.Fatalf("flags = %v", tr.Flags)
	}
	if got := tr.PA(0x1234); got != 42<<PageShift4K+0x234 {
		t.Fatalf("PA = %#x", got)
	}
	if tr.Steps != 4 {
		t.Fatalf("steps = %d, want 4", tr.Steps)
	}
	if _, err := pt.Unmap(0x1000); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Walk(0x1000); !errors.Is(err, ErrNotMapped) {
		t.Fatalf("walk after unmap: %v", err)
	}
}

func TestMapWalk2M(t *testing.T) {
	pt := New()
	if err := pt.Map(2*PageSize2M, 512, Size2M, Write); err != nil {
		t.Fatal(err)
	}
	tr, err := pt.Walk(2*PageSize2M + 0x1234)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size != Size2M || !tr.Flags.Has(Huge) {
		t.Fatalf("translation = %+v", tr)
	}
	if tr.Steps != 3 {
		t.Fatalf("steps = %d, want 3 for 2M leaf", tr.Steps)
	}
	if got := tr.PA(2*PageSize2M + 0x12345); got != 512<<PageShift4K+0x12345 {
		t.Fatalf("PA = %#x", got)
	}
}

func TestMapErrors(t *testing.T) {
	pt := New()
	if err := pt.Map(0x1001, 1, Size4K, 0); !errors.Is(err, ErrMisaligned) {
		t.Fatalf("misaligned: %v", err)
	}
	if err := pt.Map(MaxVA, 1, Size4K, 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out of range: %v", err)
	}
	if err := pt.Map(0x1000, 1, Size4K, 0); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0x1000, 2, Size4K, 0); !errors.Is(err, ErrAlreadyMapped) {
		t.Fatalf("double map: %v", err)
	}
	// 4K under an existing 2M leaf fails.
	if err := pt.Map(PageSize2M, 3, Size2M, 0); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(PageSize2M+PageSize4K, 4, Size4K, 0); !errors.Is(err, ErrAlreadyMapped) {
		t.Fatalf("4K under 2M: %v", err)
	}
}

func TestFlagManipulation(t *testing.T) {
	pt := New()
	if err := pt.Map(0x2000, 7, Size4K, Write|User); err != nil {
		t.Fatal(err)
	}
	if err := pt.ClearFlags(0x2000, Write); err != nil {
		t.Fatal(err)
	}
	pte, size, err := pt.Lookup(0x2000)
	if err != nil || size != Size4K {
		t.Fatalf("lookup: %v %v", err, size)
	}
	if pte.Flags.Has(Write) {
		t.Fatal("Write still set after ClearFlags")
	}
	if err := pt.SetFlags(0x2000, Dirty|Accessed); err != nil {
		t.Fatal(err)
	}
	pte, _, _ = pt.Lookup(0x2000)
	if !pte.Flags.Has(Dirty | Accessed) {
		t.Fatal("SetFlags did not apply")
	}
	if err := pt.ClearFlags(0x2000, Present); err == nil {
		t.Fatal("clearing Present must be rejected")
	}
}

func TestRemapForCoW(t *testing.T) {
	pt := New()
	if err := pt.Map(0x3000, 10, Size4K, User); err != nil {
		t.Fatal(err)
	}
	if err := pt.Remap(0x3000, 11, Write|User|Dirty); err != nil {
		t.Fatal(err)
	}
	tr, err := pt.Walk(0x3000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Frame != 11 || !tr.Flags.Has(Write|Dirty|Present) {
		t.Fatalf("after remap: %+v", tr)
	}
}

func TestFreedTables(t *testing.T) {
	pt := New()
	// Two pages sharing one PT.
	if err := pt.Map(0x1000, 1, Size4K, 0); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0x2000, 2, Size4K, 0); err != nil {
		t.Fatal(err)
	}
	if pt.TablePages() != 3 { // PDPT + PD + PT
		t.Fatalf("TablePages = %d, want 3", pt.TablePages())
	}
	freed, err := pt.Unmap(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if freed {
		t.Fatal("unmap of first page freed tables while sibling still mapped")
	}
	freed, err = pt.Unmap(0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if !freed {
		t.Fatal("unmap of last page did not free tables")
	}
	if pt.TablePages() != 0 {
		t.Fatalf("TablePages = %d after full unmap, want 0", pt.TablePages())
	}
	if pt.LeafCount() != 0 {
		t.Fatalf("LeafCount = %d, want 0", pt.LeafCount())
	}
}

func TestUnmapRange(t *testing.T) {
	pt := New()
	for i := uint64(0); i < 8; i++ {
		if err := pt.Map(0x10000+i*PageSize4K, i+1, Size4K, 0); err != nil {
			t.Fatal(err)
		}
	}
	removed, freed, err := pt.UnmapRange(0x10000+2*PageSize4K, 0x10000+5*PageSize4K)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 || freed {
		t.Fatalf("removed=%d freed=%v, want 3,false", removed, freed)
	}
	removed, freed, err = pt.UnmapRange(0, MaxVA)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 5 || !freed {
		t.Fatalf("removed=%d freed=%v, want 5,true", removed, freed)
	}
}

func TestVisitRangeOrder(t *testing.T) {
	pt := New()
	vas := []uint64{0x7000, 0x1000, PageSize2M * 3, 0x5000}
	for i, va := range vas {
		size := Size4K
		if va >= PageSize2M {
			size = Size2M
		}
		if err := pt.Map(va, uint64(i+1), size, 0); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	pt.VisitRange(0, MaxVA, func(tr Translation) { got = append(got, tr.VA) })
	want := []uint64{0x1000, 0x5000, 0x7000, PageSize2M * 3}
	if len(got) != len(want) {
		t.Fatalf("visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visited %v, want %v", got, want)
		}
	}
}

func TestVisitRangePartialOverlap(t *testing.T) {
	pt := New()
	if err := pt.Map(PageSize2M, 1, Size2M, 0); err != nil {
		t.Fatal(err)
	}
	var n int
	// Range intersecting the middle of the 2M page must still visit it.
	pt.VisitRange(PageSize2M+0x1000, PageSize2M+0x2000, func(Translation) { n++ })
	if n != 1 {
		t.Fatalf("visited %d leaves, want 1", n)
	}
}

func TestFlagsString(t *testing.T) {
	f := Present | Write | Global
	if got := f.String(); got != "pw---g---" {
		t.Fatalf("String = %q", got)
	}
}

// Property: mapping a set of distinct pages then walking each returns the
// exact frame; unmapping all leaves an empty table with zero table pages.
func TestMapUnmapProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		pt := New()
		seen := map[uint64]uint64{}
		for i, r := range raw {
			va := (uint64(r) % (1 << 30)) &^ (PageSize4K - 1)
			if _, dup := seen[va]; dup {
				continue
			}
			frame := uint64(i + 1)
			if err := pt.Map(va, frame, Size4K, User); err != nil {
				return false
			}
			seen[va] = frame
		}
		for va, frame := range seen {
			tr, err := pt.Walk(va)
			if err != nil || tr.Frame != frame {
				return false
			}
		}
		if pt.LeafCount() != len(seen) {
			return false
		}
		for va := range seen {
			if _, err := pt.Unmap(va); err != nil {
				return false
			}
		}
		return pt.LeafCount() == 0 && pt.TablePages() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameAlloc(t *testing.T) {
	a := NewFrameAlloc()
	f1 := a.Alloc()
	f2 := a.Alloc()
	if f1 == 0 || f1 == f2 {
		t.Fatalf("frames not unique/nonzero: %d %d", f1, f2)
	}
	if a.Live() != 2 {
		t.Fatalf("Live = %d", a.Live())
	}
	a.Free(f1)
	if a.Live() != 1 {
		t.Fatalf("Live after free = %d", a.Live())
	}
	if f3 := a.Alloc(); f3 != f1 {
		t.Fatalf("free list not recycled: got %d want %d", f3, f1)
	}
	base := a.AllocContig(512)
	if base == 0 {
		t.Fatal("AllocContig returned 0")
	}
	if a.Live() != 2+512 {
		t.Fatalf("Live = %d", a.Live())
	}
}
