// Package pagetable implements x86-64-style 4-level radix page tables with
// 4 KiB and 2 MiB pages.
//
// The tables are "software" page tables: they hold the authoritative
// virtual-to-physical mappings of a simulated address space, are walked on
// TLB misses, and track the Present/Write/User/Accessed/Dirty/Global/NX
// bits the kernel code in this repository manipulates. The package also
// reports when an unmap operation frees intermediate page-table pages,
// which the shootdown protocol needs for the early-acknowledgement
// exception (paper §3.2: early ack is unsafe if page tables are released,
// since speculative page walks could then touch freed memory).
package pagetable

import (
	"errors"
	"fmt"

	"shootdown/internal/race"
)

// Page sizes and radix geometry (x86-64: 48-bit VA, 512-entry tables).
const (
	PageShift4K = 12
	PageSize4K  = 1 << PageShift4K
	PageShift2M = 21
	PageSize2M  = 1 << PageShift2M

	EntriesPerTable = 512
	VABits          = 48
	MaxVA           = uint64(1) << VABits
)

// Flags are PTE permission/status bits, mirroring the x86 layout loosely.
type Flags uint16

const (
	// Present: the mapping is valid.
	Present Flags = 1 << iota
	// Write: the page is writable.
	Write
	// User: the page is accessible from user mode.
	User
	// Accessed: set when the page has been read or written.
	Accessed
	// Dirty: set when the page has been written.
	Dirty
	// Global: survives PCID-tagged full flushes (kernel mappings).
	Global
	// Huge: leaf at the PD level (2 MiB page).
	Huge
	// NX: not executable.
	NX
	// ProtNone: present but inaccessible — the NUMA-balancing hint state
	// (pte_protnone): the next access faults so the kernel can decide to
	// migrate the page.
	ProtNone
)

// Has reports whether all bits in want are set.
func (f Flags) Has(want Flags) bool { return f&want == want }

// String renders the flags in a compact rwxugad-style form.
func (f Flags) String() string {
	pick := func(b Flags, c byte) byte {
		if f.Has(b) {
			return c
		}
		return '-'
	}
	return string([]byte{
		pick(Present, 'p'), pick(Write, 'w'), pick(User, 'u'),
		pick(Accessed, 'a'), pick(Dirty, 'd'), pick(Global, 'g'),
		pick(Huge, 'h'), pick(NX, 'n'), pick(ProtNone, '0'),
	})
}

// Size identifies a leaf page size.
type Size int

const (
	// Size4K is a 4 KiB page mapped at the PT level.
	Size4K Size = iota
	// Size2M is a 2 MiB page mapped at the PD level.
	Size2M
)

// Bytes returns the page size in bytes.
func (s Size) Bytes() uint64 {
	if s == Size2M {
		return PageSize2M
	}
	return PageSize4K
}

// String names the size ("4K" or "2M").
func (s Size) String() string {
	if s == Size2M {
		return "2M"
	}
	return "4K"
}

// PTE is a leaf page-table entry.
type PTE struct {
	// Frame is the physical frame number (physical address >> 12).
	Frame uint64
	// Flags holds the permission and status bits.
	Flags Flags
}

// Translation is the result of a successful page walk.
type Translation struct {
	// VA is the page-aligned virtual address of the leaf.
	VA uint64
	// Frame is the physical frame number of the leaf page.
	Frame uint64
	// Flags are the leaf PTE flags.
	Flags Flags
	// Size is the leaf page size.
	Size Size
	// Steps is the number of table levels visited (for walk cost models).
	Steps int
}

// PA returns the physical address corresponding to va under this
// translation.
func (t Translation) PA(va uint64) uint64 {
	return t.Frame<<PageShift4K + (va & (t.Size.Bytes() - 1))
}

var (
	// ErrNotMapped is returned when no present leaf covers the address.
	ErrNotMapped = errors.New("pagetable: address not mapped")
	// ErrAlreadyMapped is returned by Map when a present leaf exists.
	ErrAlreadyMapped = errors.New("pagetable: address already mapped")
	// ErrMisaligned is returned for addresses not aligned to the page size.
	ErrMisaligned = errors.New("pagetable: misaligned address")
	// ErrOutOfRange is returned for non-canonical (too large) addresses.
	ErrOutOfRange = errors.New("pagetable: address out of range")
)

type node struct {
	ptes     [EntriesPerTable]PTE
	children [EntriesPerTable]*node
	// live counts present leaf entries plus child tables, so empty tables
	// can be detected and freed on unmap.
	live int
}

// Table is a 4-level page table for one address space.
type Table struct {
	root *node
	// tablePages counts allocated page-table pages (excluding the root),
	// so tests can assert tables are actually freed.
	tablePages int
	// leaves counts present leaf entries.
	leaves int
	obs    func(Change)

	// rt, when non-nil, is the attached happens-before checker; pteVar is
	// the variable name PTE accesses are tracked under. One variable
	// covers the whole table: PTE reads/writes are individually atomic on
	// x86 (ptep_get/set), so the coarse granularity cannot produce false
	// positives — only coarser edges.
	rt     *race.Detector
	pteVar string
}

// Change describes one mutation of a leaf PTE. Old is the zero PTE when
// the leaf did not previously exist; New is the zero PTE when the leaf was
// removed.
type Change struct {
	// VA is the page-aligned address of the mutated leaf.
	VA uint64
	// Size is the leaf page size.
	Size Size
	// Old and New are the leaf PTE before and after the mutation.
	Old, New PTE
}

// SetObserver installs (or, with nil, removes) a callback fired after
// every leaf-PTE mutation (Map, SetFlags, ClearFlags, Remap, Unmap). The
// callback must not mutate the table.
func (t *Table) SetObserver(fn func(Change)) { t.obs = fn }

// EnableRace attaches the happens-before checker; prefix scopes the
// table's variable name (typically the owning mm).
func (t *Table) EnableRace(d *race.Detector, prefix string) {
	if d == nil {
		return
	}
	t.rt = d
	t.pteVar = prefix + ".pte"
}

func (t *Table) notify(va uint64, size Size, old, new PTE) {
	// Every leaf mutation funnels through here: report it as an atomic
	// read-modify-write (native_set_pte and friends are atomic stores;
	// the radix bookkeeping is protected by the callers' mmap_sem).
	t.rt.AtomicRMW(t.pteVar)
	if t.obs != nil {
		t.obs(Change{VA: va &^ (size.Bytes() - 1), Size: size, Old: old, New: new})
	}
}

// raceLoad reports a page-walk-style read of the table.
func (t *Table) raceLoad() { t.rt.AtomicLoad(t.pteVar) }

// New returns an empty page table.
func New() *Table {
	return &Table{root: &node{}}
}

// LeafCount returns the number of present leaf mappings.
func (t *Table) LeafCount() int { return t.leaves }

// TablePages returns the number of allocated non-root table pages.
func (t *Table) TablePages() int { return t.tablePages }

func levelIndex(va uint64, level int) int {
	// level 3 = PML4, 2 = PDPT, 1 = PD, 0 = PT
	return int(va>>(PageShift4K+9*uint(level))) & (EntriesPerTable - 1)
}

func checkVA(va uint64, size Size) error {
	if va >= MaxVA {
		return fmt.Errorf("%w: %#x", ErrOutOfRange, va)
	}
	if va&(size.Bytes()-1) != 0 {
		return fmt.Errorf("%w: %#x (%s)", ErrMisaligned, va, size)
	}
	return nil
}

// Map installs a leaf mapping va -> frame with the given flags and size.
// The Huge flag is managed by the table; callers should not set it.
func (t *Table) Map(va, frame uint64, size Size, flags Flags) error {
	if err := checkVA(va, size); err != nil {
		return err
	}
	leafLevel := 0
	if size == Size2M {
		leafLevel = 1
		flags |= Huge
	}
	n := t.root
	for level := 3; level > leafLevel; level-- {
		idx := levelIndex(va, level)
		if n.children[idx] == nil {
			if n.ptes[idx].Flags.Has(Present) {
				// A huge leaf sits where we need an intermediate table.
				return fmt.Errorf("%w: huge page at %#x", ErrAlreadyMapped, va)
			}
			n.children[idx] = &node{}
			n.live++
			t.tablePages++
		}
		n = n.children[idx]
	}
	idx := levelIndex(va, leafLevel)
	if n.ptes[idx].Flags.Has(Present) || n.children[idx] != nil {
		return fmt.Errorf("%w: %#x", ErrAlreadyMapped, va)
	}
	n.ptes[idx] = PTE{Frame: frame, Flags: flags | Present}
	n.live++
	t.leaves++
	t.notify(va, size, PTE{}, n.ptes[idx])
	return nil
}

// Walk translates va. It does not modify Accessed/Dirty bits; the MMU model
// (internal/tlb) decides when to set those via MarkAccessed/MarkDirty.
func (t *Table) Walk(va uint64) (Translation, error) {
	if va >= MaxVA {
		return Translation{}, fmt.Errorf("%w: %#x", ErrOutOfRange, va)
	}
	t.raceLoad()
	n := t.root
	steps := 1
	for level := 3; level >= 0; level-- {
		idx := levelIndex(va, level)
		pte := n.ptes[idx]
		if pte.Flags.Has(Present) {
			size := Size4K
			if pte.Flags.Has(Huge) {
				if level != 1 {
					return Translation{}, fmt.Errorf("pagetable: huge leaf at level %d", level)
				}
				size = Size2M
			} else if level != 0 {
				return Translation{}, fmt.Errorf("pagetable: leaf at level %d without Huge", level)
			}
			return Translation{
				VA:    va &^ (size.Bytes() - 1),
				Frame: pte.Frame,
				Flags: pte.Flags,
				Size:  size,
				Steps: steps,
			}, nil
		}
		child := n.children[idx]
		if child == nil {
			return Translation{}, fmt.Errorf("%w: %#x", ErrNotMapped, va)
		}
		n = child
		steps++
	}
	return Translation{}, fmt.Errorf("%w: %#x", ErrNotMapped, va)
}

// leaf returns the node and index of the present leaf covering va.
func (t *Table) leaf(va uint64) (*node, int, Size, error) {
	n := t.root
	for level := 3; level >= 0; level-- {
		idx := levelIndex(va, level)
		pte := n.ptes[idx]
		if pte.Flags.Has(Present) {
			size := Size4K
			if pte.Flags.Has(Huge) {
				size = Size2M
			}
			return n, idx, size, nil
		}
		if n.children[idx] == nil {
			return nil, 0, 0, fmt.Errorf("%w: %#x", ErrNotMapped, va)
		}
		n = n.children[idx]
	}
	return nil, 0, 0, fmt.Errorf("%w: %#x", ErrNotMapped, va)
}

// SetFlags ors extra flag bits into the leaf PTE covering va.
func (t *Table) SetFlags(va uint64, add Flags) error {
	n, idx, size, err := t.leaf(va)
	if err != nil {
		return err
	}
	old := n.ptes[idx]
	n.ptes[idx].Flags |= add
	t.notify(va, size, old, n.ptes[idx])
	return nil
}

// ClearFlags removes flag bits from the leaf PTE covering va. Clearing
// Present is rejected; use Unmap.
func (t *Table) ClearFlags(va uint64, remove Flags) error {
	if remove.Has(Present) {
		return errors.New("pagetable: use Unmap to clear Present")
	}
	n, idx, size, err := t.leaf(va)
	if err != nil {
		return err
	}
	old := n.ptes[idx]
	n.ptes[idx].Flags &^= remove
	t.notify(va, size, old, n.ptes[idx])
	return nil
}

// Remap points the leaf covering va at a new frame with new flags,
// preserving the page size. Used by the CoW fault handler.
func (t *Table) Remap(va, frame uint64, flags Flags) error {
	n, idx, size, err := t.leaf(va)
	if err != nil {
		return err
	}
	keep := n.ptes[idx].Flags & Huge
	old := n.ptes[idx]
	n.ptes[idx] = PTE{Frame: frame, Flags: flags | keep | Present}
	t.notify(va, size, old, n.ptes[idx])
	return nil
}

// Lookup returns a copy of the leaf PTE covering va and its size.
func (t *Table) Lookup(va uint64) (PTE, Size, error) {
	t.raceLoad()
	n, idx, size, err := t.leaf(va)
	if err != nil {
		return PTE{}, 0, err
	}
	return n.ptes[idx], size, nil
}

// Unmap removes the leaf mapping at va and returns whether any page-table
// pages were freed in the process (the early-ack safety signal).
func (t *Table) Unmap(va uint64) (freedTables bool, err error) {
	if va >= MaxVA {
		return false, fmt.Errorf("%w: %#x", ErrOutOfRange, va)
	}
	return t.unmapRec(t.root, va, 3)
}

func (t *Table) unmapRec(n *node, va uint64, level int) (freed bool, err error) {
	idx := levelIndex(va, level)
	if n.ptes[idx].Flags.Has(Present) {
		old := n.ptes[idx]
		size := Size4K
		if old.Flags.Has(Huge) {
			size = Size2M
		}
		n.ptes[idx] = PTE{}
		n.live--
		t.leaves--
		t.notify(va, size, old, PTE{})
		return false, nil
	}
	child := n.children[idx]
	if child == nil {
		return false, fmt.Errorf("%w: %#x", ErrNotMapped, va)
	}
	freed, err = t.unmapRec(child, va, level-1)
	if err != nil {
		return freed, err
	}
	if child.live == 0 {
		n.children[idx] = nil
		n.live--
		t.tablePages--
		freed = true
	}
	return freed, nil
}

// UnmapRange removes every present leaf in [start, end) and reports the
// number of leaves removed and whether page-table pages were freed.
func (t *Table) UnmapRange(start, end uint64) (removed int, freedTables bool, err error) {
	var leaves []uint64
	t.VisitRange(start, end, func(tr Translation) {
		leaves = append(leaves, tr.VA)
	})
	for _, va := range leaves {
		freed, uerr := t.Unmap(va)
		if uerr != nil {
			return removed, freedTables, uerr
		}
		removed++
		freedTables = freedTables || freed
	}
	return removed, freedTables, nil
}

// VisitRange calls fn for every present leaf whose page intersects
// [start, end), in ascending address order.
func (t *Table) VisitRange(start, end uint64, fn func(Translation)) {
	if end > MaxVA {
		end = MaxVA
	}
	t.raceLoad()
	t.visitRec(t.root, 3, 0, start, end, fn)
}

func (t *Table) visitRec(n *node, level int, base, start, end uint64, fn func(Translation)) {
	span := uint64(1) << (PageShift4K + 9*uint(level))
	for idx := 0; idx < EntriesPerTable; idx++ {
		lo := base + uint64(idx)*span
		hi := lo + span
		if hi <= start || lo >= end {
			continue
		}
		pte := n.ptes[idx]
		if pte.Flags.Has(Present) {
			size := Size4K
			if pte.Flags.Has(Huge) {
				size = Size2M
			}
			fn(Translation{VA: lo, Frame: pte.Frame, Flags: pte.Flags, Size: size, Steps: 4 - level})
			continue
		}
		if child := n.children[idx]; child != nil {
			t.visitRec(child, level-1, lo, start, end, fn)
		}
	}
}
