package mm

import (
	"fmt"

	"shootdown/internal/pagetable"
)

// Access is the type of memory access that faulted.
type Access uint8

const (
	// AccessRead is a load.
	AccessRead Access = iota
	// AccessWrite is a store.
	AccessWrite
	// AccessExec is an instruction fetch.
	AccessExec
)

// FaultKind classifies how a page fault was resolved.
type FaultKind uint8

const (
	// FaultPopulate installed a fresh PTE (demand paging).
	FaultPopulate FaultKind = iota
	// FaultCoW broke a copy-on-write mapping: the PTE now points at a new
	// private copy, so any cached translation of the old PTE is stale and
	// harmful (paper §4.1).
	FaultCoW
	// FaultMkWrite upgraded a clean shared-file PTE to writable+dirty.
	// A stale read-only translation is benign: it re-faults spuriously.
	FaultMkWrite
	// FaultSpurious found a PTE that already permits the access: the
	// faulting CPU held a stale, overly-restrictive translation (e.g.
	// read-only after another thread's mkwrite upgrade). Hardware dropped
	// the faulting entry; nothing to do.
	FaultSpurious
	// FaultNUMAHint hit a ProtNone PTE installed by the NUMA balancer:
	// the hint is consumed (access proceeds); the balancer may migrate
	// the page based on the fault's origin.
	FaultNUMAHint
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultPopulate:
		return "populate"
	case FaultCoW:
		return "cow"
	case FaultMkWrite:
		return "mkwrite"
	case FaultSpurious:
		return "spurious"
	case FaultNUMAHint:
		return "numa-hint"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// FaultResult reports what the fault handler did.
type FaultResult struct {
	// Kind classifies the resolution.
	Kind FaultKind
	// VA is the page-aligned fault address.
	VA uint64
	// Frame is the frame now mapped at VA.
	Frame uint64
	// CopiedPage is set when a page body was copied (CoW break).
	CopiedPage bool
	// StaleHarmful is set when an old cached translation of VA would
	// translate to wrong physical memory; the handler must ensure it is
	// purged (the flush the CoW optimization avoids by other means).
	StaleHarmful bool
	// Executable is set when the new PTE is executable; the CoW write
	// trick must not be used then, since it cannot purge ITLB entries
	// (paper §4.1).
	Executable bool
	// Huge is set when a 2 MiB page was installed.
	Huge bool
}

// HandleFault resolves a page fault at va for the given access type. It
// mutates page tables and page-cache state only; the kernel layer charges
// costs and performs TLB maintenance based on the result.
func (as *AddressSpace) HandleFault(va uint64, access Access) (FaultResult, error) {
	v := as.vmas.find(va)
	if v == nil {
		return FaultResult{}, fmt.Errorf("%w: %#x", ErrNoVMA, va)
	}
	switch access {
	case AccessWrite:
		if !v.Prot.Has(ProtWrite) {
			return FaultResult{}, fmt.Errorf("%w: write to %s VMA at %#x", ErrProt, v.Prot, va)
		}
	case AccessExec:
		if !v.Prot.Has(ProtExec) {
			return FaultResult{}, fmt.Errorf("%w: exec of %s VMA at %#x", ErrProt, v.Prot, va)
		}
	default:
		if !v.Prot.Has(ProtRead) {
			return FaultResult{}, fmt.Errorf("%w: read of %s VMA at %#x", ErrProt, v.Prot, va)
		}
	}

	page := va &^ (pagetable.PageSize4K - 1)
	pte, size, err := as.PT.Lookup(page)
	if err != nil {
		if v.HugePages {
			return as.populateHuge(v, va, access)
		}
		return as.populate(v, page, access)
	}
	if size == pagetable.Size2M {
		page = va &^ uint64(pagetable.PageSize2M-1)
	}
	// NUMA balancing hint: consume it and let the access proceed; the
	// balancer decides about migration from the fault notification.
	if pte.Flags.Has(pagetable.ProtNone) {
		must(as.PT.ClearFlags(page, pagetable.ProtNone))
		return FaultResult{Kind: FaultNUMAHint, VA: page, Frame: pte.Frame, Huge: size == pagetable.Size2M}, nil
	}
	// Present PTE: a write to a write-protected page is CoW or dirty
	// tracking; anything else is a spurious fault caused by a stale,
	// overly-restrictive TLB entry (another thread upgraded the PTE
	// without a shootdown, which is legal for permission additions).
	if access == AccessWrite && !pte.Flags.Has(pagetable.Write) {
		return as.writeProtFault(v, page, pte)
	}
	return FaultResult{Kind: FaultSpurious, VA: page, Frame: pte.Frame}, nil
}

// populate installs the first PTE for page.
func (as *AddressSpace) populate(v *VMA, page uint64, access Access) (FaultResult, error) {
	flags := pagetable.User | pagetable.Accessed
	if !v.Prot.Has(ProtExec) {
		flags |= pagetable.NX
	}
	res := FaultResult{Kind: FaultPopulate, VA: page, Executable: v.Prot.Has(ProtExec)}
	switch v.Kind {
	case Anon:
		res.Frame = as.alloc.Alloc()
		if v.Prot.Has(ProtWrite) {
			flags |= pagetable.Write
		}
		if access == AccessWrite {
			flags |= pagetable.Dirty
		}
	case FileShared:
		idx := v.fileOffsetOf(page) / pagetable.PageSize4K
		res.Frame = v.File.frame(idx)
		if access == AccessWrite {
			// do_shared_fault + page_mkwrite in one step.
			flags |= pagetable.Write | pagetable.Dirty
			v.File.MarkDirty(idx)
		}
	case FilePrivate:
		idx := v.fileOffsetOf(page) / pagetable.PageSize4K
		if access == AccessWrite {
			// do_cow_fault: copy immediately.
			_ = v.File.frame(idx) // ensure the source is in the page cache
			res.Frame = as.alloc.Alloc()
			res.CopiedPage = true
			flags |= pagetable.Write | pagetable.Dirty
		} else {
			// Map the page cache read-only; CoW on a later write.
			res.Frame = v.File.frame(idx)
		}
	}
	if err := as.PT.Map(page, res.Frame, pagetable.Size4K, flags); err != nil {
		return FaultResult{}, err
	}
	return res, nil
}

// writeProtFault handles a store hitting a present, write-protected PTE:
// either a CoW break (private mappings) or dirty tracking (shared file).
func (as *AddressSpace) writeProtFault(v *VMA, page uint64, pte pagetable.PTE) (FaultResult, error) {
	if v.Kind == Anon && !as.sharedAnon.Shared(pte.Frame) {
		// Sole owner of the anon page (e.g. write-protected by an
		// mprotect round-trip): reuse it, as do_wp_page's reuse path does.
		if err := as.PT.SetFlags(page, pagetable.Write|pagetable.Dirty|pagetable.Accessed); err != nil {
			return FaultResult{}, err
		}
		return FaultResult{Kind: FaultMkWrite, VA: page, Frame: pte.Frame, Executable: v.Prot.Has(ProtExec)}, nil
	}
	switch v.Kind {
	case FilePrivate, Anon:
		// CoW break: private file pages after a read fault mapped the
		// page cache read-only, or anonymous pages shared by KSM
		// deduplication.
		newFrame := as.alloc.Alloc()
		flags := pagetable.User | pagetable.Accessed | pagetable.Write | pagetable.Dirty
		if !v.Prot.Has(ProtExec) {
			flags |= pagetable.NX
		}
		if err := as.PT.Remap(page, newFrame, flags); err != nil {
			return FaultResult{}, err
		}
		if v.Kind == Anon {
			// Breaking away from a KSM-shared frame drops one reference.
			as.releaseAnonFrame(pte.Frame, pagetable.Size4K)
		}
		return FaultResult{
			Kind: FaultCoW, VA: page, Frame: newFrame,
			CopiedPage: true, StaleHarmful: true,
			Executable: v.Prot.Has(ProtExec),
		}, nil
	case FileShared:
		idx := v.fileOffsetOf(page) / pagetable.PageSize4K
		if err := as.PT.SetFlags(page, pagetable.Write|pagetable.Dirty|pagetable.Accessed); err != nil {
			return FaultResult{}, err
		}
		v.File.MarkDirty(idx)
		return FaultResult{Kind: FaultMkWrite, VA: page, Frame: pte.Frame, Executable: v.Prot.Has(ProtExec)}, nil
	}
	return FaultResult{}, fmt.Errorf("mm: unhandled write-protect fault at %#x", page)
}

// FilePageVAs returns the virtual addresses in this address space mapping
// file page idx (the simplified reverse map used by writeback).
func (as *AddressSpace) FilePageVAs(file *File, idx uint64) []uint64 {
	var out []uint64
	off := idx * pagetable.PageSize4K
	for _, v := range as.vmas.all() {
		if v.File != file {
			continue
		}
		if off < v.FileOff || off >= v.FileOff+(v.End-v.Start) {
			continue
		}
		out = append(out, v.Start+(off-v.FileOff))
	}
	return out
}

// WriteProtectPage clears Write+Dirty on a present PTE (writeback path).
// It reports whether the PTE changed (and thus needs flushing).
func (as *AddressSpace) WriteProtectPage(va uint64) bool {
	pte, _, err := as.PT.Lookup(va)
	if err != nil || !pte.Flags.Has(pagetable.Write) {
		return false
	}
	must(as.PT.ClearFlags(va, pagetable.Write|pagetable.Dirty))
	return true
}
