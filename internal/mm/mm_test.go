package mm

import (
	"errors"
	"testing"

	"shootdown/internal/pagetable"
	"shootdown/internal/sim"
)

// newAS returns an address space plus the machine-wide frame allocator it
// shares with any files created in the test (frames are physical identity,
// so one allocator must serve both).
func newAS(t *testing.T) (*AddressSpace, *pagetable.FrameAlloc) {
	t.Helper()
	eng := sim.NewEngine(1)
	alloc := pagetable.NewFrameAlloc()
	return NewAddressSpace(1, alloc, NewRWSem(eng, "mmap_sem")), alloc
}

const pg = pagetable.PageSize4K

func TestMMapAndFault(t *testing.T) {
	as, _ := newAS(t)
	v, err := as.MMap(4*pg, ProtRead|ProtWrite, Anon, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 4*pg {
		t.Fatalf("len = %#x", v.Len())
	}
	res, err := as.HandleFault(v.Start+pg+123, AccessWrite)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != FaultPopulate || res.Frame == 0 {
		t.Fatalf("fault = %+v", res)
	}
	tr, err := as.PT.Walk(v.Start + pg)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Flags.Has(pagetable.Write | pagetable.Dirty | pagetable.User) {
		t.Fatalf("flags = %v", tr.Flags)
	}
	if !tr.Flags.Has(pagetable.NX) {
		t.Fatal("non-exec VMA mapped executable")
	}
}

func TestFaultErrors(t *testing.T) {
	as, _ := newAS(t)
	if _, err := as.HandleFault(0xdead000, AccessRead); !errors.Is(err, ErrNoVMA) {
		t.Fatalf("unmapped fault: %v", err)
	}
	v, _ := as.MMap(pg, ProtRead, Anon, nil, 0)
	if _, err := as.HandleFault(v.Start, AccessWrite); !errors.Is(err, ErrProt) {
		t.Fatalf("write to RO: %v", err)
	}
	if _, err := as.HandleFault(v.Start, AccessExec); !errors.Is(err, ErrProt) {
		t.Fatalf("exec of non-exec: %v", err)
	}
}

func TestPrivateFileCoW(t *testing.T) {
	as, alloc := newAS(t)
	f := NewFile("data", 16*pg, alloc)
	v, err := as.MMap(16*pg, ProtRead|ProtWrite, FilePrivate, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Read fault: maps the page cache read-only.
	res, err := as.HandleFault(v.Start, AccessRead)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != FaultPopulate || res.CopiedPage {
		t.Fatalf("read fault = %+v", res)
	}
	pte, _, _ := as.PT.Lookup(v.Start)
	if pte.Flags.Has(pagetable.Write) {
		t.Fatal("private file page mapped writable on read")
	}
	cacheFrame := res.Frame

	// Write fault on the now-present RO page: CoW break.
	res, err = as.HandleFault(v.Start+5, AccessWrite)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != FaultCoW || !res.CopiedPage || !res.StaleHarmful {
		t.Fatalf("cow fault = %+v", res)
	}
	if res.Frame == cacheFrame {
		t.Fatal("CoW did not allocate a private copy")
	}
	pte, _, _ = as.PT.Lookup(v.Start)
	if !pte.Flags.Has(pagetable.Write|pagetable.Dirty) || pte.Frame != res.Frame {
		t.Fatalf("post-CoW pte = %+v", pte)
	}
	// The page cache frame is untouched.
	if f.frames[0] != cacheFrame {
		t.Fatal("page cache frame replaced")
	}

	// Direct write fault on an unpopulated private page copies immediately.
	res, err = as.HandleFault(v.Start+3*pg, AccessWrite)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != FaultPopulate || !res.CopiedPage {
		t.Fatalf("direct-write private fault = %+v", res)
	}
}

func TestSharedFileDirtyTracking(t *testing.T) {
	as, alloc := newAS(t)
	f := NewFile("db", 64*pg, alloc)
	v, err := as.MMap(64*pg, ProtRead|ProtWrite, FileShared, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Read fault: clean mapping, not dirty.
	if _, err := as.HandleFault(v.Start+2*pg, AccessRead); err != nil {
		t.Fatal(err)
	}
	if f.DirtyCount() != 0 {
		t.Fatal("read dirtied the file")
	}
	// Write fault on the clean page: mkwrite.
	res, err := as.HandleFault(v.Start+2*pg, AccessWrite)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != FaultMkWrite || res.StaleHarmful {
		t.Fatalf("mkwrite = %+v", res)
	}
	if f.DirtyCount() != 1 {
		t.Fatalf("dirty = %d", f.DirtyCount())
	}
	// Fresh write fault: populates writable+dirty in one step.
	if _, err := as.HandleFault(v.Start+7*pg, AccessWrite); err != nil {
		t.Fatal(err)
	}
	if f.DirtyCount() != 2 {
		t.Fatalf("dirty = %d", f.DirtyCount())
	}

	// Writeback: take dirty pages, write-protect their PTEs.
	idxs := f.TakeDirty(0, f.Pages())
	if len(idxs) != 2 || idxs[0] != 2 || idxs[1] != 7 {
		t.Fatalf("TakeDirty = %v", idxs)
	}
	for _, idx := range idxs {
		for _, va := range as.FilePageVAs(f, idx) {
			if !as.WriteProtectPage(va) {
				t.Fatalf("WriteProtectPage(%#x) = false", va)
			}
		}
	}
	pte, _, _ := as.PT.Lookup(v.Start + 2*pg)
	if pte.Flags.Has(pagetable.Write) || pte.Flags.Has(pagetable.Dirty) {
		t.Fatalf("pte not cleaned: %v", pte.Flags)
	}
	// Writing again re-faults through mkwrite.
	res, err = as.HandleFault(v.Start+2*pg, AccessWrite)
	if err != nil || res.Kind != FaultMkWrite {
		t.Fatalf("refault = %+v, %v", res, err)
	}
}

func TestUnmapFreesPrivateFramesOnly(t *testing.T) {
	as, alloc := newAS(t)
	f := NewFile("lib", 8*pg, alloc)
	vp, _ := as.MMap(8*pg, ProtRead|ProtWrite, FilePrivate, f, 0)
	as.HandleFault(vp.Start, AccessRead)     // page cache RO
	as.HandleFault(vp.Start+pg, AccessWrite) // private copy
	// Place the anon VMA in a distant 2 MiB region so it does not share a
	// page table with the private mapping (FreedTables check below).
	va, _ := as.MMapFixed(0x4000_0000, 2*pg, ProtRead|ProtWrite, Anon, nil, 0)
	as.HandleFault(va.Start, AccessWrite)

	liveBefore := as.alloc.Live()
	fl, err := as.Unmap(vp.Start, vp.Len())
	if err != nil {
		t.Fatal(err)
	}
	if fl.Pages != 2 || !fl.FreedTables {
		t.Fatalf("unmap flush = %+v", fl)
	}
	// Only the private copy is freed; the page-cache frame stays.
	if got := liveBefore - as.alloc.Live(); got != 1 {
		t.Fatalf("freed %d private frames, want 1", got)
	}
	if len(f.Mappers()) != 0 {
		t.Fatal("file still has mappers")
	}
	// Anon unmap frees its frame.
	liveBefore = as.alloc.Live()
	if _, err := as.Unmap(va.Start, va.Len()); err != nil {
		t.Fatal(err)
	}
	if got := liveBefore - as.alloc.Live(); got != 1 {
		t.Fatalf("freed %d anon frames, want 1", got)
	}
}

func TestMadviseDontneed(t *testing.T) {
	as, _ := newAS(t)
	v, _ := as.MMap(8*pg, ProtRead|ProtWrite, Anon, nil, 0)
	for i := uint64(0); i < 8; i++ {
		as.HandleFault(v.Start+i*pg, AccessWrite)
	}
	fl, err := as.MadviseDontneed(v.Start, 4*pg)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Pages != 4 || fl.FreedTables {
		t.Fatalf("madvise flush = %+v (FreedTables must be false)", fl)
	}
	// VMA still present: refault works.
	if _, err := as.HandleFault(v.Start, AccessWrite); err != nil {
		t.Fatal(err)
	}
	// Unknown range errors.
	if _, err := as.MadviseDontneed(0xdd000, pg); !errors.Is(err, ErrNoVMA) {
		t.Fatalf("bad madvise: %v", err)
	}
}

func TestProtect(t *testing.T) {
	as, _ := newAS(t)
	v, _ := as.MMap(8*pg, ProtRead|ProtWrite, Anon, nil, 0)
	for i := uint64(0); i < 8; i++ {
		as.HandleFault(v.Start+i*pg, AccessWrite)
	}
	fl, err := as.Protect(v.Start+2*pg, 3*pg, ProtRead)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Pages != 3 {
		t.Fatalf("protect changed %d pages", fl.Pages)
	}
	// VMA was split into three.
	if got := len(as.VMAs()); got != 3 {
		t.Fatalf("VMAs = %d, want 3", got)
	}
	pte, _, _ := as.PT.Lookup(v.Start + 2*pg)
	if pte.Flags.Has(pagetable.Write) {
		t.Fatal("PTE still writable after mprotect(R)")
	}
	// Faulting a write inside the RO region now fails.
	if _, err := as.HandleFault(v.Start+2*pg, AccessWrite); !errors.Is(err, ErrProt) {
		t.Fatalf("write to mprotected: %v", err)
	}
	// Outside it still works.
	pte, _, _ = as.PT.Lookup(v.Start)
	if !pte.Flags.Has(pagetable.Write) {
		t.Fatal("PTE outside range lost Write")
	}
}

func TestVMASplitRanges(t *testing.T) {
	as, _ := newAS(t)
	v, _ := as.MMap(10*pg, ProtRead, Anon, nil, 0)
	fl, err := as.Unmap(v.Start+4*pg, 2*pg)
	if err != nil {
		t.Fatal(err)
	}
	_ = fl
	vmas := as.VMAs()
	if len(vmas) != 2 {
		t.Fatalf("VMAs = %d, want 2 after hole punch", len(vmas))
	}
	if vmas[0].End != v.Start+4*pg || vmas[1].Start != v.Start+6*pg {
		t.Fatalf("split bounds wrong: %+v", vmas)
	}
	if as.FindVMA(v.Start+5*pg) != nil {
		t.Fatal("hole still covered")
	}
}

func TestFileOffsetsAfterSplit(t *testing.T) {
	as, alloc := newAS(t)
	f := NewFile("x", 10*pg, alloc)
	v, _ := as.MMap(10*pg, ProtRead|ProtWrite, FileShared, f, 0)
	if _, err := as.Unmap(v.Start, 2*pg); err != nil {
		t.Fatal(err)
	}
	rest := as.FindVMA(v.Start + 2*pg)
	if rest == nil || rest.FileOff != 2*pg {
		t.Fatalf("remainder VMA = %+v", rest)
	}
	// Faulting through the remainder maps the correct file page.
	res, err := as.HandleFault(v.Start+2*pg, AccessRead)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frame != f.frames[2] {
		t.Fatalf("frame = %d, want file page 2 = %d", res.Frame, f.frames[2])
	}
}

func TestGenBumping(t *testing.T) {
	as, _ := newAS(t)
	if as.Gen() != 1 {
		t.Fatalf("initial gen = %d", as.Gen())
	}
	if g := as.BumpGen(); g != 2 || as.Gen() != 2 {
		t.Fatalf("bump = %d, gen = %d", g, as.Gen())
	}
}

func TestActiveCPUMask(t *testing.T) {
	as, _ := newAS(t)
	as.SetActive(3)
	as.SetActive(40)
	m := as.ActiveCPUs()
	if !m.Has(3) || !m.Has(40) || m.Count() != 2 {
		t.Fatalf("mask = %v", m)
	}
	as.ClearActive(3)
	if as.ActiveCPUs().Has(3) {
		t.Fatal("clear failed")
	}
}

func TestMMapFixedOverlap(t *testing.T) {
	as, _ := newAS(t)
	if _, err := as.MMapFixed(0x100000, 4*pg, ProtRead, Anon, nil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MMapFixed(0x100000+2*pg, 4*pg, ProtRead, Anon, nil, 0); !errors.Is(err, ErrOverlap) {
		t.Fatalf("overlap: %v", err)
	}
	if _, err := as.MMapFixed(0x100001, pg, ProtRead, Anon, nil, 0); !errors.Is(err, ErrBadRange) {
		t.Fatalf("misaligned: %v", err)
	}
}

func TestRWSem(t *testing.T) {
	eng := sim.NewEngine(1)
	sem := NewRWSem(eng, "test")
	var order []string
	eng.Go("r1", func(p *sim.Proc) {
		sem.DownRead(p)
		order = append(order, "r1+")
		p.Delay(100)
		order = append(order, "r1-")
		sem.UpRead(p)
	})
	eng.Go("r2", func(p *sim.Proc) {
		sem.DownRead(p)
		order = append(order, "r2+")
		p.Delay(50)
		order = append(order, "r2-")
		sem.UpRead(p)
	})
	eng.Go("w", func(p *sim.Proc) {
		p.Delay(10)
		sem.DownWrite(p)
		order = append(order, "w+")
		sem.UpWrite(p)
	})
	eng.Run()
	// Both readers enter concurrently; the writer waits for both.
	if order[0] != "r1+" || order[1] != "r2+" {
		t.Fatalf("readers not concurrent: %v", order)
	}
	if order[len(order)-1] != "w+" {
		t.Fatalf("writer did not wait for readers: %v", order)
	}
	if sem.Contended == 0 {
		t.Fatal("writer should have recorded contention")
	}
}

func TestRWSemWriterBlocksReaders(t *testing.T) {
	eng := sim.NewEngine(1)
	sem := NewRWSem(eng, "test")
	var readerAt sim.Time
	eng.Go("w", func(p *sim.Proc) {
		sem.DownWrite(p)
		p.Delay(100)
		sem.UpWrite(p)
	})
	eng.Go("r", func(p *sim.Proc) {
		p.Delay(1)
		sem.DownRead(p)
		readerAt = p.Now()
		sem.UpRead(p)
	})
	eng.Run()
	if readerAt < 100 {
		t.Fatalf("reader entered at %d during write hold", readerAt)
	}
}

func TestRWSemMisuse(t *testing.T) {
	eng := sim.NewEngine(1)
	sem := NewRWSem(eng, "test")
	eng.Go("bad", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("UpRead without DownRead did not panic")
			}
		}()
		sem.UpRead(p)
	})
	eng.Run()
}
