package mm

import (
	"fmt"

	"shootdown/internal/pagetable"
)

// Huge-page (2 MiB) support: huge anonymous mappings and the
// khugepaged-style collapse of 512 populated 4 KiB pages into one huge
// page. Huge-page compaction is one of the TLB-flush sources the paper
// lists in §2.1, and collapse removes a page-table page, which matters to
// the early-acknowledgement exception (§3.2).

const hugePages = pagetable.PageSize2M / pagetable.PageSize4K

// MMapHuge creates an anonymous VMA backed by 2 MiB pages. Length must be
// a multiple of 2 MiB.
func (as *AddressSpace) MMapHuge(length uint64, prot Prot) (*VMA, error) {
	if length == 0 || length%pagetable.PageSize2M != 0 {
		return nil, fmt.Errorf("%w: huge length %#x", ErrBadRange, length)
	}
	// Align the cursor to 2 MiB.
	start := (as.mmapCursor + pagetable.PageSize2M - 1) &^ uint64(pagetable.PageSize2M-1)
	for as.vmas.overlaps(start, start+length) {
		start += length
	}
	as.mmapCursor = start + length + pagetable.PageSize2M
	v := &VMA{Start: start, End: start + length, Prot: prot, Kind: Anon, HugePages: true}
	as.vmas.insert(v)
	return v, nil
}

// populateHuge installs a 2 MiB anonymous page covering page's region.
func (as *AddressSpace) populateHuge(v *VMA, va uint64, access Access) (FaultResult, error) {
	base := va &^ uint64(pagetable.PageSize2M-1)
	if base < v.Start || base+pagetable.PageSize2M > v.End {
		// The VMA is not 2 MiB aligned here; fall back to a 4 KiB page.
		return as.populate(v, va&^uint64(pagetable.PageSize4K-1), access)
	}
	flags := pagetable.User | pagetable.Accessed
	if !v.Prot.Has(ProtExec) {
		flags |= pagetable.NX
	}
	if v.Prot.Has(ProtWrite) {
		flags |= pagetable.Write
	}
	if access == AccessWrite {
		flags |= pagetable.Dirty
	}
	frame := as.alloc.AllocContig(hugePages)
	if err := as.PT.Map(base, frame, pagetable.Size2M, flags); err != nil {
		as.alloc.FreeContig(frame, hugePages)
		return FaultResult{}, err
	}
	return FaultResult{Kind: FaultPopulate, VA: base, Frame: frame, Huge: true}, nil
}

// CollapseHuge merges the 512 anonymous 4 KiB pages covering the 2 MiB
// region of va into one huge page (khugepaged). All 512 PTEs must be
// present, anonymous, and unshared. The copy cost is the caller's to
// charge; the returned FlushRange covers the region with FreedTables set,
// because the collapsed page table page is released — which suppresses
// early acknowledgement for this shootdown (§3.2).
func (as *AddressSpace) CollapseHuge(va uint64) (FlushRange, error) {
	base := va &^ uint64(pagetable.PageSize2M-1)
	v := as.vmas.find(base)
	if v == nil || v.Kind != Anon {
		return FlushRange{}, fmt.Errorf("%w: collapse target %#x", ErrNoVMA, base)
	}
	if base < v.Start || base+pagetable.PageSize2M > v.End {
		return FlushRange{}, fmt.Errorf("%w: VMA does not cover 2M region at %#x", ErrBadRange, base)
	}
	// Verify all 512 small pages are present, writable-mapped anon and
	// unshared, collecting their frames.
	var frames []uint64
	var flags pagetable.Flags
	for off := uint64(0); off < pagetable.PageSize2M; off += pagetable.PageSize4K {
		pte, size, err := as.PT.Lookup(base + off)
		if err != nil {
			return FlushRange{}, fmt.Errorf("mm: collapse: hole at %#x", base+off)
		}
		if size != pagetable.Size4K {
			return FlushRange{}, fmt.Errorf("mm: collapse: already huge at %#x", base+off)
		}
		if as.sharedAnon.Shared(pte.Frame) {
			return FlushRange{}, fmt.Errorf("mm: collapse: shared (KSM) page at %#x", base+off)
		}
		frames = append(frames, pte.Frame)
		flags |= pte.Flags & (pagetable.Write | pagetable.Dirty | pagetable.Accessed)
	}
	// Allocate the huge frame, then replace the mappings.
	hugeFrame := as.alloc.AllocContig(hugePages)
	removed, freedTables, err := as.PT.UnmapRange(base, base+pagetable.PageSize2M)
	if err != nil {
		return FlushRange{}, err
	}
	if removed != hugePages {
		panic("mm: collapse removed unexpected leaf count")
	}
	for _, f := range frames {
		as.alloc.Free(f)
	}
	newFlags := pagetable.User | flags
	if !v.Prot.Has(ProtExec) {
		newFlags |= pagetable.NX
	}
	if err := as.PT.Map(base, hugeFrame, pagetable.Size2M, newFlags); err != nil {
		return FlushRange{}, err
	}
	// Collapsing always frees the PT page that held the 512 PTEs.
	_ = freedTables
	return FlushRange{
		Start: base, End: base + pagetable.PageSize2M,
		Stride: pagetable.Size4K, // the *stale* entries being flushed are 4K
		Pages:  hugePages, FreedTables: true,
	}, nil
}
