package mm

import (
	"testing"
	"testing/quick"
)

// buildSet creates a vmaSet with VMAs at deterministic positions derived
// from lens (each VMA is lens[i]%8+1 pages, separated by one guard page).
func buildSet(lens []uint8) (*vmaSet, uint64) {
	s := &vmaSet{}
	cursor := uint64(0x10000)
	var total uint64
	for _, l := range lens {
		n := uint64(l%8) + 1
		v := &VMA{Start: cursor, End: cursor + n*pg, Prot: ProtRead, Kind: Anon}
		s.insert(v)
		total += n
		cursor = v.End + pg
	}
	return s, total
}

func pagesOf(s *vmaSet) uint64 {
	var n uint64
	for _, v := range s.all() {
		n += v.Len() / pg
	}
	return n
}

func sorted(s *vmaSet) bool {
	vs := s.all()
	for i := 1; i < len(vs); i++ {
		if vs[i-1].End > vs[i].Start {
			return false
		}
	}
	return true
}

// Property: removeRange conserves pages (kept + removed == original),
// keeps the set sorted and non-overlapping, and the removed pieces lie
// entirely within the requested range.
func TestRemoveRangeProperties(t *testing.T) {
	f := func(lens []uint8, a, b uint16) bool {
		if len(lens) > 12 {
			lens = lens[:12]
		}
		s, total := buildSet(lens)
		lo := uint64(0x10000) + uint64(a%256)*pg
		hi := lo + uint64(b%64+1)*pg
		removed := s.removeRange(lo, hi)

		var removedPages uint64
		for _, v := range removed {
			if v.Start < lo || v.End > hi {
				return false // removed piece escapes the range
			}
			removedPages += v.Len() / pg
		}
		if pagesOf(s)+removedPages != total {
			return false // pages not conserved
		}
		if !sorted(s) {
			return false
		}
		// Nothing kept intersects the range.
		for _, v := range s.all() {
			if v.Start < hi && v.End > lo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: find agrees with a linear scan.
func TestFindAgreesWithScan(t *testing.T) {
	f := func(lens []uint8, probe uint16) bool {
		if len(lens) > 12 {
			lens = lens[:12]
		}
		s, _ := buildSet(lens)
		va := uint64(0x10000) + uint64(probe%512)*pg/2
		got := s.find(va)
		var want *VMA
		for _, v := range s.all() {
			if v.Contains(va) {
				want = v
				break
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveRangeSplitKeepsFileOffsets(t *testing.T) {
	s := &vmaSet{}
	s.insert(&VMA{Start: 0x10000, End: 0x10000 + 10*pg, Kind: FileShared, FileOff: 5 * pg})
	removed := s.removeRange(0x10000+3*pg, 0x10000+6*pg)
	if len(removed) != 1 {
		t.Fatalf("removed = %d pieces", len(removed))
	}
	if removed[0].FileOff != 5*pg+3*pg {
		t.Fatalf("removed FileOff = %#x", removed[0].FileOff)
	}
	kept := s.all()
	if len(kept) != 2 {
		t.Fatalf("kept = %d pieces", len(kept))
	}
	if kept[0].FileOff != 5*pg || kept[1].FileOff != 5*pg+6*pg {
		t.Fatalf("kept offsets = %#x, %#x", kept[0].FileOff, kept[1].FileOff)
	}
}

func TestKindAndProtStrings(t *testing.T) {
	if Anon.String() != "anon" || FileShared.String() != "file-shared" || FilePrivate.String() != "file-private" {
		t.Fatal("Kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind renders empty")
	}
	if (ProtRead | ProtWrite).String() != "rw-" {
		t.Fatalf("prot = %q", (ProtRead | ProtWrite).String())
	}
	if (ProtRead | ProtExec).String() != "r-x" {
		t.Fatalf("prot = %q", (ProtRead | ProtExec).String())
	}
}

func TestFaultKindStrings(t *testing.T) {
	for _, k := range []FaultKind{FaultPopulate, FaultCoW, FaultMkWrite, FaultSpurious, FaultNUMAHint} {
		if k.String() == "" {
			t.Errorf("kind %d renders empty", k)
		}
	}
	if FaultKind(200).String() == "" {
		t.Error("unknown kind renders empty")
	}
}
