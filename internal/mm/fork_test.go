package mm

import (
	"testing"

	"shootdown/internal/pagetable"
	"shootdown/internal/sim"
)

func doFork(t *testing.T, parent *AddressSpace) (*AddressSpace, FlushRange, ForkStats) {
	t.Helper()
	eng := sim.NewEngine(1)
	return parent.Fork(parent.ID+1, NewRWSem(eng, "child_sem"))
}

func TestForkSharesAnonCoW(t *testing.T) {
	as, _ := newAS(t)
	v, _ := as.MMap(4*pg, ProtRead|ProtWrite, Anon, nil, 0)
	as.HandleFault(v.Start, AccessWrite)
	as.HandleFault(v.Start+pg, AccessWrite)

	child, fr, st := doFork(t, as)
	if st.PTEs != 2 || st.PTEsWriteProtected != 2 || st.VMAs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if fr.Pages != 2 {
		t.Fatalf("parent flush = %+v", fr)
	}
	// Both sides map the same frame, read-only.
	pp, _, _ := as.PT.Lookup(v.Start)
	cp, _, _ := child.PT.Lookup(v.Start)
	if pp.Frame != cp.Frame {
		t.Fatal("fork did not share the frame")
	}
	if pp.Flags.Has(pagetable.Write) || cp.Flags.Has(pagetable.Write) {
		t.Fatal("shared pages still writable")
	}
	if as.SharedAnonRefs(pp.Frame) != 2 {
		t.Fatalf("refs = %d", as.SharedAnonRefs(pp.Frame))
	}

	// Parent write: CoW break; child keeps the original data frame.
	res, err := as.HandleFault(v.Start, AccessWrite)
	if err != nil || res.Kind != FaultCoW {
		t.Fatalf("parent write = %+v, %v", res, err)
	}
	cp2, _, _ := child.PT.Lookup(v.Start)
	if cp2.Frame != pp.Frame {
		t.Fatal("child lost its frame on parent CoW")
	}
	// Child write on the second page: CoW there too; after both CoWs the
	// original frame of page 2 is released when the last sharer writes.
	res, err = child.HandleFault(v.Start+pg, AccessWrite)
	if err != nil || res.Kind != FaultCoW {
		t.Fatalf("child write = %+v, %v", res, err)
	}
	// Page 2's frame now has one remaining sharer (the parent), so it is
	// no longer tracked as shared.
	pp2, _, _ := as.PT.Lookup(v.Start + pg)
	if child.SharedAnonRefs(pp2.Frame) != 0 {
		t.Fatalf("refs after child CoW = %d, want untracked sole owner", child.SharedAnonRefs(pp2.Frame))
	}
	// Parent's sole-owner write now reuses in place (no copy).
	res, err = as.HandleFault(v.Start+pg, AccessWrite)
	if err != nil || res.Kind != FaultMkWrite {
		t.Fatalf("parent reuse = %+v, %v", res, err)
	}
}

func TestForkSharedFileStaysWritable(t *testing.T) {
	as, alloc := newAS(t)
	f := NewFile("shm", 4*pg, alloc)
	v, _ := as.MMap(4*pg, ProtRead|ProtWrite, FileShared, f, 0)
	as.HandleFault(v.Start, AccessWrite)

	child, fr, _ := doFork(t, as)
	if fr.Pages != 0 {
		t.Fatalf("shared file pages were write-protected: %+v", fr)
	}
	cp, _, _ := child.PT.Lookup(v.Start)
	if !cp.Flags.Has(pagetable.Write) {
		t.Fatal("child's shared mapping lost Write")
	}
	// The child is registered as a mapper for writeback.
	found := false
	for _, m := range f.Mappers() {
		if m == child {
			found = true
		}
	}
	if !found {
		t.Fatal("child not registered as file mapper")
	}
}

func TestForkPrivateFile(t *testing.T) {
	as, alloc := newAS(t)
	f := NewFile("lib", 4*pg, alloc)
	v, _ := as.MMap(4*pg, ProtRead|ProtWrite, FilePrivate, f, 0)
	as.HandleFault(v.Start, AccessRead)     // page-cache RO
	as.HandleFault(v.Start+pg, AccessWrite) // private copy

	child, fr, _ := doFork(t, as)
	// Only the private copy was writable; one page write-protected.
	if fr.Pages != 1 {
		t.Fatalf("flush = %+v", fr)
	}
	// The page-cache page is shared without refcounting (it belongs to
	// the file); the private copy is CoW-shared.
	cacheP, _, _ := child.PT.Lookup(v.Start)
	if cacheP.Frame != f.frames[0] {
		t.Fatal("child page-cache mapping wrong")
	}
	privP, _, _ := child.PT.Lookup(v.Start + pg)
	if child.SharedAnonRefs(privP.Frame) != 2 {
		t.Fatalf("private copy refs = %d", child.SharedAnonRefs(privP.Frame))
	}
}

func TestForkHugeCopiesEagerly(t *testing.T) {
	as, _ := newAS(t)
	v, _ := as.MMapHuge(huge, ProtRead|ProtWrite)
	as.HandleFault(v.Start, AccessWrite)

	child, fr, st := doFork(t, as)
	if st.PagesCopied != 512 {
		t.Fatalf("stats = %+v", st)
	}
	if fr.Pages != 0 {
		t.Fatalf("huge fork should not write-protect: %+v", fr)
	}
	pp, _, _ := as.PT.Lookup(v.Start)
	cp, csize, _ := child.PT.Lookup(v.Start)
	if pp.Frame == cp.Frame {
		t.Fatal("huge page shared instead of copied")
	}
	if csize != pagetable.Size2M {
		t.Fatalf("child page size = %v", csize)
	}
}

func TestForkUnmapRefcounts(t *testing.T) {
	as, _ := newAS(t)
	v, _ := as.MMap(2*pg, ProtRead|ProtWrite, Anon, nil, 0)
	as.HandleFault(v.Start, AccessWrite)
	child, _, _ := doFork(t, as)

	frame, _, _ := as.PT.Lookup(v.Start)
	liveBefore := as.alloc.Live()
	// Parent unmaps: frame survives (child still references it).
	if _, err := as.Unmap(v.Start, 2*pg); err != nil {
		t.Fatal(err)
	}
	if as.alloc.Live() != liveBefore {
		t.Fatal("frame freed while child still maps it")
	}
	if child.SharedAnonRefs(frame.Frame) != 0 {
		t.Fatalf("refs = %d, want untracked sole owner", child.SharedAnonRefs(frame.Frame))
	}
	// Child unmaps: now it is freed.
	if _, err := child.Unmap(v.Start, 2*pg); err != nil {
		t.Fatal(err)
	}
	if as.alloc.Live() != liveBefore-1 {
		t.Fatal("frame not freed after last unmap")
	}
}
