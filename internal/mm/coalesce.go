package mm

import "sort"

// Coalesce merges adjacent and overlapping FlushRanges of equal stride
// into the minimal sorted set of ranges covering the same pages. It is
// the mmu_gather-style batching both flush paths share: the synchronous
// writeback path uses it to issue one shootdown per merged run instead
// of one per contiguous burst, and the asynchronous fabric uses the same
// adjacency rule when coalescing in-ring invalidation entries.
//
// Ranges with different strides never merge (a 2M invalidation covers
// different PTE granularity than a 4K one). FreedTables is sticky: a
// merged range frees tables if any input did, so the early-ack
// suppression the paper requires (§3.2) survives merging. Empty input
// ranges are dropped. The input slice is not modified.
func Coalesce(ranges []FlushRange) []FlushRange {
	work := make([]FlushRange, 0, len(ranges))
	for _, r := range ranges {
		if !r.Empty() {
			work = append(work, r)
		}
	}
	if len(work) <= 1 {
		return work
	}
	sort.Slice(work, func(i, j int) bool {
		if work[i].Start != work[j].Start {
			return work[i].Start < work[j].Start
		}
		if work[i].End != work[j].End {
			return work[i].End < work[j].End
		}
		return work[i].Stride < work[j].Stride
	})
	out := work[:1]
	for _, r := range work[1:] {
		cur := &out[len(out)-1]
		if r.Stride == cur.Stride && r.Start <= cur.End {
			if r.End > cur.End {
				cur.End = r.End
			}
			// The merged group is contiguous (a gap would have refused the
			// merge), so the span is the exact page count.
			cur.Pages = int((cur.End - cur.Start) / cur.Stride.Bytes())
			cur.FreedTables = cur.FreedTables || r.FreedTables
			continue
		}
		out = append(out, r)
	}
	return out
}
