package mm

import (
	"fmt"

	"shootdown/internal/mach"
	"shootdown/internal/pagetable"
	"shootdown/internal/race"
	"shootdown/internal/tlb"
)

// ID identifies an address space.
type ID uint32

// FlushRange describes TLB invalidation work produced by an mm operation.
// The shootdown layer turns it into local flushes and IPIs.
type FlushRange struct {
	// Start and End delimit the virtual range to invalidate.
	Start, End uint64
	// Stride is the page size of the PTEs in the range.
	Stride pagetable.Size
	// Pages is the number of PTEs actually changed.
	Pages int
	// FreedTables notes that page-table pages were released, which forbids
	// the early-acknowledgement optimization (paper §3.2).
	FreedTables bool
}

// Empty reports whether no invalidation is needed.
func (f FlushRange) Empty() bool { return f.Pages == 0 }

// AddressSpace is the simulated mm_struct: VMAs, page tables, PCIDs, the
// active-CPU mask, and the TLB generation counter Linux's flush logic keys
// off.
type AddressSpace struct {
	// ID is a stable identity for reports.
	ID ID
	// PT holds the authoritative translations.
	PT *pagetable.Table
	// MmapSem serializes address-space changes (mm->mmap_sem).
	MmapSem *RWSem

	// KernelPCID and UserPCID are the two PCIDs PTI assigns to the
	// process: the kernel view (user+kernel mappings) and the user view
	// (user mappings only). Without PTI only KernelPCID is used.
	KernelPCID, UserPCID tlb.PCID

	alloc *pagetable.FrameAlloc
	vmas  vmaSet

	// tlbGen is mm->context.tlb_gen: bumped on every batch of PTE
	// changes; per-CPU state catches up during flushes. Linux accesses it
	// atomically; the race model treats it as an atomic variable.
	tlbGen uint64
	// activeMask is mm_cpumask: CPUs that may hold cached translations.
	// Maintained with atomic bit operations in Linux; atomic here too.
	activeMask mach.CPUMask

	// rt, when non-nil, is the attached happens-before checker; genVar and
	// maskVar are the precomputed variable names it tracks this mm under.
	rt              *race.Detector
	genVar, maskVar string

	mmapCursor uint64
	// lastRemoved holds the VMAs removed by an Unmap in progress, so frame
	// ownership can still be resolved while zapping.
	lastRemoved []*VMA
	// sharedAnon refcounts anonymous frames shared by deduplication (KSM)
	// or fork CoW: frame -> number of PTEs referencing it. Unshared anon
	// frames are absent. The structure is shared between a parent and its
	// forked children, since they reference the same frames.
	sharedAnon *FrameRefs
}

// FrameRefs refcounts frames shared by multiple PTEs (KSM pages, fork CoW
// pages), across the address spaces that share them.
type FrameRefs struct {
	m map[uint64]int
}

// NewFrameRefs returns an empty refcount table.
func NewFrameRefs() *FrameRefs { return &FrameRefs{m: make(map[uint64]int)} }

// Refs returns the shared reference count of frame (0 = unshared).
func (r *FrameRefs) Refs(frame uint64) int { return r.m[frame] }

// Add increases frame's count by n, initializing from base references.
func (r *FrameRefs) Add(frame uint64, n int) { r.m[frame] += n }

// Drop decrements frame's count and reports whether the frame became
// unreferenced (the caller then frees it). Entries exist only while the
// frame has two or more references: when the count falls to one, the
// entry is removed and the surviving reference behaves as a sole owner
// (enabling the do_wp_page reuse fast path).
func (r *FrameRefs) Drop(frame uint64) (free bool) {
	refs, shared := r.m[frame]
	if !shared {
		// Sole reference dropped.
		return true
	}
	if refs <= 2 {
		delete(r.m, frame)
		return false // one reference survives
	}
	r.m[frame] = refs - 1
	return false
}

// Shared reports whether frame has a shared refcount entry.
func (r *FrameRefs) Shared(frame uint64) bool { return r.m[frame] > 0 }

// NewAddressSpace creates an empty address space. Frames come from alloc,
// which is typically shared machine-wide.
func NewAddressSpace(id ID, alloc *pagetable.FrameAlloc, sem *RWSem) *AddressSpace {
	return &AddressSpace{
		ID:         id,
		PT:         pagetable.New(),
		MmapSem:    sem,
		alloc:      alloc,
		tlbGen:     1,
		mmapCursor: 0x0000_1000_0000,
		// PCIDs mirror Linux's scheme: user PCID = kernel PCID | bit 11.
		KernelPCID: tlb.PCID(id&0x3ff) + 1,
		UserPCID:   (tlb.PCID(id&0x3ff) + 1) | 0x800,
		sharedAnon: NewFrameRefs(),
	}
}

// EnableRace attaches the happens-before checker to this address space:
// generation and cpumask accesses become modeled atomics, the mmap_sem
// reports acquire/release edges, and the page table reports PTE accesses.
func (as *AddressSpace) EnableRace(d *race.Detector) {
	if d == nil {
		return
	}
	as.rt = d
	as.genVar = fmt.Sprintf("mm%d.tlb_gen", as.ID)
	as.maskVar = fmt.Sprintf("mm%d.cpumask", as.ID)
	as.MmapSem.EnableRace(d)
	as.PT.EnableRace(d, fmt.Sprintf("mm%d", as.ID))
}

// Gen returns the current TLB generation (atomic_read of tlb_gen).
func (as *AddressSpace) Gen() uint64 {
	as.rt.AtomicLoad(as.genVar)
	return as.tlbGen
}

// BumpGen increments and returns the TLB generation; every operation that
// changes PTEs calls this exactly once before flushing (inc_mm_tlb_gen,
// an atomic increment).
func (as *AddressSpace) BumpGen() uint64 {
	as.rt.AtomicRMW(as.genVar)
	as.tlbGen++
	return as.tlbGen
}

// ActiveCPUs returns the mm_cpumask snapshot. The clone matters: the
// live mask keeps mutating under SetActive/ClearActive, and CPUMask word
// storage has reference semantics, so handing out the field itself would
// let the snapshot change under the caller.
func (as *AddressSpace) ActiveCPUs() mach.CPUMask {
	as.rt.AtomicLoad(as.maskVar)
	return as.activeMask.Clone()
}

// SetActive marks cpu as possibly caching this address space.
func (as *AddressSpace) SetActive(cpu mach.CPU) {
	as.rt.AtomicRMW(as.maskVar)
	as.activeMask.Set(cpu)
}

// ClearActive removes cpu from the mask (on switch-away with a flush).
func (as *AddressSpace) ClearActive(cpu mach.CPU) {
	as.rt.AtomicRMW(as.maskVar)
	as.activeMask.Clear(cpu)
}

// VMAs returns the address-ordered VMA list.
func (as *AddressSpace) VMAs() []*VMA { return as.vmas.all() }

// FindVMA returns the VMA covering va, or nil.
func (as *AddressSpace) FindVMA(va uint64) *VMA { return as.vmas.find(va) }

// MMap creates a VMA of length bytes with the given protection and
// backing, choosing an address. file may be nil for Anon.
func (as *AddressSpace) MMap(length uint64, prot Prot, kind Kind, file *File, fileOff uint64) (*VMA, error) {
	if length == 0 || !pageAligned(length) || !pageAligned(fileOff) {
		return nil, fmt.Errorf("%w: length %#x off %#x", ErrBadRange, length, fileOff)
	}
	start := as.mmapCursor
	for as.vmas.overlaps(start, start+length) {
		start += length // trivial skip; cursors rarely collide in practice
	}
	as.mmapCursor = start + length + pagetable.PageSize4K // guard page
	return as.mmapFixed(start, length, prot, kind, file, fileOff)
}

// MMapFixed creates a VMA at an exact address.
func (as *AddressSpace) MMapFixed(start, length uint64, prot Prot, kind Kind, file *File, fileOff uint64) (*VMA, error) {
	if !pageAligned(start) || length == 0 || !pageAligned(length) || !pageAligned(fileOff) {
		return nil, fmt.Errorf("%w: [%#x,+%#x)", ErrBadRange, start, length)
	}
	if as.vmas.overlaps(start, start+length) {
		return nil, fmt.Errorf("%w: [%#x,+%#x)", ErrOverlap, start, length)
	}
	return as.mmapFixed(start, length, prot, kind, file, fileOff)
}

func (as *AddressSpace) mmapFixed(start, length uint64, prot Prot, kind Kind, file *File, fileOff uint64) (*VMA, error) {
	if kind != Anon && file == nil {
		return nil, fmt.Errorf("mm: file-backed VMA without file")
	}
	if kind == Anon {
		file = nil
	}
	v := &VMA{Start: start, End: start + length, Prot: prot, Kind: kind, File: file, FileOff: fileOff}
	as.vmas.insert(v)
	if file != nil {
		file.addMapper(as)
	}
	return v, nil
}

// Unmap removes [start, start+length): VMAs are deleted, PTEs zapped,
// privately owned frames freed, and empty page-table pages released. The
// returned FlushRange has FreedTables set when table pages were freed
// (munmap semantics).
func (as *AddressSpace) Unmap(start, length uint64) (FlushRange, error) {
	if !pageAligned(start) || length == 0 || !pageAligned(length) {
		return FlushRange{}, fmt.Errorf("%w: [%#x,+%#x)", ErrBadRange, start, length)
	}
	end := start + length
	removedVMAs := as.vmas.removeRange(start, end)
	for _, v := range removedVMAs {
		if v.File != nil {
			v.File.removeMapper(as)
		}
	}
	as.lastRemoved = removedVMAs
	pages, freed := as.zapRange(start, end)
	as.lastRemoved = nil
	return FlushRange{Start: start, End: end, Stride: pagetable.Size4K, Pages: pages, FreedTables: freed}, nil
}

// MadviseDontneed zaps PTEs in [start, start+length) and frees privately
// owned frames, keeping the VMAs (madvise(MADV_DONTNEED) semantics). The
// returned FlushRange never sets FreedTables: Linux's zap path leaves
// page-table pages in place, so early acknowledgement remains safe.
func (as *AddressSpace) MadviseDontneed(start, length uint64) (FlushRange, error) {
	if !pageAligned(start) || length == 0 || !pageAligned(length) {
		return FlushRange{}, fmt.Errorf("%w: [%#x,+%#x)", ErrBadRange, start, length)
	}
	end := start + length
	if as.vmas.find(start) == nil {
		return FlushRange{}, fmt.Errorf("%w: %#x", ErrNoVMA, start)
	}
	pages, _ := as.zapRange(start, end)
	return FlushRange{Start: start, End: end, Stride: pagetable.Size4K, Pages: pages}, nil
}

// zapRange unmaps present leaves in [start, end), freeing frames this mm
// owns (anonymous pages and private CoW copies; never page-cache frames).
func (as *AddressSpace) zapRange(start, end uint64) (pages int, freedTables bool) {
	type leaf struct {
		va, frame uint64
	}
	var leaves []leaf
	as.PT.VisitRange(start, end, func(tr pagetable.Translation) {
		leaves = append(leaves, leaf{tr.VA, tr.Frame})
	})
	for _, l := range leaves {
		owned := as.ownsFrame(l.va, l.frame)
		pte, size, _ := as.PT.Lookup(l.va)
		freed, err := as.PT.Unmap(l.va)
		if err != nil {
			panic(fmt.Sprintf("mm: zap of visited leaf failed: %v", err))
		}
		if owned {
			as.releaseAnonFrame(pte.Frame, size)
		}
		freedTables = freedTables || freed
		pages++
	}
	return pages, freedTables
}

// releaseAnonFrame drops one reference to an anon frame (or huge frame
// run), freeing it when unshared or when the last sharer goes away.
func (as *AddressSpace) releaseAnonFrame(frame uint64, size pagetable.Size) {
	if size == pagetable.Size2M {
		as.alloc.FreeContig(frame, int(pagetable.PageSize2M/pagetable.PageSize4K))
		return
	}
	if as.sharedAnon.Drop(frame) {
		as.alloc.Free(frame)
	}
}

// ownsFrame reports whether the frame mapped at va is private to this mm
// (anonymous or a CoW copy) rather than a shared page-cache frame.
func (as *AddressSpace) ownsFrame(va, frame uint64) bool {
	v := as.vmas.find(va)
	if v == nil {
		// VMA already removed (munmap path): a frame differing from the
		// page cache can no longer be distinguished; treat anon-looking
		// frames conservatively as owned only if no file once backed it.
		// Unmap removes VMAs before zapping, so it passes the pre-removal
		// check below via removedOwnership.
		return as.removedOwnership(va, frame)
	}
	switch v.Kind {
	case Anon:
		return true
	case FilePrivate:
		idx := v.fileOffsetOf(va) / pagetable.PageSize4K
		cached, ok := v.File.frames[idx]
		return !ok || cached != frame
	default:
		return false
	}
}

// removedOwnership resolves frame ownership for pages whose VMA was just
// removed: Unmap records the removed VMAs here before zapping.
func (as *AddressSpace) removedOwnership(va, frame uint64) bool {
	for _, v := range as.lastRemoved {
		if v.Contains(va) {
			switch v.Kind {
			case Anon:
				return true
			case FilePrivate:
				idx := v.fileOffsetOf(va) / pagetable.PageSize4K
				cached, ok := v.File.frames[idx]
				return !ok || cached != frame
			default:
				return false
			}
		}
	}
	return false
}

// Protect changes the protection of [start, start+length) to prot,
// updating VMAs (with splits) and present PTEs. The returned FlushRange
// covers the changed PTEs.
func (as *AddressSpace) Protect(start, length uint64, prot Prot) (FlushRange, error) {
	if !pageAligned(start) || length == 0 || !pageAligned(length) {
		return FlushRange{}, fmt.Errorf("%w: [%#x,+%#x)", ErrBadRange, start, length)
	}
	end := start + length
	pieces := as.vmas.removeRange(start, end)
	if len(pieces) == 0 {
		return FlushRange{}, fmt.Errorf("%w: [%#x,+%#x)", ErrNoVMA, start, length)
	}
	for _, v := range pieces {
		v.Prot = prot
		as.vmas.insert(v)
		if v.File != nil {
			v.File.addMapper(as) // keep the mapper refcount balanced
		}
	}
	// Apply to present PTEs.
	var pages int
	as.PT.VisitRange(start, end, func(tr pagetable.Translation) {
		va := tr.VA
		if prot.Has(ProtWrite) {
			// Write permission is granted lazily (CoW / dirty tracking):
			// do not set Write here, only wider read/exec bits.
			_ = va
		} else {
			if tr.Flags.Has(pagetable.Write) {
				must(as.PT.ClearFlags(va, pagetable.Write))
			}
		}
		if !prot.Has(ProtExec) {
			must(as.PT.SetFlags(va, pagetable.NX))
		} else {
			must(as.PT.ClearFlags(va, pagetable.NX))
		}
		pages++
	})
	return FlushRange{Start: start, End: end, Stride: pagetable.Size4K, Pages: pages}, nil
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
