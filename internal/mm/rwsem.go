package mm

import "shootdown/internal/sim"

// RWSem is a reader-writer semaphore for simulated processes, modeling
// mm->mmap_sem. Acquisition order is not strictly FIFO, but writers cannot
// be starved indefinitely in the closed workloads this repository runs:
// waiters recheck on every release broadcast, deterministically ordered by
// the engine.
type RWSem struct {
	eng     *sim.Engine
	name    string
	readers int
	writer  bool
	changed *sim.Cond

	// Contended counts acquisitions that had to wait (for reports).
	Contended uint64
}

// NewRWSem returns an unlocked semaphore.
func NewRWSem(eng *sim.Engine, name string) *RWSem {
	return &RWSem{eng: eng, name: name, changed: eng.NewCond()}
}

// Name returns the diagnostic name.
func (s *RWSem) Name() string { return s.name }

// TryDownRead acquires for reading without blocking; it reports success.
func (s *RWSem) TryDownRead() bool {
	if s.writer {
		return false
	}
	s.readers++
	return true
}

// TryDownWrite acquires exclusively without blocking; it reports success.
func (s *RWSem) TryDownWrite() bool {
	if s.writer || s.readers > 0 {
		return false
	}
	s.writer = true
	return true
}

// Changed returns the cond broadcast on every release, so callers can
// build interruptible waits (the kernel layer waits on it while still
// servicing IPIs, as a task sleeping in down_read does).
func (s *RWSem) Changed() *sim.Cond { return s.changed }

// NoteContention bumps the contention counter (used by Try-based waiters).
func (s *RWSem) NoteContention() { s.Contended++ }

// DownRead acquires the semaphore for reading, blocking while a writer
// holds it.
func (s *RWSem) DownRead(p *sim.Proc) {
	for s.writer {
		s.Contended++
		s.changed.Wait(p)
	}
	s.readers++
}

// UpRead releases a read acquisition.
func (s *RWSem) UpRead(p *sim.Proc) {
	if s.readers <= 0 {
		panic("mm: UpRead without DownRead on " + s.name)
	}
	s.readers--
	if s.readers == 0 {
		s.changed.Broadcast()
	}
}

// DownWrite acquires the semaphore exclusively.
func (s *RWSem) DownWrite(p *sim.Proc) {
	for s.writer || s.readers > 0 {
		s.Contended++
		s.changed.Wait(p)
	}
	s.writer = true
}

// UpWrite releases an exclusive acquisition.
func (s *RWSem) UpWrite(p *sim.Proc) {
	if !s.writer {
		panic("mm: UpWrite without DownWrite on " + s.name)
	}
	s.writer = false
	s.changed.Broadcast()
}

// HeldForWrite reports whether a writer currently holds the semaphore.
func (s *RWSem) HeldForWrite() bool { return s.writer }

// Readers returns the current reader count.
func (s *RWSem) Readers() int { return s.readers }
