package mm

import (
	"shootdown/internal/race"
	"shootdown/internal/sim"
)

// RWSem is a reader-writer semaphore for simulated processes, modeling
// mm->mmap_sem. Acquisition order is not strictly FIFO, but writers cannot
// be starved indefinitely in the closed workloads this repository runs:
// waiters recheck on every release broadcast, deterministically ordered by
// the engine.
type RWSem struct {
	eng     *sim.Engine
	name    string
	readers int
	writer  bool
	changed *sim.Cond

	// Contended counts acquisitions that had to wait (for reports).
	Contended uint64

	obs *SemObserver
	// rt, when non-nil, receives acquire/release happens-before edges.
	// Separate from obs so the lockdep observer and the race detector can
	// coexist.
	rt *race.Detector
}

// SemObserver receives lock-event notifications for deadlock/lock-order
// checkers. Acquired fires after a successful acquisition (including the
// Try variants), Released after a release. Callbacks must be purely
// observational.
type SemObserver struct {
	Acquired func(s *RWSem, write bool)
	Released func(s *RWSem, write bool)
}

// SetObserver installs (or, with nil, removes) the lock-event observer.
func (s *RWSem) SetObserver(o *SemObserver) { s.obs = o }

// EnableRace attaches the happens-before checker: every acquisition joins
// the clocks of past releases, every release publishes the holder's clock.
// Read-side releases join (rather than overwrite) the semaphore's clock,
// so concurrent readers all stay ordered before the next writer.
func (s *RWSem) EnableRace(d *race.Detector) { s.rt = d }

func (s *RWSem) acquired(write bool) {
	s.rt.AcquireName("sem:" + s.name)
	if s.obs != nil && s.obs.Acquired != nil {
		s.obs.Acquired(s, write)
	}
}

func (s *RWSem) released(write bool) {
	s.rt.ReleaseName("sem:" + s.name)
	if s.obs != nil && s.obs.Released != nil {
		s.obs.Released(s, write)
	}
}

// NewRWSem returns an unlocked semaphore.
func NewRWSem(eng *sim.Engine, name string) *RWSem {
	return &RWSem{eng: eng, name: name, changed: eng.NewCond()}
}

// Name returns the diagnostic name.
func (s *RWSem) Name() string { return s.name }

// TryDownRead acquires for reading without blocking; it reports success.
func (s *RWSem) TryDownRead() bool {
	if s.writer {
		return false
	}
	s.readers++
	s.acquired(false)
	return true
}

// TryDownWrite acquires exclusively without blocking; it reports success.
func (s *RWSem) TryDownWrite() bool {
	if s.writer || s.readers > 0 {
		return false
	}
	s.writer = true
	s.acquired(true)
	return true
}

// Changed returns the cond broadcast on every release, so callers can
// build interruptible waits (the kernel layer waits on it while still
// servicing IPIs, as a task sleeping in down_read does).
func (s *RWSem) Changed() *sim.Cond { return s.changed }

// NoteContention bumps the contention counter (used by Try-based waiters).
func (s *RWSem) NoteContention() { s.Contended++ }

// DownRead acquires the semaphore for reading, blocking while a writer
// holds it.
func (s *RWSem) DownRead(p *sim.Proc) {
	for s.writer {
		s.Contended++
		s.changed.Wait(p)
	}
	s.readers++
	s.acquired(false)
}

// UpRead releases a read acquisition.
func (s *RWSem) UpRead(p *sim.Proc) {
	if s.readers <= 0 {
		panic("mm: UpRead without DownRead on " + s.name)
	}
	s.readers--
	if s.readers == 0 {
		s.changed.Broadcast()
	}
	s.released(false)
}

// DownWrite acquires the semaphore exclusively.
func (s *RWSem) DownWrite(p *sim.Proc) {
	for s.writer || s.readers > 0 {
		s.Contended++
		s.changed.Wait(p)
	}
	s.writer = true
	s.acquired(true)
}

// UpWrite releases an exclusive acquisition.
func (s *RWSem) UpWrite(p *sim.Proc) {
	if !s.writer {
		panic("mm: UpWrite without DownWrite on " + s.name)
	}
	s.writer = false
	s.changed.Broadcast()
	s.released(true)
}

// HeldForWrite reports whether a writer currently holds the semaphore.
func (s *RWSem) HeldForWrite() bool { return s.writer }

// Readers returns the current reader count.
func (s *RWSem) Readers() int { return s.readers }
