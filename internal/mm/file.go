package mm

import (
	"sort"

	"shootdown/internal/pagetable"
)

// File is a simulated file with a page cache: memory-mapped I/O workloads
// (Sysbench's mmap+fdatasync, Apache's per-request file maps) operate on
// these. Page-cache frames are allocated lazily on first access.
type File struct {
	// Name identifies the file in reports.
	Name string
	// Size is the file length in bytes.
	Size uint64

	alloc  *pagetable.FrameAlloc
	frames map[uint64]uint64 // page index -> frame
	// dirty tracks page indexes written through shared mappings and not
	// yet written back. fdatasync consumes this set.
	dirty map[uint64]struct{}

	// mappers are the address spaces currently mapping the file (a
	// simplified reverse map used by writeback).
	mappers map[*AddressSpace]int
}

// NewFile creates a file of the given size whose page-cache frames come
// from alloc.
func NewFile(name string, size uint64, alloc *pagetable.FrameAlloc) *File {
	return &File{
		Name: name, Size: size, alloc: alloc,
		frames:  make(map[uint64]uint64),
		dirty:   make(map[uint64]struct{}),
		mappers: make(map[*AddressSpace]int),
	}
}

// Pages returns the file length in 4 KiB pages (rounded up).
func (f *File) Pages() uint64 {
	return (f.Size + pagetable.PageSize4K - 1) / pagetable.PageSize4K
}

// frame returns (allocating if needed) the page-cache frame for page idx.
func (f *File) frame(idx uint64) uint64 {
	if fr, ok := f.frames[idx]; ok {
		return fr
	}
	fr := f.alloc.Alloc()
	f.frames[idx] = fr
	return fr
}

// MarkDirty records a shared-mapping write to page idx.
func (f *File) MarkDirty(idx uint64) { f.dirty[idx] = struct{}{} }

// DirtyCount returns the number of dirty page-cache pages.
func (f *File) DirtyCount() int { return len(f.dirty) }

// TakeDirty removes and returns the dirty page indexes intersecting
// [startIdx, endIdx), sorted ascending. Writeback calls this, then
// write-protects the corresponding PTEs in every mapper.
func (f *File) TakeDirty(startIdx, endIdx uint64) []uint64 {
	var out []uint64
	for idx := range f.dirty {
		if idx >= startIdx && idx < endIdx {
			out = append(out, idx)
		}
	}
	for _, idx := range out {
		delete(f.dirty, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Mappers returns the address spaces currently mapping the file.
func (f *File) Mappers() []*AddressSpace {
	out := make([]*AddressSpace, 0, len(f.mappers))
	for as := range f.mappers {
		out = append(out, as)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (f *File) addMapper(as *AddressSpace) { f.mappers[as]++ }
func (f *File) removeMapper(as *AddressSpace) {
	if f.mappers[as]--; f.mappers[as] <= 0 {
		delete(f.mappers, as)
	}
}
