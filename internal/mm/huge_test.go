package mm

import (
	"testing"

	"shootdown/internal/pagetable"
)

const huge = pagetable.PageSize2M

func TestMMapHugeAndPopulate(t *testing.T) {
	as, _ := newAS(t)
	v, err := as.MMapHuge(2*huge, ProtRead|ProtWrite)
	if err != nil {
		t.Fatal(err)
	}
	if !v.HugePages || v.Start%huge != 0 {
		t.Fatalf("vma = %+v", v)
	}
	res, err := as.HandleFault(v.Start+0x1234, AccessWrite)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != FaultPopulate || !res.Huge {
		t.Fatalf("fault = %+v", res)
	}
	tr, err := as.PT.Walk(v.Start + huge - 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size != pagetable.Size2M || !tr.Flags.Has(pagetable.Write|pagetable.Dirty) {
		t.Fatalf("translation = %+v", tr)
	}
	// The second huge page is a separate fault.
	if _, err := as.PT.Walk(v.Start + huge); err == nil {
		t.Fatal("second huge page mapped without a fault")
	}
}

func TestMMapHugeValidation(t *testing.T) {
	as, _ := newAS(t)
	if _, err := as.MMapHuge(pg, ProtRead); err == nil {
		t.Fatal("non-2M length accepted")
	}
}

func TestHugeUnmapFreesContig(t *testing.T) {
	as, _ := newAS(t)
	v, _ := as.MMapHuge(huge, ProtRead|ProtWrite)
	as.HandleFault(v.Start, AccessWrite)
	liveBefore := as.alloc.Live()
	fl, err := as.Unmap(v.Start, huge)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Pages != 1 {
		t.Fatalf("flush pages = %d (one 2M leaf)", fl.Pages)
	}
	if freed := liveBefore - as.alloc.Live(); freed != 512 {
		t.Fatalf("freed %d frames, want 512", freed)
	}
}

func TestCollapseHuge(t *testing.T) {
	as, _ := newAS(t)
	// A small-page anon VMA aligned to 2M, fully populated.
	v, err := as.MMapFixed(4*huge, huge, ProtRead|ProtWrite, Anon, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < huge; off += pg {
		if _, err := as.HandleFault(v.Start+off, AccessWrite); err != nil {
			t.Fatal(err)
		}
	}
	leaves := as.PT.LeafCount()
	if leaves != 512 {
		t.Fatalf("leaves = %d", leaves)
	}
	liveBefore := as.alloc.Live()
	fr, err := as.CollapseHuge(v.Start)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.FreedTables {
		t.Fatal("collapse must report freed page tables (early-ack unsafe)")
	}
	if fr.Pages != 512 {
		t.Fatalf("flush pages = %d", fr.Pages)
	}
	// 512 small frames freed, 512 contiguous allocated: net 0.
	if as.alloc.Live() != liveBefore {
		t.Fatalf("live frames changed by %d", as.alloc.Live()-liveBefore)
	}
	tr, err := as.PT.Walk(v.Start + 0x5000)
	if err != nil || tr.Size != pagetable.Size2M {
		t.Fatalf("post-collapse walk = %+v, %v", tr, err)
	}
	if as.PT.LeafCount() != 1 {
		t.Fatalf("leaf count = %d", as.PT.LeafCount())
	}
	// Collapsing again fails (already huge).
	if _, err := as.CollapseHuge(v.Start); err == nil {
		t.Fatal("double collapse succeeded")
	}
}

func TestCollapseHugeRequiresFullPopulation(t *testing.T) {
	as, _ := newAS(t)
	v, _ := as.MMapFixed(8*huge, huge, ProtRead|ProtWrite, Anon, nil, 0)
	as.HandleFault(v.Start, AccessWrite) // only one page
	if _, err := as.CollapseHuge(v.Start); err == nil {
		t.Fatal("collapse of sparsely populated region succeeded")
	}
}

func TestDedupPages(t *testing.T) {
	as, _ := newAS(t)
	v, _ := as.MMap(8*pg, ProtRead|ProtWrite, Anon, nil, 0)
	as.HandleFault(v.Start, AccessWrite)
	as.HandleFault(v.Start+pg, AccessWrite)
	liveBefore := as.alloc.Live()

	frs, err := as.DedupPages(v.Start, v.Start+pg)
	if err != nil {
		t.Fatal(err)
	}
	if len(frs) != 2 {
		t.Fatalf("flush ranges = %d", len(frs))
	}
	if as.alloc.Live() != liveBefore-1 {
		t.Fatalf("duplicate frame not freed: live %d -> %d", liveBefore, as.alloc.Live())
	}
	p1, _, _ := as.PT.Lookup(v.Start)
	p2, _, _ := as.PT.Lookup(v.Start + pg)
	if p1.Frame != p2.Frame {
		t.Fatal("pages do not share a frame")
	}
	if p1.Flags.Has(pagetable.Write) || p2.Flags.Has(pagetable.Write) {
		t.Fatal("shared pages still writable")
	}
	if as.SharedAnonRefs(p1.Frame) != 2 {
		t.Fatalf("refs = %d", as.SharedAnonRefs(p1.Frame))
	}

	// Writing one breaks CoW: fresh frame, refcount drops.
	res, err := as.HandleFault(v.Start, AccessWrite)
	if err != nil || res.Kind != FaultCoW {
		t.Fatalf("post-dedup write = %+v, %v", res, err)
	}
	if as.SharedAnonRefs(p1.Frame) != 0 {
		t.Fatalf("refs after CoW = %d, want untracked sole owner", as.SharedAnonRefs(p1.Frame))
	}
	// Unmapping the last sharer frees the KSM frame.
	liveBefore = as.alloc.Live()
	if _, err := as.Unmap(v.Start+pg, pg); err != nil {
		t.Fatal(err)
	}
	if as.alloc.Live() != liveBefore-1 {
		t.Fatal("KSM frame not freed with last sharer")
	}
	if as.SharedAnonRefs(p1.Frame) != 0 {
		t.Fatal("refcount not cleared")
	}
}

func TestDedupValidation(t *testing.T) {
	as, alloc := newAS(t)
	v, _ := as.MMap(4*pg, ProtRead|ProtWrite, Anon, nil, 0)
	as.HandleFault(v.Start, AccessWrite)
	if _, err := as.DedupPages(v.Start, v.Start); err == nil {
		t.Fatal("self-dedup accepted")
	}
	if _, err := as.DedupPages(v.Start, v.Start+pg); err == nil {
		t.Fatal("dedup with unmapped page accepted")
	}
	f := NewFile("f", 4*pg, alloc)
	fv, _ := as.MMap(4*pg, ProtRead|ProtWrite, FileShared, f, 0)
	as.HandleFault(fv.Start, AccessWrite)
	if _, err := as.DedupPages(v.Start, fv.Start); err == nil {
		t.Fatal("dedup of file page accepted")
	}
}

func TestMigratePage(t *testing.T) {
	as, _ := newAS(t)
	v, _ := as.MMap(4*pg, ProtRead|ProtWrite, Anon, nil, 0)
	as.HandleFault(v.Start, AccessWrite)
	before, _, _ := as.PT.Lookup(v.Start)
	fr, err := as.MigratePage(v.Start)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Pages != 1 {
		t.Fatalf("flush = %+v", fr)
	}
	after, _, _ := as.PT.Lookup(v.Start)
	if after.Frame == before.Frame {
		t.Fatal("frame unchanged by migration")
	}
	if after.Flags != before.Flags {
		t.Fatalf("flags changed: %v -> %v", before.Flags, after.Flags)
	}
	// KSM-shared pages refuse migration.
	as.HandleFault(v.Start+pg, AccessWrite)
	as.HandleFault(v.Start+2*pg, AccessWrite)
	if _, err := as.DedupPages(v.Start+pg, v.Start+2*pg); err != nil {
		t.Fatal(err)
	}
	if _, err := as.MigratePage(v.Start + pg); err == nil {
		t.Fatal("migrated a KSM-shared page")
	}
}

func TestNUMAHintAndFault(t *testing.T) {
	as, _ := newAS(t)
	v, _ := as.MMap(8*pg, ProtRead|ProtWrite, Anon, nil, 0)
	for i := uint64(0); i < 4; i++ {
		as.HandleFault(v.Start+i*pg, AccessWrite)
	}
	fr, err := as.NUMAHintRange(v.Start, v.End)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Pages != 4 {
		t.Fatalf("hinted %d pages", fr.Pages)
	}
	pte, _, _ := as.PT.Lookup(v.Start)
	if !pte.Flags.Has(pagetable.ProtNone) {
		t.Fatal("ProtNone not set")
	}
	// Hinting again is a no-op.
	fr2, err := as.NUMAHintRange(v.Start, v.End)
	if err != nil || !fr2.Empty() {
		t.Fatalf("re-hint = %+v, %v", fr2, err)
	}
	// The next access consumes the hint.
	res, err := as.HandleFault(v.Start, AccessRead)
	if err != nil || res.Kind != FaultNUMAHint {
		t.Fatalf("hint fault = %+v, %v", res, err)
	}
	pte, _, _ = as.PT.Lookup(v.Start)
	if pte.Flags.Has(pagetable.ProtNone) {
		t.Fatal("hint not consumed")
	}
}

func TestReclaimCleanFilePages(t *testing.T) {
	as, alloc := newAS(t)
	f := NewFile("data", 16*pg, alloc)
	v, _ := as.MMap(16*pg, ProtRead|ProtWrite, FileShared, f, 0)
	// 4 clean (read) + 2 dirty (written) pages.
	for i := uint64(0); i < 4; i++ {
		as.HandleFault(v.Start+i*pg, AccessRead)
	}
	as.HandleFault(v.Start+8*pg, AccessWrite)
	as.HandleFault(v.Start+9*pg, AccessWrite)

	victims, fr, err := as.ReclaimCleanFilePages(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) != 3 || fr.Pages != 3 {
		t.Fatalf("victims = %v, flush = %+v", victims, fr)
	}
	// Dirty pages stay mapped.
	if _, _, err := as.PT.Lookup(v.Start + 8*pg); err != nil {
		t.Fatal("dirty page was reclaimed")
	}
	// Reclaimed pages refault from the page cache (same frame).
	res, err := as.HandleFault(victims[0], AccessRead)
	if err != nil || res.Kind != FaultPopulate {
		t.Fatalf("refault = %+v, %v", res, err)
	}
	if res.Frame != f.frames[(victims[0]-v.Start)/pg] {
		t.Fatal("refault did not reuse the page-cache frame")
	}
	// Clean pages remaining: 4 - 3 reclaimed + 1 just refaulted = 2.
	victims, _, _ = as.ReclaimCleanFilePages(f, 100)
	if len(victims) != 2 {
		t.Fatalf("second reclaim = %v", victims)
	}
}

func TestAnonReuseFastPath(t *testing.T) {
	as, _ := newAS(t)
	v, _ := as.MMap(2*pg, ProtRead|ProtWrite, Anon, nil, 0)
	as.HandleFault(v.Start, AccessWrite)
	// Round-trip mprotect drops the Write bit.
	if _, err := as.Protect(v.Start, 2*pg, ProtRead); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Protect(v.Start, 2*pg, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	before, _, _ := as.PT.Lookup(v.Start)
	res, err := as.HandleFault(v.Start, AccessWrite)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != FaultMkWrite {
		t.Fatalf("sole-owner write-protect fault = %v, want reuse (mkwrite)", res.Kind)
	}
	after, _, _ := as.PT.Lookup(v.Start)
	if after.Frame != before.Frame {
		t.Fatal("reuse path copied the page")
	}
}
