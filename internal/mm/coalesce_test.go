package mm

import (
	"reflect"
	"testing"

	"shootdown/internal/pagetable"
)

func fr(start, end uint64, s pagetable.Size, freed bool) FlushRange {
	return FlushRange{
		Start: start, End: end, Stride: s,
		Pages:       int((end - start) / s.Bytes()),
		FreedTables: freed,
	}
}

func TestCoalesceMergesAdjacentAndOverlapping(t *testing.T) {
	// Unsorted input; adjacent and overlapping runs collapse.
	in := []FlushRange{
		fr(0x2000, 0x3000, pagetable.Size4K, false),
		fr(0x0000, 0x1000, pagetable.Size4K, false),
		fr(0x1000, 0x2000, pagetable.Size4K, false),
		fr(0x8000, 0xb000, pagetable.Size4K, false),
		fr(0x9000, 0xc000, pagetable.Size4K, false),
	}
	got := Coalesce(in)
	want := []FlushRange{
		fr(0x0000, 0x3000, pagetable.Size4K, false),
		fr(0x8000, 0xc000, pagetable.Size4K, false),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Coalesce = %+v, want %+v", got, want)
	}
	// The overlap merged to the union's page count, not the inputs' sum.
	if got[1].Pages != 4 {
		t.Fatalf("overlap pages = %d, want 4 (exact span, not 3+3)", got[1].Pages)
	}
}

func TestCoalesceKeepsGapsApart(t *testing.T) {
	in := []FlushRange{
		fr(0x0000, 0x1000, pagetable.Size4K, false),
		fr(0x2000, 0x3000, pagetable.Size4K, false),
	}
	got := Coalesce(in)
	if len(got) != 2 {
		t.Fatalf("Coalesce merged across a gap: %+v", got)
	}
}

func TestCoalesceKeepsStridesApart(t *testing.T) {
	in := []FlushRange{
		fr(0x0000, 0x1000, pagetable.Size4K, false),
		fr(0x1000, 0x1000+pagetable.PageSize2M, pagetable.Size2M, false),
	}
	got := Coalesce(in)
	if len(got) != 2 {
		t.Fatalf("Coalesce merged across strides: %+v", got)
	}
}

func TestCoalesceFreedTablesSticky(t *testing.T) {
	in := []FlushRange{
		fr(0x0000, 0x1000, pagetable.Size4K, false),
		fr(0x1000, 0x2000, pagetable.Size4K, true),
		fr(0x2000, 0x3000, pagetable.Size4K, false),
	}
	got := Coalesce(in)
	if len(got) != 1 || !got[0].FreedTables {
		t.Fatalf("Coalesce = %+v, want one range with FreedTables sticky", got)
	}
}

func TestCoalesceDropsEmptyRanges(t *testing.T) {
	in := []FlushRange{
		{Start: 0x5000, End: 0x5000, Stride: pagetable.Size4K},
		fr(0x0000, 0x1000, pagetable.Size4K, false),
		{Start: 0x9000, End: 0x9000, Stride: pagetable.Size4K},
	}
	got := Coalesce(in)
	want := []FlushRange{fr(0x0000, 0x1000, pagetable.Size4K, false)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Coalesce = %+v, want only the non-empty range", got)
	}
	if out := Coalesce(nil); len(out) != 0 {
		t.Fatalf("Coalesce(nil) = %+v", out)
	}
}

func TestCoalesceInputUnmodified(t *testing.T) {
	in := []FlushRange{
		fr(0x1000, 0x2000, pagetable.Size4K, false),
		fr(0x0000, 0x1000, pagetable.Size4K, true),
	}
	snapshot := append([]FlushRange(nil), in...)
	Coalesce(in)
	if !reflect.DeepEqual(in, snapshot) {
		t.Fatalf("Coalesce mutated its input: %+v, was %+v", in, snapshot)
	}
}
