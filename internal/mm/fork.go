package mm

import (
	"shootdown/internal/pagetable"
)

// Fork clones this address space copy-on-write, the canonical source of
// the CoW faults §4.1 optimizes. The child gets its own page tables
// mapping the same frames; every writable private page is write-protected
// in BOTH address spaces (so either side's first write faults), which
// obligates the parent to flush the write-protected PTEs from every TLB —
// fork is itself a shootdown source.
//
// Returns the child and the parent's flush obligation (the child has no
// TLB presence yet, so only the parent needs flushing). ForkStats reports
// the work done so the kernel layer can charge costs.
func (as *AddressSpace) Fork(childID ID, childSem *RWSem) (*AddressSpace, FlushRange, ForkStats) {
	child := NewAddressSpace(childID, as.alloc, childSem)
	child.mmapCursor = as.mmapCursor
	// Parent and child share one refcount table: they reference the same
	// frames.
	child.sharedAnon = as.sharedAnon

	var st ForkStats
	var lo, hi uint64
	protected := 0

	for _, v := range as.vmas.all() {
		cv := *v
		child.vmas.insert(&cv)
		if v.File != nil {
			v.File.addMapper(child)
		}
		st.VMAs++
		as.PT.VisitRange(v.Start, v.End, func(tr pagetable.Translation) {
			st.PTEs++
			flags := tr.Flags
			shareFrame := tr.Frame
			switch v.Kind {
			case FileShared:
				// Shared mappings stay shared and writable.
			case Anon, FilePrivate:
				private := v.Kind == Anon || as.frameIsPrivateCopy(v, tr)
				if private && tr.Size == pagetable.Size4K {
					// Share the frame CoW: bump the shared refcount and
					// write-protect everywhere.
					if as.sharedAnon.Shared(tr.Frame) {
						as.sharedAnon.Add(tr.Frame, 1)
					} else {
						as.sharedAnon.Add(tr.Frame, 2)
					}
					if flags.Has(pagetable.Write) {
						must(as.PT.ClearFlags(tr.VA, pagetable.Write))
						flags &^= pagetable.Write
						if protected == 0 || tr.VA < lo {
							lo = tr.VA
						}
						if tr.VA+tr.Size.Bytes() > hi {
							hi = tr.VA + tr.Size.Bytes()
						}
						protected++
					}
				} else if private {
					// Huge private pages: copy eagerly (the kernel splits
					// or copies THP on fork depending on configuration;
					// eager copy keeps the model simple and safe).
					shareFrame = as.alloc.AllocContig(int(tr.Size.Bytes() / pagetable.PageSize4K))
					st.PagesCopied += int(tr.Size.Bytes() / pagetable.PageSize4K)
				}
			}
			size := tr.Size
			if err := child.PT.Map(tr.VA, shareFrame, size, flags&^pagetable.Huge); err != nil {
				panic(err)
			}
		})
	}
	st.PTEsWriteProtected = protected

	var fr FlushRange
	if protected > 0 {
		fr = FlushRange{Start: lo, End: hi, Stride: pagetable.Size4K, Pages: protected}
	}
	return child, fr, st
}

// ForkStats reports the bookkeeping volume of a Fork, for cost charging.
type ForkStats struct {
	VMAs               int
	PTEs               int
	PTEsWriteProtected int
	PagesCopied        int
}

// frameIsPrivateCopy reports whether the frame mapped at tr is a private
// CoW copy rather than the shared page cache (FilePrivate VMAs only).
func (as *AddressSpace) frameIsPrivateCopy(v *VMA, tr pagetable.Translation) bool {
	idx := v.fileOffsetOf(tr.VA) / pagetable.PageSize4K
	cached, ok := v.File.frames[idx]
	return !ok || cached != tr.Frame
}
