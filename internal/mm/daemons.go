package mm

import (
	"fmt"
	"sort"

	"shootdown/internal/pagetable"
)

// Daemon-side memory operations: the TLB-flush sources the paper lists in
// §2.1 beyond application system calls — memory deduplication (KSM), page
// reclamation, and NUMA-balancing migration. Each mutates PTEs and
// returns the flush work; the daemons package drives them and hands the
// ranges to the shootdown protocol.

// DedupPages merges two identical anonymous pages (KSM): both PTEs are
// write-protected and pointed at one shared frame; the duplicate frame is
// freed. The caller asserts content equality (the simulation does not
// model page contents). Both old translations become stale-harmful, so
// the returned ranges must be flushed everywhere the mm is active.
func (as *AddressSpace) DedupPages(va1, va2 uint64) ([]FlushRange, error) {
	if va1 == va2 {
		return nil, fmt.Errorf("%w: dedup of a page with itself", ErrBadRange)
	}
	var ptes [2]pagetable.PTE
	for i, va := range []uint64{va1, va2} {
		v := as.vmas.find(va)
		if v == nil || v.Kind != Anon || v.HugePages {
			return nil, fmt.Errorf("%w: dedup target %#x not small-page anon", ErrNoVMA, va)
		}
		pte, size, err := as.PT.Lookup(va &^ (pagetable.PageSize4K - 1))
		if err != nil || size != pagetable.Size4K {
			return nil, fmt.Errorf("mm: dedup target %#x not mapped 4K: %v", va, err)
		}
		ptes[i] = pte
	}
	p1 := va1 &^ (pagetable.PageSize4K - 1)
	p2 := va2 &^ (pagetable.PageSize4K - 1)
	if ptes[0].Frame == ptes[1].Frame {
		return nil, fmt.Errorf("mm: pages already share frame %d", ptes[0].Frame)
	}
	keep := ptes[0].Frame
	// Reference accounting: the kept frame now has the sum of both pages'
	// references; the duplicate loses its only (or shared) reference.
	if as.sharedAnon.Shared(keep) {
		as.sharedAnon.Add(keep, 1)
	} else {
		as.sharedAnon.Add(keep, 2)
	}
	as.releaseAnonFrame(ptes[1].Frame, pagetable.Size4K)

	roFlags := (ptes[0].Flags &^ (pagetable.Write | pagetable.Dirty | pagetable.Huge)) |
		pagetable.User | pagetable.Accessed
	if err := as.PT.ClearFlags(p1, pagetable.Write|pagetable.Dirty); err != nil {
		return nil, err
	}
	if err := as.PT.Remap(p2, keep, roFlags); err != nil {
		return nil, err
	}
	return []FlushRange{
		{Start: p1, End: p1 + pagetable.PageSize4K, Stride: pagetable.Size4K, Pages: 1},
		{Start: p2, End: p2 + pagetable.PageSize4K, Stride: pagetable.Size4K, Pages: 1},
	}, nil
}

// SharedAnonRefs returns the KSM reference count of frame (0 = unshared).
func (as *AddressSpace) SharedAnonRefs(frame uint64) int { return as.sharedAnon.Refs(frame) }

// MigratePage moves the anonymous page at va to a fresh frame (NUMA
// migration: the new frame stands for memory on the target node). The old
// translation is stale-harmful; the caller flushes and charges the copy.
func (as *AddressSpace) MigratePage(va uint64) (FlushRange, error) {
	page := va &^ (pagetable.PageSize4K - 1)
	v := as.vmas.find(page)
	if v == nil || v.Kind != Anon || v.HugePages {
		return FlushRange{}, fmt.Errorf("%w: migrate target %#x not small-page anon", ErrNoVMA, va)
	}
	pte, size, err := as.PT.Lookup(page)
	if err != nil || size != pagetable.Size4K {
		return FlushRange{}, fmt.Errorf("mm: migrate target %#x not mapped 4K: %v", va, err)
	}
	if as.sharedAnon.Shared(pte.Frame) {
		return FlushRange{}, fmt.Errorf("mm: migrate target %#x is KSM-shared", va)
	}
	newFrame := as.alloc.Alloc()
	if err := as.PT.Remap(page, newFrame, pte.Flags&^pagetable.Huge); err != nil {
		as.alloc.Free(newFrame)
		return FlushRange{}, err
	}
	as.alloc.Free(pte.Frame)
	return FlushRange{Start: page, End: page + pagetable.PageSize4K, Stride: pagetable.Size4K, Pages: 1}, nil
}

// NUMAHintRange installs ProtNone hints on the present small pages of
// [start, end) (change_prot_numa): the next access to each page faults so
// the balancer can observe locality. The PTE change requires a flush —
// this is exactly the path the paper's footnote 1 discusses (LATR's
// missing mmap_sem in task_numa_work).
func (as *AddressSpace) NUMAHintRange(start, end uint64) (FlushRange, error) {
	if !pageAligned(start) || !pageAligned(end) || start >= end {
		return FlushRange{}, fmt.Errorf("%w: numa hint [%#x,%#x)", ErrBadRange, start, end)
	}
	var pages int
	var lo, hi uint64
	as.PT.VisitRange(start, end, func(tr pagetable.Translation) {
		if tr.Size != pagetable.Size4K || tr.Flags.Has(pagetable.ProtNone) {
			return
		}
		must(as.PT.SetFlags(tr.VA, pagetable.ProtNone))
		if pages == 0 || tr.VA < lo {
			lo = tr.VA
		}
		if tr.VA+pagetable.PageSize4K > hi {
			hi = tr.VA + pagetable.PageSize4K
		}
		pages++
	})
	if pages == 0 {
		return FlushRange{}, nil
	}
	return FlushRange{Start: lo, End: hi, Stride: pagetable.Size4K, Pages: pages}, nil
}

// ReclaimCleanFilePages evicts up to maxPages clean (non-dirty) page-cache
// mappings of file from this address space (kswapd-style reclaim): the
// PTEs are unmapped, the page-cache frames stay, and the VMAs remain so
// later accesses refault. Returns the per-page virtual addresses reclaimed
// and the covering FlushRange.
func (as *AddressSpace) ReclaimCleanFilePages(file *File, maxPages int) ([]uint64, FlushRange, error) {
	var victims []uint64
	for _, v := range as.vmas.all() {
		if v.File != file || v.Kind != FileShared {
			continue
		}
		as.PT.VisitRange(v.Start, v.End, func(tr pagetable.Translation) {
			if len(victims) >= maxPages {
				return
			}
			if tr.Flags.Has(pagetable.Dirty) {
				return // dirty pages need writeback first
			}
			victims = append(victims, tr.VA)
		})
	}
	if len(victims) == 0 {
		return nil, FlushRange{}, nil
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
	for _, va := range victims {
		if _, err := as.PT.Unmap(va); err != nil {
			return nil, FlushRange{}, err
		}
	}
	fr := FlushRange{
		Start: victims[0], End: victims[len(victims)-1] + pagetable.PageSize4K,
		Stride: pagetable.Size4K, Pages: len(victims),
	}
	return victims, fr, nil
}
