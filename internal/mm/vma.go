// Package mm implements the simulated kernel's memory-management layer:
// address spaces (mm_struct), virtual memory areas, a page cache for
// memory-mapped files, demand faulting with copy-on-write and shared-file
// dirty tracking, and the TLB-generation bookkeeping that Linux's flush
// logic (arch/x86/mm/tlb.c) relies on.
//
// The package is mechanism-only: its functions mutate page tables and
// bookkeeping and report what happened (pages populated, pages copied,
// flush ranges); the kernel and shootdown layers decide what those events
// cost and which TLBs must be invalidated.
package mm

import (
	"errors"
	"fmt"
	"sort"

	"shootdown/internal/pagetable"
)

// Prot is a VMA's access permissions.
type Prot uint8

const (
	// ProtRead allows loads.
	ProtRead Prot = 1 << iota
	// ProtWrite allows stores.
	ProtWrite
	// ProtExec allows instruction fetches.
	ProtExec
)

// Has reports whether all bits in want are set.
func (p Prot) Has(want Prot) bool { return p&want == want }

// String renders the protection in rwx form.
func (p Prot) String() string {
	b := []byte{'-', '-', '-'}
	if p.Has(ProtRead) {
		b[0] = 'r'
	}
	if p.Has(ProtWrite) {
		b[1] = 'w'
	}
	if p.Has(ProtExec) {
		b[2] = 'x'
	}
	return string(b)
}

// Kind classifies a mapping's backing.
type Kind uint8

const (
	// Anon is anonymous memory (demand-zero).
	Anon Kind = iota
	// FileShared maps the page cache directly; stores dirty the file.
	FileShared
	// FilePrivate maps the page cache copy-on-write.
	FilePrivate
)

// String names the mapping kind.
func (k Kind) String() string {
	switch k {
	case Anon:
		return "anon"
	case FileShared:
		return "file-shared"
	case FilePrivate:
		return "file-private"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// VMA is one contiguous virtual memory area of an address space.
type VMA struct {
	// Start and End delimit the area: [Start, End), page aligned.
	Start, End uint64
	// Prot is the current protection.
	Prot Prot
	// Kind is the backing class.
	Kind Kind
	// File backs FileShared/FilePrivate mappings.
	File *File
	// FileOff is the file offset corresponding to Start.
	FileOff uint64
	// HugePages marks an anonymous VMA backed by 2 MiB pages.
	HugePages bool
}

// Len returns the VMA length in bytes.
func (v *VMA) Len() uint64 { return v.End - v.Start }

// Contains reports whether va falls inside the VMA.
func (v *VMA) Contains(va uint64) bool { return va >= v.Start && va < v.End }

// fileOffsetOf maps va to its backing-file offset.
func (v *VMA) fileOffsetOf(va uint64) uint64 { return v.FileOff + (va - v.Start) }

// Errors reported by the mm layer.
var (
	// ErrNoVMA is a fault on an unmapped address (SIGSEGV).
	ErrNoVMA = errors.New("mm: no VMA covers address")
	// ErrProt is an access violating the VMA protection.
	ErrProt = errors.New("mm: protection violation")
	// ErrOverlap is a fixed-address map over an existing VMA.
	ErrOverlap = errors.New("mm: mapping overlaps existing VMA")
	// ErrBadRange is a misaligned or empty range.
	ErrBadRange = errors.New("mm: bad address range")
)

// vmaSet is a sorted collection of non-overlapping VMAs.
type vmaSet struct {
	vmas []*VMA // sorted by Start
}

// find returns the VMA containing va, or nil.
func (s *vmaSet) find(va uint64) *VMA {
	i := sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].End > va })
	if i < len(s.vmas) && s.vmas[i].Contains(va) {
		return s.vmas[i]
	}
	return nil
}

// overlaps reports whether [start,end) intersects any VMA.
func (s *vmaSet) overlaps(start, end uint64) bool {
	i := sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].End > start })
	return i < len(s.vmas) && s.vmas[i].Start < end
}

// insert adds a VMA, keeping order. The caller ensures no overlap.
func (s *vmaSet) insert(v *VMA) {
	i := sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].Start >= v.Start })
	s.vmas = append(s.vmas, nil)
	copy(s.vmas[i+1:], s.vmas[i:])
	s.vmas[i] = v
}

// removeRange deletes VMA coverage of [start,end), splitting VMAs that
// straddle the boundary. It returns the removed pieces.
func (s *vmaSet) removeRange(start, end uint64) []*VMA {
	var removed []*VMA
	var kept []*VMA
	for _, v := range s.vmas {
		switch {
		case v.End <= start || v.Start >= end:
			kept = append(kept, v)
		case v.Start >= start && v.End <= end:
			removed = append(removed, v)
		default:
			// Partial overlap: split.
			if v.Start < start {
				left := *v
				left.End = start
				kept = append(kept, &left)
			}
			if v.End > end {
				right := *v
				right.Start = end
				right.FileOff = v.fileOffsetOf(end)
				kept = append(kept, &right)
			}
			mid := *v
			if mid.Start < start {
				mid.FileOff = v.fileOffsetOf(start)
				mid.Start = start
			}
			if mid.End > end {
				mid.End = end
			}
			removed = append(removed, &mid)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Start < kept[j].Start })
	s.vmas = kept
	return removed
}

// all returns the VMAs in address order.
func (s *vmaSet) all() []*VMA { return s.vmas }

func pageAligned(x uint64) bool { return x&(pagetable.PageSize4K-1) == 0 }
