package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"shootdown/internal/sched"
)

// renderSuite renders the named experiments exactly as `tlbsim -exp all
// -quick -seed N` writes them to stdout, into one buffer.
func renderSuite(names []string, seed uint64) []byte {
	var buf bytes.Buffer
	opts := Options{Quick: true, Seed: seed}
	reg := Registry()
	for _, name := range names {
		for _, tab := range reg[name](opts) {
			tab.Write(&buf)
			fmt.Fprintln(&buf)
		}
	}
	return buf.Bytes()
}

// TestParallelOutputBitIdentical is the scheduler's acceptance contract:
// the rendered experiment suite is byte-identical at one worker and at
// eight, across several seeds. Scope comes from parallelCheckScope, which
// shrinks under `go test -race` (the full suite ×2 worker counts ×seeds
// is too slow at race-detector overhead; the reduced set still covers
// every fan-out shape: cells, nested seed averaging, probes, daemons).
func TestParallelOutputBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite comparison is slow; run without -short")
	}
	names, seeds := parallelCheckScope()
	for _, seed := range seeds {
		prev := sched.SetWorkers(1)
		serial := renderSuite(names, seed)
		sched.SetWorkers(8)
		parallel := renderSuite(names, seed)
		sched.SetWorkers(prev)
		if !bytes.Equal(serial, parallel) {
			sl := bytes.Split(serial, []byte("\n"))
			pl := bytes.Split(parallel, []byte("\n"))
			for i := 0; i < len(sl) && i < len(pl); i++ {
				if !bytes.Equal(sl[i], pl[i]) {
					t.Fatalf("seed %d: output diverges at line %d:\n  workers=1: %s\n  workers=8: %s",
						seed, i+1, sl[i], pl[i])
				}
			}
			t.Fatalf("seed %d: output lengths differ: %d vs %d bytes", seed, len(serial), len(parallel))
		}
	}
}
