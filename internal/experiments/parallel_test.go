package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"shootdown/internal/sched"
	"shootdown/internal/sim"
	"shootdown/internal/workload"
)

// renderSuite renders the named experiments exactly as `tlbsim -exp all
// -quick -seed N` writes them to stdout, into one buffer.
func renderSuite(names []string, seed uint64) []byte {
	var buf bytes.Buffer
	opts := Options{Quick: true, Seed: seed}
	reg := Registry()
	for _, name := range names {
		for _, tab := range reg[name](opts) {
			tab.Write(&buf)
			fmt.Fprintln(&buf)
		}
	}
	return buf.Bytes()
}

// TestParallelOutputBitIdentical is the scheduler's and the event
// engine's joint acceptance contract: the rendered experiment suite is
// byte-identical at one worker and at eight, under the timer wheel and
// under the reference binary heap, across several seeds. Scope comes
// from parallelCheckScope, which shrinks under `go test -race` (the full
// suite ×4 variants ×seeds is too slow at race-detector overhead; the
// reduced set still covers every fan-out shape: cells, nested seed
// averaging, probes, daemons).
func TestParallelOutputBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite comparison is slow; run without -short")
	}
	names, seeds := parallelCheckScope()
	render := func(kind sim.EngineKind, workers int, seed uint64) []byte {
		// The engine-kind setter's pool-idle precondition holds: renders
		// run one at a time, and each drains its fan-out before returning.
		restoreKind := workload.SetEngineKind(kind)
		defer restoreKind()
		prev := sched.SetWorkers(workers)
		defer sched.SetWorkers(prev)
		return renderSuite(names, seed)
	}
	for _, seed := range seeds {
		ref := render(sim.EngineWheel, 1, seed)
		for _, variant := range []struct {
			name    string
			kind    sim.EngineKind
			workers int
		}{
			{"wheel/workers=8", sim.EngineWheel, 8},
			{"heap/workers=1", sim.EngineHeap, 1},
			{"heap/workers=8", sim.EngineHeap, 8},
		} {
			got := render(variant.kind, variant.workers, seed)
			if bytes.Equal(ref, got) {
				continue
			}
			rl := bytes.Split(ref, []byte("\n"))
			gl := bytes.Split(got, []byte("\n"))
			for i := 0; i < len(rl) && i < len(gl); i++ {
				if !bytes.Equal(rl[i], gl[i]) {
					t.Fatalf("seed %d: %s diverges from wheel/workers=1 at line %d:\n  ref: %s\n  got: %s",
						seed, variant.name, i+1, rl[i], gl[i])
				}
			}
			t.Fatalf("seed %d: %s output length differs: %d vs %d bytes",
				seed, variant.name, len(ref), len(got))
		}
	}
}
