//go:build !race

package experiments

// parallelCheckScope returns the experiments and seeds the determinism
// cross-check covers. Without the race detector the full registry runs
// at three seeds — the same sweep `tlbsim -exp all -quick` performs.
func parallelCheckScope() (names []string, seeds []uint64) {
	return Names(), []uint64{1, 42, 7919}
}
