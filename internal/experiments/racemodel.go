package experiments

import (
	"fmt"
	"sync"

	"shootdown/internal/race"
	"shootdown/internal/report"
	"shootdown/internal/workload"
)

// RunRace executes the named experiment with the happens-before race
// detector (internal/race) attached to every machine the experiment boots,
// returning the merged race summary alongside the tables. The detector is
// purely observational, so the tables are identical to an unchecked run.
func RunRace(name string, o Options) ([]*report.Table, *race.Summary, error) {
	runner, ok := Registry()[name]
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	// Install the fault schedule before any world boots; the pool is idle
	// here, which is SetFaultSpec's parallel-safety precondition.
	if !o.Faults.Zero() || o.Faults.NoRetry {
		restore := workload.SetFaultSpec(o.Faults)
		defer restore()
	}
	// Worlds boot concurrently under the parallel scheduler; guard the
	// shared slice. Merge sums order-independent counters, so the summary
	// stays deterministic at any worker count.
	var mu sync.Mutex
	var detectors []*race.Detector
	restore := workload.SetBootHook(func(w *workload.World) {
		d := race.New(w.Eng)
		w.K.EnableRace(d)
		// The flusher was built before the hook ran; re-wire its own sync
		// objects (the SerializedIPIs mutex) to the detector.
		w.F.EnableRace()
		mu.Lock()
		detectors = append(detectors, d)
		mu.Unlock()
	})
	defer restore()
	tables := runner(o)
	return tables, race.Merge(detectors), nil
}
