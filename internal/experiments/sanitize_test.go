package experiments

import (
	"testing"
)

// TestSanitizedQuickSuite runs every registered experiment under the
// shadow-oracle checker: the seed experiment suite must be coherent — zero
// stale translations, no unacked IPIs, no lock inversions. This is the
// in-tree version of the CI gate `tlbcheck -quick`.
func TestSanitizedQuickSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("sanitized suite is not short")
	}
	var totalHits, totalWindows uint64
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tables, sum, err := Run(name, Options{Quick: true, Seed: 1, Sanitize: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("experiment produced no tables")
			}
			if sum == nil {
				t.Fatal("no summary despite Sanitize")
			}
			// table4 is a bare-TLB fracture study: no kernel is booted, so
			// there is no machine to check.
			if sum.Worlds == 0 && name != "table4" {
				t.Fatal("sanitizer attached to no machines")
			}
			if !sum.OK() {
				t.Fatalf("coherence violations:\n%s", sum.Report())
			}
			totalHits += sum.Stats.TLBHits
			totalWindows += sum.Stats.ObligationsOpened
		})
	}
	// The suite as a whole must exercise the oracle: validated hits and
	// opened-and-closed flush windows. (Individual micro figures flush the
	// entries they fill before re-touching, so zero hits there is normal.)
	if totalHits == 0 || totalWindows == 0 {
		t.Fatalf("suite exercised no oracle traffic: hits=%d windows=%d", totalHits, totalWindows)
	}
}

// TestSanitizeOffReturnsNilSummary: the flag gates the checker entirely.
func TestSanitizeOffReturnsNilSummary(t *testing.T) {
	tables, sum, err := Run("fig5", Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sum != nil {
		t.Fatal("summary returned without Sanitize")
	}
	if len(tables) == 0 {
		t.Fatal("no tables")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, _, err := Run("nope", Options{}); err == nil {
		t.Fatal("unknown experiment not rejected")
	}
}
