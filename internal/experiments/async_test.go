package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestAsyncSweepContent checks the ablation's semantics: the async tier
// must reduce initiator-side cycles on the heavy-shootdown microbench
// cells, every fault-sweep digest must match the synchronous fault-free
// baseline, the drop schedule must drive the watchdog's rekick path,
// and no batch may be left open at quiesce.
func TestAsyncSweepContent(t *testing.T) {
	tabs := AsyncSweep(Options{Quick: true, Seed: 1})
	if len(tabs) != 3 {
		t.Fatalf("tables = %d, want micro+sysbench+faults", len(tabs))
	}
	micro, faults := tabs[0], tabs[2]

	// Micro table: 2 configs x 2 PTE counts; async rows carry the
	// reduction vs the sync cell, negative on every placement.
	if len(micro.Rows) != 4 {
		t.Fatalf("micro rows = %d, want 4", len(micro.Rows))
	}
	for _, row := range micro.Rows {
		if !strings.Contains(row[0], "async") {
			continue
		}
		for _, cell := range row[2:] {
			if !strings.Contains(cell, "(-") {
				t.Errorf("async cell %q (config %s, %s PTEs) shows no initiator reduction", cell, row[0], row[1])
			}
		}
	}

	// Fault table: faults scenario digest match-sync posts ... open-batches.
	num := func(row []string, col int) uint64 {
		t.Helper()
		v, err := strconv.ParseUint(row[col], 10, 64)
		if err != nil {
			t.Fatalf("cell %d (%q) not a count: %v", col, row[col], err)
		}
		return v
	}
	sawPosts, sawRekicks := false, false
	for _, row := range faults.Rows {
		if row[3] != "yes" {
			t.Errorf("%s/%s: async digest mismatch against the synchronous tier", row[0], row[1])
		}
		if last := row[len(row)-1]; last != "0" {
			t.Errorf("%s/%s: %s open batches at quiesce", row[0], row[1], last)
		}
		if num(row, 4) > 0 {
			sawPosts = true
		}
		if row[0] == "drop" && num(row, 11) > 0 {
			sawRekicks = true
		}
	}
	if !sawPosts {
		t.Error("no scenario posted to the fabric")
	}
	if !sawRekicks {
		t.Error("drop schedule never drove the watchdog's rekick path")
	}
}
