//go:build race

package experiments

// parallelCheckScope under `go test -race`: the race detector makes the
// full suite ×2 worker counts ×3 seeds prohibitively slow, so cover a
// representative subset — microbenchmark cells (fig9, table3), the
// fracture table (table4), the probe fan-outs (ablation) and the daemon
// storm with its nested seed averaging (daemons) — at two seeds. The
// race detector itself is what this build is for; full-registry byte
// comparison runs in the regular build.
func parallelCheckScope() (names []string, seeds []uint64) {
	return []string{"ablation", "daemons", "fig9", "table3", "table4"}, []uint64{1, 42}
}
