// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) and the page-fracturing study (§7): Figures 5-11 and
// Tables 3-4. Each experiment returns report.Tables whose rows mirror the
// paper's presentation: latencies per cumulative optimization and
// placement for the microbenchmarks, speedup series for Sysbench and
// Apache, and dTLB-miss counts for the fracturing study.
package experiments

import (
	"fmt"
	"sort"

	"shootdown/internal/core"
	"shootdown/internal/fault"
	"shootdown/internal/mach"
	"shootdown/internal/pagetable"
	"shootdown/internal/report"
	"shootdown/internal/sched"
	"shootdown/internal/stats"
	"shootdown/internal/workload"
)

// Options tune experiment scale.
type Options struct {
	// Quick shrinks iteration counts and sweep ranges for fast runs
	// (benchmarks and CI); the full setting matches the paper's sweeps.
	Quick bool
	// Seed derives all run seeds.
	Seed uint64
	// Sanitize attaches the shadow-oracle coherence checker (see
	// internal/sanitizer) to every machine the experiment boots. Only
	// honoured by Run; direct Runner calls stay unchecked.
	Sanitize bool
	// Faults is the fault schedule injected into every machine the
	// experiment boots (zero injects nothing). Honoured by Run and
	// RunRace, which install it as the package-wide workload spec for the
	// duration of the experiment; direct Runner calls stay unfaulted.
	Faults fault.Spec
}

// DefaultOptions returns the full-scale settings.
func DefaultOptions() Options { return Options{Seed: 1} }

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Runner produces the tables of one experiment.
type Runner func(Options) []*report.Table

// Registry maps experiment ids (fig5..fig11, table3, table4, ablation) to
// runners, for the CLI and benchmarks.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig5":     Fig5,
		"fig6":     Fig6,
		"fig7":     Fig7,
		"fig8":     Fig8,
		"table3":   Table3,
		"fig9":     Fig9,
		"fig10":    Fig10,
		"fig11":    Fig11,
		"table4":   Table4,
		"ablation": Ablations,
		// Beyond the paper: comparative baselines and §6/§7 ideas built
		// out (see EXPERIMENTS.md).
		"extensions": Extensions,
		"daemons":    Daemons,
		"faults":     FaultSweep,
		"async":      AsyncSweep,
		"scale":      ScaleSweep,
	}
}

// Names returns the registry keys in stable order.
func Names() []string {
	var names []string
	for n := range Registry() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// --- Figures 5-8: madvise microbenchmark ---

// Fig5 is safe mode, 1 PTE.
func Fig5(o Options) []*report.Table { return microFigure(o, workload.Safe, 1, "Figure 5") }

// Fig6 is safe mode, 10 PTEs.
func Fig6(o Options) []*report.Table { return microFigure(o, workload.Safe, 10, "Figure 6") }

// Fig7 is unsafe mode, 1 PTE (no in-context bar: there is no PTI).
func Fig7(o Options) []*report.Table { return microFigure(o, workload.Unsafe, 1, "Figure 7") }

// Fig8 is unsafe mode, 10 PTEs.
func Fig8(o Options) []*report.Table { return microFigure(o, workload.Unsafe, 10, "Figure 8") }

func microIterations(o Options) (iters, runs int) {
	if o.Quick {
		return 15, 2
	}
	return 60, 5
}

func microFigure(o Options, mode workload.Mode, ptes int, title string) []*report.Table {
	iters, runs := microIterations(o)
	configs := core.CumulativeConfigs(mode == workload.Safe)

	mk := func(side string) *report.Table {
		return &report.Table{
			Title: fmt.Sprintf("%s (%s mode, flush %d PTE%s) — %s cycles",
				title, mode, ptes, plural(ptes), side),
			Header: append([]string{"config"}, placementCols()...),
		}
	}
	initTab, respTab := mk("initiator"), mk("responder")

	// Every (config, placement) cell is an independent simulation; fan them
	// all out and assemble rows from the index-ordered results, so the
	// rendered table is byte-identical at any worker count.
	placements := mach.Placements()
	results := sched.Collect(len(configs)*len(placements), func(i int) workload.MicroResult {
		cc, pl := configs[i/len(placements)], placements[i%len(placements)]
		return workload.RunMicro(workload.MicroConfig{
			Mode: mode, Core: cc, Placement: pl, PTEs: ptes,
			Iterations: iters, Warmup: 5, Runs: runs, Seed: o.seed(),
		})
	})
	type cell struct{ init, resp stats.Summary }
	base := map[mach.Placement]cell{}
	for ci, cc := range configs {
		initRow := []any{cc.String()}
		respRow := []any{cc.String()}
		for pi, pl := range placements {
			r := results[ci*len(placements)+pi]
			if ci == 0 {
				base[pl] = cell{r.Initiator, r.Responder}
			}
			initRow = append(initRow, fmtLatency(r.Initiator, base[pl].init))
			respRow = append(respRow, fmtLatency(r.Responder, base[pl].resp))
		}
		initTab.Rows = append(initTab.Rows, toStrings(initRow))
		respTab.Rows = append(respTab.Rows, toStrings(respRow))
	}
	note := fmt.Sprintf("%d timed iterations x %d runs; cells are cycles (mean ± std across runs) and reduction vs baseline", iters, runs)
	initTab.AddNote("%s", note)
	respTab.AddNote("%s", note)
	return []*report.Table{initTab, respTab}
}

func placementCols() []string {
	var out []string
	for _, p := range mach.Placements() {
		out = append(out, p.String())
	}
	return out
}

func fmtLatency(s, base stats.Summary) string {
	red := stats.Reduction(base.Mean, s.Mean)
	return fmt.Sprintf("%s (-%s)", s.String(), report.Pct(red))
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

func toStrings(cells []any) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = fmt.Sprint(c)
	}
	return out
}

// --- Table 3: overall latency reduction, cross socket ---

// Table3 reports the [initiator / responder] latency reduction on
// different sockets after applying all four §3 techniques.
func Table3(o Options) []*report.Table {
	iters, runs := microIterations(o)
	tab := &report.Table{
		Title:  "Table 3 — [initiator / responder] latency reduction, cross socket, all four techniques",
		Header: []string{"PTEs", "safe mode", "unsafe mode"},
	}
	paperVals := map[string][2]string{
		"1":  {"39% / 13%", "39% / 18%"},
		"10": {"58% / 22%", "54% / 14%"},
	}
	// Flatten (PTE count × mode × baseline/all-techniques) into one fan-out:
	// index i/4 picks the PTE row, (i/2)%2 the mode, i%2 base vs all.
	ptesList := []int{1, 10}
	modes := []workload.Mode{workload.Safe, workload.Unsafe}
	results := sched.Collect(len(ptesList)*len(modes)*2, func(i int) workload.MicroResult {
		mode := modes[(i/2)%len(modes)]
		configs := core.CumulativeConfigs(mode == workload.Safe)
		cc := configs[0]
		if i%2 == 1 {
			cc = configs[len(configs)-1]
		}
		return workload.RunMicro(workload.MicroConfig{
			Mode: mode, Core: cc, Placement: mach.PlaceCrossSocket,
			PTEs: ptesList[i/4], Iterations: iters, Warmup: 5, Runs: runs, Seed: o.seed(),
		})
	})
	for pi, ptes := range ptesList {
		row := []string{fmt.Sprint(ptes)}
		for mi := range modes {
			base := results[(pi*len(modes)+mi)*2]
			all := results[(pi*len(modes)+mi)*2+1]
			row = append(row, fmt.Sprintf("%s / %s",
				report.Pct(stats.Reduction(base.Initiator.Mean, all.Initiator.Mean)),
				report.Pct(stats.Reduction(base.Responder.Mean, all.Responder.Mean))))
		}
		tab.Rows = append(tab.Rows, row)
		pv := paperVals[fmt.Sprint(ptes)]
		tab.AddNote("paper (row %d PTEs): safe %s, unsafe %s", ptes, pv[0], pv[1])
	}
	return []*report.Table{tab}
}

// --- Figure 9: CoW microbenchmark ---

// Fig9 measures the visible time of a write that triggers a CoW fault:
// baseline, all §3 optimizations, then +CoW-avoidance.
func Fig9(o Options) []*report.Table {
	pages, runs := 64, 5
	if o.Quick {
		pages, runs = 24, 2
	}
	tab := &report.Table{
		Title:  "Figure 9 — CoW write-fault latency (cycles)",
		Header: []string{"mode", "baseline", "all (§3)", "all+cow", "cow saving"},
	}
	modes := []workload.Mode{workload.Safe, workload.Unsafe}
	cfgsFor := func(mode workload.Mode) [3]core.Config {
		allGeneral := core.AllGeneral()
		if mode == workload.Unsafe {
			allGeneral.InContextFlush = false
		}
		withCow := allGeneral
		withCow.AvoidCoWFlush = true
		return [3]core.Config{core.Baseline(), allGeneral, withCow}
	}
	// Six independent cells (mode × {baseline, all, all+cow}); fan out.
	results := sched.Collect(len(modes)*3, func(i int) stats.Summary {
		mode := modes[i/3]
		return workload.RunCoW(workload.CoWConfig{
			Mode: mode, Core: cfgsFor(mode)[i%3], Pages: pages, Runs: runs, Seed: o.seed(),
		})
	})
	for mi, mode := range modes {
		base, all, cow := results[mi*3], results[mi*3+1], results[mi*3+2]
		tab.AddRow(mode.String(), base.String(), all.String(), cow.String(),
			fmt.Sprintf("%.0f cycles (%s)", all.Mean-cow.Mean, report.Pct(stats.Reduction(all.Mean, cow.Mean))))
	}
	tab.AddNote("paper: avoiding the CoW flush saves ~130 cycles, about 3%% (safe) and 5%% (unsafe)")
	return []*report.Table{tab}
}

// --- Figure 10: Sysbench ---

// Fig10 sweeps worker threads for the Sysbench-style random-write +
// fdatasync workload, reporting speedup over baseline as optimizations
// accumulate (including userspace-safe batching).
func Fig10(o Options) []*report.Table {
	threads := []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 20, 24, 28}
	syncs := 6
	if o.Quick {
		threads = []int{1, 2, 4, 8, 14, 28}
		syncs = 4
	}
	var tabs []*report.Table
	for _, mode := range []workload.Mode{workload.Safe, workload.Unsafe} {
		configs := sysbenchConfigs(mode)
		tab := &report.Table{
			Title:  fmt.Sprintf("Figure 10 — Sysbench random write speedup (%s mode)", mode),
			Header: append([]string{"threads"}, configNames(configs)...),
		}
		// One job per (thread count, config) cell, reassembled row-major.
		cells := sched.Collect(len(threads)*len(configs), func(i int) workload.SysbenchResult {
			return runSysbenchAveraged(workload.SysbenchConfig{
				Mode: mode, Core: configs[i%len(configs)], Threads: threads[i/len(configs)],
				HotPages: 2048, WritesPerSync: 64, Syncs: syncs,
				ComputePerWrite: 8000, Seed: o.seed(),
			}, o)
		})
		for ti, t := range threads {
			row := []string{fmt.Sprint(t)}
			var baseMakespan uint64
			for ci := range configs {
				r := cells[ti*len(configs)+ci]
				if ci == 0 {
					baseMakespan = r.Makespan
					row = append(row, report.Cycles(float64(r.Makespan)))
					continue
				}
				row = append(row, report.Speedup(stats.Speedup(float64(baseMakespan), float64(r.Makespan))))
			}
			tab.Rows = append(tab.Rows, row)
		}
		tab.AddNote("first column under 'baseline' is absolute makespan cycles; other cells are speedup vs baseline")
		tabs = append(tabs, tab)
	}
	return tabs
}

func sysbenchConfigs(mode workload.Mode) []core.Config {
	configs := core.CumulativeConfigs(mode == workload.Safe)
	last := configs[len(configs)-1]
	last.UserspaceBatching = true
	return append(configs, last)
}

func configNames(configs []core.Config) []string {
	out := make([]string, len(configs))
	for i, c := range configs {
		out[i] = c.String()
	}
	return out
}

// --- Figure 11: Apache ---

// Fig11 sweeps server cores for the Apache-style mmap/send/munmap
// workload, reporting speedup over baseline per cumulative optimization.
func Fig11(o Options) []*report.Table {
	cores := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	reqs := 80
	if o.Quick {
		cores = []int{1, 2, 4, 8, 11}
		reqs = 40
	}
	var tabs []*report.Table
	for _, mode := range []workload.Mode{workload.Safe, workload.Unsafe} {
		configs := sysbenchConfigs(mode) // same cumulative list incl. batching
		tab := &report.Table{
			Title:  fmt.Sprintf("Figure 11 — Apache throughput speedup (%s mode)", mode),
			Header: append([]string{"cores", "baseline req/s"}, configNames(configs)[1:]...),
		}
		// One job per (core count, config) cell, reassembled row-major.
		cells := sched.Collect(len(cores)*len(configs), func(i int) workload.ApacheResult {
			return workload.RunApache(workload.ApacheConfig{
				Mode: mode, Core: configs[i%len(configs)], Cores: cores[i/len(configs)],
				RequestsPerCore: reqs,
				FilePages:       3, ParseCycles: 52000, SendCycles: 40000,
				OfferedInterArrival: 13333, Seed: o.seed(),
			})
		})
		for coi, c := range cores {
			row := []string{fmt.Sprint(c)}
			var baseMakespan uint64
			for ci := range configs {
				r := cells[coi*len(configs)+ci]
				if ci == 0 {
					baseMakespan = r.Makespan
					row = append(row, fmt.Sprintf("%.0f", r.RequestsPerSecond(2_000_000_000)))
					continue
				}
				row = append(row, report.Speedup(stats.Speedup(float64(baseMakespan), float64(r.Makespan))))
			}
			tab.Rows = append(tab.Rows, row)
		}
		tab.AddNote("offered load capped at 150k req/s (13333-cycle global inter-arrival at 2 GHz), as with wrk in the paper")
		tabs = append(tabs, tab)
	}
	return tabs
}

// --- Table 4: page fracturing ---

// Table4 counts dTLB misses after full vs selective flushes, bare-metal
// and under nested paging for every guest/host page-size combination.
func Table4(o Options) []*report.Table {
	iters := 400
	if o.Quick {
		iters = 100
	}
	tab := &report.Table{
		Title:  "Table 4 — dTLB misses after a full or selective page flush",
		Header: []string{"setup", "host pg", "guest pg", "full flush", "selective flush", "sel/full"},
	}
	type combo struct {
		vm    bool
		guest pagetable.Size
		host  pagetable.Size
	}
	combos := []combo{
		{true, pagetable.Size4K, pagetable.Size4K},
		{true, pagetable.Size2M, pagetable.Size4K},
		{true, pagetable.Size4K, pagetable.Size2M},
		{true, pagetable.Size2M, pagetable.Size2M},
		{false, pagetable.Size4K, 0},
		{false, pagetable.Size2M, 0},
	}
	// Twelve independent cells: combo i/2, full flush on even indices.
	results := sched.Collect(len(combos)*2, func(i int) workload.FractureResult {
		c := combos[i/2]
		r, err := workload.RunFracture(workload.FractureConfig{
			VM: c.vm, GuestSize: c.guest, HostSize: c.host,
			BufferBytes: 4 << 20, Iterations: iters, FullFlush: i%2 == 0,
		})
		if err != nil {
			panic(err)
		}
		return r
	})
	for i, c := range combos {
		fr, sr := results[i*2], results[i*2+1]
		setup := "VM"
		host := c.host.String()
		if !c.vm {
			setup, host = "bare-metal", "-"
		}
		ratio := float64(sr.Misses) / float64(fr.Misses)
		tab.AddRow(setup, host, c.guest.String(), report.Cycles(float64(fr.Misses)),
			report.Cycles(float64(sr.Misses)), fmt.Sprintf("%.3f", ratio))
	}
	tab.AddNote("guest 2M on host 4K: selective ≈ full — the fracture rule escalates every selective flush (paper: 102M vs 103M)")
	tab.AddNote("all other rows: selective flushes preserve the TLB (paper: 93K/2.9K/2.5K/789/537 vs millions)")
	return []*report.Table{tab}
}

// runSysbenchAveraged runs the Sysbench workload over several seeds and
// returns a result with the mean makespan, damping straggler noise (the
// paper likewise averages five runs).
func runSysbenchAveraged(cfg workload.SysbenchConfig, o Options) workload.SysbenchResult {
	seeds := 3
	if o.Quick {
		seeds = 1
	}
	// Seeds fan out too; when nested under a cell-level Map this degrades
	// to an inline loop once the pool's tokens are taken.
	runs := sched.Collect(seeds, func(s int) workload.SysbenchResult {
		c := cfg
		c.Seed = cfg.Seed + uint64(s)*7919
		return workload.RunSysbench(c)
	})
	var total uint64
	var ops int
	for _, r := range runs {
		total += r.Makespan
		ops = r.Ops
	}
	return workload.SysbenchResult{Makespan: total / uint64(seeds), Ops: ops}
}
