package experiments

import (
	"fmt"

	"shootdown/internal/core"
	"shootdown/internal/report"
	"shootdown/internal/sched"
	"shootdown/internal/stats"
	"shootdown/internal/workload"
)

// Extensions runs the beyond-the-paper experiments: the FreeBSD-style
// serialized-shootdown baseline (§3.3), the LATR-style lazy comparator
// with its §2.3.2 safety hazard made visible, the §6 message-carrying-IPI
// hardware model, and the §7 paravirtual fracture hint.
func Extensions(o Options) []*report.Table {
	return []*report.Table{
		extSerialized(o),
		extLazy(o),
		extHWMessage(o),
		extParavirt(o),
		extPCID(o),
	}
}

func extSerialized(o Options) *report.Table {
	tab := &report.Table{
		Title:  "Extension — FreeBSD-style smp_ipi_mtx vs Linux concurrent shootdowns",
		Header: []string{"concurrent initiators", "Linux (cycles)", "serialized (cycles)", "slowdown"},
	}
	iters := 15
	if o.Quick {
		iters = 8
	}
	inits := []int{2, 4, 8}
	// Cell i: initiator count i/2, serialized on odd indices.
	results := sched.Collect(len(inits)*2, func(i int) uint64 {
		return workload.RunContention(workload.ContentionConfig{
			Mode: workload.Safe, Core: core.Config{SerializedIPIs: i%2 == 1},
			Initiators: inits[i/2], Iterations: iters, Seed: o.seed(),
		})
	})
	for i, n := range inits {
		linux, bsd := results[i*2], results[i*2+1]
		tab.AddRow(n, report.Cycles(float64(linux)), report.Cycles(float64(bsd)),
			report.Speedup(stats.Speedup(float64(bsd), float64(linux))))
	}
	tab.AddNote("FreeBSD's global mutex allows one shootdown in flight machine-wide (paper §3.3); Linux's protocol runs them concurrently")
	return tab
}

func extLazy(o Options) *report.Table {
	tab := &report.Table{
		Title:  "Extension — LATR-style lazy shootdowns: faster initiator, broken semantics",
		Header: []string{"protocol", "madvise cycles", "remote flushes deferred", "stale window observable"},
	}
	probes := sched.Collect(2, func(i int) workload.LazyProbeResult {
		cfg := core.Baseline()
		if i == 1 {
			cfg = core.Config{LazyRemote: true}
		}
		return workload.RunLazyProbe(workload.Safe, cfg, o.seed())
	})
	sync, lazy := probes[0], probes[1]
	tab.AddRow("synchronous (paper/Linux)", report.Cycles(float64(sync.MadviseCycles)), sync.Deferred, sync.StaleWindow)
	tab.AddRow("lazy (LATR-style)", report.Cycles(float64(lazy.MadviseCycles)), lazy.Deferred, lazy.StaleWindow)
	tab.AddNote("the lazy protocol lets a thread keep using an unmapped page's stale translation after the syscall returned (§2.3.2's correctness criticism)")
	return tab
}

func extHWMessage(o Options) *report.Table {
	tab := &report.Table{
		Title:  "Extension — §6 'attach a message to the IPI' hardware model",
		Header: []string{"shootdown data path", "initiator cycles", "cacheline transfers"},
	}
	probes := sched.Collect(2, func(i int) workload.HWMessageProbeResult {
		return workload.RunHWMessageProbe(i == 1, o.seed())
	})
	sw, hw := probes[0], probes[1]
	tab.AddRow("shared memory (CFD/CSQ/info)", report.Cycles(float64(sw.InitCycles)), sw.Transfers)
	tab.AddRow("carried by the IPI", report.Cycles(float64(hw.InitCycles)), hw.Transfers)
	tab.AddNote("the paper: 'if it were possible to attach a message with a TLB shootdown ... we would have been able to avoid sending additional data through shared memory'")
	return tab
}

func extParavirt(o Options) *report.Table {
	tab := &report.Table{
		Title:  "Extension — §7 paravirtual page-fracturing hint",
		Header: []string{"pages flushed", "no hint (cycles)", "with hint (cycles)", "speedup", "hinted full flushes"},
	}
	pageCounts := []int{4, 8, 16, 32}
	results := sched.Collect(len(pageCounts)*2, func(i int) workload.ParavirtProbeResult {
		return workload.RunParavirtProbe(i%2 == 1, pageCounts[i/2], o.seed())
	})
	for i, pages := range pageCounts {
		no, yes := results[i*2], results[i*2+1]
		tab.AddRow(pages, report.Cycles(float64(no.MadviseCycles)), report.Cycles(float64(yes.MadviseCycles)),
			report.Speedup(stats.Speedup(float64(no.MadviseCycles), float64(yes.MadviseCycles))),
			fmt.Sprint(yes.FullFlushes))
	}
	tab.AddNote("a guest with fractured translations pays a full flush per INVLPG anyway; the hint collapses N escalations into one CR3 write")
	return tab
}

// Daemons runs the §2.1 flush-source workload: application threads under
// ksmd, khugepaged, kswapd and NUMA-balancer pressure, comparing the
// baseline protocol with the paper's optimizations.
func Daemons(o Options) []*report.Table {
	tab := &report.Table{
		Title:  "Daemons — §2.1 flush sources (KSM, compaction, reclaim, NUMA) under load",
		Header: []string{"config", "app makespan (cycles)", "speedup", "shootdowns", "collapses", "dedups", "reclaims", "numa hints+migrations"},
	}
	rounds := 60
	if o.Quick {
		rounds = 30
	}
	seeds := 3
	if o.Quick {
		seeds = 1
	}
	var baseMakespan uint64
	configs := []core.Config{core.Baseline(), core.AllGeneral(), core.All()}
	// One job per (config, seed); config i/seeds so a config's seed runs
	// stay adjacent and the per-config mean reduces over a contiguous span.
	cells := sched.Collect(len(configs)*seeds, func(i int) workload.DaemonStormResult {
		return workload.RunDaemonStorm(workload.DaemonStormConfig{
			Mode: workload.Safe, Core: configs[i/seeds], AppThreads: 4, Rounds: rounds,
			Seed: o.seed() + uint64(i%seeds)*7919,
		})
	})
	for i, cc := range configs {
		// Average the makespan over seeds to damp scheduling noise; the
		// daemon counters are identical across seeds (same nominations).
		var total uint64
		var r workload.DaemonStormResult
		for sdx := 0; sdx < seeds; sdx++ {
			r = cells[i*seeds+sdx]
			total += r.Makespan
		}
		mean := total / uint64(seeds)
		speed := "1.000x"
		if i == 0 {
			baseMakespan = mean
		} else {
			speed = report.Speedup(stats.Speedup(float64(baseMakespan), float64(mean)))
		}
		tab.AddRow(cc.String(), report.Cycles(float64(mean)), speed, r.Shootdowns,
			r.Khuge.Collapses, r.Ksm.Dedups, r.Kswap.Reclaims,
			fmt.Sprintf("%d+%d", r.Numa.Hints, r.Numa.Migrations))
	}
	tab.AddNote("khugepaged collapses free page tables, so those shootdowns never early-ack (§3.2)")
	tab.AddNote("daemon flushes initiate from kernel threads — a shootdown pattern the syscall benchmarks never produce")
	tab.AddNote("shootdown exposure here is small (~50 per run), so the speedup column mostly reflects daemon/app interference timing within a few percent; this table's value is the per-source flush inventory")
	return []*report.Table{tab}
}

func extPCID(o Options) *report.Table {
	tab := &report.Table{
		Title:  "Extension — PCID value at context switch (§2.1 background)",
		Header: []string{"TLB tagging", "ping-pong makespan (cycles)", "dTLB misses", "speedup"},
	}
	slices, pages := 20, 256
	if o.Quick {
		slices = 8
	}
	probes := sched.Collect(2, func(i int) workload.PCIDProbeResult {
		return workload.RunPCIDProbe(i == 1, slices, pages, o.seed())
	})
	with, without := probes[0], probes[1]
	tab.AddRow("no PCID (pre-Westmere)", report.Cycles(float64(without.Makespan)), without.TLBMisses, "1.000x")
	tab.AddRow("PCID", report.Cycles(float64(with.Makespan)), with.TLBMisses,
		report.Speedup(stats.Speedup(float64(without.Makespan), float64(with.Makespan))))
	tab.AddNote("with PCIDs a process's TLB entries survive its neighbour's time slice; without, every CR3 write flushes (§2.1)")
	return tab
}
