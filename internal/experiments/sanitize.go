package experiments

import (
	"fmt"
	"sync"

	"shootdown/internal/report"
	"shootdown/internal/sanitizer"
	"shootdown/internal/workload"
)

// Run executes the named experiment from the registry. When o.Sanitize is
// set, the shadow-oracle coherence checker is attached to every machine
// the experiment boots and the merged summary is returned alongside the
// tables; otherwise the summary is nil.
//
// The lazy-shootdown extension (core.Config.LazyRemote) is granted its
// designed staleness window: hits on CPUs with queued lazy work are legal
// for that machine (see sanitizer.Config.AllowLazyWindow).
func Run(name string, o Options) ([]*report.Table, *sanitizer.Summary, error) {
	runner, ok := Registry()[name]
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	// Install the fault schedule before any world boots; the pool is idle
	// here, which is SetFaultSpec's parallel-safety precondition.
	if !o.Faults.Zero() || o.Faults.NoRetry {
		restore := workload.SetFaultSpec(o.Faults)
		defer restore()
	}
	if !o.Sanitize {
		return runner(o), nil, nil
	}
	// Worlds boot concurrently under the parallel scheduler; the hook is
	// the one cross-world touch point, so the slice needs a lock. Merge is
	// an order-independent sum, so the summary stays deterministic.
	var mu sync.Mutex
	var checkers []*sanitizer.Checker
	restore := workload.SetBootHook(func(w *workload.World) {
		c := sanitizer.Attach(w.K, w.F, sanitizer.Config{
			AllowLazyWindow: w.F.Cfg.LazyRemote,
		})
		mu.Lock()
		checkers = append(checkers, c)
		mu.Unlock()
	})
	defer restore()
	tables := runner(o)
	return tables, sanitizer.Merge(checkers), nil
}
