package experiments

import (
	"fmt"

	"shootdown/internal/core"
	"shootdown/internal/mach"
	"shootdown/internal/report"
	"shootdown/internal/sched"
	"shootdown/internal/stats"
	"shootdown/internal/workload"
)

// Ablations probes the design decisions DESIGN.md calls out:
//
//   - each §3 optimization alone (not cumulative), isolating its
//     contribution;
//   - early acknowledgement with the freed-page-tables exception forced on
//     (munmap-heavy workload) to show the suppressed case;
//   - in-context flushing with and without the concurrent interaction.
func Ablations(o Options) []*report.Table {
	return []*report.Table{
		ablationSingles(o),
		ablationEarlyAckSuppression(o),
		ablationInContextInteraction(o),
	}
}

// ablationSingles measures each §3 technique in isolation against the
// baseline, cross socket, 10 PTEs, safe mode.
func ablationSingles(o Options) *report.Table {
	iters, runs := microIterations(o)
	tab := &report.Table{
		Title:  "Ablation — each technique alone (safe, 10 PTEs, cross socket)",
		Header: []string{"config", "initiator cycles", "reduction", "responder cycles", "reduction"},
	}
	singles := []core.Config{
		{},
		{ConcurrentFlush: true},
		{EarlyAck: true},
		{CachelineConsolidation: true},
		{InContextFlush: true},
	}
	results := sched.Collect(len(singles), func(i int) workload.MicroResult {
		return workload.RunMicro(workload.MicroConfig{
			Mode: workload.Safe, Core: singles[i], Placement: mach.PlaceCrossSocket,
			PTEs: 10, Iterations: iters, Warmup: 5, Runs: runs, Seed: o.seed(),
		})
	})
	base := results[0]
	for i, cc := range singles {
		r := results[i]
		tab.AddRow(cc.String(),
			r.Initiator.String(), report.Pct(stats.Reduction(base.Initiator.Mean, r.Initiator.Mean)),
			r.Responder.String(), report.Pct(stats.Reduction(base.Responder.Mean, r.Responder.Mean)))
	}
	return tab
}

// ablationEarlyAckSuppression compares madvise-triggered shootdowns (early
// ack allowed) with munmap-triggered ones (page tables freed, early ack
// suppressed) under the same config.
func ablationEarlyAckSuppression(o Options) *report.Table {
	tab := &report.Table{
		Title:  "Ablation — early-ack suppression when page tables are freed",
		Header: []string{"workload", "early acks", "late acks", "suppressions"},
	}
	for _, kind := range []string{"madvise", "munmap"} {
		earlyAcks, lateAcks, supp := runAckProbe(kind, o)
		tab.AddRow(kind, earlyAcks, lateAcks, supp)
	}
	tab.AddNote("munmap releases page tables, so the initiator instructs responders to ack late (§3.2)")
	return tab
}

func runAckProbe(kind string, o Options) (early, late, suppressed uint64) {
	cfg := core.Config{ConcurrentFlush: true, EarlyAck: true}
	r := workload.RunAckProbe(workload.AckProbeConfig{
		Mode: workload.Safe, Core: cfg, UseMunmap: kind == "munmap",
		Iterations: 20, Seed: o.seed(),
	})
	return r.EarlyAcks, r.LateAcks, r.Suppressed
}

// ablationInContextInteraction isolates the §3.4/§3.1 interaction: the
// initiator flushing user PTEs while waiting for the first ack.
func ablationInContextInteraction(o Options) *report.Table {
	iters, runs := microIterations(o)
	tab := &report.Table{
		Title:  "Ablation — in-context flushing with/without the concurrent interaction (safe, 10 PTEs)",
		Header: []string{"config", "initiator cycles", "user PTEs flushed while waiting"},
	}
	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"incontext only", core.Config{InContextFlush: true}},
		{"incontext+concurrent", core.Config{InContextFlush: true, ConcurrentFlush: true}},
	}
	for _, c := range cases {
		r, flushed := workload.RunMicroWithStats(workload.MicroConfig{
			Mode: workload.Safe, Core: c.cfg, Placement: mach.PlaceCrossSocket,
			PTEs: 10, Iterations: iters, Warmup: 5, Runs: runs, Seed: o.seed(),
		})
		tab.AddRow(c.name, r.Initiator.String(), fmt.Sprint(flushed))
	}
	tab.AddNote("without concurrent flushing the initiator has no ack-wait window, so no user PTEs are flushed eagerly")
	return tab
}
