package experiments

import (
	"fmt"

	"shootdown/internal/core"
	"shootdown/internal/fault"
	"shootdown/internal/mach"
	"shootdown/internal/report"
	"shootdown/internal/sched"
	"shootdown/internal/smp"
	"shootdown/internal/stats"
	"shootdown/internal/workload"
)

// asyncTierConfigs returns the sweep's two dispatch tiers: the paper's
// concurrent+early-ack synchronous protocol, and the same protocol with
// dispatch routed through the per-CPU invalidation rings instead of the
// CallMany spin-wait.
func asyncTierConfigs() (syncCfg, asyncCfg core.Config) {
	syncCfg = core.Config{ConcurrentFlush: true, EarlyAck: true}
	asyncCfg = syncCfg
	asyncCfg.AsyncShootdown = true
	return syncCfg, asyncCfg
}

// AsyncSweep ablates the queue-based asynchronous shootdown fabric
// (core.Config.AsyncShootdown, smp/fabric.go) against the synchronous
// concurrent+early-ack tier: the madvise microbenchmark isolates the
// initiator-side win (post-and-return vs spin-for-acks), the Sysbench
// sweep shows it across thread counts on the writeback-heavy workload,
// and the fault sweep proves the tier changes no final state while its
// ring counters expose coalescing, overflow collapse and the watchdog's
// rekick/degrade recovery under injected kick loss.
func AsyncSweep(o Options) []*report.Table {
	return []*report.Table{asyncMicroTable(o), asyncSysbenchTable(o), asyncFaultTable(o)}
}

func asyncMicroTable(o Options) *report.Table {
	iters, runs := microIterations(o)
	syncCfg, asyncCfg := asyncTierConfigs()
	configs := []core.Config{syncCfg, asyncCfg}
	ptes := []int{1, 10}
	placements := mach.Placements()
	tab := &report.Table{
		Title:  "Async fabric — madvise microbenchmark, initiator cycles (safe mode)",
		Header: append([]string{"config", "PTEs"}, placementCols()...),
	}
	// One job per (config, PTE count, placement) cell, reassembled
	// index-ordered so the table is byte-identical at any worker count.
	cells := sched.Collect(len(configs)*len(ptes)*len(placements), func(i int) workload.MicroResult {
		cc := configs[i/(len(ptes)*len(placements))]
		pt := ptes[(i/len(placements))%len(ptes)]
		pl := placements[i%len(placements)]
		return workload.RunMicro(workload.MicroConfig{
			Mode: workload.Safe, Core: cc, Placement: pl, PTEs: pt,
			Iterations: iters, Warmup: 5, Runs: runs, Seed: o.seed(),
		})
	})
	for ci, cc := range configs {
		for pi, pt := range ptes {
			row := []any{cc.String(), pt}
			for li := range placements {
				r := cells[(ci*len(ptes)+pi)*len(placements)+li]
				if ci == 0 {
					row = append(row, r.Initiator.String())
					continue
				}
				base := cells[pi*len(placements)+li]
				row = append(row, fmtLatency(r.Initiator, base.Initiator))
			}
			tab.Rows = append(tab.Rows, toStrings(row))
		}
	}
	tab.AddNote("sync rows are absolute initiator cycles (mean ± std); async rows add the reduction vs the sync tier at the same placement")
	tab.AddNote("the initiator's win is structural: it posts to per-CPU rings and returns instead of spinning for acks")
	return tab
}

func asyncSysbenchTable(o Options) *report.Table {
	threads := []int{1, 2, 4, 8, 14, 28}
	syncs := 6
	if o.Quick {
		threads = []int{1, 4, 14}
		syncs = 4
	}
	syncCfg, asyncCfg := asyncTierConfigs()
	configs := []core.Config{syncCfg, asyncCfg}
	tab := &report.Table{
		Title:  "Async fabric — Sysbench random write (safe mode)",
		Header: []string{"threads", "sync makespan", "async makespan", "async speedup"},
	}
	cells := sched.Collect(len(threads)*len(configs), func(i int) workload.SysbenchResult {
		return runSysbenchAveraged(workload.SysbenchConfig{
			Mode: workload.Safe, Core: configs[i%len(configs)], Threads: threads[i/len(configs)],
			HotPages: 2048, WritesPerSync: 64, Syncs: syncs,
			ComputePerWrite: 8000, Seed: o.seed(),
		}, o)
	})
	for ti, t := range threads {
		s, a := cells[ti*len(configs)], cells[ti*len(configs)+1]
		tab.AddRow(t, report.Cycles(float64(s.Makespan)), report.Cycles(float64(a.Makespan)),
			report.Speedup(stats.Speedup(float64(s.Makespan), float64(a.Makespan))))
	}
	tab.AddNote("the fdatasync writeback path coalesces its per-page flushes (mm.Coalesce) before flushing, so the fabric sees merged ranges")
	return tab
}

func asyncFaultTable(o Options) *report.Table {
	specNames := []string{"none", "light", "heavy", "drop"}
	scenarios := workload.Scenarios()
	syncAll := core.All()
	asyncAll := syncAll
	asyncAll.AsyncShootdown = true

	type cell struct {
		digest      string
		smp         smp.Stats
		outstanding int
	}
	run := func(cfg core.Config, spec fault.Spec, s workload.Scenario) cell {
		w := workload.NewFaultWorld(workload.Safe, cfg, o.seed(), spec)
		defer w.Close()
		spaces := s.Run(w)
		return cell{
			digest:      workload.StateDigest(spaces),
			smp:         w.K.SMP.Stats(),
			outstanding: w.K.SMP.OutstandingBatches(),
		}
	}
	// Cells 0..nScen-1 are the synchronous fault-free reference digests;
	// the rest is the async tier under every preset.
	nSpec, nScen := len(specNames), len(scenarios)
	cells := sched.Collect(nScen+nSpec*nScen, func(i int) cell {
		if i < nScen {
			return run(syncAll, fault.Spec{}, scenarios[i])
		}
		j := i - nScen
		spec, ok := fault.Preset(specNames[j/nScen])
		if !ok {
			panic(fmt.Sprintf("experiments: unknown fault preset %q", specNames[j/nScen]))
		}
		return run(asyncAll, spec, scenarios[j%nScen])
	})

	tab := &report.Table{
		Title:  "Async fabric — fault sweep, digests and ring counters (safe mode, all+async)",
		Header: []string{"faults", "scenario", "digest", "match-sync", "posts", "coalesced", "overflows", "kicks", "elided", "drains", "full-drains", "rekicks", "degrades", "open-batches"},
	}
	for si, specName := range specNames {
		for ci, s := range scenarios {
			c := cells[nScen+si*nScen+ci]
			base := cells[ci]
			match := "yes"
			if c.digest != base.digest {
				match = "NO"
			}
			ss := c.smp
			tab.AddRow(specName, s.Name, c.digest, match,
				ss.AsyncPosts, ss.AsyncCoalesced, ss.AsyncOverflows,
				ss.AsyncKicks, ss.AsyncKicksElided, ss.AsyncDrains, ss.AsyncFullDrains,
				ss.AsyncRekicks, ss.AsyncDegrades, c.outstanding)
		}
	}
	tab.AddNote("match-sync compares each digest against the synchronous all-optimizations tier, fault-free, same scenario and seed: the fabric must never change final memory state")
	tab.AddNote("open-batches must be 0 at quiesce: every posted batch completed (under drops, via the watchdog's rekick/degrade ladder)")
	return tab
}
