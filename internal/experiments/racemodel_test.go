package experiments

import (
	"testing"
)

// TestRaceModelQuickSuite runs every registered experiment under the
// happens-before checker: the shipped protocol must be race-free in every
// configuration the suite covers. This is the in-tree version of the CI
// gate `tlbcheck -race-model -quick`.
func TestRaceModelQuickSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("race-model suite is not short")
	}
	var totalAcquires, totalReads uint64
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tables, sum, err := RunRace(name, Options{Quick: true, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("experiment produced no tables")
			}
			// table4 is a bare-TLB fracture study: no kernel is booted, so
			// there is no machine to check.
			if sum.Worlds == 0 && name != "table4" {
				t.Fatal("detector attached to no machines")
			}
			if !sum.OK() {
				t.Fatalf("data races in the modeled protocol:\n%s", sum.Report())
			}
			totalAcquires += sum.Stats.Acquires
			totalReads += sum.Stats.Reads
		})
	}
	// The suite as a whole must exercise the instrumentation: sync edges
	// and checked plain-variable traffic.
	if totalAcquires == 0 || totalReads == 0 {
		t.Fatalf("suite exercised no HB traffic: acquires=%d reads=%d", totalAcquires, totalReads)
	}
}

// TestRunRaceUnknownExperiment mirrors Run's registry validation.
func TestRunRaceUnknownExperiment(t *testing.T) {
	if _, _, err := RunRace("nope", Options{}); err == nil {
		t.Fatal("unknown experiment not rejected")
	}
}
