package experiments

import (
	"fmt"

	"shootdown/internal/core"
	"shootdown/internal/mach"
	"shootdown/internal/report"
	"shootdown/internal/sched"
	"shootdown/internal/workload"
)

// ScaleSweep runs the many-core connection-server workload across machine
// widths (the paper's 56-CPU testbed, then 256 and 512-CPU scale-out
// topologies) under both shootdown dispatch tiers. The paper's argument —
// software overhead, not hardware broadcast cost, dominates shootdowns —
// is width-sensitive: at 512 CPUs a full-width storm crosses 32 x2APIC
// clusters and the ack wait touches hundreds of cache lines, which is
// exactly where the cluster-fanned ICR writes and the per-cluster ack
// aggregation (smp.ClusterAckStores) start to matter. Each cell is an
// independent simulation with an explicit topology, so the sweep runs
// under the parallel scheduler without touching the package-wide
// topology override.
func ScaleSweep(o Options) []*report.Table {
	cpus := []int{56, 256, 512}
	syncCfg, asyncCfg := asyncTierConfigs()
	tiers := []struct {
		name string
		cfg  core.Config
	}{{"sync", syncCfg}, {"async", asyncCfg}}

	srv := func(topo mach.Topology, cc core.Config) workload.ServerConfig {
		cfg := workload.DefaultServerConfig()
		cfg.Core = cc
		cfg.Topo = topo
		cfg.Seed = o.seed()
		if o.Quick {
			// CI shape: a fixed recycler set keeps the storm count
			// independent of width (every CPU still serves, so each storm
			// is machine-wide), bounding the 512-CPU cell well under a
			// second instead of the O(width^2) full shape.
			cfg.TasksPerCPU = 1
			cfg.Connections = 1 << 12
			cfg.EventsPerTask = 6
			cfg.RecycleEvery = 3
			cfg.RemapEvery = 5
			cfg.Recyclers = 8
		} else {
			cfg.EventsPerTask = 12
			cfg.RecycleEvery = 4
			cfg.RemapEvery = 9
			cfg.Recyclers = 32
		}
		return cfg
	}

	tab := &report.Table{
		Title: "Scale-out — connection server across machine widths",
		Header: []string{"cpus", "topology", "tier", "makespan", "events",
			"ev/Mcycle", "shootdowns", "ICR writes", "cluster acks"},
	}
	// One job per (width, tier) cell, reassembled index-ordered so the
	// table is byte-identical at any worker count.
	cells := sched.Collect(len(cpus)*len(tiers), func(i int) workload.ServerResult {
		topo, err := mach.ScaleTopology(cpus[i/len(tiers)])
		if err != nil {
			panic(err)
		}
		return workload.RunServer(srv(topo, tiers[i%len(tiers)].cfg))
	})
	for ci, n := range cpus {
		topo, _ := mach.ScaleTopology(n)
		for ti, tier := range tiers {
			r := cells[ci*len(tiers)+ti]
			tab.AddRow(fmt.Sprint(n), topo.Spec(), tier.name,
				report.Cycles(float64(r.Makespan)), fmt.Sprint(r.Events),
				fmt.Sprintf("%.1f", r.EventsPerMCycle()),
				fmt.Sprint(r.Shootdowns), fmt.Sprint(r.ICRWrites),
				fmt.Sprint(r.ClusterAckStores))
		}
	}
	tab.AddNote("each storm is machine-wide: every CPU serves one shared address space, so a recycle shoots down the full active mask")
	tab.AddNote("cluster acks engage above 128 CPUs: responder acks are aggregated onto shared per-(initiator, x2APIC-cluster) lines")
	tab.AddNote("connections are pure data (a million in the full run): load scales with serving tasks and recycles, not connection count")
	return []*report.Table{tab}
}
