package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quick() Options { return Options{Quick: true, Seed: 1} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablation", "async", "daemons", "extensions", "faults", "fig10", "fig11", "fig5", "fig6", "fig7", "fig8", "fig9", "scale", "table3", "table4"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	tabs := Fig5(quick())
	if len(tabs) != 2 {
		t.Fatalf("fig5 tables = %d, want initiator+responder", len(tabs))
	}
	init := tabs[0]
	if len(init.Rows) != 5 { // baseline + 4 cumulative configs (safe mode)
		t.Fatalf("fig5 initiator rows = %d, want 5", len(init.Rows))
	}
	if len(init.Header) != 4 { // config + 3 placements
		t.Fatalf("fig5 header = %v", init.Header)
	}
	if init.Rows[0][0] != "baseline" {
		t.Fatalf("first row = %v", init.Rows[0])
	}
	// The fully-optimized initiator must show a latency reduction.
	last := init.Rows[len(init.Rows)-1]
	if !strings.Contains(last[3], "-") || strings.Contains(last[3], "(-0%)") {
		t.Fatalf("no cross-socket reduction in final config: %q", last[3])
	}
}

func TestFig7OmitsInContext(t *testing.T) {
	tabs := Fig7(quick())
	for _, row := range tabs[0].Rows {
		if strings.Contains(row[0], "incontext") {
			t.Fatalf("unsafe figure contains in-context bar: %v", row)
		}
	}
	if len(tabs[0].Rows) != 4 {
		t.Fatalf("fig7 rows = %d, want 4", len(tabs[0].Rows))
	}
}

func TestTable3Shape(t *testing.T) {
	tabs := Table3(quick())
	tab := tabs[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			if !strings.Contains(cell, "/") || !strings.Contains(cell, "%") {
				t.Fatalf("cell %q not in init/resp %% form", cell)
			}
		}
	}
	// 10-PTE reductions exceed 1-PTE reductions on the initiator side
	// (paper: 58% vs 39% safe).
	parse := func(cell string) int {
		v, _ := strconv.Atoi(strings.TrimSuffix(strings.Fields(cell)[0], "%"))
		return v
	}
	if parse(tab.Rows[1][1]) <= parse(tab.Rows[0][1]) {
		t.Fatalf("10-PTE safe reduction (%s) not above 1-PTE (%s)", tab.Rows[1][1], tab.Rows[0][1])
	}
}

func TestFig9Shape(t *testing.T) {
	tabs := Fig9(quick())
	tab := tabs[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %v", tab.Rows)
	}
	for _, row := range tab.Rows {
		if !strings.Contains(row[4], "cycles") {
			t.Fatalf("saving cell = %q", row[4])
		}
		if strings.HasPrefix(row[4], "-") {
			t.Fatalf("CoW optimization made things slower: %v", row)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	tabs := Table4(quick())
	tab := tabs[0]
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	// Row 1 (VM, guest 2M on host 4K): sel/full ratio ~ 1.
	frac := tab.Rows[1]
	if frac[5] != "1.000" {
		t.Fatalf("fractured sel/full = %q, want 1.000", frac[5])
	}
	// Every other row: ratio well under 1.
	for i, row := range tab.Rows {
		if i == 1 {
			continue
		}
		r, err := strconv.ParseFloat(row[5], 64)
		if err != nil || r > 0.1 {
			t.Fatalf("row %d sel/full = %q, want << 1", i, row[5])
		}
	}
}

func TestAblationTables(t *testing.T) {
	tabs := Ablations(quick())
	if len(tabs) != 3 {
		t.Fatalf("ablation tables = %d", len(tabs))
	}
	// Early-ack suppression: the munmap row must show suppressions.
	ack := tabs[1]
	if len(ack.Rows) != 2 || ack.Rows[1][3] == "0" {
		t.Fatalf("suppression table = %v", ack.Rows)
	}
	// Interaction: with concurrent flushing, some user PTEs are flushed
	// while waiting; without it, none.
	inter := tabs[2]
	if inter.Rows[0][2] != "0" {
		t.Fatalf("in-context-only flushed-while-waiting = %q, want 0", inter.Rows[0][2])
	}
	if inter.Rows[1][2] == "0" {
		t.Fatal("concurrent interaction flushed no user PTEs")
	}
}

func TestTablesRenderAndCSV(t *testing.T) {
	for _, tab := range Table4(quick()) {
		if !strings.Contains(tab.String(), "Table 4") {
			t.Fatal("missing title")
		}
		if lines := strings.Count(tab.CSV(), "\n"); lines != len(tab.Rows)+1 {
			t.Fatalf("CSV lines = %d", lines)
		}
	}
}
