package experiments

import (
	"fmt"

	"shootdown/internal/core"
	"shootdown/internal/fault"
	"shootdown/internal/report"
	"shootdown/internal/sched"
	"shootdown/internal/smp"
	"shootdown/internal/workload"
)

// FaultSweep runs every deterministic-outcome scenario under each fault
// preset and reports two tables: what was injected (per-site fault
// counts plus the final-state digest and its match against the
// fault-free run) and what the recovery machinery did about it (ack
// timeouts, re-kicks, degradations, worst stall). The digest column is
// the experiment-level metamorphic check — every row of a scenario must
// match its fault-free digest — and the whole report is byte-identical
// at any scheduler worker count, so it doubles as a golden surface.
func FaultSweep(o Options) []*report.Table {
	specNames := []string{"none", "light", "heavy", "drop"}
	modes := []workload.Mode{workload.Safe, workload.Unsafe}
	if o.Quick {
		modes = modes[:1]
	}
	scenarios := workload.Scenarios()

	type cell struct {
		digest string
		fs     fault.Stats
		smp    smp.Stats
		drops  uint64
		delays uint64
	}
	// One job per (mode, spec, scenario); reassembled index-ordered.
	nSpec, nScen := len(specNames), len(scenarios)
	cells := sched.Collect(len(modes)*nSpec*nScen, func(i int) cell {
		mode := modes[i/(nSpec*nScen)]
		spec, ok := fault.Preset(specNames[(i/nScen)%nSpec])
		if !ok {
			panic(fmt.Sprintf("experiments: unknown fault preset %q", specNames[(i/nScen)%nSpec]))
		}
		s := scenarios[i%nScen]
		w := workload.NewFaultWorld(mode, core.All(), o.seed(), spec)
		defer w.Close()
		spaces := s.Run(w)
		bus := w.K.Bus.Stats()
		return cell{
			digest: workload.StateDigest(spaces),
			fs:     w.Fault.Stats(),
			smp:    w.K.SMP.Stats(),
			drops:  bus.IPIsDropped,
			delays: bus.IPIsDelayed,
		}
	})

	inj := &report.Table{
		Title:  "Fault sweep — injected faults and final-state digests",
		Header: []string{"mode", "faults", "scenario", "digest", "match", "drops", "forced", "delays", "stalls", "ackdl", "evict", "recycle", "preempt"},
	}
	rec := &report.Table{
		Title:  "Fault sweep — shootdown recovery counters",
		Header: []string{"mode", "faults", "scenario", "ipi-dropped", "ipi-delayed", "ack-timeouts", "rekicks", "degraded-full", "max-ack-stall"},
	}
	for mi, mode := range modes {
		for si, specName := range specNames {
			for ci, s := range scenarios {
				c := cells[(mi*nSpec+si)*nScen+ci]
				base := cells[mi*nSpec*nScen+ci] // the "none" row of this mode/scenario
				match := "yes"
				if c.digest != base.digest {
					match = "NO"
				}
				inj.AddRow(mode.String(), specName, s.Name, c.digest, match,
					c.fs.Drops, c.fs.ForcedDeliveries, c.fs.Delays, c.fs.Stalls,
					c.fs.AckDelays, c.fs.Evictions, c.fs.Recycles, c.fs.Preempts)
				rec.AddRow(mode.String(), specName, s.Name,
					c.drops, c.delays, c.smp.AckTimeouts, c.smp.Rekicks,
					c.smp.DegradedFulls, c.smp.MaxAckStall)
			}
		}
	}
	inj.AddNote("match compares each digest against the fault-free run of the same mode/scenario/seed: faults must never change the final memory state")
	rec.AddNote("recovery: an initiator whose acks time out re-kicks with exponential backoff, then degrades outstanding precise flushes to full flushes")
	return []*report.Table{inj, rec}
}
