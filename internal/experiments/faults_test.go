package experiments

import (
	"bytes"
	"strconv"
	"testing"

	"shootdown/internal/sched"
)

// TestFaultSweepDeterministicAtAnyWorkerCount is the golden contract for
// the fault report: the rendered tables — digests, injected-fault counts
// and recovery counters included — are byte-identical at one worker and
// at eight. Fault injection is keyed by (seed, site, occurrence), never
// by host scheduling, so parallelism must not leak into the report.
func TestFaultSweepDeterministicAtAnyWorkerCount(t *testing.T) {
	for _, seed := range []uint64{1, 42} {
		prev := sched.SetWorkers(1)
		serial := renderSuite([]string{"faults"}, seed)
		sched.SetWorkers(8)
		parallel := renderSuite([]string{"faults"}, seed)
		sched.SetWorkers(prev)
		if !bytes.Equal(serial, parallel) {
			sl := bytes.Split(serial, []byte("\n"))
			pl := bytes.Split(parallel, []byte("\n"))
			for i := 0; i < len(sl) && i < len(pl); i++ {
				if !bytes.Equal(sl[i], pl[i]) {
					t.Fatalf("seed %d: fault report diverges at line %d:\n  workers=1: %s\n  workers=8: %s",
						seed, i+1, sl[i], pl[i])
				}
			}
			t.Fatalf("seed %d: report lengths differ: %d vs %d bytes", seed, len(serial), len(parallel))
		}
	}
}

// TestFaultSweepContent checks the report's semantics: fault-free rows
// inject nothing, the drop schedule actually exercises drop + recovery,
// and every digest matches its fault-free baseline.
func TestFaultSweepContent(t *testing.T) {
	tabs := FaultSweep(Options{Quick: true, Seed: 1})
	if len(tabs) != 2 {
		t.Fatalf("tables = %d, want 2", len(tabs))
	}
	inj, rec := tabs[0], tabs[1]

	num := func(t2 *testing.T, row []string, col int) uint64 {
		t2.Helper()
		v, err := strconv.ParseUint(row[col], 10, 64)
		if err != nil {
			t2.Fatalf("cell %d (%q) not a count: %v", col, row[col], err)
		}
		return v
	}

	// Injection table: mode faults scenario digest match d f dl st ad ev rc pr
	sawDropRowWithDrops := false
	for _, row := range inj.Rows {
		if row[4] != "yes" {
			t.Errorf("%s/%s/%s: digest mismatch against fault-free run", row[0], row[1], row[2])
		}
		injected := uint64(0)
		for col := 5; col <= 12; col++ {
			injected += num(t, row, col)
		}
		switch row[1] {
		case "none":
			if injected != 0 {
				t.Errorf("%s/%s: fault-free row injected %d faults", row[0], row[2], injected)
			}
		case "drop":
			if num(t, row, 5) > 0 {
				sawDropRowWithDrops = true
			}
		}
	}
	if !sawDropRowWithDrops {
		t.Error("no drop-schedule row recorded any dropped kick")
	}

	// Recovery table: mode faults scenario ipid ipidl to rk degr stall
	sawRecovery := false
	for _, row := range rec.Rows {
		dropped, timeouts, rekicks := num(t, row, 3), num(t, row, 5), num(t, row, 6)
		if row[1] == "none" && (dropped != 0 || timeouts != 0 || rekicks != 0) {
			t.Errorf("%s/%s: fault-free row shows recovery activity: %v", row[0], row[2], row)
		}
		if row[1] == "drop" && dropped > 0 && timeouts > 0 && rekicks > 0 {
			sawRecovery = true
		}
	}
	if !sawRecovery {
		t.Error("drop schedule never drove the timeout/rekick recovery path")
	}
}
