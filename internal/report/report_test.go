package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"name", "val"}}
	tab.AddRow("a", 1)
	tab.AddRow("longer", 2.5)
	tab.AddNote("n=%d", 2)
	out := tab.String()
	if !strings.Contains(out, "T\n=\n") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "longer  2.50") {
		t.Fatalf("row misaligned: %q", out)
	}
	if !strings.Contains(out, "note: n=2") {
		t.Fatalf("missing note: %q", out)
	}
	// Columns aligned: "a" padded to len("longer").
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "a ") && !strings.HasPrefix(line, "a       1") {
			t.Fatalf("bad padding: %q", line)
		}
	}
}

func TestCSV(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}}
	tab.AddRow("x,y", `q"u`)
	got := tab.CSV()
	want := "a,b\n\"x,y\",\"q\"\"u\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.37); got != "37%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Speedup(1.1534); got != "1.153x" {
		t.Fatalf("Speedup = %q", got)
	}
	if got := Cycles(1234567); got != "1,234,567" {
		t.Fatalf("Cycles = %q", got)
	}
	if got := Cycles(999); got != "999" {
		t.Fatalf("Cycles = %q", got)
	}
}
