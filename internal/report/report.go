// Package report renders experiment results as aligned text tables and CSV,
// in the rows-and-series shapes the paper's tables and figures use.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are printed under the table.
	Notes []string
}

// AddRow appends a row, stringifying each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Write renders the table as aligned text.
func (t *Table) Write(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the table as text.
func (t *Table) String() string {
	var sb strings.Builder
	t.Write(&sb)
	return sb.String()
}

// CSV renders the table as comma-separated values (header + rows).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeCSVRow(&sb, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(&sb, row)
	}
	return sb.String()
}

func writeCSVRow(sb *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			sb.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		sb.WriteString(c)
	}
	sb.WriteByte('\n')
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Pct formats a fraction as a percentage ("37%").
func Pct(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }

// Speedup formats a ratio ("1.15x").
func Speedup(f float64) string { return fmt.Sprintf("%.3fx", f) }

// Cycles formats a cycle count with a thousands separator.
func Cycles(c float64) string {
	s := fmt.Sprintf("%.0f", c)
	out := ""
	for i, ch := range s {
		if i > 0 && (len(s)-i)%3 == 0 && ch != '-' {
			out += ","
		}
		out += string(ch)
	}
	return out
}
