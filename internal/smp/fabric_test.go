package smp

import (
	"testing"

	"shootdown/internal/fault"
	"shootdown/internal/mach"
	"shootdown/internal/race"
	"shootdown/internal/sim"
)

// spawnFabricResponder runs a minimal async-tier IRQ loop on cpu: where
// the kernel's IRQ entry sweeps the fabric ring alongside the CSQ, this
// responder drains only the fabric. It exits after `quota` kicks.
func (r *rig) spawnFabricResponder(cpu mach.CPU, quota int) {
	ctrl := r.bus.Controller(cpu)
	irqArrived := r.eng.NewCond()
	ctrl.SetNotify(func() { irqArrived.Broadcast() })
	r.eng.Go("fabric-responder", func(p *sim.Proc) {
		for handled := 0; handled < quota; {
			if !ctrl.Deliverable() {
				irqArrived.Wait(p)
				continue
			}
			if _, ok := ctrl.Take(); ok {
				r.l.DrainFabric(p, cpu)
				handled++
			}
		}
	})
}

// recordApplier registers a drain applier that records every applied
// batch, keyed by draining CPU.
func (r *rig) recordApplier() *[][]Inval {
	var applied [][]Inval
	r.l.SetDrainApplier(func(p *sim.Proc, cpu mach.CPU, batch []Inval) {
		applied = append(applied, batch)
	})
	return &applied
}

func TestCanCoalesceRules(t *testing.T) {
	base := Inval{ASID: 1, Start: 0x1000, End: 0x2000, Stride: 4096, GenLo: 1, GenHi: 1}
	next := func(mut func(*Inval)) *Inval {
		n := Inval{ASID: 1, Start: 0x2000, End: 0x3000, Stride: 4096, GenLo: 2, GenHi: 2}
		if mut != nil {
			mut(&n)
		}
		return &n
	}
	cases := []struct {
		name string
		prev Inval
		next *Inval
		want bool
	}{
		{"adjacent", base, next(nil), true},
		{"other-space", base, next(func(n *Inval) { n.ASID = 2 }), false},
		{"gen-gap", base, next(func(n *Inval) { n.GenLo, n.GenHi = 3, 3 }), false},
		{"range-gap", base, next(func(n *Inval) { n.Start, n.End = 0x4000, 0x5000 }), false},
		{"stride-mismatch", base, next(func(n *Inval) { n.Stride = 1 << 21 }), false},
		{"full-next", base, next(func(n *Inval) { n.Full = true }), false},
		{"full-prev-absorbs", Inval{ASID: 1, GenLo: 1, GenHi: 1, Full: true}, next(nil), true},
	}
	for _, c := range cases {
		prev := c.prev
		if got := canCoalesce(&prev, c.next); got != c.want {
			t.Errorf("%s: canCoalesce = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMergeInval(t *testing.T) {
	var l Layer
	// A merge extends the span in both directions and the generation run.
	prev := Inval{ASID: 1, Start: 0x2000, End: 0x3000, Stride: 4096, GenLo: 2, GenHi: 2}
	l.mergeInval(&prev, &Inval{ASID: 1, Start: 0x1000, End: 0x4000, Stride: 4096, GenLo: 3, GenHi: 4})
	if prev.Start != 0x1000 || prev.End != 0x4000 || prev.GenLo != 2 || prev.GenHi != 4 {
		t.Fatalf("merged = %+v", prev)
	}
	// A full prev only advances its generation run.
	full := Inval{ASID: 1, GenLo: 1, GenHi: 1, Full: true}
	l.mergeInval(&full, &Inval{ASID: 1, Start: 0x1000, End: 0x2000, Stride: 4096, GenLo: 2, GenHi: 2})
	if !full.Full || full.GenHi != 2 || full.Start != 0 || full.End != 0 {
		t.Fatalf("full merge = %+v", full)
	}
	// A full next widens the merged entry.
	prev = Inval{ASID: 1, Start: 0x1000, End: 0x2000, Stride: 4096, GenLo: 1, GenHi: 1}
	l.mergeInval(&prev, &Inval{ASID: 1, GenLo: 2, GenHi: 2, Full: true})
	if !prev.Full || prev.GenHi != 2 {
		t.Fatalf("widening merge = %+v", prev)
	}
}

func TestPostAsyncRoundTrip(t *testing.T) {
	r := newRig(false)
	if r.l.AsyncEnabled() {
		t.Fatal("fabric enabled before an applier was registered")
	}
	applied := r.recordApplier()
	if !r.l.AsyncEnabled() {
		t.Fatal("fabric not enabled by SetDrainApplier")
	}
	r.spawnFabricResponder(2, 1)
	inv := Inval{AS: "mm", ASID: 7, Start: 0x1000, End: 0x2000, Stride: 4096, GenLo: 1, GenHi: 1}
	completed := false
	var b *AsyncBatch
	var postedAt, completedAt sim.Time
	r.eng.Go("initiator", func(p *sim.Proc) {
		b = r.l.PostAsync(p, 0, mach.MaskOf(2), inv, func(*sim.Proc) { completed = true; completedAt = r.eng.Now() })
		postedAt = p.Now()
		if b.Done() {
			t.Error("batch done at post time: initiator must not wait")
		}
	})
	r.eng.Run()
	if !completed || !b.Done() {
		t.Fatal("batch never completed")
	}
	if completedAt <= postedAt {
		t.Fatalf("completion at %d not after the post returned at %d", completedAt, postedAt)
	}
	if len(*applied) != 1 || len((*applied)[0]) != 1 || (*applied)[0][0] != inv {
		t.Fatalf("applied = %+v, want the posted inval once", *applied)
	}
	if posted, acked := r.l.FabricSeqs(2); posted != 1 || acked != 1 {
		t.Fatalf("seqs = (%d, %d), want (1, 1)", posted, acked)
	}
	if n := r.l.OutstandingBatches(); n != 0 {
		t.Fatalf("OutstandingBatches = %d", n)
	}
	s := r.l.Stats()
	if s.AsyncPosts != 1 || s.AsyncKicks != 1 || s.AsyncBatches != 1 ||
		s.AsyncDrains != 1 || s.AsyncApplied != 1 || s.AsyncFullDrains != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPostAsyncCoalescesAndElidesKick(t *testing.T) {
	r := newRig(false)
	applied := r.recordApplier()
	// No responder: the ring stays populated until the deferred drain
	// (modeling the kernel's return-to-user sweep, which needs no IPI).
	r.bus.Controller(2).SetMasked(true)
	r.eng.Go("initiator", func(p *sim.Proc) {
		r.l.PostAsync(p, 0, mach.MaskOf(2),
			Inval{AS: "mm", ASID: 1, Start: 0x1000, End: 0x2000, Stride: 4096, GenLo: 1, GenHi: 1}, nil)
		r.l.PostAsync(p, 0, mach.MaskOf(2),
			Inval{AS: "mm", ASID: 1, Start: 0x2000, End: 0x3000, Stride: 4096, GenLo: 2, GenHi: 2}, nil)
	})
	r.eng.Run()
	if entries, full := r.l.FabricPending(2); entries != 1 || full {
		t.Fatalf("pending = (%d, %v), want one merged entry", entries, full)
	}
	s := r.l.Stats()
	if s.AsyncPosts != 2 || s.AsyncCoalesced != 1 || s.AsyncKicks != 1 || s.AsyncKicksElided != 1 {
		t.Fatalf("stats = %+v, want 2 posts, 1 coalesced, 1 kick + 1 elided", s)
	}
	r.eng.Go("drainer", func(p *sim.Proc) { r.l.DrainFabric(p, 2) })
	r.eng.Run()
	if len(*applied) != 1 || len((*applied)[0]) != 1 {
		t.Fatalf("applied = %+v, want one batch of one merged entry", *applied)
	}
	got := (*applied)[0][0]
	want := Inval{AS: "mm", ASID: 1, Start: 0x1000, End: 0x3000, Stride: 4096, GenLo: 1, GenHi: 2}
	if got != want {
		t.Fatalf("merged entry = %+v, want %+v", got, want)
	}
	if posted, acked := r.l.FabricSeqs(2); posted != 2 || acked != 2 {
		t.Fatalf("seqs = (%d, %d): the merged drain must ack both posts", posted, acked)
	}
	if n := r.l.OutstandingBatches(); n != 0 {
		t.Fatalf("OutstandingBatches = %d after drain", n)
	}
}

func TestPostAsyncNoCoalesceAcrossSpacesOrGenGaps(t *testing.T) {
	r := newRig(false)
	r.recordApplier()
	r.bus.Controller(2).SetMasked(true)
	r.eng.Go("initiator", func(p *sim.Proc) {
		// Different address space: no merge.
		r.l.PostAsync(p, 0, mach.MaskOf(2),
			Inval{ASID: 1, Start: 0x1000, End: 0x2000, Stride: 4096, GenLo: 1, GenHi: 1}, nil)
		r.l.PostAsync(p, 0, mach.MaskOf(2),
			Inval{ASID: 2, Start: 0x2000, End: 0x3000, Stride: 4096, GenLo: 1, GenHi: 1}, nil)
		// Same space, adjacent range, but a generation gap: no merge
		// (the merged entry could no longer advance the local gen exactly).
		r.l.PostAsync(p, 0, mach.MaskOf(2),
			Inval{ASID: 2, Start: 0x3000, End: 0x4000, Stride: 4096, GenLo: 3, GenHi: 3}, nil)
	})
	r.eng.Run()
	if entries, _ := r.l.FabricPending(2); entries != 3 {
		t.Fatalf("pending = %d entries, want 3 unmerged", entries)
	}
	if got := r.l.Stats().AsyncCoalesced; got != 0 {
		t.Fatalf("AsyncCoalesced = %d, want 0", got)
	}
}

func TestPostAsyncOverflowCollapsesToFlushAll(t *testing.T) {
	r := newRig(false)
	applied := r.recordApplier()
	r.bus.Controller(2).SetMasked(true)
	n := RingSize + 1
	r.eng.Go("initiator", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			// Distinct address spaces so nothing coalesces.
			r.l.PostAsync(p, 0, mach.MaskOf(2), Inval{
				ASID: uint32(i), Start: 0x1000, End: 0x2000, Stride: 4096,
				GenLo: uint64(i + 1), GenHi: uint64(i + 1),
			}, nil)
		}
	})
	r.eng.Run()
	entries, full := r.l.FabricPending(2)
	if entries != RingSize || !full {
		t.Fatalf("pending = (%d, %v), want a full ring with flush_all set", entries, full)
	}
	if got := r.l.Stats().AsyncOverflows; got != 1 {
		t.Fatalf("AsyncOverflows = %d, want 1", got)
	}
	r.eng.Go("drainer", func(p *sim.Proc) { r.l.DrainFabric(p, 2) })
	r.eng.Run()
	if len(*applied) != 1 || len((*applied)[0]) != 1 {
		t.Fatalf("applied = %+v, want one widened batch", *applied)
	}
	got := (*applied)[0][0]
	// The overflowing post itself never entered the ring, so the widened
	// entry carries the highest in-ring generation; the full flush
	// subsumes the dropped range and the ack is by sequence, not gen.
	if !got.Full || got.AS != nil || got.GenHi != uint64(RingSize) {
		t.Fatalf("widened entry = %+v, want Full through gen %d", got, RingSize)
	}
	if posted, acked := r.l.FabricSeqs(2); posted != uint64(n) || acked != uint64(n) {
		t.Fatalf("seqs = (%d, %d): the full drain must ack every post", posted, acked)
	}
	s := r.l.Stats()
	if s.AsyncFullDrains != 1 || s.AsyncApplied != 1 {
		t.Fatalf("stats = %+v, want 1 full drain applying 1 widened entry", s)
	}
	if n := r.l.OutstandingBatches(); n != 0 {
		t.Fatalf("OutstandingBatches = %d: the collapse must still complete all batches", n)
	}
}

func TestDrainFabricEmptyIsFree(t *testing.T) {
	r := newRig(false)
	// Without an applier the drain is a no-op even on kernels that sweep
	// unconditionally (the sync tier's IRQ path).
	r.eng.Go("disabled", func(p *sim.Proc) { r.l.DrainFabric(p, 2) })
	r.eng.Run()
	r.recordApplier()
	r.eng.Go("drainer", func(p *sim.Proc) {
		before := p.Now()
		r.l.DrainFabric(p, 2)
		if p.Now() != before {
			t.Error("empty drain charged time")
		}
	})
	r.eng.Run()
	if got := r.l.Stats().AsyncDrains; got != 0 {
		t.Fatalf("AsyncDrains = %d on an empty ring", got)
	}
}

func TestMultiTargetBatchCompletesOnLastAck(t *testing.T) {
	r := newRig(false)
	r.recordApplier()
	r.spawnFabricResponder(2, 1)  // same socket: drains first
	r.spawnFabricResponder(30, 1) // cross socket: drains later
	completions := 0
	var b *AsyncBatch
	r.eng.Go("initiator", func(p *sim.Proc) {
		b = r.l.PostAsync(p, 0, mach.MaskOf(2, 30),
			Inval{ASID: 1, Start: 0, End: 0x1000, Stride: 4096, GenLo: 1, GenHi: 1},
			func(*sim.Proc) { completions++ })
	})
	r.eng.Run()
	if completions != 1 || !b.Done() {
		t.Fatalf("completions = %d, done = %v; want exactly one completion", completions, b.Done())
	}
	for _, cpu := range []mach.CPU{2, 30} {
		if posted, acked := r.l.FabricSeqs(cpu); acked != posted {
			t.Fatalf("cpu %d: acked %d of %d", cpu, acked, posted)
		}
	}
	if s := r.l.Stats(); s.AsyncDrains != 2 || s.AsyncKicks != 2 {
		t.Fatalf("stats = %+v, want both targets kicked and drained", s)
	}
}

func TestWatchdogRekicksOnDroppedKick(t *testing.T) {
	r := newRig(false)
	r.recordApplier()
	// Every kick is dropped; the burst bound forces the third send
	// through. The watchdog must detect the posted-vs-acked gap and
	// re-ring the doorbell until the drain lands.
	pl := fault.New(7, fault.Spec{DropP: 1, DropBurstMax: 2})
	r.bus.SetFaultPlane(pl)
	r.l.SetFaultPlane(pl)
	r.spawnFabricResponder(2, 1)
	var b *AsyncBatch
	r.eng.Go("initiator", func(p *sim.Proc) {
		b = r.l.PostAsync(p, 0, mach.MaskOf(2),
			Inval{ASID: 1, Start: 0, End: 0x1000, Stride: 4096, GenLo: 1, GenHi: 1}, nil)
	})
	r.eng.Run()
	if !b.Done() {
		t.Fatal("batch never completed despite rekicks")
	}
	s := r.l.Stats()
	if s.AsyncRekicks != 2 || b.Retries() != 2 {
		t.Fatalf("rekicks = %d, retries = %d; want 2 (post and first rekick dropped)", s.AsyncRekicks, b.Retries())
	}
	if s.AckTimeouts != 2 {
		t.Fatalf("AckTimeouts = %d, want 2", s.AckTimeouts)
	}
	if s.AsyncDegrades != 0 || s.AsyncFullDrains != 0 {
		t.Fatalf("stats = %+v: recovery before MaxKickRetries must keep precision", s)
	}
}

func TestWatchdogRekicksOnlyLaggingTargets(t *testing.T) {
	r := newRig(false)
	r.recordApplier()
	// CPU 2's controller is masked (its kick and rekicks vanish); CPU 4
	// drains immediately. The watchdog must re-ring only the lagging
	// doorbell — the acked target's sequence check skips it.
	r.l.SetFaultPlane(fault.New(7, fault.Spec{})) // armed, injects nothing
	r.bus.Controller(2).SetMasked(true)
	r.spawnFabricResponder(4, 2)
	var b *AsyncBatch
	r.eng.Go("initiator", func(p *sim.Proc) {
		b = r.l.PostAsync(p, 0, mach.MaskOf(2, 4),
			Inval{ASID: 1, Start: 0, End: 0x1000, Stride: 4096, GenLo: 1, GenHi: 1}, nil)
		// The second batch exercises the already-started watchdog.
		r.l.PostAsync(p, 0, mach.MaskOf(4),
			Inval{ASID: 1, Start: 0x1000, End: 0x2000, Stride: 4096, GenLo: 2, GenHi: 2}, nil)
		// Unmask once the first rekick is due, so recovery can land.
		p.Delay(uint64(2 * r.cost.IPIAckTimeout))
		r.bus.Controller(2).SetMasked(false)
		r.spawnFabricResponder(2, 1)
	})
	r.eng.Run()
	if !b.Done() {
		t.Fatal("batch never completed after unmasking")
	}
	s := r.l.Stats()
	if s.AsyncRekicks == 0 {
		t.Fatal("watchdog never rekicked the lagging target")
	}
	if _, acked := r.l.FabricSeqs(4); acked != 2 {
		t.Fatalf("cpu 4 acked %d, want 2 (both posts, one drain each)", acked)
	}
}

func TestWatchdogDegradesToFullAfterMaxRetries(t *testing.T) {
	r := newRig(false)
	applied := r.recordApplier()
	// Six consecutive drops: the post and five rekicks are lost, so the
	// ladder runs past MaxKickRetries and must widen the stranded ring
	// to flush_all before the seventh (forced) delivery drains it.
	pl := fault.New(7, fault.Spec{DropP: 1, DropBurstMax: 6})
	r.bus.SetFaultPlane(pl)
	r.l.SetFaultPlane(pl)
	r.spawnFabricResponder(2, 1)
	var b *AsyncBatch
	r.eng.Go("initiator", func(p *sim.Proc) {
		b = r.l.PostAsync(p, 0, mach.MaskOf(2),
			Inval{ASID: 1, Start: 0, End: 0x1000, Stride: 4096, GenLo: 1, GenHi: 1}, nil)
	})
	r.eng.Run()
	if !b.Done() {
		t.Fatal("batch never completed despite the degrade ladder")
	}
	s := r.l.Stats()
	if s.AsyncDegrades != 1 {
		t.Fatalf("AsyncDegrades = %d, want exactly 1 (the flag is sticky)", s.AsyncDegrades)
	}
	if s.AsyncFullDrains != 1 {
		t.Fatalf("AsyncFullDrains = %d: the degraded drain must be a full flush", s.AsyncFullDrains)
	}
	if b.Retries() != MaxKickRetries {
		t.Fatalf("retries = %d, want capped at %d", b.Retries(), MaxKickRetries)
	}
	if len(*applied) != 1 || len((*applied)[0]) != 1 || !(*applied)[0][0].Full {
		t.Fatalf("applied = %+v, want one widened full entry", *applied)
	}
}

func TestWatchdogNotArmedWithoutFaultPlane(t *testing.T) {
	r := newRig(false)
	r.recordApplier()
	r.spawnFabricResponder(2, 1)
	r.eng.Go("initiator", func(p *sim.Proc) {
		r.l.PostAsync(p, 0, mach.MaskOf(2),
			Inval{ASID: 1, Start: 0, End: 0x1000, Stride: 4096, GenLo: 1, GenHi: 1}, nil)
	})
	r.eng.Run()
	if r.l.wdCond != nil {
		t.Fatal("watchdog started on a fault-free run")
	}
	// NoRetry is the deliberately broken recovery variant: the plane is
	// attached but must not arm the watchdog either.
	pl := fault.New(7, fault.Spec{DropP: 1, NoRetry: true})
	r.l.SetFaultPlane(pl)
	r.eng.Go("initiator2", func(p *sim.Proc) {
		r.bus.Controller(4).SetMasked(true)
		r.l.PostAsync(p, 0, mach.MaskOf(4),
			Inval{ASID: 1, Start: 0, End: 0x1000, Stride: 4096, GenLo: 2, GenHi: 2}, nil)
	})
	r.eng.Run()
	if r.l.wdCond != nil {
		t.Fatal("watchdog armed under noretry (the broken variant must strand the batch)")
	}
	if r.l.OutstandingBatches() != 1 {
		t.Fatalf("OutstandingBatches = %d, want the stranded batch left open", r.l.OutstandingBatches())
	}
}

func TestPostAsyncSelfTargetPanics(t *testing.T) {
	r := newRig(false)
	r.recordApplier()
	r.eng.Go("init", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("self-target post did not panic")
			}
		}()
		r.l.PostAsync(p, 0, mach.MaskOf(0), Inval{}, nil)
	})
	r.eng.Run()
}

func TestPostAsyncWithoutApplierPanics(t *testing.T) {
	r := newRig(false)
	r.eng.Go("init", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("post without a drain applier did not panic")
			}
		}()
		r.l.PostAsync(p, 0, mach.MaskOf(2), Inval{}, nil)
	})
	r.eng.Run()
}

func TestPostAsyncEmptyTargetsCompletesInline(t *testing.T) {
	r := newRig(false)
	r.recordApplier()
	completed := false
	r.eng.Go("init", func(p *sim.Proc) {
		b := r.l.PostAsync(p, 0, mach.CPUMask{}, Inval{}, func(*sim.Proc) { completed = true })
		if !b.Done() || !completed {
			t.Error("empty-target batch must complete inline")
		}
	})
	r.eng.Run()
	if got := r.l.Stats().AsyncBatches; got != 0 {
		t.Fatalf("AsyncBatches = %d: an empty post is not a batch", got)
	}
}

func TestFabricRaceModelClean(t *testing.T) {
	// With the happens-before checker attached, the full
	// post→kick→drain→ack→completion exchange (including a coalesced
	// second post) must model clean sync edges.
	r := newRig(false)
	d := race.New(r.eng)
	r.l.SetRaceDetector(d)
	r.recordApplier()
	r.spawnFabricResponder(2, 1)
	done := false
	r.eng.Go("initiator", func(p *sim.Proc) {
		r.l.PostAsync(p, 0, mach.MaskOf(2),
			Inval{ASID: 1, Start: 0x1000, End: 0x2000, Stride: 4096, GenLo: 1, GenHi: 1},
			func(*sim.Proc) { done = true })
		r.l.PostAsync(p, 0, mach.MaskOf(2),
			Inval{ASID: 1, Start: 0x2000, End: 0x3000, Stride: 4096, GenLo: 2, GenHi: 2}, nil)
		// The instrumented peeks are acquire-side loads, not races.
		r.l.FabricPending(2)
		r.l.FabricSeqs(2)
	})
	r.eng.Run()
	if !done {
		t.Fatal("batch never completed")
	}
	if sum := d.Finish(); !sum.OK() {
		t.Fatalf("race model flagged the fabric protocol: %+v", sum.Races)
	}
}

// TestPostAsyncExactlyAtRingSizeNoOverflow pins the boundary the
// fabproof tier proves: the append guard admits exactly RingSize
// distinct entries — the post that lands the ring at capacity is an
// append, not an overflow — and only the RingSize+1'th distinct post
// trips the flush_all collapse.
func TestPostAsyncExactlyAtRingSizeNoOverflow(t *testing.T) {
	r := newRig(false)
	r.recordApplier()
	r.bus.Controller(2).SetMasked(true)
	r.eng.Go("initiator", func(p *sim.Proc) {
		for i := 0; i < RingSize; i++ {
			// Distinct address spaces so nothing coalesces.
			r.l.PostAsync(p, 0, mach.MaskOf(2), Inval{
				ASID: uint32(i), Start: 0x1000, End: 0x2000, Stride: 4096,
				GenLo: uint64(i + 1), GenHi: uint64(i + 1),
			}, nil)
		}
	})
	r.eng.Run()
	if entries, full := r.l.FabricPending(2); entries != RingSize || full {
		t.Fatalf("pending = (%d, %v), want the ring exactly full with no collapse", entries, full)
	}
	if s := r.l.Stats(); s.AsyncOverflows != 0 || s.AsyncCoalesced != 0 {
		t.Fatalf("stats = %+v, want no overflow and no coalesce at exactly RingSize", s)
	}
}

// TestPostAsyncOverflowEntryStillCoalesces drives a post into a ring
// that has already collapsed to flush_all: the coalesce check runs
// before the capacity guard, so a post mergeable with the ring tail
// still merges in place — no second overflow is counted and the
// pending entry count never exceeds RingSize.
func TestPostAsyncOverflowEntryStillCoalesces(t *testing.T) {
	r := newRig(false)
	applied := r.recordApplier()
	r.bus.Controller(2).SetMasked(true)
	r.eng.Go("initiator", func(p *sim.Proc) {
		for i := 0; i < RingSize; i++ {
			r.l.PostAsync(p, 0, mach.MaskOf(2), Inval{
				ASID: uint32(i), Start: 0x1000, End: 0x2000, Stride: 4096,
				GenLo: uint64(i + 1), GenHi: uint64(i + 1),
			}, nil)
		}
		// Non-coalescible overflow: collapses to flush_all. Its gen run
		// is deliberately far away so it cannot merge with the tail.
		r.l.PostAsync(p, 0, mach.MaskOf(2), Inval{
			ASID: 99, Start: 0x9000, End: 0xa000, Stride: 4096,
			GenLo: 100, GenHi: 100,
		}, nil)
		// Mergeable with the ring tail (same space, gen run contiguous
		// with the tail's, adjacent range): coalesces in place even
		// though the ring is full.
		r.l.PostAsync(p, 0, mach.MaskOf(2), Inval{
			ASID: uint32(RingSize - 1), Start: 0x2000, End: 0x3000, Stride: 4096,
			GenLo: uint64(RingSize + 1), GenHi: uint64(RingSize + 1),
		}, nil)
	})
	r.eng.Run()
	if entries, full := r.l.FabricPending(2); entries != RingSize || !full {
		t.Fatalf("pending = (%d, %v), want a full ring with flush_all set", entries, full)
	}
	s := r.l.Stats()
	if s.AsyncOverflows != 1 || s.AsyncCoalesced != 1 {
		t.Fatalf("stats = %+v, want exactly 1 overflow and 1 in-place coalesce", s)
	}
	r.eng.Go("drainer", func(p *sim.Proc) { r.l.DrainFabric(p, 2) })
	r.eng.Run()
	if len(*applied) != 1 || len((*applied)[0]) != 1 || !(*applied)[0][0].Full {
		t.Fatalf("applied = %+v, want one widened full-flush batch", *applied)
	}
	if posted, acked := r.l.FabricSeqs(2); posted != uint64(RingSize+2) || acked != posted {
		t.Fatalf("seqs = (%d, %d): the full drain must ack every post", posted, acked)
	}
}

// TestPostAsyncAdjacentDifferentASIDStaysDistinct pins the first
// canCoalesce clause at the ring level: range-adjacent invals for
// different address spaces must stay separate entries — merging them
// would flush one space's range under another's generation run.
func TestPostAsyncAdjacentDifferentASIDStaysDistinct(t *testing.T) {
	r := newRig(false)
	r.recordApplier()
	r.bus.Controller(2).SetMasked(true)
	r.eng.Go("initiator", func(p *sim.Proc) {
		r.l.PostAsync(p, 0, mach.MaskOf(2),
			Inval{ASID: 1, Start: 0x1000, End: 0x2000, Stride: 4096, GenLo: 1, GenHi: 1}, nil)
		r.l.PostAsync(p, 0, mach.MaskOf(2),
			Inval{ASID: 2, Start: 0x2000, End: 0x3000, Stride: 4096, GenLo: 2, GenHi: 2}, nil)
	})
	r.eng.Run()
	if entries, _ := r.l.FabricPending(2); entries != 2 {
		t.Fatalf("pending = %d entries, want 2 distinct", entries)
	}
	if got := r.l.Stats().AsyncCoalesced; got != 0 {
		t.Fatalf("AsyncCoalesced = %d, want 0 across address spaces", got)
	}
}

// TestPostAsyncDiscontiguousGenRunStaysDistinct pins the generation
// clause at the ring level: a range-adjacent inval whose run does not
// start exactly at the tail's GenHi+1 must stay a separate entry — a
// merged entry with a gen hole could ack generations it never flushed.
func TestPostAsyncDiscontiguousGenRunStaysDistinct(t *testing.T) {
	r := newRig(false)
	r.recordApplier()
	r.bus.Controller(2).SetMasked(true)
	r.eng.Go("initiator", func(p *sim.Proc) {
		r.l.PostAsync(p, 0, mach.MaskOf(2),
			Inval{ASID: 1, Start: 0x1000, End: 0x2000, Stride: 4096, GenLo: 1, GenHi: 2}, nil)
		r.l.PostAsync(p, 0, mach.MaskOf(2),
			Inval{ASID: 1, Start: 0x2000, End: 0x3000, Stride: 4096, GenLo: 4, GenHi: 4}, nil)
	})
	r.eng.Run()
	if entries, _ := r.l.FabricPending(2); entries != 2 {
		t.Fatalf("pending = %d entries, want 2 distinct", entries)
	}
	if got := r.l.Stats().AsyncCoalesced; got != 0 {
		t.Fatalf("AsyncCoalesced = %d, want 0 across a generation hole", got)
	}
}
