// Package smp models the Linux SMP function-call layer used to run code on
// remote CPUs: per-CPU call-single queues (CSQ), per-initiator
// call-function data (CFD), multicast IPI kicks, and the acknowledgement
// the initiator spin-waits on.
//
// The cacheline layout of these structures is explicit, because the paper's
// cacheline-consolidation optimization (§3.3) works entirely at this level:
//
//   - baseline layout: four distinct contended line types per shootdown —
//     the per-CPU lazy-mode/TLB-state line, the flush-info line (on the
//     initiator's stack), the CFD line, and the CSQ head line;
//   - consolidated layout: the lazy-mode indication shares a line with the
//     CSQ head (they are accessed back to back), and the flush info is
//     inlined into the CFD so both fit one line.
//
// The latency difference between the layouts is produced by the MESI model
// in internal/cache, not by constants in this package.
package smp

import (
	"fmt"

	"shootdown/internal/apic"
	"shootdown/internal/cache"
	"shootdown/internal/fault"
	"shootdown/internal/mach"
	"shootdown/internal/race"
	"shootdown/internal/sim"
)

// MaxKickRetries bounds the exponential-backoff re-kick sequence of the
// shootdown recovery path: after this many timed-out retries the
// initiator degrades outstanding requests to a full flush (losing
// precision, never correctness) and keeps re-kicking at the capped
// timeout until the burst-bounded fabric delivers. See kernel.WaitRequests.
const MaxKickRetries = 3

// clusterAckThreshold is the machine width above which acknowledgement
// stores are aggregated onto per-cluster lines. 128 CPUs keeps every
// topology the paper's experiments use (and the old fixed-width mask
// supported) on the exact per-request ack layout.
const clusterAckThreshold = 128

// Degradable is a request payload that can widen itself to a full TLB
// flush. The recovery path invokes it when precise-range retries keep
// timing out: a full flush subsumes any range, so over-flushing under
// suspected IPI loss trades performance for unconditional coherence.
type Degradable interface {
	DegradeToFull()
}

// HandlerFunc runs on the target CPU in interrupt context. p is the target
// CPU's process; payload is the request payload.
type HandlerFunc func(p *sim.Proc, target mach.CPU, payload any)

// Request is one in-flight remote function call (one CFD entry).
type Request struct {
	// Fn is invoked on the target in IRQ context.
	Fn HandlerFunc
	// Payload is the argument (e.g. the TLB flush info).
	Payload any
	// AckEarly instructs the responder to acknowledge on IRQ entry, before
	// running Fn (paper §3.2). The initiator sets it only when safe.
	AckEarly bool

	target   mach.CPU
	cfdLine  *cache.Line
	ackLine  *cache.Line // where the ack store/spin-read traffic lands
	infoLine *cache.Line // nil under the consolidated layout
	acked    bool
	doneCond *sim.Cond
	onDone   func()
	// hb is the request's happens-before sync object (non-nil only when a
	// race detector is attached): released at queue time and at ack time,
	// acquired on IRQ receipt and when the initiator observes the ack.
	hb *race.Sync
}

// Target returns the CPU this request is queued for.
func (r *Request) Target() mach.CPU { return r.target }

// Done reports whether the target has acknowledged. This is the racy-read
// predicate spin loops poll; the happens-before edge is only established
// when the observer calls Layer.ObserveDone, mirroring how the real
// initiator's spin read gains ordering only from the CFD line's
// acquire semantics on the final poll.
func (r *Request) Done() bool { return r.acked }

type perCPU struct {
	// csqLine is the call-single-queue head cacheline.
	csqLine *cache.Line
	// lazyLine holds the lazy-mode indication initiators read before
	// sending. Baseline layout: it shares a line with genLine (the
	// frequently written per-CPU TLB state), causing false sharing.
	// Consolidated layout: it shares the CSQ head line instead, since the
	// two are accessed back to back (§3.3).
	lazyLine *cache.Line
	// genLine is the per-CPU TLB-generation state the responder's flush
	// function writes. Baseline: aliases lazyLine. Consolidated: private.
	genLine *cache.Line
	queue   []*Request
}

// Stats counts SMP-layer activity.
type Stats struct {
	// Calls is the number of queued remote requests.
	Calls uint64
	// Kicks is the number of CPUs actually sent an IPI.
	Kicks uint64
	// KicksElided counts targets whose CSQ was already non-empty, so no
	// IPI was needed (Linux's empty->non-empty optimization).
	KicksElided uint64
	// EarlyAcks / LateAcks split acknowledgements by protocol.
	EarlyAcks, LateAcks uint64
	// AckTimeouts counts initiator waits that hit the IPIAckTimeout
	// deadline with unacknowledged requests outstanding (recovery path).
	AckTimeouts uint64
	// Rekicks counts re-sent shootdown kicks after a timeout.
	Rekicks uint64
	// DegradedFulls counts recovery escalations that widened outstanding
	// precise flushes to full flushes after MaxKickRetries timeouts.
	DegradedFulls uint64
	// MaxAckStall is the longest cycles any initiator spent waiting for
	// acknowledgements on the recovery path.
	MaxAckStall uint64

	// AsyncPosts counts ring entries posted by async initiators;
	// AsyncCoalesced of those merged into the previous in-ring entry,
	// and AsyncOverflows collapsed a full ring to flush_all instead.
	AsyncPosts, AsyncCoalesced, AsyncOverflows uint64
	// AsyncKicks / AsyncKicksElided split posts by whether the target's
	// ring was idle (doorbell needed) or already pending.
	AsyncKicks, AsyncKicksElided uint64
	// AsyncBatches counts posted initiator batches; AsyncDrains counts
	// responder drains that found work, AsyncApplied the entries they
	// applied, and AsyncFullDrains the drains widened by flush_all.
	AsyncBatches, AsyncDrains, AsyncApplied, AsyncFullDrains uint64
	// AsyncRekicks / AsyncDegrades count the watchdog's generation-gap
	// recovery actions (the rekick/degrade ladder for batched acks).
	AsyncRekicks, AsyncDegrades uint64
	// ClusterAckStores counts acknowledgement stores routed to a shared
	// per-cluster line instead of the request's own CFD line (wide
	// machines only; see clusterAckThreshold).
	ClusterAckStores uint64
}

// Layer is the machine-wide SMP function-call subsystem.
type Layer struct {
	eng          *sim.Engine
	topo         mach.Topology
	cost         *mach.CostModel
	dir          *cache.Directory
	bus          *apic.Bus
	consolidated bool
	// hwMessage models the §6 hardware extension: the IPI carries the
	// function and payload, so queueing and reading them costs no
	// shared-memory cacheline traffic (the ack stays in memory).
	hwMessage bool

	percpu []*perCPU
	// cfd[i][t] is the CFD line initiator i uses for target t, allocated
	// lazily (Linux: per-CPU cfd_data with a per-target csd each).
	cfd [][]*cache.Line
	// clusterAcks enables per-cluster acknowledgement aggregation on
	// machines wider than clusterAckThreshold CPUs: responders in one
	// x2APIC cluster store their acks to a shared per-(initiator,
	// cluster) line instead of each request's own CFD line, so a
	// broadcast initiator spin-reads ~targets/ClusterSize lines instead
	// of one per target. Done()/doneCond control flow is untouched —
	// only which cacheline the ack store and the spin reads are charged
	// to changes, which keeps every narrower machine byte-identical.
	clusterAcks bool
	// ackAgg[i][c] is the shared ack line initiator i polls for targets
	// in cluster c, allocated lazily like cfd.
	ackAgg [][]*cache.Line
	stats  Stats

	// fabric is the per-CPU asynchronous invalidation ring state (see
	// fabric.go); drainApply is the kernel-registered batch applier that
	// enables the tier, batches the outstanding posted batches, and
	// wdCond parks the generation-gap watchdog proc (started lazily,
	// only under an armed fault plane).
	fabric     []*fabricCPU
	drainApply func(p *sim.Proc, cpu mach.CPU, batch []Inval)
	batches    []*AsyncBatch
	wdCond     *sim.Cond
	// brokenCoalesce plants the deliberately broken coalescing variant
	// (BrokenCoalesceShrink): merges adopt the newer entry's end instead
	// of the max, shrinking invalidation coverage. Cross-validation only.
	brokenCoalesce bool

	// rt, when non-nil, receives happens-before events for every modeled
	// synchronization edge in this layer (see internal/race).
	rt *race.Detector

	// fault, when non-nil, injects acknowledgement delays (and arms the
	// recovery path in the kernel's wait loop).
	fault *fault.Plane

	// AckHook, when non-nil, observes every acknowledgement (used by the
	// trace recorder).
	AckHook func(target mach.CPU, early bool)
	// CallHook, when non-nil, observes every request as it is queued in
	// CallMany (used by the sanitizer to track IPI protocol obligations).
	// It must be purely observational.
	CallHook func(from mach.CPU, req *Request)
}

// New builds the SMP layer. consolidated selects the paper's cacheline
// layout (§3.3) instead of the baseline Linux layout; hwMessage enables
// the §6 message-carrying-IPI hardware model.
func New(eng *sim.Engine, topo mach.Topology, cost *mach.CostModel, dir *cache.Directory, bus *apic.Bus, consolidated, hwMessage bool) *Layer {
	n := topo.NumCPUs()
	l := &Layer{
		eng: eng, topo: topo, cost: cost, dir: dir, bus: bus,
		consolidated: consolidated, hwMessage: hwMessage,
		percpu:      make([]*perCPU, n),
		cfd:         make([][]*cache.Line, n),
		clusterAcks: n > clusterAckThreshold,
		ackAgg:      make([][]*cache.Line, n),
		fabric:      make([]*fabricCPU, n),
	}
	for i := range l.fabric {
		l.fabric[i] = &fabricCPU{}
	}
	for i := 0; i < n; i++ {
		pc := &perCPU{}
		pc.csqLine = dir.NewLine(fmt.Sprintf("csq[%d]", i))
		if consolidated {
			pc.lazyLine = pc.csqLine
			pc.genLine = dir.NewLine(fmt.Sprintf("tlbgen[%d]", i))
		} else {
			pc.lazyLine = dir.NewLine(fmt.Sprintf("tlbstate[%d]", i))
			pc.genLine = pc.lazyLine
		}
		l.percpu[i] = pc
	}
	return l
}

// Consolidated reports which cacheline layout is active.
func (l *Layer) Consolidated() bool { return l.consolidated }

// SetRaceDetector attaches (or, with nil, detaches) the happens-before
// checker. All reported events are observational; timing is unchanged.
func (l *Layer) SetRaceDetector(d *race.Detector) { l.rt = d }

// SetFaultPlane attaches the fault plane; nil detaches it.
func (l *Layer) SetFaultPlane(pl *fault.Plane) { l.fault = pl }

// ObserveDone records that the caller has observed req's acknowledgement,
// establishing the ack→observe happens-before edge. Wait loops call it
// once per request after their final Done poll.
func (l *Layer) ObserveDone(req *Request) {
	if l.rt != nil {
		l.rt.Acquire(req.hb)
	}
}

func (l *Layer) csqVar(cpu mach.CPU) string { return fmt.Sprintf("csq[%d]", cpu) }

// Stats returns a snapshot of the counters.
func (l *Layer) Stats() Stats { return l.stats }

// LazyLine returns the line holding cpu's lazy-mode indication; the
// shootdown protocol charges a read of it when filtering the target mask.
func (l *Layer) LazyLine(cpu mach.CPU) *cache.Line {
	return l.percpu[cpu].lazyLine
}

// GenLine returns the line holding cpu's frequently written per-CPU TLB
// generation state; the responder's flush function charges writes to it.
func (l *Layer) GenLine(cpu mach.CPU) *cache.Line {
	return l.percpu[cpu].genLine
}

// CSQLine returns the call-single-queue head line of cpu (exposed so tests
// and reports can inspect layout aliasing).
func (l *Layer) CSQLine(cpu mach.CPU) *cache.Line {
	return l.percpu[cpu].csqLine
}

func (l *Layer) cfdLine(from, to mach.CPU) *cache.Line {
	row := l.cfd[from]
	if row == nil {
		row = make([]*cache.Line, l.topo.NumCPUs())
		l.cfd[from] = row
	}
	if row[to] == nil {
		row[to] = l.dir.NewLine(fmt.Sprintf("cfd[%d->%d]", from, to))
	}
	return row[to]
}

// ClusterAcksEnabled reports whether ack stores are aggregated onto
// per-cluster lines (wide machines only).
func (l *Layer) ClusterAcksEnabled() bool { return l.clusterAcks }

// ackLine returns the cacheline the ack traffic between from and to is
// charged to: the request's own CFD line normally, the shared
// per-(initiator, cluster) line under aggregation.
func (l *Layer) ackLine(from, to mach.CPU) *cache.Line {
	if !l.clusterAcks {
		return l.cfdLine(from, to)
	}
	cluster := int(to) / apic.ClusterSize
	row := l.ackAgg[from]
	if row == nil {
		row = make([]*cache.Line, (l.topo.NumCPUs()+apic.ClusterSize-1)/apic.ClusterSize)
		l.ackAgg[from] = row
	}
	if row[cluster] == nil {
		row[cluster] = l.dir.NewLine(fmt.Sprintf("ackagg[%d->c%d]", from, cluster))
	}
	return row[cluster]
}

// CallMany queues fn on every CPU in targets and kicks the ones whose
// queues were empty. It returns the per-target requests; the caller decides
// when to WaitAll (this split is what lets the shootdown protocol overlap
// the local flush with IPI delivery, §3.1).
//
// infoLine is the flush-info cacheline under the baseline layout; pass nil
// to model inlined info (consolidated layout). The initiator must not be in
// targets.
func (l *Layer) CallMany(p *sim.Proc, from mach.CPU, targets mach.CPUMask, fn HandlerFunc, payload any, ackEarly bool, infoLine *cache.Line) []*Request {
	if targets.Has(from) {
		panic("smp: initiator cannot target itself")
	}
	cpus := targets.CPUs()
	if len(cpus) == 0 {
		return nil
	}
	reqs := make([]*Request, 0, len(cpus))
	var kick mach.CPUMask
	for _, t := range cpus {
		req := &Request{
			Fn: fn, Payload: payload, AckEarly: ackEarly,
			target:   t,
			cfdLine:  l.cfdLine(from, t),
			ackLine:  l.ackLine(from, t),
			infoLine: infoLine,
			doneCond: l.eng.NewCond(),
		}
		l.stats.Calls++
		if l.CallHook != nil {
			l.CallHook(from, req)
		}
		if l.rt != nil {
			// Send edge: everything the initiator did before queueing
			// happens-before the responder's handler.
			req.hb = l.rt.NewSync(fmt.Sprintf("ipi[%d->%d]", from, t))
			l.rt.Release(req.hb)
		}
		pc := l.percpu[t]
		if l.hwMessage {
			// §6 hardware model: the IPI carries fn+payload, so neither
			// the CFD write nor the CSQ enqueue touches shared memory;
			// every target gets its own message-carrying IPI.
			req.infoLine = nil
			pc.queue = append(pc.queue, req)
			kick.Set(t)
			l.stats.Kicks++
			reqs = append(reqs, req)
			continue
		}
		// Write the CFD (function + payload, and inlined info when
		// consolidated). Under the baseline layout the info line was
		// already written by the caller.
		p.Delay(l.dir.Write(from, req.cfdLine))
		// Enqueue on the target's call-single queue. The llist_add is
		// atomic: whether the list was empty is learned from its result,
		// so the emptiness check happens after the RMW completes.
		p.Delay(l.dir.Atomic(from, pc.csqLine))
		if l.rt != nil {
			l.rt.AtomicRMW(l.csqVar(t))
		}
		wasEmpty := len(pc.queue) == 0
		pc.queue = append(pc.queue, req)
		if wasEmpty {
			kick.Set(t)
			l.stats.Kicks++
		} else {
			l.stats.KicksElided++
		}
		reqs = append(reqs, req)
	}
	l.bus.SendIPI(p, from, kick, apic.VectorCallFunction)
	return reqs
}

// WaitAll spins until every request is acknowledged, charging the
// spin-wait reads of each CFD line.
func (l *Layer) WaitAll(p *sim.Proc, from mach.CPU, reqs []*Request) {
	for _, r := range reqs {
		for !r.Done() {
			p.Delay(l.cost.SpinPoll)
			r.doneCond.Wait(p)
			// The ack invalidated our copy; the next poll re-reads it.
			p.Delay(l.dir.Read(from, r.ackLine))
		}
		l.ObserveDone(r)
	}
}

// WaitFirst blocks until at least one of reqs is acknowledged (used by the
// in-context/concurrent interaction, §3.4: the initiator flushes user PTEs
// until the first remote ack arrives). It returns immediately if one is
// already done.
func (l *Layer) WaitFirst(p *sim.Proc, from mach.CPU, reqs []*Request) {
	if len(reqs) == 0 {
		return
	}
	for _, r := range reqs {
		if r.Done() {
			l.ObserveDone(r)
			return
		}
	}
	// Register a shared waiter on every request; the first ack wins.
	woken := false
	ch := l.eng.NewCond()
	cancel := make([]func(), 0, len(reqs))
	for _, r := range reqs {
		cancel = append(cancel, r.AddDoneHook(func() {
			if !woken {
				woken = true
				ch.Broadcast()
			}
		}))
	}
	ch.Wait(p)
	for _, c := range cancel {
		c()
	}
	for _, r := range reqs {
		if r.Done() {
			l.ObserveDone(r)
		}
	}
	p.Delay(l.dir.Read(from, reqs[0].ackLine))
}

// AddDoneHook registers fn to run when the request is acknowledged. The
// returned cancel function detaches it. Hooks run on the engine goroutine
// at ack time, before the request's cond is broadcast.
func (r *Request) AddDoneHook(fn func()) (cancel func()) {
	prev := r.onDone
	r.onDone = func() {
		if prev != nil {
			prev()
		}
		fn()
	}
	cancelled := false
	return func() {
		if cancelled {
			return
		}
		cancelled = true
		// Rebuild the chain without fn by restoring prev; later hooks
		// were layered on top of us, so only the common LIFO
		// (register/cancel in stack order) pattern is supported.
		r.onDone = prev
	}
}

// AnyDone reports whether any request has been acknowledged.
func AnyDone(reqs []*Request) bool {
	for _, r := range reqs {
		if r.Done() {
			return true
		}
	}
	return false
}

// AllDone reports whether every request has been acknowledged.
func AllDone(reqs []*Request) bool {
	for _, r := range reqs {
		if !r.Done() {
			return false
		}
	}
	return true
}

// HandleIPI drains the target CPU's call-single queue; the kernel's IRQ
// dispatch calls it when VectorCallFunction arrives. It charges all
// cacheline traffic and runs each request's handler, acknowledging before
// or after the handler according to the request's AckEarly flag.
func (l *Layer) HandleIPI(p *sim.Proc, cpu mach.CPU) {
	pc := l.percpu[cpu]
	if !l.hwMessage {
		// Pop the whole queue (llist_del_all on the head line).
		p.Delay(l.dir.Atomic(cpu, pc.csqLine))
		if l.rt != nil {
			l.rt.AtomicRMW(l.csqVar(cpu))
		}
	}
	queue := pc.queue
	pc.queue = nil
	for _, req := range queue {
		if l.rt != nil {
			// Receive edge: the handler sees everything that
			// happened-before the initiator queued this request.
			l.rt.Acquire(req.hb)
		}
		if !l.hwMessage {
			// Read the CFD to learn fn + payload.
			p.Delay(l.dir.Read(cpu, req.cfdLine))
			if req.infoLine != nil {
				// Baseline layout: the flush info lives on its own line.
				p.Delay(l.dir.Read(cpu, req.infoLine))
			}
		}
		if req.AckEarly {
			l.ack(p, cpu, req)
			l.stats.EarlyAcks++
			req.Fn(p, cpu, req.Payload)
		} else {
			req.Fn(p, cpu, req.Payload)
			l.ack(p, cpu, req)
			l.stats.LateAcks++
		}
	}
}

// PendingOn returns the number of queued requests for cpu (for tests).
// The length peek is an acquire-side load of the call-single queue, like
// llist_empty's READ_ONCE.
func (l *Layer) PendingOn(cpu mach.CPU) int {
	if l.rt != nil {
		l.rt.AtomicLoad(l.csqVar(cpu))
	}
	return len(l.percpu[cpu].queue)
}

// Rekick re-sends the shootdown kick for every unacknowledged request in
// reqs (recovery path: the initiator's ack wait timed out, so a kick may
// have been lost in the fabric or elided against a queue another
// initiator's lost kick stranded). The requests are still on their CSQs —
// only the doorbell is re-rung, so a spurious rekick of a merely slow
// responder is harmless (the extra IRQ finds an empty queue).
func (l *Layer) Rekick(p *sim.Proc, from mach.CPU, reqs []*Request) {
	var kick mach.CPUMask
	for _, r := range reqs {
		if r.Done() {
			continue
		}
		if l.rt != nil {
			// Re-release the send edge: anything the initiator wrote since
			// the original send (e.g. a degraded payload) happens-before
			// the responder's handler run triggered by this kick.
			l.rt.Release(r.hb)
		}
		kick.Set(r.target)
	}
	if kick.Empty() {
		return
	}
	l.stats.Rekicks += uint64(kick.Count())
	l.bus.SendIPI(p, from, kick, apic.VectorCallFunction)
}

// DegradeToFull widens the payload of every unacknowledged Degradable
// request in reqs to a full flush (recovery escalation after
// MaxKickRetries timed-out retries). Counted once per escalation event.
func (l *Layer) DegradeToFull(reqs []*Request) {
	degraded := false
	for _, r := range reqs {
		if r.Done() {
			continue
		}
		if d, ok := r.Payload.(Degradable); ok {
			d.DegradeToFull()
			degraded = true
		}
	}
	if degraded {
		l.stats.DegradedFulls++
	}
}

// NoteAckTimeout records one timed-out acknowledgement wait.
func (l *Layer) NoteAckTimeout() { l.stats.AckTimeouts++ }

// NoteAckStall records the total cycles one initiator spent waiting for
// acks on the recovery path; the maximum is reported.
func (l *Layer) NoteAckStall(cycles uint64) {
	if cycles > l.stats.MaxAckStall {
		l.stats.MaxAckStall = cycles
	}
}

func (l *Layer) ack(p *sim.Proc, cpu mach.CPU, req *Request) {
	// Fault plane: the responder reached the ack but its store is slow to
	// land (write-buffer drain, SMI between handler and store).
	if d := l.fault.AckDelay(); d > 0 {
		p.Delay(d)
	}
	p.Delay(l.dir.Write(cpu, req.ackLine))
	if req.ackLine != req.cfdLine {
		l.stats.ClusterAckStores++
	}
	if l.rt != nil {
		// Ack edge: everything the responder did before acknowledging
		// happens-before the initiator's ObserveDone. Under early ack this
		// release fires before the flush — which is exactly the ordering
		// the detector then judges.
		l.rt.Release(req.hb)
	}
	req.acked = true
	if l.AckHook != nil {
		l.AckHook(cpu, req.AckEarly)
	}
	if req.onDone != nil {
		req.onDone()
	}
	req.doneCond.Broadcast()
}
