package smp

import (
	"testing"

	"shootdown/internal/fault"
	"shootdown/internal/mach"
	"shootdown/internal/race"
	"shootdown/internal/sim"
)

// fullable is a Degradable test payload recording the escalation.
type fullable struct{ widened bool }

func (f *fullable) DegradeToFull() { f.widened = true }

// queueStranded queues one request on a masked target (the kick is never
// delivered) and returns it: the raw material of the recovery path.
func (r *rig) queueStranded(t *testing.T, target mach.CPU, payload any) *Request {
	t.Helper()
	r.bus.Controller(target).SetMasked(true)
	var req *Request
	r.eng.Go("strander", func(p *sim.Proc) {
		reqs := r.l.CallMany(p, 0, mach.MaskOf(target), func(*sim.Proc, mach.CPU, any) {}, payload, false, nil)
		req = reqs[0]
	})
	r.eng.Run()
	if req == nil || req.Done() {
		t.Fatalf("stranded request missing or already acked")
	}
	return req
}

func TestRekickResendsOnlyUnacked(t *testing.T) {
	r := newRig(false)
	req := r.queueStranded(t, 2, nil)
	if req.Target() != 2 {
		t.Fatalf("Target() = %d, want 2", req.Target())
	}
	kicksBefore := r.l.Stats().Kicks
	// Unmask and rekick: the re-rung doorbell must deliver the stranded
	// request to a live responder.
	r.bus.Controller(2).SetMasked(false)
	r.spawnResponder(2, 1)
	r.eng.Go("recover", func(p *sim.Proc) {
		r.l.Rekick(p, 0, []*Request{req})
	})
	r.eng.Run()
	if !req.Done() {
		t.Fatal("rekicked request never acknowledged")
	}
	s := r.l.Stats()
	if s.Rekicks != 1 {
		t.Fatalf("Rekicks = %d, want 1", s.Rekicks)
	}
	if s.Kicks != kicksBefore {
		t.Fatalf("Rekick counted as a fresh kick: %d -> %d", kicksBefore, s.Kicks)
	}
	// A rekick of fully acked requests is a no-op: no IPI, no counter.
	r.eng.Go("noop", func(p *sim.Proc) {
		r.l.Rekick(p, 0, []*Request{req})
	})
	r.eng.Run()
	if got := r.l.Stats().Rekicks; got != 1 {
		t.Fatalf("no-op rekick bumped Rekicks to %d", got)
	}
}

func TestDegradeToFullWidensUnackedOnly(t *testing.T) {
	r := newRig(false)
	pay := &fullable{}
	req := r.queueStranded(t, 2, pay)
	// Non-degradable payloads are skipped without counting.
	r.l.DegradeToFull([]*Request{{Payload: "opaque"}})
	if got := r.l.Stats().DegradedFulls; got != 0 {
		t.Fatalf("non-degradable payload counted an escalation: %d", got)
	}
	// One escalation event, however many requests it widens.
	r.l.DegradeToFull([]*Request{req})
	if !pay.widened {
		t.Fatal("unacked Degradable payload was not widened")
	}
	if got := r.l.Stats().DegradedFulls; got != 1 {
		t.Fatalf("DegradedFulls = %d, want 1", got)
	}
	// Acked requests keep their precise payload.
	req.acked = true
	pay.widened = false
	r.l.DegradeToFull([]*Request{req})
	if pay.widened {
		t.Fatal("acked request was degraded")
	}
	if got := r.l.Stats().DegradedFulls; got != 1 {
		t.Fatalf("degrading an acked request counted: %d", got)
	}
}

func TestRecoveryCounters(t *testing.T) {
	r := newRig(false)
	r.l.NoteAckTimeout()
	r.l.NoteAckTimeout()
	r.l.NoteAckStall(700)
	r.l.NoteAckStall(300) // below the max: ignored
	s := r.l.Stats()
	if s.AckTimeouts != 2 {
		t.Fatalf("AckTimeouts = %d, want 2", s.AckTimeouts)
	}
	if s.MaxAckStall != 700 {
		t.Fatalf("MaxAckStall = %d, want 700 (max, not sum)", s.MaxAckStall)
	}
}

func TestAckDelayFaultSlowsAck(t *testing.T) {
	ackAt := func(pl *fault.Plane) sim.Time {
		r := newRig(false)
		r.l.SetFaultPlane(pl)
		r.spawnResponder(2, 1)
		var at sim.Time
		r.eng.Go("init", func(p *sim.Proc) {
			reqs := r.l.CallMany(p, 0, mach.MaskOf(2), func(*sim.Proc, mach.CPU, any) {}, nil, false, nil)
			r.l.WaitAll(p, 0, reqs)
			at = p.Now()
		})
		r.eng.Run()
		return at
	}
	clean := ackAt(nil)
	slow := ackAt(fault.New(9, fault.Spec{AckDelayP: 1, AckDelayMax: 50_000}))
	if slow <= clean {
		t.Fatalf("ack-delay fault did not slow the ack: %d vs %d", slow, clean)
	}
}

func TestRaceDetectorEdgesOnRekick(t *testing.T) {
	// With the happens-before checker attached, the full
	// strand→rekick→handle→ack exchange must model clean sync edges.
	r := newRig(true)
	if !r.l.Consolidated() {
		t.Fatal("Consolidated() lost the layout flag")
	}
	d := race.New(r.eng)
	r.l.SetRaceDetector(d)
	req := r.queueStranded(t, 2, nil)
	r.bus.Controller(2).SetMasked(false)
	r.spawnResponder(2, 1)
	r.eng.Go("recover", func(p *sim.Proc) {
		r.l.Rekick(p, 0, []*Request{req})
		for !req.Done() {
			req.doneCond.Wait(p)
		}
		r.l.ObserveDone(req)
	})
	r.eng.Run()
	if sum := d.Finish(); !sum.OK() {
		t.Fatalf("race model flagged the rekick protocol: %+v", sum.Races)
	}
}
