// The asynchronous shootdown fabric: per-CPU bounded rings of pending
// invalidation ranges, drained in whole batches by the responder and
// acknowledged by sequence number, so initiators enqueue, kick once, and
// return without spinning (production pattern: charmos mem/tlb.c,
// ROADMAP item 1).
//
// Protocol, per target CPU:
//
//   - the initiator appends an Inval to the target's ring with one
//     atomic RMW on the ring head line (llist-style), coalescing into
//     the previous entry when the address space, stride and generation
//     run allow it; a full ring collapses to the flush_all flag instead
//     of blocking (graceful degradation, counted);
//   - each post takes the next per-target sequence number; the batch
//     completes when every target's acked sequence has reached the
//     sequence it was posted;
//   - the target drains the *whole* ring at IRQ entry and return-to-user
//     (one RMW pops everything), applies the batch through the
//     kernel-registered applier, then stores the highest observed
//     sequence to its ack line — ack-after-apply is the invariant the
//     BrokenAckBeforeDrain variant violates and the sanitizer catches;
//   - a lost kick leaves the acked sequence lagging the posted one; the
//     watchdog proc (armed only under an injected-fault schedule with
//     recovery enabled) detects the generation gap at the ack deadline,
//     re-kicks with exponential backoff, and after MaxKickRetries
//     degrades the target's ring to flush_all — the sync recovery
//     ladder (kernel.WaitRequests) extended to batched acks.
//
// Happens-before edges mirror the sync protocol: post releases the
// target's ring sync (the drain acquires it: everything before the post
// is visible to the applier), and the ack releases the target's ack
// sync (batch completion acquires every target's: the initiator-side
// completion callback sees all responder flushes).
package smp

import (
	"fmt"

	"shootdown/internal/apic"
	"shootdown/internal/cache"
	"shootdown/internal/mach"
	"shootdown/internal/race"
	"shootdown/internal/sim"
)

// RingSize bounds each CPU's pending-invalidation ring. Overflow never
// blocks the initiator: it collapses the ring to a full flush.
const RingSize = 16

// Inval is one pending invalidation range in a CPU's ring. The smp
// layer sits below mm, so the address space travels as an opaque tag
// (the applier knows the concrete type) plus its ID for coalescing.
type Inval struct {
	// AS is the initiator's address-space handle (opaque here).
	AS any
	// ASID is the address space's stable ID; entries coalesce only
	// within one address space.
	ASID uint32
	// Start and End delimit the virtual range; Stride is the PTE
	// granularity in bytes.
	Start, End, Stride uint64
	// GenLo and GenHi are the mm TLB generations this entry covers:
	// every generation in [GenLo, GenHi] changed only pages inside
	// [Start, End), so applying the range advances the target's local
	// generation to GenHi exactly.
	GenLo, GenHi uint64
	// Full requests a full TLB flush (span over threshold, or the
	// ring's flush_all collapse).
	Full bool
}

// fabricCPU is one CPU's invalidation ring. The ring head (entries,
// posted sequence, flush_all flag) lives on ringLine — one contended
// line per target, versus the sync protocol's CFD+CSQ pair — and the
// acked sequence lives on ackLine, written by the responder and read by
// the watchdog's gap check.
type fabricCPU struct {
	ringLine *cache.Line
	ackLine  *cache.Line

	fabRing     []Inval
	fabPostSeq  uint64
	fabAckSeq   uint64
	fabFlushAll bool

	// ringSync is the post→drain happens-before edge; ackSync the
	// ack→completion edge. Allocated on demand when a detector attaches.
	ringSync *race.Sync
	ackSync  *race.Sync
}

// AsyncBatch tracks one posted batch until every target acks.
type AsyncBatch struct {
	from    mach.CPU
	targets []mach.CPU
	seqs    []uint64
	// kickedAt is the time of the last (re)kick; the watchdog deadline
	// rebases on it so the capped-backoff phase keeps real intervals.
	kickedAt sim.Time
	retries  int
	done     bool
	// onComplete runs (in the last-acking responder's context) when all
	// targets have acked; it must be observational plus initiator-side
	// bookkeeping only.
	onComplete func(p *sim.Proc)
}

// Done reports whether every target has acknowledged the batch.
func (b *AsyncBatch) Done() bool { return b.done }

// Retries reports how many watchdog re-kicks the batch needed.
func (b *AsyncBatch) Retries() int { return b.retries }

func (l *Layer) fabRingVar(cpu mach.CPU) string { return fmt.Sprintf("fabring[%d]", cpu) }
func (l *Layer) fabPostVar(cpu mach.CPU) string { return fmt.Sprintf("fabpost[%d]", cpu) }
func (l *Layer) fabAckVar(cpu mach.CPU) string  { return fmt.Sprintf("faback[%d]", cpu) }
func (l *Layer) fabFullVar(cpu mach.CPU) string { return fmt.Sprintf("fabfull[%d]", cpu) }

// SetDrainApplier registers the kernel-side batch applier and enables
// the asynchronous fabric. The applier runs on the draining CPU's proc
// and performs the actual TLB invalidations; nil disables the fabric.
func (l *Layer) SetDrainApplier(fn func(p *sim.Proc, cpu mach.CPU, batch []Inval)) {
	l.drainApply = fn
}

// AsyncEnabled reports whether a drain applier is registered.
func (l *Layer) AsyncEnabled() bool { return l.drainApply != nil }

// SetBrokenCoalesceShrink plants the deliberately broken coalescing
// variant: merged ring entries adopt the newer inval's end instead of
// the max of both, silently shrinking coverage. The static fabproof
// tier and the dynamic shadow-TLB oracle must both convict it.
func (l *Layer) SetBrokenCoalesceShrink(on bool) { l.brokenCoalesce = on }

func (l *Layer) fabricOf(cpu mach.CPU) *fabricCPU {
	fc := l.fabric[cpu]
	if fc.ringLine == nil {
		fc.ringLine = l.dir.NewLine(fmt.Sprintf("fabring[%d]", cpu))
		fc.ackLine = l.dir.NewLine(fmt.Sprintf("faback[%d]", cpu))
	}
	if l.rt != nil && fc.ringSync == nil {
		fc.ringSync = l.rt.NewSync(fmt.Sprintf("fabring-sync[%d]", cpu))
		fc.ackSync = l.rt.NewSync(fmt.Sprintf("faback-sync[%d]", cpu))
	}
	return fc
}

// canCoalesce reports whether next can merge into prev in-ring: same
// address space and stride, a contiguous generation run, and adjacent
// or overlapping ranges (so the merged span still covers every
// generation in the run exactly). Full entries absorb anything newer
// for the same address space.
func canCoalesce(prev, next *Inval) bool {
	if prev.ASID != next.ASID || prev.GenHi+1 != next.GenLo {
		return false
	}
	if prev.Full {
		return true
	}
	if next.Full || prev.Stride != next.Stride {
		return false
	}
	return next.Start <= prev.End && prev.Start <= next.End
}

// mergeInval folds next into prev in-ring. Soundness contract (proved
// statically by fabproof): on every path the merged entry either goes
// full or keeps [min(Start), max(End)) — covering both inputs — while
// GenHi advances to next's run.
func (l *Layer) mergeInval(prev, next *Inval) {
	prev.GenHi = next.GenHi
	if prev.Full {
		return
	}
	if next.Full {
		prev.Full = true
		return
	}
	if l.brokenCoalesce {
		// BROKEN-coalesce: adopt next's end instead of the max. When
		// next ends below prev the merged entry silently stops covering
		// prev's tail, and a stale translation survives the drain.
		prev.End = next.End
		if next.Start < prev.Start {
			prev.Start = next.Start
		}
		return
	}
	if next.Start < prev.Start {
		prev.Start = next.Start
	}
	if next.End > prev.End {
		prev.End = next.End
	}
}

// PostAsync enqueues inv on every CPU in targets, kicks the targets
// whose rings were empty, registers onComplete against the posted
// sequences, and returns without waiting — the initiator never spins.
// The initiator must not be in targets (it flushes locally, inline).
func (l *Layer) PostAsync(p *sim.Proc, from mach.CPU, targets mach.CPUMask, inv Inval, onComplete func(p *sim.Proc)) *AsyncBatch {
	if targets.Has(from) {
		panic("smp: async initiator cannot target itself")
	}
	if l.drainApply == nil {
		panic("smp: PostAsync without a drain applier")
	}
	cpus := targets.CPUs()
	b := &AsyncBatch{
		from: from, targets: cpus,
		seqs:     make([]uint64, len(cpus)),
		kickedAt: l.eng.Now(),
	}
	if len(cpus) == 0 {
		b.done = true
		if onComplete != nil {
			onComplete(p)
		}
		return b
	}
	b.onComplete = onComplete
	var kick mach.CPUMask
	for i, t := range cpus {
		fc := l.fabricOf(t)
		// One RMW on the ring head publishes the entry, the new posted
		// sequence, and (on overflow) the flush_all flag together.
		p.Delay(l.dir.Atomic(from, fc.ringLine))
		if l.rt != nil {
			l.rt.AtomicRMW(l.fabRingVar(t))
			l.rt.AtomicRMW(l.fabPostVar(t))
			l.rt.Release(fc.ringSync)
		}
		wasIdle := len(fc.fabRing) == 0 && !fc.fabFlushAll
		fc.fabPostSeq++
		b.seqs[i] = fc.fabPostSeq
		l.stats.AsyncPosts++
		// Guard shapes are deliberately interval-friendly: the ring
		// length is named once and compared against the named bound, so
		// the fabproof tier can prove the append stays under RingSize
		// and that every posted sequence lands in the ring, a merge, or
		// the flush_all collapse.
		n := len(fc.fabRing)
		if n > 0 && canCoalesce(&fc.fabRing[n-1], &inv) {
			l.mergeInval(&fc.fabRing[n-1], &inv)
			l.stats.AsyncCoalesced++
		} else if n >= RingSize {
			// Overflow: collapse to flush_all instead of blocking. The
			// precise entries stay queued but the drain widens to a full
			// flush, which subsumes them.
			if l.rt != nil {
				l.rt.AtomicRMW(l.fabFullVar(t))
			}
			fc.fabFlushAll = true
			l.stats.AsyncOverflows++
		} else {
			fc.fabRing = append(fc.fabRing, inv)
		}
		if wasIdle {
			kick.Set(t)
			l.stats.AsyncKicks++
		} else {
			l.stats.AsyncKicksElided++
		}
	}
	l.stats.AsyncBatches++
	l.batches = append(l.batches, b)
	l.bus.SendIPI(p, from, kick, apic.VectorCallFunction)
	if l.fault.RecoveryArmed() {
		l.ensureWatchdog()
		l.wdCond.Broadcast()
	}
	return b
}

// FabricPending returns the number of ring entries queued for cpu plus
// whether the flush_all flag is set (the acquire-side peek tests use).
func (l *Layer) FabricPending(cpu mach.CPU) (entries int, flushAll bool) {
	fc := l.fabricOf(cpu)
	if l.rt != nil {
		l.rt.AtomicLoad(l.fabRingVar(cpu))
		l.rt.AtomicLoad(l.fabFullVar(cpu))
	}
	return len(fc.fabRing), fc.fabFlushAll
}

// FabricSeqs returns cpu's posted and acked fabric sequences.
func (l *Layer) FabricSeqs(cpu mach.CPU) (posted, acked uint64) {
	fc := l.fabricOf(cpu)
	if l.rt != nil {
		l.rt.AtomicLoad(l.fabPostVar(cpu))
		l.rt.AtomicLoad(l.fabAckVar(cpu))
	}
	return fc.fabPostSeq, fc.fabAckSeq
}

// DrainFabric pops cpu's whole ring, applies the batch through the
// registered applier, and acks the highest observed sequence. The
// kernel calls it at IRQ entry and on return-to-user; an empty ring
// costs nothing (the emptiness peek is an acquire-side load).
func (l *Layer) DrainFabric(p *sim.Proc, cpu mach.CPU) {
	if l.drainApply == nil {
		return
	}
	fc := l.fabricOf(cpu)
	if l.rt != nil {
		l.rt.AtomicLoad(l.fabRingVar(cpu))
		l.rt.AtomicLoad(l.fabFullVar(cpu))
	}
	if len(fc.fabRing) == 0 && !fc.fabFlushAll {
		return
	}
	// llist_del_all-style pop of the whole ring: entries, flush_all and
	// the posted sequence come off in one RMW on the head line.
	p.Delay(l.dir.Atomic(cpu, fc.ringLine))
	if l.rt != nil {
		l.rt.AtomicRMW(l.fabRingVar(cpu))
		l.rt.AtomicRMW(l.fabFullVar(cpu))
		l.rt.AtomicLoad(l.fabPostVar(cpu))
		l.rt.Acquire(fc.ringSync)
	}
	batch := fc.fabRing
	fc.fabRing = nil
	seq := fc.fabPostSeq
	if fc.fabFlushAll {
		// The collapse widens the whole batch to one full flush.
		fc.fabFlushAll = false
		batch = []Inval{{Full: true, GenHi: maxGenHi(batch)}}
		l.stats.AsyncFullDrains++
	}
	l.stats.AsyncDrains++
	l.stats.AsyncApplied += uint64(len(batch))
	// Apply before acking: the ack asserts the invalidations landed. A
	// broken applier that defers the work (core's BrokenAckBeforeDrain)
	// turns the store below into a premature ack — the exact protocol
	// violation the sanitizer's deferred obligation windows catch.
	l.drainApply(p, cpu, batch)
	if d := l.fault.AckDelay(); d > 0 {
		p.Delay(d)
	}
	p.Delay(l.dir.Write(cpu, fc.ackLine))
	if l.rt != nil {
		l.rt.AtomicStore(l.fabAckVar(cpu))
		l.rt.Release(fc.ackSync)
	}
	fc.fabAckSeq = seq
	l.completeBatches(p)
}

func maxGenHi(batch []Inval) uint64 {
	var max uint64
	for _, inv := range batch {
		if inv.GenHi > max {
			max = inv.GenHi
		}
	}
	return max
}

// completeBatches retires every outstanding batch whose targets have
// all acked, firing completion callbacks in posting order. The list is
// repartitioned before any callback runs, so a callback that posts new
// work cannot corrupt the scan.
func (l *Layer) completeBatches(p *sim.Proc) {
	var completed []*AsyncBatch
	live := l.batches[:0]
	for _, b := range l.batches {
		if l.batchAcked(b) {
			completed = append(completed, b)
		} else {
			live = append(live, b)
		}
	}
	l.batches = live
	for _, b := range completed {
		if l.rt != nil {
			// Completion joins every target's ack edge: the callback
			// (and the initiator-side window close it performs) is
			// ordered after all responder flushes.
			for _, t := range b.targets {
				l.rt.Acquire(l.fabricOf(t).ackSync)
			}
		}
		b.done = true
		if b.onComplete != nil {
			b.onComplete(p)
		}
	}
	if len(completed) > 0 && l.wdCond != nil {
		l.wdCond.Broadcast()
	}
}

func (l *Layer) batchAcked(b *AsyncBatch) bool {
	for i, t := range b.targets {
		fc := l.fabricOf(t)
		if l.rt != nil {
			l.rt.AtomicLoad(l.fabAckVar(t))
		}
		if fc.fabAckSeq < b.seqs[i] {
			return false
		}
	}
	return true
}

// OutstandingBatches reports the number of posted batches not yet fully
// acked (tests and the experiments sweep read it at quiesce).
func (l *Layer) OutstandingBatches() int { return len(l.batches) }

// ensureWatchdog starts the generation-gap watchdog proc once. It only
// runs under an armed fault plane: fault-free runs never pay for it.
func (l *Layer) ensureWatchdog() {
	if l.wdCond != nil {
		return
	}
	l.wdCond = l.eng.NewCond()
	l.eng.Go("smp-fabric-watchdog", l.watchdog)
}

// watchdog is the async arm of the recovery ladder. Where the sync
// initiator detects loss by its own spin-wait timing out
// (kernel.WaitRequests), nobody spins on the fabric — so a dedicated
// proc watches for posted-vs-acked sequence gaps that outlive the ack
// deadline, re-kicks with exponential backoff, and after MaxKickRetries
// collapses the lagging target's ring to flush_all (degrade: a full
// flush subsumes whatever the lost kicks stranded). The burst-bounded
// drop fault guarantees a re-kick eventually lands.
func (l *Layer) watchdog(p *sim.Proc) {
	for {
		if len(l.batches) == 0 {
			// Park without a timer so a finished run can quiesce.
			l.wdCond.Wait(p)
			continue
		}
		var due *AsyncBatch
		earliest := sim.Time(^uint64(0))
		for _, b := range l.batches {
			d := sim.Time(uint64(b.kickedAt) + (l.cost.IPIAckTimeout << uint(b.retries)))
			if d < earliest {
				earliest, due = d, b
			}
		}
		now := l.eng.Now()
		if now < earliest {
			l.wdCond.WaitTimeout(p, uint64(earliest-now))
			continue
		}
		l.rekickBatch(p, due)
	}
}

// rekickBatch re-rings the doorbell of every target still lagging b's
// posted sequence; past MaxKickRetries it first sets the target's
// flush_all flag so the eventually-delivered drain over-flushes rather
// than trusting re-posted precision.
func (l *Layer) rekickBatch(p *sim.Proc, b *AsyncBatch) {
	l.stats.AckTimeouts++
	var kick mach.CPUMask
	degraded := false
	for i, t := range b.targets {
		fc := l.fabricOf(t)
		if l.rt != nil {
			l.rt.AtomicLoad(l.fabAckVar(t))
		}
		if fc.fabAckSeq >= b.seqs[i] {
			continue
		}
		if b.retries >= MaxKickRetries && !fc.fabFlushAll {
			p.Delay(l.dir.Atomic(b.from, fc.ringLine))
			if l.rt != nil {
				l.rt.AtomicRMW(l.fabFullVar(t))
				l.rt.Release(fc.ringSync)
			}
			fc.fabFlushAll = true
			degraded = true
		}
		if l.rt != nil {
			// Re-release the post edge: the (possibly degraded) ring
			// state happens-before the drain this kick triggers.
			l.rt.Release(fc.ringSync)
		}
		kick.Set(t)
	}
	if degraded {
		l.stats.AsyncDegrades++
	}
	if kick.Empty() {
		// Everything acked between the deadline and now; completion will
		// retire the batch on the next drain.
		l.completeBatches(p)
		return
	}
	if b.retries < MaxKickRetries {
		b.retries++
	}
	b.kickedAt = l.eng.Now()
	l.stats.AsyncRekicks += uint64(kick.Count())
	l.bus.SendIPI(p, b.from, kick, apic.VectorCallFunction)
}
