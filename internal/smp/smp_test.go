package smp

import (
	"testing"

	"shootdown/internal/apic"
	"shootdown/internal/cache"
	"shootdown/internal/mach"
	"shootdown/internal/sim"
)

type rig struct {
	eng  *sim.Engine
	topo mach.Topology
	cost *mach.CostModel
	dir  *cache.Directory
	bus  *apic.Bus
	l    *Layer
}

func newRig(consolidated bool) *rig {
	eng := sim.NewEngine(1)
	topo := mach.DefaultTopology()
	cost := mach.DefaultCosts()
	dir := cache.New(topo, cost)
	bus := apic.NewBus(eng, topo, cost)
	return &rig{eng, topo, cost, dir, bus, New(eng, topo, cost, dir, bus, consolidated, false)}
}

// spawnResponder runs a minimal IRQ loop on cpu: it sleeps until the APIC
// notifies, then drains the call-function queue. It exits after handling
// `quota` IPIs.
func (r *rig) spawnResponder(cpu mach.CPU, quota int) {
	ctrl := r.bus.Controller(cpu)
	irqArrived := r.eng.NewCond()
	ctrl.SetNotify(func() { irqArrived.Broadcast() })
	r.eng.Go("responder", func(p *sim.Proc) {
		for handled := 0; handled < quota; {
			if !ctrl.Deliverable() {
				irqArrived.Wait(p)
				continue
			}
			if _, ok := ctrl.Take(); ok {
				r.l.HandleIPI(p, cpu)
				handled++
			}
		}
	})
}

func TestCallManyRoundTrip(t *testing.T) {
	r := newRig(false)
	r.spawnResponder(2, 1)
	var ranOn mach.CPU = -1
	var payloadGot any
	done := false
	r.eng.Go("initiator", func(p *sim.Proc) {
		reqs := r.l.CallMany(p, 0, mach.MaskOf(2), func(p *sim.Proc, cpu mach.CPU, payload any) {
			ranOn = cpu
			payloadGot = payload
		}, "info", false, r.dir.NewLine("info"))
		r.l.WaitAll(p, 0, reqs)
		done = AllDone(reqs)
	})
	r.eng.Run()
	if ranOn != 2 || payloadGot != "info" {
		t.Fatalf("handler ran on %d with %v", ranOn, payloadGot)
	}
	if !done {
		t.Fatal("WaitAll returned before ack")
	}
	s := r.l.Stats()
	if s.Calls != 1 || s.Kicks != 1 || s.LateAcks != 1 || s.EarlyAcks != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEarlyAckOrdering(t *testing.T) {
	// With AckEarly, the initiator's wait can complete before the handler
	// body finishes (the handler models a slow flush by delaying).
	run := func(early bool) (waitDone, fnDone sim.Time) {
		r := newRig(false)
		r.spawnResponder(2, 1)
		r.eng.Go("initiator", func(p *sim.Proc) {
			reqs := r.l.CallMany(p, 0, mach.MaskOf(2), func(p *sim.Proc, cpu mach.CPU, _ any) {
				p.Delay(5000) // slow remote flush
				fnDone = p.Now()
			}, nil, early, nil)
			r.l.WaitAll(p, 0, reqs)
			waitDone = p.Now()
		})
		r.eng.Run()
		return
	}
	lateWait, lateFn := run(false)
	earlyWait, earlyFn := run(true)
	if lateWait < lateFn {
		t.Fatalf("late ack: initiator done at %d before handler at %d", lateWait, lateFn)
	}
	if earlyWait >= earlyFn {
		t.Fatalf("early ack: initiator done at %d, not before handler end %d", earlyWait, earlyFn)
	}
	if earlyWait >= lateWait {
		t.Fatalf("early ack did not speed up initiator: %d vs %d", earlyWait, lateWait)
	}
}

func TestKickElidedWhenQueueBusy(t *testing.T) {
	r := newRig(false)
	// Responder that never runs: queue stays populated.
	r.bus.Controller(2).SetMasked(true)
	r.eng.Go("a", func(p *sim.Proc) {
		r.l.CallMany(p, 0, mach.MaskOf(2), func(*sim.Proc, mach.CPU, any) {}, nil, false, nil)
	})
	r.eng.Go("b", func(p *sim.Proc) {
		p.Delay(10)
		r.l.CallMany(p, 1, mach.MaskOf(2), func(*sim.Proc, mach.CPU, any) {}, nil, false, nil)
	})
	r.eng.Run()
	s := r.l.Stats()
	if s.Kicks != 1 || s.KicksElided != 1 {
		t.Fatalf("stats = %+v, want 1 kick + 1 elided", s)
	}
	if r.l.PendingOn(2) != 2 {
		t.Fatalf("pending = %d", r.l.PendingOn(2))
	}
}

func TestConsolidatedLayoutSharesLines(t *testing.T) {
	rc := newRig(true)
	if rc.l.LazyLine(3) != rc.l.CSQLine(3) {
		t.Fatal("consolidated: lazy line must alias the CSQ head line")
	}
	if rc.l.LazyLine(3) == rc.l.GenLine(3) {
		t.Fatal("consolidated: gen state must be off the lazy line")
	}
	rb := newRig(false)
	if rb.l.LazyLine(3) != rb.l.GenLine(3) {
		t.Fatal("baseline: lazy flag and gen state share a line (false sharing)")
	}
	// Compare total cacheline transfers of a full shootdown-shaped
	// exchange under both layouts: the consolidated layout must move
	// fewer lines (paper Figure 4).
	countTransfers := func(consolidated bool) uint64 {
		r := newRig(consolidated)
		r.spawnResponder(30, 1)
		var infoLine *cache.Line
		if !consolidated {
			infoLine = r.dir.NewLine("flush_info")
		}
		handler := func(p *sim.Proc, cpu mach.CPU, _ any) {
			// The flush function updates per-CPU TLB generation state.
			p.Delay(r.dir.Write(cpu, r.l.GenLine(cpu)))
		}
		r.eng.Go("init", func(p *sim.Proc) {
			// Responder recently wrote its own per-CPU TLB state.
			p.Delay(r.dir.Write(30, r.l.GenLine(30)))
			// Initiator checks lazy mode, then queues.
			p.Delay(r.dir.Read(0, r.l.LazyLine(30)))
			if infoLine != nil {
				p.Delay(r.dir.Write(0, infoLine))
			}
			reqs := r.l.CallMany(p, 0, mach.MaskOf(30), handler, nil, false, infoLine)
			r.l.WaitAll(p, 0, reqs)
		})
		r.eng.Run()
		return r.dir.Stats().Transfers()
	}
	base := countTransfers(false)
	cons := countTransfers(true)
	if cons >= base {
		t.Fatalf("consolidated transfers (%d) not fewer than baseline (%d)", cons, base)
	}
}

func TestWaitFirst(t *testing.T) {
	r := newRig(false)
	r.spawnResponder(2, 1)  // same socket: acks first
	r.spawnResponder(30, 1) // cross socket: acks later
	var firstAt, allAt sim.Time
	r.eng.Go("init", func(p *sim.Proc) {
		reqs := r.l.CallMany(p, 0, mach.MaskOf(2, 30), func(p *sim.Proc, _ mach.CPU, _ any) {
			p.Delay(500)
		}, nil, false, nil)
		r.l.WaitFirst(p, 0, reqs)
		firstAt = p.Now()
		if !AnyDone(reqs) {
			t.Error("WaitFirst returned with nothing done")
		}
		r.l.WaitAll(p, 0, reqs)
		allAt = p.Now()
	})
	r.eng.Run()
	if firstAt >= allAt {
		t.Fatalf("WaitFirst at %d, WaitAll at %d", firstAt, allAt)
	}
}

func TestWaitFirstImmediateWhenDone(t *testing.T) {
	r := newRig(false)
	r.spawnResponder(2, 1)
	r.eng.Go("init", func(p *sim.Proc) {
		reqs := r.l.CallMany(p, 0, mach.MaskOf(2), func(*sim.Proc, mach.CPU, any) {}, nil, false, nil)
		r.l.WaitAll(p, 0, reqs)
		before := p.Now()
		r.l.WaitFirst(p, 0, reqs) // already done: must not block
		if p.Now() != before {
			t.Error("WaitFirst blocked on completed requests")
		}
	})
	r.eng.Run()
}

func TestSelfTargetPanics(t *testing.T) {
	r := newRig(false)
	r.eng.Go("init", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("self-target did not panic")
			}
		}()
		r.l.CallMany(p, 0, mach.MaskOf(0), func(*sim.Proc, mach.CPU, any) {}, nil, false, nil)
	})
	r.eng.Run()
}

func TestHWMessageIPIRoundTrip(t *testing.T) {
	// The §6 hardware model: the IPI carries fn+payload, so queueing and
	// reading cost no shared cacheline traffic and every target is kicked.
	eng := sim.NewEngine(1)
	topo := mach.DefaultTopology()
	cost := mach.DefaultCosts()
	dir := cache.New(topo, cost)
	bus := apic.NewBus(eng, topo, cost)
	r := &rig{eng, topo, cost, dir, bus, New(eng, topo, cost, dir, bus, false, true)}
	r.spawnResponder(2, 1)
	r.spawnResponder(4, 1)
	ran := map[mach.CPU]bool{}
	r.eng.Go("init", func(p *sim.Proc) {
		reqs := r.l.CallMany(p, 0, mach.MaskOf(2, 4), func(_ *sim.Proc, cpu mach.CPU, _ any) {
			ran[cpu] = true
		}, nil, false, nil)
		r.l.WaitAll(p, 0, reqs)
	})
	r.eng.Run()
	if len(ran) != 2 {
		t.Fatalf("handled on %d CPUs, want 2: %v", len(ran), ran)
	}
	if s := r.l.Stats(); s.Kicks != 2 || s.KicksElided != 0 {
		t.Fatalf("stats = %+v: hwMessage kicks every target", s)
	}
}

func TestAnyAllDone(t *testing.T) {
	pending, acked := &Request{}, &Request{acked: true}
	if AnyDone([]*Request{pending}) || !AnyDone([]*Request{pending, acked}) {
		t.Fatal("AnyDone wrong")
	}
	if AllDone([]*Request{pending, acked}) || !AllDone([]*Request{acked}) {
		t.Fatal("AllDone wrong")
	}
}

func TestMultiTargetAllHandled(t *testing.T) {
	r := newRig(false)
	targets := mach.MaskOf(2, 4, 6, 30, 32)
	for _, c := range targets.CPUs() {
		r.spawnResponder(c, 1)
	}
	ran := map[mach.CPU]bool{}
	r.eng.Go("init", func(p *sim.Proc) {
		reqs := r.l.CallMany(p, 0, targets, func(_ *sim.Proc, cpu mach.CPU, _ any) {
			ran[cpu] = true
		}, nil, false, nil)
		r.l.WaitAll(p, 0, reqs)
	})
	r.eng.Run()
	if len(ran) != 5 {
		t.Fatalf("handled on %d CPUs, want 5: %v", len(ran), ran)
	}
}
