package syscalls_test

import (
	"testing"

	"shootdown/internal/core"
	"shootdown/internal/kernel"
	"shootdown/internal/mm"
	"shootdown/internal/syscalls"
)

func TestForkThroughKernel(t *testing.T) {
	eng, k, f := newWorld(t, core.Config{ConcurrentFlush: true, EarlyAck: true})
	parent := k.NewAddressSpace()

	var childAS *mm.AddressSpace
	var vaShared uint64
	phase := 0

	// A sibling thread of the parent keeps its TLB warm with the page
	// that fork will write-protect: fork must shoot it down.
	sibling := &kernel.Task{Name: "sibling", MM: parent, Fn: func(ctx *kernel.Ctx) {
		for vaShared == 0 {
			ctx.UserRun(1000)
		}
		if err := ctx.Touch(vaShared, mm.AccessWrite); err != nil {
			t.Error(err)
		}
		for phase < 1 {
			ctx.UserRun(1000)
		}
		// After fork, our cached writable translation must be gone: the
		// write below must fault (CoW), not sail through a stale entry.
		if err := ctx.Touch(vaShared, mm.AccessWrite); err != nil {
			t.Error(err)
		}
		phase = 2
	}}
	k.CPU(2).Spawn(sibling)

	main := &kernel.Task{Name: "main", MM: parent, Fn: func(ctx *kernel.Ctx) {
		v, err := syscalls.MMap(ctx, 4*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if err := ctx.Touch(v.Start, mm.AccessWrite); err != nil {
			t.Error(err)
		}
		vaShared = v.Start
		ctx.UserRun(20_000) // let the sibling cache the translation
		child, err := syscalls.Fork(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		childAS = child
		phase = 1
		for phase < 2 {
			ctx.UserRun(1000)
		}
	}}
	k.CPU(0).Spawn(main)
	eng.Run()
	if childAS == nil || phase != 2 {
		t.Fatalf("fork flow incomplete: child=%v phase=%d", childAS != nil, phase)
	}
	if childAS.ID == parent.ID {
		t.Fatal("child shares parent ID")
	}
	// Fork's write-protect flush was a shootdown (the sibling was active).
	if f.Stats().Shootdowns == 0 {
		t.Fatalf("fork produced no shootdown: %+v", f.Stats())
	}
	// The sibling's write after fork went through CoW: parent and child
	// now map different frames at vaShared.
	pp, _, err := parent.PT.Lookup(vaShared)
	if err != nil {
		t.Fatal(err)
	}
	cp, _, err := childAS.PT.Lookup(vaShared)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Frame == cp.Frame {
		t.Fatal("parent write did not break CoW sharing")
	}
}

func TestForkChildRunsIndependently(t *testing.T) {
	eng, k, _ := newWorld(t, core.Baseline())
	parent := k.NewAddressSpace()
	var childTask *kernel.Task
	var v *mm.VMA

	main := &kernel.Task{Name: "parent", MM: parent, Fn: func(ctx *kernel.Ctx) {
		var err error
		v, err = syscalls.MMap(ctx, 4*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
		if err != nil {
			t.Error(err)
			return
		}
		ctx.Touch(v.Start, mm.AccessWrite)
		child, err := syscalls.Fork(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		// Schedule a thread in the child's address space on another CPU.
		childTask = &kernel.Task{Name: "child", MM: child, Fn: func(cc *kernel.Ctx) {
			// The child reads the CoW page (shared frame), then writes it
			// (private copy).
			if err := cc.Touch(v.Start, mm.AccessRead); err != nil {
				t.Error(err)
			}
			if err := cc.Touch(v.Start, mm.AccessWrite); err != nil {
				t.Error(err)
			}
			pc, _, _ := child.PT.Lookup(v.Start)
			pp, _, _ := parent.PT.Lookup(v.Start)
			if pc.Frame == pp.Frame {
				t.Error("child write did not get a private copy")
			}
		}}
		k.CPU(4).Spawn(childTask)
	}}
	k.CPU(0).Spawn(main)
	eng.Run()
	if childTask == nil || !childTask.Done() {
		t.Fatal("child task did not run")
	}
}
