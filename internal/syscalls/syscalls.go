// Package syscalls implements the memory-management system calls the
// paper's workloads exercise — mmap, munmap, mprotect, madvise(DONTNEED),
// msync and fdatasync — on top of the kernel, mm and shootdown layers.
//
// Each call charges realistic entry/exit costs (including the PTI
// trampoline in safe mode), takes mmap_sem, mutates the address space, and
// hands the resulting flush obligation to the shootdown protocol. The
// calls the paper identifies as batching-eligible (§4.2: msync, munmap,
// madvise(MADV_DONTNEED)) mark a batched section when batching is enabled:
// during such a call the thread is guaranteed not to touch user mappings,
// so concurrent initiators may skip IPIs to it and queue deferred flushes,
// which the section executes before the mmap_sem release barrier.
package syscalls

import (
	"shootdown/internal/kernel"
	"shootdown/internal/mm"
	"shootdown/internal/pagetable"
)

// MMap creates a mapping of length bytes and returns its VMA. No pages are
// populated; first touches fault them in.
func MMap(ctx *kernel.Ctx, length uint64, prot mm.Prot, kind mm.Kind, file *mm.File, off uint64) (*mm.VMA, error) {
	ctx.EnterSyscall()
	defer ctx.ExitSyscall()
	as := ctx.MM()
	lockWrite(ctx, as)
	defer unlockWrite(ctx, as)
	ctx.P.Delay(ctx.K.Cost.SyscallWork)
	return as.MMap(length, prot, kind, file, off)
}

// Munmap removes [start, start+length), flushing all TLBs. Page tables may
// be freed, which suppresses early acknowledgement for this shootdown.
func Munmap(ctx *kernel.Ctx, start, length uint64) error {
	ctx.EnterSyscall()
	defer ctx.ExitSyscall()
	as := ctx.MM()
	lockWrite(ctx, as)
	defer unlockWrite(ctx, as)
	batched := enterBatched(ctx)
	defer exitBatched(ctx, batched)

	ctx.P.Delay(ctx.K.Cost.SyscallWork)
	fr, err := as.Unmap(start, length)
	if err != nil {
		return err
	}
	chargePTEs(ctx, fr.Pages)
	ctx.K.Flusher().FlushAfter(ctx, as, fr)
	return nil
}

// MadviseDontneed drops the pages of [start, start+length), keeping the
// VMA (madvise(MADV_DONTNEED)). This is the syscall the paper's
// microbenchmarks (Figures 5-8) time.
func MadviseDontneed(ctx *kernel.Ctx, start, length uint64) error {
	ctx.EnterSyscall()
	defer ctx.ExitSyscall()
	as := ctx.MM()
	// madvise takes mmap_sem for read; DONTNEED does not change VMAs.
	lockRead(ctx, as)
	defer unlockRead(ctx, as)
	batched := enterBatched(ctx)
	defer exitBatched(ctx, batched)

	ctx.P.Delay(ctx.K.Cost.SyscallWork)
	fr, err := as.MadviseDontneed(start, length)
	if err != nil {
		return err
	}
	chargePTEs(ctx, fr.Pages)
	ctx.K.Flusher().FlushAfter(ctx, as, fr)
	return nil
}

// Mprotect changes the protection of [start, start+length).
func Mprotect(ctx *kernel.Ctx, start, length uint64, prot mm.Prot) error {
	ctx.EnterSyscall()
	defer ctx.ExitSyscall()
	as := ctx.MM()
	lockWrite(ctx, as)
	defer unlockWrite(ctx, as)

	ctx.P.Delay(ctx.K.Cost.SyscallWork)
	fr, err := as.Protect(start, length, prot)
	if err != nil {
		return err
	}
	chargePTEs(ctx, fr.Pages)
	ctx.K.Flusher().FlushAfter(ctx, as, fr)
	return nil
}

// Msync writes back the dirty pages of file within [start, start+length)
// of the calling address space, write-protecting their PTEs and flushing
// TLBs (MS_SYNC semantics for a shared mapping).
func Msync(ctx *kernel.Ctx, start, length uint64) error {
	ctx.EnterSyscall()
	defer ctx.ExitSyscall()
	as := ctx.MM()
	lockRead(ctx, as)
	defer unlockRead(ctx, as)
	batched := enterBatched(ctx)
	defer exitBatched(ctx, batched)

	v := as.FindVMA(start)
	if v == nil || v.File == nil {
		return mm.ErrNoVMA
	}
	ctx.P.Delay(ctx.K.Cost.SyscallWork)
	startIdx := v.FileOff / pagetable.PageSize4K
	endIdx := (v.FileOff + length + pagetable.PageSize4K - 1) / pagetable.PageSize4K
	return writeback(ctx, v.File, startIdx, endIdx)
}

// Fdatasync writes back every dirty page of file mapped by the caller
// (the Sysbench workload's persistence point).
func Fdatasync(ctx *kernel.Ctx, file *mm.File) error {
	ctx.EnterSyscall()
	defer ctx.ExitSyscall()
	as := ctx.MM()
	lockRead(ctx, as)
	defer unlockRead(ctx, as)
	batched := enterBatched(ctx)
	defer exitBatched(ctx, batched)

	ctx.P.Delay(ctx.K.Cost.SyscallWork)
	return writeback(ctx, file, 0, file.Pages())
}

// writeback cleans file's dirty pages in [startIdx, endIdx): each page is
// written to storage, its PTEs in every mapper are write-protected, and a
// single merged flush per mapper covers the changed range.
func writeback(ctx *kernel.Ctx, file *mm.File, startIdx, endIdx uint64) error {
	idxs := file.TakeDirty(startIdx, endIdx)
	if len(idxs) == 0 {
		return nil
	}
	// Storage write: the paper uses emulated persistent memory, so the
	// cost is a page copy per dirty page. The copies run with IRQs
	// enabled — a long writeback must not stall other CPUs' shootdowns.
	ctx.CPU.KernelRun(ctx.P, uint64(len(idxs))*ctx.K.Cost.CopyPage4K)

	for _, mapper := range file.Mappers() {
		// Write-protect the dirty PTEs, then coalesce the cleaned pages
		// into merged runs, as the kernel's clean/record writeback path
		// does with its mmu_gather: random scattered pages produce many
		// small selective shootdowns, while adjacent pages — sequential
		// or not — merge into one.
		var pages []mm.FlushRange
		for _, idx := range idxs {
			for _, va := range mapper.FilePageVAs(file, idx) {
				if !mapper.WriteProtectPage(va) {
					continue
				}
				ctx.P.Delay(ctx.K.Cost.PTEUpdate)
				pages = append(pages, mm.FlushRange{
					Start: va, End: va + pagetable.PageSize4K,
					Stride: pagetable.Size4K, Pages: 1,
				})
			}
		}
		for _, fr := range mm.Coalesce(pages) {
			ctx.K.Flusher().FlushAfter(ctx, mapper, fr)
		}
	}
	return nil
}

func chargePTEs(ctx *kernel.Ctx, n int) {
	ctx.P.Delay(uint64(n) * ctx.K.Cost.PTEUpdate)
}

func lockRead(ctx *kernel.Ctx, as *mm.AddressSpace) {
	ctx.CPU.DownRead(ctx.P, as.MmapSem)
	ctx.P.Delay(ctx.K.Cost.RWSemUncontended)
}

func unlockRead(ctx *kernel.Ctx, as *mm.AddressSpace) {
	as.MmapSem.UpRead(ctx.P)
	ctx.P.Delay(ctx.K.Cost.RWSemUncontended)
}

func lockWrite(ctx *kernel.Ctx, as *mm.AddressSpace) {
	ctx.CPU.DownWrite(ctx.P, as.MmapSem)
	ctx.P.Delay(ctx.K.Cost.RWSemUncontended)
}

func unlockWrite(ctx *kernel.Ctx, as *mm.AddressSpace) {
	as.MmapSem.UpWrite(ctx.P)
	ctx.P.Delay(ctx.K.Cost.RWSemUncontended)
}

// enterBatched begins a §4.2 batched section when the protocol enables it.
func enterBatched(ctx *kernel.Ctx) bool {
	if !ctx.K.Flusher().BatchingEnabled() {
		return false
	}
	ctx.CPU.EnterBatchedSection(ctx.P)
	return true
}

// exitBatched drains queued deferred flushes before the caller releases
// mmap_sem — the paper's piggy-backed memory barrier.
func exitBatched(ctx *kernel.Ctx, batched bool) {
	if batched {
		ctx.CPU.ExitBatchedSection(ctx.P)
	}
}

// Fork clones the calling process's address space copy-on-write and
// returns the child address space (the caller schedules threads onto it).
// Fork write-protects every private writable page in the parent, which
// requires a TLB shootdown to every CPU running the parent — making fork
// itself one of the flush sources §4.1's CoW optimization downstream
// depends on.
func Fork(ctx *kernel.Ctx) (*mm.AddressSpace, error) {
	ctx.EnterSyscall()
	defer ctx.ExitSyscall()
	parent := ctx.MM()
	lockWrite(ctx, parent)
	defer unlockWrite(ctx, parent)

	ctx.P.Delay(ctx.K.Cost.SyscallWork)
	child, fr, st := ctx.K.ForkAddressSpace(parent)
	// Page-table duplication: one PTE write per copied entry, plus the
	// eager copies (huge private pages).
	chargePTEs(ctx, st.PTEs)
	ctx.P.Delay(uint64(st.VMAs) * ctx.K.Cost.VMAFind)
	if st.PagesCopied > 0 {
		ctx.CPU.KernelRun(ctx.P, uint64(st.PagesCopied)*ctx.K.Cost.CopyPage4K)
	}
	if !fr.Empty() {
		ctx.K.Flusher().FlushAfter(ctx, parent, fr)
	}
	return child, nil
}
