package syscalls_test

import (
	"errors"
	"testing"

	"shootdown/internal/core"
	"shootdown/internal/kernel"
	"shootdown/internal/mach"
	"shootdown/internal/mm"
	"shootdown/internal/pagetable"
	"shootdown/internal/sim"
	"shootdown/internal/syscalls"
)

const pg = pagetable.PageSize4K

func newWorld(t *testing.T, cfg core.Config) (*sim.Engine, *kernel.Kernel, *core.Flusher) {
	t.Helper()
	eng := sim.NewEngine(1)
	kcfg := kernel.DefaultConfig()
	kcfg.ConsolidatedCachelines = cfg.CachelineConsolidation
	k := kernel.New(eng, mach.DefaultTopology(), mach.DefaultCosts(), kcfg)
	f, err := core.NewFlusher(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k.SetFlusher(f)
	k.Start()
	return eng, k, f
}

// runOn runs fn as a task on cpu0 and drives the engine to completion.
func runOn(t *testing.T, k *kernel.Kernel, eng *sim.Engine, fn func(ctx *kernel.Ctx)) {
	t.Helper()
	as := k.NewAddressSpace()
	task := &kernel.Task{Name: "t", MM: as, Fn: fn}
	k.CPU(0).Spawn(task)
	eng.Run()
	if !task.Done() {
		t.Fatal("task did not complete")
	}
}

func TestMMapMunmapLifecycle(t *testing.T) {
	eng, k, _ := newWorld(t, core.Baseline())
	runOn(t, k, eng, func(ctx *kernel.Ctx) {
		v, err := syscalls.MMap(ctx, 8*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for i := uint64(0); i < 8; i++ {
			if err := ctx.Touch(v.Start+i*pg, mm.AccessWrite); err != nil {
				t.Error(err)
			}
		}
		if err := syscalls.Munmap(ctx, v.Start, v.Len()); err != nil {
			t.Error(err)
		}
		// Accessing the unmapped region faults.
		if err := ctx.Touch(v.Start, mm.AccessRead); !errors.Is(err, mm.ErrNoVMA) {
			t.Errorf("post-munmap access: %v", err)
		}
		// The local TLB holds nothing for the old range.
		if _, ok := ctx.CPU.TLB.Lookup(k.PCIDOf(ctx.MM(), true), v.Start); ok {
			t.Error("stale TLB entry survived munmap")
		}
	})
}

func TestMadviseKeepsVMA(t *testing.T) {
	eng, k, _ := newWorld(t, core.Baseline())
	runOn(t, k, eng, func(ctx *kernel.Ctx) {
		v, err := syscalls.MMap(ctx, 4*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
		if err != nil {
			t.Error(err)
			return
		}
		ctx.Touch(v.Start, mm.AccessWrite)
		if err := syscalls.MadviseDontneed(ctx, v.Start, 4*pg); err != nil {
			t.Error(err)
		}
		// Refault works (VMA intact) and yields a fresh zero page.
		if err := ctx.Touch(v.Start, mm.AccessWrite); err != nil {
			t.Error(err)
		}
	})
}

func TestMprotectEnforced(t *testing.T) {
	eng, k, _ := newWorld(t, core.Baseline())
	runOn(t, k, eng, func(ctx *kernel.Ctx) {
		v, err := syscalls.MMap(ctx, 4*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
		if err != nil {
			t.Error(err)
			return
		}
		ctx.Touch(v.Start, mm.AccessWrite)
		if err := syscalls.Mprotect(ctx, v.Start, 4*pg, mm.ProtRead); err != nil {
			t.Error(err)
		}
		if err := ctx.Touch(v.Start, mm.AccessWrite); !errors.Is(err, mm.ErrProt) {
			t.Errorf("write after mprotect(R): %v", err)
		}
		if err := ctx.Touch(v.Start, mm.AccessRead); err != nil {
			t.Errorf("read after mprotect(R): %v", err)
		}
	})
}

func TestMsyncCleansRange(t *testing.T) {
	eng, k, _ := newWorld(t, core.Baseline())
	file := k.NewFile("f", 8*pg)
	runOn(t, k, eng, func(ctx *kernel.Ctx) {
		v, err := syscalls.MMap(ctx, 8*pg, mm.ProtRead|mm.ProtWrite, mm.FileShared, file, 0)
		if err != nil {
			t.Error(err)
			return
		}
		for i := uint64(0); i < 8; i++ {
			ctx.Touch(v.Start+i*pg, mm.AccessWrite)
		}
		if file.DirtyCount() != 8 {
			t.Errorf("dirty = %d", file.DirtyCount())
		}
		if err := syscalls.Msync(ctx, v.Start, 4*pg); err != nil {
			t.Error(err)
		}
		if file.DirtyCount() != 4 {
			t.Errorf("dirty after partial msync = %d", file.DirtyCount())
		}
		if err := syscalls.Fdatasync(ctx, file); err != nil {
			t.Error(err)
		}
		if file.DirtyCount() != 0 {
			t.Errorf("dirty after fdatasync = %d", file.DirtyCount())
		}
	})
}

func TestMsyncRequiresFileVMA(t *testing.T) {
	eng, k, _ := newWorld(t, core.Baseline())
	runOn(t, k, eng, func(ctx *kernel.Ctx) {
		v, err := syscalls.MMap(ctx, 4*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if err := syscalls.Msync(ctx, v.Start, 4*pg); !errors.Is(err, mm.ErrNoVMA) {
			t.Errorf("msync on anon: %v", err)
		}
	})
}

func TestWritebackFlushesAreClustered(t *testing.T) {
	// Sequentially dirtied pages must merge into one flush; scattered
	// pages must produce one small shootdown each.
	count := func(dirtySeq bool) uint64 {
		eng, k, f := newWorld(t, core.Baseline())
		file := k.NewFile("f", 64*pg)
		runOn(t, k, eng, func(ctx *kernel.Ctx) {
			v, err := syscalls.MMap(ctx, 64*pg, mm.ProtRead|mm.ProtWrite, mm.FileShared, file, 0)
			if err != nil {
				t.Error(err)
				return
			}
			for i := uint64(0); i < 8; i++ {
				idx := i
				if !dirtySeq {
					idx = i * 7 // scattered
				}
				ctx.Touch(v.Start+idx*pg, mm.AccessWrite)
			}
			f.ResetStats()
			if err := syscalls.Fdatasync(ctx, file); err != nil {
				t.Error(err)
			}
		})
		return f.Stats().LocalOnly + f.Stats().Shootdowns
	}
	seq := count(true)
	scattered := count(false)
	if seq != 1 {
		t.Fatalf("sequential dirty pages produced %d flushes, want 1", seq)
	}
	if scattered != 8 {
		t.Fatalf("scattered dirty pages produced %d flushes, want 8", scattered)
	}
}

func TestBatchedSectionsMarkedOnlyWhenEnabled(t *testing.T) {
	for _, batching := range []bool{false, true} {
		cfg := core.Baseline()
		cfg.UserspaceBatching = batching
		eng, k, f := newWorld(t, cfg)
		file := k.NewFile("f", 8*pg)
		sawBatched := false
		as := k.NewAddressSpace()
		probeDone := false
		// A probe watches cpu0's batched flag while the syscall runs.
		eng.Go("probe", func(p *sim.Proc) {
			for !probeDone {
				if k.CPU(0).InBatchedSyscall() {
					sawBatched = true
				}
				p.Delay(200)
			}
		})
		task := &kernel.Task{Name: "t", MM: as, Fn: func(ctx *kernel.Ctx) {
			v, err := syscalls.MMap(ctx, 8*pg, mm.ProtRead|mm.ProtWrite, mm.FileShared, file, 0)
			if err != nil {
				t.Error(err)
				return
			}
			for i := uint64(0); i < 8; i++ {
				ctx.Touch(v.Start+i*pg, mm.AccessWrite)
			}
			if err := syscalls.Fdatasync(ctx, file); err != nil {
				t.Error(err)
			}
			probeDone = true
		}}
		k.CPU(0).Spawn(task)
		eng.Run()
		if sawBatched != batching {
			t.Fatalf("batching=%v but section observed=%v", batching, sawBatched)
		}
		_ = f
	}
}

func TestBadArgumentsPropagate(t *testing.T) {
	eng, k, _ := newWorld(t, core.Baseline())
	runOn(t, k, eng, func(ctx *kernel.Ctx) {
		if _, err := syscalls.MMap(ctx, 123, mm.ProtRead, mm.Anon, nil, 0); !errors.Is(err, mm.ErrBadRange) {
			t.Errorf("misaligned mmap: %v", err)
		}
		if err := syscalls.Munmap(ctx, 0x1000, 0); !errors.Is(err, mm.ErrBadRange) {
			t.Errorf("zero munmap: %v", err)
		}
		if err := syscalls.MadviseDontneed(ctx, 0xbad000, pg); !errors.Is(err, mm.ErrNoVMA) {
			t.Errorf("bad madvise: %v", err)
		}
		if err := syscalls.Mprotect(ctx, 0xbad000, pg, mm.ProtRead); !errors.Is(err, mm.ErrNoVMA) {
			t.Errorf("bad mprotect: %v", err)
		}
	})
}

func TestSyscallsLeaveUserMode(t *testing.T) {
	eng, k, _ := newWorld(t, core.Baseline())
	runOn(t, k, eng, func(ctx *kernel.Ctx) {
		if _, err := syscalls.MMap(ctx, 4*pg, mm.ProtRead, mm.Anon, nil, 0); err != nil {
			t.Error(err)
		}
		if !ctx.CPU.InUser() {
			t.Error("not back in user mode after syscall")
		}
		if ctx.MM().MmapSem.HeldForWrite() || ctx.MM().MmapSem.Readers() != 0 {
			t.Error("mmap_sem leaked")
		}
	})
}
