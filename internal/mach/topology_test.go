package mach

import (
	"testing"
	"testing/quick"
)

func TestDefaultTopology(t *testing.T) {
	topo := DefaultTopology()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := topo.NumCPUs(); got != 56 {
		t.Fatalf("NumCPUs = %d, want 56", got)
	}
	if topo.SocketOf(0) != 0 || topo.SocketOf(28) != 1 || topo.SocketOf(55) != 1 {
		t.Fatal("SocketOf wrong for boundary CPUs")
	}
	if topo.CoreOf(0) != 0 || topo.CoreOf(1) != 0 || topo.CoreOf(2) != 1 {
		t.Fatal("CoreOf wrong")
	}
	if topo.SMTSibling(0) != 1 || topo.SMTSibling(1) != 0 {
		t.Fatal("SMTSibling wrong")
	}
}

func TestDistance(t *testing.T) {
	topo := DefaultTopology()
	cases := []struct {
		a, b CPU
		want Distance
	}{
		{0, 0, DistSelf},
		{0, 1, DistSMT},
		{0, 2, DistSocket},
		{0, 27, DistSocket},
		{0, 28, DistCross},
		{3, 55, DistCross},
	}
	for _, c := range cases {
		if got := topo.DistanceBetween(c.a, c.b); got != c.want {
			t.Errorf("Distance(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	topo := DefaultTopology()
	f := func(a, b uint8) bool {
		x := CPU(int(a) % topo.NumCPUs())
		y := CPU(int(b) % topo.NumCPUs())
		return topo.DistanceBetween(x, y) == topo.DistanceBetween(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResponderFor(t *testing.T) {
	topo := DefaultTopology()
	init := CPU(0)
	if r := topo.ResponderFor(init, PlaceSameCore); !topo.SameCore(init, r) || r == init {
		t.Fatalf("same-core responder %d invalid", r)
	}
	if r := topo.ResponderFor(init, PlaceSameSocket); !topo.SameSocket(init, r) || topo.SameCore(init, r) {
		t.Fatalf("same-socket responder %d invalid", r)
	}
	if r := topo.ResponderFor(init, PlaceCrossSocket); topo.SameSocket(init, r) {
		t.Fatalf("cross-socket responder %d invalid", r)
	}
}

func TestCPUsOfSocket(t *testing.T) {
	topo := DefaultTopology()
	s0 := topo.CPUsOfSocket(0)
	if len(s0) != 28 || s0[0] != 0 || s0[27] != 27 {
		t.Fatalf("socket 0 CPUs wrong: %v", s0)
	}
	s1 := topo.CPUsOfSocket(1)
	if len(s1) != 28 || s1[0] != 28 {
		t.Fatalf("socket 1 CPUs wrong: %v", s1)
	}
}

func TestCostModelMonotonic(t *testing.T) {
	c := DefaultCosts()
	if !(c.L1Hit < c.SMTTransfer && c.SMTTransfer < c.SocketTransfer && c.SocketTransfer < c.CrossTransfer) {
		t.Fatal("cacheline transfer costs are not monotone in distance")
	}
	if !(c.IPIDeliverSMT <= c.IPIDeliverSocket && c.IPIDeliverSocket < c.IPIDeliverCross) {
		t.Fatal("IPI delivery costs are not monotone in distance")
	}
	if c.Invlpg >= c.InvpcidSingle {
		t.Fatal("INVLPG must be cheaper than single-address INVPCID (paper §3.4)")
	}
	if c.TransferCost(DistCross) != c.CrossTransfer {
		t.Fatal("TransferCost mapping wrong")
	}
	if c.IPIDeliverCost(DistSocket) != c.IPIDeliverSocket {
		t.Fatal("IPIDeliverCost mapping wrong")
	}
}

func TestCPUMaskBasics(t *testing.T) {
	var m CPUMask
	if !m.Empty() {
		t.Fatal("zero mask not empty")
	}
	m.Set(0)
	m.Set(63)
	m.Set(64)
	m.Set(127)
	if m.Count() != 4 {
		t.Fatalf("Count = %d, want 4", m.Count())
	}
	for _, c := range []CPU{0, 63, 64, 127} {
		if !m.Has(c) {
			t.Fatalf("missing cpu %d", c)
		}
	}
	m.Clear(63)
	if m.Has(63) || m.Count() != 3 {
		t.Fatal("Clear failed")
	}
	got := m.CPUs()
	want := []CPU{0, 64, 127}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CPUs() = %v, want %v", got, want)
		}
	}
	if s := MaskOf(1, 5).String(); s != "{1,5}" {
		t.Fatalf("String = %q", s)
	}
}

func TestCPUMaskSetOps(t *testing.T) {
	a := MaskOf(1, 2, 3, 70)
	b := MaskOf(2, 3, 4)
	if got := a.And(b); got.Count() != 2 || !got.Has(2) || !got.Has(3) {
		t.Fatalf("And = %v", got)
	}
	if got := a.Or(b); got.Count() != 5 {
		t.Fatalf("Or = %v", got)
	}
	if got := a.AndNot(b); got.Count() != 2 || !got.Has(1) || !got.Has(70) {
		t.Fatalf("AndNot = %v", got)
	}
	if got := a.Without(1); got.Has(1) || a.Count() != 4 {
		t.Fatalf("Without mutated receiver or failed: %v / %v", got, a)
	}
}

func TestCPUMaskProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		var a, b CPUMask
		for _, x := range xs {
			a.Set(CPU(x % 128))
		}
		for _, y := range ys {
			b.Set(CPU(y % 128))
		}
		union := a.Or(b)
		inter := a.And(b)
		// |A| + |B| == |A∪B| + |A∩B|
		if a.Count()+b.Count() != union.Count()+inter.Count() {
			return false
		}
		// A\B ∪ A∩B == A
		if re := a.AndNot(b).Or(inter); !re.Equal(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceString(t *testing.T) {
	want := map[Distance]string{
		DistSelf: "self", DistSMT: "smt", DistSocket: "socket", DistCross: "cross",
	}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("Distance(%d).String() = %q, want %q", d, d.String(), s)
		}
	}
	if Distance(99).String() == "" {
		t.Error("unknown distance should render something")
	}
}

func TestPlacementString(t *testing.T) {
	for _, p := range Placements() {
		if p.String() == "" {
			t.Errorf("placement %d has empty name", p)
		}
	}
	if Placement(99).String() == "" {
		t.Error("unknown placement should render something")
	}
}

func TestTopologyValidate(t *testing.T) {
	bad := Topology{Sockets: 0, CoresPerSocket: 4, ThreadsPerCore: 2}
	if bad.Validate() == nil {
		t.Error("invalid topology accepted")
	}
}

func TestResponderForPanics(t *testing.T) {
	topo := Topology{Sockets: 1, CoresPerSocket: 4, ThreadsPerCore: 1}
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("same-core without SMT", func() { topo.ResponderFor(0, PlaceSameCore) })
	assertPanics("cross-socket with 1 socket", func() { topo.ResponderFor(0, PlaceCrossSocket) })
}
