package mach

import (
	"math/bits"
	"math/rand"
	"testing"
)

// denseMask is the retired fixed-width CPUMask kept as a test-only
// reference model: the exact word-indexing algorithm the package shipped
// with (then [2]uint64, capped at 128 CPUs), widened to 16 words so the
// same arithmetic covers the 512/1024-CPU capacities the sparse mask is
// exercised at. Every sparse-mask operation is checked word-for-word
// against this model under random op sequences.
type denseMask struct {
	w [16]uint64
}

func (m *denseMask) set(cpu CPU)     { m.w[int(cpu)/64] |= 1 << (uint(cpu) % 64) }
func (m *denseMask) clear(cpu CPU)   { m.w[int(cpu)/64] &^= 1 << (uint(cpu) % 64) }
func (m denseMask) has(cpu CPU) bool { return m.w[int(cpu)/64]&(1<<(uint(cpu)%64)) != 0 }
func (m denseMask) and(o denseMask) denseMask {
	var out denseMask
	for i := range m.w {
		out.w[i] = m.w[i] & o.w[i]
	}
	return out
}
func (m denseMask) or(o denseMask) denseMask {
	var out denseMask
	for i := range m.w {
		out.w[i] = m.w[i] | o.w[i]
	}
	return out
}
func (m denseMask) andNot(o denseMask) denseMask {
	var out denseMask
	for i := range m.w {
		out.w[i] = m.w[i] &^ o.w[i]
	}
	return out
}
func (m denseMask) count() int {
	n := 0
	for _, w := range m.w {
		n += bits.OnesCount64(w)
	}
	return n
}
func (m denseMask) cpus() []CPU {
	cpus := make([]CPU, 0, m.count())
	for wi, w := range m.w {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			cpus = append(cpus, CPU(wi*64+b))
			w &^= 1 << uint(b)
		}
	}
	return cpus
}

// sameMembers checks the sparse mask against the dense reference:
// membership for every CPU below capacity, count, and the full ascending
// member list (both CPUs() and ForEach order).
func sameMembers(t *testing.T, tag string, m CPUMask, ref denseMask, capacity int) {
	t.Helper()
	if m.Count() != ref.count() {
		t.Fatalf("%s: Count = %d, reference %d", tag, m.Count(), ref.count())
	}
	if m.Empty() != (ref.count() == 0) {
		t.Fatalf("%s: Empty = %v with %d members", tag, m.Empty(), ref.count())
	}
	for cpu := 0; cpu < capacity; cpu++ {
		if m.Has(CPU(cpu)) != ref.has(CPU(cpu)) {
			t.Fatalf("%s: Has(%d) = %v, reference %v", tag, cpu, m.Has(CPU(cpu)), ref.has(CPU(cpu)))
		}
	}
	got, want := m.CPUs(), ref.cpus()
	if len(got) != len(want) {
		t.Fatalf("%s: CPUs() = %v, reference %v", tag, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: CPUs()[%d] = %d, reference %d", tag, i, got[i], want[i])
		}
	}
	var walked []CPU
	m.ForEach(func(c CPU) { walked = append(walked, c) })
	if len(walked) != len(want) {
		t.Fatalf("%s: ForEach visited %v, reference %v", tag, walked, want)
	}
	for i := range want {
		if walked[i] != want[i] {
			t.Fatalf("%s: ForEach[%d] = %d, reference %d", tag, i, walked[i], want[i])
		}
	}
}

// TestCPUMaskEquivalenceRandomOps drives a random sequence of mutating and
// combining operations against the sparse mask and the dense reference in
// lock-step at each of the capacities named in the scale-out plan.
func TestCPUMaskEquivalenceRandomOps(t *testing.T) {
	for _, capacity := range []int{56, 128, 512, 1024} {
		capacity := capacity
		t.Run(itoa(capacity), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(0xC0FFEE + capacity)))
			m := NewCPUMask(capacity)
			var ref denseMask
			other := MaskOf()
			var otherRef denseMask
			for step := 0; step < 4000; step++ {
				cpu := CPU(rng.Intn(capacity))
				switch rng.Intn(8) {
				case 0, 1, 2: // bias toward Set so masks stay populated
					m.Set(cpu)
					ref.set(cpu)
				case 3:
					m.Clear(cpu)
					ref.clear(cpu)
				case 4:
					other.Set(cpu)
					otherRef.set(cpu)
				case 5:
					got, want := m.And(other), ref.and(otherRef)
					sameMembers(t, "And", got, want, capacity)
				case 6:
					got, want := m.Or(other), ref.or(otherRef)
					sameMembers(t, "Or", got, want, capacity)
				case 7:
					got, want := m.AndNot(other), ref.andNot(otherRef)
					sameMembers(t, "AndNot", got, want, capacity)
				}
				if step%97 == 0 {
					sameMembers(t, "step", m, ref, capacity)
					w := m.Without(cpu)
					wref := ref
					wref.clear(cpu)
					sameMembers(t, "Without", w, wref, capacity)
					// Without must not touch the receiver.
					sameMembers(t, "Without-receiver", m, ref, capacity)
				}
			}
			sameMembers(t, "final", m, ref, capacity)
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestCPUMaskStringMatchesReference checks String against a rendering of
// the reference member list under random contents.
func TestCPUMaskStringMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var m CPUMask
		var ref denseMask
		for i := 0; i < rng.Intn(20); i++ {
			cpu := CPU(rng.Intn(1024))
			m.Set(cpu)
			ref.set(cpu)
		}
		want := "{"
		for i, c := range ref.cpus() {
			if i > 0 {
				want += ","
			}
			want += itoa(int(c))
		}
		want += "}"
		if got := m.String(); got != want {
			t.Fatalf("String = %q, want %q", got, want)
		}
	}
}

// TestCPUMaskEmptyAndFull covers the edge contents at each capacity.
func TestCPUMaskEmptyAndFull(t *testing.T) {
	for _, capacity := range []int{56, 128, 512, 1024} {
		empty := NewCPUMask(capacity)
		if !empty.Empty() || empty.Count() != 0 || len(empty.CPUs()) != 0 {
			t.Fatalf("capacity %d: preallocated mask not empty", capacity)
		}
		if empty.String() != "{}" {
			t.Fatalf("capacity %d: empty String = %q", capacity, empty.String())
		}
		full := NewCPUMask(capacity)
		for cpu := 0; cpu < capacity; cpu++ {
			full.Set(CPU(cpu))
		}
		if full.Count() != capacity {
			t.Fatalf("capacity %d: full Count = %d", capacity, full.Count())
		}
		if got := full.CPUs(); len(got) != capacity || got[0] != 0 || got[capacity-1] != CPU(capacity-1) {
			t.Fatalf("capacity %d: full CPUs bounds wrong", capacity)
		}
		if !full.And(full).Equal(full) || !full.Or(empty).Equal(full) {
			t.Fatalf("capacity %d: full identity ops failed", capacity)
		}
		if !full.AndNot(full).Empty() {
			t.Fatalf("capacity %d: full AndNot full not empty", capacity)
		}
		drained := full.Clone()
		for cpu := 0; cpu < capacity; cpu++ {
			drained.Clear(CPU(cpu)) // draining must also not disturb full
		}
		if !drained.Empty() || full.Count() != capacity {
			t.Fatalf("capacity %d: drain broke Clone independence", capacity)
		}
	}
}

// TestCPUMaskOutOfRangePanics is the overflow regression test: the old
// [2]uint64 mask silently indexed out of range for CPU >= 128; the sparse
// mask must reject ids outside [0, MaxCPUs) loudly on every accessor.
func TestCPUMaskOutOfRangePanics(t *testing.T) {
	mustPanic := func(tag string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic on out-of-range CPU", tag)
			}
		}()
		fn()
	}
	var m CPUMask
	for _, cpu := range []CPU{-1, MaxCPUs, MaxCPUs + 7} {
		cpu := cpu
		mustPanic("Set", func() { m.Set(cpu) })
		mustPanic("Clear", func() { m.Clear(cpu) })
		mustPanic("Has", func() { _ = m.Has(cpu) })
		mustPanic("Without", func() { _ = m.Without(cpu) })
		mustPanic("MaskOf", func() { _ = MaskOf(cpu) })
	}
	// In-range ids above the old 128 hard cap must now just work.
	m.Set(130)
	m.Set(MaxCPUs - 1)
	if !m.Has(130) || !m.Has(MaxCPUs-1) || m.Count() != 2 {
		t.Fatal("mask rejects valid ids above the retired 128-CPU cap")
	}
}

// TestCPUMaskCloneIsolation pins the documented reference semantics:
// value copies share storage (callers must not mutate them), Clone and the
// value-returning operators return isolated storage.
func TestCPUMaskCloneIsolation(t *testing.T) {
	orig := MaskOf(1, 65, 300)
	cl := orig.Clone()
	cl.Set(2)
	cl.Clear(65)
	if orig.Has(2) || !orig.Has(65) || orig.Count() != 3 {
		t.Fatalf("Clone shares storage with original: %v", orig)
	}
	for _, derived := range []CPUMask{orig.And(orig), orig.Or(orig), orig.AndNot(CPUMask{}), orig.Without(1)} {
		derived.Set(63)
		if orig.Has(63) {
			t.Fatalf("derived mask aliases original: %v", orig)
		}
		orig.Clear(63)
	}
}

// TestNewCPUMaskPreallocates checks that Sets below the declared capacity
// reuse the preallocated words (no growth reallocation observable through
// a stale alias).
func TestNewCPUMaskPreallocates(t *testing.T) {
	m := NewCPUMask(512)
	// The value copy shares word storage (not the summary scalar); bits
	// set in m stay visible through it only while m never reallocates.
	alias := m
	for cpu := 0; cpu < 512; cpu += 17 {
		m.Set(CPU(cpu))
	}
	for cpu := 0; cpu < 512; cpu += 17 {
		if !alias.Has(CPU(cpu)) {
			t.Fatalf("Set below capacity reallocated words (cpu %d missing in alias)", cpu)
		}
	}
}
