package mach

// CostModel holds the latency, in cycles, of every hardware primitive the
// simulation charges for. The defaults are calibrated to the paper's
// testbed (Skylake-era Xeon, 2.0 GHz):
//
//   - a local INVLPG costs ≈200 cycles (§2.2, [7,17] in the paper);
//   - INVPCID in individual-address mode is slower than INVLPG (§3.4, [23]);
//   - IPI delivery "often takes more time (potentially over 1000 cycles)
//     than TLB flushing (~200 cycles per entry)" (§3.2);
//   - a whole shootdown takes "on the order of several thousand cycles"
//     with an x2APIC in cluster mode (§2.3.2).
//
// Absolute values are approximations; the experiments in this repository
// reproduce the paper's relative effects, which depend on the ordering and
// overlap of these costs rather than their exact magnitudes.
type CostModel struct {
	// FreqHz is the simulated clock frequency, used only to convert
	// cycle counts to wall-clock figures in workload reports.
	FreqHz uint64

	// --- Cacheline movement (see internal/cache) ---

	// L1Hit is a load/store hit in the local L1.
	L1Hit uint64
	// SMTTransfer moves a line between SMT siblings (shared L1/L2).
	SMTTransfer uint64
	// SocketTransfer moves a line between cores of one socket (LLC snoop).
	SocketTransfer uint64
	// CrossTransfer moves a line across the socket interconnect.
	CrossTransfer uint64
	// AtomicRMW is the extra cost of a locked read-modify-write.
	AtomicRMW uint64
	// Lfence is a serializing load fence (used by the Spectre-v1 guard on
	// the in-context flush loop, §3.4).
	Lfence uint64

	// --- TLB manipulation ---

	// Invlpg invalidates one PTE of the current address space (§3.4).
	Invlpg uint64
	// InvpcidSingle invalidates one PTE of a non-current address space;
	// measurably slower than INVLPG on Skylake (§3.4).
	InvpcidSingle uint64
	// CR3WriteFlush writes CR3 without the NOFLUSH bit: switches (or
	// reloads) the address space and fully flushes its non-global entries.
	CR3WriteFlush uint64
	// CR3WriteNoFlush writes CR3 with the NOFLUSH bit set (PCID preserved).
	CR3WriteNoFlush uint64
	// PageWalkPWCHit is a TLB miss resolved with page-walk-cache help.
	PageWalkPWCHit uint64
	// PageWalkFull is a TLB miss requiring a full 4-level walk.
	PageWalkFull uint64
	// PageWalkNestedFactor multiplies walk costs under nested paging
	// (guest walks through EPT take up to 6x the steps).
	PageWalkNestedFactor uint64

	// --- IPIs and interrupts ---

	// IPIWriteICR is the initiator-side cost of one ICR write; x2APIC
	// cluster mode needs one write per 16-CPU cluster touched (§2.2).
	IPIWriteICR uint64
	// IPIDeliverSMT/Socket/Cross is the wire latency from ICR write to the
	// target core beginning interrupt dispatch.
	IPIDeliverSMT    uint64
	IPIDeliverSocket uint64
	IPIDeliverCross  uint64
	// IRQEntryKernel is interrupt dispatch when the target runs kernel code.
	IRQEntryKernel uint64
	// IRQEntryUser is interrupt dispatch when the target runs user code
	// (mode switch, register save), before any PTI surcharge.
	IRQEntryUser uint64
	// IRQExit is the IRET path back to the interrupted context.
	IRQExit uint64
	// NMIHandler is the body of the NMI handler, including the
	// nmi_uaccess_okay check the paper extends (§3.2); the handler is
	// already expensive, so the added check is negligible.
	NMIHandler uint64
	// IPIAckTimeout is the initiator's patience while waiting for
	// shootdown acknowledgements before suspecting a lost or stalled kick
	// and re-sending it (exponential backoff doubles it per retry, see
	// internal/smp). Only consulted when a fault plane arms the recovery
	// path; several times the worst-case delivery + drain latency so it
	// never fires on a healthy machine.
	IPIAckTimeout uint64

	// --- Kernel entry/exit ---

	// SyscallEntry/SyscallExit are the base (no-PTI) costs.
	SyscallEntry uint64
	SyscallExit  uint64
	// PTITrampoline is the extra entry/exit cost with page-table isolation
	// on: the CR3 switch plus the entry trampoline (§2.1). Charged once on
	// entry and once on exit, for syscalls, faults and interrupts that
	// arrive from user mode.
	PTITrampoline uint64

	// --- Kernel software work ---

	// PageFaultEntry is exception dispatch for a page fault (before PTI
	// surcharge).
	PageFaultEntry uint64
	// PTEUpdate is updating one PTE plus accounting (rmap, mmu_gather).
	PTEUpdate uint64
	// VMAFind is locating the VMA for an address.
	VMAFind uint64
	// SyscallWork is fixed bookkeeping in a memory syscall beyond the
	// entry/exit and per-PTE costs.
	SyscallWork uint64
	// CopyPage4K copies a 4 KiB page (CoW break).
	CopyPage4K uint64
	// CopyPage2M copies or zeroes a 2 MiB page (huge-page populate and
	// khugepaged collapse).
	CopyPage2M uint64
	// RWSemUncontended acquires/releases an uncontended rw-semaphore.
	RWSemUncontended uint64
	// SpinPoll is one iteration of a spin-wait loop (pause + branch),
	// excluding cacheline costs which the cache model charges.
	SpinPoll uint64
	// UserWrite is the user-visible store that the CoW optimization issues
	// from kernel context instead of a flush (§4.1); an atomic no-op RMW.
	UserWrite uint64
}

// DefaultCosts returns the calibrated cost model used by all experiments.
func DefaultCosts() *CostModel {
	return &CostModel{
		FreqHz: 2_000_000_000,

		L1Hit:          4,
		SMTTransfer:    18,
		SocketTransfer: 70,
		CrossTransfer:  190,
		AtomicRMW:      22,
		Lfence:         28,

		Invlpg:               220,
		InvpcidSingle:        310,
		CR3WriteFlush:        270,
		CR3WriteNoFlush:      240,
		PageWalkPWCHit:       40,
		PageWalkFull:         130,
		PageWalkNestedFactor: 4,

		IPIWriteICR:      140,
		IPIDeliverSMT:    620,
		IPIDeliverSocket: 790,
		IPIDeliverCross:  1150,
		IRQEntryKernel:   320,
		IRQEntryUser:     550,
		IRQExit:          380,
		NMIHandler:       900,
		IPIAckTimeout:    40_000,

		SyscallEntry:  90,
		SyscallExit:   110,
		PTITrampoline: 290,

		PageFaultEntry:   420,
		PTEUpdate:        90,
		VMAFind:          60,
		SyscallWork:      450,
		CopyPage4K:       1050,
		CopyPage2M:       65000,
		RWSemUncontended: 40,
		SpinPoll:         10,
		UserWrite:        30,
	}
}

// TransferCost returns the cacheline transfer cost for a distance class.
func (c *CostModel) TransferCost(d Distance) uint64 {
	switch d {
	case DistSelf:
		return c.L1Hit
	case DistSMT:
		return c.SMTTransfer
	case DistSocket:
		return c.SocketTransfer
	default:
		return c.CrossTransfer
	}
}

// IPIDeliverCost returns the IPI wire latency for a distance class.
func (c *CostModel) IPIDeliverCost(d Distance) uint64 {
	switch d {
	case DistSelf, DistSMT:
		return c.IPIDeliverSMT
	case DistSocket:
		return c.IPIDeliverSocket
	default:
		return c.IPIDeliverCross
	}
}
