package mach

import (
	"math/bits"
	"strconv"
	"strings"
)

// CPUMask is a set of logical CPUs, the simulated analogue of the kernel's
// cpumask_t. The zero value is the empty set. Masks support machines of up
// to 128 logical CPUs, which covers the default 56-CPU topology.
type CPUMask struct {
	w [2]uint64
}

// MaskOf returns a mask containing exactly the given CPUs.
func MaskOf(cpus ...CPU) CPUMask {
	var m CPUMask
	for _, c := range cpus {
		m.Set(c)
	}
	return m
}

// Set adds cpu to the mask.
func (m *CPUMask) Set(cpu CPU) {
	m.w[int(cpu)/64] |= 1 << (uint(cpu) % 64)
}

// Clear removes cpu from the mask.
func (m *CPUMask) Clear(cpu CPU) {
	m.w[int(cpu)/64] &^= 1 << (uint(cpu) % 64)
}

// Has reports whether cpu is in the mask.
func (m CPUMask) Has(cpu CPU) bool {
	return m.w[int(cpu)/64]&(1<<(uint(cpu)%64)) != 0
}

// Count returns the number of CPUs in the mask.
func (m CPUMask) Count() int {
	return bits.OnesCount64(m.w[0]) + bits.OnesCount64(m.w[1])
}

// Empty reports whether the mask contains no CPUs.
func (m CPUMask) Empty() bool { return m.w[0] == 0 && m.w[1] == 0 }

// And returns the intersection of m and o.
func (m CPUMask) And(o CPUMask) CPUMask {
	return CPUMask{w: [2]uint64{m.w[0] & o.w[0], m.w[1] & o.w[1]}}
}

// Or returns the union of m and o.
func (m CPUMask) Or(o CPUMask) CPUMask {
	return CPUMask{w: [2]uint64{m.w[0] | o.w[0], m.w[1] | o.w[1]}}
}

// AndNot returns the CPUs in m that are not in o.
func (m CPUMask) AndNot(o CPUMask) CPUMask {
	return CPUMask{w: [2]uint64{m.w[0] &^ o.w[0], m.w[1] &^ o.w[1]}}
}

// Without returns m with cpu removed.
func (m CPUMask) Without(cpu CPU) CPUMask {
	m.Clear(cpu)
	return m
}

// CPUs returns the members of the mask in ascending order.
func (m CPUMask) CPUs() []CPU {
	cpus := make([]CPU, 0, m.Count())
	for wi, w := range m.w {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			cpus = append(cpus, CPU(wi*64+b))
			w &^= 1 << uint(b)
		}
	}
	return cpus
}

// String renders the mask as a comma-separated CPU list, e.g. "0,3,17".
func (m CPUMask) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, c := range m.CPUs() {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(int(c)))
	}
	sb.WriteByte('}')
	return sb.String()
}
