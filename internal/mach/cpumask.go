package mach

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// MaxCPUs bounds the CPU ids a mask can hold. The limit exists so the
// one-word summary level below always suffices (64 summary bits x 64 CPUs
// per word); it comfortably covers the 256-1024 CPU scale-out topologies.
const MaxCPUs = 4096

// CPUMask is a set of logical CPUs, the simulated analogue of the kernel's
// cpumask_t. The zero value is the empty set and allocates nothing; word
// storage grows lazily with the highest CPU ever set, so a mask costs
// O(highest/64) space and iteration costs O(active words) via the summary
// level (bit i of summary is set iff word i is non-empty) rather than
// O(NumCPUs). CPU ids must lie in [0, MaxCPUs); Set, Clear, Has and MaskOf
// panic otherwise instead of silently corrupting a neighbouring word.
//
// Mutating methods (Set, Clear) have reference semantics: a mask assigned
// or passed by value shares its word storage with the original, so callers
// must only mutate masks they own (freshly built, or obtained via Clone).
// All value-returning operators (And, Or, AndNot, Without, Clone) return
// masks with fresh storage.
type CPUMask struct {
	w       []uint64
	summary uint64 // bit i set iff w[i] != 0
}

// checkCPU panics when cpu is outside the representable range. Indexing
// with an unchecked id used to walk off the old fixed [2]uint64 array for
// CPU >= 128; the explicit check turns that silent corruption into a
// loud programming-error panic.
func checkCPU(cpu CPU) {
	if cpu < 0 || int(cpu) >= MaxCPUs {
		panic(fmt.Sprintf("mach: CPU %d out of range [0,%d)", int(cpu), MaxCPUs))
	}
}

// MaskOf returns a mask containing exactly the given CPUs.
func MaskOf(cpus ...CPU) CPUMask {
	var m CPUMask
	for _, c := range cpus {
		m.Set(c)
	}
	return m
}

// NewCPUMask returns an empty mask whose word storage is preallocated for
// CPUs in [0, capacity), so subsequent Sets below capacity never allocate.
// Capacity is clamped to [0, MaxCPUs].
func NewCPUMask(capacity int) CPUMask {
	if capacity < 0 {
		capacity = 0
	}
	if capacity > MaxCPUs {
		capacity = MaxCPUs
	}
	return CPUMask{w: make([]uint64, (capacity+63)/64)}
}

// Set adds cpu to the mask, growing word storage as needed.
func (m *CPUMask) Set(cpu CPU) {
	checkCPU(cpu)
	wi := int(cpu) / 64
	if wi >= len(m.w) {
		grown := make([]uint64, wi+1)
		copy(grown, m.w)
		m.w = grown
	}
	m.w[wi] |= 1 << (uint(cpu) % 64)
	m.summary |= 1 << uint(wi)
}

// Clear removes cpu from the mask.
func (m *CPUMask) Clear(cpu CPU) {
	checkCPU(cpu)
	wi := int(cpu) / 64
	if wi >= len(m.w) {
		return
	}
	m.w[wi] &^= 1 << (uint(cpu) % 64)
	if m.w[wi] == 0 {
		m.summary &^= 1 << uint(wi)
	}
}

// Has reports whether cpu is in the mask.
func (m CPUMask) Has(cpu CPU) bool {
	checkCPU(cpu)
	wi := int(cpu) / 64
	return wi < len(m.w) && m.w[wi]&(1<<(uint(cpu)%64)) != 0
}

// Count returns the number of CPUs in the mask.
func (m CPUMask) Count() int {
	n := 0
	for s := m.summary; s != 0; s &^= s & -s {
		n += bits.OnesCount64(m.w[bits.TrailingZeros64(s)])
	}
	return n
}

// Empty reports whether the mask contains no CPUs.
func (m CPUMask) Empty() bool { return m.summary == 0 }

// Clone returns a copy of m with its own word storage.
func (m CPUMask) Clone() CPUMask {
	if len(m.w) == 0 {
		return CPUMask{}
	}
	c := CPUMask{w: make([]uint64, len(m.w)), summary: m.summary}
	copy(c.w, m.w)
	return c
}

// Equal reports whether m and o contain the same CPUs.
func (m CPUMask) Equal(o CPUMask) bool {
	if m.summary != o.summary {
		return false
	}
	for s := m.summary; s != 0; s &^= s & -s {
		wi := bits.TrailingZeros64(s)
		if m.w[wi] != o.w[wi] {
			return false
		}
	}
	return true
}

// And returns the intersection of m and o.
func (m CPUMask) And(o CPUMask) CPUMask {
	n := len(m.w)
	if len(o.w) < n {
		n = len(o.w)
	}
	out := CPUMask{}
	if n == 0 {
		return out
	}
	out.w = make([]uint64, n)
	for s := m.summary & o.summary; s != 0; s &^= s & -s {
		wi := bits.TrailingZeros64(s)
		if w := m.w[wi] & o.w[wi]; w != 0 {
			out.w[wi] = w
			out.summary |= 1 << uint(wi)
		}
	}
	return out
}

// Or returns the union of m and o.
func (m CPUMask) Or(o CPUMask) CPUMask {
	n := len(m.w)
	if len(o.w) > n {
		n = len(o.w)
	}
	out := CPUMask{}
	if n == 0 {
		return out
	}
	out.w = make([]uint64, n)
	copy(out.w, m.w)
	out.summary = m.summary
	for s := o.summary; s != 0; s &^= s & -s {
		wi := bits.TrailingZeros64(s)
		out.w[wi] |= o.w[wi]
		out.summary |= 1 << uint(wi)
	}
	return out
}

// AndNot returns the CPUs in m that are not in o.
func (m CPUMask) AndNot(o CPUMask) CPUMask {
	out := m.Clone()
	for s := m.summary & o.summary; s != 0; s &^= s & -s {
		wi := bits.TrailingZeros64(s)
		out.w[wi] &^= o.w[wi]
		if out.w[wi] == 0 {
			out.summary &^= 1 << uint(wi)
		}
	}
	return out
}

// Without returns a copy of m with cpu removed; m is unchanged.
func (m CPUMask) Without(cpu CPU) CPUMask {
	out := m.Clone()
	out.Clear(cpu)
	return out
}

// ForEach calls fn for each member of the mask in ascending order without
// allocating. Iteration touches only non-empty words (via the summary), so
// the cost is O(active), not O(NumCPUs).
func (m CPUMask) ForEach(fn func(CPU)) {
	for s := m.summary; s != 0; s &^= s & -s {
		wi := bits.TrailingZeros64(s)
		for w := m.w[wi]; w != 0; w &^= w & -w {
			fn(CPU(wi*64 + bits.TrailingZeros64(w)))
		}
	}
}

// CPUs returns the members of the mask in ascending order.
func (m CPUMask) CPUs() []CPU {
	cpus := make([]CPU, 0, m.Count())
	m.ForEach(func(c CPU) { cpus = append(cpus, c) })
	return cpus
}

// String renders the mask as a comma-separated CPU list, e.g. "{0,3,17}".
func (m CPUMask) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	m.ForEach(func(c CPU) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(strconv.Itoa(int(c)))
	})
	sb.WriteByte('}')
	return sb.String()
}
