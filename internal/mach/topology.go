// Package mach describes the simulated machine: CPU topology (sockets,
// physical cores, SMT threads) and the calibrated cost model, in cycles, for
// every hardware primitive the TLB shootdown protocol touches.
//
// The default topology mirrors the paper's testbed: a dual-socket Intel Xeon
// E5-2660v4 with 14 physical cores (28 SMT threads) per socket.
package mach

import (
	"fmt"
	"strconv"
	"strings"
)

// CPU is a logical CPU (hardware thread) identifier, dense in [0, NumCPUs).
type CPU int

// Topology describes the CPU layout of the machine. Logical CPUs are
// numbered socket-major, core-major, thread-minor:
//
//	cpu = socket*CoresPerSocket*ThreadsPerCore + core*ThreadsPerCore + thread
type Topology struct {
	Sockets        int // NUMA nodes
	CoresPerSocket int // physical cores per socket
	ThreadsPerCore int // SMT threads per physical core

	// SNCPerSocket partitions each socket into sub-NUMA clusters
	// (Intel SNC / AMD NPS style), numbered core-contiguously within the
	// socket. 0 or 1 means the socket is one monolithic NUMA domain; the
	// value must divide CoresPerSocket. It refines locality bookkeeping
	// on the wide scale-out topologies and leaves the default 56-CPU
	// machine untouched.
	SNCPerSocket int
}

// DefaultTopology mirrors the paper's Dell R630 testbed: 2 sockets x 14
// physical cores x 2 SMT threads = 56 logical CPUs.
func DefaultTopology() Topology {
	return Topology{Sockets: 2, CoresPerSocket: 14, ThreadsPerCore: 2}
}

// Validate reports whether the topology is usable.
func (t Topology) Validate() error {
	if t.Sockets < 1 || t.CoresPerSocket < 1 || t.ThreadsPerCore < 1 {
		return fmt.Errorf("mach: invalid topology %+v", t)
	}
	if t.SNCPerSocket > 1 && t.CoresPerSocket%t.SNCPerSocket != 0 {
		return fmt.Errorf("mach: SNCPerSocket %d does not divide CoresPerSocket %d",
			t.SNCPerSocket, t.CoresPerSocket)
	}
	if n := t.NumCPUs(); n > MaxCPUs {
		return fmt.Errorf("mach: topology has %d CPUs, above the %d-CPU mask limit", n, MaxCPUs)
	}
	return nil
}

// NumCPUs returns the number of logical CPUs.
func (t Topology) NumCPUs() int { return t.Sockets * t.CoresPerSocket * t.ThreadsPerCore }

// SNCDomains returns the number of sub-NUMA clusters per socket (1 when
// sub-NUMA clustering is off).
func (t Topology) SNCDomains() int {
	if t.SNCPerSocket <= 1 {
		return 1
	}
	return t.SNCPerSocket
}

// SNCOf returns the global sub-NUMA cluster index containing cpu. With
// clustering off this equals the socket index.
func (t Topology) SNCOf(cpu CPU) int {
	domains := t.SNCDomains()
	coresPerSNC := t.CoresPerSocket / domains
	socket := t.SocketOf(cpu)
	coreInSocket := t.CoreOf(cpu) - socket*t.CoresPerSocket
	return socket*domains + coreInSocket/coresPerSNC
}

// SameSNC reports whether a and b share a sub-NUMA cluster.
func (t Topology) SameSNC(a, b CPU) bool { return t.SNCOf(a) == t.SNCOf(b) }

// SocketOf returns the socket (NUMA node) containing cpu.
func (t Topology) SocketOf(cpu CPU) int {
	return int(cpu) / (t.CoresPerSocket * t.ThreadsPerCore)
}

// CoreOf returns the global physical-core index containing cpu.
func (t Topology) CoreOf(cpu CPU) int { return int(cpu) / t.ThreadsPerCore }

// ThreadOf returns the SMT thread index of cpu within its physical core.
func (t Topology) ThreadOf(cpu CPU) int { return int(cpu) % t.ThreadsPerCore }

// SameCore reports whether a and b are SMT siblings on one physical core.
func (t Topology) SameCore(a, b CPU) bool { return t.CoreOf(a) == t.CoreOf(b) }

// SameSocket reports whether a and b share a socket.
func (t Topology) SameSocket(a, b CPU) bool { return t.SocketOf(a) == t.SocketOf(b) }

// SMTSibling returns the other hardware thread of cpu's physical core.
// With ThreadsPerCore == 1 it returns cpu itself.
func (t Topology) SMTSibling(cpu CPU) CPU {
	core := t.CoreOf(cpu)
	thread := (t.ThreadOf(cpu) + 1) % t.ThreadsPerCore
	return CPU(core*t.ThreadsPerCore + thread)
}

// CPUsOfSocket returns the logical CPUs of the given socket in id order.
func (t Topology) CPUsOfSocket(socket int) []CPU {
	per := t.CoresPerSocket * t.ThreadsPerCore
	cpus := make([]CPU, 0, per)
	for i := 0; i < per; i++ {
		cpus = append(cpus, CPU(socket*per+i))
	}
	return cpus
}

// ScaleTopology returns the parameterized scale-out machine with the
// given logical CPU count. Supported sizes: 56 (the paper's testbed),
// 256 (4 sockets x 32 cores x 2 SMT, SNC-2), 512 (8 x 32 x 2, SNC-2) and
// 1024 (8 x 64 x 2, SNC-4).
func ScaleTopology(numCPUs int) (Topology, error) {
	switch numCPUs {
	case 56:
		return DefaultTopology(), nil
	case 256:
		return Topology{Sockets: 4, CoresPerSocket: 32, ThreadsPerCore: 2, SNCPerSocket: 2}, nil
	case 512:
		return Topology{Sockets: 8, CoresPerSocket: 32, ThreadsPerCore: 2, SNCPerSocket: 2}, nil
	case 1024:
		return Topology{Sockets: 8, CoresPerSocket: 64, ThreadsPerCore: 2, SNCPerSocket: 4}, nil
	}
	return Topology{}, fmt.Errorf("mach: no scale preset for %d CPUs (have 56, 256, 512, 1024)", numCPUs)
}

// ScaleCPUCounts lists the preset sizes in ascending order.
func ScaleCPUCounts() []int { return []int{56, 256, 512, 1024} }

// ParseTopology parses a topology flag value: either a preset CPU count
// ("56", "256", "512", "1024", or "default") or an explicit
// "sockets x cores x threads [x snc]" spec such as "4x32x2" or "8x32x2x2".
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "", "default":
		return DefaultTopology(), nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		return ScaleTopology(n)
	}
	parts := strings.Split(s, "x")
	if len(parts) != 3 && len(parts) != 4 {
		return Topology{}, fmt.Errorf("mach: topology %q is neither a preset CPU count nor SxCxT[xN]", s)
	}
	nums := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return Topology{}, fmt.Errorf("mach: topology %q: bad component %q", s, p)
		}
		nums[i] = n
	}
	t := Topology{Sockets: nums[0], CoresPerSocket: nums[1], ThreadsPerCore: nums[2]}
	if len(nums) == 4 {
		t.SNCPerSocket = nums[3]
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// Spec renders the topology as the canonical SxCxT[xN] flag spelling.
func (t Topology) Spec() string {
	s := fmt.Sprintf("%dx%dx%d", t.Sockets, t.CoresPerSocket, t.ThreadsPerCore)
	if t.SNCPerSocket > 1 {
		s += fmt.Sprintf("x%d", t.SNCPerSocket)
	}
	return s
}

// Distance classifies the communication distance between two logical CPUs.
type Distance int

const (
	// DistSelf is the same logical CPU.
	DistSelf Distance = iota
	// DistSMT is a sibling hardware thread on the same physical core.
	DistSMT
	// DistSocket is a different core on the same socket.
	DistSocket
	// DistCross is a core on a different socket, across the interconnect.
	DistCross
)

// String returns a short human-readable name for the distance class.
func (d Distance) String() string {
	switch d {
	case DistSelf:
		return "self"
	case DistSMT:
		return "smt"
	case DistSocket:
		return "socket"
	case DistCross:
		return "cross"
	}
	return fmt.Sprintf("Distance(%d)", int(d))
}

// DistanceBetween returns the distance class from a to b.
func (t Topology) DistanceBetween(a, b CPU) Distance {
	switch {
	case a == b:
		return DistSelf
	case t.SameCore(a, b):
		return DistSMT
	case t.SameSocket(a, b):
		return DistSocket
	default:
		return DistCross
	}
}

// Placement names the initiator/responder placements used throughout the
// paper's microbenchmarks (Figures 5-8).
type Placement int

const (
	// PlaceSameCore puts the responder on the initiator's SMT sibling.
	PlaceSameCore Placement = iota
	// PlaceSameSocket puts the responder on another core of the same socket.
	PlaceSameSocket
	// PlaceCrossSocket puts the responder on the other socket.
	PlaceCrossSocket
)

// String returns the placement name as used in experiment output.
func (p Placement) String() string {
	switch p {
	case PlaceSameCore:
		return "same-core"
	case PlaceSameSocket:
		return "same-socket"
	case PlaceCrossSocket:
		return "cross-socket"
	}
	return fmt.Sprintf("Placement(%d)", int(p))
}

// Placements lists all placements in presentation order.
func Placements() []Placement {
	return []Placement{PlaceSameCore, PlaceSameSocket, PlaceCrossSocket}
}

// ResponderFor picks a responder CPU for the given initiator and placement.
func (t Topology) ResponderFor(initiator CPU, p Placement) CPU {
	switch p {
	case PlaceSameCore:
		if t.ThreadsPerCore < 2 {
			panic("mach: same-core placement requires SMT")
		}
		return t.SMTSibling(initiator)
	case PlaceSameSocket:
		sib := t.SMTSibling(initiator)
		for _, c := range t.CPUsOfSocket(t.SocketOf(initiator)) {
			if c != initiator && c != sib {
				return c
			}
		}
		panic("mach: no same-socket responder available")
	case PlaceCrossSocket:
		if t.Sockets < 2 {
			panic("mach: cross-socket placement requires >= 2 sockets")
		}
		other := (t.SocketOf(initiator) + 1) % t.Sockets
		return t.CPUsOfSocket(other)[0]
	}
	panic("mach: unknown placement")
}
