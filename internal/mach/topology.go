// Package mach describes the simulated machine: CPU topology (sockets,
// physical cores, SMT threads) and the calibrated cost model, in cycles, for
// every hardware primitive the TLB shootdown protocol touches.
//
// The default topology mirrors the paper's testbed: a dual-socket Intel Xeon
// E5-2660v4 with 14 physical cores (28 SMT threads) per socket.
package mach

import "fmt"

// CPU is a logical CPU (hardware thread) identifier, dense in [0, NumCPUs).
type CPU int

// Topology describes the CPU layout of the machine. Logical CPUs are
// numbered socket-major, core-major, thread-minor:
//
//	cpu = socket*CoresPerSocket*ThreadsPerCore + core*ThreadsPerCore + thread
type Topology struct {
	Sockets        int // NUMA nodes
	CoresPerSocket int // physical cores per socket
	ThreadsPerCore int // SMT threads per physical core
}

// DefaultTopology mirrors the paper's Dell R630 testbed: 2 sockets x 14
// physical cores x 2 SMT threads = 56 logical CPUs.
func DefaultTopology() Topology {
	return Topology{Sockets: 2, CoresPerSocket: 14, ThreadsPerCore: 2}
}

// Validate reports whether the topology is usable.
func (t Topology) Validate() error {
	if t.Sockets < 1 || t.CoresPerSocket < 1 || t.ThreadsPerCore < 1 {
		return fmt.Errorf("mach: invalid topology %+v", t)
	}
	return nil
}

// NumCPUs returns the number of logical CPUs.
func (t Topology) NumCPUs() int { return t.Sockets * t.CoresPerSocket * t.ThreadsPerCore }

// SocketOf returns the socket (NUMA node) containing cpu.
func (t Topology) SocketOf(cpu CPU) int {
	return int(cpu) / (t.CoresPerSocket * t.ThreadsPerCore)
}

// CoreOf returns the global physical-core index containing cpu.
func (t Topology) CoreOf(cpu CPU) int { return int(cpu) / t.ThreadsPerCore }

// ThreadOf returns the SMT thread index of cpu within its physical core.
func (t Topology) ThreadOf(cpu CPU) int { return int(cpu) % t.ThreadsPerCore }

// SameCore reports whether a and b are SMT siblings on one physical core.
func (t Topology) SameCore(a, b CPU) bool { return t.CoreOf(a) == t.CoreOf(b) }

// SameSocket reports whether a and b share a socket.
func (t Topology) SameSocket(a, b CPU) bool { return t.SocketOf(a) == t.SocketOf(b) }

// SMTSibling returns the other hardware thread of cpu's physical core.
// With ThreadsPerCore == 1 it returns cpu itself.
func (t Topology) SMTSibling(cpu CPU) CPU {
	core := t.CoreOf(cpu)
	thread := (t.ThreadOf(cpu) + 1) % t.ThreadsPerCore
	return CPU(core*t.ThreadsPerCore + thread)
}

// CPUsOfSocket returns the logical CPUs of the given socket in id order.
func (t Topology) CPUsOfSocket(socket int) []CPU {
	per := t.CoresPerSocket * t.ThreadsPerCore
	cpus := make([]CPU, 0, per)
	for i := 0; i < per; i++ {
		cpus = append(cpus, CPU(socket*per+i))
	}
	return cpus
}

// Distance classifies the communication distance between two logical CPUs.
type Distance int

const (
	// DistSelf is the same logical CPU.
	DistSelf Distance = iota
	// DistSMT is a sibling hardware thread on the same physical core.
	DistSMT
	// DistSocket is a different core on the same socket.
	DistSocket
	// DistCross is a core on a different socket, across the interconnect.
	DistCross
)

// String returns a short human-readable name for the distance class.
func (d Distance) String() string {
	switch d {
	case DistSelf:
		return "self"
	case DistSMT:
		return "smt"
	case DistSocket:
		return "socket"
	case DistCross:
		return "cross"
	}
	return fmt.Sprintf("Distance(%d)", int(d))
}

// DistanceBetween returns the distance class from a to b.
func (t Topology) DistanceBetween(a, b CPU) Distance {
	switch {
	case a == b:
		return DistSelf
	case t.SameCore(a, b):
		return DistSMT
	case t.SameSocket(a, b):
		return DistSocket
	default:
		return DistCross
	}
}

// Placement names the initiator/responder placements used throughout the
// paper's microbenchmarks (Figures 5-8).
type Placement int

const (
	// PlaceSameCore puts the responder on the initiator's SMT sibling.
	PlaceSameCore Placement = iota
	// PlaceSameSocket puts the responder on another core of the same socket.
	PlaceSameSocket
	// PlaceCrossSocket puts the responder on the other socket.
	PlaceCrossSocket
)

// String returns the placement name as used in experiment output.
func (p Placement) String() string {
	switch p {
	case PlaceSameCore:
		return "same-core"
	case PlaceSameSocket:
		return "same-socket"
	case PlaceCrossSocket:
		return "cross-socket"
	}
	return fmt.Sprintf("Placement(%d)", int(p))
}

// Placements lists all placements in presentation order.
func Placements() []Placement {
	return []Placement{PlaceSameCore, PlaceSameSocket, PlaceCrossSocket}
}

// ResponderFor picks a responder CPU for the given initiator and placement.
func (t Topology) ResponderFor(initiator CPU, p Placement) CPU {
	switch p {
	case PlaceSameCore:
		if t.ThreadsPerCore < 2 {
			panic("mach: same-core placement requires SMT")
		}
		return t.SMTSibling(initiator)
	case PlaceSameSocket:
		sib := t.SMTSibling(initiator)
		for _, c := range t.CPUsOfSocket(t.SocketOf(initiator)) {
			if c != initiator && c != sib {
				return c
			}
		}
		panic("mach: no same-socket responder available")
	case PlaceCrossSocket:
		if t.Sockets < 2 {
			panic("mach: cross-socket placement requires >= 2 sockets")
		}
		other := (t.SocketOf(initiator) + 1) % t.Sockets
		return t.CPUsOfSocket(other)[0]
	}
	panic("mach: unknown placement")
}
