package mach

import (
	"fmt"
	"testing"
)

// TestScaleTopologyPresets pins the scale-out presets: CPU counts, SNC
// refinement, validity, and the Spec/ParseTopology round trip.
func TestScaleTopologyPresets(t *testing.T) {
	for _, n := range ScaleCPUCounts() {
		topo, err := ScaleTopology(n)
		if err != nil {
			t.Fatalf("ScaleTopology(%d): %v", n, err)
		}
		if topo.NumCPUs() != n {
			t.Errorf("preset %d: NumCPUs = %d", n, topo.NumCPUs())
		}
		if err := topo.Validate(); err != nil {
			t.Errorf("preset %d invalid: %v", n, err)
		}
		rt, err := ParseTopology(topo.Spec())
		if err != nil || rt != topo {
			t.Errorf("preset %d: ParseTopology(Spec()=%q) = %+v, %v", n, topo.Spec(), rt, err)
		}
		rt, err = ParseTopology(fmt.Sprint(n))
		if err != nil || rt != topo {
			t.Errorf("preset %d: ParseTopology(%d) = %+v, %v", n, n, rt, err)
		}
	}
	if _, err := ScaleTopology(123); err == nil {
		t.Error("ScaleTopology(123) did not fail")
	}
	if topo, _ := ScaleTopology(56); topo != DefaultTopology() {
		t.Error("ScaleTopology(56) is not the paper's testbed")
	}
}

// TestParseTopology covers the flag grammar: presets, explicit specs with
// and without an SNC component, and the rejection paths.
func TestParseTopology(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Topology
		ok   bool
	}{
		{"", DefaultTopology(), true},
		{"default", DefaultTopology(), true},
		{"4x32x2", Topology{Sockets: 4, CoresPerSocket: 32, ThreadsPerCore: 2}, true},
		{"8x32x2x2", Topology{Sockets: 8, CoresPerSocket: 32, ThreadsPerCore: 2, SNCPerSocket: 2}, true},
		{"2 x 14 x 2", Topology{Sockets: 2, CoresPerSocket: 14, ThreadsPerCore: 2}, true},
		{"99", Topology{}, false},   // no such preset
		{"4x32", Topology{}, false}, // too few components
		{"4x32x2x2x2", Topology{}, false} /* too many */, {"axbxc", Topology{}, false},
		{"4x30x2x4", Topology{}, false}, // SNC 4 does not divide 30
		{"64x64x2", Topology{}, false},  // 8192 CPUs, above MaxCPUs
		{"0x14x2", Topology{}, false},   // zero sockets
	} {
		got, err := ParseTopology(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseTopology(%q) = %+v, %v; want %+v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

// TestSNCDomains pins the sub-NUMA cluster geometry on the 512-CPU
// preset (8 sockets x 32 cores x 2 SMT, SNC-2: 16 cores = 32 CPUs per
// cluster, two clusters per socket) and the monolithic default.
func TestSNCDomains(t *testing.T) {
	def := DefaultTopology()
	if def.SNCDomains() != 1 {
		t.Fatalf("default SNCDomains = %d, want 1", def.SNCDomains())
	}
	for _, cpu := range []CPU{0, 27, 28, 55} {
		if got, want := def.SNCOf(cpu), def.SocketOf(cpu); got != want {
			t.Errorf("default SNCOf(%d) = %d, want socket %d", cpu, got, want)
		}
	}

	topo, err := ScaleTopology(512)
	if err != nil {
		t.Fatal(err)
	}
	if topo.SNCDomains() != 2 {
		t.Fatalf("512 SNCDomains = %d, want 2", topo.SNCDomains())
	}
	// Socket 0: CPUs 0..63. SNC-2 splits its 32 cores into 16+16, so the
	// cluster boundary falls between CPU 31 and CPU 32.
	for _, tc := range []struct {
		cpu  CPU
		want int
	}{{0, 0}, {31, 0}, {32, 1}, {63, 1}, {64, 2}, {127, 3}, {511, 15}} {
		if got := topo.SNCOf(tc.cpu); got != tc.want {
			t.Errorf("SNCOf(%d) = %d, want %d", tc.cpu, got, tc.want)
		}
	}
	if !topo.SameSNC(0, 31) || topo.SameSNC(31, 32) || topo.SameSNC(0, 64) {
		t.Error("SameSNC boundaries wrong on the 512-CPU preset")
	}
	// SNC refines sockets: same cluster implies same socket, everywhere.
	for _, a := range []CPU{0, 31, 32, 63, 64, 255, 256, 511} {
		for _, b := range []CPU{0, 31, 32, 63, 64, 255, 256, 511} {
			if topo.SameSNC(a, b) && !topo.SameSocket(a, b) {
				t.Errorf("CPUs %d and %d share an SNC across sockets", a, b)
			}
		}
	}
}

// TestValidateRejectsBadSNC covers the validation error paths directly.
func TestValidateRejectsBadSNC(t *testing.T) {
	bad := Topology{Sockets: 2, CoresPerSocket: 14, ThreadsPerCore: 2, SNCPerSocket: 3}
	if bad.Validate() == nil {
		t.Error("SNC 3 over 14 cores validated")
	}
	if (Topology{}).Validate() == nil {
		t.Error("zero topology validated")
	}
	huge := Topology{Sockets: MaxCPUs, CoresPerSocket: 2, ThreadsPerCore: 1}
	if huge.Validate() == nil {
		t.Error("topology above MaxCPUs validated")
	}
}
