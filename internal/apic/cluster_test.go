package apic

import (
	"math/rand"
	"testing"

	"shootdown/internal/mach"
	"shootdown/internal/sim"
)

// TestClusterICRWritesWideProperty is the cluster-fan-out property at
// scale: on a 512-CPU machine, a multicast send costs exactly one ICR
// write per x2APIC cluster touched, for randomized target sets of every
// shape — uniform sparse, dense-in-one-socket, single-cluster, strided,
// and full-machine.
func TestClusterICRWritesWideProperty(t *testing.T) {
	topo, err := mach.ScaleTopology(512)
	if err != nil {
		t.Fatal(err)
	}
	n := topo.NumCPUs()
	eng := sim.NewEngine(1)
	defer eng.Shutdown()
	b := NewBus(eng, topo, mach.DefaultCosts())
	rng := rand.New(rand.NewSource(0xA91C))

	cases := make([]mach.CPUMask, 0, 120)
	for trial := 0; trial < 25; trial++ {
		var uniform, socketDense, oneCluster, strided mach.CPUMask
		for k := 0; k < 1+rng.Intn(64); k++ {
			uniform.Set(mach.CPU(rng.Intn(n)))
		}
		base := rng.Intn(8) * 64 // one 64-CPU socket's worth
		for k := 0; k < 1+rng.Intn(48); k++ {
			socketDense.Set(mach.CPU(base + rng.Intn(64)))
		}
		cl := rng.Intn(n / ClusterSize)
		for k := 0; k < 1+rng.Intn(ClusterSize); k++ {
			oneCluster.Set(mach.CPU(cl*ClusterSize + rng.Intn(ClusterSize)))
		}
		stride := 1 + rng.Intn(100)
		for c := rng.Intn(stride); c < n; c += stride {
			strided.Set(mach.CPU(c))
		}
		cases = append(cases, uniform, socketDense, oneCluster, strided)
	}
	full := mach.NewCPUMask(n)
	for c := 0; c < n; c++ {
		full.Set(mach.CPU(c))
	}
	cases = append(cases, full, mach.CPUMask{}) // full machine; empty set

	eng.Go("sender", func(p *sim.Proc) {
		for i, targets := range cases {
			clusters := map[int]bool{}
			targets.ForEach(func(c mach.CPU) { clusters[int(c)/ClusterSize] = true })
			before := b.Stats().ICRWrites
			b.SendIPI(p, mach.CPU(rng.Intn(n)), targets, VectorCallFunction)
			got := b.Stats().ICRWrites - before
			if got != uint64(len(clusters)) {
				t.Errorf("case %d: %d targets in %d clusters cost %d ICR writes",
					i, targets.Count(), len(clusters), got)
			}
		}
	})
	eng.Run()
	if oneCl := uint64(len(cases) - 1); b.Stats().ICRWrites == 0 || b.Stats().MulticastSends > oneCl {
		t.Fatalf("fabric counters implausible: %+v", b.Stats())
	}
}
