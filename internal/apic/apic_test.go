package apic

import (
	"testing"

	"shootdown/internal/mach"
	"shootdown/internal/sim"
)

func newBus(eng *sim.Engine) *Bus {
	return NewBus(eng, mach.DefaultTopology(), mach.DefaultCosts())
}

func TestUnicastDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	b := newBus(eng)
	c := mach.DefaultCosts()
	var deliveredAt sim.Time
	b.Controller(2).SetNotify(func() { deliveredAt = eng.Now() })
	eng.Go("sender", func(p *sim.Proc) {
		b.SendIPI(p, 0, mach.MaskOf(2), VectorCallFunction)
	})
	eng.Run()
	want := sim.Time(c.IPIWriteICR + c.IPIDeliverSocket)
	if deliveredAt != want {
		t.Fatalf("delivered at %d, want %d", deliveredAt, want)
	}
	irq, ok := b.Controller(2).Take()
	if !ok || irq.Vector != VectorCallFunction || irq.From != 0 {
		t.Fatalf("Take = %+v %v", irq, ok)
	}
	if b.Stats().ICRWrites != 1 || b.Stats().IPIsDelivered != 1 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

func TestCrossSocketSlower(t *testing.T) {
	eng := sim.NewEngine(1)
	b := newBus(eng)
	var atSocket, atCross sim.Time
	b.Controller(2).SetNotify(func() { atSocket = eng.Now() })
	b.Controller(30).SetNotify(func() { atCross = eng.Now() })
	eng.Go("sender", func(p *sim.Proc) {
		b.SendIPI(p, 0, mach.MaskOf(2, 30), VectorCallFunction)
	})
	eng.Run()
	if atCross <= atSocket {
		t.Fatalf("cross-socket delivery (%d) not slower than same-socket (%d)", atCross, atSocket)
	}
}

func TestClusterICRWrites(t *testing.T) {
	eng := sim.NewEngine(1)
	b := newBus(eng)
	// CPUs 0..15 are cluster 0, 16..31 cluster 1, 32..47 cluster 2.
	targets := mach.MaskOf(1, 2, 15, 16, 17, 33)
	eng.Go("sender", func(p *sim.Proc) {
		b.SendIPI(p, 0, targets, VectorCallFunction)
	})
	eng.Run()
	if got := b.Stats().ICRWrites; got != 3 {
		t.Fatalf("ICR writes = %d, want 3 (one per cluster)", got)
	}
	if got := b.Stats().IPIsDelivered; got != 6 {
		t.Fatalf("delivered = %d, want 6", got)
	}
	if b.Stats().MulticastSends != 1 {
		t.Fatalf("multicasts = %d", b.Stats().MulticastSends)
	}
}

func TestMaskingHoldsIRQs(t *testing.T) {
	eng := sim.NewEngine(1)
	b := newBus(eng)
	ctrl := b.Controller(2)
	notified := 0
	ctrl.SetNotify(func() { notified++ })
	ctrl.SetMasked(true)
	eng.Go("sender", func(p *sim.Proc) {
		b.SendIPI(p, 0, mach.MaskOf(2), VectorCallFunction)
	})
	eng.Run()
	if notified != 0 {
		t.Fatal("masked controller notified")
	}
	if ctrl.Deliverable() {
		t.Fatal("masked IRQ reported deliverable")
	}
	if _, ok := ctrl.Take(); ok {
		t.Fatal("Take succeeded while masked")
	}
	ctrl.SetMasked(false)
	if notified != 1 {
		t.Fatalf("unmask notified %d times, want 1", notified)
	}
	if irq, ok := ctrl.Take(); !ok || irq.Vector != VectorCallFunction {
		t.Fatalf("Take after unmask = %+v %v", irq, ok)
	}
}

func TestNMIBypassesMask(t *testing.T) {
	eng := sim.NewEngine(1)
	b := newBus(eng)
	ctrl := b.Controller(5)
	notified := 0
	ctrl.SetNotify(func() { notified++ })
	ctrl.SetMasked(true)
	eng.Go("sender", func(p *sim.Proc) {
		b.SendIPI(p, 0, mach.MaskOf(5), VectorCallFunction)
		b.SendNMI(p, 0, 5)
	})
	eng.Run()
	if notified != 1 {
		t.Fatalf("NMI notifications = %d, want 1", notified)
	}
	if !ctrl.Deliverable() {
		t.Fatal("NMI not deliverable under mask")
	}
	irq, ok := ctrl.Take()
	if !ok || irq.Vector != VectorNMI {
		t.Fatalf("Take = %+v, want NMI first", irq)
	}
	// The maskable IRQ stays queued.
	if ctrl.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", ctrl.Pending())
	}
	if _, ok := ctrl.Take(); ok {
		t.Fatal("maskable IRQ taken while masked")
	}
}

func TestTakeFIFO(t *testing.T) {
	eng := sim.NewEngine(1)
	b := newBus(eng)
	ctrl := b.Controller(3)
	eng.Go("sender", func(p *sim.Proc) {
		b.SendIPI(p, 0, mach.MaskOf(3), VectorCallFunction)
		b.SendIPI(p, 1, mach.MaskOf(3), VectorReschedule)
	})
	eng.Run()
	first, _ := ctrl.Take()
	second, _ := ctrl.Take()
	if first.Vector != VectorCallFunction || second.Vector != VectorReschedule {
		t.Fatalf("order = %v, %v", first.Vector, second.Vector)
	}
}

func TestEmptyTargetsNoop(t *testing.T) {
	eng := sim.NewEngine(1)
	b := newBus(eng)
	eng.Go("sender", func(p *sim.Proc) {
		b.SendIPI(p, 0, mach.CPUMask{}, VectorCallFunction)
		if p.Now() != 0 {
			t.Error("empty send cost cycles")
		}
	})
	eng.Run()
	if b.Stats().ICRWrites != 0 {
		t.Fatal("empty send wrote ICR")
	}
}

func TestClusterICRWritesProperty(t *testing.T) {
	// The number of ICR writes equals the number of distinct 16-CPU
	// clusters touched, regardless of target order or density.
	for _, tc := range []struct {
		targets []mach.CPU
		want    uint64
	}{
		{[]mach.CPU{1}, 1},
		{[]mach.CPU{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, 1},
		{[]mach.CPU{15, 16}, 2},
		{[]mach.CPU{1, 17, 33, 49}, 4},
		{[]mach.CPU{48, 49, 50, 51, 52, 53, 54, 55}, 1},
	} {
		eng := sim.NewEngine(1)
		b := newBus(eng)
		eng.Go("s", func(p *sim.Proc) {
			b.SendIPI(p, 0, mach.MaskOf(tc.targets...), VectorCallFunction)
		})
		eng.Run()
		if got := b.Stats().ICRWrites; got != tc.want {
			t.Errorf("targets %v: ICR writes = %d, want %d", tc.targets, got, tc.want)
		}
	}
}

func TestSenderChargedPerClusterNotPerTarget(t *testing.T) {
	// 14 targets in one cluster cost the sender one ICR write of time;
	// the same count spread over 4 clusters costs four.
	cost := func(targets ...mach.CPU) sim.Time {
		eng := sim.NewEngine(1)
		b := newBus(eng)
		var spent sim.Time
		eng.Go("s", func(p *sim.Proc) {
			start := p.Now()
			b.SendIPI(p, 0, mach.MaskOf(targets...), VectorCallFunction)
			spent = p.Now() - start
		})
		eng.Run()
		return spent
	}
	oneCluster := cost(1, 2, 3, 4)
	fourClusters := cost(1, 17, 33, 49)
	if fourClusters != 4*oneCluster {
		t.Fatalf("four-cluster send = %d, want 4x one-cluster %d", fourClusters, oneCluster)
	}
}
