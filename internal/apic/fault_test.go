package apic

import (
	"testing"

	"shootdown/internal/fault"
	"shootdown/internal/mach"
	"shootdown/internal/sim"
)

func TestFaultPlaneDropsShootdownKicksOnly(t *testing.T) {
	eng := sim.NewEngine(1)
	b := newBus(eng)
	b.SetFaultPlane(fault.New(7, fault.Spec{DropP: 1, DropBurstMax: 64}))
	eng.Go("sender", func(p *sim.Proc) {
		// Shootdown kicks are droppable; NMIs and reschedule kicks never are.
		b.SendIPI(p, 0, mach.MaskOf(2), VectorCallFunction)
		b.SendIPI(p, 0, mach.MaskOf(3), VectorReschedule)
		b.SendNMI(p, 0, 4)
	})
	eng.Run()
	s := b.Stats()
	if s.IPIsDropped != 1 {
		t.Fatalf("IPIsDropped = %d, want 1 (only the call-function kick)", s.IPIsDropped)
	}
	if s.IPIsDelivered != 2 {
		t.Fatalf("IPIsDelivered = %d, want 2 (resched + NMI)", s.IPIsDelivered)
	}
	if b.Controller(2).Pending() != 0 {
		t.Fatal("dropped kick still arrived")
	}
	if b.Controller(3).Pending() != 1 || b.Controller(4).Pending() != 1 {
		t.Fatal("non-shootdown vectors were perturbed")
	}
	// The sender still paid for every ICR write: the fault is in the
	// fabric, not in the initiator's view of its own send.
	if s.ICRWrites != 3 {
		t.Fatalf("ICRWrites = %d, want 3", s.ICRWrites)
	}
}

func TestFaultPlaneDropBurstBounded(t *testing.T) {
	// At DropP=1 the burst bound forces delivery after DropBurstMax
	// consecutive losses, so retry loops always terminate.
	eng := sim.NewEngine(1)
	b := newBus(eng)
	pl := fault.New(7, fault.Spec{DropP: 1, DropBurstMax: 3})
	b.SetFaultPlane(pl)
	eng.Go("sender", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			b.SendIPI(p, 0, mach.MaskOf(2), VectorCallFunction)
		}
	})
	eng.Run()
	s := b.Stats()
	if s.IPIsDropped != 3 || s.IPIsDelivered != 1 {
		t.Fatalf("dropped=%d delivered=%d, want 3 drops then 1 forced delivery", s.IPIsDropped, s.IPIsDelivered)
	}
	if pl.Stats().ForcedDeliveries != 1 {
		t.Fatalf("ForcedDeliveries = %d, want 1", pl.Stats().ForcedDeliveries)
	}
}

func TestFaultPlaneDelaysDelivery(t *testing.T) {
	deliveredAt := func(pl *fault.Plane) sim.Time {
		eng := sim.NewEngine(1)
		b := newBus(eng)
		b.SetFaultPlane(pl)
		var at sim.Time
		b.Controller(2).SetNotify(func() { at = eng.Now() })
		eng.Go("sender", func(p *sim.Proc) {
			b.SendIPI(p, 0, mach.MaskOf(2), VectorCallFunction)
		})
		eng.Run()
		return at
	}
	clean := deliveredAt(nil)
	pl := fault.New(7, fault.Spec{DelayP: 1, DelayMax: 10_000})
	slow := deliveredAt(pl)
	if slow <= clean {
		t.Fatalf("delayed delivery at %d, not after clean delivery %d", slow, clean)
	}
	if pl.Stats().Delays != 1 {
		t.Fatalf("plane Delays = %d, want 1", pl.Stats().Delays)
	}
}

func TestFaultedDeliveryDeterministic(t *testing.T) {
	// Same (seed, spec) → same drop/delay sequence, independent of
	// anything outside the plane.
	run := func() (Stats, fault.Stats) {
		eng := sim.NewEngine(1)
		b := newBus(eng)
		pl := fault.New(99, fault.Spec{DropP: 0.5, DelayP: 0.5, DelayMax: 5_000})
		b.SetFaultPlane(pl)
		eng.Go("sender", func(p *sim.Proc) {
			for i := 0; i < 32; i++ {
				b.SendIPI(p, 0, mach.MaskOf(2, 30), VectorCallFunction)
			}
		})
		eng.Run()
		return b.Stats(), pl.Stats()
	}
	s1, f1 := run()
	s2, f2 := run()
	if s1 != s2 || f1 != f2 {
		t.Fatalf("faulted runs diverged:\n  bus %+v vs %+v\n  plane %+v vs %+v", s1, s2, f1, f2)
	}
	if s1.IPIsDropped == 0 || s1.IPIsDelayed == 0 {
		t.Fatalf("p=0.5 schedule injected nothing over 64 sends: %+v", s1)
	}
}

func TestMaskedAccessorAndNMIDeliverable(t *testing.T) {
	eng := sim.NewEngine(1)
	b := newBus(eng)
	ctrl := b.Controller(6)
	if ctrl.Masked() {
		t.Fatal("controller born masked")
	}
	ctrl.SetMasked(true)
	if !ctrl.Masked() {
		t.Fatal("Masked() lost the mask")
	}
	eng.Go("sender", func(p *sim.Proc) { b.SendNMI(p, 0, 6) })
	eng.Run()
	if !ctrl.Deliverable() {
		t.Fatal("pending NMI not deliverable under mask")
	}
}
