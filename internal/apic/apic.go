// Package apic models a per-CPU local interrupt controller and the x2APIC
// inter-processor-interrupt fabric in cluster mode.
//
// On Intel CPUs with more than 8 logical processors, the x2APIC groups CPUs
// into clusters of up to 16 and a multicast IPI can only address a subset
// of a single cluster (paper §2.2). The Bus therefore charges the initiator
// one ICR write per cluster touched, and delivers to each target after a
// topology-dependent wire latency. Interrupt masking and NMI bypass are
// modeled so the shootdown protocol sees realistic delivery behaviour.
package apic

import (
	"shootdown/internal/fault"
	"shootdown/internal/mach"
	"shootdown/internal/sim"
)

// Vector is an interrupt vector number.
type Vector uint8

// Vectors used by the simulated kernel, mirroring Linux's layout.
const (
	// VectorNMI is the non-maskable interrupt.
	VectorNMI Vector = 2
	// VectorCallFunction is the SMP function-call (TLB shootdown) vector.
	VectorCallFunction Vector = 0xfb
	// VectorReschedule is the scheduler kick vector.
	VectorReschedule Vector = 0xfd
)

// ClusterSize is the x2APIC logical-mode cluster width.
const ClusterSize = 16

// IRQ is one delivered interrupt.
type IRQ struct {
	Vector Vector
	From   mach.CPU
	SentAt sim.Time
}

// Controller is a per-CPU local APIC: it queues delivered interrupts and
// notifies its CPU model when one becomes deliverable.
type Controller struct {
	cpu     mach.CPU
	masked  bool
	pending []IRQ

	// notify is invoked (at delivery time, on the engine goroutine)
	// whenever a deliverable interrupt is enqueued. The CPU model uses it
	// to wake its process. NMIs always notify.
	notify func()
}

// SetNotify installs the wakeup callback.
func (c *Controller) SetNotify(fn func()) { c.notify = fn }

// SetMasked sets the interrupt-flag state (true = IF clear, IRQs held).
// Unmasking with pending interrupts triggers the notify callback.
func (c *Controller) SetMasked(m bool) {
	was := c.masked
	c.masked = m
	if was && !m && len(c.pending) > 0 && c.notify != nil {
		c.notify()
	}
}

// Masked reports whether maskable interrupts are currently held.
func (c *Controller) Masked() bool { return c.masked }

// Deliverable reports whether an interrupt can be taken right now.
func (c *Controller) Deliverable() bool {
	if len(c.pending) == 0 {
		return false
	}
	if !c.masked {
		return true
	}
	for _, irq := range c.pending {
		if irq.Vector == VectorNMI {
			return true
		}
	}
	return false
}

// Take dequeues the next deliverable interrupt (NMIs first, then FIFO).
// ok is false when nothing is deliverable.
func (c *Controller) Take() (IRQ, bool) {
	for i, irq := range c.pending {
		if irq.Vector == VectorNMI {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return irq, true
		}
	}
	if c.masked || len(c.pending) == 0 {
		return IRQ{}, false
	}
	irq := c.pending[0]
	c.pending = c.pending[1:]
	return irq, true
}

// Pending returns the number of queued interrupts.
func (c *Controller) Pending() int { return len(c.pending) }

func (c *Controller) inject(irq IRQ) {
	c.pending = append(c.pending, irq)
	if (!c.masked || irq.Vector == VectorNMI) && c.notify != nil {
		c.notify()
	}
}

// Stats counts IPI fabric activity.
type Stats struct {
	// ICRWrites is the number of interrupt-command-register writes the
	// initiators paid for (one per cluster per send).
	ICRWrites uint64
	// IPIsDelivered is the number of interrupts injected into controllers.
	IPIsDelivered uint64
	// MulticastSends is the number of SendIPI calls with >1 target.
	MulticastSends uint64
	// IPIsDropped counts shootdown kicks the fault plane lost in the
	// fabric (the initiator paid the ICR write; nothing arrives).
	IPIsDropped uint64
	// IPIsDelayed counts deliveries the fault plane slowed beyond the
	// topology wire latency.
	IPIsDelayed uint64
}

// Bus is the IPI fabric connecting all controllers.
type Bus struct {
	eng   *sim.Engine
	topo  mach.Topology
	cost  *mach.CostModel
	ctrls []*Controller
	fault *fault.Plane
	stats Stats
}

// SetFaultPlane attaches the fault plane; nil detaches it. With no plane
// every delivery takes exactly the topology wire latency.
func (b *Bus) SetFaultPlane(pl *fault.Plane) { b.fault = pl }

// NewBus creates the fabric and one controller per logical CPU.
func NewBus(eng *sim.Engine, topo mach.Topology, cost *mach.CostModel) *Bus {
	b := &Bus{eng: eng, topo: topo, cost: cost}
	b.ctrls = make([]*Controller, topo.NumCPUs())
	for i := range b.ctrls {
		b.ctrls[i] = &Controller{cpu: mach.CPU(i)}
	}
	return b
}

// Controller returns the local APIC of cpu.
func (b *Bus) Controller(cpu mach.CPU) *Controller { return b.ctrls[cpu] }

// Stats returns a snapshot of fabric counters.
func (b *Bus) Stats() Stats { return b.stats }

// clusterOf returns the x2APIC cluster id of a CPU.
func clusterOf(cpu mach.CPU) int { return int(cpu) / ClusterSize }

// SendIPI sends vector from the initiator (running as p) to every CPU in
// targets. The call charges the initiator one ICR write per x2APIC cluster
// touched and returns once all ICR writes retire; deliveries land
// asynchronously after per-target wire latency.
func (b *Bus) SendIPI(p *sim.Proc, from mach.CPU, targets mach.CPUMask, vec Vector) {
	cpus := targets.CPUs()
	if len(cpus) == 0 {
		return
	}
	if len(cpus) > 1 {
		b.stats.MulticastSends++
	}
	lastCluster := -1
	for _, t := range cpus {
		if cl := clusterOf(t); cl != lastCluster {
			p.Delay(b.cost.IPIWriteICR)
			b.stats.ICRWrites++
			lastCluster = cl
		}
		b.deliverAfter(from, t, vec)
	}
}

// SendNMI sends a non-maskable interrupt to one CPU.
func (b *Bus) SendNMI(p *sim.Proc, from, to mach.CPU) {
	p.Delay(b.cost.IPIWriteICR)
	b.stats.ICRWrites++
	b.deliverAfter(from, to, VectorNMI)
}

func (b *Bus) deliverAfter(from, to mach.CPU, vec Vector) {
	lat := b.cost.IPIDeliverCost(b.topo.DistanceBetween(from, to))
	// Fault plane: only the shootdown kick is droppable — the request
	// stays queued on the target's CSQ, so a lost kick is recoverable by
	// re-sending. NMIs are never perturbed (the early-ack protocol's
	// correctness leans on their promptness), and reschedule kicks are
	// scheduler traffic, not shootdown protocol under test.
	if vec == VectorCallFunction {
		if b.fault.DropKick() {
			b.stats.IPIsDropped++
			return
		}
		if d := b.fault.DeliverDelay(); d > 0 {
			b.stats.IPIsDelayed++
			lat += d
		}
	}
	sent := b.eng.Now()
	b.eng.After(lat, func() {
		b.stats.IPIsDelivered++
		b.ctrls[to].inject(IRQ{Vector: vec, From: from, SentAt: sent})
	})
}
