package core_test

import (
	"testing"

	"shootdown/internal/core"
	"shootdown/internal/kernel"
	"shootdown/internal/mach"
	"shootdown/internal/mm"
	"shootdown/internal/pagetable"
	"shootdown/internal/sim"
	"shootdown/internal/syscalls"
	"shootdown/internal/tlb"
)

// newKernelWith builds a kernel with an explicit config (extensions need
// kernel-level flags the shared newWorld helper does not expose).
func newKernelWith(t *testing.T, eng *sim.Engine, kcfg kernel.Config) *kernel.Kernel {
	t.Helper()
	return kernel.New(eng, mach.DefaultTopology(), mach.DefaultCosts(), kcfg)
}

// fracturedEntry returns a TLB entry marked as a fractured translation
// (guest hugepage on 4K host backing).
func fracturedEntry() tlb.Entry {
	return tlb.Entry{
		VA: 0x7000_0000, Frame: 99, Size: pagetable.Size4K,
		Flags: pagetable.Present | pagetable.User, Fractured: true,
	}
}

// --- FreeBSD-style serialized shootdowns (smp_ipi_mtx, §3.3) ---

// TestSerializedIPIsSlowerUnderContention shows why Linux's concurrent
// shootdown design matters: with a global shootdown mutex, two initiators
// flushing simultaneously serialize and the combined makespan grows.
func TestSerializedIPIsSlowerUnderContention(t *testing.T) {
	run := func(serialized bool) sim.Time {
		cfg := core.Config{SerializedIPIs: serialized}
		w := newWorld(t, true, cfg, 21)
		as := w.k.NewAddressSpace()
		stop := false
		// One responder keeps the mm active so every madvise shoots.
		w.k.CPU(4).Spawn(&kernel.Task{Name: "resp", MM: as, Fn: func(ctx *kernel.Ctx) {
			for !stop {
				ctx.UserRun(1000)
			}
		}})
		finished := 0
		var endAt sim.Time
		for _, cpu := range []mach.CPU{0, 2} {
			w.k.CPU(cpu).Spawn(&kernel.Task{Name: "init", MM: as, Fn: func(ctx *kernel.Ctx) {
				v, err := syscalls.MMap(ctx, 4*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < 15; i++ {
					ctx.Touch(v.Start, mm.AccessWrite)
					if err := syscalls.MadviseDontneed(ctx, v.Start, pg); err != nil {
						t.Error(err)
					}
				}
				finished++
				if finished == 2 {
					endAt = ctx.P.Now()
					stop = true
				}
			}})
		}
		w.eng.Run()
		return endAt
	}
	linux := run(false)
	freebsd := run(true)
	if freebsd <= linux {
		t.Fatalf("serialized shootdowns (%d) not slower than concurrent ones (%d)", freebsd, linux)
	}
}

// --- LATR-style lazy shootdowns (§2.3.2) ---

// TestLazyRemoteFasterButUnsafe demonstrates both sides of the paper's
// argument: lazy asynchronous shootdowns make the initiator faster (no
// IPI round trip), but open a window in which another thread can still
// access an unmapped page through its stale translation after the
// munmap-like call has returned — the exact violation (userfaultfd-style
// expectations) the paper describes.
func TestLazyRemoteFasterButUnsafe(t *testing.T) {
	type outcome struct {
		madviseCycles uint64
		staleAccessOK bool
	}
	run := func(lazy bool) outcome {
		cfg := core.Config{LazyRemote: lazy}
		w := newWorld(t, true, cfg, 31)
		as := w.k.NewAddressSpace()
		var out outcome
		var probeVA uint64
		phase := 0

		w.k.CPU(2).Spawn(&kernel.Task{Name: "victim", MM: as, Fn: func(ctx *kernel.Ctx) {
			for probeVA == 0 {
				ctx.UserRun(500)
			}
			// Cache the translation.
			if err := ctx.Touch(probeVA, mm.AccessRead); err != nil {
				t.Error(err)
			}
			phase = 1
			// Pure user-space compute: no kernel entry, so a lazy sweep
			// cannot run here.
			for phase == 1 {
				ctx.UserRun(200)
			}
			// The initiator's madvise has returned and the page is gone
			// from the page tables. A correct protocol guarantees the
			// victim's TLB no longer translates probeVA (the next access
			// re-faults); the lazy protocol leaves the stale entry in
			// place, and an access completes at L1-hit cost through a
			// translation to a freed frame.
			_, stillCached := w.k.CPU(2).TLB.Lookup(w.k.PCIDOf(as, true), probeVA)
			before := ctx.P.Now()
			if err := ctx.Touch(probeVA, mm.AccessRead); err != nil {
				t.Error(err)
			}
			hitCost := uint64(ctx.P.Now()-before) == w.k.Cost.L1Hit
			out.staleAccessOK = stillCached && hitCost
			phase = 3
		}})
		w.k.CPU(0).Spawn(&kernel.Task{Name: "init", MM: as, Fn: func(ctx *kernel.Ctx) {
			v, err := syscalls.MMap(ctx, 4*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
			if err != nil {
				t.Error(err)
				return
			}
			if err := ctx.Touch(v.Start, mm.AccessWrite); err != nil {
				t.Error(err)
			}
			probeVA = v.Start
			for phase == 0 {
				ctx.UserRun(500)
			}
			start := ctx.P.Now()
			if err := syscalls.MadviseDontneed(ctx, v.Start, pg); err != nil {
				t.Error(err)
			}
			out.madviseCycles = uint64(ctx.P.Now() - start)
			phase = 2
			for phase != 3 {
				ctx.UserRun(500)
			}
		}})
		w.eng.Run()
		return out
	}
	safe := run(false)
	lazy := run(true)
	if lazy.madviseCycles >= safe.madviseCycles {
		t.Fatalf("lazy initiator (%d) not faster than synchronous (%d)", lazy.madviseCycles, safe.madviseCycles)
	}
	if safe.staleAccessOK {
		t.Fatal("synchronous protocol let a stale access succeed — coherence broken")
	}
	if !lazy.staleAccessOK {
		t.Fatal("lazy protocol did not exhibit the §2.3.2 stale-access window (model too strong?)")
	}
}

// TestLazyRemoteEventuallyFlushes: the lazy sweep does run at the next
// kernel entry, so the window closes once the target enters the kernel.
func TestLazyRemoteEventuallyFlushes(t *testing.T) {
	cfg := core.Config{LazyRemote: true}
	w := newWorld(t, true, cfg, 33)
	as := w.k.NewAddressSpace()
	var probeVA uint64
	phase := 0
	w.k.CPU(2).Spawn(&kernel.Task{Name: "victim", MM: as, Fn: func(ctx *kernel.Ctx) {
		for probeVA == 0 {
			ctx.UserRun(500)
		}
		ctx.Touch(probeVA, mm.AccessRead)
		phase = 1
		for phase == 1 {
			ctx.UserRun(500)
		}
		// Enter the kernel: the lazy sweep runs here.
		syscalls.MadviseDontneed(ctx, probeVA, pg) // any syscall works
		if _, ok := w.k.CPU(2).TLB.Lookup(w.k.PCIDOf(as, true), probeVA); ok {
			t.Error("stale entry survived the lazy sweep at kernel entry")
		}
		phase = 3
	}})
	w.k.CPU(0).Spawn(&kernel.Task{Name: "init", MM: as, Fn: func(ctx *kernel.Ctx) {
		v, err := syscalls.MMap(ctx, 4*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
		if err != nil {
			t.Error(err)
			return
		}
		ctx.Touch(v.Start, mm.AccessWrite)
		probeVA = v.Start
		for phase == 0 {
			ctx.UserRun(500)
		}
		syscalls.MadviseDontneed(ctx, v.Start, pg)
		phase = 2
		for phase != 3 {
			ctx.UserRun(500)
		}
	}})
	w.eng.Run()
	if w.f.Stats().LazyDeferred == 0 {
		t.Fatal("no lazy deferrals recorded")
	}
}

// --- §6 hardware message IPI ---

func TestHWMessageIPIReducesCoherenceTraffic(t *testing.T) {
	run := func(hw bool) (initCycles uint64, transfers uint64) {
		eng := sim.NewEngine(17)
		kcfg := kernel.DefaultConfig()
		kcfg.HWMessageIPI = hw
		k := newKernelWith(t, eng, kcfg)
		cfg := core.Config{HWMessageIPI: hw}
		f, err := core.NewFlusher(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		k.SetFlusher(f)
		k.Start()
		as := k.NewAddressSpace()
		stop := false
		k.CPU(28).Spawn(&kernel.Task{Name: "resp", MM: as, Fn: func(ctx *kernel.Ctx) {
			for !stop {
				ctx.UserRun(1000)
			}
		}})
		k.CPU(0).Spawn(&kernel.Task{Name: "init", MM: as, Fn: func(ctx *kernel.Ctx) {
			ctx.UserRun(5000)
			v, err := syscalls.MMap(ctx, 4*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
			if err != nil {
				t.Error(err)
				stop = true
				return
			}
			for i := 0; i < 10; i++ {
				ctx.Touch(v.Start, mm.AccessWrite)
				k.Dir.ResetStats()
				start := ctx.P.Now()
				if err := syscalls.MadviseDontneed(ctx, v.Start, pg); err != nil {
					t.Error(err)
				}
				initCycles = uint64(ctx.P.Now() - start)
				transfers = k.Dir.Stats().Transfers()
			}
			stop = true
		}})
		eng.Run()
		return
	}
	swCycles, swTransfers := run(false)
	hwCycles, hwTransfers := run(true)
	if hwTransfers >= swTransfers {
		t.Fatalf("hw-message IPI transfers (%d) not below software (%d)", hwTransfers, swTransfers)
	}
	if hwCycles >= swCycles {
		t.Fatalf("hw-message IPI (%d cycles) not faster than software (%d)", hwCycles, swCycles)
	}
}

func TestHWMessageConfigMismatchRejected(t *testing.T) {
	eng := sim.NewEngine(1)
	k := newKernelWith(t, eng, kernel.DefaultConfig()) // kernel without hw messages
	if _, err := core.NewFlusher(k, core.Config{HWMessageIPI: true}); err == nil {
		t.Fatal("mismatched HWMessageIPI accepted")
	}
}

// --- §7 paravirtual fracture hint ---

func TestParavirtFractureHint(t *testing.T) {
	run := func(hint bool) (cycles uint64, paravirt uint64) {
		eng := sim.NewEngine(13)
		kcfg := kernel.DefaultConfig()
		kcfg.NestedPaging = true
		kcfg.ParavirtFractureHint = hint
		k := newKernelWith(t, eng, kcfg)
		f, err := core.NewFlusher(k, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		k.SetFlusher(f)
		k.Start()
		as := k.NewAddressSpace()
		k.CPU(0).Spawn(&kernel.Task{Name: "guest", MM: as, Fn: func(ctx *kernel.Ctx) {
			v, err := syscalls.MMap(ctx, 16*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
			if err != nil {
				t.Error(err)
				return
			}
			// Mark the TLB as holding fractured translations, as a guest
			// on 4K host backing would after touching a guest hugepage.
			ctx.CPU.TLB.Fill(as.KernelPCID, fracturedEntry())
			for i := uint64(0); i < 8; i++ {
				ctx.Touch(v.Start+i*pg, mm.AccessWrite)
			}
			start := ctx.P.Now()
			if err := syscalls.MadviseDontneed(ctx, v.Start, 8*pg); err != nil {
				t.Error(err)
			}
			cycles = uint64(ctx.P.Now() - start)
		}})
		eng.Run()
		return cycles, f.Stats().ParavirtFullFlushes
	}
	noHint, pv0 := run(false)
	withHint, pv1 := run(true)
	if pv0 != 0 || pv1 == 0 {
		t.Fatalf("paravirt counters: without=%d with=%d", pv0, pv1)
	}
	if withHint >= noHint {
		t.Fatalf("fracture hint (%d cycles) not faster than N escalating INVLPGs (%d)", withHint, noHint)
	}
}
