package core_test

import (
	"testing"
	"testing/quick"

	"shootdown/internal/core"
	"shootdown/internal/kernel"
	"shootdown/internal/mach"
	"shootdown/internal/mm"
	"shootdown/internal/sim"
	"shootdown/internal/syscalls"
)

// TestCoherenceFuzz is the repository's central safety property: under
// *any* combination of optimizations and *any* interleaving of
// PTE-changing operations across CPUs, a completed run leaves no actively
// running CPU with a TLB translation that contradicts the page tables.
// This is the "without sacrificing safety and correctness" claim of the
// paper, checked end to end.
func TestCoherenceFuzz(t *testing.T) {
	type fuzzCase struct {
		Seed    uint64
		CfgBits uint8
		PTI     bool
		Ops     []uint16
	}
	f := func(c fuzzCase) bool {
		cfg := core.Config{
			ConcurrentFlush:        c.CfgBits&1 != 0,
			EarlyAck:               c.CfgBits&2 != 0,
			CachelineConsolidation: c.CfgBits&4 != 0,
			InContextFlush:         c.CfgBits&8 != 0,
			AvoidCoWFlush:          c.CfgBits&16 != 0,
			UserspaceBatching:      c.CfgBits&32 != 0,
		}
		if len(c.Ops) > 60 {
			c.Ops = c.Ops[:60]
		}
		w := newWorld(t, c.PTI, cfg, c.Seed|1)
		as := w.k.NewAddressSpace()
		file := w.k.NewFile("fuzz", 32*pg)

		cpus := []mach.CPU{0, 1, 2, 28}
		perCPU := len(c.Ops)/len(cpus) + 1
		var tasks []*kernel.Task
		for ti, cpu := range cpus {
			lo := ti * perCPU
			hi := lo + perCPU
			if lo > len(c.Ops) {
				lo = len(c.Ops)
			}
			if hi > len(c.Ops) {
				hi = len(c.Ops)
			}
			ops := c.Ops[lo:hi]
			task := &kernel.Task{Name: "fuzz", MM: as, Fn: func(ctx *kernel.Ctx) {
				// Every task owns a disjoint fixed arena plus a shared
				// file mapping, so mmap/munmap races stay well-formed
				// while faults and flushes interleave freely.
				base := uint64(0x2000_0000) + uint64(ti)*0x100_0000
				arena, err := ctx.MM().MMapFixed(base, 16*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
				if err != nil {
					t.Error(err)
					return
				}
				shared, err := syscalls.MMap(ctx, 16*pg, mm.ProtRead|mm.ProtWrite, mm.FileShared, file, 0)
				if err != nil {
					t.Error(err)
					return
				}
				priv, err := syscalls.MMap(ctx, 8*pg, mm.ProtRead|mm.ProtWrite, mm.FilePrivate, file, 0)
				if err != nil {
					t.Error(err)
					return
				}
				for _, op := range ops {
					page := uint64(op>>4) % 8
					switch op % 9 {
					case 0, 1:
						ctx.Touch(arena.Start+page*pg, mm.AccessWrite)
					case 2:
						ctx.Touch(shared.Start+page*pg, mm.AccessWrite)
					case 3:
						ctx.Touch(shared.Start+page*pg, mm.AccessRead)
					case 4:
						ctx.Touch(priv.Start+page*pg, mm.AccessRead)
						ctx.Touch(priv.Start+page*pg, mm.AccessWrite) // CoW
					case 5:
						syscalls.MadviseDontneed(ctx, arena.Start+page*pg, pg)
					case 6:
						syscalls.Fdatasync(ctx, file)
					case 7:
						syscalls.Mprotect(ctx, arena.Start, 2*pg, mm.ProtRead)
						syscalls.Mprotect(ctx, arena.Start, 2*pg, mm.ProtRead|mm.ProtWrite)
					case 8:
						ctx.UserRun(3000)
					}
				}
			}}
			w.k.CPU(cpu).Spawn(task)
			tasks = append(tasks, task)
		}
		w.eng.Run()
		for _, task := range tasks {
			if !task.Done() {
				t.Error("fuzz task did not finish (deadlock?)")
				return false
			}
		}
		before := t.Failed()
		checkCoherence(t, w.k, as)
		return !t.Failed() || before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminismFuzz: identical fuzz inputs produce identical final
// virtual times, across every optimization combination.
func TestDeterminismFuzz(t *testing.T) {
	run := func(bits uint8, seed uint64) sim.Time {
		cfg := core.Config{
			ConcurrentFlush:        bits&1 != 0,
			EarlyAck:               bits&2 != 0,
			CachelineConsolidation: bits&4 != 0,
			InContextFlush:         bits&8 != 0,
			AvoidCoWFlush:          bits&16 != 0,
			UserspaceBatching:      bits&32 != 0,
		}
		w := newWorld(t, true, cfg, seed)
		as := w.k.NewAddressSpace()
		file := w.k.NewFile("d", 16*pg)
		for _, cpu := range []mach.CPU{0, 2} {
			w.k.CPU(cpu).Spawn(&kernel.Task{Name: "d", MM: as, Fn: func(ctx *kernel.Ctx) {
				v, err := syscalls.MMap(ctx, 8*pg, mm.ProtRead|mm.ProtWrite, mm.FileShared, file, 0)
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < 10; i++ {
					ctx.Touch(v.Start+uint64(i%8)*pg, mm.AccessWrite)
					if i%4 == 3 {
						syscalls.Fdatasync(ctx, file)
					}
				}
			}})
		}
		w.eng.Run()
		return w.eng.Now()
	}
	for bits := uint8(0); bits < 64; bits += 9 {
		a := run(bits, 77)
		b := run(bits, 77)
		if a != b {
			t.Fatalf("bits=%#b: non-deterministic end times %d vs %d", bits, a, b)
		}
	}
}
