// Package core implements the paper's contribution: the Linux TLB
// shootdown protocol (flush_tlb_mm_range and flush_tlb_func of
// arch/x86/mm/tlb.c, circa 5.2.8) and the six optimizations of
// "Don't shoot down TLB shootdowns!" (EuroSys '20), each independently
// toggleable:
//
//  1. Concurrent flushing (§3.1): the initiator sends IPIs first and
//     flushes its local TLB while they are in flight.
//  2. Early acknowledgement (§3.2): responders ack on interrupt entry,
//     before flushing, unless page tables were freed.
//  3. Cacheline consolidation (§3.3): selected in the SMP layer; this
//     package routes the flush info accordingly (inlined vs. own line).
//  4. In-context flushing (§3.4): user-PCID flushes are deferred to the
//     return-to-user path where INVLPG applies, instead of eager INVPCID;
//     combined with (1), the initiator keeps flushing user PTEs until the
//     first remote ack arrives.
//  5. CoW flush avoidance (§4.1): a kernel write access replaces the local
//     INVLPG after a copy-on-write break (unless the page is executable).
//  6. Userspace-safe batching (§4.2): CPUs inside flagged system calls
//     receive queued flush work instead of IPIs, executed before they
//     return to user space.
package core

import "fmt"

// Config toggles the paper's optimizations. The zero value is the baseline
// Linux 5.2.8 protocol.
type Config struct {
	// ConcurrentFlush overlaps the initiator's local flush with IPI
	// delivery and remote flushing (§3.1).
	ConcurrentFlush bool
	// EarlyAck lets responders acknowledge on IRQ entry (§3.2). It is
	// automatically suppressed for flushes that free page tables.
	EarlyAck bool
	// CachelineConsolidation enables the §3.3 layout. It must match the
	// SMP layer's layout; NewFlusher validates this.
	CachelineConsolidation bool
	// InContextFlush defers selective user-PCID flushes to kernel exit
	// (§3.4). Only meaningful with PTI.
	InContextFlush bool
	// AvoidCoWFlush replaces the local flush in the CoW handler with a
	// kernel write access (§4.1).
	AvoidCoWFlush bool
	// UserspaceBatching skips IPIs to CPUs inside batched-mode system
	// calls, queueing their flush work instead (§4.2).
	UserspaceBatching bool

	// --- Comparative baselines and extensions beyond the paper's patch
	// set (see EXPERIMENTS.md "extensions") ---

	// SerializedIPIs emulates FreeBSD's smp_ipi_mtx (§3.3): a global
	// mutex allows only one TLB shootdown to be delivered and served at
	// a time, machine wide. A comparative baseline showing why Linux's
	// concurrent-shootdown design matters under contention.
	SerializedIPIs bool
	// LazyRemote emulates LATR-style asynchronous shootdowns (§2.3.2):
	// remote flushes are queued and executed lazily at each target's
	// next kernel entry, with no IPIs and no waiting. UNSAFE by design —
	// it opens the exact correctness window the paper criticizes (a
	// stale translation stays usable after munmap returns); tests
	// demonstrate the violation.
	LazyRemote bool
	// HWMessageIPI models the hardware extension the paper wishes for in
	// §6: the IPI itself carries the flush information, so no shootdown
	// data travels through shared-memory cachelines (no CFD/CSQ/info
	// transfers for the payload; the acknowledgement remains in memory).
	HWMessageIPI bool
	// BrokenEarlyAck disables the FreedTables early-ack suppression (§3.2),
	// deliberately reintroducing the use-after-free window the paper's
	// patch closes: a responder acknowledges before flushing even though
	// the initiator is about to free page-table pages. UNSAFE by design —
	// it exists so the happens-before race detector (internal/race) has a
	// known-bad protocol variant to flag; tests assert it reports exactly
	// one race.
	BrokenEarlyAck bool
	// AsyncShootdown routes non-table-freeing flushes through the
	// queue-based asynchronous fabric (smp/fabric.go): the initiator
	// posts the range to each target's per-CPU invalidation ring, kicks
	// idle rings once, flushes locally, and returns without spinning;
	// responders drain whole batches at IRQ entry and return-to-user and
	// ack by sequence number. FreedTables flushes stay on the
	// synchronous ack path — reclaiming page tables before every
	// responder finished is never safe to defer, which also keeps the
	// §3.2 ack-ordering proof intact. Incompatible with SerializedIPIs
	// and LazyRemote (they model competing dispatch disciplines).
	AsyncShootdown bool
	// BrokenAckBeforeDrain makes the async drain applier defer the
	// actual invalidations to lazy kernel-entry work, so the fabric's
	// sequence ack — and the batch completion that closes the flush
	// obligation window — fires before the flush lands. UNSAFE by
	// design, BrokenEarlyAck-style: it exists so the sanitizer's
	// deferred-discharge windows have a known-bad async variant to
	// catch; tests assert exactly one stale-translation violation.
	BrokenAckBeforeDrain bool
	// BrokenCoalesceShrink makes in-ring coalescing adopt the newer
	// inval's end instead of the max of both ends, so a merge with a
	// shorter newer entry silently stops covering the older entry's
	// tail. UNSAFE by design: it exists so the fabproof static tier
	// (coalescing soundness as interval containment) and the shadow-TLB
	// oracle convict the same bug; tests assert exactly one static
	// coverage-loss finding and exactly one stale-translation.
	BrokenCoalesceShrink bool
}

// Baseline returns the unmodified Linux protocol configuration.
func Baseline() Config { return Config{} }

// AllGeneral enables the four §3 techniques (the "all" bars in the
// microbenchmark figures).
func AllGeneral() Config {
	return Config{
		ConcurrentFlush:        true,
		EarlyAck:               true,
		CachelineConsolidation: true,
		InContextFlush:         true,
	}
}

// All enables every optimization in the paper.
func All() Config {
	c := AllGeneral()
	c.AvoidCoWFlush = true
	c.UserspaceBatching = true
	return c
}

// String lists the enabled optimizations.
func (c Config) String() string {
	out := ""
	add := func(on bool, name string) {
		if !on {
			return
		}
		if out != "" {
			out += "+"
		}
		out += name
	}
	add(c.ConcurrentFlush, "concurrent")
	add(c.EarlyAck, "earlyack")
	add(c.CachelineConsolidation, "cacheline")
	add(c.InContextFlush, "incontext")
	add(c.AvoidCoWFlush, "cow")
	add(c.UserspaceBatching, "batching")
	add(c.SerializedIPIs, "serialized")
	add(c.LazyRemote, "lazy")
	add(c.HWMessageIPI, "hwmsg")
	add(c.AsyncShootdown, "async")
	add(c.BrokenEarlyAck, "BROKEN-earlyack")
	add(c.BrokenAckBeforeDrain, "BROKEN-ackdrain")
	add(c.BrokenCoalesceShrink, "BROKEN-coalesce")
	if out == "" {
		return "baseline"
	}
	return out
}

// CumulativeConfigs returns the paper's presentation order: baseline, then
// each optimization added one at a time (legend order of Figures 5-11).
// includePTI controls whether in-context flushing appears (it is omitted
// in unsafe mode, where there is no PTI).
func CumulativeConfigs(includePTI bool) []Config {
	var out []Config
	c := Config{}
	out = append(out, c)
	c.ConcurrentFlush = true
	out = append(out, c)
	c.EarlyAck = true
	out = append(out, c)
	c.CachelineConsolidation = true
	out = append(out, c)
	if includePTI {
		c.InContextFlush = true
		out = append(out, c)
	}
	return out
}

// Stats counts protocol activity.
type Stats struct {
	// Shootdowns is the number of FlushAfter invocations that had remote
	// targets.
	Shootdowns uint64
	// LocalOnly counts flushes with no remote targets.
	LocalOnly uint64
	// RemoteSelective / RemoteFull / RemoteSkipped classify responder-side
	// outcomes: ranged flush, full-flush catch-up, or skip because the
	// local generation was already current (flush storms, §5.2).
	RemoteSelective, RemoteFull, RemoteSkipped uint64
	// LazySkips counts CPUs skipped because they idled in lazy-TLB mode.
	LazySkips uint64
	// BatchedSkips counts IPIs avoided via userspace-safe batching.
	BatchedSkips uint64
	// BatchedOverflows counts batched queues that spilled into a full
	// flush (more than the 4 tracked entries, §4.2).
	BatchedOverflows uint64
	// CoWWriteTricks / CoWLocalFlushes split §4.1 outcomes.
	CoWWriteTricks, CoWLocalFlushes uint64
	// EarlyAckSuppressed counts shootdowns that had to use late acks
	// because page tables were freed.
	EarlyAckSuppressed uint64
	// UserPTEsFlushedWhileWaiting counts user PTEs the initiator flushed
	// eagerly during the ack wait (§3.4 interaction).
	UserPTEsFlushedWhileWaiting uint64
	// LazyDeferred counts remote flushes deferred by the LATR-style
	// lazy extension instead of being delivered by IPI.
	LazyDeferred uint64
	// ParavirtFullFlushes counts ranged flushes converted to full flushes
	// by the §7 paravirtual fracture hint.
	ParavirtFullFlushes uint64
	// AsyncShootdowns counts flushes posted through the asynchronous
	// fabric instead of the synchronous ack path.
	AsyncShootdowns uint64
	// AsyncSyncFallbacks counts flushes that stayed synchronous under
	// AsyncShootdown because they freed page tables.
	AsyncSyncFallbacks uint64
}

func (c Config) validateAgainst(consolidatedSMP bool) error {
	if c.CachelineConsolidation != consolidatedSMP {
		return fmt.Errorf("core: config consolidation=%v but SMP layer built with %v",
			c.CachelineConsolidation, consolidatedSMP)
	}
	if c.AsyncShootdown && c.SerializedIPIs {
		return fmt.Errorf("core: AsyncShootdown is incompatible with SerializedIPIs (competing dispatch disciplines)")
	}
	if c.AsyncShootdown && c.LazyRemote {
		return fmt.Errorf("core: AsyncShootdown is incompatible with LazyRemote (competing dispatch disciplines)")
	}
	if c.BrokenAckBeforeDrain && !c.AsyncShootdown {
		return fmt.Errorf("core: BrokenAckBeforeDrain requires AsyncShootdown")
	}
	if c.BrokenCoalesceShrink && !c.AsyncShootdown {
		return fmt.Errorf("core: BrokenCoalesceShrink requires AsyncShootdown")
	}
	return nil
}
