package core_test

import (
	"testing"

	"shootdown/internal/core"
	"shootdown/internal/kernel"
	"shootdown/internal/mach"
	"shootdown/internal/mm"
	"shootdown/internal/pagetable"
	"shootdown/internal/sim"
	"shootdown/internal/syscalls"
	"shootdown/internal/tlb"
)

const pg = pagetable.PageSize4K

type world struct {
	eng *sim.Engine
	k   *kernel.Kernel
	f   *core.Flusher
}

func newWorld(t *testing.T, pti bool, cfg core.Config, seed uint64) *world {
	t.Helper()
	eng := sim.NewEngine(seed)
	kcfg := kernel.DefaultConfig()
	kcfg.PTI = pti
	kcfg.ConsolidatedCachelines = cfg.CachelineConsolidation
	k := kernel.New(eng, mach.DefaultTopology(), mach.DefaultCosts(), kcfg)
	f, err := core.NewFlusher(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k.SetFlusher(f)
	k.Start()
	return &world{eng, k, f}
}

// checkCoherence asserts that no CPU actively running as holds a TLB entry
// that disagrees with the page tables. CPUs that switched away or idle in
// lazy mode may hold stale PCID-tagged entries — those are flushed by the
// generation check before the mm is used again, so they are exempt.
func checkCoherence(t *testing.T, k *kernel.Kernel, as *mm.AddressSpace) {
	t.Helper()
	for _, c := range k.CPUs() {
		if c.CurrentMM() != as || c.Lazy() {
			continue
		}
		if c.HasPendingUserFlush() {
			// Deferred user flushes are pending: the CPU is in kernel
			// mode and will flush before touching user mappings.
			continue
		}
		for _, se := range c.TLB.Snapshot() {
			if se.PCID != as.KernelPCID && se.PCID != as.UserPCID {
				continue
			}
			tr, err := as.PT.Walk(se.Entry.VA)
			if err != nil {
				t.Errorf("cpu%d: TLB caches unmapped va %#x (pcid %d)", c.ID, se.Entry.VA, se.PCID)
				continue
			}
			if tr.Frame != se.Entry.Frame {
				t.Errorf("cpu%d: stale frame for va %#x: TLB %d, PT %d", c.ID, se.Entry.VA, se.Entry.Frame, tr.Frame)
			}
			if se.Entry.Flags.Has(pagetable.Write) && !tr.Flags.Has(pagetable.Write) {
				t.Errorf("cpu%d: TLB grants write at %#x but PT is read-only", c.ID, se.Entry.VA)
			}
		}
	}
}

// runMadviseScenario runs the paper's microbenchmark shape: an initiator
// mmaps, touches, and madvises pages while a responder busy-loops in the
// same address space. It returns the initiator syscall cycles and the
// responder interruption cycles.
func runMadviseScenario(t *testing.T, pti bool, cfg core.Config, pages uint64, respCPU mach.CPU) (initCycles, respCycles uint64, w *world) {
	t.Helper()
	w = newWorld(t, pti, cfg, 42)
	as := w.k.NewAddressSpace()

	respDone := false
	responder := &kernel.Task{Name: "responder", MM: as, Fn: func(ctx *kernel.Ctx) {
		for !respDone {
			ctx.UserRun(2000)
		}
	}}
	w.k.CPU(respCPU).Spawn(responder)

	initiator := &kernel.Task{Name: "initiator", MM: as, Fn: func(ctx *kernel.Ctx) {
		// Let the responder start and settle.
		ctx.UserRun(10_000)
		v, err := syscalls.MMap(ctx, 64*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
		if err != nil {
			t.Error(err)
			respDone = true
			return
		}
		for rep := 0; rep < 5; rep++ {
			for i := uint64(0); i < pages; i++ {
				if err := ctx.Touch(v.Start+i*pg, mm.AccessWrite); err != nil {
					t.Error(err)
				}
			}
			w.k.CPU(0).ResetCounters()
			start := ctx.P.Now()
			if err := syscalls.MadviseDontneed(ctx, v.Start, pages*pg); err != nil {
				t.Error(err)
			}
			initCycles = uint64(ctx.P.Now() - start)
			respCycles = w.k.CPU(respCPU).Interrupted
			w.k.CPU(respCPU).ResetCounters()
		}
		respDone = true
	}}
	w.k.CPU(0).Spawn(initiator)
	w.eng.Run()
	if !initiator.Done() || !responder.Done() {
		t.Fatal("tasks did not complete")
	}
	checkCoherence(t, w.k, as)
	return initCycles, respCycles, w
}

func TestMadviseShootdownBaseline(t *testing.T) {
	initCycles, respCycles, w := runMadviseScenario(t, true, core.Baseline(), 1, 2)
	if initCycles == 0 || respCycles == 0 {
		t.Fatalf("cycles: init=%d resp=%d", initCycles, respCycles)
	}
	// A shootdown costs "several thousand cycles".
	if initCycles < 2000 || initCycles > 50000 {
		t.Fatalf("initiator cycles %d outside plausible shootdown range", initCycles)
	}
	st := w.f.Stats()
	if st.Shootdowns == 0 {
		t.Fatalf("no shootdowns recorded: %+v", st)
	}
}

func TestShootdownRemovesRemoteEntries(t *testing.T) {
	w := newWorld(t, true, core.Baseline(), 7)
	as := w.k.NewAddressSpace()
	var vaProbe uint64
	stop := false

	resp := &kernel.Task{Name: "resp", MM: as, Fn: func(ctx *kernel.Ctx) {
		// Wait for the initiator to publish the address, then touch it so
		// this CPU's TLB caches the translation.
		for vaProbe == 0 {
			ctx.UserRun(1000)
		}
		if err := ctx.Touch(vaProbe, mm.AccessRead); err != nil {
			t.Error(err)
		}
		if _, ok := w.k.CPU(2).TLB.Lookup(w.k.PCIDOf(as, true), vaProbe); !ok {
			t.Error("responder TLB did not cache probe address")
		}
		for !stop {
			ctx.UserRun(1000)
		}
		// After the madvise shootdown the entry must be gone.
		if _, ok := w.k.CPU(2).TLB.Lookup(w.k.PCIDOf(as, true), vaProbe); ok {
			t.Error("stale translation survived the shootdown")
		}
	}}
	w.k.CPU(2).Spawn(resp)

	init := &kernel.Task{Name: "init", MM: as, Fn: func(ctx *kernel.Ctx) {
		v, err := syscalls.MMap(ctx, 4*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
		if err != nil {
			t.Error(err)
			stop = true
			return
		}
		if err := ctx.Touch(v.Start, mm.AccessWrite); err != nil {
			t.Error(err)
		}
		vaProbe = v.Start
		ctx.UserRun(20_000) // give the responder time to cache it
		if err := syscalls.MadviseDontneed(ctx, v.Start, pg); err != nil {
			t.Error(err)
		}
		stop = true
	}}
	w.k.CPU(0).Spawn(init)
	w.eng.Run()
	if !resp.Done() || !init.Done() {
		t.Fatal("tasks did not finish")
	}
	checkCoherence(t, w.k, as)
}

func TestConcurrentFlushFasterForInitiator(t *testing.T) {
	base, _, _ := runMadviseScenario(t, true, core.Baseline(), 10, 28)
	conc, _, _ := runMadviseScenario(t, true, core.Config{ConcurrentFlush: true}, 10, 28)
	if conc >= base {
		t.Fatalf("concurrent flush did not speed up initiator: %d vs %d", conc, base)
	}
}

func TestEarlyAckFasterForInitiator(t *testing.T) {
	c1 := core.Config{ConcurrentFlush: true}
	c2 := core.Config{ConcurrentFlush: true, EarlyAck: true}
	a, _, _ := runMadviseScenario(t, true, c1, 10, 28)
	b, _, _ := runMadviseScenario(t, true, c2, 10, 28)
	if b >= a {
		t.Fatalf("early ack did not speed up initiator: %d vs %d", b, a)
	}
}

func TestInContextReducesResponderTime(t *testing.T) {
	c1 := core.Config{ConcurrentFlush: true, EarlyAck: true}
	c2 := core.Config{ConcurrentFlush: true, EarlyAck: true, InContextFlush: true}
	_, r1, _ := runMadviseScenario(t, true, c1, 10, 28)
	_, r2, _ := runMadviseScenario(t, true, c2, 10, 28)
	if r2 >= r1 {
		t.Fatalf("in-context flushing did not reduce responder time: %d vs %d", r2, r1)
	}
}

func TestAllOptimizationsFasterThanBaseline(t *testing.T) {
	for _, pti := range []bool{true, false} {
		base, baseResp, _ := runMadviseScenario(t, pti, core.Baseline(), 10, 28)
		cfg := core.AllGeneral()
		cfg.CachelineConsolidation = true
		opt, optResp, _ := runMadviseScenario(t, pti, cfg, 10, 28)
		if opt >= base {
			t.Errorf("pti=%v: all-optimized initiator %d not faster than baseline %d", pti, opt, base)
		}
		if optResp >= baseResp {
			t.Errorf("pti=%v: all-optimized responder %d not faster than baseline %d", pti, optResp, baseResp)
		}
	}
}

func TestLazyCPUsSkipped(t *testing.T) {
	w := newWorld(t, true, core.Baseline(), 3)
	as := w.k.NewAddressSpace()
	// A task runs briefly on cpu 4 and exits; cpu 4 then idles lazily with
	// the mm still loaded.
	warm := &kernel.Task{Name: "warm", MM: as, Fn: func(ctx *kernel.Ctx) {
		ctx.UserRun(1000)
	}}
	w.k.CPU(4).Spawn(warm)

	init := &kernel.Task{Name: "init", MM: as, Fn: func(ctx *kernel.Ctx) {
		ctx.UserRun(20_000) // wait for cpu4 to go lazy
		if !w.k.CPU(4).Lazy() {
			t.Error("cpu4 not lazy")
		}
		v, err := syscalls.MMap(ctx, 4*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
		if err != nil {
			t.Error(err)
			return
		}
		ctx.Touch(v.Start, mm.AccessWrite)
		if err := syscalls.MadviseDontneed(ctx, v.Start, pg); err != nil {
			t.Error(err)
		}
	}}
	w.k.CPU(0).Spawn(init)
	w.eng.Run()
	st := w.f.Stats()
	if st.LazySkips == 0 {
		t.Fatalf("no lazy skips recorded: %+v", st)
	}
	// The lazy CPU received no IPI.
	if got := w.k.CPU(4).IRQsHandled; got != 0 {
		t.Fatalf("lazy cpu handled %d IRQs", got)
	}
}

// TestLazySkipIsCoherent verifies the safety side of lazy skipping: when a
// task later runs on the previously-lazy CPU, the generation check flushes
// the stale entries before any user access.
func TestLazySkipIsCoherent(t *testing.T) {
	w := newWorld(t, true, core.Baseline(), 9)
	as := w.k.NewAddressSpace()
	var probe uint64
	phase := 0

	t1 := &kernel.Task{Name: "warm", MM: as, Fn: func(ctx *kernel.Ctx) {
		for probe == 0 {
			ctx.UserRun(500)
		}
		ctx.Touch(probe, mm.AccessRead) // cache translation on cpu4
		phase = 1
	}}
	w.k.CPU(4).Spawn(t1)

	init := &kernel.Task{Name: "init", MM: as, Fn: func(ctx *kernel.Ctx) {
		v, err := syscalls.MMap(ctx, 4*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
		if err != nil {
			t.Error(err)
			return
		}
		ctx.Touch(v.Start, mm.AccessWrite)
		probe = v.Start
		for phase == 0 {
			ctx.UserRun(1000)
		}
		ctx.UserRun(20_000) // let cpu4 go lazy
		if err := syscalls.MadviseDontneed(ctx, v.Start, pg); err != nil {
			t.Error(err)
		}
		phase = 2
	}}
	w.k.CPU(0).Spawn(init)

	// Re-run a task on cpu4 afterwards: it must not see the stale entry.
	late := &kernel.Task{Name: "late", MM: as, Fn: func(ctx *kernel.Ctx) {
		for phase != 2 {
			ctx.UserRun(1000)
		}
		// The generation catch-up ran at task start only if phase==2 was
		// already true; re-reading through Touch must fault (page gone),
		// not hit a stale entry.
		if _, ok := w.k.CPU(4).TLB.Lookup(w.k.PCIDOf(as, true), probe); ok {
			// Allowed only while the CPU still has a pending catch-up;
			// after CatchUpGen it must be gone. Force the check:
			w.k.CPU(4).CatchUpGen(ctx.P, as)
			if _, ok := w.k.CPU(4).TLB.Lookup(w.k.PCIDOf(as, true), probe); ok {
				t.Error("stale entry survived generation catch-up")
			}
		}
	}}
	// Spawn late only after the shootdown to ensure cpu4 idles through it.
	w.eng.Go("spawner", func(p *sim.Proc) {
		for phase != 2 {
			p.Delay(5000)
		}
		w.k.CPU(4).Spawn(late)
	})
	w.eng.Run()
	if !late.Done() {
		t.Fatal("late task did not run")
	}
	checkCoherence(t, w.k, as)
}

func TestEarlyAckSuppressedOnMunmap(t *testing.T) {
	cfg := core.Config{ConcurrentFlush: true, EarlyAck: true}
	w := newWorld(t, true, cfg, 11)
	as := w.k.NewAddressSpace()
	stop := false
	resp := &kernel.Task{Name: "resp", MM: as, Fn: func(ctx *kernel.Ctx) {
		for !stop {
			ctx.UserRun(1000)
		}
	}}
	w.k.CPU(2).Spawn(resp)
	init := &kernel.Task{Name: "init", MM: as, Fn: func(ctx *kernel.Ctx) {
		ctx.UserRun(5000)
		v, err := syscalls.MMap(ctx, 4*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
		if err != nil {
			t.Error(err)
			stop = true
			return
		}
		ctx.Touch(v.Start, mm.AccessWrite)
		if err := syscalls.Munmap(ctx, v.Start, v.Len()); err != nil {
			t.Error(err)
		}
		stop = true
	}}
	w.k.CPU(0).Spawn(init)
	w.eng.Run()
	st := w.f.Stats()
	if st.EarlyAckSuppressed == 0 {
		t.Fatalf("munmap (freed tables) did not suppress early ack: %+v", st)
	}
	// The SMP layer must have used a late ack.
	if w.k.SMP.Stats().EarlyAcks != 0 {
		t.Fatalf("early acks used despite freed tables: %+v", w.k.SMP.Stats())
	}
}

func TestCoWTrickAvoidsFlush(t *testing.T) {
	run := func(avoid bool) (cycles uint64, st core.Stats) {
		cfg := core.Config{AvoidCoWFlush: avoid}
		w := newWorld(t, true, cfg, 5)
		as := w.k.NewAddressSpace()
		file := w.k.NewFile("f", 16*pg)
		task := &kernel.Task{Name: "cow", MM: as, Fn: func(ctx *kernel.Ctx) {
			v, err := syscalls.MMap(ctx, 16*pg, mm.ProtRead|mm.ProtWrite, mm.FilePrivate, file, 0)
			if err != nil {
				t.Error(err)
				return
			}
			// Read first so the page maps read-only (CoW armed).
			if err := ctx.Touch(v.Start, mm.AccessRead); err != nil {
				t.Error(err)
			}
			start := ctx.P.Now()
			if err := ctx.Touch(v.Start, mm.AccessWrite); err != nil {
				t.Error(err)
			}
			cycles = uint64(ctx.P.Now() - start)
		}}
		w.k.CPU(0).Spawn(task)
		w.eng.Run()
		checkCoherence(t, w.k, as)
		return cycles, w.f.Stats()
	}
	baseCycles, baseStats := run(false)
	optCycles, optStats := run(true)
	if baseStats.CoWLocalFlushes != 1 || baseStats.CoWWriteTricks != 0 {
		t.Fatalf("baseline stats = %+v", baseStats)
	}
	if optStats.CoWWriteTricks != 1 || optStats.CoWLocalFlushes != 0 {
		t.Fatalf("optimized stats = %+v", optStats)
	}
	if optCycles >= baseCycles {
		t.Fatalf("CoW trick not faster: %d vs %d", optCycles, baseCycles)
	}
}

func TestCoWTrickSkippedForExecutablePages(t *testing.T) {
	cfg := core.Config{AvoidCoWFlush: true}
	w := newWorld(t, true, cfg, 6)
	as := w.k.NewAddressSpace()
	file := w.k.NewFile("lib", 8*pg)
	task := &kernel.Task{Name: "jit", MM: as, Fn: func(ctx *kernel.Ctx) {
		v, err := syscalls.MMap(ctx, 8*pg, mm.ProtRead|mm.ProtWrite|mm.ProtExec, mm.FilePrivate, file, 0)
		if err != nil {
			t.Error(err)
			return
		}
		ctx.Touch(v.Start, mm.AccessRead)
		ctx.Touch(v.Start, mm.AccessWrite)
	}}
	w.k.CPU(0).Spawn(task)
	w.eng.Run()
	st := w.f.Stats()
	if st.CoWWriteTricks != 0 {
		t.Fatalf("write trick used on an executable page: %+v", st)
	}
	if st.CoWLocalFlushes != 1 {
		t.Fatalf("expected flush fallback: %+v", st)
	}
}

func TestBatchingSkipsIPIs(t *testing.T) {
	cfg := core.Config{UserspaceBatching: true}
	w := newWorld(t, true, cfg, 13)
	as := w.k.NewAddressSpace()
	file := w.k.NewFile("db", 128*pg)
	barrier := 0

	// Two tasks share the mm; both loop doing fdatasync so they are very
	// likely inside a batched section when the other flushes.
	mk := func(name string, cpu mach.CPU) *kernel.Task {
		task := &kernel.Task{Name: name, MM: as, Fn: func(ctx *kernel.Ctx) {
			v, err := syscalls.MMap(ctx, 64*pg, mm.ProtRead|mm.ProtWrite, mm.FileShared, file, 0)
			if err != nil {
				t.Error(err)
				return
			}
			barrier++
			for barrier < 2 {
				ctx.UserRun(500)
			}
			for i := 0; i < 30; i++ {
				ctx.Touch(v.Start+uint64(i%16)*pg, mm.AccessWrite)
				if err := syscalls.Fdatasync(ctx, file); err != nil {
					t.Error(err)
				}
			}
		}}
		w.k.CPU(cpu).Spawn(task)
		return task
	}
	t1 := mk("db1", 0)
	t2 := mk("db2", 2)
	w.eng.Run()
	if !t1.Done() || !t2.Done() {
		t.Fatal("tasks did not finish")
	}
	st := w.f.Stats()
	if st.BatchedSkips == 0 {
		t.Fatalf("batching never skipped an IPI: %+v", st)
	}
	checkCoherence(t, w.k, as)
}

func TestDeterministicEndToEnd(t *testing.T) {
	a, ar, _ := runMadviseScenario(t, true, core.AllGeneral(), 10, 28)
	b, br, _ := runMadviseScenario(t, true, core.AllGeneral(), 10, 28)
	if a != b || ar != br {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", a, ar, b, br)
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	kcfg := kernel.DefaultConfig() // SMP layer baseline layout
	k := kernel.New(eng, mach.DefaultTopology(), mach.DefaultCosts(), kcfg)
	if _, err := core.NewFlusher(k, core.Config{CachelineConsolidation: true}); err == nil {
		t.Fatal("mismatched cacheline layout not rejected")
	}
}

func TestCumulativeConfigs(t *testing.T) {
	safe := core.CumulativeConfigs(true)
	if len(safe) != 5 {
		t.Fatalf("safe configs = %d, want 5", len(safe))
	}
	unsafe := core.CumulativeConfigs(false)
	if len(unsafe) != 4 {
		t.Fatalf("unsafe configs = %d, want 4", len(unsafe))
	}
	if safe[0].String() != "baseline" {
		t.Fatalf("first config = %s", safe[0])
	}
	if got := safe[4].String(); got != "concurrent+earlyack+cacheline+incontext" {
		t.Fatalf("last safe config = %s", got)
	}
}

var _ = tlb.GlobalTag // keep the tlb import for coherence helpers
