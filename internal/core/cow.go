package core

import (
	"shootdown/internal/cache"
	"shootdown/internal/kernel"
	"shootdown/internal/mm"
	"shootdown/internal/pagetable"
	"shootdown/internal/tlb"
	"shootdown/internal/trace"
)

// CoWFixup purges the stale translation after a copy-on-write break
// (ptep_clear_flush semantics). Remote CPUs with the address space active
// still need a shootdown — the paper's optimization targets only the
// *local* flush (§4.1): instead of INVLPG (which also dumps the page-walk
// cache) plus an eager user-PCID INVPCID, the kernel performs an atomic
// write access to the faulting address. The write cannot use the old
// write-protected PTE, so it walks the page tables and caches the new
// translation — purging the stale one and pre-warming the TLB in one step.
//
// The trick is skipped for executable PTEs, because the write access
// cannot purge ITLB entries.
func (f *Flusher) CoWFixup(ctx *kernel.Ctx, as *mm.AddressSpace, res mm.FaultResult) {
	c, p, k := ctx.CPU, ctx.P, f.K

	p.Delay(k.Dir.Atomic(c.ID, k.MMGenLine(as)))
	newGen := as.BumpGen()
	info := &FlushInfo{
		AS: as, Start: res.VA, End: res.VA + pagetable.PageSize4K,
		Stride: pagetable.Size4K, NewGen: newGen,
	}

	f.shootBegin(c.ID, info)
	targets := f.pickTargets(ctx, as, info)
	earlyAck := f.Cfg.EarlyAck // CoW never frees page tables

	// The write trick never applies to executable PTEs (it cannot purge
	// ITLB entries); a stale local generation is handled inside cowLocal.
	useTrick := f.Cfg.AvoidCoWFlush && !res.Executable

	k.Trace.Record(c.ID, trace.CoWEvent, "va %#x trick=%v exec=%v", res.VA, useTrick, res.Executable)
	if targets.Empty() {
		f.cowLocal(ctx, as, info, useTrick)
		f.shootEnd(c.ID, info)
		return
	}
	f.stats.Shootdowns++
	infoLine := f.cowInfoLine(ctx)
	if f.Cfg.ConcurrentFlush {
		rs := k.SMP.CallMany(p, c.ID, targets, f.remoteFlushFn, info, earlyAck, infoLine)
		f.cowLocal(ctx, as, info, useTrick)
		c.WaitRequests(p, rs)
	} else {
		f.cowLocal(ctx, as, info, useTrick)
		rs := k.SMP.CallMany(p, c.ID, targets, f.remoteFlushFn, info, earlyAck, infoLine)
		c.WaitRequests(p, rs)
	}
	f.shootEnd(c.ID, info)
}

func (f *Flusher) cowInfoLine(ctx *kernel.Ctx) *cache.Line {
	if f.Cfg.CachelineConsolidation {
		return nil
	}
	l := f.stackLine(ctx.CPU.ID)
	ctx.P.Delay(f.K.Dir.Write(ctx.CPU.ID, l))
	return l
}

// cowLocal performs the local-CPU part of the CoW fixup.
//
// Baseline (ptep_clear_flush): one INVLPG of the faulting address. The
// user-PCID copy needs no flush in either path: the faulting access itself
// invalidated it (hardware drops the faulting translation), which is why
// the paper's measured saving (~130 cycles) is the same in safe and unsafe
// mode — the optimization trades exactly one INVLPG (and its page-walk
// cache side effect) for an atomic write access.
func (f *Flusher) cowLocal(ctx *kernel.Ctx, as *mm.AddressSpace, info *FlushInfo, useTrick bool) {
	c, p, k := ctx.CPU, ctx.P, f.K
	if c.LocalGen(as)+1 != info.NewGen {
		// Concurrent flushes raced past us: take the generic catch-up
		// path (full flush).
		f.stats.CoWLocalFlushes++
		f.flushOnCPU(p, c, info, true)
		return
	}
	if !useTrick {
		f.stats.CoWLocalFlushes++
		p.Delay(k.Cost.Invlpg)
		c.TLB.FlushPage(as.KernelPCID, info.Start)
		// INVLPG dumps the page-structure cache (the side effect the
		// write trick avoids).
		c.TLB.InvalidateWalkCache()
		c.SetLocalGen(as, info.NewGen)
		p.Delay(k.Dir.Write(c.ID, k.SMP.GenLine(c.ID)))
		return
	}
	f.stats.CoWWriteTricks++
	// Atomic no-op read-modify-write at the faulting address: it cannot
	// corrupt concurrent writers and cannot translate through the old
	// write-protected PTE, so the CPU walks the page tables.
	p.Delay(k.Cost.UserWrite + k.Cost.AtomicRMW)
	c.TLB.FlushPage(as.KernelPCID, info.Start)
	// The walk is cheap: the page-walk cache was not invalidated (the
	// benefit over INVLPG) and the fault handler just touched this
	// subtree.
	cost := k.Cost.PageWalkPWCHit
	if k.Cfg.NestedPaging {
		cost *= k.Cost.PageWalkNestedFactor
	}
	c.TLB.WalkCacheLookup(info.Start)
	p.Delay(cost)
	// The new translation is now cached, about to be used by the
	// retried user access.
	if tr, err := as.PT.Walk(info.Start); err == nil {
		c.TLB.Fill(as.KernelPCID, tlb.Entry{
			VA: tr.VA, Frame: tr.Frame, Flags: tr.Flags, Size: tr.Size,
		})
	}
	// The user-PCID entry for this address was dropped by the faulting
	// access itself (hardware invalidates the faulting translation), so
	// no user-space flush is needed.
	c.SetLocalGen(as, info.NewGen)
	p.Delay(k.Dir.Write(c.ID, k.SMP.GenLine(c.ID)))
}
