package core

import (
	"fmt"

	"shootdown/internal/cache"
	"shootdown/internal/kernel"
	"shootdown/internal/mach"
	"shootdown/internal/mm"
	"shootdown/internal/pagetable"
	"shootdown/internal/sim"
	"shootdown/internal/smp"
	"shootdown/internal/trace"
)

// FlushInfo is the work descriptor a shootdown carries (flush_tlb_info):
// the address space, the range, the target generation, and the flags the
// responders need to act safely.
type FlushInfo struct {
	// AS is the address space whose PTEs changed.
	AS *mm.AddressSpace
	// Start/End/Stride describe the changed range.
	Start, End uint64
	Stride     pagetable.Size
	// NewGen is the mm TLB generation this flush establishes.
	NewGen uint64
	// FreedTables forbids early acknowledgement (§3.2): page-table pages
	// were released, so speculative walks on a not-yet-flushed core could
	// touch freed memory.
	FreedTables bool
	// Full requests a full (non-ranged) flush, used when the range
	// exceeds the full-flush threshold.
	Full bool
}

// DegradeToFull widens the descriptor to a full flush (smp.Degradable).
// The recovery path invokes it when precise-range retries keep timing
// out; because the IPI path shares one *FlushInfo across all of a
// shootdown's requests, degrading once upgrades every responder that has
// not yet run, and a full flush subsumes any range at any generation.
func (fi *FlushInfo) DegradeToFull() { fi.Full = true }

var _ smp.Degradable = (*FlushInfo)(nil)

// Flusher implements kernel.Flusher: the baseline Linux shootdown protocol
// plus the paper's optimizations, selected by Config.
type Flusher struct {
	K   *kernel.Kernel
	Cfg Config

	stats Stats
	// stackInfo models the per-initiator flush_tlb_info that baseline
	// Linux keeps on the initiating CPU's stack (its own cacheline,
	// touched by every responder). Consolidation inlines it in the CFD.
	stackInfo []*cache.Line
	// batchedPending tracks, per CPU, how many deferred batched flushes
	// are queued; past 4 entries the queue degrades to a full flush
	// (§4.2: "we allocate 4 entries to keep track of the deferred
	// flushes").
	batchedPending []int
	// ipiMtx serializes entire shootdowns when SerializedIPIs is set
	// (FreeBSD's smp_ipi_mtx).
	ipiMtx *mm.RWSem

	probe *Probe
}

// Probe observes shootdown lifecycle events. ShootBegin fires once per
// FlushAfter/CoWFixup after the flush descriptor is built; ShootEnd fires
// when the flush obligation is discharged from the initiator's point of
// view — after all acks for an IPI shootdown, immediately for local-only
// and lazy-deferred flushes. Callbacks must be purely observational (no
// Delay, no protocol mutation) so a probed run stays cycle-identical to an
// unprobed one.
type Probe struct {
	ShootBegin func(cpu mach.CPU, info *FlushInfo)
	ShootEnd   func(cpu mach.CPU, info *FlushInfo)
}

// SetProbe installs (or, with nil, removes) the lifecycle probe.
func (f *Flusher) SetProbe(pr *Probe) { f.probe = pr }

func (f *Flusher) shootBegin(cpu mach.CPU, info *FlushInfo) {
	if f.probe != nil && f.probe.ShootBegin != nil {
		f.probe.ShootBegin(cpu, info)
	}
}

func (f *Flusher) shootEnd(cpu mach.CPU, info *FlushInfo) {
	if f.probe != nil && f.probe.ShootEnd != nil {
		f.probe.ShootEnd(cpu, info)
	}
}

// IPIMutex returns the SerializedIPIs global mutex (nil unless that
// extension is enabled); exposed so checkers can watch its lock order.
func (f *Flusher) IPIMutex() *mm.RWSem { return f.ipiMtx }

// NewFlusher builds the protocol implementation and validates that the
// configured cacheline layout matches the SMP layer's.
func NewFlusher(k *kernel.Kernel, cfg Config) (*Flusher, error) {
	if err := cfg.validateAgainst(k.SMP.Consolidated()); err != nil {
		return nil, err
	}
	if cfg.InContextFlush && !k.Cfg.PTI {
		// Harmless but meaningless; normalize so stats stay comparable.
		cfg.InContextFlush = false
	}
	if cfg.HWMessageIPI != k.Cfg.HWMessageIPI {
		return nil, fmt.Errorf("core: config HWMessageIPI=%v but kernel built with %v",
			cfg.HWMessageIPI, k.Cfg.HWMessageIPI)
	}
	n := k.Topo.NumCPUs()
	f := &Flusher{
		K: k, Cfg: cfg,
		stackInfo:      make([]*cache.Line, n),
		batchedPending: make([]int, n),
	}
	if cfg.SerializedIPIs {
		f.ipiMtx = mm.NewRWSem(k.Eng, "smp_ipi_mtx")
	}
	if cfg.AsyncShootdown {
		k.SMP.SetDrainApplier(f.drainApply)
	} else {
		k.SMP.SetDrainApplier(nil)
	}
	k.SMP.SetBrokenCoalesceShrink(cfg.BrokenCoalesceShrink)
	f.EnableRace()
	return f, nil
}

// EnableRace (re)attaches the kernel's happens-before checker to the
// protocol-owned synchronization objects (the SerializedIPIs mutex).
// NewFlusher calls it; call it again if the detector is installed after
// the flusher was built (e.g. from a boot hook).
func (f *Flusher) EnableRace() {
	if f.ipiMtx != nil {
		f.ipiMtx.EnableRace(f.K.Race)
	}
}

// Stats returns a snapshot of the protocol counters.
func (f *Flusher) Stats() Stats { return f.stats }

// BatchingEnabled implements kernel.Flusher.
func (f *Flusher) BatchingEnabled() bool { return f.Cfg.UserspaceBatching }

// ResetStats zeroes the counters.
func (f *Flusher) ResetStats() { f.stats = Stats{} }

func (f *Flusher) stackLine(cpu mach.CPU) *cache.Line {
	if f.stackInfo[cpu] == nil {
		f.stackInfo[cpu] = f.K.Dir.NewLine(fmt.Sprintf("flush_info[%d]", cpu))
	}
	return f.stackInfo[cpu]
}

// FlushAfter implements flush_tlb_mm_range: it bumps the mm generation,
// picks targets (skipping lazy CPUs and, optionally, batched-mode CPUs),
// and runs the local and remote flushes in the configured order.
func (f *Flusher) FlushAfter(ctx *kernel.Ctx, as *mm.AddressSpace, fr mm.FlushRange) {
	if fr.Empty() {
		return
	}
	c, p, k := ctx.CPU, ctx.P, f.K

	// inc_mm_tlb_gen: an atomic on the mm's generation cacheline.
	p.Delay(k.Dir.Atomic(c.ID, k.MMGenLine(as)))
	newGen := as.BumpGen()

	// Linux's ceiling check uses the range span, not the changed-PTE
	// count: (end - start) >> stride_shift vs tlb_single_page_flush_ceiling.
	spanPages := (fr.End - fr.Start) / fr.Stride.Bytes()
	info := &FlushInfo{
		AS: as, Start: fr.Start, End: fr.End, Stride: fr.Stride,
		NewGen: newGen, FreedTables: fr.FreedTables,
		Full: spanPages > uint64(k.Cfg.FullFlushThreshold),
	}

	k.Trace.Record(c.ID, trace.ShootBegin, "mm %d gen %d range [%#x,%#x) full=%v freed=%v",
		as.ID, newGen, info.Start, info.End, info.Full, info.FreedTables)
	f.shootBegin(c.ID, info)
	targets := f.pickTargets(ctx, as, info)

	earlyAck := f.Cfg.EarlyAck && !info.FreedTables
	if f.Cfg.EarlyAck && info.FreedTables {
		if f.Cfg.BrokenEarlyAck {
			// Deliberately unsafe variant: ack before flushing even though
			// page tables are about to be freed (see Config.BrokenEarlyAck).
			earlyAck = true
		} else {
			f.stats.EarlyAckSuppressed++
		}
	}

	if targets.Empty() {
		f.stats.LocalOnly++
		f.localFlush(ctx, info, nil)
		f.notePTFree(info)
		f.shootEnd(c.ID, info)
		return
	}

	if f.Cfg.AsyncShootdown {
		if !info.FreedTables {
			f.asyncFlush(ctx, info, targets)
			return
		}
		// Freed page tables must not be reclaimed until every responder
		// flushed; deferring that through the fabric is never safe, so
		// these flushes stay on the synchronous ack path below (which is
		// also what keeps the §3.2 ack-ordering proof intact).
		f.stats.AsyncSyncFallbacks++
	}

	if f.Cfg.LazyRemote {
		// LATR-style extension: local flush now; remote flushes queued to
		// run at each target's next kernel entry. No IPI, no wait — and
		// no guarantee the target will not use a stale translation first
		// (the paper's §2.3.2 criticism; demonstrated by tests).
		f.localFlush(ctx, info, nil)
		for _, cpu := range targets.CPUs() {
			rc := k.CPU(cpu)
			work := *info
			rc.QueueLazyWork(func(p *sim.Proc) {
				if rc.CurrentMM() != work.AS {
					return
				}
				f.flushOnCPU(p, rc, &work, false)
			})
			f.stats.LazyDeferred++
		}
		f.notePTFree(info)
		f.shootEnd(c.ID, info)
		return
	}
	f.stats.Shootdowns++

	if f.Cfg.SerializedIPIs {
		// FreeBSD's smp_ipi_mtx: one shootdown in flight machine-wide.
		c.DownWrite(p, f.ipiMtx)
		defer f.ipiMtx.UpWrite(p)
	}

	var infoLine *cache.Line
	if !f.Cfg.CachelineConsolidation {
		// Baseline layout: write the flush info to its own line before
		// queueing; every responder will read it.
		infoLine = f.stackLine(c.ID)
		p.Delay(k.Dir.Write(c.ID, infoLine))
	}

	if f.Cfg.ConcurrentFlush {
		// §3.1: IPIs first; the local flush overlaps their delivery.
		reqs := k.SMP.CallMany(p, c.ID, targets, f.remoteFlushFn, info, earlyAck, infoLine)
		k.Trace.Record(c.ID, trace.IPISent, "targets %v (early-ack=%v)", targets, earlyAck)
		f.localFlush(ctx, info, reqs)
		k.Trace.Record(c.ID, trace.LocalFlush, "done (overlapped with IPIs)")
		c.WaitRequests(p, reqs)
	} else {
		// Baseline: local flush, then IPIs, then synchronous wait.
		f.localFlush(ctx, info, nil)
		k.Trace.Record(c.ID, trace.LocalFlush, "done (before IPIs)")
		reqs := k.SMP.CallMany(p, c.ID, targets, f.remoteFlushFn, info, earlyAck, infoLine)
		k.Trace.Record(c.ID, trace.IPISent, "targets %v (early-ack=%v)", targets, earlyAck)
		c.WaitRequests(p, reqs)
	}
	k.Trace.Record(c.ID, trace.ShootEnd, "all acks received")
	f.notePTFree(info)
	f.shootEnd(c.ID, info)
}

// asyncFlush is the fabric tier of FlushAfter: post the range to every
// target's invalidation ring, kick once, flush locally, return. Nobody
// spins; the batch completion (fired from the last-acking responder's
// drain) discharges the initiator's flush obligation.
func (f *Flusher) asyncFlush(ctx *kernel.Ctx, info *FlushInfo, targets mach.CPUMask) {
	c, p, k := ctx.CPU, ctx.P, f.K
	f.stats.Shootdowns++
	f.stats.AsyncShootdowns++
	from := c.ID
	inv := smp.Inval{
		AS: info.AS, ASID: uint32(info.AS.ID),
		Start: info.Start, End: info.End, Stride: info.Stride.Bytes(),
		GenLo: info.NewGen, GenHi: info.NewGen,
		Full: info.Full,
	}
	k.SMP.PostAsync(p, from, targets, inv, func(*sim.Proc) {
		// Runs in the last-acking responder's context; observational
		// bookkeeping only.
		k.Trace.Record(from, trace.ShootEnd, "async batch acked")
		f.shootEnd(from, info)
	})
	k.Trace.Record(from, trace.IPISent, "async post to %v", targets)
	f.localFlush(ctx, info, nil)
	k.Trace.Record(from, trace.LocalFlush, "done (fabric in flight)")
}

// drainApply is the batch applier the fabric calls from DrainFabric, on
// the draining CPU's proc. The real tier applies the invalidations
// before the fabric acks. BrokenAckBeforeDrain instead defers the work
// to lazy kernel-entry time, so the ack — and the batch completion that
// closes the flush-obligation window — fires with the stale entries
// still live; the sanitizer catches the resulting user-mode hit.
func (f *Flusher) drainApply(p *sim.Proc, cpu mach.CPU, batch []smp.Inval) {
	rc := f.K.CPU(cpu)
	if f.Cfg.BrokenAckBeforeDrain {
		rc.QueueLazyWork(func(p *sim.Proc) { f.applyBatch(p, rc, batch) })
		return
	}
	f.applyBatch(p, rc, batch)
}

// applyBatch applies a drained fabric batch entry by entry, in posting
// order — which is what lets applyInval's ranged path trust each
// entry's generation run.
func (f *Flusher) applyBatch(p *sim.Proc, rc *kernel.CPU, batch []smp.Inval) {
	for i := range batch {
		f.applyInval(p, rc, &batch[i])
	}
}

// applyInval is the fabric counterpart of flushOnCPU. The GenLo/GenHi
// contiguity invariant (smp.Inval) replaces the sync path's exact
// one-generation check: an entry whose run starts at or below local+1
// can be applied as a ranged flush landing exactly on GenHi, even when
// the mm generation has moved past it — the newer generations are later
// entries of the same drain (or later batches) and follow in order.
func (f *Flusher) applyInval(p *sim.Proc, rc *kernel.CPU, inv *smp.Inval) {
	k := f.K
	if inv.AS == nil {
		// flush_all collapse (ring overflow or watchdog degrade): no
		// address-space precision left, so drop every non-global entry
		// like a PCID-less CR3 write. Local generations stay put; each
		// mm's next flush full-catches-up, which the dropped entries'
		// generations already demanded.
		p.Delay(k.Cost.CR3WriteFlush)
		rc.TLB.FlushAllNonGlobal()
		f.stats.RemoteFull++
		k.Trace.Record(rc.ID, trace.RemoteFlush, "fabric flush_all")
		return
	}
	as := inv.AS.(*mm.AddressSpace)
	if rc.CurrentMM() != as {
		// Switched out since posting; the switch-in generation check
		// flushes before the mm's entries become reachable again.
		f.stats.RemoteSkipped++
		k.Trace.Record(rc.ID, trace.RemoteFlush, "fabric skip: mm not loaded")
		return
	}
	p.Delay(k.Dir.Read(rc.ID, k.MMGenLine(as)))
	mmGen := as.Gen()
	local := rc.LocalGen(as)
	switch {
	case local >= inv.GenHi:
		// A prior full catch-up already covered the whole run.
		f.stats.RemoteSkipped++
	case !inv.Full && local+1 >= inv.GenLo:
		info := &FlushInfo{AS: as, Start: inv.Start, End: inv.End,
			Stride: strideSize(inv.Stride), NewGen: inv.GenHi}
		f.rangedFlush(p, rc, info, false)
		rc.SetLocalGen(as, inv.GenHi)
		f.stats.RemoteSelective++
	default:
		// A generation gap below the run (a dropped kick's entries were
		// collapsed away, or the run started above local+1): full
		// catch-up, straight to the current mm generation.
		p.Delay(k.Cost.CR3WriteFlush)
		rc.TLB.FlushPCID(as.KernelPCID)
		if k.Cfg.PTI {
			rc.DeferUserFullFlush()
		}
		rc.SetLocalGen(as, mmGen)
		f.stats.RemoteFull++
	}
	p.Delay(k.Dir.Write(rc.ID, k.SMP.GenLine(rc.ID)))
	k.Trace.Record(rc.ID, trace.RemoteFlush, "fabric mm %d through gen %d", as.ID, inv.GenHi)
}

// strideSize maps an Inval's stride in bytes back to the page size.
func strideSize(bytes uint64) pagetable.Size {
	if bytes == pagetable.PageSize2M {
		return pagetable.Size2M
	}
	return pagetable.Size4K
}

// notePTFree reports the initiator's reclamation of freed page-table pages
// to the race detector. It models free_pgtables: the freed nodes are plain
// (unsynchronized) memory, so every responder's speculative walk of them
// (readPTFree) must happen-before this write — the exact ordering the §3.2
// early-ack suppression exists to guarantee.
func (f *Flusher) notePTFree(info *FlushInfo) {
	if f.K.Race == nil || !info.FreedTables {
		return
	}
	f.K.Race.WriteVar(fmt.Sprintf("mm%d.pt-nodes", info.AS.ID))
}

// readPTFree reports a responder's potential speculative walk of the
// page-table pages a FreedTables flush is about to release.
func (f *Flusher) readPTFree(info *FlushInfo) {
	if f.K.Race == nil || !info.FreedTables {
		return
	}
	f.K.Race.ReadVar(fmt.Sprintf("mm%d.pt-nodes", info.AS.ID))
}

// pickTargets reads the mm cpumask and per-CPU indications to build the
// IPI target set, charging every cacheline read the kernel would make.
func (f *Flusher) pickTargets(ctx *kernel.Ctx, as *mm.AddressSpace, info *FlushInfo) mach.CPUMask {
	c, p, k := ctx.CPU, ctx.P, f.K
	p.Delay(k.Dir.Read(c.ID, k.MMCpumaskLine(as)))
	var targets mach.CPUMask
	for _, cpu := range as.ActiveCPUs().CPUs() {
		if cpu == c.ID {
			continue
		}
		rc := k.CPU(cpu)
		// Lazy-mode check: a read of the (layout-dependent) lazy line.
		p.Delay(k.Dir.Read(c.ID, k.SMP.LazyLine(cpu)))
		if rc.Lazy() {
			f.stats.LazySkips++
			k.Trace.Record(c.ID, trace.TargetSkipped, "cpu%d lazy", cpu)
			continue
		}
		if f.Cfg.UserspaceBatching {
			p.Delay(k.Dir.Read(c.ID, rc.BatchedLine()))
			if rc.InBatchedSyscall() {
				f.queueBatched(rc, info)
				f.stats.BatchedSkips++
				k.Trace.Record(c.ID, trace.TargetSkipped, "cpu%d in batched syscall", cpu)
				continue
			}
		}
		targets.Set(cpu)
		k.Trace.Record(c.ID, trace.TargetPicked, "cpu%d", cpu)
	}
	return targets
}

// remoteFlushFn runs on a responder in IRQ context (flush_tlb_func).
func (f *Flusher) remoteFlushFn(p *sim.Proc, cpu mach.CPU, payload any) {
	info := payload.(*FlushInfo)
	rc := f.K.CPU(cpu)
	if rc.CurrentMM() != info.AS {
		// The mm was switched out since targeting; its PCID entries stay
		// cached but unreachable, and the switch-in generation check will
		// flush them before use.
		f.stats.RemoteSkipped++
		f.K.Trace.Record(cpu, trace.RemoteFlush, "skipped: mm not loaded")
		return
	}
	// Until the flush completes, this CPU's TLB may still walk the
	// about-to-be-freed page-table pages.
	f.readPTFree(info)
	f.flushOnCPU(p, rc, info, false)
	f.K.Trace.Record(cpu, trace.RemoteFlush, "mm %d through gen %d", info.AS.ID, info.NewGen)
}

// localFlush performs the initiator-side flush. reqs is non-nil only under
// concurrent flushing, enabling the §3.4 interaction (keep flushing user
// PTEs until the first ack arrives).
func (f *Flusher) localFlush(ctx *kernel.Ctx, info *FlushInfo, reqs []*smp.Request) {
	c, p := ctx.CPU, ctx.P
	f.flushOnCPU(p, c, info, true)
	if reqs != nil {
		f.flushUserWhileWaiting(ctx, info, reqs)
	}
}

// flushOnCPU is the shared flush body (flush_tlb_func_common): generation
// comparison decides between skip, ranged flush, and full catch-up.
func (f *Flusher) flushOnCPU(p *sim.Proc, rc *kernel.CPU, info *FlushInfo, initiator bool) {
	as := info.AS
	k := f.K

	// Read the mm generation (it may have advanced past info.NewGen
	// during a flush storm).
	p.Delay(k.Dir.Read(rc.ID, k.MMGenLine(as)))
	mmGen := as.Gen()
	local := rc.LocalGen(as)

	switch {
	case local >= info.NewGen:
		// Someone already flushed through this generation here (a prior
		// full catch-up): nothing to do. This is the storm-time fast path
		// that erodes the optimizations' benefit in §5.2.
		if !initiator {
			f.stats.RemoteSkipped++
		}
		return
	case !info.Full && local+1 == info.NewGen && info.NewGen == mmGen:
		// Exactly one generation behind and the range is known: ranged
		// flush.
		f.rangedFlush(p, rc, info, initiator)
		rc.SetLocalGen(as, info.NewGen)
		if !initiator {
			f.stats.RemoteSelective++
		}
	default:
		// Catch up with a full flush.
		p.Delay(k.Cost.CR3WriteFlush)
		rc.TLB.FlushPCID(as.KernelPCID)
		if k.Cfg.PTI {
			rc.DeferUserFullFlush()
		}
		rc.SetLocalGen(as, mmGen)
		if !initiator {
			f.stats.RemoteFull++
		}
	}
	// Update the per-CPU TLB state (the write that false-shares with the
	// lazy indication under the baseline layout, §3.3).
	p.Delay(k.Dir.Write(rc.ID, k.SMP.GenLine(rc.ID)))
}

// rangedFlush invalidates the PTEs of info's range on rc: INVLPG for the
// kernel PCID, then the user PCID per configuration — eager INVPCID
// (baseline), or deferred to kernel exit (in-context, §3.4).
func (f *Flusher) rangedFlush(p *sim.Proc, rc *kernel.CPU, info *FlushInfo, initiator bool) {
	as := info.AS
	k := f.K
	if k.Cfg.NestedPaging && k.Cfg.ParavirtFractureHint &&
		info.End-info.Start > uint64(info.Stride.Bytes()) && rc.TLB.Fractured() {
		// §7 future work: the host told us fracturing may happen, so each
		// selective flush would escalate to a full flush anyway — issue
		// one full flush up front instead of N useless INVLPGs.
		f.stats.ParavirtFullFlushes++
		p.Delay(k.Cost.CR3WriteFlush)
		rc.TLB.FlushPCID(as.KernelPCID)
		if k.Cfg.PTI {
			rc.DeferUserFullFlush()
		}
		return
	}
	stride := info.Stride.Bytes()
	for va := info.Start; va < info.End; va += stride {
		p.Delay(k.Cost.Invlpg)
		rc.TLB.FlushPage(as.KernelPCID, va)
	}
	// INVLPG flushes the whole page-structure cache as a side effect.
	rc.TLB.InvalidateWalkCache()

	if !k.Cfg.PTI {
		return
	}
	if f.Cfg.InContextFlush {
		// §3.4: record the user range; it is flushed with INVLPG when the
		// user address space becomes current. The initiator may consume
		// part of it while waiting for acks (flushUserWhileWaiting).
		rc.DeferUserFlush(info.Start, info.End, info.Stride)
	} else {
		// Baseline: eagerly invalidate the user PCID with INVPCID, which
		// is slower per entry and does not touch the page-walk cache.
		for va := info.Start; va < info.End; va += stride {
			p.Delay(k.Cost.InvpcidSingle)
			rc.TLB.FlushPage(as.UserPCID, va)
		}
	}
}

// flushUserWhileWaiting implements the §3.4/§3.1 interaction: while the
// initiator's IPIs are in flight, its spare cycles flush deferred user
// PTEs with INVLPG; whatever remains when the first ack arrives stays
// deferred to kernel exit.
func (f *Flusher) flushUserWhileWaiting(ctx *kernel.Ctx, info *FlushInfo, reqs []*smp.Request) {
	if !f.Cfg.InContextFlush || !f.K.Cfg.PTI {
		return
	}
	c, p := ctx.CPU, ctx.P
	as := info.AS
	flushed := false
	for !smp.AnyDone(reqs) {
		start, _, stridePages, ok := c.PendingUserFlushRange()
		if !ok {
			break
		}
		p.Delay(f.K.Cost.Invlpg)
		c.TLB.FlushPage(as.UserPCID, start)
		c.ConsumeDeferredUserPages(1)
		f.stats.UserPTEsFlushedWhileWaiting++
		flushed = true
		_ = stridePages
	}
	if flushed {
		// These INVLPGs also dumped the page-structure cache.
		c.TLB.InvalidateWalkCache()
		p.Delay(f.K.Cost.Lfence)
	}
}

// queueBatched defers info's flush to rc's batched-section exit instead of
// sending an IPI (§4.2). Beyond 4 queued entries the deferral degrades to
// a full flush.
func (f *Flusher) queueBatched(rc *kernel.CPU, info *FlushInfo) {
	cpu := rc.ID
	f.batchedPending[cpu]++
	work := *info
	if f.batchedPending[cpu] > 4 {
		f.stats.BatchedOverflows++
		work.Full = true
	}
	rc.QueueBatchedFlush(func(p *sim.Proc) {
		f.batchedPending[cpu]--
		if rc.CurrentMM() != work.AS {
			return
		}
		f.flushOnCPU(p, rc, &work, false)
	})
}
