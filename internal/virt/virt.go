// Package virt models hardware-assisted nested paging (EPT): a guest page
// table translating guest-virtual to guest-physical addresses, composed
// with a host table translating guest-physical to host-physical.
//
// Its purpose in this repository is the paper's §7 "page fracturing"
// finding (Table 4): the TLB caches combined GVA→HPA translations, so a
// 2 MiB guest page backed by 4 KiB host pages fractures into many 4 KiB
// TLB entries, and — as Intel confirmed to the authors — once any such
// fractured translation may be cached, a *selective* flush escalates to a
// full TLB flush.
package virt

import (
	"fmt"

	"shootdown/internal/pagetable"
	"shootdown/internal/tlb"
)

// NestedPT composes a guest page table with a host (EPT) table.
type NestedPT struct {
	// Guest maps GVA -> GPA.
	Guest *pagetable.Table
	// Host maps GPA -> HPA (the extended page table).
	Host *pagetable.Table
}

// New returns an empty nested configuration.
func New() *NestedPT {
	return &NestedPT{Guest: pagetable.New(), Host: pagetable.New()}
}

// Combined is the result of a two-dimensional walk.
type Combined struct {
	// VA is the base of the effective page (the smaller of the two leaf
	// sizes).
	VA uint64
	// Frame is the host-physical frame backing VA.
	Frame uint64
	// Flags is the intersection of guest and host permissions.
	Flags pagetable.Flags
	// Size is the effective page size cached in the TLB.
	Size pagetable.Size
	// Fractured is set when the guest leaf is 2 MiB but the host backing
	// is 4 KiB: the translation is one fragment of a fractured guest page.
	Fractured bool
	// Steps counts table levels visited across both dimensions (walk cost
	// scales with it under nested paging).
	Steps int
}

// Walk performs the two-dimensional page walk for gva.
func (n *NestedPT) Walk(gva uint64) (Combined, error) {
	gtr, err := n.Guest.Walk(gva)
	if err != nil {
		return Combined{}, fmt.Errorf("virt: guest walk: %w", err)
	}
	gpa := gtr.PA(gva)
	htr, err := n.Host.Walk(gpa)
	if err != nil {
		return Combined{}, fmt.Errorf("virt: host walk of gpa %#x: %w", gpa, err)
	}
	c := Combined{
		Flags: gtr.Flags & htr.Flags,
		// In a real 2D walk every guest level is itself translated
		// through the EPT; steps ≈ guest*(host+1).
		Steps: gtr.Steps * (htr.Steps + 1),
	}
	switch {
	case gtr.Size == pagetable.Size2M && htr.Size == pagetable.Size2M:
		// The combined leaf stays 2 MiB: the HPA base is the host leaf's
		// translation of the guest page's GPA base.
		c.Size = pagetable.Size2M
		c.VA = gva &^ (pagetable.PageSize2M - 1)
		c.Frame = htr.PA(gpa&^uint64(pagetable.PageSize2M-1)) >> pagetable.PageShift4K
	default:
		// Effective 4K entry.
		c.Size = pagetable.Size4K
		c.VA = gva &^ (pagetable.PageSize4K - 1)
		c.Frame = htr.PA(gpa&^uint64(pagetable.PageSize4K-1)) >> pagetable.PageShift4K
		c.Fractured = gtr.Size == pagetable.Size2M && htr.Size == pagetable.Size4K
	}
	return c, nil
}

// Entry converts a combined translation to a TLB entry.
func (c Combined) Entry() tlb.Entry {
	return tlb.Entry{
		VA: c.VA, Frame: c.Frame, Flags: c.Flags, Size: c.Size,
		Fractured: c.Fractured,
	}
}

// BuildLinear populates guest and host tables for a linear region of
// `bytes` starting at gva 0 and gpa 0, with the given guest and host page
// sizes. It returns the number of guest leaf pages mapped. Frames are
// assigned sequentially from the allocators.
func (n *NestedPT) BuildLinear(bytes uint64, guestSize, hostSize pagetable.Size, galloc, halloc *pagetable.FrameAlloc) (int, error) {
	gstep := guestSize.Bytes()
	for va := uint64(0); va < bytes; va += gstep {
		// GPA == GVA (identity guest-physical layout).
		frame := va >> pagetable.PageShift4K
		if err := n.Guest.Map(va, frame, guestSize, pagetable.Write|pagetable.User); err != nil {
			return 0, err
		}
	}
	hstep := hostSize.Bytes()
	for gpa := uint64(0); gpa < bytes; gpa += hstep {
		if hostSize == pagetable.Size2M {
			base := halloc.AllocContig(512)
			if err := n.Host.Map(gpa, base, pagetable.Size2M, pagetable.Write|pagetable.User); err != nil {
				return 0, err
			}
		} else {
			if err := n.Host.Map(gpa, halloc.Alloc(), pagetable.Size4K, pagetable.Write|pagetable.User); err != nil {
				return 0, err
			}
		}
	}
	_ = galloc
	return int(bytes / gstep), nil
}
