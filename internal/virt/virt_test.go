package virt

import (
	"testing"

	"shootdown/internal/pagetable"
	"shootdown/internal/tlb"
)

const (
	pg4k = pagetable.PageSize4K
	pg2m = pagetable.PageSize2M
)

func build(t *testing.T, bytes uint64, gs, hs pagetable.Size) *NestedPT {
	t.Helper()
	n := New()
	if _, err := n.BuildLinear(bytes, gs, hs, pagetable.NewFrameAlloc(), pagetable.NewFrameAlloc()); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestWalk4KOn4K(t *testing.T) {
	n := build(t, 8*pg4k, pagetable.Size4K, pagetable.Size4K)
	c, err := n.Walk(3*pg4k + 0x123)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size != pagetable.Size4K || c.Fractured {
		t.Fatalf("combined = %+v", c)
	}
	if c.VA != 3*pg4k {
		t.Fatalf("VA = %#x", c.VA)
	}
	// Two distinct GVAs map to distinct host frames.
	c2, _ := n.Walk(4 * pg4k)
	if c2.Frame == c.Frame {
		t.Fatal("distinct pages share a host frame")
	}
}

func TestWalkFractured(t *testing.T) {
	n := build(t, 2*pg2m, pagetable.Size2M, pagetable.Size4K)
	c, err := n.Walk(pg2m + 5*pg4k)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Fractured {
		t.Fatal("guest 2M on host 4K must be fractured")
	}
	if c.Size != pagetable.Size4K {
		t.Fatalf("effective size = %v, want 4K", c.Size)
	}
	if c.VA != pg2m+5*pg4k {
		t.Fatalf("VA = %#x", c.VA)
	}
	// Neighbouring 4K fragments of the same guest page get distinct
	// entries with distinct frames.
	c2, _ := n.Walk(pg2m + 6*pg4k)
	if c2.VA == c.VA || c2.Frame == c.Frame {
		t.Fatalf("fragments not distinct: %+v vs %+v", c, c2)
	}
	if !c.Entry().Fractured {
		t.Fatal("Entry() lost the fracture mark")
	}
}

func TestWalk2MOn2M(t *testing.T) {
	n := build(t, 4*pg2m, pagetable.Size2M, pagetable.Size2M)
	c, err := n.Walk(3*pg2m + 0x1234)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size != pagetable.Size2M || c.Fractured {
		t.Fatalf("combined = %+v", c)
	}
	if c.VA != 3*pg2m {
		t.Fatalf("VA = %#x", c.VA)
	}
}

func TestWalk4KOn2M(t *testing.T) {
	// Guest 4K on host 2M: splintered the other way; effective 4K but not
	// fractured (the guest leaf is small, selective flushes stay safe).
	n := build(t, pg2m, pagetable.Size4K, pagetable.Size2M)
	c, err := n.Walk(7 * pg4k)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size != pagetable.Size4K || c.Fractured {
		t.Fatalf("combined = %+v", c)
	}
}

func TestWalkErrors(t *testing.T) {
	n := build(t, 4*pg4k, pagetable.Size4K, pagetable.Size4K)
	if _, err := n.Walk(100 * pg4k); err == nil {
		t.Fatal("walk of unmapped gva succeeded")
	}
}

func TestNestedStepsExceedBareMetal(t *testing.T) {
	n := build(t, 4*pg4k, pagetable.Size4K, pagetable.Size4K)
	c, _ := n.Walk(0)
	if c.Steps <= 4 {
		t.Fatalf("nested walk steps = %d, want > 4 (2D walk)", c.Steps)
	}
}

// TestFractureForcesFullFlush ties the model together: filling a TLB from
// a fractured configuration makes selective flushes behave as full flushes
// (Table 4's headline behaviour).
func TestFractureForcesFullFlush(t *testing.T) {
	n := build(t, 4*pg2m, pagetable.Size2M, pagetable.Size4K)
	tl := tlb.New(tlb.Config{Cap4K: 4096, Cap2M: 64, PWCSize: 16, FractureRule: true})
	for va := uint64(0); va < 4*pg2m; va += pg4k {
		c, err := n.Walk(va)
		if err != nil {
			t.Fatal(err)
		}
		tl.Fill(1, c.Entry())
	}
	before := tl.Len()
	if before == 0 {
		t.Fatal("nothing cached")
	}
	tl.FlushPage(1, 0) // selective flush of a single page
	if tl.Len() != 0 {
		t.Fatalf("selective flush left %d entries; fracturing must escalate to full", tl.Len())
	}
	if tl.Stats().FractureEscalations != 1 {
		t.Fatalf("stats = %+v", tl.Stats())
	}
}
