package sim

// Cond is a condition variable for processes. Waiters are resumed in FIFO
// order via the event queue, preserving determinism.
//
// Unlike sync.Cond there is no associated lock: the simulation is single
// threaded, so checking a predicate and calling Wait is atomic with respect
// to other processes.
type Cond struct {
	eng     *Engine
	waiters []*condWaiter
}

type condWaiter struct {
	p         *Proc
	signaled  bool
	timeoutEv *Event
}

// NewCond returns a condition variable bound to the engine.
func (e *Engine) NewCond() *Cond {
	return &Cond{eng: e}
}

// Waiters returns the number of processes currently blocked on the cond.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Wait blocks p until Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	w := &condWaiter{p: p}
	c.waiters = append(c.waiters, w)
	p.yield()
}

// WaitTimeout blocks p until the cond is signaled or d cycles elapse.
// It reports whether the wakeup was a signal (true) or a timeout (false).
func (c *Cond) WaitTimeout(p *Proc, d uint64) (signaled bool) {
	w := &condWaiter{p: p}
	w.timeoutEv = c.eng.After(d, func() {
		c.remove(w)
		p.resumeFn()
	})
	c.waiters = append(c.waiters, w)
	p.yield()
	return w.signaled
}

// Signal wakes the longest-waiting process, if any. The waiter resumes at
// the current virtual time, after the caller yields.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.wake(w)
}

// Broadcast wakes every waiting process in FIFO order.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		c.wake(w)
	}
}

func (c *Cond) wake(w *condWaiter) {
	w.signaled = true
	if w.timeoutEv != nil {
		w.timeoutEv.Cancel()
	}
	c.eng.After(0, w.p.resumeFn)
}

func (c *Cond) remove(w *condWaiter) {
	for i, x := range c.waiters {
		if x == w {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}
