package sim

import (
	"math/rand"
	"testing"
)

// TestWheelHeapOrderEquivalence drives the two eventQueue implementations
// with identical random schedules — including same-timestamp bursts,
// cancellations and inserts from inside callbacks — and requires the
// exact same firing order.
func TestWheelHeapOrderEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		runKind := func(kind EngineKind) []int {
			rng := rand.New(rand.NewSource(seed))
			e := NewEngineKind(kind, 1)
			var order []int
			id := 0
			var evs []*Event
			var schedule func(depth int) func()
			schedule = func(depth int) func() {
				me := id
				id++
				return func() {
					order = append(order, me)
					// From inside a callback, sometimes schedule more
					// work at the current instant or nearby.
					if depth < 2 && rng.Intn(3) == 0 {
						for i := 0; i < rng.Intn(3); i++ {
							evs = append(evs, e.After(uint64(rng.Intn(4)), schedule(depth+1)))
						}
					}
				}
			}
			for i := 0; i < 300; i++ {
				// Mix of short, clustered and far-future delays so all
				// wheel levels and cascades are exercised.
				var d uint64
				switch rng.Intn(4) {
				case 0:
					d = uint64(rng.Intn(3)) // same/near timestamp bursts
				case 1:
					d = uint64(rng.Intn(200))
				case 2:
					d = uint64(rng.Intn(100_000))
				default:
					d = uint64(rng.Intn(50_000_000))
				}
				evs = append(evs, e.After(d, schedule(0)))
				if rng.Intn(10) == 0 && len(evs) > 0 {
					evs[rng.Intn(len(evs))].Cancel()
				}
				if rng.Intn(20) == 0 {
					e.Run()
				}
			}
			e.Run()
			return order
		}
		heapOrder := runKind(EngineHeap)
		wheelOrder := runKind(EngineWheel)
		if len(heapOrder) != len(wheelOrder) {
			t.Fatalf("seed %d: fired %d events under heap, %d under wheel", seed, len(heapOrder), len(wheelOrder))
		}
		for i := range heapOrder {
			if heapOrder[i] != wheelOrder[i] {
				t.Fatalf("seed %d: firing order diverges at %d: heap %d, wheel %d",
					seed, i, heapOrder[i], wheelOrder[i])
			}
		}
	}
}

// TestWheelHorizonThenEarlierInsert is the cursor-advance regression: a
// RunUntil that stops at a horizon must not let the wheel's cursor creep
// up to the (later) pending minimum, because the caller may then legally
// schedule between the horizon and that minimum.
func TestWheelHorizonThenEarlierInsert(t *testing.T) {
	e := NewEngineKind(EngineWheel, 1)
	var order []string
	e.At(10, func() { order = append(order, "t10") })
	e.At(1_000_000, func() { order = append(order, "far") })
	e.RunUntil(500) // fires t10, leaves "far"; clock rests at 10
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
	// Schedule well before the pending minimum; a cursor that advanced
	// toward 1_000_000 during the horizon peek would misfile (or reject)
	// this event.
	e.At(600, func() { order = append(order, "t600") })
	e.At(11, func() { order = append(order, "t11") })
	e.Run()
	want := []string{"t10", "t11", "t600", "far"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestWheelSameTimestampSeqOrder pins batched dispatch: many events at
// one timestamp fire in scheduling order, including ones added to the
// batch's timestamp from inside a callback of that same batch.
func TestWheelSameTimestampSeqOrder(t *testing.T) {
	e := NewEngineKind(EngineWheel, 1)
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		e.At(777, func() {
			order = append(order, i)
			if i == 10 {
				for j := 100; j < 103; j++ {
					j := j
					e.At(777, func() { order = append(order, j) })
				}
			}
		})
	}
	e.Run()
	if len(order) != 53 {
		t.Fatalf("fired %d events, want 53", len(order))
	}
	for i := 0; i < 50; i++ {
		if order[i] != i {
			t.Fatalf("order[%d] = %d, want %d (batch broke seq order)", i, order[i], i)
		}
	}
	for j := 0; j < 3; j++ {
		if order[50+j] != 100+j {
			t.Fatalf("callback-time inserts fired as %v", order[50:])
		}
	}
}

// TestWheelShutdownDrains checks the poison-unwind drain path under the
// wheel: parked processes are unwound and the queue retains nothing.
func TestWheelShutdownDrains(t *testing.T) {
	e := NewEngineKind(EngineWheel, 1)
	e.Go("sleeper", func(p *Proc) {
		p.Delay(1 << 40) // far future, never reached
	})
	e.Go("idler", func(p *Proc) {
		for {
			p.Delay(100)
		}
	})
	e.RunUntil(1000)
	if e.LiveProcs() != 2 {
		t.Fatalf("LiveProcs = %d, want 2", e.LiveProcs())
	}
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs after Shutdown = %d, want 0", e.LiveProcs())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending after Shutdown = %d, want 0", e.Pending())
	}
}

// TestParseEngineKind covers the flag parser.
func TestParseEngineKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want EngineKind
		ok   bool
	}{
		{"heap", EngineHeap, true},
		{"wheel", EngineWheel, true},
		{"", EngineWheel, true},
		{"calendar", "", false},
	} {
		got, err := ParseEngineKind(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseEngineKind(%q) = %q, %v", tc.in, got, err)
		}
	}
	if NewEngine(1).Kind() != EngineWheel {
		t.Fatal("NewEngine default is not the wheel")
	}
	if NewEngineKind(EngineHeap, 1).Kind() != EngineHeap {
		t.Fatal("NewEngineKind(heap) lost its kind")
	}
}
