package sim

// Rand is a small deterministic pseudo-random source (splitmix64 state
// feeding an xorshift* output) suitable for reproducible simulations.
// It intentionally does not use math/rand so that the sequence is stable
// across Go releases.
type Rand struct {
	state uint64
}

// NewRand returns a Rand seeded with seed. A zero seed is remapped to a
// fixed non-zero constant so the generator never degenerates.
func NewRand(seed uint64) *Rand {
	r := &Rand{state: seed}
	if r.state == 0 {
		r.state = 0x9e3779b97f4a7c15
	}
	// Warm up so that close seeds diverge immediately.
	r.Uint64()
	r.Uint64()
	return r
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	// splitmix64
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a deterministic random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork returns a new Rand whose stream is derived from, but independent of,
// this one. Useful for giving each simulated core its own stream.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64())
}
