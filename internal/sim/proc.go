package sim

import "fmt"

// Proc is a simulated process: a goroutine that runs cooperatively under an
// Engine. At most one Proc executes at a time; a Proc runs until it blocks
// (Delay, Cond.Wait, ...) or returns, then the engine resumes.
//
// All Proc methods must be called from the Proc's own goroutine.
type Proc struct {
	// Name identifies the process in traces and error messages.
	Name string

	eng  *Engine
	wake chan struct{}
	done bool

	// resumeFn is the one resume closure this process ever needs: binding
	// it once at spawn keeps Delay/Yield/cond wakeups from allocating a
	// fresh closure per block, which together with the engine's event free
	// list makes steady-state scheduling allocation-free.
	resumeFn func()
}

// Engine returns the engine this process runs under.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// Go starts fn as a new process. The process begins executing at the current
// virtual time, after the currently running event or process yields.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{Name: name, eng: e, wake: make(chan struct{})}
	p.resumeFn = func() { e.resume(p) }
	e.liveProcs++
	e.procs = append(e.procs, p)
	go func() {
		<-p.wake
		defer func() {
			if r := recover(); r != nil && r != errShutdown {
				// Surface the panic to Run() instead of deadlocking the
				// engine goroutine, which would otherwise wait forever on
				// e.sched. Shutdown poison unwinds silently.
				e.procErr = fmt.Errorf("sim: proc %q panicked: %v", p.Name, r)
			}
			p.done = true
			e.liveProcs--
			e.sched <- struct{}{}
		}()
		if e.draining {
			// Woken for the first time by Shutdown: never run the body.
			panic(errShutdown)
		}
		fn(p)
	}()
	e.At(e.now, p.resumeFn)
	return p
}

// yield returns control to the engine and blocks until the process is
// resumed by a scheduled event.
func (p *Proc) yield() {
	p.eng.sched <- struct{}{}
	<-p.wake
	if p.eng.draining {
		panic(errShutdown)
	}
}

// Delay advances the process by d cycles of uninterruptible work or sleep.
func (p *Proc) Delay(d uint64) {
	if d == 0 {
		return
	}
	p.eng.After(d, p.resumeFn)
	p.yield()
}

// Yield lets every other runnable process and event at the current time run
// before this process continues. It costs zero cycles.
func (p *Proc) Yield() {
	p.eng.After(0, p.resumeFn)
	p.yield()
}
