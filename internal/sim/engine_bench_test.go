package sim

import (
	"fmt"
	"runtime"
	"testing"
)

// The event loop is the hottest path in the repository: every Delay of
// every simulated process passes through it. These benchmarks lock in the
// concrete-heap + free-list implementation: ns/event and (above all)
// allocs/event must stay flat. Run with -benchmem.

// BenchmarkEventLoop measures raw schedule+dispatch throughput: a single
// self-rescheduling event chain, the pure event-loop cost with no process
// switches.
func BenchmarkEventLoop(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var step func()
	step = func() {
		if n < b.N {
			n++
			e.After(1, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(1, step)
	e.Run()
	if n < b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// BenchmarkEventHeapChurn measures the heap under fan-out: k events in
// flight at all times, pushed at deterministic pseudo-random offsets, so
// sift-up/down actually move elements.
func BenchmarkEventHeapChurn(b *testing.B) {
	const fanout = 64
	e := NewEngine(1)
	r := NewRand(7)
	n := 0
	var step func()
	step = func() {
		if n < b.N {
			n++
			e.After(r.Uint64n(1000)+1, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < fanout; i++ {
		e.After(r.Uint64n(1000)+1, step)
	}
	e.Run()
}

// benchEngineChurn drives one engine kind with `width` events in flight
// at all times — the pending-event population of a machine with that many
// CPUs (each CPU model keeps roughly one timer outstanding). Delays are
// drawn up to 5000 cycles, the scale of the simulated kernel's IPI and
// cacheline costs, so the wheel's level-0 fast path and its cascades are
// both on the measured path.
func benchEngineChurn(b *testing.B, kind EngineKind, width int) {
	e := NewEngineKind(kind, 1)
	r := NewRand(7)
	n := 0
	var step func()
	step = func() {
		if n < b.N {
			n++
			e.After(r.Uint64n(5000)+1, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < width; i++ {
		e.After(r.Uint64n(5000)+1, step)
	}
	e.Run()
}

// BenchmarkEngineChurn is the scale-out grid bench.sh records: both
// event-queue implementations at 56-, 256- and 512-CPU event populations.
// ns/event must stay flat as the population grows (the wheel's point) and
// allocs/event must stay zero (the free list's point).
func BenchmarkEngineChurn(b *testing.B) {
	for _, kind := range []EngineKind{EngineWheel, EngineHeap} {
		for _, width := range []int{56, 256, 512} {
			b.Run(fmt.Sprintf("%s/cpus=%d", kind, width), func(b *testing.B) {
				benchEngineChurn(b, kind, width)
			})
		}
	}
}

// TestEngineChurnScalesFlat is the regression guard behind the tentpole's
// performance claim: growing the event population from a 56-CPU machine
// to a 512-CPU machine must not blow up per-event cost (within 3x covers
// cache effects while catching any O(log n) -> O(n) or worse regression),
// and the warm hot path must not allocate. Timing is damped by taking the
// best of several attempts before failing.
func TestEngineChurnScalesFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarking is slow; run without -short")
	}
	measure := func(width int) (nsPerOp float64, allocsPerOp int64) {
		r := testing.Benchmark(func(b *testing.B) { benchEngineChurn(b, EngineWheel, width) })
		return float64(r.NsPerOp()), r.AllocsPerOp()
	}
	var last string
	for attempt := 0; attempt < 4; attempt++ {
		ns56, _ := measure(56)
		ns512, allocs := measure(512)
		if allocs != 0 {
			t.Fatalf("512-CPU churn allocates %d objects/event, want 0", allocs)
		}
		if ns512 <= 3*ns56 {
			return
		}
		last = fmt.Sprintf("ns/event at 512 CPUs = %.1f, more than 3x the %.1f at 56", ns512, ns56)
	}
	t.Fatal(last)
}

// event scheduling plus the two channel handoffs of a cooperative switch.
func BenchmarkProcDelay(b *testing.B) {
	e := NewEngine(1)
	e.Go("worker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Delay(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
	e.Shutdown()
}

// BenchmarkProcPingPong measures two processes alternating via a Cond —
// the signal/wakeup pattern the simulated kernel's CPU loops use.
func BenchmarkProcPingPong(b *testing.B) {
	e := NewEngine(1)
	c := e.NewCond()
	e.Go("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Signal()
			p.Delay(1)
		}
		c.Broadcast()
	})
	e.Go("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Wait(p)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
	e.Shutdown()
}

// TestDelayIsAllocationFree locks in the free-list win: once the engine is
// warm, a Delay round trip performs no heap allocation for its event (the
// pre-bound resume closure and recycled Event cover it). The threshold
// tolerates incidental runtime allocations but would catch any regression
// back to one-allocation-per-event (10000 would fail loudly).
func TestDelayIsAllocationFree(t *testing.T) {
	e := NewEngine(1)
	total := 0
	e.Go("worker", func(p *Proc) {
		for i := 0; i < 11_000; i++ {
			p.Delay(1)
			total++
		}
	})
	// Warm up: the first window grows the heap slice and free list.
	e.RunUntil(1000)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	e.RunUntil(11_000)
	runtime.ReadMemStats(&after)
	e.Run()
	e.Shutdown()
	if total != 11_000 {
		t.Fatalf("ran %d delays, want 11000", total)
	}
	allocs := after.Mallocs - before.Mallocs
	if allocs > 500 {
		t.Fatalf("10000 warm Delay round trips allocated %d objects, want ~0", allocs)
	}
}
