package sim

import (
	"runtime"
	"testing"
)

// The event loop is the hottest path in the repository: every Delay of
// every simulated process passes through it. These benchmarks lock in the
// concrete-heap + free-list implementation: ns/event and (above all)
// allocs/event must stay flat. Run with -benchmem.

// BenchmarkEventLoop measures raw schedule+dispatch throughput: a single
// self-rescheduling event chain, the pure event-loop cost with no process
// switches.
func BenchmarkEventLoop(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var step func()
	step = func() {
		if n < b.N {
			n++
			e.After(1, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(1, step)
	e.Run()
	if n < b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// BenchmarkEventHeapChurn measures the heap under fan-out: k events in
// flight at all times, pushed at deterministic pseudo-random offsets, so
// sift-up/down actually move elements.
func BenchmarkEventHeapChurn(b *testing.B) {
	const fanout = 64
	e := NewEngine(1)
	r := NewRand(7)
	n := 0
	var step func()
	step = func() {
		if n < b.N {
			n++
			e.After(r.Uint64n(1000)+1, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < fanout; i++ {
		e.After(r.Uint64n(1000)+1, step)
	}
	e.Run()
}

// BenchmarkProcDelay measures the full process block/resume round trip:
// event scheduling plus the two channel handoffs of a cooperative switch.
func BenchmarkProcDelay(b *testing.B) {
	e := NewEngine(1)
	e.Go("worker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Delay(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
	e.Shutdown()
}

// BenchmarkProcPingPong measures two processes alternating via a Cond —
// the signal/wakeup pattern the simulated kernel's CPU loops use.
func BenchmarkProcPingPong(b *testing.B) {
	e := NewEngine(1)
	c := e.NewCond()
	e.Go("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Signal()
			p.Delay(1)
		}
		c.Broadcast()
	})
	e.Go("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Wait(p)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
	e.Shutdown()
}

// TestDelayIsAllocationFree locks in the free-list win: once the engine is
// warm, a Delay round trip performs no heap allocation for its event (the
// pre-bound resume closure and recycled Event cover it). The threshold
// tolerates incidental runtime allocations but would catch any regression
// back to one-allocation-per-event (10000 would fail loudly).
func TestDelayIsAllocationFree(t *testing.T) {
	e := NewEngine(1)
	total := 0
	e.Go("worker", func(p *Proc) {
		for i := 0; i < 11_000; i++ {
			p.Delay(1)
			total++
		}
	})
	// Warm up: the first window grows the heap slice and free list.
	e.RunUntil(1000)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	e.RunUntil(11_000)
	runtime.ReadMemStats(&after)
	e.Run()
	e.Shutdown()
	if total != 11_000 {
		t.Fatalf("ran %d delays, want 11000", total)
	}
	allocs := after.Mallocs - before.Mallocs
	if allocs > 500 {
		t.Fatalf("10000 warm Delay round trips allocated %d objects, want ~0", allocs)
	}
}
