package sim

import "math/bits"

// Hierarchical timer wheel: the EngineWheel eventQueue.
//
// The wheel divides the 64-bit virtual clock into eight byte-wide levels
// of 256 slots each, so the full Time range is representable and there is
// no overflow or re-hashing policy to tune. An event is filed at the
// level of the highest byte in which its timestamp differs from the
// wheel's cursor (level 0 when equal), at the slot indexed by that byte
// of the timestamp:
//
//	level(ev) = highestDifferingByte(ev.at, cur)
//	slot(ev)  = byte_level(ev.at)
//
// The cursor cur is a lower bound on every pending timestamp, advanced
// only when the engine commits to dispatching the minimum event (pop),
// never by nextTime — RunUntil may stop at a horizon and later accept
// events between now and the wheel's former tentative minimum, so a
// cursor that crept forward on peeks would reject legal schedules.
//
// The filing rule yields two invariants that make ordering cheap:
//
//  1. Levels are totally ordered: every event at level l precedes every
//     event at level l+1 (their bytes above l match cur, and byte l of a
//     level-l event can only be >= cur's, while a level-(l+1) event
//     already exceeds cur at byte l+1). The minimum is always at the
//     lowest non-empty level.
//  2. Slots stay sequence-sorted without any sorting: a slot only
//     receives events either directly (At allocates strictly increasing
//     seq, so appends arrive in seq order) or by cascading a higher
//     slot, and a cascade only runs when every lower level is empty —
//     so cascaded events (in preserved seq order) always land in virgin
//     slots, and later direct inserts carry larger seqs.
//
// A level-0 slot therefore holds exactly one timestamp with its events
// already in dispatch order; pop lifts the whole slot into a dispatch
// batch with one slice swap (batched same-timestamp dispatch) and hands
// events out one by one. Callbacks scheduling more work at the same
// timestamp append to the (now empty, capacity-retaining) slot, which is
// re-lifted when the batch drains. Slot backing arrays and the batch
// buffer are recycled, so steady-state operation allocates nothing.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits  // 256 slots per level
	wheelLevels = 64 / wheelBits  // 8 levels cover the full Time range
	wheelOccW   = wheelSlots / 64 // occupancy bitmap words per level
)

type wheelLevel struct {
	slots [wheelSlots][]*Event
	occ   [wheelOccW]uint64 // bit i set iff slots[i] non-empty
}

// setOcc marks slot idx occupied.
func (l *wheelLevel) setOcc(idx int) { l.occ[idx/64] |= 1 << (uint(idx) % 64) }

// clearOcc marks slot idx empty.
func (l *wheelLevel) clearOcc(idx int) { l.occ[idx/64] &^= 1 << (uint(idx) % 64) }

// minOcc returns the lowest occupied slot index, or -1.
func (l *wheelLevel) minOcc() int {
	for w, bm := range l.occ {
		if bm != 0 {
			return w*64 + bits.TrailingZeros64(bm)
		}
	}
	return -1
}

type timerWheel struct {
	cur    Time // lower bound on all pending timestamps
	count  int
	levels [wheelLevels]wheelLevel
	lvMask uint // bit l set iff level l has occupied slots

	// Dispatch batch: the level-0 slot currently being drained. All its
	// events share one timestamp and are in seq order.
	batch     []*Event
	batchHead int

	// spare recycles the previous batch's backing array into the next
	// emptied slot, keeping the steady state allocation-free.
	spare []*Event
}

func newTimerWheel() *timerWheel { return &timerWheel{} }

// levelOf returns the wheel level for timestamp at relative to cur.
func (w *timerWheel) levelOf(at Time) int {
	d := uint64(at ^ w.cur)
	if d == 0 {
		return 0
	}
	return (bits.Len64(d) - 1) / wheelBits
}

func (w *timerWheel) push(ev *Event) {
	l := w.levelOf(ev.at)
	idx := int(uint8(ev.at >> (uint(l) * wheelBits)))
	lv := &w.levels[l]
	lv.slots[idx] = append(lv.slots[idx], ev)
	lv.setOcc(idx)
	w.lvMask |= 1 << uint(l)
	w.count++
}

func (w *timerWheel) len() int { return w.count }

// nextTime returns the minimum pending timestamp without advancing the
// cursor. At level 0 the slot index is the timestamp; at higher levels
// the minimum slot must be scanned (the work is proportional to the slot
// pop would cascade anyway).
func (w *timerWheel) nextTime() (Time, bool) {
	if w.batchHead < len(w.batch) {
		return w.batch[w.batchHead].at, true
	}
	if w.count == 0 {
		return 0, false
	}
	l := bits.TrailingZeros(w.lvMask)
	lv := &w.levels[l]
	idx := lv.minOcc()
	if l == 0 {
		return w.cur&^Time(wheelSlots-1) | Time(idx), true
	}
	min := Time(0)
	for i, ev := range lv.slots[idx] {
		if i == 0 || ev.at < min {
			min = ev.at
		}
	}
	return min, true
}

// pop removes and returns the minimum event, committing any cursor
// advance and cascades that entails.
func (w *timerWheel) pop() *Event {
	for {
		if w.batchHead < len(w.batch) {
			ev := w.batch[w.batchHead]
			w.batch[w.batchHead] = nil
			w.batchHead++
			w.count--
			return ev
		}
		l := bits.TrailingZeros(w.lvMask)
		lv := &w.levels[l]
		idx := lv.minOcc()
		if l == 0 {
			// Commit the cursor to this slot's timestamp and lift the
			// whole same-timestamp batch out with a slice swap; the
			// retired batch buffer becomes the slot's new backing so
			// same-timestamp re-inserts from callbacks append into
			// warmed capacity.
			w.cur = w.cur&^Time(wheelSlots-1) | Time(idx)
			w.batch, w.spare = lv.slots[idx], w.batch[:0]
			w.batchHead = 0
			lv.slots[idx] = w.spare
			lv.clearOcc(idx)
			if lv.minOcc() < 0 {
				w.lvMask &^= 1
			}
			continue
		}
		// Cascade: advance the cursor into this slot's epoch (zeroing
		// the bytes below keeps it a lower bound) and refile the slot's
		// events; each lands at a strictly lower level with seq order
		// preserved, because all lower levels are empty right now.
		shift := uint(l) * wheelBits
		w.cur = w.cur&^Time(1<<(shift+wheelBits)-1) | Time(idx)<<shift
		taken := lv.slots[idx]
		lv.slots[idx] = taken[:0]
		lv.clearOcc(idx)
		if lv.minOcc() < 0 {
			w.lvMask &^= 1 << uint(l)
		}
		w.count -= len(taken)
		for i, ev := range taken {
			w.push(ev)
			taken[i] = nil
		}
	}
}

func (w *timerWheel) clear() {
	*w = timerWheel{}
}
