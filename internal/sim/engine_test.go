package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(10, func() { got = append(got, 1) })
	e.At(5, func() { got = append(got, 0) })
	e.At(10, func() { got = append(got, 2) }) // same time: insertion order
	e.Run()
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %d, want 10", e.Now())
	}
}

func TestEventCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(5, func() { fired = true })
	ev.Cancel()
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(12)
	if len(fired) != 2 || fired[1] != 10 {
		t.Fatalf("fired = %v, want [5 10]", fired)
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("after Run fired = %v, want all 4", fired)
	}
}

func TestProcDelay(t *testing.T) {
	e := NewEngine(1)
	var at []Time
	e.Go("a", func(p *Proc) {
		p.Delay(100)
		at = append(at, p.Now())
		p.Delay(50)
		at = append(at, p.Now())
	})
	e.Run()
	if len(at) != 2 || at[0] != 100 || at[1] != 150 {
		t.Fatalf("at = %v, want [100 150]", at)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", e.LiveProcs())
	}
}

func TestProcZeroDelayIsFree(t *testing.T) {
	e := NewEngine(1)
	e.Go("a", func(p *Proc) {
		p.Delay(0)
		if p.Now() != 0 {
			t.Errorf("Now = %d after Delay(0), want 0", p.Now())
		}
	})
	e.Run()
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a0")
		p.Delay(10)
		order = append(order, "a1")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b0")
		p.Delay(5)
		order = append(order, "b1")
	})
	e.Run()
	want := "a0,b0,b1,a1"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine(1)
	e.Go("boom", func(p *Proc) {
		p.Delay(1)
		panic("kaboom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not re-panic")
		}
		if !strings.Contains(r.(error).Error(), "kaboom") {
			t.Fatalf("panic %v does not mention cause", r)
		}
	}()
	e.Run()
}

func TestCondSignalFIFO(t *testing.T) {
	e := NewEngine(1)
	c := e.NewCond()
	var order []string
	for _, name := range []string{"w1", "w2"} {
		name := name
		e.Go(name, func(p *Proc) {
			c.Wait(p)
			order = append(order, name)
		})
	}
	e.Go("signaler", func(p *Proc) {
		p.Delay(10)
		c.Signal()
		p.Delay(10)
		c.Signal()
	})
	e.Run()
	if len(order) != 2 || order[0] != "w1" || order[1] != "w2" {
		t.Fatalf("order = %v, want [w1 w2]", order)
	}
}

func TestCondBroadcast(t *testing.T) {
	e := NewEngine(1)
	c := e.NewCond()
	n := 0
	for i := 0; i < 5; i++ {
		e.Go("w", func(p *Proc) {
			c.Wait(p)
			n++
		})
	}
	e.Go("b", func(p *Proc) {
		p.Delay(3)
		c.Broadcast()
	})
	e.Run()
	if n != 5 {
		t.Fatalf("woken = %d, want 5", n)
	}
	if c.Waiters() != 0 {
		t.Fatalf("Waiters = %d, want 0", c.Waiters())
	}
}

func TestCondWaitTimeout(t *testing.T) {
	e := NewEngine(1)
	c := e.NewCond()
	var sig1, sig2 bool
	var t1, t2 Time
	e.Go("timeout", func(p *Proc) {
		sig1 = c.WaitTimeout(p, 50)
		t1 = p.Now()
	})
	e.Run()
	if sig1 || t1 != 50 {
		t.Fatalf("timeout case: signaled=%v at=%d, want false at 50", sig1, t1)
	}

	e2 := NewEngine(1)
	c2 := e2.NewCond()
	e2.Go("waiter", func(p *Proc) {
		sig2 = c2.WaitTimeout(p, 50)
		t2 = p.Now()
	})
	e2.Go("signaler", func(p *Proc) {
		p.Delay(20)
		c2.Broadcast()
	})
	e2.Run()
	if !sig2 || t2 != 20 {
		t.Fatalf("signal case: signaled=%v at=%d, want true at 20", sig2, t2)
	}
	// The cancelled timeout must not fire later.
	if e2.Now() != 50 && e2.Now() != 20 {
		// Engine may drain the cancelled event at t=50 harmlessly.
		t.Fatalf("unexpected final time %d", e2.Now())
	}
}

func TestCondWaitTimeoutSignalRace(t *testing.T) {
	// A signal at exactly the timeout instant: the timeout event was
	// scheduled first, so it wins deterministically.
	e := NewEngine(1)
	c := e.NewCond()
	var sig bool
	e.Go("w", func(p *Proc) {
		sig = c.WaitTimeout(p, 20)
	})
	e.Go("s", func(p *Proc) {
		p.Delay(20)
		c.Broadcast()
	})
	e.Run()
	if sig {
		t.Fatal("signal at timeout instant should lose to earlier-scheduled timeout")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine(42)
		c := e.NewCond()
		var trace []Time
		for i := 0; i < 4; i++ {
			e.Go("w", func(p *Proc) {
				for j := 0; j < 10; j++ {
					p.Delay(e.Rand().Uint64n(100) + 1)
					trace = append(trace, p.Now())
					if j%3 == 0 {
						c.Broadcast()
					} else if e.Rand().Float64() < 0.3 {
						c.WaitTimeout(p, 25)
					}
				}
			})
		}
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRandStability(t *testing.T) {
	// Pin the first outputs so accidental algorithm changes are caught:
	// every experiment's reproducibility depends on this stream.
	r := NewRand(1)
	got := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r2 := NewRand(1)
	want := []uint64{r2.Uint64(), r2.Uint64(), r2.Uint64()}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Rand not reproducible at %d", i)
		}
	}
}

func TestRandProperties(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		r := NewRand(seed)
		m := int(n%1000) + 1
		v := r.Intn(m)
		if v < 0 || v >= m {
			return false
		}
		f := r.Float64()
		if f < 0 || f >= 1 {
			return false
		}
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, x := range p {
			if x < 0 || x >= m || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandForkIndependent(t *testing.T) {
	r := NewRand(7)
	f := r.Fork()
	if r.Uint64() == f.Uint64() {
		t.Fatal("forked stream mirrors parent")
	}
}

func TestYield(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a0")
		p.Yield()
		order = append(order, "a1")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b0")
	})
	e.Run()
	want := "a0,b0,a1"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
	if e.Now() != 0 {
		t.Fatalf("Yield advanced time to %d", e.Now())
	}
}
