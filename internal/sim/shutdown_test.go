package sim

import (
	"runtime"
	"strings"
	"testing"
)

// TestShutdownDrainsBlockedProcs is the leak-check contract: after a run
// leaves processes parked (a Cond nobody will signal — the shape of every
// idle simulated CPU loop), Shutdown unwinds them all and LiveProcs drops
// to zero.
func TestShutdownDrainsBlockedProcs(t *testing.T) {
	e := NewEngine(1)
	c := e.NewCond()
	for i := 0; i < 8; i++ {
		e.Go("parked", func(p *Proc) {
			c.Wait(p) // no signal ever comes
			t.Error("parked proc body continued past Wait during shutdown")
		})
	}
	e.Go("worker", func(p *Proc) { p.Delay(10) })
	e.Run()
	if e.LiveProcs() != 9-1 { // worker finished, 8 parked
		t.Fatalf("LiveProcs before Shutdown = %d, want 8", e.LiveProcs())
	}
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs after Shutdown = %d, want 0", e.LiveProcs())
	}
}

// TestShutdownAfterProcPanic covers the satellite bug: Run re-panics a
// proc's error, leaving every other proc parked; Shutdown must still drain
// them from that state.
func TestShutdownAfterProcPanic(t *testing.T) {
	e := NewEngine(1)
	c := e.NewCond()
	for i := 0; i < 4; i++ {
		e.Go("parked", func(p *Proc) { c.Wait(p) })
	}
	e.Go("boom", func(p *Proc) {
		p.Delay(5)
		panic("kaboom")
	})
	func() {
		defer func() {
			if r := recover(); r == nil || !strings.Contains(r.(error).Error(), "kaboom") {
				t.Fatalf("Run recovered %v, want the proc panic", r)
			}
		}()
		e.Run()
	}()
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs after Shutdown = %d, want 0", e.LiveProcs())
	}
}

// TestShutdownNeverStartedProc: a proc spawned but never resumed (its start
// event still queued) must not run its body during shutdown.
func TestShutdownNeverStartedProc(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.Go("never", func(p *Proc) { ran = true })
	// No Run: the start event is still pending.
	e.Shutdown()
	if ran {
		t.Fatal("never-started proc body ran during Shutdown")
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs after Shutdown = %d, want 0", e.LiveProcs())
	}
}

// TestShutdownIdempotent: calling Shutdown twice is harmless.
func TestShutdownIdempotent(t *testing.T) {
	e := NewEngine(1)
	c := e.NewCond()
	e.Go("parked", func(p *Proc) { c.Wait(p) })
	e.Run()
	e.Shutdown()
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", e.LiveProcs())
	}
}

// TestShutdownReleasesGoroutines verifies the goroutines actually exit (not
// just the bookkeeping): the global goroutine count returns to its
// pre-engine level after Shutdown.
func TestShutdownReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 10; round++ {
		e := NewEngine(uint64(round + 1))
		c := e.NewCond()
		for i := 0; i < 16; i++ {
			e.Go("parked", func(p *Proc) { c.Wait(p) })
		}
		e.Run()
		e.Shutdown()
	}
	// The unwound goroutines finish asynchronously after their final
	// channel send; yield until they exit.
	var after int
	for i := 0; i < 20000; i++ {
		after = runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("goroutines: %d before, %d after 160 drained procs", before, after)
}
