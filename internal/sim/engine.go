// Package sim provides a deterministic discrete-event simulation engine
// with a cooperative process model.
//
// The engine maintains a virtual clock measured in CPU cycles and an event
// heap ordered by (time, insertion sequence). Simulated activities run as
// processes (Proc): goroutines that execute strictly one at a time, handing
// control back to the engine whenever they block (Delay, Cond.Wait, ...).
// Because at most one goroutine runs at any instant and ties in the event
// heap are broken by insertion order, a simulation with a fixed seed is
// fully deterministic.
//
// The package is the foundation for every other simulated component in this
// repository: cores, TLBs, APICs and kernel code are all expressed as
// processes and events on a shared Engine.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, measured in cycles since simulation start.
type Time uint64

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling an event that already
// fired (or was already cancelled) is a no-op.
func (ev *Event) Cancel() { ev.cancelled = true }

// Cancelled reports whether Cancel was called on the event.
func (ev *Event) Cancelled() bool { return ev.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return
}

// Engine is a deterministic discrete-event simulator.
//
// An Engine must be driven from a single goroutine via Run or RunUntil.
// It is not safe for concurrent use; processes spawned with Go interleave
// cooperatively and never run in parallel with the engine or each other.
type Engine struct {
	now   Time
	heap  eventHeap
	seq   uint64
	sched chan struct{}
	rng   *Rand

	liveProcs int
	procErr   error
	current   *Proc
}

// NewEngine returns an engine with the clock at zero and a deterministic
// random source derived from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		sched: make(chan struct{}),
		rng:   NewRand(seed),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Pending returns the number of events (cancelled or not) still queued.
func (e *Engine) Pending() int { return len(e.heap) }

// LiveProcs returns the number of processes that have been started and have
// not yet returned.
func (e *Engine) LiveProcs() int { return e.liveProcs }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// a simulation that rewinds its clock is always a bug.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.heap, ev)
	return ev
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d uint64, fn func()) *Event {
	return e.At(e.now+Time(d), fn)
}

// Run executes events until the heap is empty. Processes that are blocked on
// conditions with no future signal are left blocked; Run returns when no
// event can advance the simulation further. If a process panicked, Run
// re-panics with its error.
func (e *Engine) Run() {
	e.RunUntil(^Time(0))
}

// RunUntil executes events with timestamps <= horizon. The clock stops at
// the last executed event (it does not jump to horizon).
func (e *Engine) RunUntil(horizon Time) {
	for len(e.heap) > 0 {
		next := e.heap[0]
		if next.at > horizon {
			return
		}
		heap.Pop(&e.heap)
		if next.cancelled {
			continue
		}
		e.now = next.at
		next.fn()
		if e.procErr != nil {
			panic(e.procErr)
		}
	}
}

// Current returns the process that is executing right now, or nil when
// control is inside the event loop itself (timer callbacks, hooks fired
// from events). Observational tooling uses this to attribute actions —
// lock acquisitions, PTE writes — to the simulated actor performing them.
func (e *Engine) Current() *Proc { return e.current }

// resume hands control to p and blocks until p yields back.
func (e *Engine) resume(p *Proc) {
	prev := e.current
	e.current = p
	p.wake <- struct{}{}
	<-e.sched
	e.current = prev
}
