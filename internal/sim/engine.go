// Package sim provides a deterministic discrete-event simulation engine
// with a cooperative process model.
//
// The engine maintains a virtual clock measured in CPU cycles and an event
// heap ordered by (time, insertion sequence). Simulated activities run as
// processes (Proc): goroutines that execute strictly one at a time, handing
// control back to the engine whenever they block (Delay, Cond.Wait, ...).
// Because at most one goroutine runs at any instant and ties in the event
// heap are broken by insertion order, a simulation with a fixed seed is
// fully deterministic.
//
// The package is the foundation for every other simulated component in this
// repository: cores, TLBs, APICs and kernel code are all expressed as
// processes and events on a shared Engine.
//
// Engines are independent: two engines share no state, so separate
// simulations may run on separate OS threads concurrently (see
// internal/sched). A single Engine remains strictly single-threaded.
package sim

import (
	"errors"
	"fmt"
)

// Time is a point in virtual time, measured in cycles since simulation start.
type Time uint64

// Event is a scheduled callback. It can be cancelled before it fires.
//
// An Event handle is only valid until the event fires (or, if cancelled,
// until the engine drains it from the queue): fired events are recycled
// into the engine's free list, so retaining a handle past its firing and
// calling Cancel on it later would act on an unrelated event.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling an event that was
// already cancelled is a no-op. Cancel must not be called after the event
// fired: the handle is recycled at that point (see the Event doc).
func (ev *Event) Cancel() { ev.cancelled = true }

// Cancelled reports whether Cancel was called on the event.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// eventQueue is the engine's pending-event store, ordered by (at, seq).
// Two implementations exist: the binary min-heap below (EngineHeap) and
// the hierarchical timer wheel in wheel.go (EngineWheel, the default).
// Both realize the exact same total order, so the engine's event schedule
// — and therefore every simulation output — is identical under either;
// TestEngineKindsEquivalent and the experiment-level equivalence sweep
// hold them to that.
type eventQueue interface {
	// push inserts ev. Events pushed at equal times must pop in push
	// order (At allocates strictly increasing seq, so (at, seq) is the
	// total order).
	push(ev *Event)
	// nextTime returns the timestamp of the minimum pending event. It
	// must not disturb queue state observable through pop order.
	nextTime() (Time, bool)
	// pop removes and returns the minimum event.
	pop() *Event
	// len returns the number of pending events (cancelled included).
	len() int
	// clear drops all state so the queue retains no event references.
	clear()
}

// EngineKind names an eventQueue implementation.
type EngineKind string

const (
	// EngineHeap is the binary min-heap scheduler (the original
	// implementation; ns/event grows with log of pending events).
	EngineHeap EngineKind = "heap"
	// EngineWheel is the hierarchical timer wheel (wheel.go): O(1)
	// pushes and batched same-timestamp dispatch keep ns/event flat as
	// machine width grows. The default.
	EngineWheel EngineKind = "wheel"
)

// ParseEngineKind validates a -engine flag value.
func ParseEngineKind(s string) (EngineKind, error) {
	switch EngineKind(s) {
	case EngineHeap, EngineWheel:
		return EngineKind(s), nil
	case "":
		return EngineWheel, nil
	}
	return "", fmt.Errorf("sim: unknown engine kind %q (have %q, %q)", s, EngineHeap, EngineWheel)
}

// eventHeap is a binary min-heap ordered by (at, seq). It is implemented
// concretely — not via container/heap — so that pushes and pops stay free
// of interface boxing: this is the hottest data structure in the
// repository (every Delay of every simulated process passes through it).
type eventHeap []*Event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends ev and restores the heap property (sift-up).
func (h *eventHeap) push(ev *Event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the minimum event (sift-down).
func (h *eventHeap) pop() *Event {
	s := *h
	n := len(s) - 1
	min := s[0]
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && s.less(r, l) {
			child = r
		}
		if !s.less(child, i) {
			break
		}
		s[i], s[child] = s[child], s[i]
		i = child
	}
	return min
}

// heapQueue adapts eventHeap to the eventQueue interface.
type heapQueue struct {
	h eventHeap
}

func (q *heapQueue) push(ev *Event) { q.h.push(ev) }
func (q *heapQueue) pop() *Event    { return q.h.pop() }
func (q *heapQueue) len() int       { return len(q.h) }
func (q *heapQueue) clear()         { q.h = nil }
func (q *heapQueue) nextTime() (Time, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

// Engine is a deterministic discrete-event simulator.
//
// An Engine must be driven from a single goroutine via Run or RunUntil.
// It is not safe for concurrent use; processes spawned with Go interleave
// cooperatively and never run in parallel with the engine or each other.
// Distinct Engines share nothing and may run concurrently.
type Engine struct {
	now   Time
	q     eventQueue
	kind  EngineKind
	seq   uint64
	sched chan struct{}
	rng   *Rand

	// free is the event free list: every fired or drained-cancelled event
	// is recycled here, so steady-state scheduling (Delay, Yield, cond
	// wakeups) allocates nothing.
	free []*Event

	liveProcs int
	procs     []*Proc
	procErr   error
	current   *Proc
	draining  bool
}

// NewEngine returns an engine with the clock at zero and a deterministic
// random source derived from seed, using the default (timer-wheel) event
// scheduler.
func NewEngine(seed uint64) *Engine {
	return NewEngineKind(EngineWheel, seed)
}

// NewEngineKind returns an engine using the named event scheduler. Both
// kinds realize the identical (time, insertion-seq) event order, so they
// are output-equivalent; the wheel keeps ns/event flat on wide machines
// while the heap remains as the reference implementation.
func NewEngineKind(kind EngineKind, seed uint64) *Engine {
	var q eventQueue
	switch kind {
	case EngineHeap:
		q = &heapQueue{}
	case EngineWheel, "":
		kind = EngineWheel
		q = newTimerWheel()
	default:
		panic(fmt.Sprintf("sim: unknown engine kind %q", kind))
	}
	return &Engine{
		q:     q,
		kind:  kind,
		sched: make(chan struct{}),
		rng:   NewRand(seed),
	}
}

// Kind returns the engine's event-scheduler implementation.
func (e *Engine) Kind() EngineKind { return e.kind }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Pending returns the number of events (cancelled or not) still queued.
func (e *Engine) Pending() int {
	if e.q == nil {
		return 0
	}
	return e.q.len()
}

// LiveProcs returns the number of processes that have been started and have
// not yet returned.
func (e *Engine) LiveProcs() int { return e.liveProcs }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// a simulation that rewinds its clock is always a bug.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.cancelled = t, e.seq, fn, false
	} else {
		ev = &Event{at: t, seq: e.seq, fn: fn}
	}
	e.q.push(ev)
	return ev
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d uint64, fn func()) *Event {
	return e.At(e.now+Time(d), fn)
}

// release returns a drained event to the free list.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Run executes events until the heap is empty. Processes that are blocked on
// conditions with no future signal are left blocked; Run returns when no
// event can advance the simulation further. If a process panicked, Run
// re-panics with its error.
func (e *Engine) Run() {
	e.RunUntil(^Time(0))
}

// RunUntil executes events with timestamps <= horizon. The clock stops at
// the last executed event (it does not jump to horizon).
func (e *Engine) RunUntil(horizon Time) {
	for e.q.len() > 0 {
		if t, ok := e.q.nextTime(); !ok || t > horizon {
			return
		}
		next := e.q.pop()
		if next.cancelled {
			e.release(next)
			continue
		}
		e.now = next.at
		fn := next.fn
		e.release(next)
		fn()
		if e.procErr != nil {
			panic(e.procErr)
		}
	}
}

// errShutdown is the poison delivered to parked processes during Shutdown;
// yielding processes re-panic with it, and the proc trampoline swallows it.
var errShutdown = errors.New("sim: engine shut down")

// Shutdown drains the engine after the simulation is over: every process
// that is still blocked (on a Delay that will never elapse under a panicked
// run, a Cond with no future signal, an idle CPU loop, ...) is woken one
// last time and unwound, so its goroutine exits. Without this, every booted
// machine parks its per-CPU loops forever — across thousands of pooled runs
// that is an unbounded goroutine leak.
//
// Shutdown must be called from the goroutine that drives the engine, after
// Run/RunUntil returned or panicked. The engine must not be used afterwards.
// It is idempotent, and LiveProcs reports 0 once it returns.
func (e *Engine) Shutdown() {
	e.draining = true
	// Index loop: a dying process could in principle spawn another during
	// unwind; appended procs are drained in the same pass.
	for i := 0; i < len(e.procs); i++ {
		p := e.procs[i]
		if p.done {
			continue
		}
		e.resume(p)
	}
	e.procs = nil
	if e.q != nil {
		e.q.clear()
	}
	e.free = nil
	e.procErr = nil
}

// Current returns the process that is executing right now, or nil when
// control is inside the event loop itself (timer callbacks, hooks fired
// from events). Observational tooling uses this to attribute actions —
// lock acquisitions, PTE writes — to the simulated actor performing them.
func (e *Engine) Current() *Proc { return e.current }

// resume hands control to p and blocks until p yields back.
func (e *Engine) resume(p *Proc) {
	prev := e.current
	e.current = p
	p.wake <- struct{}{}
	<-e.sched
	e.current = prev
}
