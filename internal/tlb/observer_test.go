package tlb

import (
	"testing"

	"shootdown/internal/pagetable"
)

func fill(t *TLB, pcid PCID, va uint64, frame uint64, global bool) {
	t.Fill(pcid, Entry{
		VA: va, Frame: frame, Flags: pagetable.Present | pagetable.Write,
		Size: pagetable.Size4K, Global: global,
	})
}

// TestSnapshotDuringFlushPCIDSeesNoHalfClearedState: the sanitizer (and
// any observer) snapshots the TLB from inside flush callbacks. The
// callback contract is that it fires only after the flush fully applied:
// a Snapshot taken inside the FlushPCID observer must contain no entry of
// the flushed PCID, and everything else must be intact.
func TestSnapshotDuringFlushPCIDSeesNoHalfClearedState(t *testing.T) {
	// Cap must hold all 9 fills: evictions would skew the removed counts.
	tl := New(Config{Cap4K: 16, Cap2M: 4, PWCSize: 4})
	for i := uint64(0); i < 4; i++ {
		fill(tl, 2, i<<12, 100+i, false)
		fill(tl, 3, i<<12, 200+i, false)
	}
	fill(tl, 2, 0x100000, 999, true) // global: stored under GlobalTag

	called := 0
	tl.SetObserver(&Observer{
		FlushPCID: func(pcid PCID, removed int) {
			called++
			if pcid != 2 {
				t.Errorf("flushed pcid = %d, want 2", pcid)
			}
			if removed != 4 {
				t.Errorf("removed = %d, want 4", removed)
			}
			var left2, left3, global int
			for _, se := range tl.Snapshot() {
				switch se.PCID {
				case 2:
					left2++
				case 3:
					left3++
				case GlobalTag:
					global++
				}
			}
			if left2 != 0 {
				t.Errorf("snapshot mid-callback still has %d entries of flushed pcid", left2)
			}
			if left3 != 4 || global != 1 {
				t.Errorf("flush disturbed other spaces: pcid3=%d global=%d", left3, global)
			}
			// Lookups from inside the callback agree with the snapshot.
			if _, ok := tl.Lookup(2, 0); ok {
				t.Error("lookup mid-callback still hits flushed pcid")
			}
		},
	})
	tl.FlushPCID(2)
	if called != 1 {
		t.Fatalf("FlushPCID observer fired %d times, want 1", called)
	}
}

// TestFlushPageObserverCountsAndState mirrors the same contract for
// selective flushes, including the global-alias key.
func TestFlushPageObserverCountsAndState(t *testing.T) {
	tl := small()
	fill(tl, 2, 0x1000, 1, false)
	fill(tl, 3, 0x1000, 2, false)

	var got []int
	tl.SetObserver(&Observer{
		FlushPage: func(pcid PCID, va uint64, removed int) {
			got = append(got, removed)
			if _, ok := tl.Lookup(pcid, va); ok {
				t.Error("entry survived into its own flush callback")
			}
		},
	})
	tl.FlushPage(2, 0x1000) // removes pcid 2's entry only
	tl.FlushPage(2, 0x1000) // redundant: removes nothing
	tl.FlushPage(3, 0x1000)
	want := []int{1, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("callbacks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("callbacks = %v, want %v", got, want)
		}
	}
}

// TestFlushAllObserverVariants: FlushAllNonGlobal keeps globals (and says
// so), FlushEverything drops them too.
func TestFlushAllObserverVariants(t *testing.T) {
	tl := small()
	fill(tl, 2, 0x1000, 1, false)
	fill(tl, 2, 0x100000, 2, true)

	type ev struct {
		globals bool
		removed int
	}
	var evs []ev
	tl.SetObserver(&Observer{
		FlushAll: func(globals bool, removed int) {
			evs = append(evs, ev{globals, removed})
			if globals && tl.Len() != 0 {
				t.Error("FlushEverything callback sees leftover entries")
			}
		},
	})
	tl.FlushAllNonGlobal()
	if n := tl.Len(); n != 1 {
		t.Fatalf("globals dropped by non-global flush: len=%d", n)
	}
	tl.FlushEverything()
	if len(evs) != 2 || evs[0] != (ev{false, 1}) || evs[1] != (ev{true, 1}) {
		t.Fatalf("events = %+v", evs)
	}
}

// TestHitAndFillObservers: every successful Lookup reports the returned
// entry; every Fill reports the tag it stored under (GlobalTag for global
// pages) so observers can maintain an exact mirror.
func TestHitAndFillObservers(t *testing.T) {
	tl := small()
	var fills []PCID
	hits := 0
	tl.SetObserver(&Observer{
		Fill: func(pcid PCID, e Entry) { fills = append(fills, pcid) },
		Hit: func(pcid PCID, va uint64, e Entry) {
			hits++
			if va != 0x1000 || e.Frame != 7 {
				t.Errorf("hit reported va=%#x frame=%d", va, e.Frame)
			}
		},
	})
	fill(tl, 2, 0x1000, 7, false)
	fill(tl, 2, 0x200000, 8, true)
	if len(fills) != 2 || fills[0] != 2 || fills[1] != GlobalTag {
		t.Fatalf("fill tags = %v, want [2 GlobalTag]", fills)
	}
	if _, ok := tl.Lookup(2, 0x1000); !ok {
		t.Fatal("lookup missed")
	}
	if _, ok := tl.Lookup(2, 0x9000); ok {
		t.Fatal("phantom hit")
	}
	if hits != 1 {
		t.Fatalf("hit observer fired %d times, want 1", hits)
	}
}

// TestFractureEscalationReportsAsFullFlush: under the fracture rule a
// selective flush escalates to a full flush; observers must see the
// FlushAll event (with the true removal count), not a FlushPage event —
// this is exactly the accounting the sanitizer's redundancy stats rely on.
func TestFractureEscalationReportsAsFullFlush(t *testing.T) {
	tl := New(Config{Cap4K: 8, Cap2M: 4, PWCSize: 4, FractureRule: true})
	// A fractured fill: 2M guest page backed by 4K host pages.
	tl.Fill(2, Entry{
		VA: 0, Frame: 1, Flags: pagetable.Present | pagetable.Huge,
		Size: pagetable.Size2M, Fractured: true,
	})
	fill(tl, 2, 0x400000, 3, false)

	pageEvents, allEvents := 0, 0
	tl.SetObserver(&Observer{
		FlushPage: func(pcid PCID, va uint64, removed int) { pageEvents++ },
		FlushAll: func(globals bool, removed int) {
			allEvents++
			if globals || removed != 2 {
				t.Errorf("escalated flush: globals=%v removed=%d", globals, removed)
			}
		},
	})
	tl.FlushPage(2, 0x400000)
	if pageEvents != 0 || allEvents != 1 {
		t.Fatalf("pageEvents=%d allEvents=%d, want 0/1 (escalation)", pageEvents, allEvents)
	}
}
