package tlb

import (
	"testing"
	"testing/quick"

	"shootdown/internal/pagetable"
)

func small() *TLB {
	return New(Config{Cap4K: 8, Cap2M: 4, PWCSize: 4})
}

func e4(va, frame uint64) Entry {
	return Entry{VA: va, Frame: frame, Size: pagetable.Size4K, Flags: pagetable.Present | pagetable.User}
}

func TestFillLookup(t *testing.T) {
	tl := small()
	tl.Fill(1, e4(0x1000, 7))
	e, ok := tl.Lookup(1, 0x1234)
	if !ok || e.Frame != 7 {
		t.Fatalf("lookup = %+v %v", e, ok)
	}
	if _, ok := tl.Lookup(2, 0x1234); ok {
		t.Fatal("entry visible under wrong PCID")
	}
	if _, ok := tl.Lookup(1, 0x2000); ok {
		t.Fatal("unexpected hit")
	}
	s := tl.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Fills != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestGlobalEntriesMatchAnyPCID(t *testing.T) {
	tl := small()
	g := e4(0xffff800000001000, 9)
	g.Global = true
	tl.Fill(1, g)
	if _, ok := tl.Lookup(2, 0xffff800000001000); !ok {
		t.Fatal("global entry did not match other PCID")
	}
	tl.FlushPCID(2)
	if _, ok := tl.Lookup(3, 0xffff800000001000); !ok {
		t.Fatal("global entry lost in PCID flush")
	}
	tl.FlushAllNonGlobal()
	if _, ok := tl.Lookup(3, 0xffff800000001000); !ok {
		t.Fatal("global entry lost in non-global full flush")
	}
	tl.FlushEverything()
	if _, ok := tl.Lookup(3, 0xffff800000001000); ok {
		t.Fatal("global entry survived FlushEverything")
	}
}

func Test2MEntries(t *testing.T) {
	tl := small()
	tl.Fill(1, Entry{VA: pagetable.PageSize2M, Frame: 512, Size: pagetable.Size2M, Flags: pagetable.Present})
	e, ok := tl.Lookup(1, pagetable.PageSize2M+0x12345)
	if !ok || e.Size != pagetable.Size2M {
		t.Fatalf("2M lookup = %+v %v", e, ok)
	}
	tl.FlushPage(1, pagetable.PageSize2M+0x1000)
	if _, ok := tl.Lookup(1, pagetable.PageSize2M); ok {
		t.Fatal("2M entry survived covering FlushPage")
	}
}

func TestFlushPage(t *testing.T) {
	tl := small()
	tl.Fill(1, e4(0x1000, 1))
	tl.Fill(1, e4(0x2000, 2))
	tl.FlushPage(1, 0x1000)
	if _, ok := tl.Lookup(1, 0x1000); ok {
		t.Fatal("flushed page still present")
	}
	if _, ok := tl.Lookup(1, 0x2000); !ok {
		t.Fatal("unrelated page was flushed")
	}
	if tl.Stats().SelectiveFlushes != 1 {
		t.Fatalf("selective flush count = %d", tl.Stats().SelectiveFlushes)
	}
}

func TestFlushPCIDSelective(t *testing.T) {
	tl := small()
	tl.Fill(1, e4(0x1000, 1))
	tl.Fill(2, e4(0x1000, 2))
	tl.FlushPCID(1)
	if _, ok := tl.Lookup(1, 0x1000); ok {
		t.Fatal("PCID 1 entry survived")
	}
	if _, ok := tl.Lookup(2, 0x1000); !ok {
		t.Fatal("PCID 2 entry was dropped")
	}
}

func TestCapacityEviction(t *testing.T) {
	tl := small() // cap 8
	for i := uint64(0); i < 10; i++ {
		tl.Fill(1, e4(0x1000*(i+1), i+1))
	}
	if tl.Len() != 8 {
		t.Fatalf("Len = %d, want 8 (capacity)", tl.Len())
	}
	// FIFO: the first two fills must be gone.
	if _, ok := tl.Lookup(1, 0x1000); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := tl.Lookup(1, 0xa000); !ok {
		t.Fatal("newest entry missing")
	}
	if tl.Stats().Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", tl.Stats().Evictions)
	}
}

func TestRefillSameKeyNoEvict(t *testing.T) {
	tl := small()
	for i := 0; i < 20; i++ {
		tl.Fill(1, e4(0x1000, uint64(i)))
	}
	if tl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tl.Len())
	}
	if tl.Stats().Evictions != 0 {
		t.Fatalf("evictions = %d, want 0", tl.Stats().Evictions)
	}
	e, _ := tl.Lookup(1, 0x1000)
	if e.Frame != 19 {
		t.Fatalf("frame = %d, want latest", e.Frame)
	}
}

func TestFractureRule(t *testing.T) {
	cfg := Config{Cap4K: 8, Cap2M: 4, PWCSize: 4, FractureRule: true}
	tl := New(cfg)
	tl.Fill(1, e4(0x1000, 1))
	fr := e4(0x2000, 2)
	fr.Fractured = true
	tl.Fill(1, fr)
	if !tl.Fractured() {
		t.Fatal("fracture flag not set")
	}
	// Selective flush of an unrelated address escalates to a full flush.
	tl.FlushPage(1, 0x9000)
	if tl.Len() != 0 {
		t.Fatalf("Len = %d after escalated flush, want 0", tl.Len())
	}
	if tl.Stats().FractureEscalations != 1 {
		t.Fatalf("escalations = %d", tl.Stats().FractureEscalations)
	}
	if tl.Fractured() {
		t.Fatal("fracture flag survived full flush")
	}
	// With the rule disabled, fractured fills do not escalate.
	tl2 := small()
	tl2.Fill(1, fr)
	tl2.Fill(1, e4(0x1000, 1))
	tl2.FlushPage(1, 0x9000)
	if tl2.Len() != 2 {
		t.Fatalf("non-VM TLB escalated: len=%d", tl2.Len())
	}
}

func TestPageWalkCache(t *testing.T) {
	tl := small()
	if tl.WalkCacheLookup(0x1000) {
		t.Fatal("cold PWC hit")
	}
	if !tl.WalkCacheLookup(0x2000) {
		t.Fatal("same 2M region should hit PWC")
	}
	if tl.WalkCacheLookup(5 * pagetable.PageSize2M) {
		t.Fatal("different region hit")
	}
	tl.InvalidateWalkCache()
	if tl.WalkCacheLookup(0x1000) {
		t.Fatal("PWC hit after invalidate")
	}
	s := tl.Stats()
	if s.PWCHits != 1 || s.PWCMisses != 3 {
		t.Fatalf("pwc stats = %+v", s)
	}
}

func TestPWCCapacity(t *testing.T) {
	tl := small() // PWC size 4
	for i := uint64(0); i < 6; i++ {
		tl.WalkCacheLookup(i * pagetable.PageSize2M)
	}
	// Oldest region evicted.
	if tl.WalkCacheLookup(0) {
		t.Fatal("evicted PWC region still hits")
	}
	if !tl.WalkCacheLookup(5 * pagetable.PageSize2M) {
		t.Fatal("recent region missing")
	}
}

// Property: after FlushPCID(p), no lookup under p hits (non-global), and
// entries of other PCIDs are intact.
func TestFlushPCIDProperty(t *testing.T) {
	f := func(vas []uint16, flushPCID uint8) bool {
		tl := New(Config{Cap4K: 4096, Cap2M: 64, PWCSize: 16})
		type fillRec struct {
			pcid PCID
			va   uint64
		}
		var fills []fillRec
		for i, v := range vas {
			pcid := PCID(v%3 + 1)
			va := (uint64(v) << pagetable.PageShift4K)
			tl.Fill(pcid, e4(va, uint64(i+1)))
			fills = append(fills, fillRec{pcid, va})
		}
		target := PCID(flushPCID%3 + 1)
		tl.FlushPCID(target)
		for _, f := range fills {
			_, ok := tl.Lookup(f.pcid, f.va)
			if f.pcid == target && ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Len never exceeds capacity.
func TestCapacityProperty(t *testing.T) {
	f := func(vas []uint16) bool {
		tl := New(Config{Cap4K: 16, Cap2M: 4, PWCSize: 4})
		for i, v := range vas {
			if v%5 == 0 {
				tl.Fill(1, Entry{VA: uint64(v>>3) * pagetable.PageSize2M, Frame: uint64(i), Size: pagetable.Size2M})
			} else {
				tl.Fill(1, e4(uint64(v)<<pagetable.PageShift4K, uint64(i)))
			}
			if tl.Len() > 20 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
