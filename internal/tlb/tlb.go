// Package tlb models a per-core translation lookaside buffer with
// process-context identifiers (PCIDs), global entries, separate 4 KiB and
// 2 MiB capacity classes, a page-walk cache, and the Intel "page
// fracturing" behaviour the paper documents in §7/Table 4.
//
// The TLB is purely mechanical: it caches translations and implements the
// x86 invalidation primitives (CR3 write, INVLPG, INVPCID). Deciding *when*
// to invalidate — the shootdown protocol — lives in internal/core; deciding
// walk costs lives in the kernel layer.
package tlb

import "shootdown/internal/pagetable"

// PCID is a process-context identifier tagging TLB entries with their
// address space (x86 allows 4096 of them; Linux uses a small rotation).
type PCID uint16

// Entry is one cached translation.
type Entry struct {
	// VA is the page-aligned virtual address.
	VA uint64
	// Frame is the physical frame number.
	Frame uint64
	// Flags are the leaf PTE flags at fill time.
	Flags pagetable.Flags
	// Size is the cached page size.
	Size pagetable.Size
	// Global marks kernel entries that survive PCID-tagged flushes.
	Global bool
	// Fractured marks an entry produced by a nested walk where the guest
	// page is huge but the host backing is 4 KiB (paper §7): caching any
	// such entry forces the CPU to escalate selective flushes.
	Fractured bool

	seq uint64
}

// Stats counts TLB events.
type Stats struct {
	Hits, Misses     uint64
	Fills, Evictions uint64
	// FullFlushes counts whole-TLB (or whole-PCID) invalidations;
	// SelectiveFlushes counts single-address invalidations;
	// FractureEscalations counts selective flushes escalated to full
	// flushes by the fracture rule.
	FullFlushes, SelectiveFlushes, FractureEscalations uint64
	// PWCHits/PWCMisses count page-walk-cache outcomes reported via
	// WalkCacheLookup.
	PWCHits, PWCMisses uint64
}

type entryKey struct {
	pcid PCID
	vpn  uint64
}

// Config sizes a TLB.
type Config struct {
	// Cap4K and Cap2M bound the number of cached 4 KiB / 2 MiB entries
	// (Skylake-era second-level TLB: 1536 / 32).
	Cap4K, Cap2M int
	// PWCSize bounds the page-walk cache (cached PDE regions).
	PWCSize int
	// FractureRule enables the Intel behaviour where a selective flush
	// becomes a full flush whenever a fractured translation may be cached.
	// Only meaningful when running nested (under the virt package).
	FractureRule bool
}

// DefaultConfig returns a Skylake-like TLB configuration.
func DefaultConfig() Config {
	return Config{Cap4K: 1536, Cap2M: 32, PWCSize: 32}
}

// TLB is one core's translation cache.
type TLB struct {
	cfg Config

	e4k map[entryKey]*Entry
	e2m map[entryKey]*Entry
	// FIFO rings for eviction; entries removed by flushes are skipped
	// lazily when their seq no longer matches.
	ring4k, ring2m []ringSlot
	head4k, head2m int
	seq            uint64

	// pwc caches upper-level walk state keyed by va>>21 region.
	pwc     map[uint64]uint64 // region -> seq
	pwcRing []uint64
	pwcHead int
	pwcSeq  uint64

	// fractured is set while any fractured entry may be cached. It is a
	// sticky hardware flag: only a full flush clears it.
	fractured bool

	stats Stats
	obs   *Observer
}

// Observer receives notifications about TLB activity. Every callback fires
// after the state change it describes has fully taken effect, so an
// observer can never see a half-applied flush. Callbacks must be purely
// observational: they must not mutate the TLB or advance simulated time,
// or a checked run would diverge from an unchecked one. Nil fields are
// skipped.
type Observer struct {
	// Hit fires on a successful Lookup with the probing PCID and the entry
	// that satisfied it (possibly a global entry under GlobalTag).
	Hit func(pcid PCID, va uint64, e Entry)
	// Fill fires after an entry is inserted, with the tag it was stored
	// under (GlobalTag for global entries).
	Fill func(pcid PCID, e Entry)
	// FlushPage fires after a single-address invalidation; removed counts
	// the entries actually dropped (0 means the flush was redundant).
	FlushPage func(pcid PCID, va uint64, removed int)
	// FlushPCID fires after a full per-PCID invalidation.
	FlushPCID func(pcid PCID, removed int)
	// FlushAll fires after FlushAllNonGlobal (globals=false) or
	// FlushEverything (globals=true), including fracture-rule escalations.
	FlushAll func(globals bool, removed int)
}

// SetObserver installs (or, with nil, removes) the activity observer.
func (t *TLB) SetObserver(o *Observer) { t.obs = o }

type ringSlot struct {
	key entryKey
	seq uint64
}

// New returns an empty TLB.
func New(cfg Config) *TLB {
	if cfg.Cap4K <= 0 || cfg.Cap2M <= 0 {
		panic("tlb: capacities must be positive")
	}
	return &TLB{
		cfg: cfg,
		e4k: make(map[entryKey]*Entry),
		e2m: make(map[entryKey]*Entry),
		pwc: make(map[uint64]uint64),
	}
}

// Stats returns a snapshot of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes the counters.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// Len returns the number of cached entries (both size classes).
func (t *TLB) Len() int { return len(t.e4k) + len(t.e2m) }

// Fractured reports whether the fracture flag is currently set.
func (t *TLB) Fractured() bool { return t.fractured }

func vpn4k(va uint64) uint64 { return va >> pagetable.PageShift4K }
func vpn2m(va uint64) uint64 { return va >> pagetable.PageShift2M }

// Lookup returns the cached translation for (pcid, va) if present. Global
// entries match under any PCID, as on x86.
func (t *TLB) Lookup(pcid PCID, va uint64) (Entry, bool) {
	if e, ok := t.e2m[entryKey{pcid, vpn2m(va)}]; ok {
		return t.hit(pcid, va, e), true
	}
	if e, ok := t.e4k[entryKey{pcid, vpn4k(va)}]; ok {
		return t.hit(pcid, va, e), true
	}
	// Global entries are stored under their fill PCID but match any; scan
	// the dedicated global space (PCID tag ^0) to keep lookups O(1).
	if e, ok := t.e2m[entryKey{globalSpace, vpn2m(va)}]; ok {
		return t.hit(pcid, va, e), true
	}
	if e, ok := t.e4k[entryKey{globalSpace, vpn4k(va)}]; ok {
		return t.hit(pcid, va, e), true
	}
	t.stats.Misses++
	return Entry{}, false
}

func (t *TLB) hit(pcid PCID, va uint64, e *Entry) Entry {
	t.stats.Hits++
	if t.obs != nil && t.obs.Hit != nil {
		t.obs.Hit(pcid, va, *e)
	}
	return *e
}

// globalSpace is the internal PCID tag for global entries.
const globalSpace PCID = 0xffff

// Fill inserts a translation for pcid. Global entries ignore pcid.
func (t *TLB) Fill(pcid PCID, e Entry) {
	t.seq++
	e.seq = t.seq
	if e.Global {
		pcid = globalSpace
	}
	if e.Fractured {
		t.fractured = true
	}
	t.stats.Fills++
	switch e.Size {
	case pagetable.Size2M:
		key := entryKey{pcid, vpn2m(e.VA)}
		if _, exists := t.e2m[key]; !exists && len(t.e2m) >= t.cfg.Cap2M {
			t.evict(&t.e2m, &t.ring2m, &t.head2m)
		}
		t.e2m[key] = &e
		t.ring2m = append(t.ring2m, ringSlot{key, e.seq})
	default:
		key := entryKey{pcid, vpn4k(e.VA)}
		if _, exists := t.e4k[key]; !exists && len(t.e4k) >= t.cfg.Cap4K {
			t.evict(&t.e4k, &t.ring4k, &t.head4k)
		}
		t.e4k[key] = &e
		t.ring4k = append(t.ring4k, ringSlot{key, e.seq})
	}
	if t.obs != nil && t.obs.Fill != nil {
		t.obs.Fill(pcid, e)
	}
}

// EvictPage silently drops any cached entries (both size classes, and
// matching global entries) covering (pcid, va) — a spurious conflict
// eviction, injected by the fault plane to model TLB pressure the
// simulator's capacity rings would not produce on their own. Like capacity
// evictions it fires no observer callback: evictions only ever shrink the
// cached set, so no coherence obligation can depend on them.
func (t *TLB) EvictPage(pcid PCID, va uint64) {
	for _, k := range [...]entryKey{
		{pcid, vpn4k(va)}, {globalSpace, vpn4k(va)},
	} {
		if _, ok := t.e4k[k]; ok {
			delete(t.e4k, k)
			t.stats.Evictions++
		}
	}
	for _, k := range [...]entryKey{
		{pcid, vpn2m(va)}, {globalSpace, vpn2m(va)},
	} {
		if _, ok := t.e2m[k]; ok {
			delete(t.e2m, k)
			t.stats.Evictions++
		}
	}
}

func (t *TLB) evict(m *map[entryKey]*Entry, ring *[]ringSlot, head *int) {
	for *head < len(*ring) {
		slot := (*ring)[*head]
		*head++
		if e, ok := (*m)[slot.key]; ok && e.seq == slot.seq {
			delete(*m, slot.key)
			t.stats.Evictions++
			t.compact(ring, head)
			return
		}
	}
	t.compact(ring, head)
}

// compact trims consumed ring prefix occasionally to bound memory.
func (t *TLB) compact(ring *[]ringSlot, head *int) {
	if *head > 4096 && *head*2 > len(*ring) {
		n := copy(*ring, (*ring)[*head:])
		*ring = (*ring)[:n]
		*head = 0
	}
}

// FlushPage implements a single-address invalidation (INVLPG/INVPCID
// single-address semantics): it removes any 4 KiB and 2 MiB entries of the
// PCID covering va, plus matching global entries.
//
// If the fracture rule is enabled and a fractured translation may be
// cached, the flush escalates to a full non-global flush, as observed on
// Intel hardware (paper §7, Table 4).
func (t *TLB) FlushPage(pcid PCID, va uint64) {
	if t.cfg.FractureRule && t.fractured {
		t.stats.FractureEscalations++
		t.FlushAllNonGlobal()
		return
	}
	t.stats.SelectiveFlushes++
	removed := 0
	for _, k := range [...]entryKey{
		{pcid, vpn4k(va)}, {globalSpace, vpn4k(va)},
	} {
		if _, ok := t.e4k[k]; ok {
			delete(t.e4k, k)
			removed++
		}
	}
	for _, k := range [...]entryKey{
		{pcid, vpn2m(va)}, {globalSpace, vpn2m(va)},
	} {
		if _, ok := t.e2m[k]; ok {
			delete(t.e2m, k)
			removed++
		}
	}
	if t.obs != nil && t.obs.FlushPage != nil {
		t.obs.FlushPage(pcid, va, removed)
	}
}

// FlushPCID removes all non-global entries tagged pcid (MOV-to-CR3 without
// NOFLUSH for that PCID, or INVPCID single-context).
func (t *TLB) FlushPCID(pcid PCID) {
	t.stats.FullFlushes++
	removed := 0
	for k := range t.e4k {
		if k.pcid == pcid {
			delete(t.e4k, k)
			removed++
		}
	}
	for k := range t.e2m {
		if k.pcid == pcid {
			delete(t.e2m, k)
			removed++
		}
	}
	// A full flush of an address space also drops fractured entries of
	// that space; since the hardware flag is conservative and global, we
	// clear it only when the whole TLB is emptied of non-globals.
	if t.nonGlobalEmpty() {
		t.fractured = false
	}
	if t.obs != nil && t.obs.FlushPCID != nil {
		t.obs.FlushPCID(pcid, removed)
	}
}

// FlushAllNonGlobal removes every non-global entry regardless of PCID
// (INVPCID all-contexts-retaining-globals).
func (t *TLB) FlushAllNonGlobal() {
	t.stats.FullFlushes++
	removed := 0
	for k := range t.e4k {
		if k.pcid != globalSpace {
			delete(t.e4k, k)
			removed++
		}
	}
	for k := range t.e2m {
		if k.pcid != globalSpace {
			delete(t.e2m, k)
			removed++
		}
	}
	t.fractured = false
	if t.obs != nil && t.obs.FlushAll != nil {
		t.obs.FlushAll(false, removed)
	}
}

// FlushEverything removes all entries including globals (INVPCID
// all-contexts, or CR4.PGE toggle).
func (t *TLB) FlushEverything() {
	t.stats.FullFlushes++
	removed := len(t.e4k) + len(t.e2m)
	clear(t.e4k)
	clear(t.e2m)
	t.fractured = false
	if t.obs != nil && t.obs.FlushAll != nil {
		t.obs.FlushAll(true, removed)
	}
}

func (t *TLB) nonGlobalEmpty() bool {
	for k := range t.e4k {
		if k.pcid != globalSpace {
			return false
		}
	}
	for k := range t.e2m {
		if k.pcid != globalSpace {
			return false
		}
	}
	return true
}

// SnapshotEntry pairs a cached entry with the PCID tag it is stored under
// (GlobalTag for global entries).
type SnapshotEntry struct {
	PCID  PCID
	Entry Entry
}

// GlobalTag is the PCID tag under which global entries appear in
// Snapshot output.
const GlobalTag = globalSpace

// Snapshot returns every cached entry with its PCID tag, in unspecified
// order. Intended for invariant checks in tests.
func (t *TLB) Snapshot() []SnapshotEntry {
	out := make([]SnapshotEntry, 0, t.Len())
	for k, e := range t.e4k {
		out = append(out, SnapshotEntry{k.pcid, *e})
	}
	for k, e := range t.e2m {
		out = append(out, SnapshotEntry{k.pcid, *e})
	}
	return out
}

// --- Page-walk cache ---

// WalkCacheLookup reports whether the upper-level walk state for va is
// cached, inserting it if not. The caller uses the result to pick the
// partial-walk or full-walk cost.
func (t *TLB) WalkCacheLookup(va uint64) (hit bool) {
	if t.cfg.PWCSize <= 0 {
		t.stats.PWCMisses++
		return false
	}
	region := va >> pagetable.PageShift2M
	if _, ok := t.pwc[region]; ok {
		t.stats.PWCHits++
		return true
	}
	t.stats.PWCMisses++
	if len(t.pwc) >= t.cfg.PWCSize {
		for t.pwcHead < len(t.pwcRing) {
			r := t.pwcRing[t.pwcHead]
			t.pwcHead++
			if _, ok := t.pwc[r]; ok {
				delete(t.pwc, r)
				break
			}
		}
	}
	t.pwcSeq++
	t.pwc[region] = t.pwcSeq
	t.pwcRing = append(t.pwcRing, region)
	if t.pwcHead > 1024 && t.pwcHead*2 > len(t.pwcRing) {
		n := copy(t.pwcRing, t.pwcRing[t.pwcHead:])
		t.pwcRing = t.pwcRing[:n]
		t.pwcHead = 0
	}
	return false
}

// InvalidateWalkCache drops the entire page-walk cache. INVLPG flushes the
// whole page-structure cache (paper §5.1, "in-context flushing ... INVLPG
// flushes the entire page-structure cache"); INVPCID single-address does
// not, so callers invoke this only on the INVLPG path.
func (t *TLB) InvalidateWalkCache() {
	clear(t.pwc)
	t.pwcRing = t.pwcRing[:0]
	t.pwcHead = 0
}
