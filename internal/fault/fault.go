// Package fault is the deterministic fault-injection plane threaded
// through the simulated machine: delayed and dropped shootdown kicks in
// the IPI fabric (internal/apic), stalled responders and slow
// acknowledgements in the interrupt and SMP layers (internal/kernel,
// internal/smp), spurious TLB evictions and PCID-recycling pressure in
// the translation path, and preemption storms at kernel entry.
//
// Every decision is drawn from a splittable PRNG keyed by
// (seed, site, occurrence-index): the n-th query of a site always gets
// the same answer for a given seed, no matter how many worker goroutines
// run other worlds concurrently or how sites interleave. A failing
// schedule therefore replays byte-identically from a one-line repro
// (`tlbfuzz -faults <spec> -seed N -parallel 1`).
//
// The plane owns no recovery policy; it only makes the machine hostile.
// The matching robustness layer — kick-timeout detection, bounded
// retry/backoff, degradation to a full flush — lives in internal/smp and
// internal/kernel and is armed whenever a plane is attached (unless the
// spec's NoRetry flag deliberately breaks it, which the sanitizer must
// then catch as an unacknowledged IPI).
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Site identifies one class of injection point. Each site has its own
// occurrence counter, so decisions at one site never perturb another's
// stream — the "splittable" property the determinism tests rely on.
type Site uint8

const (
	// SiteIPIDelay adds wire latency to a maskable IPI delivery. Because
	// each delivery draws its own delay, concurrent deliveries reorder.
	SiteIPIDelay Site = iota
	// SiteIPIDrop loses a shootdown kick (VectorCallFunction only: NMIs
	// are never lost by the fabric, and losing reschedule kicks would
	// model scheduler bugs, not TLB-protocol hostility).
	SiteIPIDrop
	// SiteRespStall stalls a responder between interrupt assertion and
	// dispatch (SMI, deep C-state exit, host preemption).
	SiteRespStall
	// SiteAckDelay delays the responder's acknowledgement store.
	SiteAckDelay
	// SiteTLBEvict spuriously evicts a just-filled TLB entry
	// (conflict-pressure model).
	SiteTLBEvict
	// SitePCIDRecycle drops an incoming mm's PCID-tagged entries on
	// address-space switch (PCID-allocator pressure).
	SitePCIDRecycle
	// SitePreempt inserts a preemption pause at kernel entry (a
	// daemon-storm scheduling delay).
	SitePreempt

	// NumSites is the number of injection-site classes.
	NumSites
)

// String names the site.
func (s Site) String() string {
	switch s {
	case SiteIPIDelay:
		return "ipi-delay"
	case SiteIPIDrop:
		return "ipi-drop"
	case SiteRespStall:
		return "resp-stall"
	case SiteAckDelay:
		return "ack-delay"
	case SiteTLBEvict:
		return "tlb-evict"
	case SitePCIDRecycle:
		return "pcid-recycle"
	case SitePreempt:
		return "preempt"
	default:
		return fmt.Sprintf("site(%d)", uint8(s))
	}
}

// Decide is the splittable PRNG: a pure function of (seed, site, index).
// It is the whole determinism contract — the plane's per-site occurrence
// counters merely supply index, so the n-th decision at a site depends on
// nothing but the seed. The mixer is the splitmix64 finalizer applied to
// a per-site stream key, giving full avalanche between adjacent indices
// and decorrelated streams for distinct sites.
func Decide(seed uint64, site Site, index uint64) uint64 {
	z := fmix(seed + 0x9e3779b97f4a7c15*(uint64(site)+1))
	return fmix(z + 0x9e3779b97f4a7c15*(index+1))
}

func fmix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hits converts a raw draw into a probability decision: the top 53 bits
// form a uniform float in [0,1), compared against p. Exact for p<=0 and
// p>=1, portable for the rest (IEEE-754 double, no platform variance).
func hits(u uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(u>>11)/(1<<53) < p
}

// magnitude derives a cycle count in [1,max] from the same draw that made
// the hit decision (re-mixed with a salt so the low bits of the decision
// and the magnitude are independent).
func magnitude(u, max uint64) uint64 {
	if max == 0 {
		return 0
	}
	return 1 + fmix(u^0xd6e8feb86659fd93)%max
}

// Spec is a fault schedule: per-site probabilities and magnitude bounds.
// The zero Spec injects nothing. Magnitudes are cycle counts drawn
// uniformly from [1,Max] on a hit.
type Spec struct {
	// DelayP/DelayMax govern SiteIPIDelay.
	DelayP   float64
	DelayMax uint64
	// DropP governs SiteIPIDrop. DropBurstMax bounds consecutive drops of
	// the site (0 means the default, DefaultDropBurst): after that many
	// losses in a row the next kick is force-delivered, so retry loops
	// stay live even at DropP=1.
	DropP        float64
	DropBurstMax int
	// StallP/StallMax govern SiteRespStall.
	StallP   float64
	StallMax uint64
	// AckDelayP/AckDelayMax govern SiteAckDelay.
	AckDelayP   float64
	AckDelayMax uint64
	// EvictP governs SiteTLBEvict.
	EvictP float64
	// RecycleP governs SitePCIDRecycle.
	RecycleP float64
	// PreemptP/PreemptMax govern SitePreempt.
	PreemptP   float64
	PreemptMax uint64
	// NoRetry disables the recovery layer (kick timeout + retry +
	// degradation) while the faults stay on: the deliberately broken
	// configuration the oracle stack must flag as an unacked IPI.
	NoRetry bool
}

// DefaultDropBurst is the consecutive-drop bound applied when
// Spec.DropBurstMax is zero.
const DefaultDropBurst = 4

// Zero reports whether the spec injects no faults at all (NoRetry alone
// is inert: with nothing injected there is nothing to recover from).
func (s Spec) Zero() bool {
	return s.DelayP <= 0 && s.DropP <= 0 && s.StallP <= 0 &&
		s.AckDelayP <= 0 && s.EvictP <= 0 && s.RecycleP <= 0 && s.PreemptP <= 0
}

// String renders the spec in the canonical form Parse accepts, with
// fields in a fixed order so repro lines are stable.
func (s Spec) String() string {
	if s.Zero() && !s.NoRetry {
		return "none"
	}
	var parts []string
	pm := func(key string, p float64, max uint64) {
		if p > 0 {
			parts = append(parts, fmt.Sprintf("%s=%s:%d", key, formatP(p), max))
		}
	}
	pm("delay", s.DelayP, s.DelayMax)
	if s.DropP > 0 {
		parts = append(parts, "drop="+formatP(s.DropP))
		if s.DropBurstMax > 0 {
			parts = append(parts, "dropburst="+strconv.Itoa(s.DropBurstMax))
		}
	}
	pm("stall", s.StallP, s.StallMax)
	pm("ackdelay", s.AckDelayP, s.AckDelayMax)
	if s.EvictP > 0 {
		parts = append(parts, "evict="+formatP(s.EvictP))
	}
	if s.RecycleP > 0 {
		parts = append(parts, "recycle="+formatP(s.RecycleP))
	}
	pm("preempt", s.PreemptP, s.PreemptMax)
	if s.NoRetry {
		parts = append(parts, "noretry")
	}
	return strings.Join(parts, ",")
}

func formatP(p float64) string { return strconv.FormatFloat(p, 'g', -1, 64) }

// Preset returns a named schedule, ok=false for unknown names.
//
//	none   — no injection (the zero Spec)
//	light  — mild background hostility; CI's default faulted sweep
//	heavy  — aggressive delays, drops and stalls
//	drop   — concentrated kick loss, exercising the retry path hard
//	broken — drop with the recovery layer disabled (must be caught)
func Preset(name string) (Spec, bool) {
	switch name {
	case "none":
		return Spec{}, true
	case "light":
		return Spec{
			DelayP: 0.15, DelayMax: 2000,
			DropP:  0.05,
			StallP: 0.05, StallMax: 4000,
			AckDelayP: 0.05, AckDelayMax: 1500,
			EvictP:   0.02,
			RecycleP: 0.02,
			PreemptP: 0.03, PreemptMax: 3000,
		}, true
	case "heavy":
		return Spec{
			DelayP: 0.5, DelayMax: 8000,
			DropP:  0.25,
			StallP: 0.25, StallMax: 20000,
			AckDelayP: 0.2, AckDelayMax: 6000,
			EvictP:   0.1,
			RecycleP: 0.1,
			PreemptP: 0.15, PreemptMax: 12000,
		}, true
	case "drop":
		return Spec{DropP: 0.6}, true
	case "broken":
		return Spec{DropP: 1, NoRetry: true}, true
	default:
		return Spec{}, false
	}
}

// PresetNames lists the preset names in stable order.
func PresetNames() []string {
	names := []string{"none", "light", "heavy", "drop", "broken"}
	sort.Strings(names)
	return names
}

// Parse reads a fault-schedule string: a comma-separated list whose
// elements are preset names (applied as a base, later elements override
// field-wise), `key=p` or `key=p:max` assignments, or the bare flag
// `noretry`. Keys: delay, drop, dropburst, stall, ackdelay, evict,
// recycle, preempt.
//
//	Parse("light")              // preset
//	Parse("drop=0.5,stall=0.2:10000")
//	Parse("light,noretry")      // preset with the recovery layer off
func Parse(in string) (Spec, error) {
	var s Spec
	in = strings.TrimSpace(in)
	if in == "" {
		return s, nil
	}
	for _, tok := range strings.Split(in, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if p, ok := Preset(tok); ok {
			noRetry := s.NoRetry
			s = p
			s.NoRetry = s.NoRetry || noRetry
			continue
		}
		if tok == "noretry" {
			s.NoRetry = true
			continue
		}
		key, val, found := strings.Cut(tok, "=")
		if !found {
			return Spec{}, fmt.Errorf("fault: %q is neither a preset (%s), noretry, nor key=value", tok, strings.Join(PresetNames(), ", "))
		}
		if key == "dropburst" {
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Spec{}, fmt.Errorf("fault: dropburst wants a positive integer, got %q", val)
			}
			s.DropBurstMax = n
			continue
		}
		pStr, maxStr, hasMax := strings.Cut(val, ":")
		p, err := strconv.ParseFloat(pStr, 64)
		if err != nil || p < 0 || p > 1 {
			return Spec{}, fmt.Errorf("fault: %s wants a probability in [0,1], got %q", key, pStr)
		}
		var max uint64
		if hasMax {
			max, err = strconv.ParseUint(maxStr, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("fault: %s wants p:maxcycles, got %q", key, val)
			}
		}
		switch key {
		case "delay":
			s.DelayP, s.DelayMax = p, max
		case "drop":
			if hasMax {
				return Spec{}, fmt.Errorf("fault: drop takes no magnitude (got %q); use dropburst=N for the burst bound", val)
			}
			s.DropP = p
		case "stall":
			s.StallP, s.StallMax = p, max
		case "ackdelay":
			s.AckDelayP, s.AckDelayMax = p, max
		case "evict":
			if hasMax {
				return Spec{}, fmt.Errorf("fault: evict takes no magnitude (got %q)", val)
			}
			s.EvictP = p
		case "recycle":
			if hasMax {
				return Spec{}, fmt.Errorf("fault: recycle takes no magnitude (got %q)", val)
			}
			s.RecycleP = p
		case "preempt":
			s.PreemptP, s.PreemptMax = p, max
		default:
			return Spec{}, fmt.Errorf("fault: unknown key %q", key)
		}
	}
	return s, nil
}

// Stats counts the faults a plane actually injected.
type Stats struct {
	// Delays / Drops / Stalls / AckDelays / Evictions / Recycles /
	// Preempts count hits per site.
	Delays, Drops, Stalls, AckDelays, Evictions, Recycles, Preempts uint64
	// ForcedDeliveries counts kicks the burst bound force-delivered after
	// DropBurstMax consecutive losses (the liveness escape hatch).
	ForcedDeliveries uint64
}

// Add accumulates other into s (order-independent merge).
func (s *Stats) Add(other Stats) {
	s.Delays += other.Delays
	s.Drops += other.Drops
	s.Stalls += other.Stalls
	s.AckDelays += other.AckDelays
	s.Evictions += other.Evictions
	s.Recycles += other.Recycles
	s.Preempts += other.Preempts
	s.ForcedDeliveries += other.ForcedDeliveries
}

// Plane is one world's fault state: the spec, the per-site occurrence
// counters, and the injected-fault counters. It belongs to a single
// simulated machine and is only touched from that machine's engine
// goroutine, so it needs no locking. All methods are nil-safe: a nil
// *Plane injects nothing and keeps every protocol path cycle-identical
// to an unfaulted build.
type Plane struct {
	seed    uint64
	spec    Spec
	occ     [NumSites]uint64
	dropRun int
	stats   Stats
}

// New builds a plane for one world. Worlds with the same (seed, spec)
// make identical decisions.
func New(seed uint64, spec Spec) *Plane {
	return &Plane{seed: seed, spec: spec}
}

// Seed returns the plane's seed (0 for a nil plane).
func (pl *Plane) Seed() uint64 {
	if pl == nil {
		return 0
	}
	return pl.seed
}

// Spec returns the plane's schedule (the zero Spec for a nil plane).
func (pl *Plane) Spec() Spec {
	if pl == nil {
		return Spec{}
	}
	return pl.spec
}

// Stats returns the injected-fault counters so far.
func (pl *Plane) Stats() Stats {
	if pl == nil {
		return Stats{}
	}
	return pl.stats
}

// Active reports whether a plane is attached.
func (pl *Plane) Active() bool { return pl != nil }

// RecoveryArmed reports whether the shootdown recovery layer should run:
// true whenever a plane is attached and the spec does not deliberately
// break it. With no plane there is nothing to recover from, and keeping
// the timeout path disabled leaves fault-free runs cycle-identical to a
// machine without the recovery code.
func (pl *Plane) RecoveryArmed() bool { return pl != nil && !pl.spec.NoRetry }

// roll advances site's occurrence counter and returns its draw.
func (pl *Plane) roll(site Site) uint64 {
	i := pl.occ[site]
	pl.occ[site]++
	return Decide(pl.seed, site, i)
}

// draw makes one probability decision at site, returning the magnitude in
// [1,max] on a hit (0,false on a miss or for a nil/idle site).
func (pl *Plane) draw(site Site, p float64, max uint64) (uint64, bool) {
	if pl == nil || p <= 0 {
		return 0, false
	}
	u := pl.roll(site)
	if !hits(u, p) {
		return 0, false
	}
	return magnitude(u, max), true
}

// DeliverDelay returns extra wire latency for one maskable IPI delivery
// (0 = none). Per-delivery draws make concurrent deliveries reorder.
func (pl *Plane) DeliverDelay() uint64 {
	d, ok := pl.draw(SiteIPIDelay, pl.Spec().DelayP, pl.Spec().DelayMax)
	if !ok {
		return 0
	}
	pl.stats.Delays++
	return d
}

// DropKick reports whether to lose one shootdown kick. Consecutive drops
// are bounded by the spec's burst limit: after DropBurstMax losses in a
// row the next kick is force-delivered (counted in ForcedDeliveries), so
// the retry layer's re-sends always land eventually, even at DropP=1.
func (pl *Plane) DropKick() bool {
	if pl == nil || pl.spec.DropP <= 0 {
		return false
	}
	if _, ok := pl.draw(SiteIPIDrop, pl.spec.DropP, 0); !ok {
		pl.dropRun = 0
		return false
	}
	burst := pl.spec.DropBurstMax
	if burst <= 0 {
		burst = DefaultDropBurst
	}
	if pl.dropRun >= burst {
		pl.dropRun = 0
		pl.stats.ForcedDeliveries++
		return false
	}
	pl.dropRun++
	pl.stats.Drops++
	return true
}

// ResponderStall returns a dispatch stall for one taken IRQ (0 = none).
func (pl *Plane) ResponderStall() uint64 {
	d, ok := pl.draw(SiteRespStall, pl.Spec().StallP, pl.Spec().StallMax)
	if !ok {
		return 0
	}
	pl.stats.Stalls++
	return d
}

// AckDelay returns a delay for one acknowledgement store (0 = none).
func (pl *Plane) AckDelay() uint64 {
	d, ok := pl.draw(SiteAckDelay, pl.Spec().AckDelayP, pl.Spec().AckDelayMax)
	if !ok {
		return 0
	}
	pl.stats.AckDelays++
	return d
}

// EvictOnFill reports whether to spuriously evict a just-filled entry.
func (pl *Plane) EvictOnFill() bool {
	if _, ok := pl.draw(SiteTLBEvict, pl.Spec().EvictP, 0); !ok {
		return false
	}
	pl.stats.Evictions++
	return true
}

// PCIDRecycle reports whether an address-space switch finds its PCIDs
// recycled (cached entries gone, generation state cold).
func (pl *Plane) PCIDRecycle() bool {
	if _, ok := pl.draw(SitePCIDRecycle, pl.Spec().RecycleP, 0); !ok {
		return false
	}
	pl.stats.Recycles++
	return true
}

// PreemptDelay returns a preemption pause for one kernel entry (0 = none).
func (pl *Plane) PreemptDelay() uint64 {
	d, ok := pl.draw(SitePreempt, pl.Spec().PreemptP, pl.Spec().PreemptMax)
	if !ok {
		return 0
	}
	pl.stats.Preempts++
	return d
}
