package fault

import (
	"math"
	"sync"
	"testing"
)

// TestDecideDeterministic: same (seed, site, index) → same decision, no
// matter how many goroutines compute it or in what order the queries are
// issued. This is the splittable-PRNG contract every repro line rests on.
func TestDecideDeterministic(t *testing.T) {
	const N = 512
	seeds := []uint64{0, 1, 7, 0xdeadbeef, math.MaxUint64}

	type key struct {
		seed  uint64
		site  Site
		index uint64
	}
	want := map[key]uint64{}
	for _, seed := range seeds {
		for site := Site(0); site < NumSites; site++ {
			for i := uint64(0); i < N; i++ {
				want[key{seed, site, i}] = Decide(seed, site, i)
			}
		}
	}

	// Recompute everything from 8 goroutines, each walking the keys in a
	// different order (stride permutation), and compare.
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	strides := []uint64{1, 3, 5, 7, 11, 13, 17, 19}
	for _, stride := range strides {
		wg.Add(1)
		go func(stride uint64) {
			defer wg.Done()
			for _, seed := range seeds {
				for site := Site(0); site < NumSites; site++ {
					for j := uint64(0); j < N; j++ {
						i := (j * stride) % N
						if got := Decide(seed, site, i); got != want[key{seed, site, i}] {
							errs <- "Decide changed across goroutines/order"
							return
						}
					}
				}
			}
		}(stride)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestPlaneStreamsIndependent: interleaving queries to other sites must
// not perturb a site's decision stream — the plane's per-site occurrence
// counters implement split streams, not a shared sequence.
func TestPlaneStreamsIndependent(t *testing.T) {
	spec, _ := Preset("heavy")
	solo := New(42, spec)
	var soloDelays []uint64
	for i := 0; i < 200; i++ {
		soloDelays = append(soloDelays, solo.DeliverDelay())
	}

	mixed := New(42, spec)
	var mixedDelays []uint64
	for i := 0; i < 200; i++ {
		// Interleave draws at every other site between delay queries.
		mixed.DropKick()
		mixed.ResponderStall()
		mixed.AckDelay()
		mixed.EvictOnFill()
		mixed.PCIDRecycle()
		mixed.PreemptDelay()
		mixedDelays = append(mixedDelays, mixed.DeliverDelay())
	}

	for i := range soloDelays {
		if soloDelays[i] != mixedDelays[i] {
			t.Fatalf("delay stream perturbed by other sites at index %d: solo=%d mixed=%d",
				i, soloDelays[i], mixedDelays[i])
		}
	}
}

// TestSitesDecorrelated is the chi-squared smoke bound: bucket the draws
// of each site into 16 bins and check uniformity, and check that paired
// draws (same index, adjacent sites) don't co-bucket. Loose thresholds —
// this guards against gross stream aliasing, not statistical perfection.
func TestSitesDecorrelated(t *testing.T) {
	const (
		N    = 4096
		bins = 16
	)
	// Chi-squared with 15 dof: p=0.001 critical value ≈ 37.7. Use 60 as a
	// generous smoke bound.
	const bound = 60.0
	expect := float64(N) / bins

	for site := Site(0); site < NumSites; site++ {
		var counts [bins]int
		for i := uint64(0); i < N; i++ {
			counts[Decide(99, site, i)%bins]++
		}
		chi := 0.0
		for _, c := range counts {
			d := float64(c) - expect
			chi += d * d / expect
		}
		if chi > bound {
			t.Errorf("site %v: chi-squared %.1f > %.1f (non-uniform stream)", site, chi, bound)
		}
	}

	// Cross-site: fraction of indices where two sites land in the same
	// bin should be near 1/bins, not near 1 (which would mean the streams
	// are shifted copies).
	for a := Site(0); a < NumSites; a++ {
		b := (a + 1) % NumSites
		same := 0
		for i := uint64(0); i < N; i++ {
			if Decide(99, a, i)%bins == Decide(99, b, i)%bins {
				same++
			}
		}
		frac := float64(same) / N
		if frac > 3.0/bins {
			t.Errorf("sites %v/%v co-bucket %.3f of the time (correlated streams)", a, b, frac)
		}
	}
}

// TestSeedsDiverge: different seeds give different schedules.
func TestSeedsDiverge(t *testing.T) {
	same := 0
	for i := uint64(0); i < 256; i++ {
		if Decide(1, SiteIPIDelay, i) == Decide(2, SiteIPIDelay, i) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 agree on %d/256 draws", same)
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []Spec{
		{},
		{DelayP: 0.25, DelayMax: 1000},
		{DropP: 0.5, DropBurstMax: 3},
		{DropP: 1, NoRetry: true},
		{DelayP: 0.1, DelayMax: 200, StallP: 0.2, StallMax: 4000,
			AckDelayP: 0.05, AckDelayMax: 100, EvictP: 0.01, RecycleP: 0.02,
			PreemptP: 0.3, PreemptMax: 7},
	}
	for _, want := range cases {
		s := want.String()
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got != want {
			t.Fatalf("round trip %q: got %+v want %+v", s, got, want)
		}
	}
}

func TestParsePresets(t *testing.T) {
	for _, name := range PresetNames() {
		want, ok := Preset(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		got, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if got != want {
			t.Fatalf("Parse(%q) != Preset(%q)", name, name)
		}
	}
	// Preset plus override: later tokens win field-wise.
	got, err := Parse("light,drop=0.9")
	if err != nil {
		t.Fatal(err)
	}
	light, _ := Preset("light")
	light.DropP = 0.9
	if got != light {
		t.Fatalf("preset+override: got %+v want %+v", got, light)
	}
	// noretry composes with a preset.
	got, err = Parse("drop,noretry")
	if err != nil {
		t.Fatal(err)
	}
	if !got.NoRetry || got.DropP != 0.6 {
		t.Fatalf("drop,noretry: got %+v", got)
	}
	if _, ok := Preset("broken"); !ok {
		t.Fatal("broken preset missing")
	}
	if b, _ := Preset("broken"); !b.NoRetry || b.DropP < 1 {
		t.Fatalf("broken preset must be full drop with recovery off: %+v", b)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"bogus",
		"delay",
		"delay=2",
		"delay=-0.1",
		"drop=0.5:100",
		"evict=0.5:100",
		"recycle=0.5:100",
		"dropburst=0",
		"dropburst=x",
		"stall=0.5:abc",
		"frob=0.5",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error, got none", in)
		}
	}
}

func TestSpecZero(t *testing.T) {
	if !(Spec{}).Zero() {
		t.Fatal("zero Spec must be Zero")
	}
	if !(Spec{NoRetry: true}).Zero() {
		t.Fatal("NoRetry alone injects nothing → Zero")
	}
	if (Spec{EvictP: 0.1}).Zero() {
		t.Fatal("EvictP>0 is not Zero")
	}
	if (Spec{}).String() != "none" {
		t.Fatalf("zero Spec renders %q, want none", (Spec{}).String())
	}
}

// TestNilPlane: every site method on a nil plane is a no-op miss, so the
// unfaulted machine pays nothing and branches nowhere.
func TestNilPlane(t *testing.T) {
	var pl *Plane
	if pl.DeliverDelay() != 0 || pl.DropKick() || pl.ResponderStall() != 0 ||
		pl.AckDelay() != 0 || pl.EvictOnFill() || pl.PCIDRecycle() ||
		pl.PreemptDelay() != 0 {
		t.Fatal("nil plane injected something")
	}
	if pl.Active() || pl.RecoveryArmed() {
		t.Fatal("nil plane claims to be active/armed")
	}
	if pl.Stats() != (Stats{}) || pl.Spec() != (Spec{}) || pl.Seed() != 0 {
		t.Fatal("nil plane has state")
	}
}

// TestDropBurstBound: even at DropP=1, at most DropBurstMax consecutive
// kicks are lost before one is force-delivered — the liveness guarantee
// the retry layer's termination proof rests on.
func TestDropBurstBound(t *testing.T) {
	pl := New(7, Spec{DropP: 1, DropBurstMax: 3})
	run := 0
	forced := 0
	for i := 0; i < 100; i++ {
		if pl.DropKick() {
			run++
			if run > 3 {
				t.Fatalf("%d consecutive drops > burst bound 3", run)
			}
		} else {
			forced++
			run = 0
		}
	}
	if forced != 25 {
		t.Fatalf("DropP=1 burst=3: want 25 forced deliveries in 100, got %d", forced)
	}
	st := pl.Stats()
	if st.ForcedDeliveries != 25 || st.Drops != 75 {
		t.Fatalf("stats: %+v", st)
	}

	// Default burst bound applies when DropBurstMax is unset.
	pl = New(7, Spec{DropP: 1})
	run = 0
	for i := 0; i < 50; i++ {
		if pl.DropKick() {
			run++
			if run > DefaultDropBurst {
				t.Fatalf("default burst bound exceeded: %d", run)
			}
		} else {
			run = 0
		}
	}
}

// TestPlaneReplays: two planes with the same (seed, spec) make identical
// decisions; changing the seed changes them.
func TestPlaneReplays(t *testing.T) {
	spec, _ := Preset("heavy")
	a, b := New(5, spec), New(5, spec)
	diffSeed := New(6, spec)
	diverged := false
	for i := 0; i < 300; i++ {
		da, db := a.DeliverDelay(), b.DeliverDelay()
		if da != db || a.DropKick() != b.DropKick() ||
			a.ResponderStall() != b.ResponderStall() || a.AckDelay() != b.AckDelay() ||
			a.EvictOnFill() != b.EvictOnFill() || a.PCIDRecycle() != b.PCIDRecycle() ||
			a.PreemptDelay() != b.PreemptDelay() {
			t.Fatalf("same (seed,spec) diverged at step %d", i)
		}
		if da != diffSeed.DeliverDelay() {
			diverged = true
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if !diverged {
		t.Fatal("different seeds never diverged")
	}
}

// TestMagnitudeBounds: hit magnitudes stay within [1,Max].
func TestMagnitudeBounds(t *testing.T) {
	pl := New(11, Spec{DelayP: 1, DelayMax: 17})
	for i := 0; i < 500; i++ {
		d := pl.DeliverDelay()
		if d < 1 || d > 17 {
			t.Fatalf("delay %d outside [1,17]", d)
		}
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Delays: 1, Drops: 2, Stalls: 3, AckDelays: 4, Evictions: 5,
		Recycles: 6, Preempts: 7, ForcedDeliveries: 8}
	b := a
	b.Add(a)
	if b.Delays != 2 || b.ForcedDeliveries != 16 || b.Preempts != 14 {
		t.Fatalf("Add: %+v", b)
	}
}
