package ssa

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"shootdown/internal/sanitizer/lint"
)

// lockorder is a static lockdep: it computes, over the whole call graph,
// which lock classes can be held when each other class is acquired, and
// reports any acquisition-order cycle. The runtime lockdep (internal/
// sanitizer) only validates the orders the executed seeds happen to take;
// this pass covers every path the types admit, so an AB/BA inversion is
// caught before the first seed runs.
//
// Locks are values of type mm.RWSem, found by type identity. Classes are
// lockdep-style: a lock is classed by where it lives — the struct field
// or accessor that holds it ("mm.AddressSpace.MmapSem",
// "core.Flusher.ipiMtx") — not by instance, exactly as Linux classes by
// lock-site. The analysis is edge-sensitive where it matters: a TryDown*
// used as a branch condition acquires only on its success edge (the
// kernel's IRQ-responsive DownRead spins on `for !sem.TryDownRead()`),
// and deferred Up* calls release at function exit, keeping the lock held
// across the body as the source does.
//
// Summaries (acquires / releases / held-at-exit / inner ordered pairs,
// with parameter-relative lock references) propagate through the call
// graph by fixpoint; interface-method calls (kernel.Flusher) resolve to
// every module implementation. Function-typed values (callbacks passed to
// smp.CallMany) are not traced — the runtime lockdep covers those.

const lockTypePkg = modPath + "/internal/mm"
const lockTypeName = "RWSem"

func isLockType(t types.Type) bool { return isNamed(t, lockTypePkg, lockTypeName) }

// lockRef is a canonical lock reference: "c:<class>" for a concrete
// class, "p:<i>" for the enclosing function's i-th parameter, "r" for its
// receiver. Unknown references resolve to "" and are ignored.
type lockRef = string

func classRef(class string) lockRef { return "c:" + class }
func paramRef(i int) lockRef        { return fmt.Sprintf("p:%d", i) }

const recvRef lockRef = "r"

func isConcrete(r lockRef) bool { return strings.HasPrefix(r, "c:") }

func className(r lockRef) string { return strings.TrimPrefix(r, "c:") }

// lockPair is one observed ordering: from held while to acquired.
type lockPair struct {
	from, to lockRef
	// file/line locate the acquisition that produced the pair.
	file string
	line int
}

// lockSummary is a function's effect on lock state.
type lockSummary struct {
	acquires map[lockRef]sitePos // ever-acquired (first site wins)
	releases map[lockRef]bool
	heldExit map[lockRef]bool
	pairs    []lockPair // ordered pairs with possibly-relative refs
}

type sitePos struct {
	file string
	line int
}

func newLockSummary() *lockSummary {
	return &lockSummary{
		acquires: make(map[lockRef]sitePos),
		releases: make(map[lockRef]bool),
		heldExit: make(map[lockRef]bool),
	}
}

func (s *lockSummary) equal(o *lockSummary) bool {
	if len(s.acquires) != len(o.acquires) || len(s.releases) != len(o.releases) ||
		len(s.heldExit) != len(o.heldExit) || len(s.pairs) != len(o.pairs) {
		return false
	}
	for k := range s.acquires {
		if _, ok := o.acquires[k]; !ok {
			return false
		}
	}
	for k := range s.releases {
		if !o.releases[k] {
			return false
		}
	}
	for k := range s.heldExit {
		if !o.heldExit[k] {
			return false
		}
	}
	return true
}

// checkLockOrder runs the static lockdep.
func checkLockOrder(ctx *modCtx) ([]lint.Finding, []Suppression) {
	lo := &lockOrder{
		ctx:       ctx,
		summaries: make(map[*types.Func]*lockSummary),
		impls:     buildImplMap(ctx.pkgs),
	}
	funcs := allFuncs(ctx.pkgs)

	// Fixpoint over function summaries.
	for round := 0; ; round++ {
		changed := false
		for _, fd := range funcs {
			if isLockPrimitive(fd.Obj) {
				continue
			}
			sum := lo.analyzeFunc(fd)
			old := lo.summaries[fd.Obj]
			if old == nil || !old.equal(sum) {
				lo.summaries[fd.Obj] = sum
				changed = true
			}
		}
		if !changed || round > 50 {
			break
		}
	}

	// Function literals (task bodies, hooks) acquire their locks when they
	// run, not at their installation site; analyze each as its own unit
	// against the converged summaries.
	var litSums []*lockSummary
	for _, fd := range funcs {
		for _, lit := range funcLitsIn(fd.Decl.Body) {
			litSums = append(litSums, lo.analyzeBody(fd, lit.Body))
		}
	}

	// Collect concrete edges: every summary's pairs plus call-site
	// instantiations already folded in during analysis.
	type edge struct{ from, to string }
	edges := make(map[edge]sitePos)
	var allSums []*lockSummary
	for _, fd := range funcs {
		if sum := lo.summaries[fd.Obj]; sum != nil {
			allSums = append(allSums, sum)
		}
	}
	allSums = append(allSums, litSums...)
	for _, sum := range allSums {
		for _, p := range sum.pairs {
			if isConcrete(p.from) && isConcrete(p.to) {
				e := edge{className(p.from), className(p.to)}
				if old, ok := edges[e]; !ok || p.file < old.file || (p.file == old.file && p.line < old.line) {
					edges[e] = sitePos{p.file, p.line}
				}
			}
		}
	}

	// Cycle detection over the class graph.
	adj := make(map[string][]string)
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for k := range adj {
		sort.Strings(adj[k])
	}
	var nodes []string
	seenNode := make(map[string]bool)
	for e := range edges {
		for _, n := range []string{e.from, e.to} {
			if !seenNode[n] {
				seenNode[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Strings(nodes)

	var findings []lint.Finding
	reported := make(map[string]bool)
	for _, start := range nodes {
		cycle := findCycle(start, adj)
		if cycle == nil {
			continue
		}
		key := canonicalCycle(cycle)
		if reported[key] {
			continue
		}
		reported[key] = true
		site := edges[edge{cycle[0], cycle[1%len(cycle)]}]
		findings = append(findings, lint.Finding{
			File: site.file, Line: site.line, Analyzer: "lockorder",
			Msg: fmt.Sprintf("lock-acquisition-order cycle: %s -> %s: two tasks taking these locks in opposite orders can deadlock; pick one global order",
				strings.Join(cycle, " -> "), cycle[0]),
		})
	}
	return findings, nil
}

// findCycle returns a cycle through start, or nil.
func findCycle(start string, adj map[string][]string) []string {
	var path []string
	onPath := make(map[string]int)
	visited := make(map[string]bool)
	var dfs func(n string) []string
	dfs = func(n string) []string {
		if i, ok := onPath[n]; ok {
			if n == start {
				return append([]string{}, path[i:]...)
			}
			return nil
		}
		if visited[n] {
			return nil
		}
		visited[n] = true
		onPath[n] = len(path)
		path = append(path, n)
		for _, m := range adj[n] {
			if c := dfs(m); c != nil {
				return c
			}
		}
		path = path[:len(path)-1]
		delete(onPath, n)
		return nil
	}
	return dfs(start)
}

// canonicalCycle rotates a cycle to start at its least element, so the
// same cycle found from different start nodes dedupes.
func canonicalCycle(c []string) string {
	min := 0
	for i := range c {
		if c[i] < c[min] {
			min = i
		}
	}
	rot := append(append([]string{}, c[min:]...), c[:min]...)
	return strings.Join(rot, "->")
}

// isLockPrimitive reports whether fn is one of the RWSem methods whose
// body IS the lock implementation (modeled by hardcoded summaries).
func isLockPrimitive(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isLockType(sig.Recv().Type()) {
		return false
	}
	switch fn.Name() {
	case "DownRead", "DownWrite", "TryDownRead", "TryDownWrite", "UpRead", "UpWrite":
		return true
	}
	return false
}

type lockOrder struct {
	ctx       *modCtx
	summaries map[*types.Func]*lockSummary
	impls     map[*types.Func][]*types.Func
}

// lockAnalysis is the per-function held-set dataflow.
type lockAnalysis struct {
	lo   *lockOrder
	fd   FuncDecl
	info *types.Info
	sum  *lockSummary
	// locals maps local variables to the lock reference they alias.
	locals map[*types.Var]lockRef
}

type heldSet map[lockRef]bool

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k := range h {
		out[k] = true
	}
	return out
}

// analyzeFunc computes fd's lock summary under the current fixpoint.
func (lo *lockOrder) analyzeFunc(fd FuncDecl) *lockSummary {
	return lo.analyzeBody(fd, fd.Decl.Body)
}

// analyzeBody runs the held-set dataflow over one body — a declared
// function's, or a function literal's (a daemon Task.Fn closure acquires
// its locks when the task runs, not when the constructor builds it).
func (lo *lockOrder) analyzeBody(fd FuncDecl, body *ast.BlockStmt) *lockSummary {
	a := &lockAnalysis{lo: lo, fd: fd, info: fd.Pkg.Info, sum: newLockSummary(), locals: make(map[*types.Var]lockRef)}
	a.bindLocals(body)
	g := buildCFG(body)

	in := make(map[*cfgBlock]heldSet, len(g.blocks))
	in[g.entry] = make(heldSet)
	work := []*cfgBlock{g.entry}
	inWork := map[*cfgBlock]bool{g.entry: true}
	merge := func(dst *cfgBlock, st heldSet) {
		if in[dst] == nil {
			in[dst] = make(heldSet)
		}
		changed := false
		for k := range st {
			if !in[dst][k] {
				in[dst][k] = true
				changed = true
			}
		}
		if changed && !inWork[dst] {
			work = append(work, dst)
			inWork[dst] = true
		}
	}
	for len(work) > 0 {
		b := work[0]
		work, inWork[b] = work[1:], false
		st := in[b].clone()
		condIsTry := false
		for _, n := range b.nodes {
			// The trailing atomic condition is handled edge-sensitively.
			if b.cond != nil && n == ast.Node(b.cond) {
				continue
			}
			a.transfer(n, st)
		}
		if b.cond != nil {
			tState, fState := st.clone(), st
			if ref, write, ok := a.tryDownCond(b.cond); ok {
				condIsTry = true
				a.acquire(ref, write, b.cond.Pos(), tState)
			}
			if !condIsTry {
				a.transfer(b.cond, tState)
				a.transfer(b.cond, fState)
			}
			merge(b.tsucc, tState)
			merge(b.fsucc, fState)
			continue
		}
		for _, s := range b.succs {
			merge(s, st)
		}
	}

	exit := in[g.exit]
	if exit == nil {
		exit = make(heldSet)
	}
	exit = exit.clone()
	// Deferred calls run at exit, releasing what they release.
	for _, df := range g.defers {
		a.transfer(df.Call, exit)
	}
	for ref := range exit {
		a.sum.heldExit[ref] = true
	}
	return a.sum
}

// bindLocals pre-scans for `v := <lock expr>` aliases so later method
// calls on v resolve to the aliased class.
func (a *lockAnalysis) bindLocals(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, r := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			lv := identObj(a.info, as.Lhs[i])
			if lv == nil || !isLockType(lv.Type()) {
				continue
			}
			if ref := a.exprRef(r); ref != "" {
				a.locals[lv] = ref
			}
		}
		return true
	})
}

// exprRef resolves an expression of lock type to its canonical reference.
func (a *lockAnalysis) exprRef(e ast.Expr) lockRef {
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.Ident:
		obj, ok := a.info.ObjectOf(v).(*types.Var)
		if !ok {
			return ""
		}
		sig := a.fd.Obj.Type().(*types.Signature)
		if sig.Recv() == obj {
			return recvRef
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i) == obj {
				return paramRef(i)
			}
		}
		if ref, ok := a.locals[obj]; ok {
			return ref
		}
		return ""
	case *ast.SelectorExpr:
		sel, ok := a.info.Selections[v]
		if !ok {
			return ""
		}
		n := namedType(sel.Recv())
		if n == nil || n.Obj().Pkg() == nil {
			return ""
		}
		return classRef(n.Obj().Pkg().Name() + "." + n.Obj().Name() + "." + sel.Obj().Name())
	case *ast.CallExpr:
		// Accessor call returning the lock: class by the accessor.
		if fn := calleeFunc(a.info, v); fn != nil {
			sig := fn.Type().(*types.Signature)
			if sig.Recv() != nil {
				if n := namedType(sig.Recv().Type()); n != nil && n.Obj().Pkg() != nil {
					return classRef(n.Obj().Pkg().Name() + "." + n.Obj().Name() + "." + fn.Name())
				}
			}
		}
	}
	return ""
}

// tryDownCond matches a branch condition that is a bare TryDown* call.
func (a *lockAnalysis) tryDownCond(cond ast.Expr) (ref lockRef, write, ok bool) {
	call, isCall := ast.Unparen(cond).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	fn := calleeFunc(a.info, call)
	if fn == nil || !isLockPrimitive(fn) {
		return "", false, false
	}
	if fn.Name() != "TryDownRead" && fn.Name() != "TryDownWrite" {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	return a.exprRef(sel.X), fn.Name() == "TryDownWrite", true
}

// acquire registers an acquisition: ordering pairs against everything
// held, then the lock joins the held set.
func (a *lockAnalysis) acquire(ref lockRef, write bool, pos token.Pos, st heldSet) {
	_ = write
	if ref == "" {
		return
	}
	file, line := a.sitePos(pos)
	if _, ok := a.sum.acquires[ref]; !ok {
		a.sum.acquires[ref] = sitePos{file, line}
	}
	for h := range st {
		if h == ref {
			continue
		}
		a.sum.pairs = append(a.sum.pairs, lockPair{from: h, to: ref, file: file, line: line})
	}
	st[ref] = true
}

func (a *lockAnalysis) release(ref lockRef, st heldSet) {
	if ref == "" {
		return
	}
	a.sum.releases[ref] = true
	delete(st, ref)
}

func (a *lockAnalysis) sitePos(pos token.Pos) (string, int) {
	_, rel := a.fd.Pkg.FileOf(pos)
	if rel == "" {
		rel = a.fd.File
	}
	return rel, a.lo.ctx.m.Fset.Position(pos).Line
}

// transfer applies one node: lock primitives and call-site summary
// instantiation.
func (a *lockAnalysis) transfer(n ast.Node, st heldSet) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			// Nested literals run later, as their own units.
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		a.applyCall(call, st)
		return true
	})
}

// applyCall folds a callee's lock effects into the caller's state.
func (a *lockAnalysis) applyCall(call *ast.CallExpr, st heldSet) {
	fn := calleeFunc(a.info, call)
	if fn == nil {
		return
	}
	// Lock primitives.
	if isLockPrimitive(fn) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		ref := a.exprRef(sel.X)
		switch fn.Name() {
		case "DownRead", "DownWrite":
			a.acquire(ref, fn.Name() == "DownWrite", call.Pos(), st)
		case "TryDownRead", "TryDownWrite":
			// Not in condition position (handled there): conservatively
			// treat as acquired.
			a.acquire(ref, fn.Name() == "TryDownWrite", call.Pos(), st)
		case "UpRead", "UpWrite":
			a.release(ref, st)
		}
		return
	}

	// Callee summaries — direct, or the union over interface impls.
	callees := []*types.Func{fn}
	if impls := a.lo.impls[fn]; len(impls) > 0 {
		callees = impls
	}
	sub := a.substitution(call, fn)
	for _, callee := range callees {
		sum := a.lo.summaries[callee]
		if sum == nil {
			continue
		}
		// Releases first: unlock helpers drop the caller's lock.
		for ref := range sum.releases {
			if r := applySub(ref, sub); r != "" {
				delete(st, r)
			}
		}
		// Ordering: callee's transitive acquisitions against held locks.
		var acqs []lockRef
		for ref := range sum.acquires {
			acqs = append(acqs, ref)
		}
		sort.Strings(acqs)
		file, line := a.sitePos(call.Pos())
		for _, ref := range acqs {
			r := applySub(ref, sub)
			if r == "" {
				continue
			}
			site := sum.acquires[ref]
			if site.file == "" {
				site = sitePos{file, line}
			}
			if _, ok := a.sum.acquires[r]; !ok {
				a.sum.acquires[r] = site
			}
			for h := range st {
				if h != r {
					a.sum.pairs = append(a.sum.pairs, lockPair{from: h, to: r, file: site.file, line: site.line})
				}
			}
		}
		// Pairs discovered inside the callee, instantiated here.
		for _, p := range sum.pairs {
			from, to := applySub(p.from, sub), applySub(p.to, sub)
			if from == "" || to == "" || from == to {
				continue
			}
			a.sum.pairs = append(a.sum.pairs, lockPair{from: from, to: to, file: p.file, line: p.line})
		}
		// Locks the callee leaves held.
		for ref := range sum.heldExit {
			if r := applySub(ref, sub); r != "" {
				st[r] = true
			}
		}
	}
}

// substitution maps the callee's relative refs to the caller's refs.
func (a *lockAnalysis) substitution(call *ast.CallExpr, fn *types.Func) map[lockRef]lockRef {
	sub := make(map[lockRef]lockRef)
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			sub[recvRef] = a.exprRef(sel.X)
		}
	}
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		if isLockType(sig.Params().At(i).Type()) {
			sub[paramRef(i)] = a.exprRef(call.Args[i])
		}
	}
	return sub
}

// applySub resolves a callee-relative ref in the caller's frame.
func applySub(ref lockRef, sub map[lockRef]lockRef) lockRef {
	if isConcrete(ref) {
		return ref
	}
	return sub[ref]
}
