// Fixture: a restrictive mutator with the shootdown removed. The
// flushobligation analyzer must report exactly one finding — the returned
// FlushRange reaches the exit of brokenMunmap undischarged on the success
// path (the error path is legitimately flush-free).
package oblfix

import "shootdown/internal/mm"

func brokenMunmap(as *mm.AddressSpace, addr, length uint64) error {
	fr, err := as.Unmap(addr, length)
	if err != nil {
		return err
	}
	// The TLB shootdown that must cover fr is missing: any CPU with the
	// old PTE cached can still translate through it.
	_ = fr
	return nil
}
