// Fixture: a stale fabproof waiver. The marker below covers an append
// the fabproof tier never obligates (a plain slice, not a fabric ring),
// so nothing consumes it — stalemarker must report exactly one finding
// pointing at the marker line.
package fabmarkerfix

func boundedAlready(xs []int) []int {
	// bounded-by-design: retired waiver that nothing needs anymore.
	if len(xs) >= 4 {
		return xs
	}
	return append(xs, 0)
}
