// Fixture: a double discharge. The ipistate analyzer must report exactly
// one finding at the second WaitAll — the request set is already acked and
// discharged on every path reaching it, so the second wait consumes acks
// that were never re-armed (typestate discharged → waited is not an edge).
package ipifix2

import (
	"shootdown/internal/mach"
	"shootdown/internal/sim"
	"shootdown/internal/smp"
)

func doubleWait(l *smp.Layer, p *sim.Proc, from mach.CPU, targets mach.CPUMask, fn smp.HandlerFunc) {
	reqs := l.CallMany(p, from, targets, fn, nil, false, nil)
	l.WaitAll(p, from, reqs)
	l.WaitAll(p, from, reqs)
}
