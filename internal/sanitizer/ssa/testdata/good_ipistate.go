// Fixture: every legal shape of the shootdown request lifecycle. The
// ipistate analyzer must stay silent — the DFA covers the plain
// kick-then-wait path, the timeout → rekick → degrade-to-full recovery
// ladder, and both deferred-discharge edges (returning the requests and
// enqueueing them into a field) that transfer the obligation to a
// consumer.
package ipifixok

import (
	"shootdown/internal/mach"
	"shootdown/internal/sim"
	"shootdown/internal/smp"
)

func kickAndWait(l *smp.Layer, p *sim.Proc, from mach.CPU, targets mach.CPUMask, fn smp.HandlerFunc) {
	reqs := l.CallMany(p, from, targets, fn, nil, false, nil)
	l.WaitAll(p, from, reqs)
}

func recoveryLadder(l *smp.Layer, p *sim.Proc, from mach.CPU, targets mach.CPUMask, fn smp.HandlerFunc) {
	reqs := l.CallMany(p, from, targets, fn, nil, false, nil)
	// The recovery edges are legal only after the layer observed an ack
	// timeout on this path.
	l.NoteAckTimeout()
	l.Rekick(p, from, reqs)
	l.DegradeToFull(reqs)
	l.WaitAll(p, from, reqs)
}

// transferOut hands freshly kicked requests to the caller: the deferred
// discharge edge. The fixpoint also classifies transferOut itself as a
// CallMany wrapper, so callers inherit the discharge duty.
func transferOut(l *smp.Layer, p *sim.Proc, from mach.CPU, targets mach.CPUMask, fn smp.HandlerFunc) []*smp.Request {
	return l.CallMany(p, from, targets, fn, nil, false, nil)
}

// shootdownQueue is the enqueue-transfer shape the async fabric needs:
// the producer parks in-flight requests, the consumer discharges them.
type shootdownQueue struct {
	pending []*smp.Request
}

func (q *shootdownQueue) enqueue(l *smp.Layer, p *sim.Proc, from mach.CPU, targets mach.CPUMask, fn smp.HandlerFunc) {
	q.pending = l.CallMany(p, from, targets, fn, nil, false, nil)
}

func (q *shootdownQueue) drain(l *smp.Layer, p *sim.Proc, from mach.CPU) {
	l.WaitAll(p, from, q.pending)
	q.pending = nil
}
