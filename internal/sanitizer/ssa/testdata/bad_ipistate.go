// Fixture: a wait on a hand-built request set. The ipistate analyzer must
// report exactly one finding — the DFA edge new → waited skips kicked:
// nothing was ever sent through smp.CallMany, so WaitAll blocks on acks
// that can never arrive.
package ipifix

import (
	"shootdown/internal/mach"
	"shootdown/internal/sim"
	"shootdown/internal/smp"
)

func waitWithoutKick(l *smp.Layer, p *sim.Proc, from mach.CPU) {
	var reqs []*smp.Request
	l.WaitAll(p, from, reqs)
}
