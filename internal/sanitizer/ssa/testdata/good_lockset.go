// Fixture: the disciplined counterparts of bad_lockset.go — zero lockset
// findings, one consumed waiver.
//
//   - kickWithGuardedAck suppresses the early ack with the canonical
//     `early && !info.FreedTables` guard, so the ack-ordering discharge
//     succeeds even though the handler reads the ack-ordered location.
//   - The handler also reads the responder's own TLB generation through
//     kernel.CPU.LocalGen: the handler's CPU argument is the servicing
//     CPU, so the cpu-confined discipline stays proven (a positive test
//     of the may-happen-in-parallel self-CPU facts).
//   - scratchProbe touches a detector variable no registry entry
//     declares; the lock-free-by-design waiver below is the documented
//     escape hatch, and must surface as exactly one suppression.
package locksetfix

import (
	"fmt"

	"shootdown/internal/core"
	"shootdown/internal/kernel"
	"shootdown/internal/mach"
	"shootdown/internal/mm"
	"shootdown/internal/race"
	"shootdown/internal/sim"
	"shootdown/internal/smp"
)

func kickWithGuardedAck(l *smp.Layer, k *kernel.Kernel, d *race.Detector, p *sim.Proc,
	from mach.CPU, targets mach.CPUMask, as *mm.AddressSpace, info *core.FlushInfo, early bool) {
	earlyAck := early && !info.FreedTables
	rs := l.CallMany(p, from, targets, func(hp *sim.Proc, target mach.CPU, payload any) {
		fi := payload.(*core.FlushInfo)
		if fi.FreedTables {
			d.ReadVar(fmt.Sprintf("mm%d.pt-nodes", fi.AS.ID))
		}
		// The servicing CPU reading its own generation: confinement holds.
		_ = k.CPU(target).LocalGen(as)
	}, info, earlyAck, nil)
	l.WaitAll(p, from, rs)
}

func scratchProbe(d *race.Detector) {
	// lock-free-by-design: fixture-local scratch variable, not simulator state; no discipline to prove.
	d.WriteVar("fixture.scratch")
}
