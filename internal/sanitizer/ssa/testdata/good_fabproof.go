// Fixture: the waived counterpart of bad_fabproof.go — the same
// fabric-shaped struct and the same unprovable append, but under a
// documented "bounded-by-design:" marker: zero fabproof findings, one
// consumed suppression. The guarded append alongside it is provable on
// its own (the length check dominates the append), a positive test that
// the bound refinement works on fixture fabrics too.
package fabprooffix

type inval struct {
	Start, End   uint64
	GenLo, GenHi uint64
	Full         bool
}

type ringCPU struct {
	ring     []inval
	postSeq  uint64
	ackSeq   uint64
	flushAll bool
}

const ringSize = 8

func appendGuarded(rc *ringCPU, inv inval) {
	if len(rc.ring) >= ringSize {
		rc.flushAll = true
		return
	}
	rc.ring = append(rc.ring, inv)
}

func appendWaived(rc *ringCPU, inv inval) {
	// bounded-by-design: the single caller drains the ring before every post, so at most one entry is ever in flight; that protocol invariant is outside the numeric tier's reach.
	rc.ring = append(rc.ring, inv)
}
