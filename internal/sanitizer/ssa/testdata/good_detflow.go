// Fixture: the sanctioned shapes around nondeterminism sources. The
// detflow analyzer must stay silent — map iteration order is sanitized by
// sorting before anything derived from it reaches a digest, and event
// timestamps come from constants, not the wall clock.
package detfixok

import (
	"sort"

	"shootdown/internal/mach"
	"shootdown/internal/mm"
	"shootdown/internal/sim"
	"shootdown/internal/workload"
)

func sortedDigest(byCPU map[mach.CPU]*mm.AddressSpace) string {
	ids := make([]int, 0, len(byCPU))
	for cpu := range byCPU {
		ids = append(ids, int(cpu))
	}
	// Collect-then-sort is the canonical fix: after sort.Ints the slice is
	// order-stable no matter how the map iterated.
	sort.Ints(ids)
	spaces := make([]*mm.AddressSpace, 0, len(ids))
	for _, id := range ids {
		spaces = append(spaces, byCPU[mach.CPU(id)])
	}
	return workload.StateDigest(spaces)
}

func deterministicDelay(p *sim.Proc) {
	p.Delay(100)
}
