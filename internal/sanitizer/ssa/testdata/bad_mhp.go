// Fixture: a blocking call inside an IPI handler. The mhp analyzer must
// report exactly one finding in this file: the closure registered
// through smp.CallMany runs in the responder's IRQ dispatch, where
// taking mmap_sem (kernel.CPU.DownRead parks the proc) would deadlock
// the shootdown — the initiator is spinning on this very CPU's ack.
package mhpfix

import (
	"shootdown/internal/kernel"
	"shootdown/internal/mach"
	"shootdown/internal/mm"
	"shootdown/internal/sim"
	"shootdown/internal/smp"
)

func sleepyHandler(l *smp.Layer, k *kernel.Kernel, p *sim.Proc, from mach.CPU,
	targets mach.CPUMask, sem *mm.RWSem, payload any) {
	rs := l.CallMany(p, from, targets, func(hp *sim.Proc, target mach.CPU, pl any) {
		rc := k.CPU(target)
		rc.DownRead(hp, sem)
		defer sem.UpRead(hp)
	}, payload, false, nil)
	l.WaitAll(p, from, rs)
}
