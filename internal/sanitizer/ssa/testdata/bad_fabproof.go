// Fixture: an unbounded ring append the fabproof tier must report as
// exactly one finding. The struct below is fabric-shaped (ring slice,
// posted/acked sequence counters, full-flush flag), so discovery picks
// it up, and the append never consults the ring's length — there is no
// capacity check and no full-flush collapse, so the pre-append length
// bound is unprovable and the ring can grow without limit.
package fabprooffix

type inval struct {
	Start, End   uint64
	GenLo, GenHi uint64
	Full         bool
}

type ringCPU struct {
	ring     []inval
	postSeq  uint64
	ackSeq   uint64
	flushAll bool
}

func appendUnchecked(rc *ringCPU, inv inval) {
	rc.ring = append(rc.ring, inv)
}
