// Fixture: wall-clock nondeterminism reaching a state digest. The detflow
// analyzer must report exactly one finding at the StateDigest call — the
// slice bound derives from time.Now, so two replays of the same seed can
// digest different prefixes and the byte-identical-worlds guarantee dies.
package detfix

import (
	"time"

	"shootdown/internal/mm"
	"shootdown/internal/workload"
)

func skewedDigest(spaces []*mm.AddressSpace) string {
	n := int(time.Now().UnixNano()) % len(spaces)
	return workload.StateDigest(spaces[:n])
}
