// Fixture: a classic AB/BA lock-order inversion between two mm.RWSem
// classes. The lockorder analyzer must report exactly one cycle.
package lockfix

import (
	"shootdown/internal/mm"
	"shootdown/internal/sim"
)

type twoLocks struct {
	a, b *mm.RWSem
}

func (t *twoLocks) abPath(p *sim.Proc) {
	t.a.DownWrite(p)
	t.b.DownWrite(p)
	t.b.UpWrite(p)
	t.a.UpWrite(p)
}

func (t *twoLocks) baPath(p *sim.Proc) {
	t.b.DownRead(p)
	t.a.DownRead(p)
	t.a.UpRead(p)
	t.b.UpRead(p)
}
