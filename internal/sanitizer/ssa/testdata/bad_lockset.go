// Fixture: an ack-ordering break the lockset analyzer must report as
// exactly one finding. The kicked handler reads the freed page-table
// location ("mm%d.pt-nodes", ack-ordered in the race registry), but the
// early-ack flag passed to CallMany is an arbitrary caller-supplied
// boolean — nothing proves it is off while FlushInfo.FreedTables is set,
// so a responder's read no longer happens-before the initiator's
// reclaim. Unlike the config-seeded BrokenEarlyAck variant, this unit
// never consults the seed knob, so the violation is a real finding, not
// a witness.
package locksetfix

import (
	"fmt"

	"shootdown/internal/core"
	"shootdown/internal/mach"
	"shootdown/internal/race"
	"shootdown/internal/sim"
	"shootdown/internal/smp"
)

func kickWithUnprovenAck(l *smp.Layer, d *race.Detector, p *sim.Proc, from mach.CPU,
	targets mach.CPUMask, info *core.FlushInfo, wantEarly bool) {
	rs := l.CallMany(p, from, targets, func(hp *sim.Proc, target mach.CPU, payload any) {
		fi := payload.(*core.FlushInfo)
		if fi.FreedTables {
			d.ReadVar(fmt.Sprintf("mm%d.pt-nodes", fi.AS.ID))
		}
	}, info, wantEarly, nil)
	l.WaitAll(p, from, rs)
}
