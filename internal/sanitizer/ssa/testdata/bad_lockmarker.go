// Fixture: a stale lockset waiver. The marker below covers an access the
// analyzers prove disciplined on their own (there is no detector call at
// all), so nothing consumes it — stalemarker must report exactly one
// finding pointing at the marker line.
package lockmarkerfix

func provenWithoutWaiver(xs []int) int {
	// lock-free-by-design: retired waiver that nothing needs anymore.
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
