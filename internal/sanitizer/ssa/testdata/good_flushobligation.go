// Fixture: every sanctioned way of meeting a flush obligation. The
// flushobligation analyzer must report nothing here, and must record
// exactly one suppression (the obligation-transferred marker).
package oblgood

import (
	"shootdown/internal/kernel"
	"shootdown/internal/mm"
)

// okMunmap discharges through the Flusher on the success path; the error
// path owes nothing.
func okMunmap(ctx *kernel.Ctx, as *mm.AddressSpace, addr, length uint64) error {
	fr, err := as.Unmap(addr, length)
	if err != nil {
		return err
	}
	ctx.K.Flusher().FlushAfter(ctx, as, fr)
	return nil
}

// transferUp returns the obligation to its caller, where the analyzer
// births it again — the contract follows the value up the call graph.
func transferUp(as *mm.AddressSpace, addr, length uint64) (mm.FlushRange, error) {
	return as.Unmap(addr, length)
}

// emptyGuard releases the obligation on the fr.Empty() edge, mirroring
// syscalls.Fork.
func emptyGuard(ctx *kernel.Ctx, as *mm.AddressSpace, addr, length uint64) {
	fr, err := as.Unmap(addr, length)
	if err != nil {
		return
	}
	if fr.Empty() {
		return
	}
	ctx.K.Flusher().FlushAfter(ctx, as, fr)
}

// markerTransfer documents that something outside the analyzable call
// graph owns the flush; the analyzer records a suppression instead of a
// finding.
func markerTransfer(as *mm.AddressSpace, addr, length uint64) {
	// obligation-transferred: the batch driver full-flushes every TLB after each round
	fr, err := as.Unmap(addr, length)
	_, _ = fr, err
}
