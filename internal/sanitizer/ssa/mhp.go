package ssa

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"shootdown/internal/sanitizer/lint"
)

// mhp is the whole-program may-happen-in-parallel analysis. The simulator
// multiplexes logical concurrency over engine procs, so "what can run in
// parallel with what" is decided by a small set of spawn edges, all
// statically visible:
//
//   - sim.Engine.Go registers a proc body (CPU run loops, workload
//     drivers, daemon collectors);
//   - kernel.Task{Fn: ...} bodies run when a run loop dequeues the task;
//   - smp.Layer.CallMany registers an IPI handler that runs on each
//     target CPU's IRQ dispatch (the send→HandleIPI edge; the matching
//     join is the ack wait);
//   - kernel.CPU.QueueLazyWork / QueueBatchedFlush enqueue deferred
//     closures the owning CPU drains at its next kernel entry;
//   - sched.Collect / sched.Map fan work out over the host worker pool.
//
// mhp assigns every unit the set of execution contexts it is reachable
// from (propagated over the call graph with interface fan-out) and, on
// top of that, a CPU-confinement proof: for receivers and parameters of
// kernel.CPU type, whether the value is provably the CPU whose execution
// context the code is running in ("self"). Both facts feed the lockset
// analyzer's discharge proofs; mhp's own finding is blocking-in-IRQ
// context (a shootdown responder must never sleep, or the ack-timeout
// recovery ladder becomes the common path).
//
// The self-CPU proof is an optimistic call-site-closed-world fixpoint:
// every CPU-typed receiver/parameter starts "self" and is demoted by any
// call site that cannot justify it. The positive witnesses are:
//
//  1. a CPU method registered via Engine.Go runs on the proc that *is*
//     that CPU's execution context (the run loop), so its receiver is
//     self; any other escape of a CPU method value demotes it;
//  2. an IPI handler's mach.CPU parameter is the servicing CPU
//     (HandleIPI passes its own ID), so Kernel.CPU(thatID) is self;
//  3. kernel.Ctx.CPU reads are self because the only Ctx composite
//     literal in the module binds CPU to the run loop's receiver, and
//     Task bodies run inline on the dequeuing loop's proc;
//  4. a closure enqueued via rc.QueueLazyWork/rc.QueueBatchedFlush is
//     drained by rc's own kernel entry, so the captured rc is self
//     inside the closure.
//
// Witnesses 1–4 lean on kernel/smp dispatch behavior the dynamic race
// model validates every run (task hand-off and IPI hb edges), which is
// exactly the cross-validation bargain: the dynamic tier certifies the
// trusted base on sampled schedules, the static tier extends it to all.

type mhpCtx uint8

const (
	cxProc     mhpCtx = 1 << iota // an Engine.Go proc body
	cxTask                        // a kernel.Task body (runs on a run loop)
	cxIRQ                         // an IPI-handler registration (CallMany fn)
	cxDeferred                    // a lazy/batched deferred-flush closure
	cxPool                        // a sched worker-pool closure
)

const kernelPkg = modPath + "/internal/kernel"
const simPkg = modPath + "/internal/sim"
const schedPkg = modPath + "/internal/sched"

type mhpInfo struct {
	ctx  *modCtx
	prog *Program

	// ctxOf holds the context bitsets after propagation.
	ctxOf map[*Func]mhpCtx
	// selfRecv / selfParam / selfIDParam are the CPU-confinement facts:
	// receiver (or *kernel.CPU / mach.CPU parameter i) is provably the
	// executing CPU.
	selfRecv    map[*Func]bool
	selfParam   map[*Func]map[int]bool
	selfIDParam map[*Func]map[int]bool
	// selfFree marks captured variables proven self inside a unit
	// (witness 4: the queue-deferral receiver).
	selfFree map[*Func]map[*types.Var]bool
	// ctxCPUSelf is witness 3: every kernel.Ctx literal binds a self CPU.
	ctxCPUSelf bool
	// handlerRoots are the units registered as CallMany handlers;
	// handlerReach is everything reachable from them.
	handlerRoots map[*Func]bool
	handlerReach map[*Func]bool

	findings []lint.Finding
	reported map[string]bool
}

// buildMHP computes (and memoizes on ctx) the whole-program MHP facts.
func (ctx *modCtx) buildMHP() *mhpInfo {
	if ctx.mhp != nil {
		return ctx.mhp
	}
	m := &mhpInfo{
		ctx: ctx, prog: ctx.program(),
		ctxOf:        make(map[*Func]mhpCtx),
		selfRecv:     make(map[*Func]bool),
		selfParam:    make(map[*Func]map[int]bool),
		selfIDParam:  make(map[*Func]map[int]bool),
		selfFree:     make(map[*Func]map[*types.Var]bool),
		handlerRoots: make(map[*Func]bool),
		handlerReach: make(map[*Func]bool),
		reported:     make(map[string]bool),
	}
	m.initOptimistic()
	m.collectRoots()
	m.propagateContexts()
	m.solveSelf()
	m.handlerReach = m.reach(m.handlerRoots)
	ctx.mhp = m
	return m
}

// checkMHP reports blocking calls reachable in IRQ-handler context.
func checkMHP(ctx *modCtx) ([]lint.Finding, []Suppression) {
	m := ctx.buildMHP()
	visited := 0
	m.prog.eachUnit(func(f *Func) {
		if f.Lit == nil {
			visited++
		}
		if f.Decl.Pkg.Path == smpPkg {
			return // trusted base: HandleIPI's own dispatch
		}
		if m.ctxOf[f]&cxIRQ == 0 {
			return
		}
		for _, b := range f.Blocks {
			for _, call := range b.Calls {
				if name, ok := blockingPrimitive(call.Callee); ok {
					m.report(f, call.Pos, "mhp",
						"blocking call %s in IPI-handler context: a shootdown responder must not sleep while servicing the IRQ (the initiator is spinning on this ack)", name)
				}
			}
		}
	})
	ctx.visited["mhp"] = visited
	sortFindings(m.findings)
	return m.findings, nil
}

// blockingPrimitive classifies callees that park the calling proc.
func blockingPrimitive(fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	switch {
	case isNamed(recv, kernelPkg, "CPU"):
		switch fn.Name() {
		case "WaitRequests", "WaitFirstRequest", "DownRead", "DownWrite", "KernelRun", "UserRun":
			return "kernel.CPU." + fn.Name(), true
		}
	case isNamed(recv, kernelPkg, "Task"):
		if fn.Name() == "Join" {
			return "kernel.Task.Join", true
		}
	case isNamed(recv, smpPkg, "Layer"):
		switch fn.Name() {
		case "WaitAll", "WaitFirst":
			return "smp.Layer." + fn.Name(), true
		}
	case isNamed(recv, simPkg, "Cond"):
		switch fn.Name() {
		case "Wait", "WaitTimeout":
			return "sim.Cond." + fn.Name(), true
		}
	}
	return "", false
}

// initOptimistic seeds every CPU-typed receiver/parameter as self.
func (m *mhpInfo) initOptimistic() {
	m.prog.eachUnit(func(f *Func) {
		if f.Sig == nil {
			return
		}
		if r := f.Sig.Recv(); r != nil && isCPUPtr(r.Type()) {
			m.selfRecv[f] = true
		}
		for i := 0; i < f.Sig.Params().Len(); i++ {
			pt := f.Sig.Params().At(i).Type()
			switch {
			case isCPUPtr(pt):
				if m.selfParam[f] == nil {
					m.selfParam[f] = make(map[int]bool)
				}
				m.selfParam[f][i] = true
			case isCPUID(pt):
				if m.selfIDParam[f] == nil {
					m.selfIDParam[f] = make(map[int]bool)
				}
				m.selfIDParam[f][i] = true
			}
		}
	})
}

func isCPUPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && isNamed(p.Elem(), kernelPkg, "CPU")
}

func isCPUID(t types.Type) bool {
	return isNamed(t, modPath+"/internal/mach", "CPU")
}

// unitOfFuncValue resolves a value used in function position (closure,
// method value, or function identifier) to its unit, if it is one the
// module declares.
func (m *mhpInfo) unitOfFuncValue(f *Func, v *Value) *Func {
	v = chase(v)
	if v == nil {
		return nil
	}
	if v.Kind == VClosure {
		return v.Unit
	}
	var obj types.Object
	switch e := ast.Unparen(exprOf(v)).(type) {
	case *ast.SelectorExpr:
		obj = f.info.ObjectOf(e.Sel)
	case *ast.Ident:
		obj = f.info.ObjectOf(e)
	}
	if fn, ok := obj.(*types.Func); ok {
		return m.prog.ByObj[fn]
	}
	return nil
}

func exprOf(v *Value) ast.Expr {
	if v == nil {
		return nil
	}
	return v.Expr
}

// collectRoots scans every unit for spawn-edge registrations, assigning
// root contexts, self seeds, and method-value escape demotions.
func (m *mhpInfo) collectRoots() {
	// blessed marks CPU-method values consumed by an Engine.Go
	// registration (witness 1); any other method-value escape of a CPU
	// method demotes its receiver, since the eventual call is invisible.
	blessed := make(map[*Value]bool)

	m.prog.eachUnit(func(f *Func) {
		for _, b := range f.Blocks {
			for _, call := range b.Calls {
				m.rootsFromCall(f, call, blessed)
			}
		}
		// kernel.Task composite literals: the Fn element is a task body.
		for _, v := range f.Values() {
			if v.Kind == VComposite && isNamed(v.Type, kernelPkg, "Task") {
				if fn := m.taskFnOf(f, v); fn != nil {
					m.ctxOf[fn] |= cxTask
				}
			}
		}
		// Stores to a Task's Fn field register a body too.
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Kind != IStore || in.Addr == nil {
					continue
				}
				if fr := chase(in.Addr); fr != nil && fr.Kind == VFieldRead &&
					fr.Obj != nil && fr.Obj.Name() == "Fn" && ownerIs(fr, kernelPkg, "Task") {
					if u := m.unitOfFuncValue(f, in.Val); u != nil {
						m.ctxOf[u] |= cxTask
					}
				}
			}
		}
	})

	// Any CPU-method value that escaped without an Engine.Go blessing
	// demotes its receiver's self fact.
	m.prog.eachUnit(func(f *Func) {
		for _, v := range f.Values() {
			if v.Kind != VOp || blessed[v] {
				continue
			}
			sel, ok := exprOf(v).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			s, ok := f.info.Selections[sel]
			if !ok || s.Kind() != types.MethodVal {
				continue
			}
			fn, _ := s.Obj().(*types.Func)
			if fn == nil {
				continue
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || sig.Recv() == nil || !isCPUPtr(sig.Recv().Type()) {
				continue
			}
			if u := m.prog.ByObj[fn]; u != nil {
				m.selfRecv[u] = false
			}
		}
	})
}

// rootsFromCall handles one call site's spawn-edge registrations.
func (m *mhpInfo) rootsFromCall(f *Func, call *Value, blessed map[*Value]bool) {
	fn := call.Callee
	if fn == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	recv := types.Type(nil)
	if sig != nil && sig.Recv() != nil {
		recv = sig.Recv().Type()
	}
	switch {
	case recv != nil && isNamed(recv, simPkg, "Engine") && fn.Name() == "Go" && len(call.Args) >= 2:
		arg := chase(call.Args[1])
		if u := m.unitOfFuncValue(f, arg); u != nil {
			m.ctxOf[u] |= cxProc
			// Witness 1: a CPU method registered as a proc body runs on
			// its own CPU's execution context.
			if arg != nil && arg.Kind == VOp {
				blessed[arg] = true
			}
		}
	case isCallMany(fn) && len(call.Args) >= 6:
		if u := m.unitOfFuncValue(f, call.Args[3]); u != nil {
			m.ctxOf[u] |= cxIRQ
			m.handlerRoots[u] = true
			// Witness 2: the handler's mach.CPU parameter is the
			// servicing CPU's ID. This is a seed, not a grant: a direct
			// call of the same function with a non-self ID demotes it.
			if u.Sig != nil && u.Sig.Params().Len() >= 2 && isCPUID(u.Sig.Params().At(1).Type()) {
				if m.selfIDParam[u] == nil {
					m.selfIDParam[u] = make(map[int]bool)
				}
				m.selfIDParam[u][1] = true
			}
		}
	case recv != nil && isNamed(recv, kernelPkg, "CPU") &&
		(fn.Name() == "QueueLazyWork" || fn.Name() == "QueueBatchedFlush") && len(call.Args) >= 1:
		u := m.unitOfFuncValue(f, call.Args[0])
		if u == nil {
			return
		}
		m.ctxOf[u] |= cxDeferred
		// Witness 4: the deferred closure is drained by the receiver
		// CPU's own kernel entry, so the captured receiver is self
		// inside the closure.
		if ce, ok := exprOf(call).(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(ce.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if obj, ok := f.info.ObjectOf(id).(*types.Var); ok && isCPUPtr(obj.Type()) {
						if m.selfFree[u] == nil {
							m.selfFree[u] = make(map[*types.Var]bool)
						}
						m.selfFree[u][obj] = true
					}
				}
			}
		}
	case fn.Pkg() != nil && fn.Pkg().Path() == schedPkg &&
		(fn.Name() == "Collect" || fn.Name() == "Map"):
		for _, a := range call.Args {
			if u := m.unitOfFuncValue(f, a); u != nil {
				m.ctxOf[u] |= cxPool
			}
		}
	}
}

// taskFnOf extracts the unit bound to a Task composite's Fn element.
func (m *mhpInfo) taskFnOf(f *Func, comp *Value) *Func {
	cl, ok := exprOf(comp).(*ast.CompositeLit)
	if !ok {
		return nil
	}
	for i, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Fn" || i >= len(comp.Args) {
			continue
		}
		return m.unitOfFuncValue(f, comp.Args[i])
	}
	return nil
}

func ownerIs(fr *Value, pkgPath, structName string) bool {
	if fr.Obj == nil || fr.Obj.Pkg() == nil || fr.Obj.Pkg().Path() != pkgPath {
		return false
	}
	base := chase(fr.Base)
	if base == nil || base.Type == nil {
		return false
	}
	t := base.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	return isNamed(t, pkgPath, structName)
}

// propagateContexts floods root contexts over the call graph (and into
// nested literals, which run at most in their parent's contexts unless
// independently registered).
func (m *mhpInfo) propagateContexts() {
	for round := 0; round < 30; round++ {
		changed := false
		m.prog.eachUnit(func(f *Func) {
			bits := m.ctxOf[f]
			// A literal inherits its parent's contexts: unless a spawn
			// edge re-registers it, it runs where it was created.
			for _, lit := range f.Lits {
				if m.ctxOf[lit]|bits != m.ctxOf[lit] {
					m.ctxOf[lit] |= bits
					changed = true
				}
			}
			if bits == 0 {
				return
			}
			for _, b := range f.Blocks {
				for _, call := range b.Calls {
					for _, t := range m.prog.calleesOf(call) {
						cf := m.prog.ByObj[t]
						if cf == nil {
							continue
						}
						if m.ctxOf[cf]|bits != m.ctxOf[cf] {
							m.ctxOf[cf] |= bits
							changed = true
						}
					}
				}
			}
		})
		if !changed {
			return
		}
	}
}

// solveSelf runs the demotion fixpoint for the CPU-confinement facts,
// including the Ctx.CPU witness (3), which itself depends on them.
func (m *mhpInfo) solveSelf() {
	m.ctxCPUSelf = true
	for round := 0; round < 30; round++ {
		changed := false
		// Witness 3: every kernel.Ctx composite must bind a self CPU.
		ctxSelf := m.ctxLiteralsSelf()
		if ctxSelf != m.ctxCPUSelf {
			m.ctxCPUSelf = ctxSelf
			changed = true
		}
		m.prog.eachUnit(func(f *Func) {
			for _, b := range f.Blocks {
				for _, call := range b.Calls {
					for _, t := range m.prog.calleesOf(call) {
						cf := m.prog.ByObj[t]
						if cf == nil || cf.Sig == nil {
							continue
						}
						if r := cf.Sig.Recv(); r != nil && isCPUPtr(r.Type()) && m.selfRecv[cf] {
							if !m.isSelfCPU(f, call.Base, nil) {
								m.selfRecv[cf] = false
								changed = true
							}
						}
						for i := 0; i < cf.Sig.Params().Len() && i < len(call.Args); i++ {
							pt := cf.Sig.Params().At(i).Type()
							switch {
							case isCPUPtr(pt) && m.selfParam[cf][i]:
								if !m.isSelfCPU(f, call.Args[i], nil) {
									m.selfParam[cf][i] = false
									changed = true
								}
							case isCPUID(pt) && m.selfIDParam[cf][i]:
								if !m.isSelfCPUID(f, call.Args[i], nil) {
									m.selfIDParam[cf][i] = false
									changed = true
								}
							}
						}
					}
				}
			}
		})
		if !changed {
			return
		}
	}
}

// ctxLiteralsSelf checks witness 3 over every Ctx literal and Ctx.CPU
// store in the module.
func (m *mhpInfo) ctxLiteralsSelf() bool {
	ok, found := true, false
	m.prog.eachUnit(func(f *Func) {
		for _, v := range f.Values() {
			if v.Kind != VComposite || !isNamed(v.Type, kernelPkg, "Ctx") {
				continue
			}
			found = true
			cl, isCl := exprOf(v).(*ast.CompositeLit)
			if !isCl {
				ok = false
				continue
			}
			for i, el := range cl.Elts {
				kv, isKV := el.(*ast.KeyValueExpr)
				if !isKV {
					ok = false // positional Ctx literal: not worth proving
					continue
				}
				key, isID := kv.Key.(*ast.Ident)
				if !isID || key.Name != "CPU" || i >= len(v.Args) {
					continue
				}
				if !m.isSelfCPU(f, v.Args[i], nil) {
					ok = false
				}
			}
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Kind != IStore || in.Addr == nil {
					continue
				}
				if fr := chase(in.Addr); fr != nil && fr.Kind == VFieldRead &&
					fr.Obj != nil && fr.Obj.Name() == "CPU" && ownerIs(fr, kernelPkg, "Ctx") {
					if !m.isSelfCPU(f, in.Val, nil) {
						ok = false
					}
				}
			}
		}
	})
	return ok && found
}

// isSelfCPU reports whether v is provably the executing CPU in unit f.
func (m *mhpInfo) isSelfCPU(f *Func, v *Value, visiting map[*Value]bool) bool {
	v = chase(v)
	if v == nil {
		return false
	}
	if visiting[v] {
		return true // optimistic on phi cycles; demotion re-runs to fixpoint
	}
	switch v.Kind {
	case VRecv:
		return m.selfRecv[f]
	case VParam:
		return m.selfParam[f][v.ResIdx]
	case VFree:
		return v.Obj != nil && m.selfFree[f][v.Obj]
	case VFieldRead:
		// Witness 3: ctx.CPU.
		return m.ctxCPUSelf && v.Obj != nil && v.Obj.Name() == "CPU" && ownerIs(v, kernelPkg, "Ctx")
	case VCall:
		// Kernel.CPU(selfID) is self (witness 2 composition).
		if v.Callee != nil && v.Callee.Name() == "CPU" {
			sig, _ := v.Callee.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil && isNamed(sig.Recv().Type(), kernelPkg, "Kernel") && len(v.Args) >= 1 {
				if visiting == nil {
					visiting = make(map[*Value]bool)
				}
				visiting[v] = true
				return m.isSelfCPUID(f, v.Args[0], visiting)
			}
		}
		return false
	case VPhi:
		if visiting == nil {
			visiting = make(map[*Value]bool)
		}
		visiting[v] = true
		for _, a := range v.Args {
			if !m.isSelfCPU(f, a, visiting) {
				return false
			}
		}
		return true
	}
	return false
}

// isSelfCPUID reports whether v is provably the executing CPU's ID.
func (m *mhpInfo) isSelfCPUID(f *Func, v *Value, visiting map[*Value]bool) bool {
	v = chase(v)
	if v == nil {
		return false
	}
	if visiting[v] {
		return true
	}
	switch v.Kind {
	case VParam:
		return m.selfIDParam[f][v.ResIdx]
	case VFieldRead:
		if v.Obj != nil && v.Obj.Name() == "ID" && ownerIs(v, kernelPkg, "CPU") {
			if visiting == nil {
				visiting = make(map[*Value]bool)
			}
			visiting[v] = true
			return m.isSelfCPU(f, v.Base, visiting)
		}
		return false
	case VPhi:
		if visiting == nil {
			visiting = make(map[*Value]bool)
		}
		visiting[v] = true
		for _, a := range v.Args {
			if !m.isSelfCPUID(f, a, visiting) {
				return false
			}
		}
		return true
	}
	return false
}

// reach BFSes the call graph (and literal nesting) from roots.
func (m *mhpInfo) reach(roots map[*Func]bool) map[*Func]bool {
	out := make(map[*Func]bool, len(roots))
	var work []*Func
	for f := range roots {
		out[f] = true
		work = append(work, f)
	}
	for len(work) > 0 {
		f := work[0]
		work = work[1:]
		for _, lit := range f.Lits {
			if !out[lit] {
				out[lit] = true
				work = append(work, lit)
			}
		}
		for _, b := range f.Blocks {
			for _, call := range b.Calls {
				for _, t := range m.prog.calleesOf(call) {
					cf := m.prog.ByObj[t]
					if cf != nil && !out[cf] {
						out[cf] = true
						work = append(work, cf)
					}
				}
			}
		}
	}
	return out
}

func (m *mhpInfo) report(f *Func, pos token.Pos, analyzer, format string, args ...any) {
	file, line := m.ctx.posLine(f.Decl, pos)
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%s:%d:%s", file, line, msg)
	if m.reported[key] {
		return
	}
	m.reported[key] = true
	m.findings = append(m.findings, lint.Finding{
		File: file, Line: line, Analyzer: analyzer, Msg: msg,
	})
}
