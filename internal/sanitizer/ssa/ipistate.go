package ssa

import (
	"fmt"
	"go/token"
	"go/types"

	"shootdown/internal/sanitizer/lint"
)

// ipistate is the typestate checker for the shootdown request lifecycle.
// Every smp.Request (and request slice) must follow the DFA
//
//	new → kicked → waited → (acked |
//	        timeout → rekick{≤MaxKickRetries} → degrade-to-full) → discharged
//
// on every path through a protocol user:
//
//   - wait-before-kick: waiting on a hand-built request (composite literal
//     or zero value) that was never kicked through CallMany;
//   - double-discharge: waiting again on a request set that is already
//     discharged on every incoming path;
//   - rekick/degrade without timeout: Rekick and DegradeToFull are
//     recovery edges, legal only after NoteAckTimeout observed an ack
//     timeout on the same path;
//   - leak: a request set born from CallMany that reaches a normal exit
//     still in flight — neither discharged, returned, nor enqueued.
//
// Deferred-discharge edges transfer the obligation instead of requiring a
// local wait: returning the requests, storing them into a struct field or
// global (enqueue-transfer), or sending them on a channel all hand the
// discharge duty to the consumer. This is exactly the lifecycle shape the
// ROADMAP-1 queue-based async fabric needs, so it lands checker-first.
//
// Package smp itself is exempt: it implements the Request internals (ack
// delivery, queue drain), so its bodies are the trusted base the DFA is
// defined against — the same stance lockorder takes for RWSem primitives.
// Kernel's WaitRequests recovery loop is NOT exempt: the checker proves
// its NoteAckTimeout-dominates-Rekick discipline like any other user's.
//
// Panic paths release obligations: a crashing run owes no acks.

const smpPkg = modPath + "/internal/smp"

// isRequestType reports whether t carries smp.Request values (directly or
// through pointers, slices and arrays).
func isRequestType(t types.Type) bool {
	switch v := t.(type) {
	case *types.Pointer:
		return isRequestType(v.Elem())
	case *types.Slice:
		return isRequestType(v.Elem())
	case *types.Array:
		return isRequestType(v.Elem())
	case *types.Named:
		return isNamed(v, smpPkg, "Request")
	}
	return false
}

// ipiBits is the per-origin abstract state. Live/unkicked/moved are
// may-bits (joined with OR); discharged/timeout are must-bits (joined
// with AND), so double-discharge and recovery checks only fire when the
// property holds on every incoming path.
type ipiBits uint8

const (
	ipiLive ipiBits = 1 << iota
	ipiDisch
	ipiUnkicked
	ipiTimeout
	ipiMoved
)

type ipiState map[*Value]ipiBits

func (s ipiState) clone() ipiState {
	c := make(ipiState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// joinIPI merges b into a (a is mutated): may-bits OR, must-bits AND.
// Origins absent from one side keep the other side's state unchanged
// (absent means "not born on that path").
func joinIPI(a, b ipiState) ipiState {
	for o, bb := range b {
		ab, ok := a[o]
		if !ok {
			a[o] = bb
			continue
		}
		may := (ab | bb) & (ipiLive | ipiUnkicked | ipiMoved)
		must := ab & bb & (ipiDisch | ipiTimeout)
		a[o] = may | must
	}
	return a
}

func equalIPI(a, b ipiState) bool {
	if len(a) != len(b) {
		return false
	}
	for o, v := range a {
		if b[o] != v {
			return false
		}
	}
	return true
}

// ipiEffect classifies what a callee does to a request-typed argument.
type ipiEffect uint8

const (
	effNeutral ipiEffect = iota
	// effDischarge discharges without being a wait site itself (wrappers
	// proven by the fixpoint).
	effDischarge
	// effWait discharges the argument and checks the wait edges.
	effWait
	// effRekick and effDegrade are the recovery edges.
	effRekick
	effDegrade
)

// ipiSummary maps request-typed parameter index → effect for one callee.
type ipiSummary map[int]ipiEffect

type ipiAnalysis struct {
	ctx  *modCtx
	prog *Program
	// summaries classify module callees' request params; seeded with the
	// protocol primitives, grown over wrappers by fixpoint.
	summaries map[*types.Func]ipiSummary
	// returnsLive marks module functions whose result carries freshly
	// kicked requests (CallMany wrappers).
	returnsLive map[*types.Func]bool
	findings    []lint.Finding
	reported    map[string]bool
	origins     map[*Value]map[*Value]bool
}

func checkIPIState(ctx *modCtx) ([]lint.Finding, []Suppression) {
	prog := ctx.program()
	ia := &ipiAnalysis{
		ctx: ctx, prog: prog,
		summaries:   make(map[*types.Func]ipiSummary),
		returnsLive: make(map[*types.Func]bool),
		reported:    make(map[string]bool),
		origins:     make(map[*Value]map[*Value]bool),
	}
	ia.seedPrimitives()
	ia.fixpoint()
	visited := 0
	prog.eachUnit(func(f *Func) {
		if f.Lit == nil {
			visited++
		}
		if f.Decl.Pkg.Path == smpPkg {
			return
		}
		ia.analyzeUnit(f)
	})
	ctx.visited["ipistate"] = visited
	sortFindings(ia.findings)
	return ia.findings, nil
}

// seedPrimitives installs the protocol root summaries.
func (ia *ipiAnalysis) seedPrimitives() {
	for _, fd := range allFuncs(ia.ctx.pkgs) {
		fn := fd.Obj
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Recv() == nil {
			continue
		}
		recv := sig.Recv().Type()
		switch {
		case isNamed(recv, smpPkg, "Layer"):
			switch fn.Name() {
			case "WaitAll", "WaitFirst":
				ia.summaries[fn] = ipiSummary{2: effWait}
			case "Rekick":
				ia.summaries[fn] = ipiSummary{2: effRekick}
			case "DegradeToFull":
				ia.summaries[fn] = ipiSummary{0: effDegrade}
			}
		case isNamed(recv, modPath+"/internal/kernel", "CPU"):
			switch fn.Name() {
			case "WaitRequests", "WaitFirstRequest":
				ia.summaries[fn] = ipiSummary{1: effWait}
			}
		}
	}
}

// fixpoint classifies wrapper functions until stable: a request-typed
// parameter whose origins reach a discharging call is itself a
// discharger, and a function returning freshly kicked requests is a
// CallMany wrapper. A cheap may-analysis: summaries only prevent leak and
// double-discharge false positives; the path checks run per-unit.
func (ia *ipiAnalysis) fixpoint() {
	for round := 0; round < 20; round++ {
		changed := false
		for _, f := range ia.prog.Funcs {
			if f.Decl.Pkg.Path == smpPkg {
				continue
			}
			fn := f.Decl.Obj
			if ia.classifyParams(f, fn) {
				changed = true
			}
			if !ia.returnsLive[fn] && ia.unitReturnsLive(f) {
				ia.returnsLive[fn] = true
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// classifyParams marks request params of f that flow into a discharge.
func (ia *ipiAnalysis) classifyParams(f *Func, fn *types.Func) bool {
	if f.Sig == nil {
		return false
	}
	changed := false
	for _, b := range f.Blocks {
		for _, call := range b.Calls {
			sum := ia.summaryFor(call)
			for idx, eff := range sum {
				if eff != effWait && eff != effDischarge {
					continue
				}
				if idx >= len(call.Args) {
					continue
				}
				for o := range ia.originsOf(call.Args[idx]) {
					if o.Kind != VParam {
						continue
					}
					pi := o.ResIdx
					if pi >= f.Sig.Params().Len() || !isRequestType(f.Sig.Params().At(pi).Type()) {
						continue
					}
					if ia.summaries[fn] == nil {
						ia.summaries[fn] = make(ipiSummary)
					}
					if ia.summaries[fn][pi] == effNeutral {
						ia.summaries[fn][pi] = effDischarge
						changed = true
					}
				}
			}
		}
	}
	return changed
}

// unitReturnsLive reports whether f returns requests born inside it.
func (ia *ipiAnalysis) unitReturnsLive(f *Func) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Kind != IReturn {
				continue
			}
			for _, r := range in.Results {
				if r == nil || r.Type == nil || !isRequestType(r.Type) {
					continue
				}
				for o := range ia.originsOf(r) {
					if ia.bornHere(o) {
						return true
					}
				}
			}
		}
	}
	return false
}

// bornHere reports whether origin o introduces freshly kicked requests.
func (ia *ipiAnalysis) bornHere(o *Value) bool {
	if o.Kind != VCall || o.Callee == nil {
		return false
	}
	if isCallMany(o.Callee) {
		return true
	}
	return ia.returnsLive[o.Callee]
}

func isCallMany(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	return fn.Name() == "CallMany" && sig != nil && sig.Recv() != nil &&
		isNamed(sig.Recv().Type(), smpPkg, "Layer")
}

func isNoteAckTimeout(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	return fn.Name() == "NoteAckTimeout" && sig != nil && sig.Recv() != nil &&
		isNamed(sig.Recv().Type(), smpPkg, "Layer")
}

// summaryFor resolves the effect summary of a call (interface calls union
// their implementations' summaries).
func (ia *ipiAnalysis) summaryFor(call *Value) ipiSummary {
	if call.Callee == nil {
		return nil
	}
	var out ipiSummary
	for _, t := range ia.prog.calleesOf(call) {
		for idx, eff := range ia.summaries[t] {
			if out == nil {
				out = make(ipiSummary)
			}
			if out[idx] < eff {
				out[idx] = eff
			}
		}
	}
	return out
}

// originsOf computes the origin set of a request-typed value: the births
// (CallMany results), borrows (params, receivers, fields, globals) and
// hand-built literals it may alias, through phis, appends, copies,
// indexing, ranging and passthrough kinds.
func (ia *ipiAnalysis) originsOf(v *Value) map[*Value]bool {
	if v == nil {
		return nil
	}
	if memo, ok := ia.origins[v]; ok {
		return memo
	}
	ia.origins[v] = nil // cycle guard: in-progress reads see the partial set
	out := make(map[*Value]bool)
	switch v.Kind {
	case VCall:
		switch v.Builtin {
		case "append", "copy":
			for _, a := range v.Args {
				for o := range ia.originsOf(a) {
					out[o] = true
				}
			}
		case "":
			out[v] = true
		}
	case VParam, VRecv, VFree, VGlobal, VZero, VFieldRead:
		out[v] = true
	case VComposite:
		if _, isSlice := underlyingOf(v.Type).(*types.Slice); isSlice {
			for _, a := range v.Args {
				for o := range ia.originsOf(a) {
					out[o] = true
				}
			}
			if len(out) == 0 {
				out[v] = true
			}
		} else {
			out[v] = true
		}
	case VPhi:
		for _, a := range v.Args {
			if a == v {
				continue
			}
			for o := range ia.originsOf(a) {
				out[o] = true
			}
		}
	case VIndexRead, VRangeVal, VRangeKey, VAddr, VDeref, VExtract:
		for o := range ia.originsOf(v.Base) {
			out[o] = true
		}
	case VOp:
		for _, a := range v.Args {
			if a != nil && a.Type != nil && isRequestType(a.Type) {
				for o := range ia.originsOf(a) {
					out[o] = true
				}
			}
		}
	}
	ia.origins[v] = out
	return out
}

func underlyingOf(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func initIPIBits(o *Value) ipiBits {
	switch o.Kind {
	case VZero, VComposite:
		return ipiUnkicked
	case VCall:
		return ipiLive // reached only for born-here origins
	}
	return 0
}

// analyzeUnit runs the path-sensitive DFA over one unit.
func (ia *ipiAnalysis) analyzeUnit(f *Func) {
	in := make(map[*IRBlock]ipiState)
	in[f.Entry] = make(ipiState)
	work := f.rpo()
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		st, ok := in[b]
		if !ok {
			continue
		}
		out := ia.transferBlock(f, b, st.clone())
		for _, s := range b.Succs {
			prev, ok := in[s]
			if !ok {
				in[s] = out.clone()
				work = append(work, s)
				continue
			}
			merged := joinIPI(prev.clone(), out)
			if !equalIPI(merged, prev) {
				in[s] = merged
				work = append(work, s)
			}
		}
	}
	// Normal exit: deferred calls run, then every born-here origin must be
	// discharged or transferred. Panic exits release obligations.
	exitSt, ok := in[f.Exit]
	if !ok {
		return
	}
	for _, d := range f.Defers {
		ia.applyCall(f, d, exitSt)
	}
	for o, bits := range exitSt {
		if !ia.bornHere(o) {
			continue
		}
		if bits&ipiLive != 0 && bits&(ipiDisch|ipiMoved) == 0 {
			ia.report(f, o.Pos, "ipistate",
				"in-flight shootdown leaked: requests kicked by %s are neither waited for, returned, nor enqueued on some path to return", callLabel(o))
		}
	}
}

// transferBlock folds one block's calls and side effects into st.
func (ia *ipiAnalysis) transferBlock(f *Func, b *IRBlock, st ipiState) ipiState {
	for _, call := range b.Calls {
		ia.applyCall(f, call, st)
	}
	for _, in := range b.Instrs {
		switch in.Kind {
		case IStore, ISend:
			ia.markMoved(in.Val, st)
		case IReturn:
			for _, r := range in.Results {
				ia.markMoved(r, st)
			}
		}
	}
	return st
}

// markMoved transfers the obligation of every request origin in v: stores
// to fields/globals and channel sends are the enqueue-transfer DFA edge,
// returns the deferred-discharge edge.
func (ia *ipiAnalysis) markMoved(v *Value, st ipiState) {
	if v == nil || v.Type == nil || !isRequestType(v.Type) {
		return
	}
	for o := range ia.originsOf(v) {
		st[o] |= ipiMoved
	}
}

// applyCall folds one call's protocol effect into st.
func (ia *ipiAnalysis) applyCall(f *Func, call *Value, st ipiState) {
	if call == nil || call.Callee == nil {
		return
	}
	if isCallMany(call.Callee) || ia.returnsLive[call.Callee] {
		st[call] = ipiLive
		return
	}
	if isNoteAckTimeout(call.Callee) {
		// The layer observed an ack timeout: the recovery edge opens for
		// every request set this path tracks.
		for o := range st {
			st[o] |= ipiTimeout
		}
		return
	}
	sum := ia.summaryFor(call)
	for idx, eff := range sum {
		if idx >= len(call.Args) {
			continue
		}
		arg := call.Args[idx]
		if arg == nil {
			continue
		}
		for o := range ia.originsOf(arg) {
			bits, ok := st[o]
			if !ok {
				bits = initIPIBits(o)
			}
			switch eff {
			case effWait, effDischarge:
				if eff == effWait {
					if bits&ipiUnkicked != 0 && bits&(ipiLive|ipiDisch) == 0 {
						ia.report(f, call.Pos, "ipistate",
							"wait before kick: waiting on a hand-built request set that was never kicked through smp.CallMany (typestate new -> waited skips kicked)")
					}
					if bits&ipiDisch != 0 && bits&ipiLive == 0 {
						ia.report(f, call.Pos, "ipistate",
							"double discharge: this request set is already acked and discharged on every path reaching this wait")
					}
				}
				bits = (bits &^ (ipiLive | ipiUnkicked)) | ipiDisch
			case effRekick, effDegrade:
				if bits&ipiTimeout == 0 && bits&ipiLive != 0 {
					verb := "rekick"
					if eff == effDegrade {
						verb = "degrade-to-full"
					}
					ia.report(f, call.Pos, "ipistate",
						"%s without an observed ack timeout: the recovery edge requires NoteAckTimeout on every path (typestate waited -> timeout -> %s)", verb, verb)
				}
			}
			st[o] = bits
		}
	}
}

func callLabel(o *Value) string {
	if o.Callee != nil {
		return o.Callee.Name()
	}
	return "CallMany"
}

func (ia *ipiAnalysis) report(f *Func, pos token.Pos, analyzer, format string, args ...any) {
	file, line := ia.ctx.posLine(f.Decl, pos)
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%s:%d:%s", file, line, msg)
	if ia.reported[key] {
		return
	}
	ia.reported[key] = true
	ia.findings = append(ia.findings, lint.Finding{
		File: file, Line: line, Analyzer: analyzer, Msg: msg,
	})
}
