// Package ssa is the deepest static-analysis tier: a stdlib-only
// def-use/SSA-form IR lowered from per-function CFGs, with interprocedural
// summaries computed over a fixpoint call graph. Where typedlint answers
// "what does this expression mean", this tier answers "what happens to
// this value on every path".
//
// Analyzers:
//
//   - flushobligation: every value of type mm.FlushRange returned by a
//     module call must reach a shootdown discharge (kernel.Flusher's
//     FlushAfter, or a callee proven to discharge it) on every path, be
//     returned to the caller, or carry an "obligation-transferred:" marker.
//   - lockorder: a static lockdep over the call graph — acquisition-order
//     cycles between mm.RWSem classes are reported without running a
//     single seed.
//   - ipistate: a typestate checker for the shootdown request lifecycle.
//     Every smp.Request born from CallMany must follow the DFA
//     new → kicked → waited → (acked | timeout → rekick{≤MaxKickRetries}
//     → degrade-to-full) → discharged on every path: no wait-before-kick,
//     no double-discharge, no leaked in-flight request. Deferred-discharge
//     edges (return or enqueue to a field) transfer the obligation to the
//     consumer, so the ROADMAP-1 async fabric lands checker-first.
//   - detflow: a nondeterminism-taint analysis proving the parallel
//     harness guarantee statically. Sources (time.Now, math/rand outside
//     fault.Decide, map-range order, select arms, goroutine identity)
//     must never flow into simulated state, StateDigest inputs, stats, or
//     event timestamps; sorting sanitizes iteration-order taint.
//   - parallelsafe: a whole-program restore-discipline proof for
//     package-level mutable vars in simulated packages, retiring
//     "parallel-safe:" suppression markers the syntactic tier needed.
//   - stalemarker: suppression markers that no analyzer consumed are
//     themselves findings, so retired suppressions cannot linger.
//
// Findings reuse lint.Finding and are sorted by file, line and analyzer,
// so output is byte-identical no matter how the caller schedules the work.
package ssa

import (
	"go/token"
	"go/types"

	"shootdown/internal/sanitizer/lint"
	"shootdown/internal/sanitizer/typedlint"
)

// The loader, typed helpers and marker index are shared with typedlint;
// local names keep the analyzer bodies terse.
type (
	// Module is the loaded and typechecked analysis target.
	Module = typedlint.Module
	// Package is one typechecked package of the module.
	Package = typedlint.Package
	// Suppression is a finding silenced by a documented marker.
	Suppression = typedlint.Suppression
	// FuncDecl pairs a declaration with its package.
	FuncDecl = typedlint.FuncDecl
)

const (
	modPath        = typedlint.ModulePath
	transferMarker = typedlint.TransferMarker
)

var (
	allFuncs   = typedlint.AllFuncs
	unwrap     = typedlint.Unwrap
	calleeFunc = typedlint.CalleeFunc
	identObj   = typedlint.IdentObj
	namedType  = typedlint.NamedType
	isNamed    = typedlint.IsNamed
	inFixture  = typedlint.InFixture
)

func buildImplMap(pkgs []*Package) map[*types.Func][]*types.Func {
	return typedlint.BuildImplMap(pkgs)
}

// Result is the outcome of an ssa-tier run.
type Result struct {
	Findings     []lint.Finding
	Suppressions []Suppression
	// FuncsVisited counts, per analyzer, the function declarations walked;
	// the coverage-floor test asserts the whole-program analyzers visit at
	// least as many functions as the typedlint tier.
	FuncsVisited map[string]int
}

// modCtx is the shared context every analyzer receives.
type modCtx struct {
	m       *Module
	pkgs    []*Package
	markers typedlint.MarkerIndex
	// visited records per-analyzer function coverage (written by each
	// analyzer, read by coverage-floor tests).
	visited map[string]int
	// usedMarkers records marker lines consumed as suppressions, keyed by
	// file then marker line, so stalemarker can flag the rest.
	usedMarkers map[string]map[int]bool
	// prog caches the whole-module SSA form shared by the analyzers.
	prog *Program
}

func (ctx *modCtx) markerFor(file string, line int) (string, bool) {
	r, ok := ctx.markers.For(file, line)
	if ok {
		ml := line
		if _, direct := ctx.markers[file][line]; !direct {
			ml = line - 1
		}
		if ctx.usedMarkers[file] == nil {
			ctx.usedMarkers[file] = make(map[int]bool)
		}
		ctx.usedMarkers[file][ml] = true
	}
	return r, ok
}

// Check loads the enclosing module and runs every ssa-tier analyzer.
func Check() (*Result, error) {
	m, err := typedlint.LoadModule()
	if err != nil {
		return nil, err
	}
	return CheckModule(m), nil
}

// CheckModule runs every ssa-tier analyzer over an already-loaded module.
func CheckModule(m *Module) *Result {
	return run(m, m.Pkgs, nil)
}

// CheckFixture typechecks one testdata fixture against the module and runs
// the analyzers with the fixture in scope, reporting only findings located
// in the fixture's file.
func CheckFixture(m *Module, file string) (*Result, error) {
	fp, err := m.LoadFixture(file)
	if err != nil {
		return nil, err
	}
	pkgs := append(append([]*Package{}, m.Pkgs...), fp)
	return run(m, pkgs, fp), nil
}

// run executes the analyzers over pkgs. When only is non-nil, findings are
// restricted to that package's files (fixture mode); module-wide context
// (summaries, call graph) still spans all of pkgs.
func run(m *Module, pkgs []*Package, only *Package) *Result {
	ctx := &modCtx{
		m:           m,
		pkgs:        pkgs,
		markers:     typedlint.CollectMarkers(m.Fset, pkgs),
		visited:     make(map[string]int),
		usedMarkers: make(map[string]map[int]bool),
	}
	res := &Result{}
	// stalemarker must run last: it flags markers nothing else consumed.
	for _, an := range []func(*modCtx) ([]lint.Finding, []Suppression){
		checkFlushObligation,
		checkLockOrder,
		checkIPIState,
		checkDetFlow,
		checkParallelSafe,
		checkStaleMarkers,
	} {
		fs, sups := an(ctx)
		res.Findings = append(res.Findings, fs...)
		res.Suppressions = append(res.Suppressions, sups...)
	}
	res.FuncsVisited = ctx.visited
	if only != nil {
		res.Findings = typedlint.FilterByFiles(res.Findings, only.FileNames)
		res.Suppressions = typedlint.FilterSupsByFiles(res.Suppressions, only.FileNames)
	}
	typedlint.SortFindings(res.Findings)
	typedlint.SortSuppressions(res.Suppressions)
	return res
}

// checkStaleMarkers reports every "obligation-transferred:" marker that no
// analyzer consumed as a suppression: a retired suppression is itself a
// finding, so dead waivers cannot accumulate in the tree.
func checkStaleMarkers(ctx *modCtx) ([]lint.Finding, []Suppression) {
	var findings []lint.Finding
	for file, lines := range ctx.markers {
		for line := range lines {
			if ctx.usedMarkers[file][line] {
				continue
			}
			findings = append(findings, lint.Finding{
				File: file, Line: line, Analyzer: "stalemarker",
				Msg: "stale \"" + transferMarker + "\" marker: the flush obligation here is already proven discharged; delete the marker",
			})
		}
	}
	return findings, nil
}

// funcIdent names fd as "pkg.Func" or "pkg.Recv.Method" for reports.
func funcIdent(fd FuncDecl) string {
	name := fd.Obj.Name()
	if sig, ok := fd.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedType(sig.Recv().Type()); n != nil {
			name = n.Obj().Name() + "." + name
		}
	}
	return fd.Obj.Pkg().Name() + "." + name
}

// posLine locates pos as a (module-relative file, line) pair within fd's
// package, falling back to the declaring file when pos is synthetic.
func (ctx *modCtx) posLine(fd FuncDecl, pos token.Pos) (string, int) {
	_, rel := fd.Pkg.FileOf(pos)
	if rel == "" {
		rel = fd.File
	}
	return rel, ctx.m.Fset.Position(pos).Line
}
