// Package ssa is the deepest static-analysis tier: a stdlib-only
// def-use/SSA-form IR lowered from per-function CFGs, with interprocedural
// summaries computed over a fixpoint call graph. Where typedlint answers
// "what does this expression mean", this tier answers "what happens to
// this value on every path".
//
// Analyzers:
//
//   - flushobligation: every value of type mm.FlushRange returned by a
//     module call must reach a shootdown discharge (kernel.Flusher's
//     FlushAfter, or a callee proven to discharge it) on every path, be
//     returned to the caller, or carry an "obligation-transferred:" marker.
//   - lockorder: a static lockdep over the call graph — acquisition-order
//     cycles between mm.RWSem classes are reported without running a
//     single seed.
//   - ipistate: a typestate checker for the shootdown request lifecycle.
//     Every smp.Request born from CallMany must follow the DFA
//     new → kicked → waited → (acked | timeout → rekick{≤MaxKickRetries}
//     → degrade-to-full) → discharged on every path: no wait-before-kick,
//     no double-discharge, no leaked in-flight request. Deferred-discharge
//     edges (return or enqueue to a field) transfer the obligation to the
//     consumer, so the ROADMAP-1 async fabric lands checker-first.
//   - detflow: a nondeterminism-taint analysis proving the parallel
//     harness guarantee statically. Sources (time.Now, math/rand outside
//     fault.Decide, map-range order, select arms, goroutine identity)
//     must never flow into simulated state, StateDigest inputs, stats, or
//     event timestamps; sorting sanitizes iteration-order taint.
//   - parallelsafe: a whole-program restore-discipline proof for
//     package-level mutable vars in simulated packages, retiring
//     "parallel-safe:" suppression markers the syntactic tier needed.
//   - stalemarker: suppression markers that no analyzer consumed are
//     themselves findings, so retired suppressions cannot linger.
//
// Findings reuse lint.Finding and are sorted by file, line and analyzer,
// so output is byte-identical no matter how the caller schedules the work.
package ssa

import (
	"go/token"
	"go/types"
	"time"

	"shootdown/internal/sanitizer/lint"
	"shootdown/internal/sanitizer/typedlint"
)

// The loader, typed helpers and marker index are shared with typedlint;
// local names keep the analyzer bodies terse.
type (
	// Module is the loaded and typechecked analysis target.
	Module = typedlint.Module
	// Package is one typechecked package of the module.
	Package = typedlint.Package
	// Suppression is a finding silenced by a documented marker.
	Suppression = typedlint.Suppression
	// FuncDecl pairs a declaration with its package.
	FuncDecl = typedlint.FuncDecl
)

const (
	modPath        = typedlint.ModulePath
	transferMarker = typedlint.TransferMarker
	lockFreeMarker = typedlint.LockFreeMarker
	fabBoundMarker = typedlint.FabBoundMarker
)

var (
	allFuncs   = typedlint.AllFuncs
	unwrap     = typedlint.Unwrap
	calleeFunc = typedlint.CalleeFunc
	identObj   = typedlint.IdentObj
	namedType  = typedlint.NamedType
	isNamed    = typedlint.IsNamed
	inFixture  = typedlint.InFixture
)

func buildImplMap(pkgs []*Package) map[*types.Func][]*types.Func {
	return typedlint.BuildImplMap(pkgs)
}

// Result is the outcome of an ssa-tier run.
type Result struct {
	Findings     []lint.Finding
	Suppressions []Suppression
	// Witnesses are the expected rediscoveries of config-seeded faults:
	// violations the lockset prover finds at deliberately broken sites
	// (Config.BrokenEarlyAck). They are not findings — the breakage is
	// intentional — but their exact count is part of the cross-validation
	// contract with the dynamic race model.
	Witnesses []lint.Finding
	// XVal is the cross-validation report: one row per internal/race
	// registry entry with its static discharge status.
	XVal []XValRow
	// FabRows is the fabproof report: one row per fabric obligation with
	// its proof status (proven / waived / unproven). CI fails on any
	// unproven row, mirroring the XVal artifact.
	FabRows []FabRow
	// FuncsVisited counts, per analyzer, the function declarations walked;
	// the coverage-floor test asserts the whole-program analyzers visit at
	// least as many functions as the typedlint tier.
	FuncsVisited map[string]int
	// Timings holds per-analyzer wall-clock milliseconds. Reports keep it
	// out of the byte-identical sections: it is footer-only diagnostics.
	Timings map[string]float64
}

// lockResult carries the lockset analyzer's extra outputs to Result.
type lockResult struct {
	witnesses []lint.Finding
	xval      []XValRow
}

// modCtx is the shared context every analyzer receives.
type modCtx struct {
	m       *Module
	pkgs    []*Package
	markers typedlint.MarkerIndex
	// visited records per-analyzer function coverage (written by each
	// analyzer, read by coverage-floor tests).
	visited map[string]int
	// usedMarkers records marker lines consumed as suppressions, keyed by
	// file then marker line, so stalemarker can flag the rest.
	usedMarkers map[string]map[int]bool
	// lockMarkers/usedLockMarkers do the same for the lockset tier's
	// "lock-free-by-design:" waivers.
	lockMarkers     typedlint.MarkerIndex
	usedLockMarkers map[string]map[int]bool
	// fabMarkers/usedFabMarkers do the same for the fabproof tier's
	// "bounded-by-design:" waivers.
	fabMarkers     typedlint.MarkerIndex
	usedFabMarkers map[string]map[int]bool
	// lockRes is filled by checkLockset for run() to lift into Result.
	lockRes *lockResult
	// fabRes is filled by checkFabproof for run() to lift into Result.
	fabRes *fabResult
	// prog caches the whole-module SSA form shared by the analyzers.
	prog *Program
	// mhp caches the may-happen-in-parallel facts (built by checkMHP,
	// reused by lockset's confinement and handler-reachability proofs).
	mhp *mhpInfo
}

func (ctx *modCtx) markerFor(file string, line int) (string, bool) {
	return consumeMarker(ctx.markers, ctx.usedMarkers, file, line)
}

func (ctx *modCtx) lockMarkerFor(file string, line int) (string, bool) {
	return consumeMarker(ctx.lockMarkers, ctx.usedLockMarkers, file, line)
}

func (ctx *modCtx) fabMarkerFor(file string, line int) (string, bool) {
	return consumeMarker(ctx.fabMarkers, ctx.usedFabMarkers, file, line)
}

// consumeMarker resolves a marker covering line and records the marker's
// own line as consumed, so stalemarker can flag the rest.
func consumeMarker(idx typedlint.MarkerIndex, used map[string]map[int]bool, file string, line int) (string, bool) {
	r, ok := idx.For(file, line)
	if ok {
		ml := line
		if _, direct := idx[file][line]; !direct {
			ml = line - 1
		}
		if used[file] == nil {
			used[file] = make(map[int]bool)
		}
		used[file][ml] = true
	}
	return r, ok
}

// Check loads the enclosing module and runs every ssa-tier analyzer.
func Check() (*Result, error) {
	m, err := typedlint.LoadModule()
	if err != nil {
		return nil, err
	}
	return CheckModule(m), nil
}

// CheckModule runs every ssa-tier analyzer over an already-loaded module.
func CheckModule(m *Module) *Result {
	return run(m, m.Pkgs, nil, nil)
}

// CheckModuleOnly runs only the named ssa-tier analyzers (all when names
// is empty) over an already-loaded module, sharing one typecheck.
func CheckModuleOnly(m *Module, names []string) *Result {
	return run(m, m.Pkgs, nil, names)
}

// Analyzers lists the ssa-tier analyzer names in execution order, for
// -only flag validation.
func Analyzers() []string {
	var out []string
	for _, an := range analyzerTable {
		out = append(out, an.name)
	}
	return out
}

// CheckFixture typechecks one testdata fixture against the module and runs
// the analyzers with the fixture in scope, reporting only findings located
// in the fixture's file.
func CheckFixture(m *Module, file string) (*Result, error) {
	fp, err := m.LoadFixture(file)
	if err != nil {
		return nil, err
	}
	pkgs := append(append([]*Package{}, m.Pkgs...), fp)
	return run(m, pkgs, fp, nil), nil
}

// analyzerTable lists the ssa-tier analyzers in execution order.
// stalemarker must run last: it flags markers nothing else consumed, so
// it is skipped in -only runs that omit any marker-consuming analyzer.
var analyzerTable = []struct {
	name string
	run  func(*modCtx) ([]lint.Finding, []Suppression)
}{
	{"flushobligation", checkFlushObligation},
	{"lockorder", checkLockOrder},
	{"ipistate", checkIPIState},
	{"detflow", checkDetFlow},
	{"parallelsafe", checkParallelSafe},
	{"mhp", checkMHP},
	{"lockset", checkLockset},
	{"fabproof", checkFabproof},
	{"stalemarker", checkStaleMarkers},
}

// run executes the analyzers over pkgs. When only is non-nil, findings are
// restricted to that package's files (fixture mode); module-wide context
// (summaries, call graph) still spans all of pkgs. When names is non-empty,
// only the named analyzers execute — except stalemarker, which additionally
// requires every marker-consuming analyzer to have run (otherwise unconsumed
// markers would be false positives).
func run(m *Module, pkgs []*Package, only *Package, names []string) *Result {
	ctx := &modCtx{
		m:               m,
		pkgs:            pkgs,
		markers:         typedlint.CollectMarkers(m.Fset, pkgs),
		lockMarkers:     typedlint.CollectMarkersFor(m.Fset, pkgs, lockFreeMarker),
		fabMarkers:      typedlint.CollectMarkersFor(m.Fset, pkgs, fabBoundMarker),
		visited:         make(map[string]int),
		usedMarkers:     make(map[string]map[int]bool),
		usedLockMarkers: make(map[string]map[int]bool),
		usedFabMarkers:  make(map[string]map[int]bool),
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	partial := len(want) > 0 && func() bool {
		for _, an := range analyzerTable {
			if an.name != "stalemarker" && !want[an.name] {
				return true
			}
		}
		return false
	}()
	res := &Result{Timings: make(map[string]float64)}
	for _, an := range analyzerTable {
		if len(want) > 0 && !want[an.name] {
			continue
		}
		if an.name == "stalemarker" && partial {
			continue
		}
		start := time.Now()
		fs, sups := an.run(ctx)
		res.Timings[an.name] += float64(time.Since(start).Nanoseconds()) / 1e6
		res.Findings = append(res.Findings, fs...)
		res.Suppressions = append(res.Suppressions, sups...)
	}
	if ctx.lockRes != nil {
		res.Witnesses = append(res.Witnesses, ctx.lockRes.witnesses...)
		res.XVal = ctx.lockRes.xval
	}
	if ctx.fabRes != nil {
		res.Witnesses = append(res.Witnesses, ctx.fabRes.witnesses...)
		res.FabRows = ctx.fabRes.rows
	}
	res.FuncsVisited = ctx.visited
	if only != nil {
		res.Findings = typedlint.FilterByFiles(res.Findings, only.FileNames)
		res.Suppressions = typedlint.FilterSupsByFiles(res.Suppressions, only.FileNames)
		res.Witnesses = typedlint.FilterByFiles(res.Witnesses, only.FileNames)
	}
	sortFindings(res.Findings)
	typedlint.SortSuppressions(res.Suppressions)
	sortFindings(res.Witnesses)
	return res
}

// sortFindings is the one canonical finding order for the ssa tier; every
// analyzer and the combined report sort through it so output is
// byte-identical no matter how the caller schedules the work.
func sortFindings(fs []lint.Finding) {
	typedlint.SortFindings(fs)
}

// checkStaleMarkers reports every suppression marker that no analyzer
// consumed: a retired suppression is itself a finding, so dead waivers
// cannot accumulate in the tree. Both marker vocabularies are covered —
// "obligation-transferred:" (flushobligation) and "lock-free-by-design:"
// (lockset).
func checkStaleMarkers(ctx *modCtx) ([]lint.Finding, []Suppression) {
	var findings []lint.Finding
	for _, mk := range []struct {
		idx    typedlint.MarkerIndex
		used   map[string]map[int]bool
		marker string
		why    string
	}{
		{ctx.markers, ctx.usedMarkers, transferMarker,
			"the flush obligation here is already proven discharged"},
		{ctx.lockMarkers, ctx.usedLockMarkers, lockFreeMarker,
			"the lockset tier proves this access disciplined without a waiver"},
		{ctx.fabMarkers, ctx.usedFabMarkers, fabBoundMarker,
			"the fabproof tier proves this bound without a waiver"},
	} {
		for file, lines := range mk.idx {
			for line := range lines {
				if mk.used[file][line] {
					continue
				}
				findings = append(findings, lint.Finding{
					File: file, Line: line, Analyzer: "stalemarker",
					Msg: "stale \"" + mk.marker + "\" marker: " + mk.why + "; delete the marker",
				})
			}
		}
	}
	return findings, nil
}

// funcIdent names fd as "pkg.Func" or "pkg.Recv.Method" for reports.
func funcIdent(fd FuncDecl) string {
	name := fd.Obj.Name()
	if sig, ok := fd.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedType(sig.Recv().Type()); n != nil {
			name = n.Obj().Name() + "." + name
		}
	}
	return fd.Obj.Pkg().Name() + "." + name
}

// posLine locates pos as a (module-relative file, line) pair within fd's
// package, falling back to the declaring file when pos is synthetic.
func (ctx *modCtx) posLine(fd FuncDecl, pos token.Pos) (string, int) {
	_, rel := fd.Pkg.FileOf(pos)
	if rel == "" {
		rel = fd.File
	}
	return rel, ctx.m.Fset.Position(pos).Line
}
