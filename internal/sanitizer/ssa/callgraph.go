package ssa

import "go/types"

// Program is the whole-module SSA form: one Func per declaration plus a
// unit per func literal, with the interface-implementation map the
// interprocedural fixpoints resolve dynamic calls through.
type Program struct {
	// Funcs holds the declared units in deterministic (package, file,
	// source) order; literal units hang off their parent's Lits.
	Funcs []*Func
	// ByObj resolves a callee object to its lowered unit.
	ByObj map[*types.Func]*Func
	// Impls maps interface methods to their module implementations.
	Impls map[*types.Func][]*types.Func
}

// program builds (once per run) the SSA form of every function in scope.
func (ctx *modCtx) program() *Program {
	if ctx.prog != nil {
		return ctx.prog
	}
	p := &Program{ByObj: make(map[*types.Func]*Func)}
	for _, fd := range allFuncs(ctx.pkgs) {
		f := buildFunc(fd)
		p.Funcs = append(p.Funcs, f)
		p.ByObj[fd.Obj] = f
	}
	p.Impls = buildImplMap(ctx.pkgs)
	ctx.prog = p
	return p
}

// eachUnit visits every unit — declared functions and, transitively, the
// func literals nested in them — in deterministic order.
func (p *Program) eachUnit(visit func(*Func)) {
	var walk func(f *Func)
	walk = func(f *Func) {
		visit(f)
		for _, lit := range f.Lits {
			walk(lit)
		}
	}
	for _, f := range p.Funcs {
		walk(f)
	}
}

// calleesOf resolves call to its possible targets: the static callee, or
// every module implementation when the callee is an interface method.
func (p *Program) calleesOf(call *Value) []*types.Func {
	if call.Callee == nil {
		return nil
	}
	if impls := p.Impls[call.Callee]; len(impls) > 0 {
		return impls
	}
	return []*types.Func{call.Callee}
}
