package ssa

// fabproof is the numeric prover for the asynchronous shootdown fabric:
// where lockset proves the fabric's *ordering* story (ack edges,
// confinement), fabproof proves the *arithmetic* its safety rests on,
// using the difference-bound engine in absint.go. The obligations:
//
//   - fab.ring-bound: every append to a per-CPU invalidation ring
//     happens under a provable length bound no larger than the declared
//     ring capacity — a post can never grow a ring unboundedly.
//   - fab.ring-overflow: from every posted-sequence increment, all
//     paths land the post before returning: a ring append, a coalescing
//     merge, or the full-flush collapse. No sequence is ever acked for
//     an invalidation that was silently dropped.
//   - fab.seq-mono / fab.ack-mono / fab.gen-mono: the posted sequence,
//     the acked sequence, and the mm TLB generation are monotone
//     non-decreasing at every store site; the ack additionally stores
//     only drain-time snapshots of the posted sequence, which gives
//     ack ≤ posted compositionally.
//   - fab.retry-cap: watchdog retry counters stay under the declared
//     re-kick cap, so the degrade-to-full ladder terminates.
//   - fab.coalesce: coalescing soundness as interval containment — on
//     every feasible path of the merge function, under each disjunct of
//     the guard predicate's true-return postcondition, the merged entry
//     either goes full or keeps [min(Start), max(End)), covering both
//     inputs. The config-seeded BrokenCoalesceShrink variant fails this
//     proof on exactly one path, recorded as a witness (the static half
//     of the cross-validation contract; the shadow-TLB oracle is the
//     dynamic half).
//   - fab.callback-once: the batch completion callback fires only with
//     the done latch provably set, the latch is never cleared, and a
//     batch is registered for completion at most once — the callback
//     fires exactly once per batch, including the zero-target and
//     FreedTables synchronous fallback paths.
//   - fab.freed-fallback: every call of the async post function is
//     dominated by a freed-tables-clear fact, locally or (one caller
//     level up) at every call site of the enclosing function — flushes
//     that free page tables provably stay on the synchronous ack path.
//   - fab.inval-wf: every ring-entry literal is well-formed: full, or
//     GenLo ≤ GenHi (missing elements are zero).
//
// Fabrics are discovered structurally, not by name binding to one
// package: a struct with a slice-typed ring field plus posted/acked
// sequence counters and a full-flush flag is a fabric, so fixtures
// exercise the prover with their own rings. Obligations the engine
// cannot discharge can carry a "bounded-by-design:" waiver marker;
// stalemarker flags any such marker nothing consumed. The per-obligation
// rows (proven/waived/unproven) form the FABPROOF artifact CI fails on,
// mirroring RACE_XVAL.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"shootdown/internal/sanitizer/lint"
)

// FabRow is one line of the FABPROOF cross-validation report: a fabric
// obligation and its static proof status.
type FabRow struct {
	// Key is the obligation id ("fab.ring-bound", ...).
	Key string
	// Subject names the proven entity ("smp.fabricCPU.fabRing").
	Subject string
	// Property is the one-line obligation statement.
	Property string
	// Status is "proven", "waived" (a bounded-by-design marker covers
	// the failing site) or "unproven" (an undischarged finding; CI fails).
	Status string
	// Detail is the one-line proof summary.
	Detail string
}

// fabResult carries the fabproof analyzer's extra outputs to Result.
type fabResult struct {
	witnesses []lint.Finding
	rows      []FabRow
}

// Obligation keys, in pinned report order.
const (
	fabRingBound    = "fab.ring-bound"
	fabRingOverflow = "fab.ring-overflow"
	fabSeqMono      = "fab.seq-mono"
	fabAckMono      = "fab.ack-mono"
	fabGenMono      = "fab.gen-mono"
	fabRetryCap     = "fab.retry-cap"
	fabCoalesce     = "fab.coalesce"
	fabCallbackOnce = "fab.callback-once"
	fabFreedFall    = "fab.freed-fallback"
	fabInvalWF      = "fab.inval-wf"
)

var fabProps = map[string]string{
	fabRingBound:    "ring appends stay under the declared capacity",
	fabRingOverflow: "every posted sequence lands: append, merge, or full-flush collapse",
	fabSeqMono:      "posted sequence is monotone non-decreasing",
	fabAckMono:      "acked sequence is a posted-sequence snapshot (ack ≤ posted)",
	fabGenMono:      "TLB generation is monotone non-decreasing",
	fabRetryCap:     "re-kick retries stay under the declared cap",
	fabCoalesce:     "merged entries cover both inputs (no invalidation lost)",
	fabCallbackOnce: "completion callback fires exactly once per batch",
	fabFreedFall:    "freed-tables flushes stay on the synchronous path",
	fabInvalWF:      "ring entry literals are well-formed (GenLo ≤ GenHi or full)",
}

// fabric is one discovered ring structure with its companion state.
type fabric struct {
	pkg   *Package
	owner *types.Named
	// ring/postSeq/ackSeq/full are the fabric struct's fields.
	ring, postSeq, ackSeq, full *types.Var
	// elem is the ring element struct and its role fields.
	elem                                               *types.Named
	elemStart, elemEnd, elemGenLo, elemGenHi, elemFull *types.Var
	// ringCap is the declared ring capacity const (0 when absent).
	ringCap int64
	// merge folds one element into another in-ring; guard is the boolean
	// predicate deciding whether merge applies; post owns the posted-
	// sequence increment.
	merge, guard, post *Func
	// mergeP0/mergeP1 are the merge/guard element parameter indices.
	mergeP0, mergeP1 int
	// batch is the completion-tracking struct with its callback field,
	// done latch and (optional) retry counter.
	batch             *types.Named
	cb, done, retries *types.Var
	retryCap          int64
	// genOwner/genField are the module generation counter, shared by
	// every fabric (the mm tier the rings carry generations for).
	genOwner *types.Named
	genField *types.Var
	// brokenField names a "broken"-tagged knob the merge function reads:
	// the config-seeded variant whose coverage loss must surface as
	// exactly one witness.
	brokenField string
}

func (fb *fabric) subject(prop string) string {
	pkg := fb.pkg.Types.Name()
	owner := pkg + "." + fb.owner.Obj().Name()
	switch prop {
	case fabRingBound, fabRingOverflow:
		return owner + "." + fb.ring.Name()
	case fabSeqMono:
		return owner + "." + fb.postSeq.Name()
	case fabAckMono:
		return owner + "." + fb.ackSeq.Name()
	case fabGenMono:
		if fb.genOwner != nil && fb.genField != nil {
			return fb.genOwner.Obj().Pkg().Name() + "." + fb.genOwner.Obj().Name() + "." + fb.genField.Name()
		}
	case fabRetryCap:
		if fb.batch != nil && fb.retries != nil {
			return pkg + "." + fb.batch.Obj().Name() + "." + fb.retries.Name()
		}
	case fabCoalesce:
		if fb.merge != nil {
			return funcIdent(fb.merge.Decl)
		}
	case fabCallbackOnce:
		if fb.batch != nil && fb.cb != nil {
			return pkg + "." + fb.batch.Obj().Name() + "." + fb.cb.Name()
		}
	case fabFreedFall:
		if fb.post != nil {
			return funcIdent(fb.post.Decl)
		}
	case fabInvalWF:
		return pkg + "." + fb.elem.Obj().Name()
	}
	return owner
}

// fabOb is one obligation bound to a store or call event.
type fabOb struct {
	kind    int
	in      *Instr
	call    *Value
	doneKey string // for callback calls through a stored parameter
}

const (
	obRingBound = iota
	obSeqMono
	obAckMono
	obRetryCap
	obGenMono
	obCallbackFire
	obFreedCall
)

// fabCounts accumulates the per-fabric proof summary for row details.
type fabCounts struct {
	appends      int
	appendMax    int64
	seqStores    int
	ackSnapshots int
	ackNumeric   int
	genStores    int
	retryStores  int
	retryMax     int64
	paths        int
	witnessed    bool
	cbFires      int
	postSites    int
	postLocal    int
	postCallers  int
	composites   int
	batchAppends int
}

type fabAnalysis struct {
	ctx  *modCtx
	prog *Program
	sums *absSummaries

	findings  []lint.Finding
	sups      []Suppression
	witnesses []lint.Finding
	rows      []FabRow
	reported  map[string]bool
	rowBad    map[string]bool
	rowWaived map[string]bool

	// freedNeed collects post-call sites whose enclosing unit could not
	// prove the freed-clear fact locally (phase-two caller propagation).
	freedNeed map[*Func][]token.Pos
}

func checkFabproof(ctx *modCtx) ([]lint.Finding, []Suppression) {
	fa := &fabAnalysis{
		ctx: ctx, prog: ctx.program(),
		reported:  make(map[string]bool),
		rowBad:    make(map[string]bool),
		rowWaived: make(map[string]bool),
	}
	fa.sums = newAbsSummaries(fa.prog)
	visited := 0
	fa.prog.eachUnit(func(f *Func) {
		if f.Lit == nil {
			visited++
		}
	})
	ctx.visited["fabproof"] = visited
	genOwner, genField := findGenCounter(ctx.pkgs)
	for _, fb := range discoverFabrics(ctx.pkgs) {
		fb.genOwner, fb.genField = genOwner, genField
		fa.bindUnits(fb)
		fa.checkFabric(fb)
	}
	ctx.fabRes = &fabResult{witnesses: fa.witnesses, rows: fa.rows}
	sortFindings(fa.findings)
	sortFindings(fa.witnesses)
	return fa.findings, fa.sups
}

// --- discovery ---

// discoverFabrics finds every fabric-shaped struct: a slice-typed ring
// field plus posted/acked sequence counters and a full-flush flag.
func discoverFabrics(pkgs []*Package) []*fabric {
	var out []*fabric
	for _, p := range pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			if fb := classifyFabric(p, named, st); fb != nil {
				out = append(out, fb)
			}
		}
	}
	return out
}

func classifyFabric(p *Package, owner *types.Named, st *types.Struct) *fabric {
	fb := &fabric{pkg: p, owner: owner}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		low := strings.ToLower(f.Name())
		switch {
		case fb.ring == nil && strings.Contains(low, "ring") && isSliceType(f.Type()):
			fb.ring = f
		case fb.postSeq == nil && strings.Contains(low, "postseq") && isUnsignedType(f.Type()):
			fb.postSeq = f
		case fb.ackSeq == nil && strings.Contains(low, "ackseq") && isUnsignedType(f.Type()):
			fb.ackSeq = f
		case fb.full == nil && (strings.Contains(low, "full") || strings.Contains(low, "flushall")) && isBoolType(f.Type()):
			fb.full = f
		}
	}
	if fb.ring == nil || fb.postSeq == nil || fb.ackSeq == nil || fb.full == nil {
		return nil
	}
	sl, ok := fb.ring.Type().Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	fb.elem = namedType(sl.Elem())
	if fb.elem == nil {
		return nil
	}
	es, ok := fb.elem.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < es.NumFields(); i++ {
		f := es.Field(i)
		switch strings.ToLower(f.Name()) {
		case "start":
			fb.elemStart = f
		case "end":
			fb.elemEnd = f
		case "genlo":
			fb.elemGenLo = f
		case "genhi":
			fb.elemGenHi = f
		case "full":
			fb.elemFull = f
		}
	}
	fb.ringCap = scopeConst(p, "ringsize")
	fb.retryCap = scopeConst(p, "retries")
	fb.batch, fb.cb, fb.done, fb.retries = classifyBatch(p)
	return fb
}

// scopeConst finds the package const whose lowercase name contains frag.
func scopeConst(p *Package, frag string) int64 {
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.Contains(strings.ToLower(name), frag) {
			continue
		}
		if v, exact := constant.Int64Val(constant.ToInt(c.Val())); exact {
			return v
		}
	}
	return 0
}

// classifyBatch finds the package's completion-tracking struct: a
// func-typed callback field plus a "done" bool latch. Structs that also
// carry a retry counter win ties.
func classifyBatch(p *Package) (*types.Named, *types.Var, *types.Var, *types.Var) {
	type cand struct {
		named             *types.Named
		cb, done, retries *types.Var
	}
	var cands []cand
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		c := cand{named: named}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			low := strings.ToLower(f.Name())
			if _, isFn := f.Type().Underlying().(*types.Signature); isFn && c.cb == nil {
				c.cb = f
			}
			if strings.Contains(low, "done") && isBoolType(f.Type()) && c.done == nil {
				c.done = f
			}
			if strings.Contains(low, "retr") && isNumericType(f.Type()) && c.retries == nil {
				c.retries = f
			}
		}
		if c.cb != nil && c.done != nil {
			cands = append(cands, c)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		ri, rj := cands[i].retries != nil, cands[j].retries != nil
		if ri != rj {
			return ri
		}
		return cands[i].named.Obj().Name() < cands[j].named.Obj().Name()
	})
	if len(cands) == 0 {
		return nil, nil, nil, nil
	}
	c := cands[0]
	return c.named, c.cb, c.done, c.retries
}

// findGenCounter locates the module's TLB generation counter field.
func findGenCounter(pkgs []*Package) (*types.Named, *types.Var) {
	for _, p := range pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if strings.Contains(strings.ToLower(f.Name()), "tlbgen") && isNumericType(f.Type()) {
					return named, f
				}
			}
		}
	}
	return nil, nil
}

// bindUnits resolves the fabric's merge/guard/post units by shape.
func (fa *fabAnalysis) bindUnits(fb *fabric) {
	elemPtr := func(t types.Type) bool {
		p, ok := t.Underlying().(*types.Pointer)
		return ok && namedType(p.Elem()) == fb.elem
	}
	fa.prog.eachUnit(func(f *Func) {
		if f.Lit != nil || f.Decl.Pkg.Path != fb.pkg.Path || f.Sig == nil {
			return
		}
		params := f.Sig.Params()
		var idx []int
		for i := 0; i < params.Len(); i++ {
			if elemPtr(params.At(i).Type()) {
				idx = append(idx, i)
			}
		}
		if len(idx) >= 2 {
			p0 := "p:" + itoa(idx[0]) + "."
			stores := false
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Kind != IStore || in.Addr == nil {
						continue
					}
					if key, ok := atomKey(in.Addr); ok && strings.HasPrefix(key, p0) {
						stores = true
					}
				}
			}
			isBool := f.Sig.Results().Len() == 1 && isBoolType(f.Sig.Results().At(0).Type())
			if stores && fb.merge == nil {
				fb.merge, fb.mergeP0, fb.mergeP1 = f, idx[0], idx[1]
			} else if !stores && isBool && fb.guard == nil {
				fb.guard = f
			}
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Kind != IStore {
					continue
				}
				if _, ok := fieldAddr(in, fb.postSeq); ok && fb.post == nil {
					fb.post = f
				}
			}
		}
	})
	if fb.merge != nil {
		for _, v := range fb.merge.Values() {
			if v.Kind == VFieldRead && v.Obj != nil && strings.Contains(strings.ToLower(v.Obj.Name()), "broken") {
				fb.brokenField = v.Obj.Name()
			}
		}
	}
}

// --- obligation scan and per-unit numeric runs ---

func (fa *fabAnalysis) checkFabric(fb *fabric) {
	c := &fabCounts{}
	fa.freedNeed = make(map[*Func][]token.Pos)
	units, obs := fa.scanObligations(fb, c)
	for _, f := range units {
		fa.runUnit(fb, f, obs[f], c)
	}
	for _, f := range units {
		for _, ob := range obs[f] {
			if ob.kind == obSeqMono {
				fa.checkOverflow(fb, f, ob.in)
			}
		}
	}
	fa.checkFreedPropagation(fb, c)
	fa.checkCoalesce(fb, c)
	fa.checkInvalWF(fb, c)
	if fb.batch != nil && c.batchAppends > 1 {
		fa.problem(fb, fabCallbackOnce, fb.post, unitPos(fb.post),
			"batch registered for completion at %d append sites: a batch reachable from the completion list twice fires its callback twice", c.batchAppends)
	}
	fa.appendRows(fb, c)
}

func (fa *fabAnalysis) scanObligations(fb *fabric, c *fabCounts) ([]*Func, map[*Func][]fabOb) {
	obs := make(map[*Func][]fabOb)
	var units []*Func
	add := func(f *Func, ob fabOb) {
		if len(obs[f]) == 0 {
			units = append(units, f)
		}
		obs[f] = append(obs[f], ob)
	}
	fa.prog.eachUnit(func(f *Func) {
		// Parameters stored into the callback field alias the callback:
		// calling them is a completion fire.
		aliasParams := map[int]string{}
		if fb.cb != nil {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Kind != IStore {
						continue
					}
					base, ok := fieldAddr(in, fb.cb)
					if !ok {
						continue
					}
					if pv := chase(in.Val); pv != nil && pv.Kind == VParam {
						if bk, ok2 := atomKey(chase(base)); ok2 && fb.done != nil {
							aliasParams[pv.ResIdx] = bk + "." + fb.done.Name()
						}
					}
				}
			}
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Kind != IStore || in.Addr == nil {
					continue
				}
				a := chase(in.Addr)
				if a == nil || a.Kind != VFieldRead || a.Obj == nil {
					continue
				}
				switch a.Obj {
				case fb.ring:
					if isRingAppend(fb, in) {
						add(f, fabOb{kind: obRingBound, in: in})
					}
					if fb.batch != nil && isElemAppend(in, fb.batch) {
						c.batchAppends++
					}
				case fb.postSeq:
					add(f, fabOb{kind: obSeqMono, in: in})
				case fb.ackSeq:
					if ackSnapshot(fb, in) {
						c.ackSnapshots++
					} else {
						add(f, fabOb{kind: obAckMono, in: in})
					}
				case fb.retries:
					add(f, fabOb{kind: obRetryCap, in: in})
				case fb.genField:
					add(f, fabOb{kind: obGenMono, in: in})
				case fb.done:
					if bval, ok := storeConstBool(f, in); !ok || !bval {
						fa.problem(fb, fabCallbackOnce, f, in.Pos,
							"the done latch must only ever be set to true: clearing or conditionally storing it re-arms a completed batch, so its callback could fire twice")
					}
				default:
					if fb.batch != nil && isElemAppend(in, fb.batch) {
						c.batchAppends++
					}
				}
			}
			for _, call := range b.Calls {
				if fb.cb != nil && call.Callee == nil && call.Builtin == "" {
					if base := chase(call.Base); base != nil {
						if base.Kind == VFieldRead && base.Obj == fb.cb {
							add(f, fabOb{kind: obCallbackFire, call: call})
						} else if base.Kind == VParam {
							if dk, ok := aliasParams[base.ResIdx]; ok {
								add(f, fabOb{kind: obCallbackFire, call: call, doneKey: dk})
							}
						}
					}
				}
				if fb.post != nil && f != fb.post {
					for _, obj := range fa.prog.calleesOf(call) {
						if fa.prog.ByObj[obj] == fb.post {
							add(f, fabOb{kind: obFreedCall, call: call})
							break
						}
					}
				}
			}
		}
	})
	return units, obs
}

// isRingAppend matches `x.ring = append(x.ring, ...)`.
func isRingAppend(fb *fabric, in *Instr) bool {
	a := chase(in.Addr)
	if a == nil || a.Kind != VFieldRead || a.Obj != fb.ring {
		return false
	}
	v := chase(in.Val)
	if v == nil || v.Kind != VCall || v.Builtin != "append" || len(v.Args) < 1 {
		return false
	}
	av := chase(v.Args[0])
	return av != nil && av.Kind == VFieldRead && av.Obj == fb.ring && samePlace(av.Base, a.Base)
}

// isElemAppend reports whether in appends values of (pointer-to-) batch
// type — a completion-registration site.
func isElemAppend(in *Instr, batch *types.Named) bool {
	v := chase(in.Val)
	if v == nil || v.Kind != VCall || v.Builtin != "append" || len(v.Args) < 2 {
		return false
	}
	t := v.Args[1].Type
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	return namedType(t) == batch
}

// ackSnapshot recognizes the drain idiom `x.ack = snap` where snap is a
// read of the same fabric's posted sequence taken before the apply: the
// ack then inherits seq-mono's monotonicity and never exceeds a posted
// sequence.
func ackSnapshot(fb *fabric, in *Instr) bool {
	v := chase(in.Val)
	if v == nil || v.Kind != VFieldRead || v.Obj != fb.postSeq {
		return false
	}
	a := chase(in.Addr)
	return a != nil && a.Kind == VFieldRead && samePlace(a.Base, v.Base)
}

// runUnit runs the numeric engine once over f and discharges every
// obligation bound to its events.
func (fa *fabAnalysis) runUnit(fb *fabric, f *Func, obs []fabOb, c *fabCounts) {
	byStore := make(map[*Instr][]fabOb)
	byCall := make(map[*Value][]fabOb)
	for _, ob := range obs {
		if ob.in != nil {
			byStore[ob.in] = append(byStore[ob.in], ob)
		}
		if ob.call != nil {
			byCall[ob.call] = append(byCall[ob.call], ob)
		}
	}
	hooks := absHooks{
		store: func(e *absEnv, b *IRBlock, in *Instr) {
			for _, ob := range byStore[in] {
				fa.checkStoreOb(fb, f, e, ob, c)
			}
		},
		call: func(e *absEnv, b *IRBlock, call *Value) {
			for _, ob := range byCall[call] {
				fa.checkCallOb(fb, f, e, ob, c)
			}
		},
	}
	if !absAnalyze(f, fa.prog, fa.sums, hooks) {
		for _, ob := range obs {
			pos := unitPos(f)
			if ob.in != nil {
				pos = ob.in.Pos
			} else if ob.call != nil {
				pos = ob.call.Pos
			}
			fa.problem(fb, obKey(ob.kind), f, pos,
				"the numeric analysis of %s did not stabilize, so this obligation is unproven", f.Name())
		}
	}
}

func obKey(kind int) string {
	switch kind {
	case obRingBound:
		return fabRingBound
	case obSeqMono:
		return fabSeqMono
	case obAckMono:
		return fabAckMono
	case obRetryCap:
		return fabRetryCap
	case obGenMono:
		return fabGenMono
	case obCallbackFire:
		return fabCallbackOnce
	case obFreedCall:
		return fabFreedFall
	}
	return fabRingBound
}

func (fa *fabAnalysis) checkStoreOb(fb *fabric, f *Func, e *absEnv, ob fabOb, c *fabCounts) {
	if e.infeasible() {
		return
	}
	in := ob.in
	a := chase(in.Addr)
	key, _ := atomKey(a)
	switch ob.kind {
	case obRingBound:
		t := e.atom(key+"#len", nil)
		u := e.upper(t)
		if u >= absInf {
			fa.problem(fb, fabRingBound, f, in.Pos,
				"ring append without a provable length bound: the ring may grow past its capacity instead of collapsing to a full flush")
			return
		}
		if fb.ringCap > 0 && u+1 > fb.ringCap {
			fa.problem(fb, fabRingBound, f, in.Pos,
				"ring append under pre-append bound %d admits %d entries, past the declared ring capacity %d", u, u+1, fb.ringCap)
			return
		}
		c.appends++
		if u > c.appendMax {
			c.appendMax = u
		}
	case obSeqMono, obGenMono:
		old := e.atom(key, addrType(a))
		nt := e.termOf(f, chase(in.Val))
		if e.diff(old, nt) > 0 {
			what := "posted sequence"
			if ob.kind == obGenMono {
				what = "TLB generation"
			}
			fa.problem(fb, obKey(ob.kind), f, in.Pos,
				"%s store is not provably non-decreasing: a regressing counter breaks the generation/ack matching every drain relies on", what)
			return
		}
		if ob.kind == obSeqMono {
			c.seqStores++
		} else {
			c.genStores++
		}
	case obAckMono:
		old := e.atom(key, addrType(a))
		nt := e.termOf(f, chase(in.Val))
		if e.diff(old, nt) > 0 {
			fa.problem(fb, fabAckMono, f, in.Pos,
				"ack sequence store is neither a drain-time snapshot of the posted sequence nor provably non-decreasing: a regressing ack re-opens completed batches")
			return
		}
		c.ackNumeric++
	case obRetryCap:
		nt := e.termOf(f, chase(in.Val))
		u := e.upper(nt)
		if u >= absInf || (fb.retryCap > 0 && u > fb.retryCap) {
			fa.problem(fb, fabRetryCap, f, in.Pos,
				"retry counter store has no provable bound under the declared cap: the watchdog's degrade-to-full ladder may never terminate")
			return
		}
		c.retryStores++
		if u > c.retryMax {
			c.retryMax = u
		}
	}
}

func (fa *fabAnalysis) checkCallOb(fb *fabric, f *Func, e *absEnv, ob fabOb, c *fabCounts) {
	if e.infeasible() {
		return
	}
	switch ob.kind {
	case obCallbackFire:
		dk := ob.doneKey
		if dk == "" && fb.done != nil {
			if base := chase(ob.call.Base); base != nil && base.Kind == VFieldRead {
				if bk, ok := atomKey(chase(base.Base)); ok {
					dk = bk + "." + fb.done.Name()
				}
			}
		}
		if dk != "" {
			if t, bound := e.bind[dk]; bound && e.lower(t) >= 1 {
				c.cbFires++
				return
			}
		}
		fa.problem(fb, fabCallbackOnce, f, ob.call.Pos,
			"completion callback may fire without the done latch provably set: without the latch a batch can complete twice and double-close its flush window")
	case obFreedCall:
		c.postSites++
		if envProvesFreedClear(e) {
			c.postLocal++
			return
		}
		fa.freedNeed[f] = append(fa.freedNeed[f], ob.call.Pos)
	}
}

// envProvesFreedClear reports whether the path proves some freed-tables
// flag is off (upper bound ≤ 0 on a "freed"-named atom).
func envProvesFreedClear(e *absEnv) bool {
	keys := make([]string, 0, len(e.bind))
	for k := range e.bind {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		seg := k
		if i := strings.LastIndex(k, "."); i >= 0 {
			seg = k[i+1:]
		}
		if !strings.Contains(strings.ToLower(seg), "freed") {
			continue
		}
		if e.upper(e.bind[k]) <= 0 {
			return true
		}
	}
	return false
}

// checkFreedPropagation discharges post calls that lacked a local
// freed-clear fact: every caller of the enclosing function must prove it
// at its own call site (one level — deeper nesting needs a waiver).
func (fa *fabAnalysis) checkFreedPropagation(fb *fabric, c *fabCounts) {
	if len(fa.freedNeed) == 0 {
		return
	}
	var needy []*Func
	fa.prog.eachUnit(func(f *Func) {
		if _, ok := fa.freedNeed[f]; ok {
			needy = append(needy, f)
		}
	})
	for _, n := range needy {
		target := n
		for target.Lit != nil {
			// A literal's callers are not resolvable through the call
			// graph; anchor the proof at the enclosing declaration.
			target = fa.prog.ByObj[target.Decl.Obj]
			if target == nil {
				break
			}
		}
		var callerUnits []*Func
		callerCalls := make(map[*Func][]*Value)
		if target != nil {
			fa.prog.eachUnit(func(f *Func) {
				if f == target {
					return
				}
				for _, b := range f.Blocks {
					for _, call := range b.Calls {
						for _, obj := range fa.prog.calleesOf(call) {
							if fa.prog.ByObj[obj] == target {
								if len(callerCalls[f]) == 0 {
									callerUnits = append(callerUnits, f)
								}
								callerCalls[f] = append(callerCalls[f], call)
								break
							}
						}
					}
				}
			})
		}
		if len(callerUnits) == 0 {
			for _, pos := range fa.freedNeed[n] {
				fa.problem(fb, fabFreedFall, n, pos,
					"asynchronous post is not dominated by a freed-tables check and the enclosing function has no analyzable caller to supply one: a table-freeing flush must stay on the synchronous ack path")
			}
			continue
		}
		for _, cu := range callerUnits {
			calls := callerCalls[cu]
			inSet := make(map[*Value]bool, len(calls))
			for _, call := range calls {
				inSet[call] = true
			}
			unit := cu
			ok := absAnalyze(cu, fa.prog, fa.sums, absHooks{
				call: func(e *absEnv, b *IRBlock, call *Value) {
					if !inSet[call] || e.infeasible() {
						return
					}
					if envProvesFreedClear(e) {
						c.postCallers++
						return
					}
					fa.problem(fb, fabFreedFall, unit, call.Pos,
						"call into the asynchronous post path without a freed-tables-clear fact on this path: a flush that frees page tables would be posted to the fabric instead of the synchronous ack path")
				},
			})
			if !ok {
				fa.problem(fb, fabFreedFall, cu, unitPos(cu),
					"the numeric analysis of %s did not stabilize, so the freed-tables fallback obligation is unproven", cu.Name())
			}
		}
	}
}

// --- overflow coverage (CFG reachability) ---

// checkOverflow proves that from the posted-sequence increment, every
// path performs a ring append, a merge, or a full-flush collapse before
// leaving the function.
func (fa *fabAnalysis) checkOverflow(fb *fabric, f *Func, st *Instr) {
	type ev struct {
		in   *Instr
		call *Value
		pos  token.Pos
	}
	eventsOf := func(b *IRBlock) []ev {
		var evs []ev
		for _, call := range b.Calls {
			evs = append(evs, ev{call: call, pos: call.Pos})
		}
		for _, in := range b.Instrs {
			evs = append(evs, ev{in: in, pos: in.Pos})
		}
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		return evs
	}
	isAction := func(x ev) bool {
		if x.in != nil && x.in.Kind == IStore {
			a := chase(x.in.Addr)
			if a != nil && a.Kind == VFieldRead {
				if a.Obj == fb.ring && isRingAppend(fb, x.in) {
					return true
				}
				if a.Obj == fb.full {
					if bval, ok := storeConstBool(f, x.in); ok && bval {
						return true
					}
				}
			}
		}
		if x.call != nil && fb.merge != nil {
			for _, obj := range fa.prog.calleesOf(x.call) {
				if fa.prog.ByObj[obj] == fb.merge {
					return true
				}
			}
		}
		return false
	}
	covered := func(evs []ev, from int) bool {
		for _, x := range evs[from:] {
			if isAction(x) {
				return true
			}
		}
		return false
	}
	var startB *IRBlock
	startIdx := -1
	for _, b := range f.Blocks {
		for i, x := range eventsOf(b) {
			if x.in == st {
				startB, startIdx = b, i
			}
		}
	}
	if startB == nil {
		return
	}
	if covered(eventsOf(startB), startIdx+1) {
		return
	}
	seen := map[*IRBlock]bool{startB: true}
	queue := append([]*IRBlock{}, startB.Succs...)
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if seen[b] {
			continue
		}
		seen[b] = true
		if b == f.Exit {
			fa.problem(fb, fabRingOverflow, f, st.Pos,
				"a path from this posted-sequence increment leaves the function without a ring append, a merge, or the full-flush collapse: the target could ack a sequence whose invalidation was never queued")
			return
		}
		if covered(eventsOf(b), 0) {
			continue
		}
		queue = append(queue, b.Succs...)
	}
}

// --- coalescing soundness ---

// checkCoalesce proves the merge function sound per guard disjunct: at
// every feasible path end the merged element is full or its range
// contains both inputs' entry ranges.
func (fa *fabAnalysis) checkCoalesce(fb *fabric, c *fabCounts) {
	if fb.merge == nil {
		return
	}
	p0 := "p:" + itoa(fb.mergeP0)
	p1 := "p:" + itoa(fb.mergeP1)
	var ghost []string
	for _, fld := range []*types.Var{fb.elemStart, fb.elemEnd, fb.elemFull} {
		if fld == nil {
			continue
		}
		ghost = append(ghost, p0+"."+fld.Name(), p1+"."+fld.Name())
	}
	var seeds [][]absFact
	if fb.guard != nil {
		for _, d := range fa.sums.trueFacts(fb.guard) {
			var keep []absFact
			for _, fct := range d {
				if paramFact(fct.a) && paramFact(fct.b) {
					keep = append(keep, fct)
				}
			}
			seeds = append(seeds, keep)
		}
	}
	if len(seeds) == 0 {
		seeds = [][]absFact{nil}
	}
	witnessSeen := make(map[string]bool)
	for _, seed := range seeds {
		// Trivial self-facts materialize the entry (ghost) terms the
		// containment check compares the final state against.
		for _, g := range ghost {
			seed = append(seed, absFact{a: g, b: g, c: 0})
		}
		end := func(e *absEnv, pos token.Pos) {
			fa.checkMergeEnd(fb, e, pos, p0, p1, witnessSeen, c)
		}
		ok := absAnalyze(fb.merge, fa.prog, fa.sums, absHooks{
			seed: seed,
			ret: func(e *absEnv, b *IRBlock, in *Instr) {
				end(e, in.Pos)
			},
			blockNd: func(e *absEnv, b *IRBlock) {
				if b == fb.merge.Exit {
					return
				}
				exitSucc, hasRet := false, false
				for _, s := range b.Succs {
					if s == fb.merge.Exit {
						exitSucc = true
					}
				}
				for _, in := range b.Instrs {
					if in.Kind == IReturn {
						hasRet = true
					}
				}
				if exitSucc && !hasRet {
					end(e, blockPos(b, fb.merge))
				}
			},
		})
		if !ok {
			fa.problem(fb, fabCoalesce, fb.merge, unitPos(fb.merge),
				"the numeric analysis of the merge function did not stabilize, so coalescing soundness is unproven")
		}
	}
	if fb.brokenField != "" && len(witnessSeen) != 1 {
		fa.problem(fb, fabCoalesce, fb.merge, unitPos(fb.merge),
			"seeded violation miscount: expected the %s variant to surface exactly one coverage-loss witness, got %d — the static and dynamic tiers no longer agree on the seeded bug", fb.brokenField, len(witnessSeen))
	}
	c.witnessed = len(witnessSeen) == 1
}

func paramFact(a string) bool {
	return a == "" || strings.HasPrefix(a, "p:")
}

func (fa *fabAnalysis) checkMergeEnd(fb *fabric, e *absEnv, pos token.Pos, p0, p1 string, witnessSeen map[string]bool, c *fabCounts) {
	if e.infeasible() {
		return
	}
	if fb.elemFull != nil {
		if t, ok := e.bind[p0+"."+fb.elemFull.Name()]; ok && e.lower(t) >= 1 {
			c.paths++
			return
		}
	}
	if fb.elemStart != nil && fb.elemEnd != nil {
		sName, eName := fb.elemStart.Name(), fb.elemEnd.Name()
		curS := e.atom(p0+"."+sName, nil)
		curE := e.atom(p0+"."+eName, nil)
		entS0, ok1 := e.dom.atomT["|"+p0+"."+sName]
		entS1, ok2 := e.dom.atomT["|"+p1+"."+sName]
		entE0, ok3 := e.dom.atomT["|"+p0+"."+eName]
		entE1, ok4 := e.dom.atomT["|"+p1+"."+eName]
		if ok1 && ok2 && ok3 && ok4 &&
			e.diff(curS, entS0) <= 0 && e.diff(curS, entS1) <= 0 &&
			e.diff(entE0, curE) <= 0 && e.diff(entE1, curE) <= 0 {
			c.paths++
			return
		}
	}
	file, line := fa.ctx.posLine(fb.merge.Decl, pos)
	if bk := brokenAtom(e); bk != "" {
		key := fmt.Sprintf("%s:%d", file, line)
		if !witnessSeen[key] {
			witnessSeen[key] = true
			fa.witnesses = append(fa.witnesses, lint.Finding{
				File: file, Line: line, Analyzer: "fabproof",
				Msg: fmt.Sprintf("coalesce coverage loss seeded by the config-planted %s variant: the merged ring entry adopts the newer end and stops covering the older entry's tail — the exact shrink the shadow-TLB oracle convicts as a stale translation", bk),
			})
		}
		return
	}
	fa.problem(fb, fabCoalesce, fb.merge, pos,
		"coalesce merge may lose coverage: on this feasible path the merged entry is neither provably full nor provably spanning both inputs' ranges, so a drained target would skip invalidations the initiator believes posted")
}

// brokenAtom returns the "broken"-tagged knob the current path proved
// set, identifying a config-seeded variant path.
func brokenAtom(e *absEnv) string {
	keys := make([]string, 0, len(e.bind))
	for k := range e.bind {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		seg := k
		if i := strings.LastIndex(k, "."); i >= 0 {
			seg = k[i+1:]
		}
		if strings.Contains(strings.ToLower(seg), "broken") && e.lower(e.bind[k]) >= 1 {
			return seg
		}
	}
	return ""
}

// --- entry literal well-formedness ---

func (fa *fabAnalysis) checkInvalWF(fb *fabric, c *fabCounts) {
	fa.prog.eachUnit(func(f *Func) {
		for _, v := range f.Values() {
			if v.Kind != VComposite || namedType(v.Type) != fb.elem {
				continue
			}
			c.composites++
			fa.checkElemComposite(fb, f, v)
		}
	})
}

func (fa *fabAnalysis) checkElemComposite(fb *fabric, f *Func, v *Value) {
	cl, ok := v.Expr.(*ast.CompositeLit)
	if !ok {
		return
	}
	elt := func(field *types.Var) *Value {
		if field == nil {
			return nil
		}
		st, _ := fb.elem.Underlying().(*types.Struct)
		for i, el := range cl.Elts {
			if i >= len(v.Args) {
				break
			}
			if kv, isKV := el.(*ast.KeyValueExpr); isKV {
				if id, isID := kv.Key.(*ast.Ident); isID && id.Name == field.Name() {
					return v.Args[i]
				}
				continue
			}
			if st != nil && i < st.NumFields() && st.Field(i) == field {
				return v.Args[i]
			}
		}
		return nil
	}
	if fv := elt(fb.elemFull); fv != nil {
		if cb, ok := constInt(f, chase(fv)); ok && cb != 0 {
			return // a full entry's range and generations are vacuous
		}
	}
	lo, hi := elt(fb.elemGenLo), elt(fb.elemGenHi)
	bad := func() {
		fa.problem(fb, fabInvalWF, f, v.Pos,
			"ring entry literal with an ill-formed generation run (GenLo not provably ≤ GenHi): a drain applying it would advance the target's generation past changes it never flushed")
	}
	switch {
	case lo == nil:
		// zero GenLo is ≤ any unsigned GenHi
	case hi == nil:
		if cv, ok := constInt(f, chase(lo)); !ok || cv != 0 {
			bad()
		}
	case samePlace(lo, hi):
		// identical generation expressions: a single-generation run
	default:
		cl, okl := constInt(f, chase(lo))
		ch, okh := constInt(f, chase(hi))
		if !okl || !okh || cl > ch {
			bad()
		}
	}
}

// --- reporting ---

func unitPos(f *Func) token.Pos {
	if f == nil {
		return token.NoPos
	}
	if f.Lit != nil {
		return f.Lit.Pos()
	}
	return f.Decl.Decl.Name.Pos()
}

func blockPos(b *IRBlock, f *Func) token.Pos {
	pos := token.NoPos
	for _, in := range b.Instrs {
		if in.Pos > pos {
			pos = in.Pos
		}
	}
	for _, call := range b.Calls {
		if call.Pos > pos {
			pos = call.Pos
		}
	}
	if !pos.IsValid() {
		return unitPos(f)
	}
	return pos
}

// problem records one obligation failure: waived into a suppression when
// a "bounded-by-design:" marker covers the line, a finding otherwise.
func (fa *fabAnalysis) problem(fb *fabric, prop string, f *Func, pos token.Pos, format string, args ...any) {
	rk := prop + "|" + fb.subject(prop)
	file, line := "internal/smp/fabric.go", 1
	if f != nil && pos.IsValid() {
		file, line = fa.ctx.posLine(f.Decl, pos)
	}
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%s:%d:%s", file, line, msg)
	if fa.reported[key] {
		return
	}
	fa.reported[key] = true
	if reason, ok := fa.ctx.fabMarkerFor(file, line); ok {
		fa.sups = append(fa.sups, Suppression{
			File: file, Line: line, Analyzer: "fabproof", Reason: reason,
		})
		fa.rowWaived[rk] = true
		return
	}
	fa.findings = append(fa.findings, lint.Finding{
		File: file, Line: line, Analyzer: "fabproof", Msg: msg,
	})
	fa.rowBad[rk] = true
}

func (fa *fabAnalysis) appendRows(fb *fabric, c *fabCounts) {
	add := func(prop, detail string) {
		subject := fb.subject(prop)
		rk := prop + "|" + subject
		status := "proven"
		if fa.rowWaived[rk] {
			status = "waived"
		}
		if fa.rowBad[rk] {
			status = "unproven"
		}
		fa.rows = append(fa.rows, FabRow{
			Key: prop, Subject: subject, Property: fabProps[prop],
			Status: status, Detail: detail,
		})
	}
	capNote := ""
	if fb.ringCap > 0 && c.appendMax+1 == fb.ringCap {
		capNote = " = the declared ring capacity"
	}
	add(fabRingBound, fmt.Sprintf("%d append site(s), each under a provable pre-append length bound of %d (post-append ≤ %d%s)",
		c.appends, c.appendMax, c.appendMax+1, capNote))
	add(fabRingOverflow, fmt.Sprintf("%d posted-sequence increment(s): every path appends, merges, or collapses to full before returning", c.seqStores))
	add(fabSeqMono, fmt.Sprintf("%d store site(s), each provably non-decreasing", c.seqStores))
	add(fabAckMono, fmt.Sprintf("%d drain snapshot store(s), %d numerically non-decreasing store(s); ack ≤ posted by seq monotonicity", c.ackSnapshots, c.ackNumeric))
	if fb.genField != nil {
		add(fabGenMono, fmt.Sprintf("%d store site(s), each provably non-decreasing", c.genStores))
	}
	if fb.retries != nil {
		add(fabRetryCap, fmt.Sprintf("%d store site(s), each under the declared cap of %d", c.retryStores, fb.retryCap))
	}
	if fb.merge != nil {
		guardName := "no guard predicate"
		if fb.guard != nil {
			guardName = "each " + fb.guard.Name() + " disjunct"
		}
		wit := ""
		if c.witnessed {
			wit = fmt.Sprintf("; seeded %s witnessed", fb.brokenField)
		}
		add(fabCoalesce, fmt.Sprintf("%d feasible path end(s) proven full-or-containing under %s%s", c.paths, guardName, wit))
	}
	if fb.batch != nil {
		add(fabCallbackOnce, fmt.Sprintf("%d fire site(s) behind the done latch; latch never cleared; %d registration append site(s)", c.cbFires, c.batchAppends))
	}
	if fb.post != nil {
		add(fabFreedFall, fmt.Sprintf("%d post call site(s): %d locally guarded, %d discharged at caller call sites", c.postSites, c.postLocal, c.postCallers))
	}
	add(fabInvalWF, fmt.Sprintf("%d entry literal(s), each full or with a well-formed generation run", c.composites))
}
