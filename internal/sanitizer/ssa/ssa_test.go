package ssa

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"shootdown/internal/sanitizer/lint"
	"shootdown/internal/sanitizer/typedlint"
	"shootdown/internal/sched"
)

// The module is typechecked once and shared: loading is the expensive
// part, the analyzers are read-only over the loaded data.
var (
	modOnce sync.Once
	mod     *Module
	modErr  error
)

func sharedModule(t *testing.T) *Module {
	t.Helper()
	modOnce.Do(func() { mod, modErr = typedlint.LoadModule() })
	if modErr != nil {
		t.Fatalf("LoadModule: %v", modErr)
	}
	return mod
}

func checkFixture(t *testing.T, name string) *Result {
	t.Helper()
	res, err := CheckFixture(sharedModule(t), filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("CheckFixture(%s): %v", name, err)
	}
	return res
}

func countBy(fs []lint.Finding, analyzer string) int {
	n := 0
	for _, f := range fs {
		if f.Analyzer == analyzer {
			n++
		}
	}
	return n
}

func TestFlushObligationFixtureFires(t *testing.T) {
	res := checkFixture(t, "bad_flushobligation.go")
	if got := countBy(res.Findings, "flushobligation"); got != 1 {
		t.Fatalf("flushobligation findings = %d, want exactly 1: %v", got, res.Findings)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("total findings = %d, want 1: %v", len(res.Findings), res.Findings)
	}
	if !strings.Contains(res.Findings[0].Msg, "as.Unmap") {
		t.Fatalf("finding should name the creating call: %v", res.Findings[0])
	}
}

func TestFlushObligationGoodFixtureClean(t *testing.T) {
	res := checkFixture(t, "good_flushobligation.go")
	if len(res.Findings) != 0 {
		t.Fatalf("good fixture should be clean, got %v", res.Findings)
	}
	if len(res.Suppressions) != 1 {
		t.Fatalf("suppressions = %d, want exactly 1 (the marker): %v", len(res.Suppressions), res.Suppressions)
	}
	if s := res.Suppressions[0]; s.Analyzer != "flushobligation" || !strings.Contains(s.Reason, "full-flushes") {
		t.Fatalf("unexpected suppression: %+v", s)
	}
}

func TestLockOrderFixtureFires(t *testing.T) {
	res := checkFixture(t, "bad_lockorder.go")
	if got := countBy(res.Findings, "lockorder"); got != 1 {
		t.Fatalf("lockorder findings = %d, want exactly 1: %v", got, res.Findings)
	}
	f := res.Findings[0]
	if !strings.Contains(f.Msg, "cycle") || !strings.Contains(f.Msg, "twoLocks.a") || !strings.Contains(f.Msg, "twoLocks.b") {
		t.Fatalf("cycle finding should name both lock classes: %v", f)
	}
}

func TestIPIStateWaitWithoutKickFires(t *testing.T) {
	res := checkFixture(t, "bad_ipistate.go")
	if got := countBy(res.Findings, "ipistate"); got != 1 {
		t.Fatalf("ipistate findings = %d, want exactly 1: %v", got, res.Findings)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("total findings = %d, want 1: %v", len(res.Findings), res.Findings)
	}
	if !strings.Contains(res.Findings[0].Msg, "wait before kick") {
		t.Fatalf("finding should name the skipped DFA edge: %v", res.Findings[0])
	}
}

func TestIPIStateDoubleDischargeFires(t *testing.T) {
	res := checkFixture(t, "bad_ipistate_double.go")
	if got := countBy(res.Findings, "ipistate"); got != 1 {
		t.Fatalf("ipistate findings = %d, want exactly 1: %v", got, res.Findings)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("total findings = %d, want 1: %v", len(res.Findings), res.Findings)
	}
	if !strings.Contains(res.Findings[0].Msg, "double discharge") {
		t.Fatalf("finding should name the repeated discharge: %v", res.Findings[0])
	}
}

func TestIPIStateGoodFixtureClean(t *testing.T) {
	res := checkFixture(t, "good_ipistate.go")
	if len(res.Findings) != 0 {
		t.Fatalf("lifecycle fixture should be clean (kick+wait, recovery ladder, both transfer edges), got %v", res.Findings)
	}
}

func TestDetFlowDigestFixtureFires(t *testing.T) {
	res := checkFixture(t, "bad_detflow.go")
	if got := countBy(res.Findings, "detflow"); got != 1 {
		t.Fatalf("detflow findings = %d, want exactly 1: %v", got, res.Findings)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("total findings = %d, want 1: %v", len(res.Findings), res.Findings)
	}
	f := res.Findings[0]
	if !strings.Contains(f.Msg, "StateDigest") || !strings.Contains(f.Msg, "wall clock") {
		t.Fatalf("finding should name the digest sink and the clock source: %v", f)
	}
}

func TestDetFlowGoodFixtureClean(t *testing.T) {
	res := checkFixture(t, "good_detflow.go")
	if len(res.Findings) != 0 {
		t.Fatalf("sorted-iteration fixture should be clean, got %v", res.Findings)
	}
}

func TestLocksetUnprovenAckFires(t *testing.T) {
	res := checkFixture(t, "bad_lockset.go")
	if got := countBy(res.Findings, "lockset"); got != 1 {
		t.Fatalf("lockset findings = %d, want exactly 1: %v", got, res.Findings)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("total findings = %d, want 1: %v", len(res.Findings), res.Findings)
	}
	f := res.Findings[0]
	if !strings.Contains(f.Msg, "mm.pt-nodes") || !strings.Contains(f.Msg, "FreedTables") {
		t.Fatalf("finding should name the ack-ordered entry and its guard: %v", f)
	}
}

func TestLocksetGoodFixtureClean(t *testing.T) {
	res := checkFixture(t, "good_lockset.go")
	if len(res.Findings) != 0 {
		t.Fatalf("guarded fixture should be clean, got %v", res.Findings)
	}
	if len(res.Suppressions) != 1 {
		t.Fatalf("suppressions = %d, want exactly 1 (the waiver): %v", len(res.Suppressions), res.Suppressions)
	}
	if s := res.Suppressions[0]; s.Analyzer != "lockset" || !strings.Contains(s.Reason, "scratch") {
		t.Fatalf("unexpected suppression: %+v", s)
	}
}

func TestMHPBlockingFixtureFires(t *testing.T) {
	res := checkFixture(t, "bad_mhp.go")
	if got := countBy(res.Findings, "mhp"); got != 1 {
		t.Fatalf("mhp findings = %d, want exactly 1: %v", got, res.Findings)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("total findings = %d, want 1: %v", len(res.Findings), res.Findings)
	}
	f := res.Findings[0]
	if !strings.Contains(f.Msg, "DownRead") || !strings.Contains(f.Msg, "IPI-handler") {
		t.Fatalf("finding should name the blocking primitive and the context: %v", f)
	}
}

func TestStaleLockMarkerFires(t *testing.T) {
	res := checkFixture(t, "bad_lockmarker.go")
	if got := countBy(res.Findings, "stalemarker"); got != 1 {
		t.Fatalf("stalemarker findings = %d, want exactly 1: %v", got, res.Findings)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("total findings = %d, want 1: %v", len(res.Findings), res.Findings)
	}
	if !strings.Contains(res.Findings[0].Msg, "lock-free-by-design") {
		t.Fatalf("finding should name the marker vocabulary: %v", res.Findings[0])
	}
}

// TestLocksetBrokenEarlyAckWitness is the cross-validation contract: on
// the clean module the lockset prover must rediscover the config-seeded
// BrokenEarlyAck violation — as exactly one witness, on the same field
// the dynamic race model blames (mm.pt-nodes), at the forced early-ack
// assignment in core's Flusher — while producing zero findings.
func TestLocksetBrokenEarlyAckWitness(t *testing.T) {
	res := CheckModule(sharedModule(t))
	if len(res.Findings) != 0 {
		t.Fatalf("module should be clean, got %v", res.Findings)
	}
	var lockWits []lint.Finding
	for _, w := range res.Witnesses {
		if w.Analyzer == "lockset" {
			lockWits = append(lockWits, w)
		}
	}
	if len(lockWits) != 1 {
		t.Fatalf("lockset witnesses = %d, want exactly 1 (the seeded BrokenEarlyAck site): %v", len(lockWits), res.Witnesses)
	}
	w := lockWits[0]
	if !strings.Contains(w.File, "internal/core/flusher.go") {
		t.Fatalf("witness should sit in the Flusher: %v", w)
	}
	for _, want := range []string{"mm.pt-nodes", "BrokenEarlyAck", "FreedTables"} {
		if !strings.Contains(w.Msg, want) {
			t.Fatalf("witness message should mention %q: %v", want, w)
		}
	}
}

// TestXValAllProven asserts every race-registry entry is statically
// discharged on the clean tree — the rows CI publishes as RACE_XVAL.txt.
func TestXValAllProven(t *testing.T) {
	res := CheckModule(sharedModule(t))
	if len(res.XVal) == 0 {
		t.Fatal("expected one XVal row per registry entry, got none")
	}
	for i, r := range res.XVal {
		if r.Status != "proven" {
			t.Errorf("entry %s: status = %q, want proven (%s)", r.Key, r.Status, r.Detail)
		}
		if i > 0 && res.XVal[i-1].Key >= r.Key {
			t.Errorf("XVal rows out of order: %s before %s", res.XVal[i-1].Key, r.Key)
		}
	}
}

// TestRepoIsCleanWithoutWaivers is the tier's bar: the whole tree passes
// every ssa analyzer with zero findings AND zero suppressions — the
// parallel-safe markers the syntactic tier needed are gone, replaced by
// the whole-program restore-discipline proof.
func TestRepoIsCleanWithoutWaivers(t *testing.T) {
	res := CheckModule(sharedModule(t))
	if len(res.Findings) != 0 {
		t.Fatalf("repository should be clean, got %d finding(s):\n%v", len(res.Findings), res.Findings)
	}
	if len(res.Suppressions) != 0 {
		t.Fatalf("repository should need no suppression markers, got %v", res.Suppressions)
	}
}

// TestWholeProgramCoverageFloor asserts the interprocedural analyzers
// visited at least every function the typedlint tier sees — a silently
// narrowed walk (a lost package, an early bail) cannot pass as "clean".
func TestWholeProgramCoverageFloor(t *testing.T) {
	m := sharedModule(t)
	floor := typedlint.CheckModule(m).FuncsVisited
	if floor == 0 {
		t.Fatal("typedlint visited 0 functions — the floor itself is broken")
	}
	res := CheckModule(m)
	for _, an := range []string{"ipistate", "detflow", "parallelsafe", "mhp", "lockset", "fabproof"} {
		if got := res.FuncsVisited[an]; got < floor {
			t.Fatalf("%s visited %d functions, below the typedlint floor %d", an, got, floor)
		}
	}
}

// renderReport formats a Result exactly like cmd/tlbvet prints it.
func renderReport(res *Result) string {
	var b strings.Builder
	for _, f := range res.Findings {
		fmt.Fprintln(&b, f.String())
	}
	for _, w := range res.Witnesses {
		fmt.Fprintf(&b, "%s:%d: %s: witness: %s\n", w.File, w.Line, w.Analyzer, w.Msg)
	}
	for _, s := range res.Suppressions {
		fmt.Fprintf(&b, "%s:%d: %s: suppressed: %s\n", s.File, s.Line, s.Analyzer, s.Reason)
	}
	for _, r := range res.FabRows {
		fmt.Fprintf(&b, "%s | %s | %s | %s\n", r.Key, r.Subject, r.Status, r.Detail)
	}
	return b.String()
}

// TestVetOutputParallelGolden is the golden scheduling test: the combined
// two-tier report (typedlint + ssa, fanned out on the sched pool exactly
// like cmd/tlbvet -parallel) is byte-identical at 1 worker and 8 workers.
func TestVetOutputParallelGolden(t *testing.T) {
	m := sharedModule(t)
	fp1, err := m.LoadFixture(filepath.Join("testdata", "bad_ipistate.go"))
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := m.LoadFixture(filepath.Join("testdata", "bad_detflow.go"))
	if err != nil {
		t.Fatal(err)
	}
	fp3, err := m.LoadFixture(filepath.Join("testdata", "bad_fabproof.go"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs := append(append([]*Package{}, m.Pkgs...), fp1, fp2, fp3)

	report := func() string {
		outs := sched.Collect(2, func(i int) string {
			if i == 0 {
				tr := typedlint.CheckModule(m)
				var b strings.Builder
				for _, f := range tr.Findings {
					fmt.Fprintln(&b, f.String())
				}
				return b.String()
			}
			return renderReport(run(m, pkgs, nil, nil))
		})
		return strings.Join(outs, "")
	}

	prev := sched.SetWorkers(1)
	defer sched.SetWorkers(prev)
	one := report()
	sched.SetWorkers(8)
	eight := report()

	if one == "" {
		t.Fatal("expected findings from the loaded fixtures")
	}
	if one != eight {
		t.Fatalf("-parallel 1 and -parallel 8 reports differ:\n%s\nvs:\n%s", one, eight)
	}
}
