package ssa

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"shootdown/internal/sanitizer/lint"
)

// parallelsafe is the whole-program successor to lint's syntactic
// parallelsafety rule. The syntactic tier sees one file at a time, so the
// tree used to carry "parallel-safe:" waivers on package-level vars whose
// safety argument (a save/restore setter discipline) it could not check.
// This analyzer proves the discipline over the SSA form of the entire
// module:
//
//   - every store to the var must happen inside a restore-disciplined
//     setter — a function that saves the old value into a local, writes
//     the var, and returns a closure restoring the saved value — or
//     inside that returned restore closure itself;
//   - stores through aliases (field chains, index expressions, pointers
//     rooted at the var) count as stores.
//
// A var that passes the proof needs no waiver, so any remaining
// "parallel-safe:" marker on it is reported as stale. A var that fails
// the proof is reported at every undisciplined store site; a marker
// downgrades those findings to suppressions, exactly like the
// obligation-transferred flow in flushobligation.
const parallelSafeMarker = "parallel-safe:"

// psVar is one package-level var in a simulated package.
type psVar struct {
	obj        *types.Var
	file       string
	line       int
	marker     bool
	markerLine int
	reason     string
}

// psStore is one store to a tracked var.
type psStore struct {
	unit  *Func
	instr *Instr
}

// checkParallelSafe proves restore discipline for package-level vars in
// simulated packages and retires stale parallel-safe markers.
func checkParallelSafe(ctx *modCtx) ([]lint.Finding, []Suppression) {
	prog := ctx.program()
	vars := collectSimGlobals(ctx)
	if len(vars) == 0 {
		return nil, nil
	}
	byObj := make(map[*types.Var]*psVar, len(vars))
	for _, v := range vars {
		byObj[v.obj] = v
	}

	// Gather every store to a tracked var, and the unit parentage needed
	// to recognise restore closures.
	parent := make(map[*Func]*Func)
	stores := make(map[*types.Var][]psStore)
	prog.eachUnit(func(f *Func) {
		if f.Lit == nil {
			ctx.visited["parallelsafe"]++
		}
		for _, lit := range f.Lits {
			parent[lit] = f
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Kind != IStore {
					continue
				}
				root := storeRoot(in.Addr)
				if root == nil || root.Kind != VGlobal || root.Obj == nil {
					continue
				}
				if _, tracked := byObj[root.Obj]; tracked {
					stores[root.Obj] = append(stores[root.Obj], psStore{unit: f, instr: in})
				}
			}
		}
	})

	var findings []lint.Finding
	var sups []Suppression
	for _, v := range vars {
		var bad []psStore
		for _, st := range stores[v.obj] {
			if storeDisciplined(st, v.obj, parent) {
				continue
			}
			bad = append(bad, st)
		}
		switch {
		case len(bad) == 0 && v.marker:
			findings = append(findings, lint.Finding{
				File: v.file, Line: v.markerLine, Analyzer: "parallelsafe",
				Msg: fmt.Sprintf("stale %q marker on %q: every store is inside a restore-disciplined setter, proven whole-program; delete the marker", parallelSafeMarker, v.obj.Name()),
			})
		case len(bad) > 0 && v.marker:
			sups = append(sups, Suppression{
				File: v.file, Line: v.line, Analyzer: "parallelsafe", Reason: v.reason,
			})
		case len(bad) > 0:
			for _, st := range bad {
				file, line := ctx.posLine(st.unit.Decl, st.instr.Pos)
				findings = append(findings, lint.Finding{
					File: file, Line: line, Analyzer: "parallelsafe",
					Msg: fmt.Sprintf("package-level var %q written outside a restore-disciplined setter: worlds run concurrently under internal/sched, so this store races across experiment cells", v.obj.Name()),
				})
			}
		}
	}
	return findings, sups
}

// collectSimGlobals lists the mutable package-level vars declared in
// simulated packages, skipping error sentinels.
func collectSimGlobals(ctx *modCtx) []*psVar {
	var out []*psVar
	for _, p := range ctx.pkgs {
		if !lint.InParallelScope(p.Dir + "/") {
			continue
		}
		for i, f := range p.Files {
			rel := p.FileNames[i]
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				declReason, declOK := markerReason(gd.Doc)
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || lint.IsErrorSentinel(vs) {
						continue
					}
					reason, has := declReason, declOK
					doc := gd.Doc
					if r, ok := markerReason(vs.Doc); ok {
						reason, has, doc = r, true, vs.Doc
					}
					for _, id := range vs.Names {
						if id.Name == "_" {
							continue
						}
						obj, _ := p.Info.Defs[id].(*types.Var)
						if obj == nil {
							continue
						}
						pv := &psVar{
							obj:    obj,
							file:   rel,
							line:   ctx.m.Fset.Position(id.Pos()).Line,
							marker: has,
							reason: reason,
						}
						if has && doc != nil {
							pv.markerLine = ctx.m.Fset.Position(doc.End()).Line
						}
						out = append(out, pv)
					}
				}
			}
		}
	}
	return out
}

// markerReason extracts the justification after a parallel-safe marker.
func markerReason(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	text := doc.Text()
	idx := strings.Index(text, parallelSafeMarker)
	if idx < 0 {
		return "", false
	}
	reason := strings.TrimSpace(text[idx+len(parallelSafeMarker):])
	if nl := strings.IndexByte(reason, '\n'); nl >= 0 {
		reason = strings.TrimSpace(reason[:nl])
	}
	return reason, true
}

// storeRoot chases a store address through field/index/pointer chains to
// the value that names the stored-into location.
func storeRoot(v *Value) *Value {
	for v != nil {
		switch v.Kind {
		case VFieldRead, VIndexRead, VAddr, VDeref:
			v = v.Base
		default:
			return v
		}
	}
	return nil
}

// chase looks through passthrough value kinds.
func chase(v *Value) *Value {
	for v != nil {
		switch v.Kind {
		case VAddr, VDeref:
			v = v.Base
		default:
			return v
		}
	}
	return nil
}

// storeDisciplined reports whether st is a sanctioned write to g: either
// the unit is a restore-disciplined setter for g, or the unit is the
// restore closure such a setter returned.
func storeDisciplined(st psStore, g *types.Var, parent map[*Func]*Func) bool {
	if isRestoreSetter(st.unit, g) {
		return true
	}
	if p := parent[st.unit]; p != nil && closureRestores(st.unit, p, g) {
		return true
	}
	return false
}

// isRestoreSetter reports whether f returns a closure restoring g from a
// local that saved g's previous value.
func isRestoreSetter(f *Func, g *types.Var) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Kind != IReturn {
				continue
			}
			for _, res := range in.Results {
				c := chase(res)
				if c == nil || c.Kind != VClosure || c.Unit == nil {
					continue
				}
				if closureRestores(c.Unit, f, g) {
					return true
				}
			}
		}
	}
	return false
}

// closureRestores reports whether literal unit cl stores into g a value it
// captured from parent, where that captured local was defined by reading g
// — i.e. cl is the `func() { g = prev }` half of the discipline.
func closureRestores(cl *Func, parent *Func, g *types.Var) bool {
	for _, b := range cl.Blocks {
		for _, in := range b.Instrs {
			if in.Kind != IStore {
				continue
			}
			root := storeRoot(in.Addr)
			if root == nil || root.Kind != VGlobal || root.Obj != g {
				continue
			}
			val := chase(in.Val)
			if val == nil || val.Kind != VFree || val.Obj == nil {
				continue
			}
			for _, def := range parent.defs[val.Obj] {
				if d := chase(def); d != nil && d.Kind == VGlobal && d.Obj == g {
					return true
				}
			}
		}
	}
	return false
}
