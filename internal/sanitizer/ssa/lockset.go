package ssa

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"shootdown/internal/race"
	"shootdown/internal/sanitizer/lint"
)

// lockset is the RacerD-style discharge prover for the dynamic race
// model's instrumented fields. The contract runs in both directions:
//
//   - internal/race.Registry() declares every shared location the
//     simulator instruments, with the synchronization discipline the
//     model relies on (atomic hooks, CPU confinement, ack ordering, or a
//     single-writer epoch);
//   - this analyzer finds every detector call site in the module, maps
//     it back to its registry entry, and proves the declared discipline
//     over all paths — or reports the exact access that breaks it.
//
// A field the dynamic detector would catch racing on a bad schedule must
// therefore be caught here on *every* schedule; a field this analyzer
// proves disciplined cannot race in any run the model admits. The
// cross-validation artifact (RACE_XVAL, one row per registry entry) is
// how CI holds the two tiers to the same story.
//
// The seeded fault is part of the contract: Config.BrokenEarlyAck
// deliberately acks before the flush while page tables are being freed,
// which the dynamic model reports as a race on mm.pt-nodes. Statically,
// the same violation surfaces as the one ack-ordering discharge this
// prover cannot complete — recorded as a *witness* (not a finding,
// because the breakage is intentional and config-gated) and required to
// exist exactly once, at the seeded site. Zero witnesses would mean the
// static tier lost the bug the dynamic tier still sees; more than one
// would mean a real violation is hiding behind the seeded one.
//
// Accesses the prover cannot justify can carry a "lock-free-by-design:"
// waiver marker; stalemarker flags any such marker nothing consumed.

const racePkg = modPath + "/internal/race"

// XValRow is one line of the cross-validation report: a registry entry
// and the static discharge status of its discipline.
type XValRow struct {
	// Key and Var identify the registry entry.
	Key string
	Var string
	// Discipline is the declared synchronization discipline.
	Discipline string
	// Status is "proven", "waived" (discharged by a lock-free-by-design
	// marker) or "unproven" (an undischarged finding exists; CI fails).
	Status string
	// Detail is the one-line proof summary (site counts, witness site).
	Detail string
}

// lockSite is one detector call resolved to a registry entry.
type lockSite struct {
	f      *Func
	call   *Value
	flavor string // the Detector method name
}

func (s *lockSite) atomic() bool {
	return s.flavor == "AtomicLoad" || s.flavor == "AtomicStore" || s.flavor == "AtomicRMW"
}

func (s *lockSite) write() bool {
	return s.flavor == "WriteVar" || s.flavor == "AtomicStore" || s.flavor == "AtomicRMW"
}

type locksetAnalysis struct {
	ctx     *modCtx
	prog    *Program
	mhp     *mhpInfo
	entries []race.Field
	// sites collects resolved detector calls per registry key.
	sites map[string][]*lockSite

	findings  []lint.Finding
	sups      []Suppression
	witnesses []lint.Finding
	reported  map[string]bool
	// entryBad / entryWaived drive the per-entry XVal status.
	entryBad    map[string]bool
	entryWaived map[string]bool
}

func checkLockset(ctx *modCtx) ([]lint.Finding, []Suppression) {
	la := &locksetAnalysis{
		ctx: ctx, prog: ctx.program(), mhp: ctx.buildMHP(),
		entries:     race.Registry(),
		sites:       make(map[string][]*lockSite),
		reported:    make(map[string]bool),
		entryBad:    make(map[string]bool),
		entryWaived: make(map[string]bool),
	}
	visited := 0
	la.prog.eachUnit(func(f *Func) {
		if f.Lit == nil {
			visited++
		}
		if f.Decl.Pkg.Path == racePkg {
			return // the detector's own implementation is the trusted base
		}
		la.collectSites(f)
	})
	for _, e := range la.entries {
		la.checkEntry(e)
	}
	ctx.visited["lockset"] = visited
	la.ctx.lockRes = &lockResult{witnesses: la.witnesses, xval: la.xvalRows()}
	sortFindings(la.findings)
	sortFindings(la.witnesses)
	return la.findings, la.sups
}

// collectSites resolves every Detector call in f to its registry entry.
func (la *locksetAnalysis) collectSites(f *Func) {
	for _, b := range f.Blocks {
		for _, call := range b.Calls {
			flavor, ok := detectorHook(call.Callee)
			if !ok || len(call.Args) < 1 {
				continue
			}
			e, ok := la.resolveEntry(f, call.Args[0])
			if !ok {
				la.problem("", f, call.Pos,
					"shared-state access not in the race registry: the variable passed to Detector.%s does not resolve to any internal/race.Registry entry, so no discipline can be proven for it", flavor)
				continue
			}
			la.sites[e.Key] = append(la.sites[e.Key], &lockSite{f: f, call: call, flavor: flavor})
		}
	}
}

// detectorHook classifies calls to the race.Detector access hooks.
func detectorHook(fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || !isNamed(sig.Recv().Type(), racePkg, "Detector") {
		return "", false
	}
	switch fn.Name() {
	case "ReadVar", "WriteVar", "AtomicLoad", "AtomicStore", "AtomicRMW":
		return fn.Name(), true
	}
	return "", false
}

// resolveEntry maps a detector-call name argument back to its registry
// entry via the three site idioms: a precomputed name field, a
// name-building method, or a Sprintf over the pattern literal.
func (la *locksetAnalysis) resolveEntry(f *Func, arg *Value) (race.Field, bool) {
	v := chase(arg)
	if v == nil {
		return race.Field{}, false
	}
	switch v.Kind {
	case VFieldRead:
		if v.Obj == nil || v.Obj.Pkg() == nil {
			break
		}
		for _, e := range la.entries {
			if e.NameField == v.Obj.Name() && v.Obj.Pkg().Path() == modPath+"/"+e.Owner {
				return e, true
			}
		}
	case VCall:
		if v.Callee == nil {
			break
		}
		if v.Callee.Pkg() != nil && v.Callee.Pkg().Path() == "fmt" && v.Callee.Name() == "Sprintf" && len(v.Args) >= 1 {
			if s, ok := la.constString(f, v.Args[0]); ok {
				return race.LookupVar(s)
			}
		}
		for _, e := range la.entries {
			if e.NameFunc != "" && v.Callee.Name() == e.NameFunc &&
				v.Callee.Pkg() != nil && v.Callee.Pkg().Path() == modPath+"/"+e.Owner {
				return e, true
			}
		}
	case VConst:
		if s, ok := la.constString(f, v); ok {
			return race.LookupVar(s)
		}
	}
	return race.Field{}, false
}

// constString extracts the constant string value of v, if any.
func (la *locksetAnalysis) constString(f *Func, v *Value) (string, bool) {
	v = chase(v)
	if v == nil || v.Kind != VConst || v.Expr == nil {
		return "", false
	}
	tv, ok := f.info.Types[v.Expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkEntry proves one registry entry's declared discipline.
func (la *locksetAnalysis) checkEntry(e race.Field) {
	ss := la.sites[e.Key]
	if e.Var != "" && len(ss) == 0 {
		la.problem(e.Key, nil, token.NoPos,
			"registry entry %q declares detector variable %q but no module call site resolves to it: the dynamic model no longer instruments what the registry promises", e.Key, e.Var)
		return
	}
	switch e.Discipline {
	case race.DiscAtomic:
		la.checkAtomic(e, ss)
	case race.DiscConfined:
		la.checkConfined(e, ss)
	case race.DiscAckOrdered:
		la.checkAckOrdered(e, ss)
	case race.DiscEpoch:
		la.checkEpoch(e)
	}
	// Adjacency only binds entries the detector names: a var-less entry
	// (DiscEpoch) is proven structurally, not through instrumentation.
	if e.GoField != "" && e.Var != "" {
		la.checkAdjacency(e, ss)
	}
}

// checkAtomic: every access must go through an Atomic* hook.
func (la *locksetAnalysis) checkAtomic(e race.Field, ss []*lockSite) {
	for _, s := range ss {
		if !s.atomic() {
			la.problem(e.Key, s.f, s.call.Pos,
				"plain %s access to %q: the registry declares it %s, so every access must use the Atomic* hooks (a plain access here races with the atomic ones elsewhere)", s.flavor, e.Key, e.Discipline)
		}
	}
}

// checkConfined: plain accesses, legal only because the accessing code
// provably runs on the owning CPU. The proof leans on mhp's self-CPU
// facts: the name-field's base (the CPU the access belongs to) must be
// the executing CPU on every path reaching the site.
func (la *locksetAnalysis) checkConfined(e race.Field, ss []*lockSite) {
	for _, s := range ss {
		if s.atomic() {
			la.problem(e.Key, s.f, s.call.Pos,
				"atomic %s access to %q: the registry declares it %s (plain, owner-only); an atomic hook here would mask a confinement break instead of proving it cannot happen", s.flavor, e.Key, e.Discipline)
			continue
		}
		base := la.siteBase(s)
		if base == nil || !la.mhp.isSelfCPU(s.f, base, nil) {
			la.problem(e.Key, s.f, s.call.Pos,
				"unprotected access to %q: the accessing CPU is not provably the executing CPU, so the cpu-confined discipline cannot be discharged (a cross-CPU caller would race the owner's plain accesses)", e.Key)
		}
	}
}

// siteBase resolves the owner value a site's name argument hangs off
// (the CPU whose name field was passed).
func (la *locksetAnalysis) siteBase(s *lockSite) *Value {
	v := chase(s.call.Args[0])
	if v == nil || v.Kind != VFieldRead {
		return nil
	}
	return v.Base
}

// checkAckOrdered proves the shootdown ack edge orders every plain
// access: responders read only pre-ack (inside IPI-handler reach), the
// initiator writes only post-ack (outside it), and no kick whose handler
// reaches a read may ack early while the guard field is set.
func (la *locksetAnalysis) checkAckOrdered(e race.Field, ss []*lockSite) {
	reads, writes := 0, 0
	readUnits := make(map[*Func]bool)
	for _, s := range ss {
		if s.atomic() {
			la.problem(e.Key, s.f, s.call.Pos,
				"atomic %s access to %q: the registry declares it %s; the ack join is the only ordering, so atomic hooks here would hide a broken edge", s.flavor, e.Key, e.Discipline)
			continue
		}
		if s.write() {
			writes++
			if la.mhp.handlerReach[s.f] {
				la.problem(e.Key, s.f, s.call.Pos,
					"initiator-side write to %q is reachable from an IPI handler: the ack-ordered discipline requires the reclaim to happen only after every responder acked, which handler context cannot guarantee", e.Key)
			}
		} else {
			reads++
			readUnits[s.f] = true
			if !la.mhp.handlerReach[s.f] {
				la.problem(e.Key, s.f, s.call.Pos,
					"responder-side read of %q outside IPI-handler reach: the ack-ordered discipline covers only reads a responder performs before acking", e.Key)
			}
		}
	}
	if reads == 0 || writes == 0 {
		la.problem(e.Key, nil, token.NoPos,
			"ack-ordered entry %q needs both responder reads and an initiator write to have an edge to prove (got %d reads, %d writes)", e.Key, reads, writes)
		return
	}
	la.checkEarlyAcks(e, readUnits)
}

// checkEarlyAcks walks every CallMany kick whose handler reaches a
// responder read of e and proves its early-ack flag is off while the
// guard field is set. The config-seeded broken variant is recorded as a
// witness instead of a finding; checkEntryWitnesses then requires it to
// have fired exactly once.
func (la *locksetAnalysis) checkEarlyAcks(e race.Field, readUnits map[*Func]bool) {
	witnessSeen := make(map[string]bool)
	la.prog.eachUnit(func(f *Func) {
		if f.Decl.Pkg.Path == racePkg {
			return
		}
		for _, b := range f.Blocks {
			for _, call := range b.Calls {
				if call.Callee == nil || !isCallMany(call.Callee) || len(call.Args) < 6 {
					continue
				}
				h := la.mhp.unitOfFuncValue(f, call.Args[3])
				if h == nil || !la.reaches(h, readUnits) {
					continue
				}
				if la.payloadGuardFree(f, call.Args[4], e) {
					continue // the payload provably never sets the guard
				}
				for _, pos := range la.ackViolations(f, call.Args[5], e, nil) {
					if la.unitReadsConfig(f, e.SeededBy) {
						file, line := la.ctx.posLine(f.Decl, pos)
						key := fmt.Sprintf("%s:%d:%s", file, line, e.Key)
						if witnessSeen[key] {
							continue
						}
						witnessSeen[key] = true
						la.witnesses = append(la.witnesses, lint.Finding{
							File: file, Line: line, Analyzer: "lockset",
							Msg: fmt.Sprintf("unprotected access to %q seeded by %s: early ack forced on while %s.%s is set — the exact schedule the dynamic model reports as a race on this field", e.Key, e.SeededBy, e.GuardStruct, e.Guard),
						})
						continue
					}
					la.problem(e.Key, f, pos,
						"unprotected access to %q: this kick may ack early while %s.%s is set, so a responder's read no longer happens-before the initiator's reclaim", e.Key, e.GuardStruct, e.Guard)
				}
			}
		}
	})
	la.checkEntryWitnesses(e, len(witnessSeen))
}

// checkEntryWitnesses enforces the cross-validation count: a seeded
// entry must yield exactly one witness module-wide.
func (la *locksetAnalysis) checkEntryWitnesses(e race.Field, n int) {
	if e.SeededBy == "" || n == 1 {
		return
	}
	la.problem(e.Key, nil, token.NoPos,
		"seeded violation miscount for %q: expected the %s variant to surface exactly one static witness, got %d — the static and dynamic tiers no longer agree on the seeded bug", e.Key, e.SeededBy, n)
}

// reaches reports whether any unit in targets is reachable from h.
func (la *locksetAnalysis) reaches(h *Func, targets map[*Func]bool) bool {
	for t := range la.mhp.reach(map[*Func]bool{h: true}) {
		if targets[t] {
			return true
		}
	}
	return false
}

// payloadGuardFree reports whether the kick's payload provably has the
// guard field unset: a composite literal of the guard struct that never
// mentions the guard (zero value) or sets it to literal false.
func (la *locksetAnalysis) payloadGuardFree(f *Func, payload *Value, e race.Field) bool {
	v := chase(payload)
	if v == nil || v.Kind != VComposite || !isNamed(v.Type, modPath+"/"+e.Owner, e.GuardStruct) {
		return false
	}
	cl, ok := v.Expr.(*ast.CompositeLit)
	if !ok {
		return false
	}
	for i, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return false // positional literal: assume the guard may be set
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != e.Guard {
			continue
		}
		if i < len(v.Args) {
			if c := chase(v.Args[i]); c != nil && c.Kind == VConst {
				if s, ok := la.constBool(f, c); ok && !s {
					continue
				}
			}
		}
		return false
	}
	return true
}

func (la *locksetAnalysis) constBool(f *Func, v *Value) (bool, bool) {
	if v.Expr == nil {
		return false, false
	}
	tv, ok := f.info.Types[v.Expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false, false
	}
	return constant.BoolVal(tv.Value), true
}

// ackViolations returns the positions where the early-ack flag may be
// true without the guard negation dominating it. Safe shapes: literal
// false, `x && !payload.Guard` (either operand the negation), or the
// negation alone. Everything else on some phi path is a violation.
func (la *locksetAnalysis) ackViolations(f *Func, ack *Value, e race.Field, visiting map[*Value]bool) []token.Pos {
	v := chase(ack)
	if v == nil {
		return nil
	}
	if visiting[v] {
		return nil
	}
	switch v.Kind {
	case VConst:
		if b, ok := la.constBool(f, v); ok && !b {
			return nil
		}
		return []token.Pos{v.Pos}
	case VPhi:
		if visiting == nil {
			visiting = make(map[*Value]bool)
		}
		visiting[v] = true
		var out []token.Pos
		for _, a := range v.Args {
			out = append(out, la.ackViolations(f, a, e, visiting)...)
		}
		return out
	case VOp:
		switch expr := v.Expr.(type) {
		case *ast.BinaryExpr:
			if expr.Op == token.LAND {
				for _, a := range v.Args {
					if la.isGuardNegation(a, e) {
						return nil
					}
				}
			}
		case *ast.UnaryExpr:
			if expr.Op == token.NOT && la.isGuardNegation(v, e) {
				return nil
			}
		}
	}
	return []token.Pos{v.Pos}
}

// isGuardNegation recognizes `!x.Guard` over the guard struct.
func (la *locksetAnalysis) isGuardNegation(v *Value, e race.Field) bool {
	v = chase(v)
	if v == nil || v.Kind != VOp {
		return false
	}
	expr, ok := v.Expr.(*ast.UnaryExpr)
	if !ok || expr.Op != token.NOT || len(v.Args) != 1 {
		return false
	}
	g := chase(v.Args[0])
	return g != nil && g.Kind == VFieldRead && g.Obj != nil && g.Obj.Name() == e.Guard &&
		ownerIs(g, modPath+"/"+e.Owner, e.GuardStruct)
}

// unitReadsConfig reports whether f reads the named config knob — the
// marker that an ack violation is the deliberately seeded variant.
func (la *locksetAnalysis) unitReadsConfig(f *Func, knob string) bool {
	if knob == "" {
		return false
	}
	for _, v := range f.Values() {
		if v.Kind == VFieldRead && v.Obj != nil && v.Obj.Name() == knob {
			return true
		}
	}
	return false
}

// checkEpoch: exactly one unit module-wide may store the backing field.
func (la *locksetAnalysis) checkEpoch(e race.Field) {
	fv := la.fieldVar(e)
	if fv == nil {
		return
	}
	writers := make(map[*Func]token.Pos)
	la.prog.eachUnit(func(f *Func) {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Kind != IStore || in.Addr == nil {
					continue
				}
				if fr := chase(in.Addr); fr != nil && fr.Kind == VFieldRead && fr.Obj == fv {
					if _, ok := writers[f]; !ok {
						writers[f] = in.Pos
					}
				}
			}
		}
	})
	if len(writers) <= 1 {
		return
	}
	for f, pos := range writers {
		la.problem(e.Key, f, pos,
			"extra writer of %q: the single-writer-epoch discipline admits exactly one store site module-wide (%d found), so this write races the epoch owner's", e.Key, len(writers))
	}
}

// checkAdjacency: every raw read or write of the backing Go field must
// sit in a unit that also carries a detector site for the entry —
// otherwise the dynamic model is blind to that access and the static
// discipline proof does not cover it.
func (la *locksetAnalysis) checkAdjacency(e race.Field, ss []*lockSite) {
	fv := la.fieldVar(e)
	if fv == nil {
		return
	}
	instrumented := make(map[*Func]bool, len(ss))
	for _, s := range ss {
		instrumented[s.f] = true
	}
	la.prog.eachUnit(func(f *Func) {
		if f.Decl.Pkg.Path == racePkg || instrumented[f] {
			return
		}
		for _, v := range f.Values() {
			if v.Kind == VFieldRead && v.Obj == fv {
				la.problem(e.Key, f, v.Pos,
					"unprotected access to %q: this unit touches the backing field %s.%s without a detector site, so neither the dynamic model nor the %s proof covers it", e.Key, e.Struct, e.GoField, e.Discipline)
			}
		}
	})
}

// fieldVar resolves the registry entry's backing *types.Var.
func (la *locksetAnalysis) fieldVar(e race.Field) *types.Var {
	if e.GoField == "" {
		return nil
	}
	p := la.ctx.m.Lookup(modPath + "/" + e.Owner)
	if p == nil {
		return nil
	}
	obj := p.Types.Scope().Lookup(e.Struct)
	if obj == nil {
		return nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == e.GoField {
			return st.Field(i)
		}
	}
	return nil
}

// problem records one discipline violation: waived into a suppression
// when a "lock-free-by-design:" marker covers the line, a finding
// otherwise. Position-less problems (registry-level mismatches) anchor
// at the registry file.
func (la *locksetAnalysis) problem(entryKey string, f *Func, pos token.Pos, format string, args ...any) {
	file, line := "internal/race/registry.go", 1
	if f != nil && pos.IsValid() {
		file, line = la.ctx.posLine(f.Decl, pos)
	}
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%s:%d:%s", file, line, msg)
	if la.reported[key] {
		return
	}
	la.reported[key] = true
	if reason, ok := la.ctx.lockMarkerFor(file, line); ok {
		la.sups = append(la.sups, Suppression{
			File: file, Line: line, Analyzer: "lockset", Reason: reason,
		})
		if entryKey != "" {
			la.entryWaived[entryKey] = true
		}
		return
	}
	la.findings = append(la.findings, lint.Finding{
		File: file, Line: line, Analyzer: "lockset", Msg: msg,
	})
	if entryKey != "" {
		la.entryBad[entryKey] = true
	}
}

// xvalRows builds the cross-validation report, one row per registry
// entry in registry order.
func (la *locksetAnalysis) xvalRows() []XValRow {
	rows := make([]XValRow, 0, len(la.entries))
	for _, e := range la.entries {
		status := "proven"
		if la.entryWaived[e.Key] {
			status = "waived"
		}
		if la.entryBad[e.Key] {
			status = "unproven"
		}
		detail := la.detailFor(e)
		rows = append(rows, XValRow{
			Key: e.Key, Var: e.Var, Discipline: e.Discipline,
			Status: status, Detail: detail,
		})
	}
	return rows
}

func (la *locksetAnalysis) detailFor(e race.Field) string {
	ss := la.sites[e.Key]
	reads, writes := 0, 0
	for _, s := range ss {
		if s.write() {
			writes++
		} else {
			reads++
		}
	}
	switch e.Discipline {
	case race.DiscAckOrdered:
		return fmt.Sprintf("%d responder reads / %d initiator writes ordered by the ack join; seeded %s witnessed", reads, writes, e.SeededBy)
	case race.DiscEpoch:
		return "single store site proven module-wide; readers poll racy-by-design"
	case race.DiscConfined:
		return fmt.Sprintf("%d plain sites, all on the provably executing CPU", len(ss))
	default:
		return fmt.Sprintf("%d sites, all through Atomic* hooks", len(ss))
	}
}
