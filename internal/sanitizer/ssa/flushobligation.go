package ssa

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"shootdown/internal/sanitizer/lint"
)

// flushobligation enforces the paper's §3 safety contract statically:
// every restrictive page-table mutation must be covered by a TLB
// shootdown before the caller can proceed as if the mapping changed. In
// this codebase the contract is visible in the types — every mutator in
// internal/mm returns the invalidation work as an mm.FlushRange (or a
// slice of them) — so the analyzer needs no name list:
//
//   - An OBLIGATION is born whenever a call to a module function returns
//     a value of type mm.FlushRange or []mm.FlushRange.
//   - It is DISCHARGED by passing the value (whole) to a discharging
//     parameter: the kernel.Flusher interface's FlushAfter, any module
//     type implementing kernel.Flusher, or any module function proven by
//     fixpoint to discharge that parameter on every path.
//   - It is TRANSFERRED by returning the value: the caller's own call
//     then births the obligation again, so the contract follows the value
//     up the call graph (kernel.ForkAddressSpace → syscalls.Fork).
//   - It is RELEASED on paths where no flush is needed: the error edge of
//     the paired error result, the true edge of fr.Empty(), panicking
//     paths, and — per element — a `range` over an obligation slice.
//   - A `// obligation-transferred: <why>` marker on or above the
//     creating line waives the check and is recorded as a Suppression.
//
// Any path from a creation to the function's exit with the obligation
// still live is a finding: a restrictive PTE change some interleaving can
// translate through stale.

func isFlushRange(t types.Type) bool {
	return isNamed(t, modPath+"/internal/mm", "FlushRange")
}

func isFlushRangeSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isFlushRange(s.Elem())
}

func isObligationType(t types.Type) bool {
	return isFlushRange(t) || isFlushRangeSlice(t)
}

// obligation tracks one live flush obligation.
type obligation struct {
	file string
	line int
	// desc names the creating call ("as.Unmap") for the report.
	desc string
	// errVar is the error result paired with the creation; the obligation
	// is released on the path where that error is non-nil.
	errVar *types.Var
	// paramIdx >= 0 marks a summary-mode seed: the obligation entered via
	// parameter paramIdx and leaking it means "not a discharging param",
	// not a finding.
	paramIdx int
}

type oblState map[*types.Var]*obligation

func (s oblState) clone() oblState {
	out := make(oblState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// mergeInto unions src into dst, reporting whether dst changed.
func (s oblState) mergeInto(dst oblState, from oblState) bool {
	changed := false
	for k, v := range from {
		if _, ok := dst[k]; !ok {
			dst[k] = v
			changed = true
		}
	}
	return changed
}

// dischargeSet maps a function to the parameter indices it discharges.
type dischargeSet map[*types.Func]map[int]bool

func (d dischargeSet) mark(fn *types.Func, idx int) bool {
	if d[fn] == nil {
		d[fn] = make(map[int]bool)
	}
	if d[fn][idx] {
		return false
	}
	d[fn][idx] = true
	return true
}

func (d dischargeSet) has(fn *types.Func, idx int) bool { return fn != nil && d[fn][idx] }

// checkFlushObligation runs the analyzer over the whole module.
func checkFlushObligation(ctx *modCtx) ([]lint.Finding, []Suppression) {
	funcs := allFuncs(ctx.pkgs)
	discharging := seedDischargers(ctx)

	// Fixpoint over obligation-transfer helpers: a module function with a
	// FlushRange parameter that discharges it on every path is itself a
	// discharger, so wrappers around FlushAfter compose.
	candidates := dischargeCandidates(funcs, discharging)
	for changed := true; changed; {
		changed = false
		for _, c := range candidates {
			leaks := analyzeObligations(ctx, c.fd, c.seedIdx, discharging, nil, nil)
			for _, idx := range c.seedIdx {
				if !leaks[idx] && discharging.mark(c.fd.Obj, idx) {
					changed = true
				}
			}
		}
	}

	// Reporting pass over every function body, then over every function
	// literal as its own unit (a daemon's Task.Fn closure or a
	// kernelSection body runs later with its own control flow; its
	// obligations are not the installing function's).
	var findings []lint.Finding
	var sups []Suppression
	for _, fd := range funcs {
		analyzeObligations(ctx, fd, nil, discharging, &findings, &sups)
		for _, lit := range funcLitsIn(fd.Decl.Body) {
			a := newOblAnalysis(ctx, fd, discharging, &findings, &sups)
			a.unitName = "the function literal in " + fd.Decl.Name.Name
			a.analyzeBody(lit.Body, nil)
		}
	}
	return findings, sups
}

// funcLitsIn lists every function literal nested anywhere in body.
func funcLitsIn(body *ast.BlockStmt) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit)
		}
		return true
	})
	return out
}

// seedDischargers marks the protocol's root discharge points: the
// kernel.Flusher interface's FlushRange parameters and every module
// implementation of the interface.
func seedDischargers(ctx *modCtx) dischargeSet {
	d := make(dischargeSet)
	kp := ctx.m.Lookup(modPath + "/internal/kernel")
	if kp == nil {
		return d
	}
	obj := kp.Types.Scope().Lookup("Flusher")
	if obj == nil {
		return d
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return d
	}
	markFlushParams := func(fn *types.Func) {
		sig := fn.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			if isObligationType(sig.Params().At(i).Type()) {
				d.mark(fn, i)
			}
		}
	}
	for i := 0; i < iface.NumMethods(); i++ {
		markFlushParams(iface.Method(i))
	}
	// Concrete implementations: their identically named methods discharge
	// the same parameters.
	for _, p := range ctx.pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				m := iface.Method(i)
				impl, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, p.Types, m.Name())
				if fn, ok := impl.(*types.Func); ok {
					markFlushParams(fn)
				}
			}
		}
	}
	return d
}

type dischargeCandidate struct {
	fd      FuncDecl
	seedIdx []int
}

// dischargeCandidates lists functions with FlushRange parameters that are
// not already root dischargers.
func dischargeCandidates(funcs []FuncDecl, roots dischargeSet) []dischargeCandidate {
	var out []dischargeCandidate
	for _, fd := range funcs {
		sig := fd.Obj.Type().(*types.Signature)
		var idx []int
		for i := 0; i < sig.Params().Len(); i++ {
			if isObligationType(sig.Params().At(i).Type()) && !roots.has(fd.Obj, i) {
				idx = append(idx, i)
			}
		}
		if len(idx) > 0 {
			out = append(out, dischargeCandidate{fd: fd, seedIdx: idx})
		}
	}
	return out
}

// oblAnalysis carries one function's dataflow run.
type oblAnalysis struct {
	ctx         *modCtx
	fd          FuncDecl
	info        *types.Info
	discharging dischargeSet
	findings    *[]lint.Finding
	sups        *[]Suppression
	// unitName names the analyzed body in exit-leak reports (the declared
	// function, or "the function literal in <func>").
	unitName string
	// seen dedupes findings across worklist revisits.
	seen map[string]bool
	// leaks collects parameter indices whose seeded obligation escaped
	// (summary mode).
	leaks map[int]bool
}

func newOblAnalysis(ctx *modCtx, fd FuncDecl, discharging dischargeSet, findings *[]lint.Finding, sups *[]Suppression) *oblAnalysis {
	return &oblAnalysis{
		ctx: ctx, fd: fd, info: fd.Pkg.Info, discharging: discharging,
		findings: findings, sups: sups, unitName: fd.Decl.Name.Name,
		seen: make(map[string]bool), leaks: make(map[int]bool),
	}
}

// analyzeObligations runs the must-discharge dataflow over fd. seedIdx,
// when non-empty, seeds the listed FlushRange parameters as obligations
// (summary mode: findings/sups are nil and the leaked indices are
// returned). In reporting mode findings and suppressions are appended.
func analyzeObligations(ctx *modCtx, fd FuncDecl, seedIdx []int, discharging dischargeSet, findings *[]lint.Finding, sups *[]Suppression) map[int]bool {
	a := newOblAnalysis(ctx, fd, discharging, findings, sups)
	entry := make(oblState)
	sig := fd.Obj.Type().(*types.Signature)
	for _, idx := range seedIdx {
		pv := sig.Params().At(idx)
		entry[pv] = &obligation{paramIdx: idx, desc: "parameter " + pv.Name()}
	}
	return a.analyzeBody(fd.Decl.Body, entry)
}

// analyzeBody runs the dataflow over one body (a declared function's or a
// function literal's) with the given entry state.
func (a *oblAnalysis) analyzeBody(body *ast.BlockStmt, entry oblState) map[int]bool {
	g := buildCFG(body)
	if entry == nil {
		entry = make(oblState)
	}

	in := make(map[*cfgBlock]oblState, len(g.blocks))
	in[g.entry] = entry
	work := []*cfgBlock{g.entry}
	inWork := map[*cfgBlock]bool{g.entry: true}
	for len(work) > 0 {
		b := work[0]
		work, inWork[b] = work[1:], false
		outs := a.flow(b, in[b].clone())
		for _, eo := range outs {
			if eo.to == nil {
				continue
			}
			if in[eo.to] == nil {
				in[eo.to] = make(oblState)
			}
			if oblState(nil).mergeInto(in[eo.to], eo.state) && !inWork[eo.to] {
				work = append(work, eo.to)
				inWork[eo.to] = true
			}
		}
	}

	// Exit check: apply deferred discharges, then report what is live.
	exitState := in[g.exit]
	if exitState == nil {
		exitState = make(oblState)
	}
	exitState = exitState.clone()
	for _, df := range g.defers {
		a.dischargeCallArgs(df.Call, exitState)
	}
	for _, ob := range exitState {
		a.leak(ob)
	}
	return a.leaks
}

type edgeOut struct {
	to    *cfgBlock
	state oblState
}

// flow pushes state through one block, returning per-edge output states.
func (a *oblAnalysis) flow(b *cfgBlock, st oblState) []edgeOut {
	// Range-head blocks: the RangeStmt node is handled edge-sensitively
	// below; an element obligation arriving back at the head leaked out of
	// its iteration.
	if b.rangeStmt != nil {
		return a.flowRangeHead(b, st)
	}
	for _, n := range b.nodes {
		a.transferNode(n, st)
	}
	if b.cond != nil {
		tState, fState := st, st.clone()
		a.applyCondRelease(b.cond, tState, fState)
		return []edgeOut{{b.tsucc, tState}, {b.fsucc, fState}}
	}
	outs := make([]edgeOut, 0, len(b.succs))
	for _, s := range b.succs {
		outs = append(outs, edgeOut{s, st})
	}
	return outs
}

// flowRangeHead handles `for _, fr := range frs` over an obligation
// slice: the slice obligation becomes a per-element obligation inside the
// body and is considered fully discharged once the loop completes.
// buildCFG connects the body edge first, then the after edge.
func (a *oblAnalysis) flowRangeHead(b *cfgBlock, st oblState) []edgeOut {
	rng := b.rangeStmt
	elemVar := identObj(a.info, rng.Value)
	if elemVar != nil {
		if ob, live := st[elemVar]; live {
			a.report(ob, fmt.Sprintf("flush obligation from %s may be dropped by the next loop iteration", ob.desc))
			delete(st, elemVar)
		}
	}
	xVar := identObj(a.info, rng.X)
	body, after := b.succs[0], b.succs[1]
	bodyState, afterState := st.clone(), st.clone()
	if xVar != nil {
		if ob, live := st[xVar]; live && isFlushRangeSlice(xVar.Type()) {
			delete(bodyState, xVar)
			delete(afterState, xVar)
			if elemVar != nil {
				elemOb := *ob
				bodyState[elemVar] = &elemOb
			}
		}
	}
	return []edgeOut{{body, bodyState}, {after, afterState}}
}

// transferNode applies one statement or expression to the state.
func (a *oblAnalysis) transferNode(n ast.Node, st oblState) {
	switch v := n.(type) {
	case *ast.AssignStmt:
		a.transferAssign(v, st)
	case *ast.ReturnStmt:
		for _, res := range v.Results {
			a.scanCalls(res, st, true)
		}
		for _, res := range v.Results {
			if rv := identObj(a.info, unwrap(a.info, res)); rv != nil {
				// Returning the value transfers the obligation: the caller's
				// own call re-births it under the signature rule.
				delete(st, rv)
			}
		}
	case *ast.DeferStmt:
		// Applied at exit by the caller of the dataflow.
	default:
		a.scanCalls(n, st, false)
	}
}

// transferAssign handles births (creating calls), aliasing moves, and
// overwrite kills.
func (a *oblAnalysis) transferAssign(as *ast.AssignStmt, st oblState) {
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			a.scanCallArgsOnly(call, st)
			if positions := a.creationResults(call); positions != nil {
				a.birth(call, as.Lhs, positions, st)
				return
			}
			// Non-creating call result: plain overwrite of the LHS.
			for _, l := range as.Lhs {
				if lv := identObj(a.info, l); lv != nil {
					delete(st, lv)
				}
			}
			return
		}
	}
	// Value assignments: alias moves and overwrites.
	for i, r := range as.Rhs {
		a.scanCalls(r, st, false)
		if i >= len(as.Lhs) {
			continue
		}
		lv := identObj(a.info, as.Lhs[i])
		rv := identObj(a.info, unwrap(a.info, r))
		if lv == nil {
			continue
		}
		if rv != nil {
			if ob, live := st[rv]; live {
				// Move semantics: the obligation follows the alias.
				delete(st, rv)
				st[lv] = ob
				continue
			}
		}
		delete(st, lv)
	}
}

// creationResults returns the result indices of call that carry
// obligations, or nil when the call creates none. Only module functions
// create obligations: FlushRange composite literals are descriptions, not
// page-table mutations.
func (a *oblAnalysis) creationResults(call *ast.CallExpr) []int {
	fn := calleeFunc(a.info, call)
	if fn == nil || fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), modPath) {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []int
	for i := 0; i < sig.Results().Len(); i++ {
		if isObligationType(sig.Results().At(i).Type()) {
			out = append(out, i)
		}
	}
	return out
}

// birth registers the obligations a creating call assigns.
func (a *oblAnalysis) birth(call *ast.CallExpr, lhs []ast.Expr, positions []int, st oblState) {
	pos := a.ctx.m.Fset.Position(call.Pos())
	file, line := a.fileRel(call.Pos()), pos.Line
	desc := callDesc(call)

	if reason, ok := a.ctx.markerFor(file, line); ok {
		a.suppress(file, line, reason)
		return
	}

	sig := calleeFunc(a.info, call).Type().(*types.Signature)
	// Pair the error result's variable, if the call returns one.
	var errVar *types.Var
	for i := 0; i < sig.Results().Len(); i++ {
		if i < len(lhs) && types.Identical(sig.Results().At(i).Type(), types.Universe.Lookup("error").Type()) {
			errVar = identObj(a.info, lhs[i])
		}
	}

	for _, i := range positions {
		if i >= len(lhs) {
			continue
		}
		ob := &obligation{file: file, line: line, desc: desc, errVar: errVar, paramIdx: -1}
		lv := identObj(a.info, lhs[i])
		if lv == nil || lv.Name() == "_" {
			a.report(ob, fmt.Sprintf("flush obligation from %s is discarded; pass it to the Flusher, return it, or document why with an %q marker", desc, transferMarker))
			continue
		}
		st[lv] = ob
	}
}

// scanCalls walks an expression tree, discharging obligation arguments
// and flagging creating calls whose results are dropped. consumed marks
// the root expression's call results as captured (return statements
// transfer them to the caller).
func (a *oblAnalysis) scanCalls(n ast.Node, st oblState, consumed bool) {
	var rootCall *ast.CallExpr
	if e, ok := n.(ast.Expr); ok && consumed {
		rootCall, _ = ast.Unparen(e).(*ast.CallExpr)
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			// A nested function literal is its own analysis unit; its body
			// does not execute here.
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		a.dischargeCallArgs(call, st)
		if positions := a.creationResults(call); positions != nil && call != rootCall {
			file, line := a.fileRel(call.Pos()), a.ctx.m.Fset.Position(call.Pos()).Line
			if reason, ok := a.ctx.markerFor(file, line); ok {
				a.suppress(file, line, reason)
			} else {
				ob := &obligation{file: file, line: line, desc: callDesc(call), paramIdx: -1}
				a.report(ob, fmt.Sprintf("flush obligation from %s is discarded; pass it to the Flusher, return it, or document why with an %q marker", ob.desc, transferMarker))
			}
		}
		return true
	})
}

// scanCallArgsOnly discharges and drop-checks within a call's arguments
// (used when the call itself is the handled RHS of an assignment).
func (a *oblAnalysis) scanCallArgsOnly(call *ast.CallExpr, st oblState) {
	a.dischargeCallArgs(call, st)
	for _, arg := range call.Args {
		a.scanCalls(arg, st, false)
	}
}

// dischargeCallArgs removes obligations passed whole to a discharging
// parameter of the callee.
func (a *oblAnalysis) dischargeCallArgs(call *ast.CallExpr, st oblState) {
	fn := calleeFunc(a.info, call)
	if fn == nil {
		return
	}
	for i, arg := range call.Args {
		if !a.discharging.has(fn, i) {
			continue
		}
		if v := identObj(a.info, unwrap(a.info, arg)); v != nil {
			delete(st, v)
		}
	}
}

// applyCondRelease implements the path-sensitive release rules on an
// atomic condition's edges.
func (a *oblAnalysis) applyCondRelease(cond ast.Expr, tState, fState oblState) {
	// err != nil / err == nil: the error path owes no flush.
	if be, ok := cond.(*ast.BinaryExpr); ok && (be.Op == token.NEQ || be.Op == token.EQL) {
		var id ast.Expr
		switch {
		case isNilIdent(be.Y):
			id = be.X
		case isNilIdent(be.X):
			id = be.Y
		}
		if id != nil {
			if ev := identObj(a.info, id); ev != nil {
				errSt := tState
				if be.Op == token.EQL {
					errSt = fState
				}
				for v, ob := range errSt {
					if ob.errVar == ev {
						delete(errSt, v)
					}
				}
			}
		}
		return
	}
	// fr.Empty(): nothing to invalidate on the true edge.
	if call, ok := cond.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Empty" {
			if recv := identObj(a.info, unwrap(a.info, sel.X)); recv != nil && isFlushRange(recv.Type()) {
				delete(tState, recv)
			}
		}
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// leak records an obligation alive at exit.
func (a *oblAnalysis) leak(ob *obligation) {
	if ob.paramIdx >= 0 {
		a.leaks[ob.paramIdx] = true
		return
	}
	a.report(ob, fmt.Sprintf("flush obligation from %s may reach %s's exit undischarged: some path performs a restrictive page-table mutation without a TLB shootdown (pass the FlushRange to the Flusher, return it, or add an %q marker)",
		ob.desc, a.unitName, transferMarker))
}

func (a *oblAnalysis) report(ob *obligation, msg string) {
	if a.findings == nil {
		if ob.paramIdx >= 0 {
			a.leaks[ob.paramIdx] = true
		}
		return
	}
	key := fmt.Sprintf("%s:%d:%s", ob.file, ob.line, msg)
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	*a.findings = append(*a.findings, lint.Finding{
		File: ob.file, Line: ob.line, Analyzer: "flushobligation", Msg: msg,
	})
}

func (a *oblAnalysis) suppress(file string, line int, reason string) {
	if a.sups == nil {
		return
	}
	key := fmt.Sprintf("sup:%s:%d", file, line)
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	*a.sups = append(*a.sups, Suppression{
		File: file, Line: line, Analyzer: "flushobligation", Reason: reason,
	})
}

func (a *oblAnalysis) fileRel(pos token.Pos) string {
	_, rel := a.fd.Pkg.FileOf(pos)
	if rel == "" {
		rel = a.fd.File
	}
	return rel
}

// callDesc renders a call like "as.Unmap" for reports.
func callDesc(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
