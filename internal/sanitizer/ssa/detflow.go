package ssa

import (
	"fmt"
	"go/types"
	"strings"

	"shootdown/internal/sanitizer/lint"
)

// detflow proves the parallel-harness guarantee statically: experiment
// cells replay byte-identically because nothing nondeterministic ever
// reaches simulated state. The analyzer is a forward taint analysis over
// the SSA value graph with interprocedural summaries.
//
// Sources (each carries a human-readable label through the flow):
//
//   - wall clock: time.Now / time.Since / time.Until
//   - the global PRNG: any math/rand call outside fault.Decide, the one
//     sanctioned consumer of external randomness
//   - scheduler identity: runtime.NumCPU / NumGoroutine / GOMAXPROCS
//   - map iteration order: the key/value bindings of a range over a map
//   - select arm choice: values received in a select communication clause
//
// Sinks:
//
//   - stores into simulated state — a field of a type declared in a
//     lint.ParallelScope package, or a package-level var of one (this
//     covers stats: counters are simulated state too)
//   - arguments to any module function whose name contains "Digest"
//     (StateDigest and friends must be replay-stable by definition)
//   - event timestamps: sim.Proc.Delay, sim.Cond.WaitTimeout,
//     sim.Engine.At, sim.Engine.After
//
// Sanitizer: passing a value to sort.* kills iteration-order taint — the
// canonical fix for map-range nondeterminism is collect-then-sort, and
// after sorting the same SSA value is order-stable.
//
// Taint crosses function boundaries two ways: summaries record which
// parameters (and intrinsic sources) reach a function's results, and
// stores of tainted values into globals or struct fields taint every read
// of that global/field module-wide. Both are iterated to a fixpoint.

// dfSummary is the interprocedural taint behaviour of one function.
type dfSummary struct {
	// srcResult, when non-empty, labels a nondeterminism source that
	// reaches a result regardless of the arguments.
	srcResult string
	// paramFlow marks parameter indices (-1 for the receiver) whose taint
	// flows into a result.
	paramFlow map[int]bool
}

func (s *dfSummary) equal(o *dfSummary) bool {
	if s.srcResult != o.srcResult || len(s.paramFlow) != len(o.paramFlow) {
		return false
	}
	for k := range s.paramFlow {
		if !o.paramFlow[k] {
			return false
		}
	}
	return true
}

// dfAnalysis is the module-wide fixpoint state.
type dfAnalysis struct {
	ctx  *modCtx
	prog *Program
	// sums holds per-function taint summaries.
	sums map[*types.Func]*dfSummary
	// globalTaint and fieldTaint label package-level vars and struct
	// fields some unit stored a tainted value into.
	globalTaint map[string]string
	fieldTaint  map[*types.Var]string
}

// checkDetFlow runs the nondeterminism-taint analysis.
func checkDetFlow(ctx *modCtx) ([]lint.Finding, []Suppression) {
	a := &dfAnalysis{
		ctx:         ctx,
		prog:        ctx.program(),
		sums:        make(map[*types.Func]*dfSummary),
		globalTaint: make(map[string]string),
		fieldTaint:  make(map[*types.Var]string),
	}
	// Fixpoint over summaries and global/field taint.
	for round := 0; round < 12; round++ {
		changed := false
		a.prog.eachUnit(func(f *Func) {
			taint := a.localTaint(f)
			if a.recordStores(f, taint) {
				changed = true
			}
			if f.Lit != nil {
				return
			}
			sum := a.summarize(f, taint)
			if old := a.sums[f.Decl.Obj]; old == nil || !old.equal(sum) {
				a.sums[f.Decl.Obj] = sum
				changed = true
			}
		})
		if !changed {
			break
		}
	}
	// Final pass: report sinks.
	var findings []lint.Finding
	seen := make(map[string]bool)
	report := func(f *Func, v *Value, msg string) {
		file, line := a.ctx.posLine(f.Decl, v.Pos)
		key := fmt.Sprintf("%s:%d:%s", file, line, msg)
		if seen[key] {
			return
		}
		seen[key] = true
		findings = append(findings, lint.Finding{
			File: file, Line: line, Analyzer: "detflow", Msg: msg,
		})
	}
	a.prog.eachUnit(func(f *Func) {
		if f.Lit == nil {
			a.ctx.visited["detflow"]++
		}
		taint := a.localTaint(f)
		a.reportSinks(f, taint, report)
	})
	return findings, nil
}

// localTaint computes the taint label of every value in f under the
// current summaries and global/field taint.
func (a *dfAnalysis) localTaint(f *Func) map[*Value]string {
	sanitized := a.sanitizedValues(f)
	taint := make(map[*Value]string)
	for changed := true; changed; {
		changed = false
		for _, v := range f.values {
			if taint[v] != "" || sanitized[v] {
				continue
			}
			if l := a.valueTaint(f, v, taint, sanitized); l != "" {
				taint[v] = l
				changed = true
			}
		}
	}
	return taint
}

// sanitizedValues marks every value passed to sort.* (and its passthrough
// aliases) as order-stable.
func (a *dfAnalysis) sanitizedValues(f *Func) map[*Value]bool {
	sanitized := make(map[*Value]bool)
	var mark func(v *Value)
	mark = func(v *Value) {
		if v == nil || sanitized[v] {
			return
		}
		sanitized[v] = true
		if v.Kind == VAddr || v.Kind == VDeref {
			mark(v.Base)
		}
	}
	for _, v := range f.values {
		if v.Kind != VCall || v.Callee == nil || v.Callee.Pkg() == nil {
			continue
		}
		if v.Callee.Pkg().Path() == "sort" {
			for _, arg := range v.Args {
				mark(arg)
			}
		}
	}
	return sanitized
}

// valueTaint computes one value's label from its sources and operands.
func (a *dfAnalysis) valueTaint(f *Func, v *Value, taint map[*Value]string, sanitized map[*Value]bool) string {
	if l := a.sourceLabel(f, v); l != "" {
		return l
	}
	get := func(o *Value) string {
		if o == nil || sanitized[o] {
			return ""
		}
		return taint[o]
	}
	switch v.Kind {
	case VCall:
		if v.Callee != nil && moduleFunc(v.Callee) {
			var label string
			for _, target := range a.prog.calleesOf(v) {
				sum := a.sums[target]
				if sum == nil {
					continue
				}
				if sum.srcResult != "" && label == "" {
					label = sum.srcResult
				}
				for i, arg := range v.Args {
					if sum.paramFlow[paramIndexOf(target, i)] && label == "" {
						label = get(arg)
					}
				}
				if sum.paramFlow[-1] && label == "" {
					label = get(v.Base)
				}
			}
			return label
		}
		// Builtins, stdlib and func-valued calls: any tainted operand
		// taints the result.
		for _, arg := range v.Args {
			if l := get(arg); l != "" {
				return l
			}
		}
		return get(v.Base)
	case VGlobal:
		return a.globalTaint[AliasClass(v)]
	case VFieldRead:
		if v.Obj != nil {
			if l := a.fieldTaint[v.Obj]; l != "" {
				return l
			}
		}
		return get(v.Base)
	default:
		for _, arg := range v.Args {
			if l := get(arg); l != "" {
				return l
			}
		}
		return get(v.Base)
	}
}

// sourceLabel reports whether v is itself a nondeterminism source.
func (a *dfAnalysis) sourceLabel(f *Func, v *Value) string {
	switch v.Kind {
	case VCall:
		if v.Callee == nil || v.Callee.Pkg() == nil {
			return ""
		}
		pkg, name := v.Callee.Pkg().Path(), v.Callee.Name()
		switch pkg {
		case "time":
			if name == "Now" || name == "Since" || name == "Until" {
				return "wall clock (time." + name + ")"
			}
		case "math/rand", "math/rand/v2":
			if a.inFaultDecide(f) {
				return ""
			}
			return "global PRNG (" + pkg + "." + name + ")"
		case "runtime":
			if name == "NumCPU" || name == "NumGoroutine" || name == "GOMAXPROCS" {
				return "scheduler identity (runtime." + name + ")"
			}
		}
	case VRangeKey, VRangeVal:
		if v.Base != nil && v.Base.Type != nil {
			if _, ok := v.Base.Type.Underlying().(*types.Map); ok {
				return "map iteration order"
			}
		}
	case VOp:
		if v.Block != nil && v.Block.SelectComm {
			return "select arm choice"
		}
	}
	return ""
}

// inFaultDecide reports whether f lowers fault.Decide (or a literal inside
// it) — the single sanctioned consumer of external randomness.
func (a *dfAnalysis) inFaultDecide(f *Func) bool {
	return f.Decl.Pkg.Path == modPath+"/internal/fault" && f.Decl.Obj.Name() == "Decide"
}

// recordStores taints globals and fields written with tainted values;
// reports whether anything new was learned.
func (a *dfAnalysis) recordStores(f *Func, taint map[*Value]string) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Kind != IStore || in.Val == nil || taint[in.Val] == "" {
				continue
			}
			addr := in.Addr
			for addr != nil && (addr.Kind == VAddr || addr.Kind == VDeref) {
				addr = addr.Base
			}
			if addr == nil {
				continue
			}
			label := taint[in.Val]
			switch addr.Kind {
			case VGlobal:
				if key := AliasClass(addr); key != "" && a.globalTaint[key] == "" {
					a.globalTaint[key] = label
					changed = true
				}
			case VFieldRead:
				if addr.Obj != nil && a.fieldTaint[addr.Obj] == "" {
					a.fieldTaint[addr.Obj] = label
					changed = true
				}
			}
		}
	}
	return changed
}

// summarize derives f's interprocedural taint summary from its returns.
func (a *dfAnalysis) summarize(f *Func, taint map[*Value]string) *dfSummary {
	sum := &dfSummary{paramFlow: make(map[int]bool)}
	memo := make(map[*Value]map[int]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Kind != IReturn {
				continue
			}
			for _, res := range in.Results {
				if sum.srcResult == "" && taint[res] != "" {
					sum.srcResult = taint[res]
				}
				for idx := range a.reachParams(res, memo) {
					sum.paramFlow[idx] = true
				}
			}
		}
	}
	return sum
}

// reachParams walks the value graph backwards from v collecting the
// parameter indices (-1 for the receiver) whose taint could reach it.
func (a *dfAnalysis) reachParams(v *Value, memo map[*Value]map[int]bool) map[int]bool {
	if v == nil {
		return nil
	}
	if got, ok := memo[v]; ok {
		return got // in-progress entries are nil: cycles contribute nothing
	}
	memo[v] = nil
	out := make(map[int]bool)
	add := func(set map[int]bool) {
		for k := range set {
			out[k] = true
		}
	}
	switch v.Kind {
	case VParam:
		out[v.ResIdx] = true
	case VRecv:
		out[-1] = true
	case VConst, VZero, VGlobal:
		// No parameter dependence.
	case VCall:
		if v.Callee != nil && moduleFunc(v.Callee) {
			for _, target := range a.prog.calleesOf(v) {
				sum := a.sums[target]
				if sum == nil {
					continue
				}
				for i, arg := range v.Args {
					if sum.paramFlow[paramIndexOf(target, i)] {
						add(a.reachParams(arg, memo))
					}
				}
				if sum.paramFlow[-1] {
					add(a.reachParams(v.Base, memo))
				}
			}
		} else {
			for _, arg := range v.Args {
				add(a.reachParams(arg, memo))
			}
			add(a.reachParams(v.Base, memo))
		}
	default:
		for _, arg := range v.Args {
			add(a.reachParams(arg, memo))
		}
		add(a.reachParams(v.Base, memo))
	}
	memo[v] = out
	return out
}

// reportSinks emits a finding for every tainted value reaching a sink.
func (a *dfAnalysis) reportSinks(f *Func, taint map[*Value]string, report func(*Func, *Value, string)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Kind != IStore || in.Val == nil || taint[in.Val] == "" {
				continue
			}
			if desc := simulatedStateDesc(in.Addr); desc != "" {
				report(f, in.Addr, fmt.Sprintf(
					"nondeterministic value (%s) stored into simulated state %s — worlds must replay byte-identically; derive it from the seeded sim clock/PRNG instead",
					taint[in.Val], desc))
			}
		}
		for _, call := range b.Calls {
			if call.Callee == nil {
				continue
			}
			if moduleFunc(call.Callee) && strings.Contains(call.Callee.Name(), "Digest") {
				for _, arg := range call.Args {
					if taint[arg] != "" {
						report(f, call, fmt.Sprintf(
							"nondeterministic value (%s) flows into %s — digest inputs must be replay-stable (sort map-derived data, use sim time)",
							taint[arg], call.Callee.Name()))
						break
					}
				}
			}
			if idx, ok := timingSinkArg(call.Callee); ok && idx < len(call.Args) && taint[call.Args[idx]] != "" {
				report(f, call, fmt.Sprintf(
					"nondeterministic value (%s) used as an event timestamp in %s — simulated time must come from the deterministic engine",
					taint[call.Args[idx]], call.Callee.Name()))
			}
		}
	}
}

// simulatedStateDesc names the simulated-state location addr writes, or ""
// when the store target is not simulated state. A location is simulated
// state when it is (a field chain or element of) a package-level var or
// struct type declared in a lint.ParallelScope package.
func simulatedStateDesc(addr *Value) string {
	for v := addr; v != nil; {
		switch v.Kind {
		case VGlobal:
			if v.Obj != nil && simulatedPkg(v.Obj.Pkg()) {
				return v.Obj.Pkg().Name() + "." + v.Obj.Name()
			}
			return ""
		case VFieldRead:
			if v.Obj != nil && simulatedPkg(v.Obj.Pkg()) {
				owner := v.Obj.Pkg().Name()
				if n := namedType(v.Base.Type); n != nil {
					owner = owner + "." + n.Obj().Name()
				}
				return owner + "." + v.Obj.Name()
			}
			v = v.Base
		case VIndexRead, VAddr, VDeref:
			v = v.Base
		default:
			return ""
		}
	}
	return ""
}

// simulatedPkg reports whether pkg is one of the simulated packages the
// parallel harness schedules concurrently.
func simulatedPkg(pkg *types.Package) bool {
	if pkg == nil || !strings.HasPrefix(pkg.Path(), modPath+"/") {
		return false
	}
	return lint.InParallelScope(strings.TrimPrefix(pkg.Path(), modPath+"/") + "/")
}

// moduleFunc reports whether fn is declared inside the module.
func moduleFunc(fn *types.Func) bool {
	return fn.Pkg() != nil && (fn.Pkg().Path() == modPath ||
		strings.HasPrefix(fn.Pkg().Path(), modPath+"/"))
}

// timingSinkArg returns the argument index carrying a simulated timestamp
// or delay for the sim-layer timing primitives.
func timingSinkArg(fn *types.Func) (int, bool) {
	if fn.Pkg() == nil || fn.Pkg().Path() != modPath+"/internal/sim" {
		return 0, false
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedType(sig.Recv().Type()); n != nil {
			recv = n.Obj().Name()
		}
	}
	switch recv + "." + fn.Name() {
	case "Proc.Delay", "Engine.At", "Engine.After":
		return 0, true
	case "Cond.WaitTimeout":
		return 1, true
	}
	return 0, false
}

// paramIndexOf maps argument position i at a call to fn onto fn's
// parameter index, folding variadic tails onto the last parameter.
func paramIndexOf(fn *types.Func, i int) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return i
	}
	if n := sig.Params().Len(); n > 0 && i >= n {
		return n - 1
	}
	return i
}
