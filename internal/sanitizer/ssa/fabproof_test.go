package ssa

import (
	"strings"
	"testing"

	"shootdown/internal/sanitizer/lint"
)

func TestFabproofUnboundedAppendFires(t *testing.T) {
	res := checkFixture(t, "bad_fabproof.go")
	if got := countBy(res.Findings, "fabproof"); got != 1 {
		t.Fatalf("fabproof findings = %d, want exactly 1: %v", got, res.Findings)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("total findings = %d, want 1: %v", len(res.Findings), res.Findings)
	}
	f := res.Findings[0]
	if !strings.Contains(f.Msg, "length bound") || !strings.Contains(f.Msg, "full flush") {
		t.Fatalf("finding should name the missing bound and the collapse: %v", f)
	}
}

func TestFabproofGoodFixtureClean(t *testing.T) {
	res := checkFixture(t, "good_fabproof.go")
	if len(res.Findings) != 0 {
		t.Fatalf("guarded fixture should be clean, got %v", res.Findings)
	}
	if len(res.Suppressions) != 1 {
		t.Fatalf("suppressions = %d, want exactly 1 (the waiver): %v", len(res.Suppressions), res.Suppressions)
	}
	if s := res.Suppressions[0]; s.Analyzer != "fabproof" || !strings.Contains(s.Reason, "drains") {
		t.Fatalf("unexpected suppression: %+v", s)
	}
}

func TestStaleFabMarkerFires(t *testing.T) {
	res := checkFixture(t, "bad_fabmarker.go")
	if got := countBy(res.Findings, "stalemarker"); got != 1 {
		t.Fatalf("stalemarker findings = %d, want exactly 1: %v", got, res.Findings)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("total findings = %d, want 1: %v", len(res.Findings), res.Findings)
	}
	if !strings.Contains(res.Findings[0].Msg, "bounded-by-design") {
		t.Fatalf("finding should name the marker vocabulary: %v", res.Findings[0])
	}
}

// TestFabproofBrokenCoalesceWitness is the static half of the seeded
// coalesce-shrink cross-validation contract: on the clean module the
// fabproof tier must rediscover the config-planted BrokenCoalesceShrink
// coverage loss — as exactly one witness, inside the merge function,
// on the path only the broken knob enables — while producing zero
// findings. The dynamic half lives in internal/workload
// (TestBrokenCoalesceShrinkCaughtExactlyOnce).
func TestFabproofBrokenCoalesceWitness(t *testing.T) {
	res := CheckModule(sharedModule(t))
	if len(res.Findings) != 0 {
		t.Fatalf("module should be clean, got %v", res.Findings)
	}
	var fabWits []lint.Finding
	for _, w := range res.Witnesses {
		if w.Analyzer == "fabproof" {
			fabWits = append(fabWits, w)
		}
	}
	if len(fabWits) != 1 {
		t.Fatalf("fabproof witnesses = %d, want exactly 1 (the seeded coalesce shrink): %v", len(fabWits), res.Witnesses)
	}
	w := fabWits[0]
	if !strings.Contains(w.File, "internal/smp/fabric.go") {
		t.Fatalf("witness should sit in the fabric's merge: %v", w)
	}
	for _, want := range []string{"brokenCoalesce", "coverage loss", "stale translation"} {
		if !strings.Contains(w.Msg, want) {
			t.Fatalf("witness message should mention %q: %v", want, w)
		}
	}
}

// TestFabproofAllProven asserts every fabric obligation is statically
// discharged on the clean tree — the rows CI publishes as FABPROOF.txt —
// with zero waivers, in pinned order.
func TestFabproofAllProven(t *testing.T) {
	res := CheckModule(sharedModule(t))
	wantKeys := []string{
		fabRingBound, fabRingOverflow, fabSeqMono, fabAckMono, fabGenMono,
		fabRetryCap, fabCoalesce, fabCallbackOnce, fabFreedFall, fabInvalWF,
	}
	if len(res.FabRows) != len(wantKeys) {
		t.Fatalf("FabRows = %d, want %d: %+v", len(res.FabRows), len(wantKeys), res.FabRows)
	}
	for i, r := range res.FabRows {
		if r.Key != wantKeys[i] {
			t.Fatalf("row %d key = %q, want %q", i, r.Key, wantKeys[i])
		}
		if r.Status != "proven" {
			t.Fatalf("row %s status = %q, want proven (detail: %s)", r.Key, r.Status, r.Detail)
		}
		if r.Subject == "" || r.Property == "" || r.Detail == "" {
			t.Fatalf("row %s is missing subject/property/detail: %+v", r.Key, r)
		}
	}
}
