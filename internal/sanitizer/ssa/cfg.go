package ssa

import (
	"go/ast"
	"go/token"
)

// This file implements the intraprocedural control-flow graph the typed
// analyzers run their dataflow on. The builder makes two choices that the
// analyses rely on:
//
//   - Short-circuit conditions are desugared: `a && b`, `a || b` and `!a`
//     become chains of single-condition branch blocks, so an analysis sees
//     every atomic condition (`err != nil`, `fr.Empty()`, a TryDown call)
//     with its own true/false edges. This is what lets flushobligation
//     treat `if err == nil && !fr.Empty() { ... }` path-sensitively
//     without a general symbolic evaluator.
//
//   - `panic(...)` and calls to functions that the builder cannot see
//     through are ordinary nodes, but panic terminates its block into the
//     dedicated panicExit block, so analyses can decide separately what an
//     obligation means on a crashing path.
//
// The graph is deliberately small: blocks hold AST nodes in evaluation
// order; a block either ends in an atomic condition (tsucc/fsucc) or in
// zero or more unconditional successors.

// cfgBlock is one straight-line run of AST nodes.
type cfgBlock struct {
	nodes []ast.Node
	// cond, when non-nil, is the atomic branch condition ending the block;
	// tsucc/fsucc are its outcome edges. When nil, succs lists the
	// unconditional successors (empty for exit blocks).
	cond         ast.Expr
	tsucc, fsucc *cfgBlock
	succs        []*cfgBlock
	// isLoopHead marks blocks that re-evaluate a for/range header, so
	// element-obligation analyses can detect values leaking across
	// iterations.
	isLoopHead bool
	// rangeStmt, on a loop-head block, is the range statement whose
	// per-iteration variables are rebound there (nil for plain for loops).
	rangeStmt *ast.RangeStmt
	// isSelectComm marks the entry block of a select communication clause:
	// which arm runs is scheduling-dependent, so values bound there are
	// nondeterminism sources for the detflow taint analysis.
	isSelectComm bool
}

func (b *cfgBlock) successors() []*cfgBlock {
	if b.cond != nil {
		return []*cfgBlock{b.tsucc, b.fsucc}
	}
	return b.succs
}

// funcCFG is the graph of one function body.
type funcCFG struct {
	entry *cfgBlock
	// exit collects normal termination (returns and falling off the end).
	exit *cfgBlock
	// panicExit collects panicking paths.
	panicExit *cfgBlock
	blocks    []*cfgBlock
	// defers lists the deferred calls in source order.
	defers []*ast.DeferStmt
}

type loopFrame struct {
	label           string
	breakTo, contTo *cfgBlock
}

type cfgBuilder struct {
	g     *funcCFG
	loops []loopFrame
	// switchBreak tracks the innermost breakable non-loop statement
	// (switch/select) target per label.
	breakables []loopFrame
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{g: &funcCFG{}}
	b.g.exit = b.newBlock()
	b.g.panicExit = b.newBlock()
	b.g.entry = b.newBlock()
	end := b.stmts(body.List, b.g.entry, "")
	if end != nil {
		b.connect(end, b.g.exit)
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) connect(from, to *cfgBlock) {
	if from == nil || from.cond != nil {
		return
	}
	from.succs = append(from.succs, to)
}

// stmts lowers a statement list starting in cur; it returns the block
// control falls out of, or nil when every path terminated (return/panic/
// branch).
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *cfgBlock, label string) *cfgBlock {
	for i, s := range list {
		lbl := ""
		if i == 0 {
			lbl = label
		}
		cur = b.stmt(s, cur, lbl)
		if cur == nil {
			// Remaining statements are unreachable; still record their
			// nodes for analyses that scan declarations, in a dead block.
			if i+1 < len(list) {
				dead := b.newBlock()
				_ = b.stmts(list[i+1:], dead, "")
			}
			return nil
		}
	}
	return cur
}

// stmt lowers one statement; label propagates through LabeledStmt so
// labeled loops can be targeted by break/continue.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *cfgBlock, label string) *cfgBlock {
	if cur == nil {
		return nil
	}
	switch v := s.(type) {
	case *ast.LabeledStmt:
		return b.stmt(v.Stmt, cur, v.Label.Name)

	case *ast.BlockStmt:
		return b.stmts(v.List, cur, "")

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, v)
		b.connect(cur, b.g.exit)
		return nil

	case *ast.ExprStmt:
		cur.nodes = append(cur.nodes, v)
		if isPanicCall(v.X) {
			b.connect(cur, b.g.panicExit)
			return nil
		}
		return cur

	case *ast.DeferStmt:
		cur.nodes = append(cur.nodes, v)
		b.g.defers = append(b.g.defers, v)
		return cur

	case *ast.IfStmt:
		if v.Init != nil {
			cur = b.stmt(v.Init, cur, "")
		}
		thenB, elseB, after := b.newBlock(), b.newBlock(), b.newBlock()
		b.cond(v.Cond, cur, thenB, elseB)
		if end := b.stmt(v.Body, thenB, ""); end != nil {
			b.connect(end, after)
		}
		if v.Else != nil {
			if end := b.stmt(v.Else, elseB, ""); end != nil {
				b.connect(end, after)
			}
		} else {
			b.connect(elseB, after)
		}
		return after

	case *ast.ForStmt:
		if v.Init != nil {
			cur = b.stmt(v.Init, cur, "")
		}
		head, body, after := b.newBlock(), b.newBlock(), b.newBlock()
		head.isLoopHead = true
		b.connect(cur, head)
		if v.Cond != nil {
			b.cond(v.Cond, head, body, after)
		} else {
			b.connect(head, body)
		}
		post := b.newBlock()
		b.loops = append(b.loops, loopFrame{label: label, breakTo: after, contTo: post})
		end := b.stmts(v.Body.List, body, "")
		b.loops = b.loops[:len(b.loops)-1]
		if end != nil {
			b.connect(end, post)
		}
		if v.Post != nil {
			if p := b.stmt(v.Post, post, ""); p != nil {
				b.connect(p, head)
			}
		} else {
			b.connect(post, head)
		}
		return after

	case *ast.RangeStmt:
		head, body, after := b.newBlock(), b.newBlock(), b.newBlock()
		head.isLoopHead = true
		head.rangeStmt = v
		head.nodes = append(head.nodes, v)
		b.connect(cur, head)
		b.connect(head, body)
		b.connect(head, after)
		b.loops = append(b.loops, loopFrame{label: label, breakTo: after, contTo: head})
		end := b.stmts(v.Body.List, body, "")
		b.loops = b.loops[:len(b.loops)-1]
		if end != nil {
			b.connect(end, head)
		}
		return after

	case *ast.SwitchStmt:
		if v.Init != nil {
			cur = b.stmt(v.Init, cur, "")
		}
		if v.Tag != nil {
			cur.nodes = append(cur.nodes, v.Tag)
		}
		return b.switchClauses(v.Body.List, cur, label, false)

	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			cur = b.stmt(v.Init, cur, "")
		}
		cur.nodes = append(cur.nodes, v.Assign)
		return b.switchClauses(v.Body.List, cur, label, false)

	case *ast.SelectStmt:
		return b.switchClauses(v.Body.List, cur, label, true)

	case *ast.BranchStmt:
		cur.nodes = append(cur.nodes, v)
		name := ""
		if v.Label != nil {
			name = v.Label.Name
		}
		switch v.Tok {
		case token.BREAK:
			if t := b.findBreak(name); t != nil {
				b.connect(cur, t)
			}
		case token.CONTINUE:
			if t := b.findContinue(name); t != nil {
				b.connect(cur, t)
			}
		case token.FALLTHROUGH:
			// Handled by switchClauses via clause ordering; treated as
			// falling to the next clause by the caller.
			return cur
		case token.GOTO:
			// Not used in this module; treat conservatively as
			// terminating so no spurious path claims are made.
		}
		return nil

	default:
		// Assignments, declarations, incdec, go, send, empty: straight-line.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// switchClauses lowers switch/type-switch/select bodies: the head fans out
// to every clause (and to after when no default exists).
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, head *cfgBlock, label string, isSelect bool) *cfgBlock {
	after := b.newBlock()
	hasDefault := false
	entries := make([]*cfgBlock, len(clauses))
	var bodies [][]ast.Stmt
	for i, cs := range clauses {
		entry := b.newBlock()
		entries[i] = entry
		b.connect(head, entry)
		switch c := cs.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				entry.nodes = append(entry.nodes, e)
			}
			bodies = append(bodies, c.Body)
		case *ast.CommClause:
			entry.isSelectComm = true
			if c.Comm == nil {
				hasDefault = true
			} else {
				entry.nodes = append(entry.nodes, c.Comm)
			}
			bodies = append(bodies, c.Body)
		default:
			bodies = append(bodies, nil)
		}
	}
	if !hasDefault || isSelect {
		// Without a default the switch may fall through whole; a select
		// without default blocks, but modeling the skip edge is harmless
		// for the may-analyses built on this graph.
		b.connect(head, after)
	}
	b.loops = append(b.loops, loopFrame{})
	b.breakables = append(b.breakables, loopFrame{label: label, breakTo: after})
	b.loops = b.loops[:len(b.loops)-1]
	for i, body := range bodies {
		end := b.stmts(body, entries[i], "")
		if end != nil {
			if ft := fallsThrough(body); ft && i+1 < len(entries) {
				b.connect(end, entries[i+1])
			} else {
				b.connect(end, after)
			}
		}
	}
	b.breakables = b.breakables[:len(b.breakables)-1]
	return after
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *cfgBuilder) findBreak(label string) *cfgBlock {
	// Nearest breakable (switch/select) wins for unlabeled breaks when it
	// is inner to the nearest loop; the builder pushes breakables after
	// loops, so scan both stacks by recency.
	if label == "" {
		if len(b.breakables) > 0 {
			return b.breakables[len(b.breakables)-1].breakTo
		}
		if len(b.loops) > 0 {
			return b.loops[len(b.loops)-1].breakTo
		}
		return nil
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		if b.loops[i].label == label {
			return b.loops[i].breakTo
		}
	}
	for i := len(b.breakables) - 1; i >= 0; i-- {
		if b.breakables[i].label == label {
			return b.breakables[i].breakTo
		}
	}
	return nil
}

func (b *cfgBuilder) findContinue(label string) *cfgBlock {
	for i := len(b.loops) - 1; i >= 0; i-- {
		if b.loops[i].contTo == nil {
			continue
		}
		if label == "" || b.loops[i].label == label {
			return b.loops[i].contTo
		}
	}
	return nil
}

// cond lowers a branch condition with short-circuit desugaring: every
// atomic condition gets its own block ending in tsucc/fsucc edges.
func (b *cfgBuilder) cond(e ast.Expr, cur, tsucc, fsucc *cfgBlock) {
	switch v := e.(type) {
	case *ast.ParenExpr:
		b.cond(v.X, cur, tsucc, fsucc)
		return
	case *ast.UnaryExpr:
		if v.Op == token.NOT {
			b.cond(v.X, cur, fsucc, tsucc)
			return
		}
	case *ast.BinaryExpr:
		switch v.Op {
		case token.LAND:
			mid := b.newBlock()
			b.cond(v.X, cur, mid, fsucc)
			b.cond(v.Y, mid, tsucc, fsucc)
			return
		case token.LOR:
			mid := b.newBlock()
			b.cond(v.X, cur, tsucc, mid)
			b.cond(v.Y, mid, tsucc, fsucc)
			return
		}
	}
	cur.nodes = append(cur.nodes, e)
	cur.cond = e
	cur.tsucc = tsucc
	cur.fsucc = fsucc
}

func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
