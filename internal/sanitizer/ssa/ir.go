package ssa

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file lowers the per-function CFG into a def-use SSA form. The IR is
// built with the marker-free variant of Braun et al.'s simple-and-efficient
// SSA construction: variables are read on demand, phi nodes appear only at
// joins that actually merge distinct definitions, and loop headers are
// sealed once every back edge has been filled.
//
// Design choices the analyzers rely on:
//
//   - Every expression evaluates to a Value; Values form a DAG (plus phi
//     cycles) whose edges are Args/Base, so "where could this come from"
//     is a graph walk rather than a re-derivation from syntax.
//   - Address-of and pointer-deref are passthrough-shaped (the Value keeps
//     its own kind but analyses follow Base), which matches how the
//     simulated kernel passes descriptors around: *T and T alias.
//   - Side effects are explicit: calls, stores (to fields, globals, index
//     expressions and captured variables), sends, returns, go and defer
//     each produce an Instr in block order, so path-sensitive analyses
//     replay a block by folding its Instrs.
//   - Alias classes: AliasClass maps a Value to a stable string key —
//     params ("p:0"), receivers ("r"), globals ("g:pkg.name") and field
//     chains off those ("r.queue") — giving interprocedural summaries a
//     common vocabulary without a points-to analysis.

// ValueKind discriminates Value.
type ValueKind uint8

const (
	// VUnknown is an expression the lowering does not model.
	VUnknown ValueKind = iota
	// VZero is the zero value of a declared-without-init variable.
	VZero
	// VConst is an untyped or typed constant (including nil).
	VConst
	// VParam and VRecv are the function's own bindings.
	VParam
	VRecv
	// VFree is a variable captured from an enclosing function.
	VFree
	// VGlobal is a read of a package-level variable.
	VGlobal
	// VPhi merges one definition per predecessor at a join.
	VPhi
	// VCall is the result of a call (ResIdx selects among multiple results).
	VCall
	// VExtract projects result ResIdx out of a multi-result VCall.
	VExtract
	// VFieldRead is x.f (Obj is the field, Base the struct value).
	VFieldRead
	// VIndexRead is x[i] (Base is x).
	VIndexRead
	// VDeref is *x, VAddr is &x; both are passthroughs over Base.
	VDeref
	VAddr
	// VOp is any other operator expression (binary, unary, type assert).
	VOp
	// VComposite is a composite literal; Args are the element values.
	VComposite
	// VRangeKey/VRangeVal are per-iteration range bindings over Base.
	VRangeKey
	VRangeVal
	// VClosure is a func literal value; Unit is its lowered body.
	VClosure
)

// Value is one SSA value.
type Value struct {
	ID   int
	Kind ValueKind
	Type types.Type
	Pos  token.Pos
	// Expr is the defining expression (nil for synthetic values).
	Expr ast.Expr
	// Call/Callee/Builtin describe VCall: the site, the resolved callee
	// (nil for func-typed values) and the builtin name ("append", "copy",
	// "make", ...) when the callee is universe-scoped.
	Call    *ast.CallExpr
	Callee  *types.Func
	Builtin string
	ResIdx  int
	// Op is the operator token for VOp values lowered from unary/binary
	// expressions, ++/-- statements (INC/DEC) and compound assignments
	// (ADD_ASSIGN, ...); token.ILLEGAL when the op is not operator-shaped.
	Op token.Token
	// Args are operand values: phi operands (aligned with Block.Preds),
	// call arguments, composite elements, operator operands.
	Args []*Value
	// Base is the receiver/base value for field/index/deref/addr/range and
	// method calls.
	Base *Value
	// Obj is the variable this value binds or reads: the parameter,
	// captured or global variable, the field object for VFieldRead, or the
	// variable a phi merges.
	Obj *types.Var
	// Block is the defining block (phis only).
	Block *IRBlock
	// Unit is the lowered body of a VClosure.
	Unit *Func
}

// InstrKind discriminates Instr.
type InstrKind uint8

const (
	// IExpr evaluates Val for effect (calls in statement position).
	IExpr InstrKind = iota
	// IStore writes Val through the place described by Addr (a
	// VFieldRead/VIndexRead/VGlobal/VDeref/VFree-shaped value).
	IStore
	// IReturn leaves the function with Results.
	IReturn
	// ISend sends Val on channel Addr.
	ISend
	// IGo and IDefer launch/defer the call Val.
	IGo
	IDefer
)

// Instr is one side-effecting instruction.
type Instr struct {
	Kind    InstrKind
	Val     *Value
	Addr    *Value
	Results []*Value
	Pos     token.Pos
}

// IRBlock parallels one cfgBlock.
type IRBlock struct {
	Index int
	cfg   *cfgBlock
	Preds []*IRBlock
	Succs []*IRBlock
	// Phis are the join values defined at this block head.
	Phis []*Value
	// Instrs replay the block's side effects in order.
	Instrs []*Instr
	// CondV is the value of the atomic branch condition ending the block.
	CondV *Value
	// SelectComm marks select communication-clause entries (see cfg).
	SelectComm bool
	// LoopHead mirrors cfgBlock.isLoopHead.
	LoopHead bool
	// Calls lists the block's VCall values in evaluation order, so
	// path-sensitive analyses replay call effects without re-walking AST.
	Calls []*Value
}

// Func is the SSA form of one function body (declaration or literal).
type Func struct {
	// Decl is the enclosing declaration; for a literal unit it is the
	// declaration the literal appears in.
	Decl FuncDecl
	// Lit is non-nil when this unit lowers a func literal body.
	Lit                    *ast.FuncLit
	Sig                    *types.Signature
	Blocks                 []*IRBlock
	Entry, Exit, PanicExit *IRBlock
	// Defers lists deferred calls in source order (applied at exit).
	Defers []*Value
	// Lits lists the literal units nested directly in this body.
	Lits []*Func

	info       *types.Info
	values     []*Value
	defs       map[*types.Var]map[*IRBlock]*Value
	incomplete map[*IRBlock]map[*types.Var]*Value
	sealed     map[*IRBlock]bool
	filled     map[*IRBlock]bool
	params     map[*types.Var]*Value
	byBlock    map[*cfgBlock]*IRBlock
}

// Name labels the unit for reports.
func (f *Func) Name() string {
	if f.Lit != nil {
		return "the function literal in " + f.Decl.Decl.Name.Name
	}
	return f.Decl.Decl.Name.Name
}

// buildFunc lowers one declared function body.
func buildFunc(fd FuncDecl) *Func {
	sig, _ := fd.Obj.Type().(*types.Signature)
	return lowerBody(fd, nil, sig, fd.Decl.Body)
}

// lowerBody builds the CFG and SSA form for body; lit is non-nil for
// literal units.
func lowerBody(fd FuncDecl, lit *ast.FuncLit, sig *types.Signature, body *ast.BlockStmt) *Func {
	f := &Func{
		Decl: fd, Lit: lit, Sig: sig,
		info:       fd.Pkg.Info,
		defs:       make(map[*types.Var]map[*IRBlock]*Value),
		incomplete: make(map[*IRBlock]map[*types.Var]*Value),
		sealed:     make(map[*IRBlock]bool),
		filled:     make(map[*IRBlock]bool),
		params:     make(map[*types.Var]*Value),
		byBlock:    make(map[*cfgBlock]*IRBlock),
	}
	g := buildCFG(body)
	for i, cb := range g.blocks {
		b := &IRBlock{Index: i, cfg: cb, SelectComm: cb.isSelectComm, LoopHead: cb.isLoopHead}
		f.Blocks = append(f.Blocks, b)
		f.byBlock[cb] = b
	}
	for _, b := range f.Blocks {
		for _, s := range b.cfg.successors() {
			sb := f.byBlock[s]
			b.Succs = append(b.Succs, sb)
			sb.Preds = append(sb.Preds, b)
		}
	}
	f.Entry = f.byBlock[g.entry]
	f.Exit = f.byBlock[g.exit]
	f.PanicExit = f.byBlock[g.panicExit]

	// Bind the receiver and parameters in the entry block.
	if sig != nil {
		if r := sig.Recv(); r != nil {
			v := f.newValue(VRecv, r.Type(), r.Pos())
			v.Obj = r
			f.params[r] = v
			f.writeVar(r, f.Entry, v)
		}
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			v := f.newValue(VParam, p.Type(), p.Pos())
			v.Obj = p
			v.ResIdx = i
			f.params[p] = v
			f.writeVar(p, f.Entry, v)
		}
	}

	// Fill blocks in reverse postorder; only back-edge targets stay
	// unsealed past their fill, and they are sealed at the end.
	order := f.rpo()
	for _, b := range order {
		f.trySeal(b)
		f.fill(b)
	}
	for _, b := range f.Blocks {
		if !f.filled[b] {
			f.fill(b) // dead code: still lowered so scans see it
		}
	}
	for _, b := range f.Blocks {
		if !f.sealed[b] {
			f.seal(b)
		}
	}
	for _, d := range g.defers {
		if v := f.deferValue(d); v != nil {
			f.Defers = append(f.Defers, v)
		}
	}
	return f
}

// deferValue finds the lowered call value of a defer statement.
func (f *Func) deferValue(d *ast.DeferStmt) *Value {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == IDefer && in.Pos == d.Pos() {
				return in.Val
			}
		}
	}
	return nil
}

// rpo returns the reachable blocks in reverse postorder from entry.
func (f *Func) rpo() []*IRBlock {
	seen := make(map[*IRBlock]bool)
	var post []*IRBlock
	var walk func(b *IRBlock)
	walk = func(b *IRBlock) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
		post = append(post, b)
	}
	walk(f.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

func (f *Func) trySeal(b *IRBlock) {
	if f.sealed[b] {
		return
	}
	for _, p := range b.Preds {
		if !f.filled[p] {
			return
		}
	}
	f.seal(b)
}

func (f *Func) seal(b *IRBlock) {
	for v, phi := range f.incomplete[b] {
		f.addPhiOperands(v, phi)
	}
	delete(f.incomplete, b)
	f.sealed[b] = true
}

func (f *Func) newValue(k ValueKind, t types.Type, pos token.Pos) *Value {
	v := &Value{ID: len(f.values), Kind: k, Type: t, Pos: pos}
	f.values = append(f.values, v)
	return v
}

// Values lists every value of the unit.
func (f *Func) Values() []*Value { return f.values }

func (f *Func) writeVar(v *types.Var, b *IRBlock, val *Value) {
	if f.defs[v] == nil {
		f.defs[v] = make(map[*IRBlock]*Value)
	}
	f.defs[v][b] = val
}

// readVar resolves the reaching definition of v at the head-to-current
// point of b, inserting phis on demand (Braun SSA construction).
func (f *Func) readVar(v *types.Var, b *IRBlock) *Value {
	if val := f.defs[v][b]; val != nil {
		return val
	}
	var val *Value
	switch {
	case !f.sealed[b]:
		phi := f.newValue(VPhi, v.Type(), v.Pos())
		phi.Obj, phi.Block = v, b
		b.Phis = append(b.Phis, phi)
		if f.incomplete[b] == nil {
			f.incomplete[b] = make(map[*types.Var]*Value)
		}
		f.incomplete[b][v] = phi
		val = phi
	case len(b.Preds) == 1:
		val = f.readVar(v, b.Preds[0])
	case len(b.Preds) == 0:
		val = f.initialValue(v)
	default:
		phi := f.newValue(VPhi, v.Type(), v.Pos())
		phi.Obj, phi.Block = v, b
		b.Phis = append(b.Phis, phi)
		f.writeVar(v, b, phi) // break read cycles through loops
		f.addPhiOperands(v, phi)
		val = triviallyResolved(phi)
	}
	f.writeVar(v, b, val)
	return val
}

func (f *Func) addPhiOperands(v *types.Var, phi *Value) {
	for _, p := range phi.Block.Preds {
		phi.Args = append(phi.Args, f.readVar(v, p))
	}
}

// triviallyResolved collapses a phi whose operands all agree (or refer to
// the phi itself) into the single merged value.
func triviallyResolved(phi *Value) *Value {
	var same *Value
	for _, a := range phi.Args {
		if a == phi || a == same {
			continue
		}
		if same != nil {
			return phi
		}
		same = a
	}
	if same == nil {
		return phi
	}
	return same
}

// initialValue models a variable read that reaches the unit's entry with
// no binding: captured variables and package-level globals.
func (f *Func) initialValue(v *types.Var) *Value {
	if pv, ok := f.params[v]; ok {
		return pv
	}
	if isPackageLevel(v) {
		g := f.newValue(VGlobal, v.Type(), v.Pos())
		g.Obj = v
		return g
	}
	fv := f.newValue(VFree, v.Type(), v.Pos())
	fv.Obj = v
	return fv
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// fill lowers every node of b in order.
func (f *Func) fill(b *IRBlock) {
	if f.filled[b] {
		return
	}
	f.filled[b] = true
	for _, n := range b.cfg.nodes {
		f.lowerNode(b, n)
	}
	if b.cfg.cond != nil {
		b.CondV = f.evalExpr(b, b.cfg.cond)
	}
}

func (f *Func) emit(b *IRBlock, in *Instr) { b.Instrs = append(b.Instrs, in) }

// lowerNode lowers one CFG node (a statement or a bare expression).
func (f *Func) lowerNode(b *IRBlock, n ast.Node) {
	switch v := n.(type) {
	case ast.Expr:
		if v != b.cfg.cond { // conditions are evaluated once, at block end
			f.evalExpr(b, v)
		}
	case *ast.AssignStmt:
		f.lowerAssign(b, v)
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			f.lowerGenDecl(b, gd)
		}
	case *ast.IncDecStmt:
		old := f.evalExpr(b, v.X)
		nv := f.newValue(VOp, typeOf(f.info, v.X), v.Pos())
		nv.Expr = v.X
		nv.Op = v.Tok
		nv.Args = []*Value{old}
		f.assignTo(b, v.X, nv)
	case *ast.ExprStmt:
		val := f.evalExpr(b, v.X)
		f.emit(b, &Instr{Kind: IExpr, Val: val, Pos: v.Pos()})
	case *ast.ReturnStmt:
		var results []*Value
		if len(v.Results) == 1 && f.Sig != nil && f.Sig.Results().Len() > 1 {
			call := f.evalExpr(b, v.Results[0])
			for i := 0; i < f.Sig.Results().Len(); i++ {
				results = append(results, f.extract(call, i))
			}
		} else if len(v.Results) > 0 {
			for _, r := range v.Results {
				results = append(results, f.evalExpr(b, r))
			}
		} else if f.Sig != nil {
			// Naked return: read the named result variables.
			for i := 0; i < f.Sig.Results().Len(); i++ {
				if r := f.Sig.Results().At(i); r.Name() != "" {
					results = append(results, f.readVar(r, b))
				}
			}
		}
		f.emit(b, &Instr{Kind: IReturn, Results: results, Pos: v.Pos()})
	case *ast.SendStmt:
		ch := f.evalExpr(b, v.Chan)
		val := f.evalExpr(b, v.Value)
		f.emit(b, &Instr{Kind: ISend, Addr: ch, Val: val, Pos: v.Pos()})
	case *ast.GoStmt:
		call := f.evalExpr(b, v.Call)
		f.emit(b, &Instr{Kind: IGo, Val: call, Pos: v.Pos()})
	case *ast.DeferStmt:
		call := f.evalExpr(b, v.Call)
		f.emit(b, &Instr{Kind: IDefer, Val: call, Pos: v.Pos()})
	case *ast.RangeStmt:
		x := f.evalExpr(b, v.X)
		if kv := identObj(f.info, v.Key); kv != nil {
			k := f.newValue(VRangeKey, kv.Type(), v.Key.Pos())
			k.Obj, k.Base, k.Expr = kv, x, v.X
			f.writeVar(kv, b, k)
		}
		if v.Value != nil {
			if vv := identObj(f.info, v.Value); vv != nil {
				e := f.newValue(VRangeVal, vv.Type(), v.Value.Pos())
				e.Obj, e.Base, e.Expr = vv, x, v.X
				f.writeVar(vv, b, e)
			}
		}
	default:
		// Labeled/branch/empty statements carry no values.
	}
}

func (f *Func) lowerGenDecl(b *IRBlock, gd *ast.GenDecl) {
	if gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			obj, _ := f.info.Defs[name].(*types.Var)
			if obj == nil {
				continue
			}
			var val *Value
			switch {
			case len(vs.Values) == len(vs.Names):
				val = f.evalExpr(b, vs.Values[i])
			case len(vs.Values) == 1:
				val = f.extract(f.evalExpr(b, vs.Values[0]), i)
			default:
				val = f.newValue(VZero, obj.Type(), name.Pos())
				val.Obj = obj
			}
			f.writeVar(obj, b, val)
		}
	}
}

func (f *Func) lowerAssign(b *IRBlock, as *ast.AssignStmt) {
	var rhs []*Value
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call := f.evalExpr(b, as.Rhs[0])
		for i := range as.Lhs {
			rhs = append(rhs, f.extract(call, i))
		}
	} else {
		for _, r := range as.Rhs {
			rhs = append(rhs, f.evalExpr(b, r))
		}
	}
	for i, l := range as.Lhs {
		if i >= len(rhs) {
			break
		}
		val := rhs[i]
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			// Compound assignment folds the old value in.
			old := f.evalExpr(b, l)
			nv := f.newValue(VOp, typeOf(f.info, l), as.Pos())
			nv.Expr = l
			nv.Op = as.Tok
			nv.Args = []*Value{old, val}
			val = nv
		}
		f.assignTo(b, l, val)
	}
}

// assignTo routes a value into an lvalue: local variables update the SSA
// definition; everything else (fields, globals, indexes, derefs, captured
// variables) becomes an explicit store.
func (f *Func) assignTo(b *IRBlock, l ast.Expr, val *Value) {
	if id, ok := ast.Unparen(l).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		if obj, ok := f.info.ObjectOf(id).(*types.Var); ok {
			switch {
			case isPackageLevel(obj):
				g := f.newValue(VGlobal, obj.Type(), id.Pos())
				g.Obj = obj
				f.emit(b, &Instr{Kind: IStore, Addr: g, Val: val, Pos: id.Pos()})
			case f.isLocal(obj):
				f.writeVar(obj, b, val)
			default:
				fv := f.newValue(VFree, obj.Type(), id.Pos())
				fv.Obj = obj
				f.emit(b, &Instr{Kind: IStore, Addr: fv, Val: val, Pos: id.Pos()})
			}
			return
		}
	}
	addr := f.evalExpr(b, l)
	f.emit(b, &Instr{Kind: IStore, Addr: addr, Val: val, Pos: l.Pos()})
}

// isLocal reports whether obj is declared inside this unit's body (or is
// one of its parameters), as opposed to captured from an enclosing scope.
func (f *Func) isLocal(obj *types.Var) bool {
	if _, ok := f.params[obj]; ok {
		return true
	}
	body := ast.Node(f.Decl.Decl)
	if f.Lit != nil {
		body = f.Lit
	}
	return obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
}

func (f *Func) extract(call *Value, i int) *Value {
	if call == nil {
		return nil
	}
	if call.Kind != VCall || i == 0 && singleResult(call) {
		return call
	}
	e := f.newValue(VExtract, resultType(call, i), call.Pos)
	e.Base, e.ResIdx = call, i
	return e
}

func singleResult(call *Value) bool {
	if t, ok := call.Type.(*types.Tuple); ok {
		return t.Len() <= 1
	}
	return true
}

func resultType(call *Value, i int) types.Type {
	if t, ok := call.Type.(*types.Tuple); ok && i < t.Len() {
		return t.At(i).Type()
	}
	return call.Type
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// evalExpr lowers an expression to its Value at the current point of b.
func (f *Func) evalExpr(b *IRBlock, e ast.Expr) *Value {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return f.evalExpr(b, v.X)
	case *ast.Ident:
		return f.evalIdent(b, v)
	case *ast.BasicLit:
		c := f.newValue(VConst, typeOf(f.info, v), v.Pos())
		c.Expr = v
		return c
	case *ast.CallExpr:
		return f.evalCall(b, v)
	case *ast.SelectorExpr:
		return f.evalSelector(b, v)
	case *ast.IndexExpr:
		base := f.evalExpr(b, v.X)
		idx := f.evalExpr(b, v.Index)
		r := f.newValue(VIndexRead, typeOf(f.info, v), v.Pos())
		r.Expr, r.Base, r.Args = v, base, []*Value{idx}
		return r
	case *ast.StarExpr:
		base := f.evalExpr(b, v.X)
		r := f.newValue(VDeref, typeOf(f.info, v), v.Pos())
		r.Expr, r.Base = v, base
		return r
	case *ast.UnaryExpr:
		base := f.evalExpr(b, v.X)
		if v.Op == token.AND {
			r := f.newValue(VAddr, typeOf(f.info, v), v.Pos())
			r.Expr, r.Base = v, base
			return r
		}
		r := f.newValue(VOp, typeOf(f.info, v), v.Pos())
		r.Expr, r.Op, r.Args = v, v.Op, []*Value{base}
		if v.Op == token.ARROW && b.SelectComm {
			// Receives chosen by a select arm are order-dependent.
			r.Block = b
		}
		return r
	case *ast.BinaryExpr:
		x := f.evalExpr(b, v.X)
		y := f.evalExpr(b, v.Y)
		r := f.newValue(VOp, typeOf(f.info, v), v.Pos())
		r.Expr, r.Op, r.Args = v, v.Op, []*Value{x, y}
		return r
	case *ast.CompositeLit:
		r := f.newValue(VComposite, typeOf(f.info, v), v.Pos())
		r.Expr = v
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			r.Args = append(r.Args, f.evalExpr(b, el))
		}
		return r
	case *ast.TypeAssertExpr:
		base := f.evalExpr(b, v.X)
		r := f.newValue(VOp, typeOf(f.info, v), v.Pos())
		r.Expr, r.Args = v, []*Value{base}
		return r
	case *ast.SliceExpr:
		base := f.evalExpr(b, v.X)
		r := f.newValue(VOp, typeOf(f.info, v), v.Pos())
		r.Expr, r.Args = v, []*Value{base}
		for _, bound := range []ast.Expr{v.Low, v.High, v.Max} {
			if bound != nil {
				r.Args = append(r.Args, f.evalExpr(b, bound))
			}
		}
		return r
	case *ast.FuncLit:
		r := f.newValue(VClosure, typeOf(f.info, v), v.Pos())
		r.Expr = v
		sig, _ := typeOf(f.info, v).(*types.Signature)
		unit := lowerBody(f.Decl, v, sig, v.Body)
		r.Unit = unit
		f.Lits = append(f.Lits, unit)
		return r
	default:
		r := f.newValue(VUnknown, typeOf(f.info, e), e.Pos())
		r.Expr = e
		return r
	}
}

func (f *Func) evalIdent(b *IRBlock, id *ast.Ident) *Value {
	obj := f.info.ObjectOf(id)
	switch o := obj.(type) {
	case *types.Var:
		if isPackageLevel(o) {
			g := f.newValue(VGlobal, o.Type(), id.Pos())
			g.Obj, g.Expr = o, id
			return g
		}
		if f.isLocal(o) {
			return f.readVar(o, b)
		}
		fv := f.newValue(VFree, o.Type(), id.Pos())
		fv.Obj, fv.Expr = o, id
		return fv
	case *types.Const:
		c := f.newValue(VConst, o.Type(), id.Pos())
		c.Expr = id
		return c
	case *types.Nil:
		c := f.newValue(VConst, typeOf(f.info, id), id.Pos())
		c.Expr = id
		return c
	default:
		r := f.newValue(VUnknown, typeOf(f.info, id), id.Pos())
		r.Expr = id
		return r
	}
}

func (f *Func) evalSelector(b *IRBlock, sel *ast.SelectorExpr) *Value {
	// Qualified identifier: pkg.Var / pkg.Const / pkg.Func.
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := f.info.ObjectOf(id).(*types.PkgName); isPkg {
			switch o := f.info.ObjectOf(sel.Sel).(type) {
			case *types.Var:
				g := f.newValue(VGlobal, o.Type(), sel.Pos())
				g.Obj, g.Expr = o, sel
				return g
			case *types.Const:
				c := f.newValue(VConst, o.Type(), sel.Pos())
				c.Expr = sel
				return c
			default:
				r := f.newValue(VUnknown, typeOf(f.info, sel), sel.Pos())
				r.Expr = sel
				return r
			}
		}
	}
	base := f.evalExpr(b, sel.X)
	if fieldVar, ok := f.info.ObjectOf(sel.Sel).(*types.Var); ok {
		r := f.newValue(VFieldRead, typeOf(f.info, sel), sel.Pos())
		r.Expr, r.Base, r.Obj = sel, base, fieldVar
		return r
	}
	// Method value or embedded method selection.
	r := f.newValue(VOp, typeOf(f.info, sel), sel.Pos())
	r.Expr, r.Base = sel, base
	return r
}

func (f *Func) evalCall(b *IRBlock, call *ast.CallExpr) *Value {
	// A conversion parses as a call whose Fun is a type: passthrough.
	if len(call.Args) == 1 && f.info.Types[call.Fun].IsType() {
		return f.evalExpr(b, call.Args[0])
	}
	r := f.newValue(VCall, typeOf(f.info, call), call.Pos())
	r.Expr, r.Call = call, call
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if bi, ok := f.info.ObjectOf(id).(*types.Builtin); ok {
			r.Builtin = bi.Name()
		}
	}
	r.Callee = calleeFunc(f.info, call)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && r.Callee != nil {
		if s, ok := f.info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			r.Base = f.evalExpr(b, sel.X)
		}
	}
	if r.Callee == nil && r.Builtin == "" {
		// Calling a func-typed value: evaluate it so taint flows.
		r.Base = f.evalExpr(b, call.Fun)
	}
	for _, a := range call.Args {
		r.Args = append(r.Args, f.evalExpr(b, a))
	}
	b.Calls = append(b.Calls, r)
	return r
}

// AliasClass returns a stable interprocedural key for v: "r" (receiver),
// "p:<i>" (parameter), "g:<pkg>.<name>" (global), a ".field" chain off one
// of those, or "" when v has no stable identity across calls. Passthrough
// kinds (addr, deref, extract of a single result) are looked through.
func AliasClass(v *Value) string {
	for v != nil {
		switch v.Kind {
		case VRecv:
			return "r"
		case VParam:
			return "p:" + itoa(v.ResIdx)
		case VGlobal:
			if v.Obj != nil && v.Obj.Pkg() != nil {
				return "g:" + v.Obj.Pkg().Path() + "." + v.Obj.Name()
			}
			return ""
		case VFieldRead:
			base := AliasClass(v.Base)
			if base == "" || v.Obj == nil {
				return ""
			}
			return base + "." + v.Obj.Name()
		case VAddr, VDeref:
			v = v.Base
		default:
			return ""
		}
	}
	return ""
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + itoa(i%10)
}
