package ssa

// Numeric abstract interpretation over the SSA IR: a difference-bound
// domain (interval bounds are differences against a distinguished ZERO
// term) with widening at loop headers, plus the two interprocedural
// summaries fabproof rides on — per-function write effects (what a call
// may clobber) and true-return postconditions of boolean predicates
// (what a guard like canCoalesce establishes about its arguments).
//
// The engine is symbolic rather than purely numeric: every interesting
// quantity — a constant, a field's value at some program point, a len()
// of a slice field, an arithmetic result — is a *term*, and the state at
// a program point is a set of constraints `t_u - t_v <= c` between
// terms. An interval is the special case where one side is ZERO. Terms
// are allocated deterministically (memoized per value, per atom, per
// join point, per havoc event) so the fixpoint's state signatures are
// stable across sweeps and across -parallel worker counts.
//
// Soundness policy. Stores rebind the written atom and havoc everything
// below it; calls havoc what the callee's write summary says they may
// touch (everything, for unknown callees); loop-head joins go through
// per-(block, atom) join terms so widening compares like with like, and
// the join keeps only constraints provable in every incoming path.
// Arithmetic is modeled over the mathematical integers: unsigned wrap
// is assumed not to occur, which is exactly the "counters do not wrap
// in any reachable simulation" reading the dynamic tier enforces.
// Branch conditions are decomposed only when the condition value is
// written at the branch itself; a branch on a previously computed bool
// local refines only that bool, never its operands, so facts captured
// before an intervening store can not leak past it.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// absInf is the saturating infinity for difference bounds.
const absInf = int64(1) << 60

const zeroTerm = 0

func satAdd(a, b int64) int64 {
	if a >= absInf || b >= absInf {
		return absInf
	}
	if a <= -absInf || b <= -absInf {
		return -absInf
	}
	return a + b
}

// absDom allocates terms for one function analysis. All memo keys are
// derived from stable identities (value IDs, atom keys, block indexes)
// so repeated sweeps reuse the same term ids.
type absDom struct {
	f      *Func
	prog   *Program
	sums   *absSummaries
	nterms int
	names  []string

	valT  map[int]int
	atomT map[string]int
	joinT map[string]int
	evT   map[string]int
	cstT  map[int64]int

	events map[*IRBlock][]absEvent
}

func newAbsDom(f *Func, prog *Program, sums *absSummaries) *absDom {
	d := &absDom{
		f: f, prog: prog, sums: sums,
		valT: map[int]int{}, atomT: map[string]int{}, joinT: map[string]int{},
		evT: map[string]int{}, cstT: map[int64]int{},
		events: map[*IRBlock][]absEvent{},
	}
	d.term("zero")
	return d
}

func (d *absDom) term(name string) int {
	t := d.nterms
	d.nterms++
	d.names = append(d.names, name)
	return t
}

func (d *absDom) valTerm(v *Value) int {
	if t, ok := d.valT[v.ID]; ok {
		return t
	}
	t := d.term("v" + itoa(v.ID))
	d.valT[v.ID] = t
	return t
}

func (d *absDom) atomTerm(key string) int {
	if t, ok := d.atomT[key]; ok {
		return t
	}
	t := d.term("a:" + key)
	d.atomT[key] = t
	return t
}

func (d *absDom) joinTerm(b *IRBlock, key string) int {
	k := itoa(b.Index) + "|" + key
	if t, ok := d.joinT[k]; ok {
		return t
	}
	t := d.term("j:" + k)
	d.joinT[k] = t
	return t
}

func (d *absDom) eventTerm(key string) int {
	if t, ok := d.evT[key]; ok {
		return t
	}
	t := d.term("e:" + key)
	d.evT[key] = t
	return t
}

func (d *absDom) constTerm(c int64) int {
	if t, ok := d.cstT[c]; ok {
		return t
	}
	t := d.term("c" + itoa(int(c)))
	d.cstT[c] = t
	return t
}

// atomKey returns a stable storage key for v: a chain of field selections
// rooted at the receiver ("r"), a parameter ("p:<i>"), a global
// ("g:<pkg>.<name>") or, failing those, the root value's own identity
// ("v<id>" — reads of one local resolve to one SSA value, so this is
// stable). ok is false only for nil values.
func atomKey(v *Value) (string, bool) {
	if v == nil {
		return "", false
	}
	switch v.Kind {
	case VRecv:
		return "r", true
	case VParam:
		return "p:" + itoa(v.ResIdx), true
	case VGlobal:
		if v.Obj != nil && v.Obj.Pkg() != nil {
			return "g:" + v.Obj.Pkg().Path() + "." + v.Obj.Name(), true
		}
		return "v" + itoa(v.ID), true
	case VFieldRead:
		base, ok := atomKey(v.Base)
		if !ok || v.Obj == nil {
			return "", false
		}
		return base + "." + v.Obj.Name(), true
	case VAddr, VDeref:
		return atomKey(v.Base)
	default:
		return "v" + itoa(v.ID), true
	}
}

// samePlace reports whether a and b denote the same storage location or
// the same constant: identical values, or structurally identical
// field/index/addr chains over samePlace bases and indexes.
func samePlace(a, b *Value) bool {
	a, b = chase(a), chase(b)
	if a == nil || b == nil {
		return a == b
	}
	if a == b {
		return true
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case VFieldRead:
		return a.Obj == b.Obj && samePlace(a.Base, b.Base)
	case VIndexRead:
		if !samePlace(a.Base, b.Base) || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !samePlace(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	case VConst:
		return constLitEq(a, b)
	case VOp:
		if a.Op != b.Op || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !samePlace(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// constLitEq compares two constant values syntactically: equal literals
// or the same named constant. Conservative (false on mismatch shapes).
func constLitEq(a, b *Value) bool {
	if a.Expr == nil || b.Expr == nil {
		return false
	}
	switch x := a.Expr.(type) {
	case *ast.BasicLit:
		y, ok := b.Expr.(*ast.BasicLit)
		return ok && x.Kind == y.Kind && x.Value == y.Value
	case *ast.Ident:
		y, ok := b.Expr.(*ast.Ident)
		return ok && x.Name == y.Name
	}
	return false
}

// absEvent is one side-effecting step of a block: an instruction or a
// call in evaluation order.
type absEvent struct {
	in   *Instr
	call *Value
	pos  token.Pos
	key  string // stable id for havoc/event terms
}

func (d *absDom) blockEvents(b *IRBlock) []absEvent {
	if evs, ok := d.events[b]; ok {
		return evs
	}
	var evs []absEvent
	for i, c := range b.Calls {
		evs = append(evs, absEvent{call: c, pos: c.Pos, key: "b" + itoa(b.Index) + "c" + itoa(i)})
	}
	for i, in := range b.Instrs {
		if in.Kind == IExpr && in.Val != nil && in.Val.Kind == VCall {
			continue // the call event already covers it
		}
		evs = append(evs, absEvent{in: in, pos: in.Pos, key: "b" + itoa(b.Index) + "i" + itoa(i)})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	d.events[b] = evs
	return evs
}

// absEnv is the abstract state on one path: current atom bindings plus a
// difference-bound constraint graph. edge[u][v] = c means t_u - t_v <= c.
type absEnv struct {
	dom   *absDom
	bind  map[string]int
	typ   map[string]types.Type
	out   map[int]map[int]int64
	known map[int]bool
	// fresh names the last havoc-all event; atoms materialized after it
	// get per-generation terms so pre-call facts can not resurrect.
	fresh string
	// preds records predicate calls established true by branch
	// refinement on the current path.
	preds []predFact
}

type predFact struct {
	callee *types.Func
	args   []*Value
	recv   *Value
}

func newAbsEnv(d *absDom) *absEnv {
	return &absEnv{
		dom: d, bind: map[string]int{}, typ: map[string]types.Type{},
		out: map[int]map[int]int64{}, known: map[int]bool{},
	}
}

func (e *absEnv) clone() *absEnv {
	n := &absEnv{
		dom: e.dom, bind: make(map[string]int, len(e.bind)),
		typ:   make(map[string]types.Type, len(e.typ)),
		out:   make(map[int]map[int]int64, len(e.out)),
		known: make(map[int]bool, len(e.known)),
		fresh: e.fresh, preds: append([]predFact(nil), e.preds...),
	}
	for k, v := range e.bind {
		n.bind[k] = v
	}
	for k, v := range e.typ {
		n.typ[k] = v
	}
	for k, v := range e.known {
		n.known[k] = v
	}
	for u, m := range e.out {
		nm := make(map[int]int64, len(m))
		for v, c := range m {
			nm[v] = c
		}
		n.out[u] = nm
	}
	return n
}

func (e *absEnv) addLE(u, v int, c int64) {
	if c >= absInf {
		return
	}
	m := e.out[u]
	if m == nil {
		m = map[int]int64{}
		e.out[u] = m
	}
	if old, ok := m[v]; !ok || c < old {
		m[v] = c
	}
}

func (e *absEnv) addEq(u, v int) {
	e.addLE(u, v, 0)
	e.addLE(v, u, 0)
}

func (e *absEnv) setInfeasible() { e.addLE(zeroTerm, zeroTerm, -1) }

// sssp runs Bellman-Ford from src over the constraint graph. The bool
// result is false when a negative cycle is reachable from src (the env
// is infeasible along the queried relation).
func (e *absEnv) sssp(src int) (map[int]int64, bool) {
	dist := map[int]int64{src: 0}
	nodes := map[int]bool{src: true}
	for u, m := range e.out {
		nodes[u] = true
		for v := range m {
			nodes[v] = true
		}
	}
	n := len(nodes) + 1
	changed := true
	for i := 0; i < n && changed; i++ {
		changed = false
		for u, m := range e.out {
			du, ok := dist[u]
			if !ok {
				continue
			}
			for v, c := range m {
				nd := satAdd(du, c)
				if dv, ok := dist[v]; !ok || nd < dv {
					dist[v] = nd
					changed = true
				}
			}
		}
	}
	return dist, !changed
}

// diff returns the best provable bound on t_u - t_v (absInf when none,
// -absInf when the env is infeasible along the query).
func (e *absEnv) diff(u, v int) int64 {
	if u == v {
		// Still need cycle detection through u.
		dist, ok := e.sssp(u)
		if !ok {
			return -absInf
		}
		if d, has := dist[u]; has && d < 0 {
			return d
		}
		return 0
	}
	dist, ok := e.sssp(u)
	if !ok {
		return -absInf
	}
	if d, has := dist[v]; has {
		return d
	}
	return absInf
}

func (e *absEnv) infeasible() bool { return e.diff(zeroTerm, zeroTerm) < 0 }

// upper/lower bound the term against ZERO.
func (e *absEnv) upper(t int) int64 { return e.diff(t, zeroTerm) }
func (e *absEnv) lower(t int) int64 {
	d := e.diff(zeroTerm, t)
	if d >= absInf {
		return -absInf
	}
	return -d
}

// atom materializes the current term for an atom key, creating an entry
// (or post-havoc) term on first read.
func (e *absEnv) atom(key string, typ types.Type) int {
	if t, ok := e.bind[key]; ok {
		if typ != nil && e.typ[key] == nil {
			e.typ[key] = typ
		}
		return t
	}
	t := e.dom.atomTerm(e.fresh + "|" + key)
	e.bind[key] = t
	if typ != nil {
		e.typ[key] = typ
	}
	e.seedTypeFacts(t, typ, strings.HasSuffix(key, "#len"))
	return t
}

func (e *absEnv) seedTypeFacts(t int, typ types.Type, isLen bool) {
	if isLen || isUnsignedType(typ) {
		e.addLE(zeroTerm, t, 0)
	}
	if isBoolType(typ) {
		e.addLE(zeroTerm, t, 0)
		e.addLE(t, zeroTerm, 1)
	}
}

func isUnsignedType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	if !ok && t != nil {
		b, ok = t.Underlying().(*types.Basic)
	}
	return ok && b.Info()&types.IsUnsigned != 0
}

func isBoolType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	if !ok && t != nil {
		b, ok = t.Underlying().(*types.Basic)
	}
	return ok && b.Info()&types.IsBoolean != 0
}

func isNumericType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	if !ok && t != nil {
		b, ok = t.Underlying().(*types.Basic)
	}
	return ok && b.Info()&(types.IsInteger|types.IsUntyped) != 0
}

// constInt extracts v's folded integer constant via the type info.
func constInt(f *Func, v *Value) (int64, bool) {
	if v == nil {
		return 0, false
	}
	if v.Kind == VZero {
		return 0, true
	}
	if v.Expr == nil {
		return 0, false
	}
	tv, ok := f.info.Types[v.Expr]
	if !ok || tv.Value == nil {
		return 0, false
	}
	cv := constant.ToInt(tv.Value)
	if cv.Kind() == constant.Int {
		if c, exact := constant.Int64Val(cv); exact {
			return c, true
		}
	}
	if tv.Value.Kind() == constant.Bool {
		if constant.BoolVal(tv.Value) {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

func isNilConst(f *Func, v *Value) bool {
	if v == nil || v.Kind != VConst || v.Expr == nil {
		return false
	}
	tv, ok := f.info.Types[v.Expr]
	return ok && tv.IsNil()
}

// lenArgKey returns the atom key of len(x)'s operand when x is keyable.
func lenArgKey(call *Value) (string, bool) {
	if call == nil || call.Kind != VCall || call.Builtin != "len" || len(call.Args) != 1 {
		return "", false
	}
	k, ok := atomKey(chase(call.Args[0]))
	if !ok {
		return "", false
	}
	return k + "#len", true
}

// termOf evaluates v to a term in e, adding v's defining constraints the
// first time this env lineage sees the term. Value-level constraints
// (constants, arithmetic over SSA operands) are immutable, so re-adding
// them after a join is always sound.
func (e *absEnv) termOf(f *Func, v *Value) int {
	v = chase(v)
	if v == nil {
		return e.dom.valTerm(&Value{ID: -1})
	}
	if c, ok := constInt(f, v); ok {
		t := e.dom.constTerm(c)
		if !e.known[t] {
			e.known[t] = true
			e.addLE(t, zeroTerm, c)
			e.addLE(zeroTerm, t, -c)
		}
		return t
	}
	switch v.Kind {
	case VFieldRead, VParam, VRecv, VGlobal:
		if key, ok := atomKey(v); ok {
			return e.atom(key, v.Type)
		}
	case VCall:
		if key, ok := lenArgKey(v); ok {
			return e.atom(key, nil)
		}
	case VPhi:
		// Constrained per incoming edge; never re-derive here.
		return e.dom.valTerm(v)
	case VOp:
		return e.opTerm(f, v)
	}
	t := e.dom.valTerm(v)
	if !e.known[t] {
		e.known[t] = true
		e.seedTypeFacts(t, v.Type, false)
	}
	return t
}

func (e *absEnv) opTerm(f *Func, v *Value) int {
	t := e.dom.valTerm(v)
	if e.known[t] {
		return t
	}
	e.known[t] = true
	e.seedTypeFacts(t, v.Type, false)
	switch v.Op {
	case token.INC, token.DEC:
		if len(v.Args) == 1 {
			a := e.termOf(f, v.Args[0])
			d := int64(1)
			if v.Op == token.DEC {
				d = -1
			}
			e.addLE(t, a, d)
			e.addLE(a, t, -d)
		}
	case token.ADD, token.SUB, token.ADD_ASSIGN, token.SUB_ASSIGN:
		if len(v.Args) == 2 {
			neg := v.Op == token.SUB || v.Op == token.SUB_ASSIGN
			x, y := v.Args[0], v.Args[1]
			if c, ok := constInt(f, y); ok {
				if neg {
					c = -c
				}
				a := e.termOf(f, x)
				e.addLE(t, a, c)
				e.addLE(a, t, -c)
			} else if c, ok := constInt(f, x); ok && !neg {
				a := e.termOf(f, y)
				e.addLE(t, a, c)
				e.addLE(a, t, -c)
			} else if !neg && isUnsignedType(chase(y).Type) {
				// x + unsigned: result >= x.
				a := e.termOf(f, x)
				e.addLE(a, t, 0)
			}
		}
	}
	return t
}

// --- refinement ---

// condIsFresh reports whether b's condition value is written at the
// branch itself (and may therefore be decomposed into operand facts).
func condIsFresh(b *IRBlock) bool {
	return b.cfg != nil && b.cfg.cond != nil && b.CondV != nil &&
		b.CondV.Pos == b.cfg.cond.Pos()
}

// refine narrows e with "cond == want".
func (e *absEnv) refine(f *Func, b *IRBlock, want bool) {
	cond := chase(b.CondV)
	if cond == nil {
		return
	}
	if !condIsFresh(b) {
		e.refineBool(f, cond, want)
		return
	}
	e.refineValue(f, cond, want)
}

func (e *absEnv) refineValue(f *Func, cond *Value, want bool) {
	if c, ok := constInt(f, cond); ok && isBoolType(cond.Type) {
		if (c != 0) != want {
			e.setInfeasible()
		}
		return
	}
	if cond.Kind == VOp {
		switch cond.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			e.refineCompare(f, cond, want)
			return
		case token.NOT:
			if len(cond.Args) == 1 {
				e.refineValue(f, chase(cond.Args[0]), !want)
			}
			return
		}
	}
	e.refineBool(f, cond, want)
}

func (e *absEnv) refineBool(f *Func, cond *Value, want bool) {
	if cond == nil || !isBoolType(cond.Type) {
		return
	}
	t := e.termOf(f, cond)
	if want {
		e.addLE(zeroTerm, t, -1) // t >= 1
	} else {
		e.addLE(t, zeroTerm, 0) // t <= 0
	}
	if want && cond.Kind == VCall && cond.Callee != nil {
		e.refinePredicateCall(f, cond)
	}
}

// refinePredicateCall records that a module-defined boolean predicate
// returned true on this path, and imports the facts every true-returning
// path of the predicate establishes about the call's arguments.
func (e *absEnv) refinePredicateCall(f *Func, call *Value) {
	unit := e.dom.prog.ByObj[call.Callee]
	if unit == nil {
		return
	}
	e.preds = append(e.preds, predFact{callee: call.Callee, args: call.Args, recv: call.Base})
	common := e.dom.sums.trueFactsCommon(unit)
	for _, fact := range common {
		ta, ok1 := e.mapSummaryAtom(f, fact.a, call)
		tb, ok2 := e.mapSummaryAtom(f, fact.b, call)
		if ok1 && ok2 {
			e.addLE(ta, tb, fact.c)
		}
	}
}

// mapSummaryAtom maps a callee-side atom ("p:0.End", "r.x", "" for ZERO)
// onto a caller-side term through the call's operands.
func (e *absEnv) mapSummaryAtom(f *Func, a string, call *Value) (int, bool) {
	if a == "" {
		return zeroTerm, true
	}
	root, path := a, ""
	if i := strings.IndexAny(a, ".#"); i >= 0 {
		root, path = a[:i], a[i:]
	}
	var base *Value
	switch {
	case root == "r":
		base = call.Base
	case strings.HasPrefix(root, "p:"):
		i := atoiSafe(root[2:])
		if i < 0 || i >= len(call.Args) {
			return 0, false
		}
		base = call.Args[i]
	default:
		return 0, false
	}
	key, ok := atomKey(chase(base))
	if !ok {
		return 0, false
	}
	return e.atom(key+path, nil), true
}

func atoiSafe(s string) int {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return -1
		}
		n = n*10 + int(r-'0')
	}
	return n
}

// hasPredFact reports whether the current path established callee(args)
// == true with operands samePlace-equal to the probe.
func (e *absEnv) hasPredFact(callee *types.Func, recv *Value, args []*Value) bool {
	for _, p := range e.preds {
		if p.callee != callee || len(p.args) != len(args) {
			continue
		}
		if (p.recv == nil) != (recv == nil) || (recv != nil && !samePlace(p.recv, recv)) {
			continue
		}
		match := true
		for i := range args {
			if !samePlace(p.args[i], args[i]) {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func (e *absEnv) refineCompare(f *Func, cond *Value, want bool) {
	if len(cond.Args) != 2 {
		return
	}
	x, y := chase(cond.Args[0]), chase(cond.Args[1])
	if x == nil || y == nil {
		return
	}
	op := cond.Op
	if !want {
		op = negateCmp(op)
	}
	// Boolean equality folds into bool refinement.
	if isBoolType(x.Type) || isBoolType(y.Type) {
		cx, okx := constInt(f, x)
		cy, oky := constInt(f, y)
		switch {
		case okx && !oky:
			e.refineValue(f, y, (cx != 0) == (op == token.EQL))
		case oky && !okx:
			e.refineValue(f, x, (cy != 0) == (op == token.EQL))
		}
		return
	}
	if !isNumericType(x.Type) && !isNumericType(y.Type) {
		return
	}
	tx := e.termOf(f, x)
	ty := e.termOf(f, y)
	switch op {
	case token.LSS:
		e.addLE(tx, ty, -1)
	case token.LEQ:
		e.addLE(tx, ty, 0)
	case token.GTR:
		e.addLE(ty, tx, -1)
	case token.GEQ:
		e.addLE(ty, tx, 0)
	case token.EQL:
		e.addEq(tx, ty)
	case token.NEQ:
		// no difference-bound refinement
	}
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	}
	return op
}

// --- effects ---

// havocTerm strips every constraint mentioning t (used before re-pinning
// phi and havoc terms on a new path).
func (e *absEnv) havocTerm(t int) {
	delete(e.out, t)
	for _, m := range e.out {
		delete(m, t)
	}
}

// havocSubtree rebinds every atom at or under key to fresh terms.
// Element-pointer escapes pass keepLen=true: the callee can write the
// elements but can not change the slice header's length.
func (e *absEnv) havocSubtree(key, ev string, keepLen bool) {
	for k := range e.bind {
		if k != key && !strings.HasPrefix(k, key+".") && !strings.HasPrefix(k, key+"#") {
			continue
		}
		if keepLen && strings.HasSuffix(k, "#len") {
			continue
		}
		t := e.dom.eventTerm(ev + "|" + k)
		e.havocTerm(t)
		e.bind[k] = t
		e.seedTypeFacts(t, e.typ[k], strings.HasSuffix(k, "#len"))
	}
}

func (e *absEnv) havocAll(ev string) {
	for k := range e.bind {
		t := e.dom.eventTerm(ev + "|" + k)
		e.havocTerm(t)
		e.bind[k] = t
		e.seedTypeFacts(t, e.typ[k], strings.HasSuffix(k, "#len"))
	}
	e.fresh = ev
	e.preds = nil
}

// applyStore folds one IStore into the state.
func (e *absEnv) applyStore(f *Func, ev absEvent) {
	in := ev.in
	addr := in.Addr
	key, ok := atomKey(addr)
	if !ok || addr == nil {
		return
	}
	if ch := chase(addr); ch != nil && ch.Kind == VIndexRead {
		// x[i] = v: element contents change, the header does not.
		if bkey, bok := atomKey(chase(ch.Base)); bok {
			e.havocSubtree(bkey, ev.key, true)
		}
		return
	}
	val := chase(in.Val)
	// Appends to the stored slice itself track length exactly.
	if val != nil && val.Kind == VCall && val.Builtin == "append" && len(val.Args) >= 1 {
		if akey, aok := atomKey(chase(val.Args[0])); aok && akey == key {
			lt := e.atom(key+"#len", nil)
			e.havocSubtree(key, ev.key, false)
			nt := e.dom.eventTerm(ev.key + "|#len")
			e.havocTerm(nt)
			if val.Call != nil && val.Call.Ellipsis != token.NoPos {
				e.addLE(lt, nt, 0) // grows by an unknown amount
			} else {
				grow := int64(len(val.Args) - 1)
				e.addLE(nt, lt, grow)
				e.addLE(lt, nt, -grow)
			}
			e.addLE(zeroTerm, nt, 0)
			e.bind[key+"#len"] = nt
			return
		}
	}
	// Evaluate the stored value against the pre-store state.
	var nt int
	if isNilConst(f, val) && isSliceType(addrType(addr)) {
		e.havocSubtree(key, ev.key, false)
		lt := e.dom.eventTerm(ev.key + "|#len")
		e.havocTerm(lt)
		e.addLE(lt, zeroTerm, 0)
		e.addLE(zeroTerm, lt, 0)
		e.bind[key+"#len"] = lt
		nt = e.dom.eventTerm(ev.key)
		e.havocTerm(nt)
	} else {
		nt = e.termOf(f, val)
		e.havocSubtree(key, ev.key, false)
	}
	e.bind[key] = nt
	if addr.Type != nil && e.typ[key] == nil {
		e.typ[key] = addrType(addr)
	}
}

func addrType(addr *Value) types.Type {
	if addr == nil {
		return nil
	}
	return addr.Type
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// applyCall havocs what the callee may write, per the write summaries.
func (e *absEnv) applyCall(f *Func, ev absEvent) {
	call := ev.call
	if call.Builtin != "" {
		switch call.Builtin {
		case "copy", "delete":
			if len(call.Args) > 0 {
				if key, ok := atomKey(chase(call.Args[0])); ok {
					e.havocSubtree(key, ev.key, true)
				}
			}
		}
		return
	}
	callees := e.dom.prog.calleesOf(call)
	if len(callees) == 0 {
		e.havocAll(ev.key)
		return
	}
	for _, obj := range callees {
		unit := e.dom.prog.ByObj[obj]
		if unit == nil {
			// External callee: assume it writes through its operands.
			e.havocOperand(call.Base, "", ev.key)
			for _, a := range call.Args {
				e.havocOperand(a, "", ev.key)
			}
			continue
		}
		ws := e.dom.sums.writes(unit)
		if ws.havocAll {
			e.havocAll(ev.key)
			return
		}
		for _, p := range ws.prefixes {
			root, path := p, ""
			if i := strings.IndexAny(p, ".#"); i >= 0 {
				root, path = p[:i], p[i:]
			}
			switch {
			case root == "r":
				e.havocOperand(call.Base, path, ev.key)
			case strings.HasPrefix(root, "p:"):
				if i := atoiSafe(root[2:]); i >= 0 && i < len(call.Args) {
					e.havocOperand(call.Args[i], path, ev.key)
				}
			case strings.HasPrefix(root, "g:"):
				e.havocSubtree(p, ev.key, false)
			}
		}
	}
}

// havocOperand havocs the atoms a callee write through this operand can
// reach. Non-pointer scalars can not carry writes back.
func (e *absEnv) havocOperand(v *Value, path, ev string) {
	if v == nil {
		return
	}
	ch := chase(v)
	if ch == nil {
		return
	}
	if path == "" && !carriesWrites(v.Type) && !carriesWrites(ch.Type) {
		return
	}
	keepLen := false
	if ch.Kind == VIndexRead {
		// &slice[i]: the element escapes, the header does not.
		if b := chase(ch.Base); b != nil {
			if bk, ok := atomKey(b); ok {
				e.havocSubtree(bk, ev, true)
			}
		}
		return
	}
	if key, ok := atomKey(ch); ok {
		e.havocSubtree(key+path, ev, keepLen)
	}
}

func carriesWrites(t types.Type) bool {
	if t == nil {
		return true
	}
	switch t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Signature:
		return true
	}
	return true
}

// --- join and widening ---

// joinInto joins envs from incoming edges at block b. widen applies the
// loop-header widening against prev (the previous head state).
func absJoin(b *IRBlock, incoming []*absEnv, prev *absEnv, widen bool) *absEnv {
	if len(incoming) == 0 {
		return nil
	}
	d := incoming[0].dom
	if len(incoming) == 1 && !b.LoopHead {
		return incoming[0]
	}
	r := newAbsEnv(d)
	r.fresh = incoming[0].fresh
	for _, e := range incoming[1:] {
		if e.fresh != r.fresh {
			r.fresh = "join|" + itoa(b.Index)
		}
	}
	// Predicate facts survive only when present on every path.
	r.preds = commonPreds(incoming)

	// The joined binding for every atom bound on all paths; loop heads
	// always route through join terms so widening compares stable ids.
	keys := map[string]bool{}
	for _, e := range incoming {
		for k := range e.bind {
			keys[k] = true
		}
	}
	type mapping struct {
		joined int
		per    []int // term in each incoming env, -1 when unbound
	}
	maps := map[string]mapping{}
	var nodes []int
	nodes = append(nodes, zeroTerm)
	for k := range keys {
		per := make([]int, len(incoming))
		same := true
		first := -1
		for i, e := range incoming {
			t, ok := e.bind[k]
			if !ok {
				t = -1
			}
			per[i] = t
			if i == 0 {
				first = t
			} else if t != first {
				same = false
			}
		}
		var jt int
		if same && first >= 0 && !b.LoopHead {
			jt = first
		} else {
			jt = d.joinTerm(b, k)
		}
		maps[k] = mapping{joined: jt, per: per}
		r.bind[k] = jt
		for _, e := range incoming {
			if e.typ[k] != nil {
				r.typ[k] = e.typ[k]
				break
			}
		}
		nodes = append(nodes, jt)
	}
	// Phi terms defined at this block are constrained on the incoming
	// edges; keep their relations alive through the join.
	for _, phi := range b.Phis {
		nodes = append(nodes, d.valTerm(phi))
	}
	// Entry/ghost atom terms and constant terms carry seed facts and the
	// relation of current state to entry state (the containment proofs
	// compare final bindings against entry terms); keep them in the
	// closure so those constraints survive the join.
	for _, t := range d.atomT {
		nodes = append(nodes, t)
	}
	for _, t := range d.cstT {
		nodes = append(nodes, t)
	}
	sort.Ints(nodes)
	nodes = dedupInts(nodes)

	// src maps a joined node back to its per-env source term.
	byJoined := map[int][]int{}
	for _, m := range maps {
		byJoined[m.joined] = m.per
	}
	src := func(e int, t int) int {
		if per, ok := byJoined[t]; ok {
			return per[e]
		}
		return t
	}
	// Pairwise closure over the joined node set: keep a bound only when
	// every incoming env proves it.
	dists := make([]map[int]map[int]int64, len(incoming))
	for i, e := range incoming {
		dists[i] = map[int]map[int]int64{}
		for _, u := range nodes {
			su := src(i, u)
			if su < 0 {
				continue
			}
			dist, ok := e.sssp(su)
			if !ok {
				dist = nil // infeasible source: bounds are -inf (keep all)
			}
			dists[i][u] = dist
		}
	}
	for _, u := range nodes {
		for _, v := range nodes {
			if u == v {
				continue
			}
			bound := int64(-absInf)
			for i := range incoming {
				sv := src(i, v)
				du := dists[i][u]
				var c int64
				if du == nil {
					c = -absInf // infeasible path constrains nothing
				} else if sv < 0 {
					c = absInf
				} else if dv, ok := du[sv]; ok {
					c = dv
				} else {
					c = absInf
				}
				if c > bound {
					bound = c
				}
			}
			if bound < absInf {
				r.addLE(u, v, bound)
			}
		}
	}
	if widen && prev != nil {
		w := newAbsEnv(d)
		w.fresh = r.fresh
		w.preds = r.preds
		for k, v := range r.bind {
			w.bind[k] = v
		}
		for k, v := range r.typ {
			w.typ[k] = v
		}
		// Keep only the previous head constraints the new state still
		// implies; everything that grew goes to +inf.
		for u, m := range prev.out {
			for v, c := range m {
				if nc := r.diff(u, v); nc <= c {
					w.addLE(u, v, c)
				}
			}
		}
		return w
	}
	return r
}

func commonPreds(incoming []*absEnv) []predFact {
	if len(incoming) == 0 {
		return nil
	}
	var out []predFact
	for _, p := range incoming[0].preds {
		all := true
		for _, e := range incoming[1:] {
			if !e.hasPredFact(p.callee, p.recv, p.args) {
				all = false
				break
			}
		}
		if all {
			out = append(out, p)
		}
	}
	return out
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// signature canonicalizes the env for fixpoint change detection.
func (e *absEnv) signature() string {
	var sb strings.Builder
	keys := make([]string, 0, len(e.bind))
	for k := range e.bind {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(itoa(e.bind[k]))
		sb.WriteByte(';')
	}
	type edge struct {
		u, v int
		c    int64
	}
	var edges []edge
	for u, m := range e.out {
		for v, c := range m {
			edges = append(edges, edge{u, v, c})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		if edges[i].v != edges[j].v {
			return edges[i].v < edges[j].v
		}
		return edges[i].c < edges[j].c
	})
	for _, ed := range edges {
		sb.WriteString(itoa(ed.u))
		sb.WriteByte('>')
		sb.WriteString(itoa(ed.v))
		sb.WriteByte(':')
		sb.WriteString(itoa(int(ed.c)))
		sb.WriteByte(';')
	}
	sb.WriteString(e.fresh)
	return sb.String()
}

// --- driver ---

// absHooks receives the fixpoint state during the final replay pass.
// Hooks observe the state before the event's own effect applies.
type absHooks struct {
	seed    []absFact
	store   func(e *absEnv, b *IRBlock, in *Instr)
	call    func(e *absEnv, b *IRBlock, call *Value)
	ret     func(e *absEnv, b *IRBlock, in *Instr)
	blockNd func(e *absEnv, b *IRBlock) // after the block's last event
}

// absFact is a seed constraint atom(a) - atom(b) <= c; an empty name is
// the ZERO term.
type absFact struct {
	a, b string
	c    int64
}

// absMaxVisits caps worklist churn per block; blowing through it means
// widening failed to converge and the analysis reports imprecision
// rather than looping.
const absMaxVisits = 64

// absAnalyze runs the dataflow over f to fixpoint, then replays once
// with hooks. It returns false when the fixpoint did not stabilize (the
// caller must treat its obligations as unproven).
func absAnalyze(f *Func, prog *Program, sums *absSummaries, hooks absHooks) bool {
	if f == nil || len(f.Blocks) == 0 {
		return false
	}
	d := newAbsDom(f, prog, sums)
	entry := newAbsEnv(d)
	for _, fact := range hooks.seed {
		var ta, tb int
		if fact.a == "" {
			ta = zeroTerm
		} else {
			ta = entry.atom(fact.a, nil)
		}
		if fact.b == "" {
			tb = zeroTerm
		} else {
			tb = entry.atom(fact.b, nil)
		}
		entry.addLE(ta, tb, fact.c)
	}

	inEnv := map[*IRBlock]*absEnv{f.Entry: entry}
	outEnv := map[*IRBlock]*absEnv{}
	inSig := map[*IRBlock]string{f.Entry: entry.signature()}
	visits := map[*IRBlock]int{}

	order := rpo(f)
	queue := append([]*IRBlock{}, order...)
	inQueue := map[*IRBlock]bool{}
	for _, b := range order {
		inQueue[b] = true
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		inQueue[b] = false
		in := inEnv[b]
		if in == nil {
			continue
		}
		visits[b]++
		if visits[b] > absMaxVisits {
			return false
		}
		env := in.clone()
		d.transferBlock(f, b, env, nil)
		outEnv[b] = env
		for _, s := range b.Succs {
			cand := d.gatherIn(f, s, outEnv, inEnv[s])
			if cand == nil {
				continue
			}
			sig := cand.signature()
			if sig != inSig[s] {
				inEnv[s] = cand
				inSig[s] = sig
				if !inQueue[s] {
					inQueue[s] = true
					queue = append(queue, s)
				}
			}
		}
	}

	// Replay with hooks over the stabilized in-states.
	for _, b := range order {
		in := inEnv[b]
		if in == nil {
			continue
		}
		env := in.clone()
		d.transferBlock(f, b, env, &hooks)
		if hooks.blockNd != nil {
			hooks.blockNd(env, b)
		}
	}
	return true
}

// gatherIn recomputes a block's in-state from every predecessor with a
// computed out-state, applying edge refinement and phi pinning.
func (d *absDom) gatherIn(f *Func, b *IRBlock, outEnv map[*IRBlock]*absEnv, prev *absEnv) *absEnv {
	var incoming []*absEnv
	for _, p := range b.Preds {
		out := outEnv[p]
		if out == nil {
			continue
		}
		e := out.clone()
		if p.CondV != nil && len(p.Succs) == 2 && p.Succs[0] != p.Succs[1] {
			if b == p.Succs[0] {
				e.refine(f, p, true)
			} else if b == p.Succs[1] {
				e.refine(f, p, false)
			}
		}
		pi := -1
		for i, pp := range b.Preds {
			if pp == p {
				pi = i
				break
			}
		}
		for _, phi := range b.Phis {
			pt := d.valTerm(phi)
			e.havocTerm(pt)
			if pi >= 0 && pi < len(phi.Args) && phi.Args[pi] != nil {
				at := e.termOf(f, phi.Args[pi])
				e.addEq(pt, at)
			}
		}
		incoming = append(incoming, e)
	}
	if len(incoming) == 0 {
		return nil
	}
	return absJoin(b, incoming, prev, b.LoopHead)
}

// transferBlock walks b's events, firing hooks (replay pass) before each
// event's effect.
func (d *absDom) transferBlock(f *Func, b *IRBlock, env *absEnv, hooks *absHooks) {
	for _, ev := range d.blockEvents(b) {
		switch {
		case ev.call != nil:
			if hooks != nil && hooks.call != nil {
				hooks.call(env, b, ev.call)
			}
			env.applyCall(f, ev)
		case ev.in != nil:
			switch ev.in.Kind {
			case IStore:
				if hooks != nil && hooks.store != nil {
					hooks.store(env, b, ev.in)
				}
				env.applyStore(f, ev)
			case IReturn:
				if hooks != nil && hooks.ret != nil {
					hooks.ret(env, b, ev.in)
				}
			case IGo:
				env.havocAll(ev.key)
			}
		}
	}
}

// rpo orders blocks reverse-postorder from the entry.
func rpo(f *Func) []*IRBlock {
	seen := map[*IRBlock]bool{}
	var post []*IRBlock
	var walk func(b *IRBlock)
	walk = func(b *IRBlock) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
		post = append(post, b)
	}
	walk(f.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// --- interprocedural summaries ---

// absSummaries caches per-function write effects and predicate
// postconditions for one module run.
type absSummaries struct {
	prog *Program

	writeMemo map[*Func]*writeSummary
	writeBusy map[*Func]bool

	trueMemo map[*Func][][]absFact
	trueBusy map[*Func]bool
}

type writeSummary struct {
	prefixes []string
	havocAll bool
}

func newAbsSummaries(prog *Program) *absSummaries {
	return &absSummaries{
		prog:      prog,
		writeMemo: map[*Func]*writeSummary{},
		writeBusy: map[*Func]bool{},
		trueMemo:  map[*Func][][]absFact{},
		trueBusy:  map[*Func]bool{},
	}
}

// writes computes which alias classes f may store through: "r"-, "p:i"-
// or "g:"-rooted prefixes, or havocAll when a write escapes through
// state the classes can not name (heap pointers from calls, closures).
func (s *absSummaries) writes(f *Func) *writeSummary {
	if ws, ok := s.writeMemo[f]; ok {
		return ws
	}
	if s.writeBusy[f] {
		// Recursive cycle: be conservative for the in-progress frame.
		return &writeSummary{havocAll: true}
	}
	s.writeBusy[f] = true
	ws := &writeSummary{}
	add := func(p string) {
		for _, q := range ws.prefixes {
			if q == p {
				return
			}
		}
		ws.prefixes = append(ws.prefixes, p)
	}
	units := append([]*Func{f}, collectLits(f)...)
	for _, u := range units {
		for _, b := range u.Blocks {
			for _, in := range b.Instrs {
				if in.Kind != IStore || in.Addr == nil {
					continue
				}
				if p := writeClass(in.Addr); p != "" {
					if p == "*" {
						ws.havocAll = true
					} else if u == f {
						add(p)
					} else {
						// Writes from nested literals to the parent's
						// params/receiver still escape through the
						// closure; stay conservative.
						ws.havocAll = true
					}
				}
			}
			for _, call := range b.Calls {
				if call.Builtin != "" {
					continue
				}
				callees := s.prog.calleesOf(call)
				if len(callees) == 0 {
					ws.havocAll = true
					continue
				}
				for _, obj := range callees {
					unit := s.prog.ByObj[obj]
					if unit == nil {
						s.externalWrites(u, call, add, ws)
						continue
					}
					sub := s.writes(unit)
					if sub.havocAll {
						ws.havocAll = true
						continue
					}
					for _, p := range sub.prefixes {
						mapped, ok := mapPrefixThroughCall(p, call)
						if !ok {
							ws.havocAll = true
						} else if mapped != "" {
							add(mapped)
						}
					}
				}
			}
		}
	}
	delete(s.writeBusy, f)
	s.writeMemo[f] = ws
	return ws
}

// externalWrites models a callee outside the module: it may write
// through any pointer-carrying operand.
func (s *absSummaries) externalWrites(u *Func, call *Value, add func(string), ws *writeSummary) {
	operand := func(v *Value) {
		if v == nil || !carriesWrites(v.Type) {
			return
		}
		ac := AliasClass(v)
		if ac != "" {
			add(ac)
			return
		}
		ch := chase(v)
		if ch != nil {
			switch ch.Kind {
			case VComposite, VConst, VZero, VClosure:
				return // freshly built or inert: no caller-visible write
			}
		}
		ws.havocAll = true
	}
	operand(call.Base)
	for _, a := range call.Args {
		operand(a)
	}
}

// mapPrefixThroughCall rewrites a callee-side write class into the
// caller's frame through the call operands. Empty result with ok=true
// means the write lands in caller-local state nothing else aliases.
func mapPrefixThroughCall(p string, call *Value) (string, bool) {
	root, path := p, ""
	if i := strings.IndexAny(p, ".#"); i >= 0 {
		root, path = p[:i], p[i:]
	}
	var base *Value
	switch {
	case strings.HasPrefix(root, "g:"):
		return p, true
	case root == "r":
		base = call.Base
	case strings.HasPrefix(root, "p:"):
		i := atoiSafe(root[2:])
		if i < 0 || i >= len(call.Args) {
			return "", false
		}
		base = call.Args[i]
	default:
		return "", false
	}
	if base == nil {
		return "", false
	}
	if ac := AliasClass(base); ac != "" {
		return ac + path, true
	}
	ch := chase(base)
	if ch != nil {
		switch ch.Kind {
		case VComposite, VConst, VZero:
			return "", true // local, freshly built state
		case VIndexRead:
			// &slice[i]: the write lands in the slice's elements; name
			// the slice when it has a class.
			if b := chase(ch.Base); b != nil {
				if ac := AliasClass(b); ac != "" {
					return ac, true
				}
			}
		}
	}
	return "", false
}

func collectLits(f *Func) []*Func {
	var out []*Func
	var walk func(u *Func)
	walk = func(u *Func) {
		for _, l := range u.Lits {
			out = append(out, l)
			walk(l)
		}
	}
	walk(f)
	return out
}

// writeClass classifies a store address: "" for purely local stores, a
// class prefix for named state, "*" for writes the classes can not
// name (pointers produced by calls or loaded from other heap state).
func writeClass(addr *Value) string {
	if ac := AliasClass(addr); ac != "" {
		return ac
	}
	ch := chase(addr)
	if ch == nil {
		return "*"
	}
	switch ch.Kind {
	case VFieldRead, VIndexRead, VDeref:
		root := storeRoot(ch)
		if root == nil {
			return "*"
		}
		switch root.Kind {
		case VComposite, VZero, VConst:
			return "" // storage this frame created
		case VCall, VParam, VRecv, VGlobal, VFree, VPhi, VRangeVal, VRangeKey, VExtract, VOp:
			return "*"
		}
		return "*"
	}
	return "" // plain local variable
}

// trueFacts returns the predicate's true-return postcondition as
// disjuncts of facts over its parameter/receiver atoms — one disjunct
// per true-returning path.
func (s *absSummaries) trueFacts(f *Func) [][]absFact {
	if fs, ok := s.trueMemo[f]; ok {
		return fs
	}
	if s.trueBusy[f] {
		return nil
	}
	s.trueBusy[f] = true
	var disjuncts [][]absFact
	hooks := absHooks{
		ret: func(e *absEnv, b *IRBlock, in *Instr) {
			if len(in.Results) != 1 {
				return
			}
			r := chase(in.Results[0])
			if r == nil || !isBoolType(r.Type) {
				return
			}
			if c, ok := constInt(f, r); ok && c == 0 {
				return // returns false: not a true-path
			}
			path := e.clone()
			path.refineTrueResult(f, r)
			if path.infeasible() {
				return
			}
			disjuncts = append(disjuncts, path.projectParams())
		},
	}
	if !absAnalyze(f, s.prog, s, hooks) {
		disjuncts = nil
	}
	if len(disjuncts) > 6 {
		// Degenerate predicate: fall back to the common facts only.
		disjuncts = [][]absFact{intersectFacts(disjuncts)}
	}
	delete(s.trueBusy, f)
	s.trueMemo[f] = disjuncts
	return disjuncts
}

// trueFactsCommon joins the disjuncts: facts established on every
// true-returning path.
func (s *absSummaries) trueFactsCommon(f *Func) []absFact {
	return intersectFacts(s.trueFacts(f))
}

func intersectFacts(disjuncts [][]absFact) []absFact {
	if len(disjuncts) == 0 {
		return nil
	}
	var out []absFact
	for _, fact := range disjuncts[0] {
		bound := fact.c
		all := true
		for _, d := range disjuncts[1:] {
			found := false
			for _, g := range d {
				if g.a == fact.a && g.b == fact.b {
					if g.c > bound {
						bound = g.c
					}
					found = true
					break
				}
			}
			if !found {
				all = false
				break
			}
		}
		if all {
			out = append(out, absFact{fact.a, fact.b, bound})
		}
	}
	return out
}

// refineTrueResult adds "r == true" to the env, decomposing && chains
// and comparisons written in the return expression itself.
func (e *absEnv) refineTrueResult(f *Func, r *Value) {
	r = chase(r)
	if r == nil {
		return
	}
	if r.Kind == VOp {
		switch r.Op {
		case token.LAND:
			for _, a := range r.Args {
				e.refineTrueResult(f, chase(a))
			}
			return
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			e.refineCompare(f, r, true)
			return
		case token.NOT:
			if len(r.Args) == 1 {
				e.refineBool(f, chase(r.Args[0]), false)
			}
			return
		}
	}
	e.refineBool(f, r, true)
}

// projectParams extracts every provable difference bound between
// parameter/receiver-rooted atoms (and ZERO).
func (e *absEnv) projectParams() []absFact {
	keys := []string{""} // ZERO
	for k := range e.bind {
		if k == "r" || strings.HasPrefix(k, "r.") || strings.HasPrefix(k, "p:") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var out []absFact
	for _, a := range keys {
		ta := zeroTerm
		if a != "" {
			ta = e.bind[a]
		}
		dist, ok := e.sssp(ta)
		if !ok {
			continue
		}
		for _, b := range keys {
			if a == b {
				continue
			}
			tb := zeroTerm
			if b != "" {
				tb = e.bind[b]
			}
			if c, has := dist[tb]; has && c < absInf {
				out = append(out, absFact{a, b, c})
			}
		}
	}
	return out
}

// --- shared helpers for fabproof ---

// storeConstBool reports the stored value when it is a constant bool.
func storeConstBool(f *Func, in *Instr) (bool, bool) {
	v := chase(in.Val)
	if v == nil || !isBoolType(v.Type) {
		return false, false
	}
	if c, ok := constInt(f, v); ok {
		return c != 0, true
	}
	return false, false
}

// fieldAddr matches an IStore address against a specific struct field,
// returning the base value when it matches.
func fieldAddr(in *Instr, field *types.Var) (*Value, bool) {
	a := chase(in.Addr)
	if a == nil || a.Kind != VFieldRead || a.Obj != field {
		return nil, false
	}
	return a.Base, true
}

// eachAst walks the syntax of a unit's body (declaration or literal).
func eachAst(f *Func, visit func(ast.Node) bool) {
	var body ast.Node
	if f.Lit != nil {
		body = f.Lit.Body
	} else if f.Decl.Decl != nil {
		body = f.Decl.Decl.Body
	}
	if body != nil {
		ast.Inspect(body, visit)
	}
}
