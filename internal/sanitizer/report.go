package sanitizer

import (
	"fmt"
	"strings"
)

// Summary is the final result of one or more checked runs.
type Summary struct {
	// Worlds is the number of checked simulations merged in.
	Worlds int
	// Violations holds every recorded violation, in detection order.
	Violations []Violation
	// Dropped counts violations beyond the per-checker cap.
	Dropped int
	// Stats aggregates observation counters.
	Stats Stats
}

// OK reports whether the run was clean.
func (s *Summary) OK() bool { return len(s.Violations) == 0 && s.Dropped == 0 }

// Merge finalizes every checker and combines the results.
func Merge(checkers []*Checker) *Summary {
	sum := &Summary{}
	for _, c := range checkers {
		r := c.Finish()
		sum.Worlds += r.Worlds
		sum.Violations = append(sum.Violations, r.Violations...)
		sum.Dropped += r.Dropped
		sum.Stats.Add(r.Stats)
	}
	return sum
}

// Report renders the summary as a deterministic human-readable report.
func (s *Summary) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tlbcheck: %d simulation(s) checked\n", s.Worlds)
	st := s.Stats
	fmt.Fprintf(&b, "  pte changes:       %d (%d restrictive, %d flush windows opened)\n",
		st.PTEChanges, st.RestrictiveChanges, st.ObligationsOpened)
	fmt.Fprintf(&b, "  windows closed:    %d by shootdown, %d by return-to-user\n",
		st.ClosedByShootdown, st.ClosedByUserReturn)
	fmt.Fprintf(&b, "  tlb hits:          %d (%d stale-but-legal in open window, %d in lazy window)\n",
		st.TLBHits, st.StaleLegalOpen, st.StaleLegalLazy)
	fmt.Fprintf(&b, "  selective flushes: %d (%d redundant: removed nothing)\n",
		st.SelectiveFlushes, st.RedundantSelective)
	fmt.Fprintf(&b, "  full flushes:      %d (%d redundant: removed nothing)\n",
		st.FullFlushes, st.RedundantFull)
	fmt.Fprintf(&b, "  ipi requests:      %d across %d shootdowns\n", st.IPIRequests, st.Shootdowns)
	if s.OK() {
		b.WriteString("PASS: no coherence violations\n")
		return b.String()
	}
	counts := map[string]int{}
	order := []string{}
	for _, v := range s.Violations {
		if counts[v.Kind] == 0 {
			order = append(order, v.Kind)
		}
		counts[v.Kind]++
	}
	fmt.Fprintf(&b, "FAIL: %d violation(s)", len(s.Violations)+s.Dropped)
	parts := make([]string, 0, len(order))
	for _, k := range order {
		parts = append(parts, fmt.Sprintf("%d %s", counts[k], k))
	}
	fmt.Fprintf(&b, " (%s)\n", strings.Join(parts, ", "))
	for i, v := range s.Violations {
		fmt.Fprintf(&b, "\n[%d] t=%d %s\n", i+1, v.At, indent(v.Msg))
	}
	if s.Dropped > 0 {
		fmt.Fprintf(&b, "\n(%d further violation(s) dropped past the cap)\n", s.Dropped)
	}
	return b.String()
}

func indent(msg string) string {
	return strings.ReplaceAll(msg, "\n", "\n    ")
}
