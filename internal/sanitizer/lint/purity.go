package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// observerpurity enforces the contract every hook in the simulator
// documents: observers must be purely observational. A hook that mutates
// the state handed to it (its parameters) or package-level state silently
// changes protocol behaviour only when a checker is attached, which is
// exactly the class of bug the race detector's cycle-identical guarantee
// (internal/race) exists to exclude.
//
// Hook function literals are recognized syntactically at three kinds of
// installation site:
//
//   - assignment to a field whose name ends in "Hook"
//     (k.ASHook = func(...){...})
//   - a field value inside a composite literal of a type whose name ends
//     in "Observer" or "Probe" (&mm.SemObserver{Acquired: func(...){...}})
//   - an argument to SetObserver, SetProbe or SetBootHook
//
// Inside a recognized hook body the analyzer flags assignments and ++/--
// whose target is reached from a hook parameter (the simulated state under
// observation) or from a package-level variable of the file. Writes to
// captured function-locals stay legal — accumulating results in the
// installing function is the sanctioned pattern (see sanitizer.Attach and
// experiments.RunRace).
func checkObserverPurity(fset *token.FileSet, rel string, f *ast.File) []Finding {
	pkgVars := collectPackageVars(f)
	var out []Finding
	report := func(pos token.Pos, target, why string) {
		out = append(out, Finding{
			File: rel, Line: fset.Position(pos).Line,
			Analyzer: "observerpurity",
			Msg:      fmt.Sprintf("hook mutates %s %q; observers must be purely observational", why, target),
		})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		for _, lit := range hookFuncLits(n) {
			checkHookBody(lit, pkgVars, report)
		}
		return true
	})
	return out
}

// hookFuncLits returns the function literals n installs as hooks.
func hookFuncLits(n ast.Node) []*ast.FuncLit {
	var out []*ast.FuncLit
	switch v := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range v.Lhs {
			if i >= len(v.Rhs) {
				break
			}
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok || !strings.HasSuffix(sel.Sel.Name, "Hook") {
				continue
			}
			if lit, ok := v.Rhs[i].(*ast.FuncLit); ok {
				out = append(out, lit)
			}
		}
	case *ast.CompositeLit:
		if !isObserverType(v.Type) {
			return nil
		}
		for _, el := range v.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if lit, ok := kv.Value.(*ast.FuncLit); ok {
				out = append(out, lit)
			}
		}
	case *ast.CallExpr:
		name := calleeName(v.Fun)
		if name != "SetObserver" && name != "SetProbe" && name != "SetBootHook" {
			return nil
		}
		for _, arg := range v.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				out = append(out, lit)
			}
		}
	}
	return out
}

func isObserverType(t ast.Expr) bool {
	name := ""
	switch v := t.(type) {
	case *ast.Ident:
		name = v.Name
	case *ast.SelectorExpr:
		name = v.Sel.Name
	}
	return strings.HasSuffix(name, "Observer") || strings.HasSuffix(name, "Probe")
}

func calleeName(fun ast.Expr) string {
	switch v := fun.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	}
	return ""
}

// checkHookBody flags impure statements inside one hook literal.
func checkHookBody(lit *ast.FuncLit, pkgVars map[string]bool, report func(pos token.Pos, target, why string)) {
	params := make(map[string]bool)
	for _, field := range lit.Type.Params.List {
		for _, id := range field.Names {
			params[id.Name] = true
		}
	}
	classify := func(e ast.Expr) (string, string, bool) {
		root := rootIdent(e)
		if root == nil || root.Name == "_" {
			return "", "", false
		}
		if params[root.Name] {
			return root.Name, "observed state (hook parameter)", true
		}
		if pkgVars[root.Name] {
			return root.Name, "package-level variable", true
		}
		return "", "", false
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range v.Lhs {
				if target, why, bad := classify(lhs); bad {
					report(lhs.Pos(), target, why)
				}
			}
		case *ast.IncDecStmt:
			if target, why, bad := classify(v.X); bad {
				report(v.X.Pos(), target, why)
			}
		}
		return true
	})
}

// collectPackageVars gathers the file's package-level var names.
func collectPackageVars(f *ast.File) map[string]bool {
	out := make(map[string]bool)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, id := range vs.Names {
				out[id.Name] = true
			}
		}
	}
	return out
}

// rootIdent walks selector/index/star/paren chains to the base identifier
// (nil when the expression does not bottom out in one, e.g. a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}
