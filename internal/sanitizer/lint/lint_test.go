package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func loadFixture(t *testing.T, name, fakeRel string) []Finding {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := CheckSource(fakeRel, src)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func countBy(fs []Finding, analyzer string) int {
	n := 0
	for _, f := range fs {
		if f.Analyzer == analyzer {
			n++
		}
	}
	return n
}

func TestDeterminismAnalyzerFires(t *testing.T) {
	fs := loadFixture(t, "bad_determinism.go", "internal/workload/fixture.go")
	if got := countBy(fs, "determinism"); got != 2 {
		t.Fatalf("determinism findings = %d, want 2 (time + math/rand): %v", got, fs)
	}
}

func TestDeterminismCatchesDisguisedImports(t *testing.T) {
	// Aliased, dot and blank imports of banned packages all fire: the
	// analyzer keys on the import path, not the name the file binds.
	fs := loadFixture(t, "bad_determinism_alias.go", "internal/workload/fixture.go")
	if got := countBy(fs, "determinism"); got != 3 {
		t.Fatalf("determinism findings = %d, want 3 (dot rand, blank rand/v2, aliased time): %v", got, fs)
	}
}

func TestCostLiteralAnalyzerFires(t *testing.T) {
	fs := loadFixture(t, "bad_costliteral.go", "internal/kernel/fixture.go")
	if got := countBy(fs, "costliteral"); got != 1 {
		t.Fatalf("costliteral findings = %d, want 1: %v", got, fs)
	}
	if fs[0].Line != 9 {
		t.Fatalf("finding at line %d, want 9: %v", fs[0].Line, fs[0])
	}
}

func TestCostLiteralScopedToMachineModel(t *testing.T) {
	// The same source outside the machine-model dirs is not flagged:
	// workload scripts and cmd tools may use scenario-level literals.
	fs := loadFixture(t, "bad_costliteral.go", "cmd/tlbfuzz/fixture.go")
	if got := countBy(fs, "costliteral"); got != 0 {
		t.Fatalf("costliteral fired outside scope: %v", fs)
	}
}

func TestMapOrderAnalyzerFires(t *testing.T) {
	fs := loadFixture(t, "bad_maporder.go", "internal/core/fixture.go")
	if got := countBy(fs, "maporder"); got != 2 {
		t.Fatalf("maporder findings = %d, want 2 (field map + local map): %v", got, fs)
	}
}

func TestObserverPurityAnalyzerFires(t *testing.T) {
	fs := loadFixture(t, "bad_observerpurity.go", "internal/experiments/fixture.go")
	if got := countBy(fs, "observerpurity"); got != 4 {
		t.Fatalf("observerpurity findings = %d, want 4 (2 param writes, 1 global, 1 boot hook): %v", got, fs)
	}
}

func TestSharedAccessAnalyzerFires(t *testing.T) {
	// Outside every owner dir all five selector uses are flagged.
	fs := loadFixture(t, "bad_sharedaccess.go", "internal/core/fixture.go")
	if got := countBy(fs, "sharedaccess"); got != 4 {
		t.Fatalf("sharedaccess findings = %d, want 4: %v", got, fs)
	}
	// Inside the owning package the accessor function is exempt.
	fs = loadFixture(t, "bad_sharedaccess.go", "internal/kernel/fixture.go")
	if got := countBy(fs, "sharedaccess"); got != 3 {
		t.Fatalf("sharedaccess findings in owner dir = %d, want 3 (Lazy exempt): %v", got, fs)
	}
}

func TestParallelSafetyAnalyzerFires(t *testing.T) {
	fs := loadFixture(t, "bad_parallelsafety.go", "internal/kernel/fixture.go")
	if got := countBy(fs, "parallelsafety"); got != 4 {
		t.Fatalf("parallelsafety findings = %d, want 4 (flushCount, lastWorld, bootSeq, tick): %v", got, fs)
	}
}

func TestParallelSafetyScopedToSimulatedPackages(t *testing.T) {
	// The harness (cmd tools, internal/sched, internal/experiments) may
	// hold package-level state — only simulated packages are restricted.
	fs := loadFixture(t, "bad_parallelsafety.go", "internal/sched/fixture.go")
	if got := countBy(fs, "parallelsafety"); got != 0 {
		t.Fatalf("parallelsafety fired outside scope: %v", fs)
	}
}

// TestRepoIsClean is the live invariant: the repository itself must pass
// every analyzer (this is what CI runs via tlbcheck -lint).
func TestRepoIsClean(t *testing.T) {
	fs, err := CheckTree("../../../...")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		for _, f := range fs {
			t.Error(f)
		}
	}
}

// TestCheckTreeCoverage pins the walk's actual reach: the module pattern
// must descend into cmd/ and examples/ (tools and example programs carry
// the same invariants), and the scanned-file count must clear a floor so
// a silently narrowed walk cannot pass as "clean".
func TestCheckTreeCoverage(t *testing.T) {
	_, stats, err := CheckTreeStats("../../../...")
	if err != nil {
		t.Fatal(err)
	}
	// The repo has >75 non-test Go files today; the floor leaves headroom
	// for deletions while catching a walk that lost whole subtrees.
	const floor = 60
	if len(stats.Files) <= floor {
		t.Fatalf("scanned %d files, want > %d — the tree walk lost coverage", len(stats.Files), floor)
	}
	prefixes := map[string]bool{}
	for _, f := range stats.Files {
		if i := strings.IndexByte(f, '/'); i > 0 {
			prefixes[f[:i]] = true
		}
	}
	for _, want := range []string{"cmd", "examples", "internal"} {
		if !prefixes[want] {
			t.Fatalf("no files scanned under %s/ (got prefixes %v)", want, prefixes)
		}
	}
}
