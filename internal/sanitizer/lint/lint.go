// Package lint holds the repo-invariant static analyzers behind
// `tlbcheck -lint`. They enforce, with the standard library's go/ast
// alone, the three invariants the simulator's determinism and cost model
// depend on:
//
//   - determinism: no wall-clock (time) or global-PRNG (math/rand) use in
//     non-test code — simulated time comes from sim.Engine and randomness
//     from the seeded internal/sim generator, so every run is replayable.
//   - costliteral: no raw integer literals passed to Delay in the
//     machine-model packages — every cycle cost must be routed through
//     internal/mach/costs.go so experiments stay calibratable.
//   - maporder: no map iteration that charges simulated time in its body —
//     Go map order is random per process, so Delay inside a map range
//     makes event interleaving (and therefore results) irreproducible.
//
// Two further analyzers guard the happens-before race model
// (internal/race):
//
//   - observerpurity: hook/observer/probe function literals must not
//     mutate the observed state or package-level variables, so checked
//     runs stay cycle-identical to unchecked ones.
//   - sharedaccess: fields instrumented for the race detector may only be
//     touched through their reporting accessors.
//
// One analyzer guards the parallel experiment scheduler (internal/sched):
//
//   - parallelsafety: simulated packages must not declare mutable
//     package-level state — concurrently booted worlds would share it,
//     breaking both determinism and `go test -race`. Error sentinels and
//     explicitly "parallel-safe:"-annotated declarations are exempt.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer hit.
type Finding struct {
	// File is the path as given to the checker (slash-separated).
	File string
	// Line is the 1-based source line.
	Line int
	// Analyzer names the rule that fired.
	Analyzer string
	// Msg explains the violation.
	Msg string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.File, f.Line, f.Analyzer, f.Msg)
}

// bannedImports are the determinism-breaking packages.
var bannedImports = map[string]string{
	"time":         "wall-clock time breaks replayability; simulated time comes from sim.Engine.Now",
	"math/rand":    "the global PRNG breaks replayability; use the seeded generator in internal/sim",
	"math/rand/v2": "the global PRNG breaks replayability; use the seeded generator in internal/sim",
}

// InDeterminismScope reports whether rel's imports are subject to the
// determinism ban. The static-analysis toolchain itself is exempt — the
// analyzers time their own wall-clock for the CI budget attribution and
// never run inside a simulation — but its testdata fixtures stay in
// scope, because fixtures exist to prove the ban fires.
func InDeterminismScope(rel string) bool {
	rel = filepath.ToSlash(rel)
	if !strings.HasPrefix(rel, "internal/sanitizer/") {
		return true
	}
	return strings.Contains(rel, "/testdata/")
}

// costScope lists the machine-model directories where every cycle cost
// must come from the cost model, never a literal.
var costScope = []string{
	"internal/apic/", "internal/cache/", "internal/core/", "internal/daemons/",
	"internal/kernel/", "internal/mm/", "internal/smp/", "internal/syscalls/",
	"internal/tlb/",
}

func inCostScope(rel string) bool {
	rel = filepath.ToSlash(rel)
	for _, p := range costScope {
		if strings.HasPrefix(rel, p) {
			return true
		}
	}
	return false
}

// CheckSource parses one file and runs every applicable analyzer. rel is
// the module-relative path, which decides analyzer scope.
func CheckSource(rel string, src []byte) ([]Finding, error) {
	fset := token.NewFileSet()
	// ParseComments: parallelsafety reads "parallel-safe:" doc markers.
	f, err := parser.ParseFile(fset, rel, src, parser.SkipObjectResolution|parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []Finding
	if InDeterminismScope(rel) {
		out = append(out, checkDeterminism(fset, rel, f)...)
	}
	out = append(out, checkObserverPurity(fset, rel, f)...)
	out = append(out, checkSharedAccess(fset, rel, f)...)
	if inCostScope(rel) {
		out = append(out, checkCostLiteral(fset, rel, f)...)
		out = append(out, checkMapOrder(fset, rel, f)...)
	}
	if inParallelScope(rel) {
		out = append(out, checkParallelSafety(fset, rel, f)...)
	}
	return out, nil
}

func checkDeterminism(fset *token.FileSet, rel string, f *ast.File) []Finding {
	var out []Finding
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if why, ok := bannedImports[path]; ok {
			out = append(out, Finding{
				File: rel, Line: fset.Position(imp.Pos()).Line,
				Analyzer: "determinism",
				Msg:      fmt.Sprintf("import of %q: %s", path, why),
			})
		}
	}
	return out
}

func checkCostLiteral(fset *token.FileSet, rel string, f *ast.File) []Finding {
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Delay" || len(call.Args) != 1 {
			return true
		}
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.INT {
			out = append(out, Finding{
				File: rel, Line: fset.Position(lit.Pos()).Line,
				Analyzer: "costliteral",
				Msg:      fmt.Sprintf("raw cycle cost %s passed to Delay; route it through the cost model (internal/mach/costs.go)", lit.Value),
			})
		}
		return true
	})
	return out
}

// checkMapOrder flags `for ... range <map>` loops whose body calls Delay.
// Map identification is syntactic: any name declared, assigned or typed as
// a map anywhere in the file (including struct fields) counts.
func checkMapOrder(fset *token.FileSet, rel string, f *ast.File) []Finding {
	mapNames := collectMapNames(f)
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		name, isMap := rangedName(rng.X, mapNames)
		if !isMap {
			return true
		}
		delayLine := 0
		ast.Inspect(rng.Body, func(b ast.Node) bool {
			if delayLine != 0 {
				return false
			}
			if call, ok := b.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Delay" {
					delayLine = fset.Position(call.Pos()).Line
					return false
				}
			}
			return true
		})
		if delayLine != 0 {
			out = append(out, Finding{
				File: rel, Line: fset.Position(rng.Pos()).Line,
				Analyzer: "maporder",
				Msg:      fmt.Sprintf("Delay (line %d) inside iteration over map %q: map order is random, so charged time becomes irreproducible — iterate a sorted copy", delayLine, name),
			})
		}
		return true
	})
	return out
}

// collectMapNames gathers every identifier the file declares with a map
// type: vars, struct fields, and := / = assignments from map literals or
// make(map...).
func collectMapNames(f *ast.File) map[string]bool {
	names := make(map[string]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.Field:
			if _, ok := d.Type.(*ast.MapType); ok {
				for _, id := range d.Names {
					names[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			if _, ok := d.Type.(*ast.MapType); ok {
				for _, id := range d.Names {
					names[id.Name] = true
				}
			}
			for i, v := range d.Values {
				if i < len(d.Names) && isMapExpr(v) {
					names[d.Names[i].Name] = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range d.Rhs {
				if i >= len(d.Lhs) || !isMapExpr(rhs) {
					continue
				}
				switch l := d.Lhs[i].(type) {
				case *ast.Ident:
					names[l.Name] = true
				case *ast.SelectorExpr:
					names[l.Sel.Name] = true
				}
			}
		}
		return true
	})
	return names
}

func isMapExpr(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		_, ok := v.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) >= 1 {
			_, ok := v.Args[0].(*ast.MapType)
			return ok
		}
	}
	return false
}

// rangedName resolves the ranged expression to a declared-map name.
func rangedName(x ast.Expr, mapNames map[string]bool) (string, bool) {
	switch v := x.(type) {
	case *ast.Ident:
		return v.Name, mapNames[v.Name]
	case *ast.SelectorExpr:
		return v.Sel.Name, mapNames[v.Sel.Name]
	}
	return "", false
}

// TreeStats records what a CheckTree pass actually covered, so callers
// (and the coverage test) can verify the walk descended everywhere it
// should instead of trusting the pattern expansion blindly.
type TreeStats struct {
	// Files lists every scanned file, module-relative, in scan order.
	Files []string
}

// CheckTree walks every non-test .go file under the given patterns
// (directories, or `dir/...` for recursion; `./...` covers the module)
// and returns all findings sorted by file and line.
func CheckTree(patterns ...string) ([]Finding, error) {
	fs, _, err := CheckTreeStats(patterns...)
	return fs, err
}

// CheckTreeStats is CheckTree plus coverage accounting.
func CheckTreeStats(patterns ...string) ([]Finding, *TreeStats, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var out []Finding
	stats := &TreeStats{}
	seen := make(map[string]bool)
	modRoot := findModuleRoot()
	for _, pat := range patterns {
		root, recursive := pat, false
		if strings.HasSuffix(pat, "/...") {
			root, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		if root == "" || root == "." || root == "./" {
			root = "."
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if path != root && !recursive {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") || seen[path] {
				return nil
			}
			seen[path] = true
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			rel := moduleRel(modRoot, path)
			stats.Files = append(stats.Files, rel)
			fs, err := CheckSource(rel, src)
			if err != nil {
				return err
			}
			out = append(out, fs...)
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out, stats, nil
}

// findModuleRoot ascends from the working directory to the nearest go.mod,
// so analyzer scoping works no matter which directory the checker runs in.
func findModuleRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return ""
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// moduleRel renders path relative to the module root (falling back to the
// cleaned path when outside any module).
func moduleRel(modRoot, path string) string {
	if modRoot != "" {
		if abs, err := filepath.Abs(path); err == nil {
			if rel, err := filepath.Rel(modRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
				return filepath.ToSlash(rel)
			}
		}
	}
	return filepath.ToSlash(strings.TrimPrefix(path, "./"))
}
