// Fixture: hooks that mutate observed or package-level state.
package fixture

type world struct {
	Cycles uint64
}

type kernelT struct {
	ASHook func(w *world)
}

// Probe mimics the observer types the simulator exposes.
type Probe struct {
	ShootBegin func(w *world)
	ShootEnd   func(w *world)
}

var globalCount int

func SetBootHook(fn func(w *world)) {}

func install(k *kernelT) {
	seen := 0
	k.ASHook = func(w *world) {
		w.Cycles = 0  // BAD: mutates observed state through the parameter
		globalCount++ // BAD: mutates a package-level variable
		seen++        // ok: captured local accumulator is the sanctioned pattern
	}
	pr := &Probe{
		ShootBegin: func(w *world) {
			w.Cycles++ // BAD: mutates observed state
		},
		ShootEnd: func(w *world) {
			local := 0
			local++ // ok: hook-local state
			_ = local
		},
	}
	_ = pr
	_ = seen
	SetBootHook(func(w *world) {
		w.Cycles = 7 // BAD: mutates observed state
	})
}
