// Fixture: charging simulated time inside randomized map iteration.
package fixture

type proc struct{}

func (p *proc) Delay(cycles uint64) {}

type flusher struct {
	pending map[uint64]uint64
}

func (f *flusher) drain(p *proc) {
	for va, cost := range f.pending {
		p.Delay(cost) // order-dependent timing: nondeterministic
		_ = va
	}
	local := make(map[int]int)
	for k := range local {
		p.Delay(uint64(k))
	}
	// Iterating without charging time is fine.
	n := 0
	for range f.pending {
		n++
	}
	_ = n
}
