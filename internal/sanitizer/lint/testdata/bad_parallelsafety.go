package fixture

import (
	"errors"
	"fmt"
)

// flushCount is cross-world mutable state: two concurrently booted
// machines would increment the same counter.
var flushCount int // want finding

var lastWorld, bootSeq = "", 0 // want 2 findings

// ErrBadFlush is an immutable error sentinel: allowed.
var ErrBadFlush = errors.New("fixture: bad flush")

var (
	// ErrStale and ErrWrapped are sentinels too, even grouped.
	ErrStale   = errors.New("fixture: stale entry")
	ErrWrapped = fmt.Errorf("fixture: wrapped %d", 7)
)

// hook is set once before any world boots and only read afterwards.
// parallel-safe: written only while the scheduler pool is idle.
var hook func()

var (
	// tick is mutable even though it hides in a group with a sentinel.
	tick    uint64 // want finding
	ErrTick = errors.New("fixture: tick")
)

func touch() {
	flushCount++
	bootSeq++
	lastWorld = "w"
	tick++
	if hook != nil {
		hook()
	}
	_ = errors.Is(ErrStale, ErrBadFlush)
	_ = ErrWrapped
	_ = ErrTick
}
