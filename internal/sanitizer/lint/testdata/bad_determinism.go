// Fixture: non-test simulator code importing wall-clock and PRNG packages.
package fixture

import (
	"math/rand"
	"time"
)

func seedFromClock() int64 {
	rand.Seed(1)
	return time.Now().UnixNano()
}
