// Fixture: direct access to race-instrumented shared fields.
package fixture

type cpuT struct {
	lazy     bool
	localGen map[int]uint64
}

type reqT struct {
	acked bool
}

func peek(c *cpuT, r *reqT) bool {
	if c.lazy { // BAD: peek is not an accessor of lazy
		return r.acked // BAD: acked is owned by internal/smp
	}
	c.localGen[1] = 2 // BAD: localGen bypasses LocalGen/SetLocalGen
	return false
}

// Lazy matches an accessor name: legal inside internal/kernel, flagged
// anywhere else.
func Lazy(c *cpuT) bool {
	return c.lazy
}
