// Fixture: machine-model code charging a hard-coded cycle count.
package fixture

type proc struct{}

func (p *proc) Delay(cycles uint64) {}

func handleIPI(p *proc, cost uint64) {
	p.Delay(500) // should come from the cost model
	p.Delay(cost)
	p.Delay(2 * cost) // expressions over model costs are fine
}
