// Fixture: banned imports in disguised forms — aliased, dot and blank.
// The determinism analyzer matches on the import path, not the bound
// name, so renaming the package buys nothing. Kept as a regression
// fixture even though the typed tier (internal/sanitizer/typedlint)
// subsumes it: this is the cheap first line of defense that runs on
// every file without typechecking.
package fixture

import (
	. "math/rand"
	_ "math/rand/v2"
	clock "time"
)

var _ = clock.Nanosecond

var _ = Int
