package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// parallelsafety guards the scheduler's core assumption (internal/sched):
// every simulated world is self-contained, so experiment cells may run
// concurrently and still produce byte-identical results. A mutable
// package-level variable in a simulated package is cross-world shared
// state — two concurrently booted machines would observe each other, which
// is both a data race under `go test -race` and a determinism leak.
//
// The analyzer flags every package-level `var` in the simulated packages,
// with two exceptions:
//
//   - immutable error sentinels (every initializer is errors.New or
//     fmt.Errorf), the conventional Go error-identity pattern;
//   - restore-disciplined vars: every write in the file happens inside a
//     setter that saves the old value into a local and returns a closure
//     restoring it (the SetBootHook/SetFaultSpec shape). The ssa tier's
//     parallelsafe analyzer re-proves this whole-program;
//   - declarations whose doc comment carries a "parallel-safe:" marker
//     followed by the justification, for cases neither proof covers.
var parallelScope = []string{
	"internal/apic/", "internal/cache/", "internal/core/",
	"internal/daemons/", "internal/fault/", "internal/kernel/",
	"internal/mach/", "internal/mm/", "internal/pagetable/",
	"internal/sim/", "internal/smp/", "internal/stats/",
	"internal/syscalls/", "internal/tlb/", "internal/virt/",
	"internal/workload/",
}

func inParallelScope(rel string) bool {
	rel = filepath.ToSlash(rel)
	for _, p := range parallelScope {
		if strings.HasPrefix(rel, p) {
			return true
		}
	}
	return false
}

// ParallelScope returns the module-relative directory prefixes that make up
// the simulated world — the packages whose state must be self-contained for
// experiment cells to run concurrently. The ssa tier's detflow and
// parallelsafe analyzers share this definition of "simulated state".
func ParallelScope() []string {
	return append([]string(nil), parallelScope...)
}

// InParallelScope reports whether the module-relative path rel lies inside
// a simulated package.
func InParallelScope(rel string) bool {
	return inParallelScope(rel)
}

func checkParallelSafety(fset *token.FileSet, rel string, f *ast.File) []Finding {
	var out []Finding
	disciplined := restoreDisciplinedVars(f)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		if hasParallelSafeMarker(gd.Doc) {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || isErrorSentinel(vs) {
				continue
			}
			if hasParallelSafeMarker(vs.Doc) {
				continue
			}
			for _, id := range vs.Names {
				if id.Name == "_" || disciplined[id.Name] {
					continue
				}
				out = append(out, Finding{
					File: rel, Line: fset.Position(id.Pos()).Line,
					Analyzer: "parallelsafety",
					Msg:      fmt.Sprintf("package-level var %q in a simulated package: worlds run concurrently under internal/sched, so mutable globals are cross-world races — move it into the world's state, or document immutability with a parallel-safe: marker", id.Name),
				})
			}
		}
	}
	return out
}

// IsErrorSentinel reports whether every initializer of the spec is an
// errors.New or fmt.Errorf call — the immutable error-identity pattern.
// Exported for the ssa tier's whole-program parallelsafe proof.
func IsErrorSentinel(vs *ast.ValueSpec) bool {
	return isErrorSentinel(vs)
}

// isErrorSentinel reports whether every initializer of the spec is an
// errors.New or fmt.Errorf call — the immutable error-identity pattern.
func isErrorSentinel(vs *ast.ValueSpec) bool {
	if len(vs.Values) == 0 || len(vs.Values) != len(vs.Names) {
		return false
	}
	for _, v := range vs.Values {
		call, ok := v.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return false
		}
		if !(pkg.Name == "errors" && sel.Sel.Name == "New") &&
			!(pkg.Name == "fmt" && sel.Sel.Name == "Errorf") {
			return false
		}
	}
	return true
}

// restoreDisciplinedVars returns the package-level var names this file
// writes only through restore-disciplined setters: a function that saves
// the old value into a local (`prev := v`), reassigns v, and returns a
// closure that restores the saved value (`return func() { v = prev }`).
// Such a var behaves like a scoped override — callers hold the restore and
// the scheduler pool is idle across the setter pair — so it is not the
// cross-world shared state this analyzer hunts. Any write to the var
// outside a setter voids the exemption.
func restoreDisciplinedVars(f *ast.File) map[string]bool {
	setters := make(map[*ast.FuncDecl]map[string]bool)
	disciplined := make(map[string]bool)
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		vars := restoreSetterVars(fd)
		setters[fd] = vars
		for name := range vars {
			disciplined[name] = true
		}
	}
	if len(disciplined) == 0 {
		return nil
	}
	// A write outside that var's own setters disqualifies it.
	for fd, vars := range setters {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN {
				return true
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && disciplined[id.Name] && !vars[id.Name] {
					delete(disciplined, id.Name)
				}
			}
			return true
		})
	}
	return disciplined
}

// restoreSetterVars returns the vars fd is a restore-disciplined setter
// for: some `local := v` definition is paired with a returned func literal
// containing `v = local`.
func restoreSetterVars(fd *ast.FuncDecl) map[string]bool {
	saved := make(map[string]string) // local -> saved var
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		l, lok := as.Lhs[0].(*ast.Ident)
		r, rok := as.Rhs[0].(*ast.Ident)
		if lok && rok {
			saved[l.Name] = r.Name
		}
		return true
	})
	vars := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			lit, ok := res.(*ast.FuncLit)
			if !ok {
				continue
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				as, ok := m.(*ast.AssignStmt)
				if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
					return true
				}
				l, lok := as.Lhs[0].(*ast.Ident)
				r, rok := as.Rhs[0].(*ast.Ident)
				if lok && rok && saved[r.Name] == l.Name {
					vars[l.Name] = true
				}
				return true
			})
		}
		return true
	})
	return vars
}

func hasParallelSafeMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	return strings.Contains(doc.Text(), "parallel-safe:")
}
