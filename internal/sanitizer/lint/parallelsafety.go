package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// parallelsafety guards the scheduler's core assumption (internal/sched):
// every simulated world is self-contained, so experiment cells may run
// concurrently and still produce byte-identical results. A mutable
// package-level variable in a simulated package is cross-world shared
// state — two concurrently booted machines would observe each other, which
// is both a data race under `go test -race` and a determinism leak.
//
// The analyzer flags every package-level `var` in the simulated packages,
// with two exceptions:
//
//   - immutable error sentinels (every initializer is errors.New or
//     fmt.Errorf), the conventional Go error-identity pattern;
//   - declarations whose doc comment carries a "parallel-safe:" marker
//     followed by the justification (e.g. workload.bootHook, which is
//     written only while the scheduler pool is idle).
var parallelScope = []string{
	"internal/apic/", "internal/cache/", "internal/core/",
	"internal/daemons/", "internal/fault/", "internal/kernel/",
	"internal/mach/", "internal/mm/", "internal/pagetable/",
	"internal/sim/", "internal/smp/", "internal/stats/",
	"internal/syscalls/", "internal/tlb/", "internal/virt/",
	"internal/workload/",
}

func inParallelScope(rel string) bool {
	rel = filepath.ToSlash(rel)
	for _, p := range parallelScope {
		if strings.HasPrefix(rel, p) {
			return true
		}
	}
	return false
}

func checkParallelSafety(fset *token.FileSet, rel string, f *ast.File) []Finding {
	var out []Finding
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		if hasParallelSafeMarker(gd.Doc) {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || isErrorSentinel(vs) {
				continue
			}
			if hasParallelSafeMarker(vs.Doc) {
				continue
			}
			for _, id := range vs.Names {
				if id.Name == "_" {
					continue
				}
				out = append(out, Finding{
					File: rel, Line: fset.Position(id.Pos()).Line,
					Analyzer: "parallelsafety",
					Msg:      fmt.Sprintf("package-level var %q in a simulated package: worlds run concurrently under internal/sched, so mutable globals are cross-world races — move it into the world's state, or document immutability with a parallel-safe: marker", id.Name),
				})
			}
		}
	}
	return out
}

// isErrorSentinel reports whether every initializer of the spec is an
// errors.New or fmt.Errorf call — the immutable error-identity pattern.
func isErrorSentinel(vs *ast.ValueSpec) bool {
	if len(vs.Values) == 0 || len(vs.Values) != len(vs.Names) {
		return false
	}
	for _, v := range vs.Values {
		call, ok := v.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return false
		}
		if !(pkg.Name == "errors" && sel.Sel.Name == "New") &&
			!(pkg.Name == "fmt" && sel.Sel.Name == "Errorf") {
			return false
		}
	}
	return true
}

func hasParallelSafeMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	return strings.Contains(doc.Text(), "parallel-safe:")
}
