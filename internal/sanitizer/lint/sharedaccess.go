package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// sharedaccess keeps the race detector honest: a shared simulated
// structure is only as well-checked as its accessor discipline. Every
// field the happens-before model instruments (internal/race) must be
// reached exclusively through the accessor functions that report the
// access to the detector — a direct field access anywhere else is an
// unchecked access the detector can never see.
//
// The check is purely name-based (the linter works from go/ast without
// type information), which is why the instrumented fields carry names that
// are unique across the repository (e.g. the SMP layer's ack word is
// `acked`, not `done`).
type sharedField struct {
	// field is the struct field name, matched against selector expressions.
	field string
	// owner is the module-relative directory prefix of the owning package.
	owner string
	// allowed lists the accessor functions (within owner) that may touch
	// the field directly; they are the detector's instrumentation points.
	allowed []string
}

var sharedFields = []sharedField{
	{field: "tlbGen", owner: "internal/mm/", allowed: []string{"Gen", "BumpGen"}},
	{field: "activeMask", owner: "internal/mm/", allowed: []string{"ActiveCPUs", "SetActive", "ClearActive"}},
	{field: "acked", owner: "internal/smp/", allowed: []string{"Done", "ack"}},
	{field: "lazy", owner: "internal/kernel/", allowed: []string{"Lazy", "setLazy"}},
	{field: "localGen", owner: "internal/kernel/", allowed: []string{"LocalGen", "SetLocalGen"}},
	{field: "lazyWork", owner: "internal/kernel/", allowed: []string{"QueueLazyWork", "PendingLazyWork", "DrainLazyWork"}},
	{field: "batched", owner: "internal/kernel/", allowed: []string{"InBatchedSyscall", "EnterBatchedSection", "ExitBatchedSection"}},
	{field: "pendingBatched", owner: "internal/kernel/", allowed: []string{"ExitBatchedSection", "QueueBatchedFlush"}},
	{field: "fabRing", owner: "internal/smp/", allowed: []string{"PostAsync", "DrainFabric", "FabricPending"}},
	{field: "fabPostSeq", owner: "internal/smp/", allowed: []string{"PostAsync", "DrainFabric", "FabricSeqs"}},
	{field: "fabAckSeq", owner: "internal/smp/", allowed: []string{"DrainFabric", "FabricSeqs", "batchAcked", "rekickBatch"}},
	{field: "fabFlushAll", owner: "internal/smp/", allowed: []string{"PostAsync", "DrainFabric", "FabricPending", "rekickBatch"}},
}

func sharedFieldByName(name string) *sharedField {
	for i := range sharedFields {
		if sharedFields[i].field == name {
			return &sharedFields[i]
		}
	}
	return nil
}

func (sf *sharedField) allows(fn string) bool {
	for _, a := range sf.allowed {
		if a == fn {
			return true
		}
	}
	return false
}

// checkSharedAccess flags selector expressions naming an instrumented
// field outside its accessor set. Composite-literal keys (zero-value
// construction like `tlbGen: 1` in a constructor) are not selector
// expressions and stay legal.
func checkSharedAccess(fset *token.FileSet, rel string, f *ast.File) []Finding {
	rel = filepath.ToSlash(rel)
	var out []Finding
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			sf := sharedFieldByName(sel.Sel.Name)
			if sf == nil {
				return true
			}
			switch {
			case !strings.HasPrefix(rel, sf.owner):
				out = append(out, Finding{
					File: rel, Line: fset.Position(sel.Pos()).Line,
					Analyzer: "sharedaccess",
					Msg: fmt.Sprintf("direct access to race-instrumented field %q outside %s; use the accessors (%s) so the happens-before checker sees it",
						sf.field, strings.TrimSuffix(sf.owner, "/"), strings.Join(sf.allowed, ", ")),
				})
			case !sf.allows(fn):
				out = append(out, Finding{
					File: rel, Line: fset.Position(sel.Pos()).Line,
					Analyzer: "sharedaccess",
					Msg: fmt.Sprintf("direct access to race-instrumented field %q in %s; only the accessors (%s) may touch it",
						sf.field, fn, strings.Join(sf.allowed, ", ")),
				})
			}
			return true
		})
	}
	return out
}
