package sanitizer

import (
	"fmt"
	"strings"

	"shootdown/internal/mm"
	"shootdown/internal/sim"
)

// lockdep is a minimal lock-order checker over the simulation's rwsems
// (mmap_sem instances and the SerializedIPIs smp_ipi_mtx). It records the
// per-process stack of held semaphores and builds a directed
// acquired-while-holding graph over lock *names*; a new edge that closes a
// cycle is a lock-order inversion.
//
// The graph is keyed by name rather than instance so that the classic mm
// deadlock shape — thread A takes mmap_sem[1] then mmap_sem[2] while
// thread B takes them in the opposite order — is reported even though the
// two edges involve four distinct (instance, instance) pairs. Same-name
// self-edges are ignored: concurrent readers of one rwsem are fine, and
// the simulator's cooperative scheduler cannot express a same-instance
// writer deadlock without hanging outright.
type lockdep struct {
	c        *Checker
	held     map[*sim.Proc][]*mm.RWSem
	adj      map[string][]string // acquisition-order edges, append order = discovery order
	edgeSeen map[[2]string]bool
	reported map[[2]string]bool
	shared   *mm.SemObserver
}

func newLockdep(c *Checker) *lockdep {
	ld := &lockdep{
		c:        c,
		held:     make(map[*sim.Proc][]*mm.RWSem),
		adj:      make(map[string][]string),
		edgeSeen: make(map[[2]string]bool),
		reported: make(map[[2]string]bool),
	}
	ld.shared = &mm.SemObserver{
		Acquired: func(s *mm.RWSem, write bool) { ld.acquired(s) },
		Released: func(s *mm.RWSem, write bool) { ld.released(s) },
	}
	return ld
}

// observer returns the SemObserver to install on a watched semaphore.
func (ld *lockdep) observer() *mm.SemObserver { return ld.shared }

func (ld *lockdep) acquired(s *mm.RWSem) {
	p := ld.c.K.Eng.Current()
	if p == nil {
		return
	}
	held := ld.held[p]
	for _, h := range held {
		if h.Name() == s.Name() {
			continue
		}
		e := [2]string{h.Name(), s.Name()}
		if !ld.edgeSeen[e] {
			ld.edgeSeen[e] = true
			ld.adj[e[0]] = append(ld.adj[e[0]], e[1])
		}
		if ld.reported[e] {
			continue
		}
		// Adding h->s closed a cycle iff s already reaches h.
		if path := ld.path(s.Name(), h.Name()); path != nil {
			ld.reported[e] = true
			chain := append(path, s.Name())
			ld.c.addViolation("lock-order", ld.c.currentCPU(),
				fmt.Sprintf("lock-order inversion: %q acquired while holding %q, but the opposite order %s was already observed — two threads interleaving these orders deadlock",
					s.Name(), h.Name(), strings.Join(chain, " -> ")))
		}
	}
	ld.held[p] = append(held, s)
}

func (ld *lockdep) released(s *mm.RWSem) {
	p := ld.c.K.Eng.Current()
	if p == nil {
		return
	}
	held := ld.held[p]
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == s {
			ld.held[p] = append(held[:i], held[i+1:]...)
			return
		}
	}
}

// path returns a lock chain from -> ... -> to over recorded edges, or nil.
// Adjacency lists are slices in discovery order, so the search (and any
// reported chain) is deterministic.
func (ld *lockdep) path(from, to string) []string {
	if from == to {
		return []string{from}
	}
	visited := map[string]bool{from: true}
	var dfs func(n string, trail []string) []string
	dfs = func(n string, trail []string) []string {
		for _, next := range ld.adj[n] {
			if next == to {
				return append(trail, n, to)
			}
			if visited[next] {
				continue
			}
			visited[next] = true
			if p := dfs(next, append(trail, n)); p != nil {
				return p
			}
		}
		return nil
	}
	return dfs(from, nil)
}
