// Package sanitizer is a shadow-oracle coherence checker for the simulated
// TLB shootdown protocol — the correctness backbone behind the paper's
// claim that flushes can be elided, deferred and overlapped without ever
// letting a core translate through a stale entry (§5 of the paper
// describes the debug mechanism Linux needed for exactly this).
//
// Attached to a kernel, the checker maintains a ground-truth shadow copy of
// every tracked address space's page tables, fed by page-table mutation
// observers. Each restrictive PTE change (unmap, frame change, permission
// removal) opens a *flush obligation*: until the covering shootdown
// completes, stale TLB hits on the changed page are legal — that is the
// protocol's inherent (and bounded) staleness window. A TLB hit that
// contradicts the shadow page table outside any open obligation is a
// stale-translation violation, reported with the full event trace: who
// changed the PTE, which shootdown should have covered it, and how the
// window was closed.
//
// The checker also counts redundant flushes (invalidations that removed
// nothing — the paper's headline waste), verifies every queued IPI request
// is acknowledged, flags early acknowledgements on table-freeing flushes
// (forbidden by §3.2), and runs a lockdep-style lock-order check over
// mm/rwsem instances.
//
// All hooks are purely observational: they never advance simulated time,
// so a checked run is cycle-identical to an unchecked one.
package sanitizer

import (
	"fmt"
	"sort"

	"shootdown/internal/apic"
	"shootdown/internal/core"
	"shootdown/internal/kernel"
	"shootdown/internal/mach"
	"shootdown/internal/mm"
	"shootdown/internal/pagetable"
	"shootdown/internal/sim"
	"shootdown/internal/smp"
	"shootdown/internal/tlb"
)

// Config tunes the checker.
type Config struct {
	// AllowLazyWindow legalizes stale hits on CPUs that still have queued
	// lazy flush work. It must be set when the protocol runs with
	// core.Config.LazyRemote: the LATR-style extension is *designed* to
	// leave the §2.3.2 staleness window open, and the experiments that use
	// it measure exactly that window. Without this flag the checker
	// (correctly) reports the lazy protocol as incoherent.
	AllowLazyWindow bool
	// MaxViolations caps recorded violations per checker (default 64);
	// further violations are counted but dropped from the report.
	MaxViolations int
}

// Violation is one detected protocol violation.
type Violation struct {
	// Kind classifies the violation: "stale-translation", "unacked-ipi",
	// "early-ack-freed-tables", "lock-order", "leftover-ipi",
	// "unfinished-shootdown" or "shadow-divergence".
	Kind string
	// CPU is the CPU the violation was observed on (-1 if machine-wide).
	CPU int
	// At is the virtual time of detection.
	At sim.Time
	// Msg is the full multi-line report.
	Msg string
}

// Stats aggregates checker observations over a run.
type Stats struct {
	PTEChanges         uint64
	RestrictiveChanges uint64
	ObligationsOpened  uint64
	ClosedByShootdown  uint64
	ClosedByUserReturn uint64
	TLBHits            uint64
	StaleLegalOpen     uint64
	StaleLegalLazy     uint64
	SelectiveFlushes   uint64
	RedundantSelective uint64
	FullFlushes        uint64
	RedundantFull      uint64
	IPIRequests        uint64
	Shootdowns         uint64
}

// Add accumulates another run's counters into s.
func (s *Stats) Add(o Stats) {
	s.PTEChanges += o.PTEChanges
	s.RestrictiveChanges += o.RestrictiveChanges
	s.ObligationsOpened += o.ObligationsOpened
	s.ClosedByShootdown += o.ClosedByShootdown
	s.ClosedByUserReturn += o.ClosedByUserReturn
	s.TLBHits += o.TLBHits
	s.StaleLegalOpen += o.StaleLegalOpen
	s.StaleLegalLazy += o.StaleLegalLazy
	s.SelectiveFlushes += o.SelectiveFlushes
	s.RedundantSelective += o.RedundantSelective
	s.FullFlushes += o.FullFlushes
	s.RedundantFull += o.RedundantFull
	s.IPIRequests += o.IPIRequests
	s.Shootdowns += o.Shootdowns
}

// obKey identifies a flush obligation: one leaf page of one address space.
type obKey struct {
	mm mm.ID
	va uint64
}

// obligation is an open (or the most recently closed) flush window for a
// restrictive PTE change. kind/old/cpu/at describe the *latest* restrictive
// change folded into the window: when a second change lands on a page whose
// window is still open (e.g. writeback write-protecting a page another CPU
// just CoW-remapped), the obligation is re-blamed to the later changer —
// only that CPU's covering flush (or return to user) may close the window.
type obligation struct {
	key      obKey
	size     pagetable.Size
	kind     string
	old      pagetable.PTE
	cpu      int // CPU of the latest change, -1 if from outside a CPU proc
	at       sim.Time
	merged   int // further restrictive changes folded into this window
	closedAt sim.Time
	closedBy string
}

type pcidRef struct {
	sh   *shadow
	user bool
}

type reqRec struct {
	req  *smp.Request
	from mach.CPU
	at   sim.Time
}

type vioKey struct {
	cpu int
	mm  mm.ID
	va  uint64
}

// Checker is one attached sanitizer instance (one simulated machine).
type Checker struct {
	K   *kernel.Kernel
	F   *core.Flusher
	Cfg Config

	shadows map[mm.ID]*shadow
	byPCID  map[tlb.PCID]pcidRef
	open    map[obKey]*obligation
	closed  map[obKey]*obligation
	begins  map[*core.FlushInfo]sim.Time
	procCPU map[*sim.Proc]int
	seen    map[vioKey]bool
	reqs    []reqRec

	locks *lockdep

	violations []Violation
	dropped    int
	stats      Stats

	result *Summary
}

// Attach installs the checker on a booted (or booting) kernel. f may be
// nil when the flusher is not a *core.Flusher; shootdown-window tracking
// then falls back to the return-to-user backstop alone. Attach chains any
// hooks already installed (e.g. the trace recorder's ack hook).
func Attach(k *kernel.Kernel, f *core.Flusher, cfg Config) *Checker {
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 64
	}
	c := &Checker{
		K: k, F: f, Cfg: cfg,
		shadows: make(map[mm.ID]*shadow),
		byPCID:  make(map[tlb.PCID]pcidRef),
		open:    make(map[obKey]*obligation),
		closed:  make(map[obKey]*obligation),
		begins:  make(map[*core.FlushInfo]sim.Time),
		procCPU: make(map[*sim.Proc]int),
		seen:    make(map[vioKey]bool),
	}
	c.locks = newLockdep(c)

	prevAS := k.ASHook
	k.ASHook = func(as *mm.AddressSpace) {
		if prevAS != nil {
			prevAS(as)
		}
		c.trackAS(as)
	}
	prevUR := k.UserReturnHook
	k.UserReturnHook = func(cpu *kernel.CPU) {
		if prevUR != nil {
			prevUR(cpu)
		}
		c.onUserReturn(cpu)
	}
	prevCall := k.SMP.CallHook
	k.SMP.CallHook = func(from mach.CPU, req *smp.Request) {
		if prevCall != nil {
			prevCall(from, req)
		}
		c.onCall(from, req)
	}
	if f != nil {
		f.SetProbe(&core.Probe{
			ShootBegin: func(cpu mach.CPU, info *core.FlushInfo) {
				c.stats.Shootdowns++
				c.begins[info] = k.Eng.Now()
			},
			ShootEnd: c.onShootEnd,
		})
		if m := f.IPIMutex(); m != nil {
			m.SetObserver(c.locks.observer())
		}
	}
	for _, cpu := range k.CPUs() {
		cpu := cpu
		cpu.TLB.SetObserver(&tlb.Observer{
			Hit: func(pcid tlb.PCID, va uint64, e tlb.Entry) { c.onHit(cpu, pcid, va, e) },
			FlushPage: func(pcid tlb.PCID, va uint64, removed int) {
				c.stats.SelectiveFlushes++
				if removed == 0 {
					c.stats.RedundantSelective++
				}
			},
			FlushPCID: func(pcid tlb.PCID, removed int) {
				c.stats.FullFlushes++
				if removed == 0 {
					c.stats.RedundantFull++
				}
			},
			FlushAll: func(globals bool, removed int) {
				c.stats.FullFlushes++
				if removed == 0 {
					c.stats.RedundantFull++
				}
			},
		})
	}
	return c
}

// TrackAddressSpace registers an address space created before Attach (the
// kernel's ASHook covers every one created after).
func (c *Checker) TrackAddressSpace(as *mm.AddressSpace) { c.trackAS(as) }

// WatchSem adds a semaphore to the lock-order checker (address-space
// mmap_sems and the flusher's IPI mutex are watched automatically).
func (c *Checker) WatchSem(s *mm.RWSem) { s.SetObserver(c.locks.observer()) }

func (c *Checker) trackAS(as *mm.AddressSpace) {
	if _, ok := c.shadows[as.ID]; ok {
		return
	}
	sh := newShadow(as)
	c.shadows[as.ID] = sh
	c.byPCID[as.KernelPCID] = pcidRef{sh, false}
	c.byPCID[as.UserPCID] = pcidRef{sh, true}
	as.PT.SetObserver(func(ch pagetable.Change) { c.onChange(sh, ch) })
	as.MmapSem.SetObserver(c.locks.observer())
}

// currentCPU resolves the executing simulated process to its kernel CPU
// (-1 when the mutation came from a non-CPU process or from the event
// loop).
func (c *Checker) currentCPU() int {
	p := c.K.Eng.Current()
	if p == nil {
		return -1
	}
	if id, ok := c.procCPU[p]; ok {
		return id
	}
	id := -1
	for _, cpu := range c.K.CPUs() {
		if cpu.Proc() == p {
			id = int(cpu.ID)
			break
		}
	}
	c.procCPU[p] = id
	return id
}

func (c *Checker) onChange(sh *shadow, ch pagetable.Change) {
	c.stats.PTEChanges++
	restrictive, kind := classify(ch)
	sh.apply(ch)
	if !restrictive {
		return
	}
	c.stats.RestrictiveChanges++
	key := obKey{sh.as.ID, ch.VA}
	if ob, ok := c.open[key]; ok {
		// The window is re-blamed to this change: an already-running
		// shootdown sampled the page tables before it and cannot cover it,
		// so only a flush begun from here on (or the changer's own return
		// to user) may close the window.
		ob.merged++
		ob.kind, ob.old = kind, ch.Old
		ob.cpu, ob.at = c.currentCPU(), c.K.Eng.Now()
		return
	}
	c.stats.ObligationsOpened++
	c.open[key] = &obligation{
		key: key, size: ch.Size, kind: kind, old: ch.Old,
		cpu: c.currentCPU(), at: c.K.Eng.Now(),
	}
}

// classify decides whether a PTE change can leave a dangerous stale TLB
// entry behind. Permission-adding changes (populate, CoW reuse, dirty and
// accessed tracking, prot-none clearing) cannot: a TLB entry caching the
// weaker old permissions merely causes a spurious fault.
func classify(ch pagetable.Change) (restrictive bool, kind string) {
	oldF, newF := ch.Old.Flags, ch.New.Flags
	switch {
	case !oldF.Has(pagetable.Present):
		return false, ""
	case !newF.Has(pagetable.Present):
		return true, "unmap"
	case ch.New.Frame != ch.Old.Frame:
		return true, "remap"
	case oldF.Has(pagetable.Write) && !newF.Has(pagetable.Write):
		return true, "write-protect"
	case !oldF.Has(pagetable.NX) && newF.Has(pagetable.NX):
		return true, "nx-set"
	case !oldF.Has(pagetable.ProtNone) && newF.Has(pagetable.ProtNone):
		return true, "protnone-set"
	}
	return false, ""
}

func (c *Checker) onShootEnd(cpu mach.CPU, info *core.FlushInfo) {
	closedBy := fmt.Sprintf("shootdown (initiator cpu%d, gen %d, range [%#x,%#x), full=%v)",
		cpu, info.NewGen, info.Start, info.End, info.Full)
	now := c.K.Eng.Now()
	beginAt, tracked := c.begins[info]
	delete(c.begins, info)
	if !tracked {
		beginAt = now
	}
	for key, ob := range c.open {
		if key.mm != info.AS.ID {
			continue
		}
		if !info.Full {
			end := key.va + ob.size.Bytes()
			if end <= info.Start || key.va >= info.End {
				continue
			}
		}
		// A shootdown covers only changes made before it began: a change
		// that raced in afterwards (merged into this window) keeps the
		// window open until its own covering flush completes.
		if ob.at > beginAt {
			continue
		}
		ob.closedAt = now
		ob.closedBy = closedBy
		c.closed[key] = ob
		delete(c.open, key)
		c.stats.ClosedByShootdown++
	}
}

// onUserReturn is the backstop that bounds every obligation: by the time
// the CPU that made a restrictive change returns to user mode, its syscall
// (or fault handler) must have completed the covering flush — FlushAfter
// and CoWFixup run synchronously under mmap_sem. Closing the window here
// is what gives the checker detection power against a broken protocol: if
// the flush was elided, later stale hits land outside any window.
func (c *Checker) onUserReturn(cpu *kernel.CPU) {
	id := int(cpu.ID)
	now := c.K.Eng.Now()
	for key, ob := range c.open {
		if ob.cpu != id {
			continue
		}
		if c.coveredInFlight(key, ob) {
			// A shootdown covering this window began and has not completed:
			// the window stays open until its end event. Synchronous
			// shootdowns begin and end inside the initiator's syscall, so
			// this only fires for the async fabric's deferred discharge —
			// the initiator legally resumes user work while the posted
			// batch is still in flight, and only the batch completion
			// (every target's generation ack) may close the window.
			continue
		}
		ob.closedAt = now
		ob.closedBy = fmt.Sprintf("return-to-user (cpu%d, no covering shootdown observed)", id)
		c.closed[key] = ob
		delete(c.open, key)
		c.stats.ClosedByUserReturn++
	}
}

// coveredInFlight reports whether an in-flight shootdown (begun, not yet
// ended) covers the obligation: same address space, full or overlapping
// range, begun no earlier than the change.
func (c *Checker) coveredInFlight(key obKey, ob *obligation) bool {
	for info, beginAt := range c.begins {
		if info.AS.ID != key.mm || ob.at > beginAt {
			continue
		}
		if !info.Full {
			end := key.va + ob.size.Bytes()
			if end <= info.Start || key.va >= info.End {
				continue
			}
		}
		return true
	}
	return false
}

func (c *Checker) onCall(from mach.CPU, req *smp.Request) {
	c.stats.IPIRequests++
	if req.AckEarly {
		if fi, ok := req.Payload.(*core.FlushInfo); ok && fi.FreedTables {
			c.addViolation("early-ack-freed-tables", int(from),
				fmt.Sprintf("early-ack-freed-tables: cpu%d queued an early-ack flush request to cpu%d although the flush frees page tables (mm %d, range [%#x,%#x)) — §3.2 forbids early acks here: a speculative walk on the not-yet-flushed target could touch freed memory",
					from, req.Target(), fi.AS.ID, fi.Start, fi.End))
		}
	}
	c.reqs = append(c.reqs, reqRec{req, from, c.K.Eng.Now()})
	if len(c.reqs) > 8192 {
		kept := c.reqs[:0]
		for _, r := range c.reqs {
			if !r.req.Done() {
				kept = append(kept, r)
			}
		}
		c.reqs = kept
	}
}

func (c *Checker) onHit(cpu *kernel.CPU, pcid tlb.PCID, va uint64, e tlb.Entry) {
	c.stats.TLBHits++
	ref, ok := c.byPCID[pcid]
	if !ok {
		return
	}
	reason, shadowDesc := ref.sh.contradicts(va, e)
	if reason == "" {
		return
	}
	key4k := obKey{ref.sh.as.ID, va &^ (pagetable.PageSize4K - 1)}
	key2m := obKey{ref.sh.as.ID, va &^ (pagetable.PageSize2M - 1)}
	if _, ok := c.open[key4k]; ok {
		c.stats.StaleLegalOpen++
		return
	}
	if ob, ok := c.open[key2m]; ok && ob.size == pagetable.Size2M {
		c.stats.StaleLegalOpen++
		return
	}
	if c.Cfg.AllowLazyWindow && cpu.PendingLazyWork() > 0 {
		c.stats.StaleLegalLazy++
		return
	}
	vk := vioKey{int(cpu.ID), ref.sh.as.ID, key4k.va}
	if c.seen[vk] {
		return
	}
	c.seen[vk] = true

	space := "kernel"
	if ref.user {
		space = "user"
	}
	msg := fmt.Sprintf("stale-translation: cpu%d hit mm%d va %#x via %s PCID %#x: %s\n",
		cpu.ID, ref.sh.as.ID, va, space, pcid, reason)
	msg += fmt.Sprintf("  tlb entry: va %#x frame %#x size %s flags %s\n",
		e.VA, e.Frame, e.Size, e.Flags)
	msg += fmt.Sprintf("  shadow pte: %s\n", shadowDesc)
	if ob := c.lastObligation(key4k, key2m); ob != nil {
		msg += fmt.Sprintf("  pte change: %s of %#x (%s, old frame %#x flags %s) by %s at t=%d\n",
			ob.kind, ob.key.va, ob.size, ob.old.Frame, ob.old.Flags, cpuName(ob.cpu), ob.at)
		msg += fmt.Sprintf("  flush window: closed at t=%d by %s", ob.closedAt, ob.closedBy)
	} else {
		msg += "  pte change: untracked (predates checker attachment?)"
	}
	msg += fmt.Sprintf("\n  active config: %s", c.configString())
	c.addViolation("stale-translation", int(cpu.ID), msg)
}

func (c *Checker) lastObligation(keys ...obKey) *obligation {
	for _, k := range keys {
		if ob, ok := c.closed[k]; ok {
			return ob
		}
	}
	return nil
}

func cpuName(id int) string {
	if id < 0 {
		return "non-CPU context"
	}
	return fmt.Sprintf("cpu%d", id)
}

func (c *Checker) configString() string {
	s := "flusher=?"
	if c.F != nil {
		s = c.F.Cfg.String()
	}
	if c.K.Cfg.PTI {
		return s + " (safe mode)"
	}
	return s + " (unsafe mode)"
}

func (c *Checker) addViolation(kind string, cpu int, msg string) {
	if len(c.violations) >= c.Cfg.MaxViolations {
		c.dropped++
		return
	}
	c.violations = append(c.violations, Violation{
		Kind: kind, CPU: cpu, At: c.K.Eng.Now(), Msg: msg,
	})
}

// Finish runs the end-of-simulation checks (unacknowledged IPIs, leftover
// shootdown interrupts, shadow/page-table cross-validation) and returns
// the accumulated result. Call it after Engine.Run has quiesced; it is
// idempotent.
func (c *Checker) Finish() *Summary {
	if c.result != nil {
		return c.result
	}
	for _, r := range c.reqs {
		if !r.req.Done() {
			c.addViolation("unacked-ipi", int(r.req.Target()),
				fmt.Sprintf("unacked-ipi: flush request queued by cpu%d for cpu%d at t=%d was never acknowledged (early-ack=%v)",
					r.from, r.req.Target(), r.at, r.req.AckEarly))
		}
	}
	for _, cpu := range c.K.CPUs() {
		for i := 0; cpu.Ctrl.Pending() > 0 && i < 1024; i++ {
			irq, ok := cpu.Ctrl.Take()
			if !ok {
				break
			}
			if irq.Vector == apic.VectorCallFunction {
				c.addViolation("leftover-ipi", int(cpu.ID),
					fmt.Sprintf("leftover-ipi: cpu%d ended the run with an undelivered shootdown IPI from cpu%d", cpu.ID, irq.From))
			}
		}
	}
	if c.F != nil && c.F.Cfg.AsyncShootdown && len(c.begins) > 0 {
		// Async shootdowns detach begin from end: a batch whose targets
		// never all acked leaves its begin record behind. A quiesced run
		// must have drained and completed every posted batch (the rekick
		// ladder guarantees it even under drop faults), so leftovers mean
		// lost invalidations.
		type unfinished struct {
			info *core.FlushInfo
			at   sim.Time
		}
		var left []unfinished
		for info, at := range c.begins {
			left = append(left, unfinished{info, at})
		}
		sort.Slice(left, func(i, j int) bool {
			if left[i].at != left[j].at {
				return left[i].at < left[j].at
			}
			if left[i].info.AS.ID != left[j].info.AS.ID {
				return left[i].info.AS.ID < left[j].info.AS.ID
			}
			return left[i].info.Start < left[j].info.Start
		})
		for _, u := range left {
			c.addViolation("unfinished-shootdown", -1,
				fmt.Sprintf("unfinished-shootdown: async shootdown begun at t=%d (mm %d, gen %d, range [%#x,%#x), full=%v) never completed — some target never acked its fabric batch",
					u.at, u.info.AS.ID, u.info.NewGen, u.info.Start, u.info.End, u.info.Full))
		}
	}
	c.verifyShadows()
	c.result = &Summary{
		Worlds:     1,
		Violations: c.violations,
		Dropped:    c.dropped,
		Stats:      c.stats,
	}
	return c.result
}

// verifyShadows cross-validates every shadow against its real page table —
// a self-check that the observer hooks saw every mutation path.
func (c *Checker) verifyShadows() {
	ids := make([]int, 0, len(c.shadows))
	for id := range c.shadows {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		sh := c.shadows[mm.ID(id)]
		if diff := sh.diffAgainstPT(); diff != "" {
			c.addViolation("shadow-divergence", -1,
				fmt.Sprintf("shadow-divergence: mm%d shadow disagrees with its page table (missed mutation path?):\n%s", id, diff))
		}
	}
}

// Stats returns the counters accumulated so far.
func (c *Checker) Stats() Stats { return c.stats }

// OpenObligations returns the number of flush windows still open.
func (c *Checker) OpenObligations() int { return len(c.open) }
