package typedlint

import (
	"fmt"
	"strings"

	"shootdown/internal/sanitizer/lint"
)

// bannedImports mirrors the syntactic analyzer's list; the typed pass
// checks the import path of every ImportSpec, so aliased (`import t
// "time"`), dot and blank imports are all caught — the name an importer
// binds is irrelevant to what the package does.
var bannedImports = map[string]string{
	"time":         "wall-clock time breaks replayability; simulated time comes from sim.Engine.Now",
	"math/rand":    "the global PRNG breaks replayability; use the seeded generator in internal/sim",
	"math/rand/v2": "the global PRNG breaks replayability; use the seeded generator in internal/sim",
}

func checkDeterminismTyped(ctx *modCtx) ([]lint.Finding, []Suppression) {
	var out []lint.Finding
	for _, p := range ctx.pkgs {
		for i, f := range p.Files {
			rel := p.FileNames[i]
			if !lint.InDeterminismScope(rel) {
				// The analyzer tier times itself; see lint.InDeterminismScope.
				continue
			}
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				why, ok := bannedImports[path]
				if !ok {
					continue
				}
				form := "import"
				switch {
				case imp.Name == nil:
				case imp.Name.Name == ".":
					form = "dot-import"
				case imp.Name.Name == "_":
					form = "blank import"
				default:
					form = fmt.Sprintf("aliased import (as %q)", imp.Name.Name)
				}
				out = append(out, lint.Finding{
					File: rel, Line: ctx.m.Fset.Position(imp.Pos()).Line,
					Analyzer: "determinism",
					Msg:      fmt.Sprintf("%s of %q: %s", form, path, why),
				})
			}
		}
	}
	return out, nil
}
