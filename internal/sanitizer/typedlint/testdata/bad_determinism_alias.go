// Fixture: banned imports in the three disguised forms the syntactic
// name-based check historically missed — aliased, blank and dot imports.
// The typed determinism analyzer keys on the import path, so all three
// fire (three findings).
package detfix

import (
	_ "math/rand"
	. "math/rand/v2"
	clock "time"
)

func wallNow() int64 { return clock.Now().UnixNano() }

func roll() int { return IntN(6) }
