// Fixture: constant cycle costs the syntactic costliteral pass cannot
// see. The typed analyzer must report exactly two findings — a named
// constant at a Delay call, and the same constant routed through a thin
// wrapper whose parameter the fixpoint proves cost-like. The syntactic
// pass (which only matches integer literals at the call site) reports
// zero on this file; the paired test asserts that delta.
package costfix

import "shootdown/internal/sim"

const fixedCost = 120

func chargeFixed(p *sim.Proc) {
	p.Delay(fixedCost)
}

func delayVia(p *sim.Proc, cost uint64) {
	p.Delay(cost)
}

func chargeWrapped(p *sim.Proc) {
	delayVia(p, fixedCost)
}
