// Fixture: a hook that mutates the state it observes in the two ways the
// syntactic pass cannot prove — exactly two findings. The direct field
// write goes through the hook parameter; the method call mutates through
// a local alias of the parameter, and only the module-wide summaries know
// NoteContention writes its receiver's contention counter.
package purefix

import (
	"shootdown/internal/kernel"
	"shootdown/internal/mm"
)

func installImpure(k *kernel.Kernel) {
	k.ASHook = func(as *mm.AddressSpace) {
		as.KernelPCID = 0
		sem := as.MmapSem
		sem.NoteContention()
	}
}
