package typedlint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"shootdown/internal/sanitizer/lint"
)

// The module is typechecked once and shared: loading is the expensive
// part (the GOROOT source importer typechecks stdlib dependencies), the
// analyzers themselves are cheap and read-only over the loaded data.
var (
	modOnce sync.Once
	mod     *Module
	modErr  error
)

func sharedModule(t *testing.T) *Module {
	t.Helper()
	modOnce.Do(func() { mod, modErr = LoadModule() })
	if modErr != nil {
		t.Fatalf("LoadModule: %v", modErr)
	}
	return mod
}

func checkFixture(t *testing.T, name string) *Result {
	t.Helper()
	res, err := CheckFixture(sharedModule(t), filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("CheckFixture(%s): %v", name, err)
	}
	return res
}

func countBy(fs []lint.Finding, analyzer string) int {
	n := 0
	for _, f := range fs {
		if f.Analyzer == analyzer {
			n++
		}
	}
	return n
}

func TestCostConstTypedCatchesWhatSyntacticMisses(t *testing.T) {
	res := checkFixture(t, "bad_costconst.go")
	if got := countBy(res.Findings, "costliteral"); got != 2 {
		t.Fatalf("typed costliteral findings = %d, want exactly 2 (direct + wrapper): %v", got, res.Findings)
	}

	src, err := os.ReadFile(filepath.Join("testdata", "bad_costconst.go"))
	if err != nil {
		t.Fatal(err)
	}
	// The fake path puts the file in the syntactic analyzer's cost scope.
	syn, err := lint.CheckSource("internal/mm/bad_costconst.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if got := 0; countBy(syn, "costliteral") != got {
		t.Fatalf("syntactic costliteral findings = %d, want 0 (the tier delta this fixture proves)", countBy(syn, "costliteral"))
	}
}

func TestDeterminismTypedCatchesDisguisedImports(t *testing.T) {
	res := checkFixture(t, "bad_determinism_alias.go")
	if got := countBy(res.Findings, "determinism"); got != 3 {
		t.Fatalf("determinism findings = %d, want 3 (aliased, blank, dot): %v", got, res.Findings)
	}
	all := fmt.Sprint(res.Findings)
	for _, form := range []string{"aliased import", "blank import", "dot-import"} {
		if !strings.Contains(all, form) {
			t.Fatalf("missing %q finding in %v", form, res.Findings)
		}
	}
}

func TestObserverPurityTypedFixtureFires(t *testing.T) {
	res := checkFixture(t, "bad_observerpurity.go")
	if got := countBy(res.Findings, "observerpurity"); got != 2 {
		t.Fatalf("observerpurity findings = %d, want 2 (direct write + mutating method via alias): %v", got, res.Findings)
	}
	all := fmt.Sprint(res.Findings)
	if !strings.Contains(all, "NoteContention") {
		t.Fatalf("the method-call finding should name NoteContention: %v", res.Findings)
	}
}

// TestRepoIsVetClean is the other half of every fixture pair: the typed
// analyzers report nothing on the repository itself.
func TestRepoIsVetClean(t *testing.T) {
	res := CheckModule(sharedModule(t))
	if len(res.Findings) != 0 {
		t.Fatalf("repository should be vet-clean, got %d finding(s):\n%v", len(res.Findings), res.Findings)
	}
}

// renderReport formats a Result exactly like cmd/tlbvet prints it.
func renderReport(res *Result) string {
	var b strings.Builder
	for _, f := range res.Findings {
		fmt.Fprintln(&b, f.String())
	}
	for _, s := range res.Suppressions {
		fmt.Fprintf(&b, "%s:%d: %s: suppressed: %s\n", s.File, s.Line, s.Analyzer, s.Reason)
	}
	return b.String()
}

// TestVetOutputOrderedAndParallelStable is the golden ordering test: the
// report is sorted by file, line, analyzer, and two concurrent runs over
// the same loaded module produce byte-identical output. The analyses are
// read-only over the typechecked data, so scheduling cannot reorder them.
func TestVetOutputOrderedAndParallelStable(t *testing.T) {
	m := sharedModule(t)
	fp, err := m.LoadFixture(filepath.Join("testdata", "bad_determinism_alias.go"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs := append(append([]*Package{}, m.Pkgs...), fp)

	const runs = 4
	out := make([]string, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = renderReport(run(m, pkgs, fp, nil))
		}(i)
	}
	wg.Wait()

	if out[0] == "" {
		t.Fatal("expected non-empty report from the determinism fixture")
	}
	for i := 1; i < runs; i++ {
		if out[i] != out[0] {
			t.Fatalf("run %d output differs:\n%s\nvs:\n%s", i, out[i], out[0])
		}
	}
	// Sortedness: file, then line, then analyzer.
	res := run(m, pkgs, fp, nil)
	for i := 1; i < len(res.Findings); i++ {
		a, b := res.Findings[i-1], res.Findings[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) ||
			(a.File == b.File && a.Line == b.Line && a.Analyzer > b.Analyzer) {
			t.Fatalf("findings out of order at %d: %v before %v", i, a, b)
		}
	}
}
