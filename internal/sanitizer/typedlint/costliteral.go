package typedlint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"path/filepath"
	"strings"

	"shootdown/internal/sanitizer/lint"
)

// costliteral (typed tier): every cycle cost charged in the machine-model
// packages must come from the cost model. The syntactic pass only catches
// a literal written directly at a Delay call; this pass catches what it
// misses:
//
//   - named constants and constant expressions (go/types constant folding
//     evaluates them, so `p.Delay(fixedCost)` is as visible as
//     `p.Delay(123)`), and
//   - thin wrappers: a parameter that a function forwards whole to Delay
//     (or to another cost-like parameter) is itself cost-like, so a
//     constant passed to the wrapper is flagged at the wrapper's call
//     site.
//
// The sink is (*sim.Proc).Delay resolved by callee identity, not method
// name, so an unrelated Delay method elsewhere cannot confuse the pass.

// costScope mirrors the syntactic analyzer's directory scope.
var costScope = []string{
	"internal/apic/", "internal/cache/", "internal/core/", "internal/daemons/",
	"internal/kernel/", "internal/mm/", "internal/smp/", "internal/syscalls/",
	"internal/tlb/",
}

func inCostScopeTyped(rel string) bool {
	rel = filepath.ToSlash(rel)
	if InFixture(rel) {
		return true
	}
	for _, p := range costScope {
		if strings.HasPrefix(rel, p) {
			return true
		}
	}
	return false
}

// isDelaySink reports whether fn is (*sim.Proc).Delay.
func isDelaySink(fn *types.Func) bool {
	if fn == nil || fn.Name() != "Delay" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return IsNamed(sig.Recv().Type(), ModulePath+"/internal/sim", "Proc")
}

// costParam identifies one cost-like parameter of a module function.
type costParam struct {
	fn  *types.Func
	idx int // index into the signature's params
}

// checkCostConst runs the typed costliteral analyzer.
func checkCostConst(ctx *modCtx) ([]lint.Finding, []Suppression) {
	funcs := AllFuncs(ctx.pkgs)

	// Fixpoint: a parameter is cost-like when its function passes it whole
	// (modulo parens and conversions) to Delay or to an already cost-like
	// parameter. Thin wrappers of wrappers converge in a few rounds.
	costLike := make(map[costParam]bool)
	paramIndex := func(fn FuncDecl, v *types.Var) int {
		sig := fn.Obj.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i) == v {
				return i
			}
		}
		return -1
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range funcs {
			info := fd.Pkg.Info
			ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := CalleeFunc(info, call)
				if callee == nil {
					return true
				}
				for i, arg := range call.Args {
					v := IdentObj(info, Unwrap(info, arg))
					if v == nil {
						continue
					}
					pi := paramIndex(fd, v)
					if pi < 0 {
						continue
					}
					sunk := (isDelaySink(callee) && i == 0) ||
						costLike[costParam{fn: callee, idx: i}]
					key := costParam{fn: fd.Obj, idx: pi}
					if sunk && !costLike[key] {
						costLike[key] = true
						changed = true
					}
				}
				return true
			})
		}
	}

	// Flag compile-time-constant arguments reaching a sink from cost-scope
	// code. Zero is exempt: `Delay(0)` is an explicit no-op, not a cost.
	var out []lint.Finding
	for _, fd := range funcs {
		if !inCostScopeTyped(fd.File) {
			continue
		}
		info := fd.Pkg.Info
		ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := CalleeFunc(info, call)
			if callee == nil {
				return true
			}
			for i, arg := range call.Args {
				isSink := (isDelaySink(callee) && i == 0) ||
					costLike[costParam{fn: callee, idx: i}]
				if !isSink {
					continue
				}
				tv, ok := info.Types[arg]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
					continue
				}
				if v, ok := constant.Uint64Val(tv.Value); ok && v == 0 {
					continue
				}
				what := "constant cycle cost"
				if _, lit := ast.Unparen(arg).(*ast.BasicLit); !lit {
					what = "named-constant cycle cost"
				}
				dest := "Delay"
				if !isDelaySink(callee) {
					dest = fmt.Sprintf("cost parameter %d of %s", i, callee.Name())
				}
				out = append(out, lint.Finding{
					File: fd.File, Line: ctx.m.Fset.Position(arg.Pos()).Line,
					Analyzer: "costliteral",
					Msg: fmt.Sprintf("%s %s passed to %s; route it through the cost model (internal/mach/costs.go)",
						what, tv.Value.ExactString(), dest),
				})
			}
			return true
		})
	}
	return out, nil
}
