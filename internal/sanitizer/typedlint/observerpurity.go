package typedlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"shootdown/internal/sanitizer/lint"
)

// observerpurity (typed tier): hooks must be purely observational. The
// syntactic pass (internal/sanitizer/lint/purity.go) catches direct
// assignments through a hook parameter; this pass additionally catches
//
//   - mutation through method calls: a hook body that calls a method on
//     observed state is flagged when module-wide summaries prove the
//     method (transitively) writes through its receiver — e.g.
//     sem.NoteContention() bumps the semaphore's contention counter even
//     though no assignment appears at the hook site; and
//   - aliasing: `s := e.Sem; s.NoteContention()` taints s because it was
//     derived from a hook parameter, so laundering the state through a
//     local does not escape the rule.
//
// Two carve-outs keep the rule aligned with the simulator's contract:
//
//   - Methods declared in the instrumentation packages (race, trace,
//     stats, sanitizer) are pure by convention — recording into the
//     observer's own ledger is what observers are for.
//   - workload.SetBootHook bodies are exempt from the method-call rule:
//     the boot hook runs before the world starts, and attaching
//     instrumentation there (k.EnableRace(d), f.EnableRace()) is its
//     designed purpose. Direct writes through the parameter are still
//     flagged, same as the syntactic tier.
var pureDeclPkgs = []string{
	ModulePath + "/internal/race",
	ModulePath + "/internal/trace",
	ModulePath + "/internal/stats",
	ModulePath + "/internal/sanitizer",
}

func inPurePkg(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return true // stdlib and friends: out of scope
	}
	p := fn.Pkg().Path()
	for _, pure := range pureDeclPkgs {
		if p == pure || strings.HasPrefix(p, pure+"/") {
			return true
		}
	}
	return false
}

// checkObserverPurityTyped runs the typed observer-purity analyzer.
func checkObserverPurityTyped(ctx *modCtx) ([]lint.Finding, []Suppression) {
	mut := buildMutatingSummaries(ctx)
	impls := BuildImplMap(ctx.pkgs)
	var out []lint.Finding
	for _, fd := range AllFuncs(ctx.pkgs) {
		info := fd.Pkg.Info
		ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
			for _, h := range hookLits(info, n) {
				out = append(out, checkHookLit(ctx, fd, h, mut, impls)...)
			}
			return true
		})
	}
	return out, nil
}

// hookInstall is one recognized hook literal plus its installation kind.
type hookInstall struct {
	lit  *ast.FuncLit
	boot bool // installed via workload.SetBootHook
}

// hookLits returns the hook function literals n installs, resolved with
// type information (so an Observer composite literal is recognized by its
// named type, not by what the file happens to call it).
func hookLits(info *types.Info, n ast.Node) []hookInstall {
	var out []hookInstall
	switch v := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range v.Lhs {
			if i >= len(v.Rhs) {
				break
			}
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok || !strings.HasSuffix(sel.Sel.Name, "Hook") {
				continue
			}
			if lit, ok := v.Rhs[i].(*ast.FuncLit); ok {
				out = append(out, hookInstall{lit: lit})
			}
		}
	case *ast.CompositeLit:
		tv, ok := info.Types[v]
		if !ok {
			return nil
		}
		named := NamedType(tv.Type)
		if named == nil {
			return nil
		}
		name := named.Obj().Name()
		if !strings.HasSuffix(name, "Observer") && !strings.HasSuffix(name, "Probe") {
			return nil
		}
		for _, el := range v.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if lit, ok := kv.Value.(*ast.FuncLit); ok {
				out = append(out, hookInstall{lit: lit})
			}
		}
	case *ast.CallExpr:
		fn := CalleeFunc(info, v)
		if fn == nil {
			return nil
		}
		switch fn.Name() {
		case "SetObserver", "SetProbe", "SetBootHook":
		default:
			return nil
		}
		boot := fn.Name() == "SetBootHook"
		for _, arg := range v.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				out = append(out, hookInstall{lit: lit, boot: boot})
			}
		}
	}
	return out
}

// checkHookLit flags impure statements inside one hook literal.
func checkHookLit(ctx *modCtx, fd FuncDecl, h hookInstall, mut map[*types.Func]bool, impls map[*types.Func][]*types.Func) []lint.Finding {
	info := fd.Pkg.Info

	// Taint: the hook's parameters, plus locals derived from them.
	taint := make(map[*types.Var]bool)
	for _, field := range h.lit.Type.Params.List {
		for _, id := range field.Names {
			if v, ok := info.Defs[id].(*types.Var); ok {
				taint[v] = true
			}
		}
	}
	// Alias closure (flow-insensitive; alias-of-alias converges).
	for changed := true; changed; {
		changed = false
		ast.Inspect(h.lit.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, r := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				src := rootVar(info, r)
				if src == nil || !taint[src] {
					continue
				}
				dst := IdentObj(info, as.Lhs[i])
				if dst != nil && !taint[dst] {
					taint[dst] = true
					changed = true
				}
			}
			return true
		})
	}

	var out []lint.Finding
	report := func(pos token.Pos, target, how string) {
		out = append(out, lint.Finding{
			File: fd.File, Line: ctx.m.Fset.Position(pos).Line,
			Analyzer: "observerpurity",
			Msg:      fmt.Sprintf("hook mutates observed state %q %s; observers must be purely observational", target, how),
		})
	}
	isMutating := func(fn *types.Func) bool {
		if inPurePkg(fn) {
			return false
		}
		if mut[fn] {
			return true
		}
		for _, impl := range impls[fn] { // interface method: any impl
			if mut[impl] {
				return true
			}
		}
		return false
	}

	ast.Inspect(h.lit.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range v.Lhs {
				if root := rootVar(info, lhs); root != nil && taint[root] {
					report(lhs.Pos(), root.Name(), "(write through hook parameter)")
				}
			}
		case *ast.IncDecStmt:
			if root := rootVar(info, v.X); root != nil && taint[root] {
				report(v.X.Pos(), root.Name(), "(write through hook parameter)")
			}
		case *ast.CallExpr:
			if h.boot {
				return true // boot hooks attach instrumentation by design
			}
			fn := CalleeFunc(info, v)
			if fn == nil || !isMutating(fn) {
				return true
			}
			sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if root := rootVar(info, sel.X); root != nil && taint[root] {
				report(v.Pos(), root.Name(), fmt.Sprintf("via call to mutating method %s", fn.Name()))
			}
		}
		return true
	})
	return out
}

// buildMutatingSummaries computes, by fixpoint over the module, which
// methods write through their receiver — directly (field assignment or
// ++/--) or by calling another mutating method on receiver-rooted state.
func buildMutatingSummaries(ctx *modCtx) map[*types.Func]bool {
	funcs := AllFuncs(ctx.pkgs)
	mut := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for _, fd := range funcs {
			if mut[fd.Obj] {
				continue
			}
			sig := fd.Obj.Type().(*types.Signature)
			if sig.Recv() == nil {
				continue
			}
			recvVar := receiverVar(fd)
			if recvVar == nil {
				continue
			}
			if methodMutates(fd, recvVar, mut) {
				mut[fd.Obj] = true
				changed = true
			}
		}
	}
	return mut
}

// receiverVar returns the *types.Var bound to fd's receiver name.
func receiverVar(fd FuncDecl) *types.Var {
	if fd.Decl.Recv == nil || len(fd.Decl.Recv.List) == 0 {
		return nil
	}
	names := fd.Decl.Recv.List[0].Names
	if len(names) == 0 {
		return nil // anonymous receiver cannot be written through
	}
	v, _ := fd.Pkg.Info.Defs[names[0]].(*types.Var)
	return v
}

// methodMutates reports whether fd writes through recvVar under the
// current fixpoint state.
func methodMutates(fd FuncDecl, recvVar *types.Var, mut map[*types.Func]bool) bool {
	info := fd.Pkg.Info
	found := false
	ast.Inspect(fd.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range v.Lhs {
				// A write to the bare receiver variable itself rebinds a
				// local copy; only writes through it (selector/index/deref)
				// mutate the object.
				if _, bare := ast.Unparen(lhs).(*ast.Ident); bare {
					continue
				}
				if root := rootVar(info, lhs); root == recvVar {
					found = true
					return false
				}
			}
		case *ast.IncDecStmt:
			if _, bare := ast.Unparen(v.X).(*ast.Ident); bare {
				return true
			}
			if root := rootVar(info, v.X); root == recvVar {
				found = true
				return false
			}
		case *ast.CallExpr:
			fn := CalleeFunc(info, v)
			if fn == nil || !mut[fn] {
				return true
			}
			sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if root := rootVar(info, sel.X); root == recvVar {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// rootVar walks selector/index/star/paren chains to the base identifier
// and resolves it to a variable (nil when the chain bottoms out in a call
// result, a package name or anything else that is not a variable).
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			obj, _ := info.ObjectOf(v).(*types.Var)
			return obj
		case *ast.SelectorExpr:
			// x in pkg.X is a package name, not a variable; ObjectOf on the
			// base ident sorts that out below.
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}
