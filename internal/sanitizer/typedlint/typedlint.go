// Package typedlint holds the type-checked analysis tier behind
// `tlbcheck -vet` and cmd/tlbvet. Where internal/sanitizer/lint works on a
// single file's syntax, this package typechecks the whole module (stdlib
// only: go/types plus the GOROOT source importer) and runs dataflow
// analyses on intraprocedural CFGs:
//
//   - flushobligation: every value of type mm.FlushRange returned by a
//     module call must reach a shootdown discharge (kernel.Flusher's
//     FlushAfter, or a callee proven to discharge it) on every path, be
//     returned to the caller, or carry an "obligation-transferred:" marker.
//   - lockorder: a static lockdep over the call graph — acquisition-order
//     cycles between mm.RWSem classes are reported without running a
//     single seed, complementing the runtime lockdep in internal/sanitizer
//     which only sees executed orders.
//   - costliteral: the typed successor of the syntactic pass — named
//     constants and thin Delay wrappers no longer escape, because sinks
//     are found by callee identity and arguments by constant value.
//   - determinism: banned imports (time, math/rand) by import path, so
//     aliased, dot and blank imports cannot slip through.
//   - observerpurity: hook/observer/probe literals must not mutate
//     simulated state even through method calls or aliases, using
//     module-wide mutating-method summaries.
//
// Findings reuse lint.Finding and are sorted by file, line and analyzer,
// so output is byte-identical no matter how the caller schedules the work.
package typedlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"shootdown/internal/sanitizer/lint"
)

// Suppression records a finding silenced by a documented marker, so
// suppressions stay auditable (tlbfuzz prints them next to failures).
type Suppression struct {
	// File and Line locate the suppressed site (module-relative).
	File string
	Line int
	// Analyzer names the rule that would have fired.
	Analyzer string
	// Reason is the marker text after the colon.
	Reason string
}

// Result is the outcome of a typed-lint run.
type Result struct {
	Findings     []lint.Finding
	Suppressions []Suppression
}

// Check loads the enclosing module and runs every typed analyzer.
func Check() (*Result, error) {
	m, err := LoadModule()
	if err != nil {
		return nil, err
	}
	return CheckModule(m), nil
}

// CheckModule runs every typed analyzer over an already-loaded module.
func CheckModule(m *Module) *Result {
	return run(m, m.Pkgs, nil)
}

// CheckFixture typechecks one testdata fixture against the module and runs
// the analyzers with the fixture in scope, reporting only findings located
// in the fixture's file. Used by tests to prove each analyzer fires.
func CheckFixture(m *Module, file string) (*Result, error) {
	fp, err := m.LoadFixture(file)
	if err != nil {
		return nil, err
	}
	pkgs := append(append([]*Package{}, m.Pkgs...), fp)
	return run(m, pkgs, fp), nil
}

// run executes the analyzers over pkgs. When only is non-nil, findings are
// restricted to that package's files (fixture mode); module-wide context
// (summaries, call graph) still spans all of pkgs.
func run(m *Module, pkgs []*Package, only *Package) *Result {
	ctx := &modCtx{m: m, pkgs: pkgs, markers: collectMarkers(m.Fset, pkgs)}
	res := &Result{}
	for _, an := range []func(*modCtx) ([]lint.Finding, []Suppression){
		checkDeterminismTyped,
		checkCostConst,
		checkFlushObligation,
		checkLockOrder,
		checkObserverPurityTyped,
	} {
		fs, sups := an(ctx)
		res.Findings = append(res.Findings, fs...)
		res.Suppressions = append(res.Suppressions, sups...)
	}
	if only != nil {
		res.Findings = filterByFiles(res.Findings, only.FileNames)
		res.Suppressions = filterSupsByFiles(res.Suppressions, only.FileNames)
	}
	sortFindings(res.Findings)
	sort.Slice(res.Suppressions, func(i, j int) bool {
		a, b := res.Suppressions[i], res.Suppressions[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return res
}

func sortFindings(fs []lint.Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		if fs[i].Analyzer != fs[j].Analyzer {
			return fs[i].Analyzer < fs[j].Analyzer
		}
		return fs[i].Msg < fs[j].Msg
	})
}

func filterByFiles(fs []lint.Finding, files []string) []lint.Finding {
	allowed := make(map[string]bool, len(files))
	for _, f := range files {
		allowed[f] = true
	}
	var out []lint.Finding
	for _, f := range fs {
		if allowed[f.File] {
			out = append(out, f)
		}
	}
	return out
}

func filterSupsByFiles(sups []Suppression, files []string) []Suppression {
	allowed := make(map[string]bool, len(files))
	for _, f := range files {
		allowed[f] = true
	}
	var out []Suppression
	for _, s := range sups {
		if allowed[s.File] {
			out = append(out, s)
		}
	}
	return out
}

// modCtx is the shared context every analyzer receives.
type modCtx struct {
	m    *Module
	pkgs []*Package
	// markers maps file → line → obligation-transferred reason. A marker
	// covers its own line and the line below it (doc-comment style).
	markers map[string]map[int]string
}

const transferMarker = "obligation-transferred:"

// collectMarkers indexes every "obligation-transferred:" comment.
func collectMarkers(fset *token.FileSet, pkgs []*Package) map[string]map[int]string {
	out := make(map[string]map[int]string)
	for _, p := range pkgs {
		for i, f := range p.Files {
			rel := p.FileNames[i]
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, transferMarker)
					if idx < 0 {
						continue
					}
					reason := strings.TrimSpace(c.Text[idx+len(transferMarker):])
					if out[rel] == nil {
						out[rel] = make(map[int]string)
					}
					out[rel][fset.Position(c.End()).Line] = reason
				}
			}
		}
	}
	return out
}

// markerFor returns the obligation-transferred reason covering line (the
// marker may sit on the line itself or on the line above).
func (ctx *modCtx) markerFor(file string, line int) (string, bool) {
	lines := ctx.markers[file]
	if lines == nil {
		return "", false
	}
	if r, ok := lines[line]; ok {
		return r, true
	}
	r, ok := lines[line-1]
	return r, ok
}

// --- shared typed helpers ---

// fileOf returns the file (and its module-relative name) containing pos.
func (p *Package) fileOf(pos token.Pos) (*ast.File, string) {
	for i, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f, p.FileNames[i]
		}
	}
	return nil, ""
}

// unwrap strips parentheses and value-preserving conversions, so
// "uint64(x)" and "(x)" alias x for whole-argument matching.
func unwrap(info *types.Info, e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.CallExpr:
			// A conversion parses as a call whose Fun is a type.
			if len(v.Args) == 1 && info.Types[v.Fun].IsType() {
				e = v.Args[0]
				continue
			}
			return e
		default:
			return e
		}
	}
}

// calleeFunc resolves a call to its *types.Func (methods, interface
// methods and plain functions). Returns nil for builtins, conversions and
// function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// identObj resolves an expression to the variable object it denotes
// (plain identifiers only; selectors and index expressions return nil).
func identObj(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.ObjectOf(id).(*types.Var)
	return v
}

// namedType unwraps pointers and returns the named type of t, or nil.
func namedType(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (after pointer unwrap) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// funcDecl pairs a declaration with its package for module-wide passes.
type funcDecl struct {
	pkg  *Package
	file string
	decl *ast.FuncDecl
	obj  *types.Func
}

// allFuncs lists every function declaration with a body across pkgs, in
// deterministic (package, file, source) order.
func allFuncs(pkgs []*Package) []funcDecl {
	var out []funcDecl
	for _, p := range pkgs {
		for i, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				out = append(out, funcDecl{pkg: p, file: p.FileNames[i], decl: fd, obj: obj})
			}
		}
	}
	return out
}

// inFixture reports whether a module-relative file path is a typedlint
// testdata fixture; fixtures opt into the scoped analyzers regardless of
// directory, so firing tests can live under testdata.
func inFixture(rel string) bool {
	return strings.Contains(rel, "sanitizer/typedlint/testdata/")
}
