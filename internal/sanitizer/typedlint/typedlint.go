// Package typedlint holds the type-checked analysis tier behind
// `tlbcheck -vet` and cmd/tlbvet. Where internal/sanitizer/lint works on a
// single file's syntax, this package typechecks the whole module (stdlib
// only: go/types plus the GOROOT source importer) and runs typed analyses:
//
//   - costliteral: the typed successor of the syntactic pass — named
//     constants and thin Delay wrappers no longer escape, because sinks
//     are found by callee identity and arguments by constant value.
//   - determinism: banned imports (time, math/rand) by import path, so
//     aliased, dot and blank imports cannot slip through.
//   - observerpurity: hook/observer/probe literals must not mutate
//     simulated state even through method calls or aliases, using
//     module-wide mutating-method summaries.
//
// The package also owns the module loader and the shared typed helpers
// (FuncDecl enumeration, marker index, callee resolution) that the deeper
// internal/sanitizer/ssa tier builds on. The CFG/SSA dataflow analyzers —
// flushobligation, lockorder, ipistate, detflow — live there.
//
// Findings reuse lint.Finding and are sorted by file, line and analyzer,
// so output is byte-identical no matter how the caller schedules the work.
package typedlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"

	"shootdown/internal/sanitizer/lint"
)

// Suppression records a finding silenced by a documented marker, so
// suppressions stay auditable (tlbfuzz prints them next to failures).
type Suppression struct {
	// File and Line locate the suppressed site (module-relative).
	File string
	Line int
	// Analyzer names the rule that would have fired.
	Analyzer string
	// Reason is the marker text after the colon.
	Reason string
}

// Result is the outcome of a typed-lint run.
type Result struct {
	Findings     []lint.Finding
	Suppressions []Suppression
	// FuncsVisited counts the function declarations the analyzers walked;
	// coverage-floor tests compare deeper tiers against it.
	FuncsVisited int
	// Timings holds per-analyzer wall-clock milliseconds, so the CI
	// static-tier budget is attributable per checker. Wall-clock is
	// nondeterministic by nature; reports keep it out of the sorted
	// findings/suppressions sections that must stay byte-identical.
	Timings map[string]float64
}

// Check loads the enclosing module and runs every typed analyzer.
func Check() (*Result, error) {
	m, err := LoadModule()
	if err != nil {
		return nil, err
	}
	return CheckModule(m), nil
}

// CheckModule runs every typed analyzer over an already-loaded module.
func CheckModule(m *Module) *Result {
	return run(m, m.Pkgs, nil, nil)
}

// CheckModuleOnly runs only the named typed analyzers (all when names is
// empty) over an already-loaded module, sharing one typecheck.
func CheckModuleOnly(m *Module, names []string) *Result {
	return run(m, m.Pkgs, nil, names)
}

// Analyzers lists the typed-tier analyzer names in execution order, for
// -only flag validation.
func Analyzers() []string {
	var out []string
	for _, an := range analyzerTable {
		out = append(out, an.name)
	}
	return out
}

// CheckFixture typechecks one testdata fixture against the module and runs
// the analyzers with the fixture in scope, reporting only findings located
// in the fixture's file. Used by tests to prove each analyzer fires.
func CheckFixture(m *Module, file string) (*Result, error) {
	fp, err := m.LoadFixture(file)
	if err != nil {
		return nil, err
	}
	pkgs := append(append([]*Package{}, m.Pkgs...), fp)
	return run(m, pkgs, fp, nil), nil
}

// analyzerTable lists the typed-tier analyzers in execution order.
var analyzerTable = []struct {
	name string
	fn   func(*modCtx) ([]lint.Finding, []Suppression)
}{
	{"determinism", checkDeterminismTyped},
	{"costconst", checkCostConst},
	{"observerpurity", checkObserverPurityTyped},
}

// run executes the analyzers over pkgs. When only is non-nil, findings are
// restricted to that package's files (fixture mode); module-wide context
// (summaries, call graph) still spans all of pkgs. When names is non-empty,
// only the named analyzers execute.
func run(m *Module, pkgs []*Package, only *Package, names []string) *Result {
	ctx := &modCtx{m: m, pkgs: pkgs, markers: CollectMarkers(m.Fset, pkgs)}
	res := &Result{FuncsVisited: len(AllFuncs(pkgs)), Timings: make(map[string]float64)}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	for _, an := range analyzerTable {
		if len(want) > 0 && !want[an.name] {
			continue
		}
		start := time.Now()
		fs, sups := an.fn(ctx)
		res.Timings[an.name] += float64(time.Since(start).Nanoseconds()) / 1e6
		res.Findings = append(res.Findings, fs...)
		res.Suppressions = append(res.Suppressions, sups...)
	}
	if only != nil {
		res.Findings = FilterByFiles(res.Findings, only.FileNames)
		res.Suppressions = FilterSupsByFiles(res.Suppressions, only.FileNames)
	}
	SortFindings(res.Findings)
	SortSuppressions(res.Suppressions)
	return res
}

// SortFindings orders findings by file, line, analyzer and message, the
// canonical report order every tier emits.
func SortFindings(fs []lint.Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		if fs[i].Analyzer != fs[j].Analyzer {
			return fs[i].Analyzer < fs[j].Analyzer
		}
		return fs[i].Msg < fs[j].Msg
	})
}

// SortSuppressions orders suppressions by file, line and analyzer.
func SortSuppressions(sups []Suppression) {
	sort.Slice(sups, func(i, j int) bool {
		a, b := sups[i], sups[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Analyzer < b.Analyzer
	})
}

// FilterByFiles keeps only findings located in the given files.
func FilterByFiles(fs []lint.Finding, files []string) []lint.Finding {
	allowed := make(map[string]bool, len(files))
	for _, f := range files {
		allowed[f] = true
	}
	var out []lint.Finding
	for _, f := range fs {
		if allowed[f.File] {
			out = append(out, f)
		}
	}
	return out
}

// FilterSupsByFiles keeps only suppressions located in the given files.
func FilterSupsByFiles(sups []Suppression, files []string) []Suppression {
	allowed := make(map[string]bool, len(files))
	for _, f := range files {
		allowed[f] = true
	}
	var out []Suppression
	for _, s := range sups {
		if allowed[s.File] {
			out = append(out, s)
		}
	}
	return out
}

// modCtx is the shared context every analyzer receives.
type modCtx struct {
	m    *Module
	pkgs []*Package
	// markers indexes obligation-transferred comments by file and line.
	markers MarkerIndex
}

// TransferMarker is the comment marker waiving a flush obligation; kept
// here (not in the ssa tier) because marker collection is shared.
const TransferMarker = "obligation-transferred:"

// LockFreeMarker is the comment marker waiving a lockset finding: it
// documents why an access to shared state needs no lock/atomic/ownership
// discharge. Like TransferMarker, an unconsumed one is a stalemarker
// finding.
const LockFreeMarker = "lock-free-by-design:"

// FabBoundMarker is the comment marker waiving a fabproof obligation: it
// documents why a fabric bound the numeric tier cannot discharge holds
// anyway. Like the others, an unconsumed one is a stalemarker finding.
const FabBoundMarker = "bounded-by-design:"

// MarkerIndex maps file → line → marker reason. A marker covers its own
// line and the line below it (doc-comment style).
type MarkerIndex map[string]map[int]string

// CollectMarkers indexes every "obligation-transferred:" comment.
func CollectMarkers(fset *token.FileSet, pkgs []*Package) MarkerIndex {
	return CollectMarkersFor(fset, pkgs, TransferMarker)
}

// CollectMarkersFor indexes every comment starting with marker.
func CollectMarkersFor(fset *token.FileSet, pkgs []*Package, marker string) MarkerIndex {
	out := make(MarkerIndex)
	for _, p := range pkgs {
		for i, f := range p.Files {
			rel := p.FileNames[i]
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					// Only a comment that *starts* with the marker counts;
					// prose that merely mentions the marker string (docs,
					// quoted examples) is not a waiver.
					text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
					if !strings.HasPrefix(text, marker) {
						continue
					}
					reason := strings.TrimSpace(text[len(marker):])
					if out[rel] == nil {
						out[rel] = make(map[int]string)
					}
					out[rel][fset.Position(c.End()).Line] = reason
				}
			}
		}
	}
	return out
}

// For returns the obligation-transferred reason covering line (the marker
// may sit on the line itself or on the line above).
func (mi MarkerIndex) For(file string, line int) (string, bool) {
	lines := mi[file]
	if lines == nil {
		return "", false
	}
	if r, ok := lines[line]; ok {
		return r, true
	}
	r, ok := lines[line-1]
	return r, ok
}

func (ctx *modCtx) markerFor(file string, line int) (string, bool) {
	return ctx.markers.For(file, line)
}

// --- shared typed helpers ---

// FileOf returns the file (and its module-relative name) containing pos.
func (p *Package) FileOf(pos token.Pos) (*ast.File, string) {
	for i, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f, p.FileNames[i]
		}
	}
	return nil, ""
}

// Unwrap strips parentheses and value-preserving conversions, so
// "uint64(x)" and "(x)" alias x for whole-argument matching.
func Unwrap(info *types.Info, e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.CallExpr:
			// A conversion parses as a call whose Fun is a type.
			if len(v.Args) == 1 && info.Types[v.Fun].IsType() {
				e = v.Args[0]
				continue
			}
			return e
		default:
			return e
		}
	}
}

// CalleeFunc resolves a call to its *types.Func (methods, interface
// methods and plain functions). Returns nil for builtins, conversions and
// function-typed values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// IdentObj resolves an expression to the variable object it denotes
// (plain identifiers only; selectors and index expressions return nil).
func IdentObj(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.ObjectOf(id).(*types.Var)
	return v
}

// NamedType unwraps pointers and returns the named type of t, or nil.
func NamedType(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamed reports whether t (after pointer unwrap) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := NamedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// FuncDecl pairs a declaration with its package for module-wide passes.
type FuncDecl struct {
	Pkg  *Package
	File string
	Decl *ast.FuncDecl
	Obj  *types.Func
}

// AllFuncs lists every function declaration with a body across pkgs, in
// deterministic (package, file, source) order.
func AllFuncs(pkgs []*Package) []FuncDecl {
	var out []FuncDecl
	for _, p := range pkgs {
		for i, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				out = append(out, FuncDecl{Pkg: p, File: p.FileNames[i], Decl: fd, Obj: obj})
			}
		}
	}
	return out
}

// BuildImplMap maps each interface method declared in the module to the
// concrete module methods implementing it.
func BuildImplMap(pkgs []*Package) map[*types.Func][]*types.Func {
	out := make(map[*types.Func][]*types.Func)
	var ifaces []*types.Named
	for _, p := range pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if n, ok := tn.Type().(*types.Named); ok {
				if _, isIface := n.Underlying().(*types.Interface); isIface {
					ifaces = append(ifaces, n)
				}
			}
		}
	}
	for _, p := range pkgs {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			for _, in := range ifaces {
				iface := in.Underlying().(*types.Interface)
				if !types.Implements(types.NewPointer(named), iface) {
					continue
				}
				for i := 0; i < iface.NumMethods(); i++ {
					m := iface.Method(i)
					impl, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, p.Types, m.Name())
					if fn, ok := impl.(*types.Func); ok {
						out[m] = append(out[m], fn)
					}
				}
			}
		}
	}
	return out
}

// InFixture reports whether a module-relative file path is a sanitizer
// testdata fixture; fixtures opt into the scoped analyzers regardless of
// directory, so firing tests can live under testdata.
func InFixture(rel string) bool {
	return strings.Contains(rel, "sanitizer/typedlint/testdata/") ||
		strings.Contains(rel, "sanitizer/ssa/testdata/")
}
