package typedlint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ModulePath is the import path of the module this checker analyzes. The
// loader is module-aware so it stays stdlib-only: the source importer that
// ships with go/importer resolves GOROOT packages but knows nothing about
// modules, so imports under this prefix are typechecked from the local
// tree instead.
const ModulePath = "shootdown"

// Package is one typechecked package of the module.
type Package struct {
	// Path is the import path ("shootdown/internal/mm").
	Path string
	// Dir is the module-relative directory ("internal/mm", "." for root).
	Dir string
	// Files holds the parsed non-test sources, ordered by file name.
	Files []*ast.File
	// FileNames holds the module-relative path of each Files entry.
	FileNames []string
	// Types is the typechecked package object.
	Types *types.Package
	// Info carries the resolved type information for every file.
	Info *types.Info
}

// Module is the fully loaded and typechecked target of the typed analyzers.
type Module struct {
	// Root is the absolute module root directory.
	Root string
	// Fset positions every parsed file (module and GOROOT sources alike).
	Fset *token.FileSet
	// Pkgs lists the module packages sorted by import path.
	Pkgs []*Package

	byPath map[string]*Package
	std    types.Importer
}

// Lookup returns the loaded package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// newInfo returns a types.Info with every map the analyzers need.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// LoadModule discovers, parses and typechecks every non-test package under
// the module root (ascending from the working directory to the nearest
// go.mod). It is the front door for the typed analyzers.
func LoadModule() (*Module, error) {
	root, err := findModuleRoot()
	if err != nil {
		return nil, err
	}
	return LoadModuleAt(root)
}

// LoadModuleAt loads the module rooted at dir.
func LoadModuleAt(dir string) (*Module, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:   root,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}
	// The "source" importer typechecks GOROOT dependencies from source, so
	// no compiled export data is needed (the toolchain no longer ships it).
	m.std = importer.ForCompiler(m.Fset, "source", nil)

	dirs, err := m.packageDirs()
	if err != nil {
		return nil, err
	}
	for _, d := range dirs {
		if _, err := m.load(m.importPathOf(d)); err != nil {
			return nil, err
		}
	}
	for _, p := range m.byPath {
		m.Pkgs = append(m.Pkgs, p)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return m, nil
}

// packageDirs walks the tree for directories holding non-test .go files.
func (m *Module) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(m.Root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != m.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
			dirs = append(dirs, dir)
		}
		return nil
	})
	return dirs, err
}

// importPathOf maps an absolute directory to its module import path.
func (m *Module) importPathOf(dir string) string {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil || rel == "." {
		return ModulePath
	}
	return ModulePath + "/" + filepath.ToSlash(rel)
}

// dirOf maps a module import path to its absolute directory.
func (m *Module) dirOf(path string) string {
	if path == ModulePath {
		return m.Root
	}
	return filepath.Join(m.Root, filepath.FromSlash(strings.TrimPrefix(path, ModulePath+"/")))
}

// Import implements types.Importer: module-internal paths load from the
// local tree; everything else delegates to the GOROOT source importer.
func (m *Module) Import(path string) (*types.Package, error) {
	if path == ModulePath || strings.HasPrefix(path, ModulePath+"/") {
		p, err := m.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return m.std.Import(path)
}

// load parses and typechecks one module package (memoized).
func (m *Module) load(path string) (*Package, error) {
	if p, ok := m.byPath[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("typedlint: import cycle through %s", path)
		}
		return p, nil
	}
	m.byPath[path] = nil // cycle guard
	dir := m.dirOf(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(m.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		rel, _ := filepath.Rel(m.Root, full)
		names = append(names, filepath.ToSlash(rel))
	}
	if len(files) == 0 {
		delete(m.byPath, path)
		return nil, fmt.Errorf("typedlint: no Go files in %s", dir)
	}
	p := &Package{Path: path, Files: files, FileNames: names, Info: newInfo()}
	if p.Dir, err = filepath.Rel(m.Root, dir); err != nil {
		p.Dir = "."
	}
	p.Dir = filepath.ToSlash(p.Dir)
	cfg := types.Config{Importer: m}
	p.Types, err = cfg.Check(path, m.Fset, files, p.Info)
	if err != nil {
		return nil, fmt.Errorf("typedlint: typecheck %s: %v", path, err)
	}
	m.byPath[path] = p
	return p, nil
}

// LoadFixture typechecks one extra file (a testdata fixture) against the
// already-loaded module, returning it as a synthetic package. The fixture
// may import any module or GOROOT package.
func (m *Module) LoadFixture(file string) (*Package, error) {
	full, err := filepath.Abs(file)
	if err != nil {
		return nil, err
	}
	f, err := parser.ParseFile(m.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(m.Root, full)
	if err != nil {
		rel = filepath.Base(full)
	}
	p := &Package{
		Path:      ModulePath + "/fixture/" + f.Name.Name,
		Dir:       filepath.ToSlash(filepath.Dir(rel)),
		Files:     []*ast.File{f},
		FileNames: []string{filepath.ToSlash(rel)},
		Info:      newInfo(),
	}
	cfg := types.Config{Importer: m}
	if p.Types, err = cfg.Check(p.Path, m.Fset, p.Files, p.Info); err != nil {
		return nil, fmt.Errorf("typedlint: typecheck fixture %s: %v", file, err)
	}
	return p, nil
}

// findModuleRoot ascends from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("typedlint: no go.mod above %s", dir)
		}
		dir = parent
	}
}
