package sanitizer

import (
	"fmt"
	"sort"
	"strings"

	"shootdown/internal/mm"
	"shootdown/internal/pagetable"
	"shootdown/internal/tlb"
)

// shadow is the checker's ground-truth copy of one address space's leaf
// page tables, maintained from the mutation observer. Two maps because a
// 4K and a 2M leaf can never cover the same address simultaneously (the
// radix tree holds either a PT or a huge PD entry).
type shadow struct {
	as  *mm.AddressSpace
	p4k map[uint64]pagetable.PTE
	p2m map[uint64]pagetable.PTE
}

// newShadow seeds the shadow from the current page-table contents, so
// address spaces populated before the checker saw them (fork children get
// their leaves copied before the AS hook fires) start consistent.
func newShadow(as *mm.AddressSpace) *shadow {
	sh := &shadow{
		as:  as,
		p4k: make(map[uint64]pagetable.PTE),
		p2m: make(map[uint64]pagetable.PTE),
	}
	as.PT.VisitRange(0, pagetable.MaxVA, func(tr pagetable.Translation) {
		pte := pagetable.PTE{Frame: tr.Frame, Flags: tr.Flags}
		if tr.Size == pagetable.Size2M {
			sh.p2m[tr.VA] = pte
		} else {
			sh.p4k[tr.VA] = pte
		}
	})
	return sh
}

// apply folds one observed page-table change into the shadow.
func (sh *shadow) apply(ch pagetable.Change) {
	m := sh.p4k
	if ch.Size == pagetable.Size2M {
		m = sh.p2m
	}
	if ch.New.Flags.Has(pagetable.Present) {
		m[ch.VA] = ch.New
	} else {
		delete(m, ch.VA)
	}
}

// leafAt returns the shadow leaf covering va, if any.
func (sh *shadow) leafAt(va uint64) (pagetable.PTE, pagetable.Size, bool) {
	if pte, ok := sh.p2m[va&^uint64(pagetable.PageSize2M-1)]; ok {
		return pte, pagetable.Size2M, true
	}
	if pte, ok := sh.p4k[va&^uint64(pagetable.PageSize4K-1)]; ok {
		return pte, pagetable.Size4K, true
	}
	return pagetable.PTE{}, pagetable.Size4K, false
}

// contradicts compares a TLB entry that just produced a hit for va against
// the shadow. An empty reason means the cached translation agrees with the
// current page tables (or is harmlessly weaker: fewer permissions than the
// PTE grants never breaks coherence, it only costs a spurious fault).
func (sh *shadow) contradicts(va uint64, e tlb.Entry) (reason, shadowDesc string) {
	pte, size, ok := sh.leafAt(va)
	if !ok {
		return "translates memory that is no longer mapped", "<none>"
	}
	shadowDesc = fmt.Sprintf("va %#x frame %#x size %s flags %s",
		va&^(size.Bytes()-1), pte.Frame, size, pte.Flags)
	entryPA := e.Frame<<pagetable.PageShift4K + (va & (e.Size.Bytes() - 1))
	shadowPA := pte.Frame<<pagetable.PageShift4K + (va & (size.Bytes() - 1))
	switch {
	case entryPA != shadowPA:
		return fmt.Sprintf("translates to PA %#x but the page tables map PA %#x", entryPA, shadowPA), shadowDesc
	case e.Flags.Has(pagetable.Write) && !pte.Flags.Has(pagetable.Write):
		return "caches write permission on a page the PTE maps read-only", shadowDesc
	case !e.Flags.Has(pagetable.NX) && pte.Flags.Has(pagetable.NX):
		return "caches execute permission on a page the PTE maps NX", shadowDesc
	case pte.Flags.Has(pagetable.ProtNone) && !e.Flags.Has(pagetable.ProtNone):
		return "caches an accessible translation for a prot-none (NUMA hint) page", shadowDesc
	}
	return "", shadowDesc
}

// diffAgainstPT cross-validates the shadow against the real page table and
// returns a description of the first few mismatches ("" when identical).
func (sh *shadow) diffAgainstPT() string {
	type leaf struct {
		pte  pagetable.PTE
		size pagetable.Size
	}
	real := make(map[uint64]leaf)
	sh.as.PT.VisitRange(0, pagetable.MaxVA, func(tr pagetable.Translation) {
		real[tr.VA] = leaf{pagetable.PTE{Frame: tr.Frame, Flags: tr.Flags}, tr.Size}
	})
	var diffs []string
	check := func(m map[uint64]pagetable.PTE, size pagetable.Size) {
		for va, pte := range m {
			r, ok := real[va]
			switch {
			case !ok:
				diffs = append(diffs, fmt.Sprintf("  shadow has %s leaf at %#x (frame %#x flags %s), page table does not", size, va, pte.Frame, pte.Flags))
			case r.size != size || r.pte != pte:
				diffs = append(diffs, fmt.Sprintf("  leaf at %#x: shadow %s frame %#x flags %s, page table %s frame %#x flags %s",
					va, size, pte.Frame, pte.Flags, r.size, r.pte.Frame, r.pte.Flags))
			default:
				delete(real, va)
			}
		}
	}
	check(sh.p4k, pagetable.Size4K)
	check(sh.p2m, pagetable.Size2M)
	for va, r := range real {
		if _, ok := sh.p4k[va]; ok {
			continue // already reported as mismatch
		}
		if _, ok := sh.p2m[va]; ok {
			continue
		}
		diffs = append(diffs, fmt.Sprintf("  page table has %s leaf at %#x (frame %#x flags %s), shadow does not", r.size, va, r.pte.Frame, r.pte.Flags))
	}
	if len(diffs) == 0 {
		return ""
	}
	sort.Strings(diffs)
	if len(diffs) > 8 {
		diffs = append(diffs[:8], fmt.Sprintf("  ... and %d more", len(diffs)-8))
	}
	return strings.Join(diffs, "\n")
}
