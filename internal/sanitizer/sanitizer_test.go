package sanitizer_test

import (
	"strings"
	"testing"

	"shootdown/internal/core"
	"shootdown/internal/kernel"
	"shootdown/internal/mach"
	"shootdown/internal/mm"
	"shootdown/internal/sanitizer"
	"shootdown/internal/sim"
	"shootdown/internal/syscalls"
)

const pg = 0x1000

type world struct {
	eng *sim.Engine
	k   *kernel.Kernel
	f   *core.Flusher
	chk *sanitizer.Checker
}

func newCheckedWorld(t *testing.T, pti bool, cfg core.Config, seed uint64) *world {
	t.Helper()
	eng := sim.NewEngine(seed)
	kcfg := kernel.DefaultConfig()
	kcfg.PTI = pti
	kcfg.ConsolidatedCachelines = cfg.CachelineConsolidation
	k := kernel.New(eng, mach.DefaultTopology(), mach.DefaultCosts(), kcfg)
	f, err := core.NewFlusher(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	chk := sanitizer.Attach(k, f, sanitizer.Config{AllowLazyWindow: cfg.LazyRemote})
	k.SetFlusher(f)
	k.Start()
	return &world{eng, k, f, chk}
}

// runMadvise is the paper's microbenchmark shape under the checker: an
// initiator touches and madvises pages while a responder reuses the same
// translations from another CPU.
func runMadvise(t *testing.T, w *world) {
	t.Helper()
	as := w.k.NewAddressSpace()
	var probe uint64
	phase := 0
	resp := &kernel.Task{Name: "resp", MM: as, Fn: func(ctx *kernel.Ctx) {
		for probe == 0 {
			ctx.UserRun(500)
		}
		if err := ctx.Touch(probe, mm.AccessRead); err != nil {
			t.Error(err)
		}
		phase = 1
		for phase != 2 {
			ctx.UserRun(500)
		}
		// Re-touch after the shootdown: must fault and repopulate, never
		// translate through a stale entry.
		if err := ctx.Touch(probe, mm.AccessWrite); err != nil {
			t.Error(err)
		}
	}}
	w.k.CPU(2).Spawn(resp)
	init := &kernel.Task{Name: "init", MM: as, Fn: func(ctx *kernel.Ctx) {
		v, err := syscalls.MMap(ctx, 16*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
		if err != nil {
			t.Error(err)
			phase = 2
			return
		}
		for rep := 0; rep < 2; rep++ {
			// Second pass hits the TLB: the checker validates every hit.
			for i := uint64(0); i < 8; i++ {
				if err := ctx.Touch(v.Start+i*pg, mm.AccessWrite); err != nil {
					t.Error(err)
				}
			}
		}
		probe = v.Start
		for phase != 1 {
			ctx.UserRun(500)
		}
		if err := syscalls.MadviseDontneed(ctx, v.Start, 8*pg); err != nil {
			t.Error(err)
		}
		phase = 2
	}}
	w.k.CPU(0).Spawn(init)
	w.eng.Run()
	if !resp.Done() || !init.Done() {
		t.Fatal("tasks did not finish")
	}
}

// TestCleanProtocolHasNoViolations runs the shootdown scenario under every
// cumulative optimization level in both modes: the real protocol must be
// coherent under the oracle.
func TestCleanProtocolHasNoViolations(t *testing.T) {
	for _, pti := range []bool{true, false} {
		for _, cfg := range core.CumulativeConfigs(pti) {
			w := newCheckedWorld(t, pti, cfg, 42)
			runMadvise(t, w)
			sum := w.chk.Finish()
			if !sum.OK() {
				t.Fatalf("pti=%v cfg=%s:\n%s", pti, cfg, sum.Report())
			}
			if sum.Stats.TLBHits == 0 || sum.Stats.ObligationsOpened == 0 {
				t.Fatalf("pti=%v cfg=%s: checker saw no traffic: %+v", pti, cfg, sum.Stats)
			}
		}
	}
}

// TestCleanForkCoWHasNoViolations exercises the write-protect obligation
// path (fork) and the CoW fixup path under the checker, including the
// §4.1 write trick, and verifies the fork child's shadow seeds correctly.
func TestCleanForkCoWHasNoViolations(t *testing.T) {
	for _, avoid := range []bool{false, true} {
		cfg := core.AllGeneral()
		cfg.AvoidCoWFlush = avoid
		w := newCheckedWorld(t, true, cfg, 7)
		as := w.k.NewAddressSpace()
		task := &kernel.Task{Name: "forker", MM: as, Fn: func(ctx *kernel.Ctx) {
			v, err := syscalls.MMap(ctx, 8*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
			if err != nil {
				t.Error(err)
				return
			}
			for i := uint64(0); i < 8; i++ {
				if err := ctx.Touch(v.Start+i*pg, mm.AccessWrite); err != nil {
					t.Error(err)
				}
			}
			if _, err := syscalls.Fork(ctx); err != nil {
				t.Error(err)
			}
			// Write after fork: CoW break on every page.
			for i := uint64(0); i < 8; i++ {
				if err := ctx.Touch(v.Start+i*pg, mm.AccessWrite); err != nil {
					t.Error(err)
				}
			}
		}}
		w.k.CPU(0).Spawn(task)
		w.eng.Run()
		if !task.Done() {
			t.Fatal("task did not finish")
		}
		sum := w.chk.Finish()
		if !sum.OK() {
			t.Fatalf("avoidCoW=%v:\n%s", avoid, sum.Report())
		}
	}
}

// brokenFlusher elides every TLB flush: the checker must catch the first
// resulting stale translation.
type brokenFlusher struct{}

func (brokenFlusher) FlushAfter(ctx *kernel.Ctx, as *mm.AddressSpace, fr mm.FlushRange) {}
func (brokenFlusher) CoWFixup(ctx *kernel.Ctx, as *mm.AddressSpace, res mm.FaultResult) {}
func (brokenFlusher) BatchingEnabled() bool                                             { return false }

// TestBrokenFlusherCaughtExactlyOnce: with a flusher that elides the
// required shootdown, the single stale re-read on the responder CPU must
// produce exactly one stale-translation violation.
func TestBrokenFlusherCaughtExactlyOnce(t *testing.T) {
	eng := sim.NewEngine(3)
	kcfg := kernel.DefaultConfig()
	kcfg.PTI = false
	k := kernel.New(eng, mach.DefaultTopology(), mach.DefaultCosts(), kcfg)
	chk := sanitizer.Attach(k, nil, sanitizer.Config{})
	k.SetFlusher(brokenFlusher{})
	k.Start()

	as := k.NewAddressSpace()
	var probe uint64
	phase := 0
	resp := &kernel.Task{Name: "victim", MM: as, Fn: func(ctx *kernel.Ctx) {
		for probe == 0 {
			ctx.UserRun(500)
		}
		if err := ctx.Touch(probe, mm.AccessRead); err != nil {
			t.Error(err)
		}
		phase = 1
		for phase != 2 {
			ctx.UserRun(500)
		}
		// The page is gone but no shootdown ever arrived: this access
		// translates through the stale entry and "succeeds".
		if err := ctx.Touch(probe, mm.AccessRead); err != nil {
			t.Errorf("stale access unexpectedly faulted: %v", err)
		}
	}}
	k.CPU(2).Spawn(resp)
	init := &kernel.Task{Name: "init", MM: as, Fn: func(ctx *kernel.Ctx) {
		v, err := syscalls.MMap(ctx, 4*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
		if err != nil {
			t.Error(err)
			phase = 2
			return
		}
		if err := ctx.Touch(v.Start, mm.AccessWrite); err != nil {
			t.Error(err)
		}
		probe = v.Start
		for phase != 1 {
			ctx.UserRun(500)
		}
		if err := syscalls.MadviseDontneed(ctx, v.Start, pg); err != nil {
			t.Error(err)
		}
		phase = 2
	}}
	k.CPU(0).Spawn(init)
	eng.Run()
	if !resp.Done() || !init.Done() {
		t.Fatal("tasks did not finish")
	}

	sum := chk.Finish()
	if len(sum.Violations) != 1 {
		t.Fatalf("violations = %d, want exactly 1:\n%s", len(sum.Violations), sum.Report())
	}
	v := sum.Violations[0]
	if v.Kind != "stale-translation" || v.CPU != 2 {
		t.Fatalf("violation = %+v", v)
	}
	for _, want := range []string{"no longer mapped", "unmap", "return-to-user", "cpu0"} {
		if !strings.Contains(v.Msg, want) {
			t.Errorf("violation message missing %q:\n%s", want, v.Msg)
		}
	}
}

// TestLazyWindowLegality: the LATR-style lazy extension deliberately leaves
// a staleness window (§2.3.2). Without AllowLazyWindow the checker reports
// it; with the flag the same run is clean and counted as a legal lazy hit.
func TestLazyWindowLegality(t *testing.T) {
	run := func(allow bool) *sanitizer.Summary {
		eng := sim.NewEngine(5)
		kcfg := kernel.DefaultConfig()
		k := kernel.New(eng, mach.DefaultTopology(), mach.DefaultCosts(), kcfg)
		f, err := core.NewFlusher(k, core.Config{LazyRemote: true})
		if err != nil {
			t.Fatal(err)
		}
		chk := sanitizer.Attach(k, f, sanitizer.Config{AllowLazyWindow: allow})
		k.SetFlusher(f)
		k.Start()

		as := k.NewAddressSpace()
		var probe uint64
		phase := 0
		victim := &kernel.Task{Name: "victim", MM: as, Fn: func(ctx *kernel.Ctx) {
			for probe == 0 {
				ctx.UserRun(500)
			}
			if err := ctx.Touch(probe, mm.AccessRead); err != nil {
				t.Error(err)
			}
			phase = 1
			for phase != 2 {
				ctx.UserRun(500)
			}
			// The lazy shootdown is queued but not yet swept: this access
			// lands inside the lazy staleness window.
			if err := ctx.Touch(probe, mm.AccessRead); err != nil {
				t.Errorf("lazy-window access faulted: %v", err)
			}
		}}
		k.CPU(2).Spawn(victim)
		init := &kernel.Task{Name: "init", MM: as, Fn: func(ctx *kernel.Ctx) {
			v, err := syscalls.MMap(ctx, 4*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
			if err != nil {
				t.Error(err)
				phase = 2
				return
			}
			if err := ctx.Touch(v.Start, mm.AccessWrite); err != nil {
				t.Error(err)
			}
			probe = v.Start
			for phase != 1 {
				ctx.UserRun(500)
			}
			if err := syscalls.MadviseDontneed(ctx, v.Start, pg); err != nil {
				t.Error(err)
			}
			phase = 2
		}}
		k.CPU(0).Spawn(init)
		eng.Run()
		if !victim.Done() || !init.Done() {
			t.Fatal("tasks did not finish")
		}
		return chk.Finish()
	}

	strict := run(false)
	if len(strict.Violations) == 0 {
		t.Fatalf("strict mode missed the lazy staleness window:\n%s", strict.Report())
	}
	if strict.Violations[0].Kind != "stale-translation" {
		t.Fatalf("violation = %+v", strict.Violations[0])
	}
	lax := run(true)
	if !lax.OK() {
		t.Fatalf("lazy window not legalized:\n%s", lax.Report())
	}
	if lax.Stats.StaleLegalLazy == 0 {
		t.Fatalf("no lazy-window hit counted: %+v", lax.Stats)
	}
}

// TestLockdepDetectsInversion: two processes taking two rwsems in opposite
// orders is the classic deadlock shape; the checker's lock-order graph
// must flag the second ordering.
func TestLockdepDetectsInversion(t *testing.T) {
	eng := sim.NewEngine(1)
	k := kernel.New(eng, mach.DefaultTopology(), mach.DefaultCosts(), kernel.DefaultConfig())
	chk := sanitizer.Attach(k, nil, sanitizer.Config{})
	k.SetFlusher(brokenFlusher{})

	a := mm.NewRWSem(eng, "sem_a")
	b := mm.NewRWSem(eng, "sem_b")
	chk.WatchSem(a)
	chk.WatchSem(b)

	eng.Go("t1", func(p *sim.Proc) {
		a.DownRead(p)
		p.Delay(10)
		b.DownRead(p)
		p.Delay(10)
		b.UpRead(p)
		a.UpRead(p)
	})
	eng.Go("t2", func(p *sim.Proc) {
		p.Delay(100)
		b.DownRead(p)
		p.Delay(10)
		a.DownRead(p)
		p.Delay(10)
		a.UpRead(p)
		b.UpRead(p)
	})
	eng.Run()

	sum := chk.Finish()
	var found *sanitizer.Violation
	for i := range sum.Violations {
		if sum.Violations[i].Kind == "lock-order" {
			found = &sum.Violations[i]
		}
	}
	if found == nil {
		t.Fatalf("no lock-order violation:\n%s", sum.Report())
	}
	if !strings.Contains(found.Msg, "sem_a") || !strings.Contains(found.Msg, "sem_b") {
		t.Fatalf("violation message lacks lock names:\n%s", found.Msg)
	}
}

// TestCheckedRunIsCycleIdentical: attaching the checker must not change
// simulated time — all hooks are observational.
func TestCheckedRunIsCycleIdentical(t *testing.T) {
	run := func(check bool) sim.Time {
		eng := sim.NewEngine(42)
		cfg := core.AllGeneral()
		kcfg := kernel.DefaultConfig()
		kcfg.ConsolidatedCachelines = cfg.CachelineConsolidation
		k := kernel.New(eng, mach.DefaultTopology(), mach.DefaultCosts(), kcfg)
		f, err := core.NewFlusher(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if check {
			sanitizer.Attach(k, f, sanitizer.Config{})
		}
		k.SetFlusher(f)
		k.Start()
		as := k.NewAddressSpace()
		task := &kernel.Task{Name: "t", MM: as, Fn: func(ctx *kernel.Ctx) {
			v, err := syscalls.MMap(ctx, 16*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
			if err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < 3; r++ {
				for i := uint64(0); i < 8; i++ {
					ctx.Touch(v.Start+i*pg, mm.AccessWrite)
				}
				if err := syscalls.MadviseDontneed(ctx, v.Start, 8*pg); err != nil {
					t.Error(err)
				}
			}
		}}
		k.CPU(0).Spawn(task)
		eng.Run()
		return eng.Now()
	}
	plain := run(false)
	checked := run(true)
	if plain != checked {
		t.Fatalf("checker perturbed the simulation: %d vs %d cycles", plain, checked)
	}
}
