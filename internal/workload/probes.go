package workload

import (
	"shootdown/internal/core"
	"shootdown/internal/kernel"
	"shootdown/internal/mm"
	"shootdown/internal/stats"
	"shootdown/internal/syscalls"
)

// AckProbeConfig drives the early-ack ablation: repeated shootdowns
// triggered either by madvise (tables kept, early ack allowed) or munmap
// (tables freed, early ack suppressed).
type AckProbeConfig struct {
	Mode       Mode
	Core       core.Config
	UseMunmap  bool
	Iterations int
	Seed       uint64
}

// AckProbeResult reports how the responders acknowledged.
type AckProbeResult struct {
	EarlyAcks, LateAcks uint64
	// Suppressed counts shootdowns whose early ack the initiator had to
	// disable because page tables were freed.
	Suppressed uint64
}

// RunAckProbe executes the probe.
func RunAckProbe(cfg AckProbeConfig) AckProbeResult {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 20
	}
	w := NewWorld(cfg.Mode, cfg.Core, cfg.Seed)
	defer w.Close()
	as := w.K.NewAddressSpace()
	stop := false
	responder := &kernel.Task{Name: "responder", MM: as, Fn: func(ctx *kernel.Ctx) {
		for !stop {
			ctx.UserRun(2000)
		}
	}}
	w.K.CPU(2).Spawn(responder)
	initiator := &kernel.Task{Name: "initiator", MM: as, Fn: func(ctx *kernel.Ctx) {
		ctx.UserRun(10_000)
		for i := 0; i < cfg.Iterations; i++ {
			v, err := syscalls.MMap(ctx, 4*pg, mm.ProtRead|mm.ProtWrite, mm.Anon, nil, 0)
			if err != nil {
				panic(err)
			}
			if err := ctx.Touch(v.Start, mm.AccessWrite); err != nil {
				panic(err)
			}
			if cfg.UseMunmap {
				err = syscalls.Munmap(ctx, v.Start, v.Len())
			} else {
				err = syscalls.MadviseDontneed(ctx, v.Start, pg)
				if err == nil {
					err = syscalls.Munmap(ctx, v.Start, v.Len())
					// The munmap after a madvise zap finds no PTEs, so it
					// triggers no shootdown; it just cleans up the VMA.
				}
			}
			if err != nil {
				panic(err)
			}
		}
		stop = true
	}}
	w.K.CPU(0).Spawn(initiator)
	w.Eng.Run()
	s := w.K.SMP.Stats()
	return AckProbeResult{
		EarlyAcks:  s.EarlyAcks,
		LateAcks:   s.LateAcks,
		Suppressed: w.F.Stats().EarlyAckSuppressed,
	}
}

// RunMicroWithStats runs the microbenchmark once (single run) and also
// returns the number of user PTEs the initiator flushed while waiting for
// acks (the §3.4/§3.1 interaction counter).
func RunMicroWithStats(cfg MicroConfig) (MicroResult, uint64) {
	cfg.Runs = 1
	if cfg.Iterations <= 0 {
		cfg.Iterations = 50
	}
	w := NewWorld(cfg.Mode, cfg.Core, cfg.Seed)
	defer w.Close()
	initMean, respMean := runMicroOn(w, cfg)
	return MicroResult{
		Initiator: stats.Summarize([]float64{initMean}),
		Responder: stats.Summarize([]float64{respMean}),
	}, w.F.Stats().UserPTEsFlushedWhileWaiting
}
